#!/usr/bin/env bash
# CI entry point: build + test the two configurations that gate a PR.
#
#   1. Release        — the tier-1 suite exactly as ROADMAP.md specifies.
#   2. ThreadSanitizer — the same suite under -fsanitize=thread, proving the
#      shared runtime pool, the feature analysis cache and the parallel
#      fold/forest paths are race-free.
#   3. AddressSanitizer + fault injection — the same suite under
#      -fsanitize=address with SCA_FAULT_RATE>0, so every env-driven
#      pipeline exercises the fault-injection/retry/degradation stack and
#      the parser-hardening paths while ASan watches for memory errors.
#
# Usage: tools/ci.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
# TSan needs a few threads to have anything to race; don't let SCA_THREADS=1
# from the caller's environment turn the parallel paths off.
SCA_THREADS="${SCA_TSAN_THREADS:-4}" \
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=thread
# Faults-on pass: dataset builders read SCA_FAULT_RATE from the environment,
# so the whole suite runs through the resilient client stack (injection,
# retries, validation re-parses) under ASan. The determinism tests still
# pass because retried output is byte-identical to a faults-off run.
SCA_FAULT_RATE="${SCA_CI_FAULT_RATE:-0.05}" \
  run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=address

echo "=== ci ok ==="
