#!/usr/bin/env bash
# CI entry point: build + test the two configurations that gate a PR.
#
#   1. Release        — the tier-1 suite exactly as ROADMAP.md specifies.
#   2. ThreadSanitizer — the same suite under -fsanitize=thread, proving the
#      shared runtime pool, the feature analysis cache and the parallel
#      fold/forest paths are race-free.
#
# Usage: tools/ci.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
# TSan needs a few threads to have anything to race; don't let SCA_THREADS=1
# from the caller's environment turn the parallel paths off.
SCA_THREADS="${SCA_TSAN_THREADS:-4}" \
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=thread

echo "=== ci ok ==="
