#!/usr/bin/env bash
# CI entry point: build + test the two configurations that gate a PR.
#
#   1. Release        — the tier-1 suite exactly as ROADMAP.md specifies.
#   2. ThreadSanitizer — the same suite under -fsanitize=thread, proving the
#      shared runtime pool, the feature analysis cache and the parallel
#      fold/forest paths are race-free.
#   3. AddressSanitizer + fault injection — the same suite under
#      -fsanitize=address with SCA_FAULT_RATE>0, so every env-driven
#      pipeline exercises the fault-injection/retry/degradation stack and
#      the parser-hardening paths while ASan watches for memory errors.
#
# After the Release configuration, an observability smoke runs the
# deterministic one-shot pipeline (SCA_PIPELINE_ONCE) at 1 and 8 threads
# with tracing and fault injection on, validates the emitted manifest and
# Chrome trace with sca_cli (which exits nonzero on malformed files or an
# empty metrics snapshot), and byte-compares the stable metrics sections —
# the registry's thread-count-invariance contract, checked on every PR.
#
# A warm-cache smoke then runs the same pipeline with the persistent cache
# off, cold and warm (SCA_CACHE_DIR), byte-compares outputs and stable
# metrics across all three states and both thread counts, verifies the
# store with `sca_cli cache verify`, and runs the micro_cache bench (which
# exits nonzero unless warm is >= 3x faster than cold with identical
# digests).
#
# A perf-history smoke then proves the regression gate in both directions:
# identical re-runs of the one-shot pipeline must pass `sca_cli history
# check`, a slowdown injected via SCA_OBS_TEST_DELAY_MS must trip it, and
# a tampered stable digest must fail it regardless of timing.
#
# A perf-seed smoke then runs the one-shot pipeline against the committed
# seed baseline (tools/perf/seed_baseline.jsonl): `history check` must pass
# (which also pins the stable digest), and the best-of-3 analysis phase must
# be at least 2x faster than the seed median — the zero-copy lexer / arena
# AST speedup, locked so it cannot silently erode.
#
# A serve-telemetry smoke then proves the request-level telemetry is
# observational: one stream served with telemetry off vs on full logging
# (SCA_SERVE_TIMING=0 + SCA_LOG) at different thread counts must be
# byte-identical, SCA_SERVE_TIMING=1 must decorate every data response,
# the in-band stats op must report live fields, `sca_cli serve-report`
# must reconstruct the lifecycles from the log, and macro_serve_load must
# pass its load assertions and the history gate.
#
# Finally, an ASan+UBSan tree focused on the zero-copy lexer and arena
# parser runs lexer_test, parser_fuzz_test and roundtrip_property_test:
# the string_view offsets and arena id arithmetic those components rely on
# are exactly what -fsanitize=address,undefined exists to check.
#
# Usage: tools/ci.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release

obs_smoke() {
  echo "=== observability smoke (build-release) ==="
  local dir=build-release/obs-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local t
  for t in 1 8; do
    # SCA_CHECKPOINT_DIR and SCA_CACHE_DIR are cleared so a caller's warm
    # directories cannot change what work the two runs actually perform
    # (resumed or cache-served chains would legitimately differ).
    (cd "$dir" &&
     SCA_PIPELINE_ONCE=1 SCA_THREADS=$t SCA_FAULT_RATE=0.05 \
       SCA_CHECKPOINT_DIR= SCA_CACHE_DIR= \
       SCA_TRACE="trace_t$t.json" SCA_MANIFEST="manifest_t$t.json" \
       ../bench/micro_pipeline)
    # Both inspectors fail on malformed input; --stable additionally fails
    # on an empty metrics snapshot (lost telemetry).
    build-release/tools/sca_cli metrics "$dir/manifest_t$t.json" --stable \
      > "$dir/stable_t$t.json"
    build-release/tools/sca_cli trace "$dir/trace_t$t.json" > /dev/null
    grep -q '"status":"complete"' "$dir/manifest_t$t.json" ||
      { echo "manifest_t$t.json not marked complete" >&2; exit 1; }
  done
  cmp "$dir/stable_t1.json" "$dir/stable_t8.json" ||
    { echo "stable metrics differ between SCA_THREADS=1 and 8" >&2; exit 1; }
  echo "=== observability smoke ok ==="
}
obs_smoke

# Warm-cache smoke: the persistent cache's hard invariant is that results
# are byte-identical with the cache off, cold, or warm — at any thread
# count. Run the deterministic one-shot pipeline in all three states at 1
# and 8 threads, byte-compare the "[pipeline]" digest lines and the stable
# metrics sections, and require the warm manifest to show actual hits.
cache_smoke() {
  echo "=== warm-cache smoke (build-release) ==="
  local dir=build-release/cache-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local t mode cachedir
  for t in 1 8; do
    for mode in off cold warm; do
      cachedir="$PWD/$dir/store_t$t"
      [ "$mode" = off ] && cachedir=
      (cd "$dir" &&
       SCA_PIPELINE_ONCE=1 SCA_THREADS=$t SCA_FAULT_RATE=0.05 \
         SCA_CHECKPOINT_DIR= SCA_CACHE_DIR="$cachedir" \
         SCA_MANIFEST="manifest_${mode}_t$t.json" \
         ../bench/micro_pipeline) | grep '^\[pipeline\]' \
        > "$dir/pipeline_${mode}_t$t.txt"
      build-release/tools/sca_cli metrics "$dir/manifest_${mode}_t$t.json" \
        --stable > "$dir/stable_${mode}_t$t.json"
    done
    for mode in cold warm; do
      cmp "$dir/pipeline_off_t$t.txt" "$dir/pipeline_${mode}_t$t.txt" ||
        { echo "pipeline output differs cache-$mode vs off (t=$t)" >&2
          exit 1; }
      cmp "$dir/stable_off_t$t.json" "$dir/stable_${mode}_t$t.json" ||
        { echo "stable metrics differ cache-$mode vs off (t=$t)" >&2
          exit 1; }
    done
    grep -Eq '"cache_hits":[1-9]' "$dir/manifest_warm_t$t.json" ||
      { echo "warm manifest shows no cache hits (t=$t)" >&2; exit 1; }
    build-release/tools/sca_cli cache verify "$dir/store_t$t" ||
      { echo "cache verify failed (t=$t)" >&2; exit 1; }
    build-release/tools/sca_cli cache stats "$dir/store_t$t" \
      "$dir/manifest_warm_t$t.json"
  done
  # Thread-count invariance across cache states, not just within one.
  cmp "$dir/pipeline_warm_t1.txt" "$dir/pipeline_warm_t8.txt" ||
    { echo "pipeline output differs between SCA_THREADS=1 and 8" >&2
      exit 1; }
  # The dedicated bench enforces the warm >= 3x speedup and the off/cold/
  # warm digest identity on a larger workload (exits nonzero otherwise).
  (cd "$dir" && SCA_CACHE_DIR="$PWD/bench_store" SCA_THREADS= \
     ../bench/micro_cache)
  echo "=== warm-cache smoke ok ==="
}
cache_smoke

# Perf-history smoke: the regression gate must have both a demonstrated
# pass and a demonstrated failure, or it gates nothing. Three clean runs
# build the baseline; `history check` must accept a fourth identical run,
# reject one slowed down by the SCA_OBS_TEST_DELAY_MS test hook (excluded
# from the env comparability class precisely so the delayed run baselines
# against the clean ones), and reject a tampered stable digest outright.
history_smoke() {
  echo "=== perf-history smoke (build-release) ==="
  local dir=build-release/history-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local hist="$PWD/$dir/history.jsonl"
  local cli=build-release/tools/sca_cli
  run_pipeline() {
    (cd "$dir" &&
     SCA_PIPELINE_ONCE=1 SCA_THREADS=2 SCA_FAULT_RATE=0.05 \
       SCA_CHECKPOINT_DIR= SCA_CACHE_DIR= SCA_HISTORY="$hist" \
       SCA_OBS_TEST_DELAY_MS="${1:-}" \
       ../bench/micro_pipeline > /dev/null)
  }
  local i
  for i in 1 2 3; do run_pipeline; done
  "$cli" history check "$hist" ||
    { echo "history check failed on identical re-runs" >&2; exit 1; }
  run_pipeline 400
  if "$cli" history check "$hist" > /dev/null; then
    echo "history check missed the injected slowdown" >&2; exit 1
  fi
  sed '$ s/"digest":"[0-9a-f]*"/"digest":"0000000000000000"/' "$hist" \
    > "$dir/tampered.jsonl"
  if "$cli" history check "$dir/tampered.jsonl" --factor 1000 > /dev/null
  then
    echo "history check missed a stable-digest change" >&2; exit 1
  fi
  "$cli" history gc "$hist" --keep 2
  "$cli" history list "$hist"
  echo "=== perf-history smoke ok ==="
}
history_smoke

# Perf-seed smoke: the committed seed baseline is the pre-rework cost of the
# analysis phase. `history check` compares the three fresh runs against it
# (same bench, threads and env class ⇒ same group) and fails on a slowdown
# or a stable-digest change; the awk gate then enforces the stronger claim
# the zero-copy rework made — analysis at least 2x faster than the seed
# median. Best-of-3 vs the seed *median* damps machine noise on both sides.
perf_seed_smoke() {
  echo "=== perf-seed smoke (build-release) ==="
  local dir=build-release/perf-seed-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local hist="$PWD/$dir/history.jsonl"
  local cli=build-release/tools/sca_cli
  cp tools/perf/seed_baseline.jsonl "$hist"
  # The seed records' env class is exactly "SCA_PIPELINE_ONCE=1". Run under
  # env -i so no stray SCA_* variable from the caller's shell (even one set
  # to the empty string) can split the fresh records into a different,
  # never-compared group.
  local i
  for i in 1 2 3; do
    (cd "$dir" &&
     env -i PATH="$PATH" HOME="$HOME" \
       SCA_PIPELINE_ONCE=1 SCA_THREADS=1 SCA_HISTORY="$hist" \
       SCA_MANIFEST="manifest_$i.json" \
       ../bench/micro_pipeline > /dev/null)
  done
  "$cli" history check "$hist" ||
    { echo "history check failed against the seed baseline" >&2; exit 1; }
  awk '
    match($0, /"analysis":[0-9.eE+-]+/) {
      v = substr($0, RSTART + 11, RLENGTH - 11) + 0
      a[++n] = v
    }
    END {
      if (n != 6) {
        print "perf-seed smoke: expected 6 analysis records, got " n
        exit 1
      }
      # Median of the three seed records = sum minus min minus max.
      lo = a[1]; hi = a[1]
      for (i = 2; i <= 3; i++) {
        if (a[i] < lo) lo = a[i]
        if (a[i] > hi) hi = a[i]
      }
      med = a[1] + a[2] + a[3] - lo - hi
      best = a[4]
      for (i = 5; i <= 6; i++) if (a[i] < best) best = a[i]
      printf "seed median %.6fs, best new %.6fs, speedup %.2fx\n", \
             med, best, med / best
      if (best * 2 > med) {
        print "perf-seed smoke: analysis phase no longer >= 2x faster " \
              "than the seed baseline"
        exit 1
      }
    }
  ' "$hist" || exit 1
  echo "=== perf-seed smoke ok ==="
}
perf_seed_smoke

# Serve-chaos smoke: the sharded serving stack's hard invariant is that a
# chaos schedule (mid-run slow + kill, per-attempt fault injection) changes
# WHICH shard serves and WHAT the telemetry says — never the bytes of a
# successful response. macro_serve runs a healthy, a chaos and an overload
# pass over one request stream and exits nonzero unless chaos successes are
# byte-identical to the healthy run, availability stays >= 99% and the
# drain record honestly matches the observed counts; the shell re-checks
# the healthy/chaos digest columns so a digest mismatch is visible in the
# CI log, not just as an exit code. A JSONL round-trip through `sca_cli
# serve` then proves the wire loop is deterministic (two identical runs),
# drains gracefully under a kill + shutdown schedule, and feeds the same
# perf-history gate as every bench. (The serve/sharded unit tests also run
# under TSan via the build-tsan suite below.)
serve_chaos_smoke() {
  echo "=== serve-chaos smoke (build-release) ==="
  local dir=build-release/serve-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local hist="$PWD/$dir/history.jsonl"
  local cli=build-release/tools/sca_cli

  (cd "$dir" &&
   SCA_THREADS=4 SCA_SHARDS=4 SCA_FAULT_RATE=0.15 SCA_HISTORY="$hist" \
     ../bench/macro_serve > macro_serve.out) ||
    { cat "$dir/macro_serve.out" >&2
      echo "macro_serve chaos assertions failed" >&2; exit 1; }
  local healthy_digest chaos_digest
  healthy_digest=$(awk -F'|' '$2 ~ /healthy/ {
    gsub(/[[:space:]]/, "", $9); print $9}' "$dir/macro_serve.out")
  chaos_digest=$(awk -F'|' '$2 ~ /chaos/ {
    gsub(/[[:space:]]/, "", $9); print $9}' "$dir/macro_serve.out")
  [ -n "$healthy_digest" ] && [ "$healthy_digest" = "$chaos_digest" ] ||
    { echo "serve-chaos smoke: chaos ok-digest '$chaos_digest' !=" \
           "healthy '$healthy_digest'" >&2; exit 1; }
  echo "healthy/chaos ok-digest $healthy_digest"

  serve_stream() {
    cat <<'EOF'
{"op":"generate","id":"a0","chain":0,"challenge":0}
{"op":"generate","id":"b0","chain":1,"challenge":1}
{"op":"generate","id":"a1","chain":0,"challenge":2}
{"op":"kill_shard","id":"c1","shard":1}
{"op":"generate","id":"b1","chain":1,"challenge":3}
{"op":"shutdown","id":"c2"}
EOF
  }
  local run
  for run in 1 2; do
    serve_stream |
      env SCA_THREADS=4 SCA_SHARDS=2 SCA_HISTORY="$hist" \
        "$cli" serve > "$dir/serve_$run.jsonl" 2> /dev/null ||
      { echo "sca_cli serve run $run failed" >&2; exit 1; }
  done
  cmp -s "$dir/serve_1.jsonl" "$dir/serve_2.jsonl" ||
    { echo "serve-chaos smoke: two clean serve runs diverged" >&2; exit 1; }
  grep -q '"status":"rejected"' "$dir/serve_1.jsonl" ||
    { echo "serve-chaos smoke: shutdown did not reject queued work" >&2
      exit 1; }
  grep -q '"event":"drain"' "$dir/serve_1.jsonl" ||
    { echo "serve-chaos smoke: no drain record emitted" >&2; exit 1; }

  "$cli" history check "$hist" ||
    { echo "history check failed over serve-smoke records" >&2; exit 1; }
  echo "=== serve-chaos smoke ok ==="
}
serve_chaos_smoke

# Serve-telemetry smoke: the telemetry layer's hard invariant is that it
# OBSERVES the serving path without participating in it. One stream is
# served three ways: a plain baseline; telemetry explicitly off but fully
# logged (SCA_SERVE_TIMING=0 + SCA_LOG) at a different thread count and
# with the same fault schedule — the bytes must equal the baseline; and
# SCA_SERVE_TIMING=1, where every data response must carry a "timing"
# object. The in-band stats ops must report live queue/latency/shard
# fields ("--" availability while idle), serve-report must reconstruct
# every executed request from the event log, and macro_serve_load must
# pass its steady/replay/echo/surge assertions, land the serve sketches
# and requests/sec in the manifest, and clear the perf-history gate.
serve_telemetry_smoke() {
  echo "=== serve-telemetry smoke (build-release) ==="
  local dir=build-release/serve-telemetry-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local hist="$PWD/$dir/history.jsonl"
  local cli=build-release/tools/sca_cli

  telemetry_stream() {
    cat <<'EOF'
{"op":"stats","id":"s0"}
{"op":"generate","id":"a0","chain":0,"challenge":0}
{"op":"generate","id":"b0","chain":1,"challenge":1}
{"op":"transform","id":"a1","chain":0,"source":"int main() { return 0; }"}
{"op":"slow_shard","id":"c0","shard":0,"slowed":0}
{"op":"stats","id":"s1"}
EOF
  }

  telemetry_stream |
    env SCA_THREADS=4 SCA_SHARDS=2 SCA_FAULT_RATE=0.1 \
      "$cli" serve > "$dir/baseline.jsonl" 2> /dev/null ||
    { echo "serve-telemetry smoke: baseline serve failed" >&2; exit 1; }
  telemetry_stream |
    env SCA_THREADS=1 SCA_SHARDS=2 SCA_FAULT_RATE=0.1 SCA_SERVE_TIMING=0 \
      SCA_LOG="$dir/events.jsonl" \
      "$cli" serve > "$dir/timing_off.jsonl" 2> /dev/null ||
    { echo "serve-telemetry smoke: timing-off serve failed" >&2; exit 1; }
  cmp -s "$dir/baseline.jsonl" "$dir/timing_off.jsonl" ||
    { echo "serve-telemetry smoke: SCA_SERVE_TIMING=0 + SCA_LOG changed" \
           "response bytes" >&2; exit 1; }

  telemetry_stream |
    env SCA_THREADS=4 SCA_SHARDS=2 SCA_FAULT_RATE=0.1 SCA_SERVE_TIMING=1 \
      SCA_LOG="$dir/events_timing.jsonl" \
      "$cli" serve > "$dir/timing_on.jsonl" 2> /dev/null ||
    { echo "serve-telemetry smoke: timing-on serve failed" >&2; exit 1; }
  local data_lines timing_lines
  data_lines=$(grep -cE '"status":"(ok|error)"' "$dir/timing_on.jsonl" ||
               true)
  timing_lines=$(grep -c '"timing":{' "$dir/timing_on.jsonl" || true)
  # Stats responses report status ok too; only the three data requests
  # carry a timing echo.
  [ "$timing_lines" -eq 3 ] && [ "$data_lines" -ge 3 ] ||
    { echo "serve-telemetry smoke: expected 3 timing echoes, got" \
           "$timing_lines (data lines: $data_lines)" >&2; exit 1; }

  grep -q '"id":"s0".*"availability_pct":"--"' "$dir/baseline.jsonl" ||
    { echo "serve-telemetry smoke: idle stats should render -- " >&2
      exit 1; }
  grep -q '"id":"s1".*"queue_depth":' "$dir/baseline.jsonl" &&
    grep -q '"id":"s1".*"latency":{"count":' "$dir/baseline.jsonl" &&
    grep -q '"id":"s1".*"shards":\[' "$dir/baseline.jsonl" ||
    { echo "serve-telemetry smoke: live stats op missing fields" >&2
      exit 1; }

  "$cli" serve-report "$dir/events_timing.jsonl" --slowest 3 \
    > "$dir/report.txt" ||
    { echo "serve-telemetry smoke: serve-report failed" >&2; exit 1; }
  grep -q '^serve-report: 3 request(s) reconstructed' "$dir/report.txt" &&
    grep -q 'slowest requests:' "$dir/report.txt" &&
    grep -q 'slo table:' "$dir/report.txt" ||
    { echo "serve-telemetry smoke: report did not reconstruct the run" >&2
      cat "$dir/report.txt" >&2; exit 1; }

  (cd "$dir" &&
   SCA_THREADS=4 SCA_HISTORY="$hist" \
     ../bench/macro_serve_load > macro_serve_load.out) ||
    { cat "$dir/macro_serve_load.out" >&2
      echo "macro_serve_load assertions failed" >&2; exit 1; }
  local manifest="$dir/bench_out/manifest.macro_serve_load.json"
  grep -q '"schema":"sca-manifest-v2"' "$manifest" &&
    grep -q '"serve_latency_s":{"count":' "$manifest" &&
    grep -q '"serve_queue_depth":{"count":' "$manifest" &&
    grep -q '"serve_shed_rate_pct":{"count":' "$manifest" &&
    grep -q '"serve_requests_per_s":' "$manifest" ||
    { echo "serve-telemetry smoke: manifest missing serve sketches or" \
           "requests/sec" >&2; exit 1; }
  "$cli" history check "$hist" ||
    { echo "history check failed over serve-telemetry records" >&2
      exit 1; }
  echo "=== serve-telemetry smoke ok ==="
}
serve_telemetry_smoke

# Out-of-core scale smoke: macro_scale generates a small corpus through the
# sharded matrix builder and asserts its own invariants (streaming vs
# resident prediction identity, RSS bound) with a nonzero exit. The shell
# adds the cross-run claims: the stable metrics — which carry the matrix
# content hash and the fold of every streamed prediction — must be
# byte-identical across SCA_THREADS=1/8 and across shard sizes; an
# injected crash must exit nonzero and the resumed build must reuse its
# segments while reproducing the same stable bytes; and the RSS gate gets
# its demonstrated failure, mirroring the slowdown test: three clean runs
# baseline `history check`, then a run with SCA_OBS_TEST_BALLAST_KB
# (excluded from the env class, like the delay hook) must trip an "rss"
# finding.
scale_smoke() {
  echo "=== out-of-core scale smoke (build-release) ==="
  local dir=build-release/scale-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local hist="$PWD/$dir/history.jsonl"
  local cli=build-release/tools/sca_cli

  run_scale() {  # run_scale <tag> <threads> <shard> <corpusdir> [extra env]
    local tag="$1" threads="$2" shard="$3" corpus="$4"; shift 4
    (cd "$dir" &&
     env "$@" SCA_THREADS="$threads" SCA_SCALE_AUTHORS=64 \
       SCA_SCALE_SHARD="$shard" SCA_SCALE_TRAIN_AUTHORS=24 \
       SCA_SCALE_TREES=6 SCA_SCALE_DIR="$corpus" \
       SCA_CHECKPOINT_DIR= SCA_CACHE_DIR= \
       SCA_MANIFEST="manifest_$tag.json" \
       ../bench/macro_scale > "out_$tag.txt")
  }

  run_scale t1 1 16 corpus_t1 ||
    { cat "$dir/out_t1.txt" >&2; echo "macro_scale t1 failed" >&2; exit 1; }
  run_scale t8 8 16 corpus_t8 ||
    { cat "$dir/out_t8.txt" >&2; echo "macro_scale t8 failed" >&2; exit 1; }
  run_scale shard7 8 7 corpus_shard7 ||
    { echo "macro_scale shard-size-7 run failed" >&2; exit 1; }
  local tag
  for tag in t1 t8 shard7; do
    "$cli" metrics "$dir/manifest_$tag.json" --stable \
      > "$dir/stable_$tag.json"
  done
  cmp "$dir/stable_t1.json" "$dir/stable_t8.json" ||
    { echo "scale smoke: stable metrics differ between SCA_THREADS=1 and 8" \
        >&2; exit 1; }
  cmp "$dir/stable_t8.json" "$dir/stable_shard7.json" ||
    { echo "scale smoke: stable metrics depend on the shard size" >&2
      exit 1; }
  grep -q '"rusage_max_rss_kb":' "$dir/manifest_t1.json" ||
    { echo "scale smoke: manifest carries no peak-RSS gauge" >&2; exit 1; }

  # Injected crash: nonzero exit, partial manifest, segments left behind;
  # the resume reuses them and reproduces the clean runs' stable bytes.
  if run_scale crash 2 16 corpus_crash SCA_SCALE_CRASH_SHARDS=2; then
    echo "scale smoke: injected crash did not fail the build" >&2; exit 1
  fi
  ls "$dir"/corpus_crash/seg_* > /dev/null 2>&1 ||
    { echo "scale smoke: crash left no segment checkpoints" >&2; exit 1; }
  run_scale resume 2 16 corpus_crash ||
    { echo "macro_scale resume run failed" >&2; exit 1; }
  grep -Eq '"corpus_shards_resumed":[1-9]' "$dir/manifest_resume.json" ||
    { echo "scale smoke: resume rebuilt everything from scratch" >&2
      exit 1; }
  "$cli" metrics "$dir/manifest_resume.json" --stable \
    > "$dir/stable_resume.json"
  cmp "$dir/stable_t1.json" "$dir/stable_resume.json" ||
    { echo "scale smoke: crash/resume changed the stable metrics" >&2
      exit 1; }

  # RSS gate, both directions: clean re-runs pass, a ballast-bloated run
  # (~12x this workload's ~20 MB peak, far past the 1.5x/32 MiB gates)
  # must be flagged as an "rss" regression.
  local i
  for i in 1 2 3; do
    run_scale "hist$i" 2 16 corpus_hist SCA_HISTORY="$hist" ||
      { echo "macro_scale history run $i failed" >&2; exit 1; }
  done
  "$cli" history check "$hist" ||
    { echo "history check failed on identical scale re-runs" >&2; exit 1; }
  run_scale ballast 2 16 corpus_hist SCA_HISTORY="$hist" \
      SCA_OBS_TEST_BALLAST_KB=262144 ||
    { echo "macro_scale ballast run failed" >&2; exit 1; }
  if "$cli" history check "$hist" > "$dir/rss_check.txt" 2>&1; then
    echo "history check missed the injected RSS blow-up" >&2; exit 1
  fi
  grep -q 'rss' "$dir/rss_check.txt" ||
    { echo "history check failed for a non-rss reason:" >&2
      cat "$dir/rss_check.txt" >&2; exit 1; }
  echo "=== out-of-core scale smoke ok ==="
}
scale_smoke

# Checkpoint-compaction smoke: chains written by a real pipeline run are
# folded into the single-file pack, the inspector must list them as packed,
# and a rerun served from the pack must reproduce the loose-file run's
# pipeline digests byte for byte.
compaction_smoke() {
  echo "=== checkpoint-compaction smoke (build-release) ==="
  local dir=build-release/compaction-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local cli=build-release/tools/sca_cli
  local ckpt="$PWD/$dir/ckpt"

  run_once() {
    (cd "$dir" &&
     SCA_PIPELINE_ONCE=1 SCA_THREADS=2 SCA_FAULT_RATE=0.05 \
       SCA_CHECKPOINT_DIR="$ckpt" SCA_CACHE_DIR= \
       ../bench/micro_pipeline) | grep '^\[pipeline\]'
  }
  run_once > "$dir/pipeline_loose.txt"
  ls "$ckpt"/chain_*.jsonl > /dev/null 2>&1 ||
    { echo "compaction smoke: pipeline wrote no loose chains" >&2; exit 1; }

  "$cli" checkpoints "$ckpt" --compact > "$dir/compact.txt" ||
    { echo "compaction smoke: --compact failed" >&2; exit 1; }
  if ls "$ckpt"/chain_*.jsonl > /dev/null 2>&1; then
    echo "compaction smoke: loose chains survived compaction" >&2; exit 1
  fi
  "$cli" checkpoints "$ckpt" > "$dir/inspect.txt" ||
    { echo "compaction smoke: inspector rejected the packed dir" >&2
      exit 1; }
  grep -q 'pack:' "$dir/inspect.txt" ||
    { echo "compaction smoke: inspector lists no packed chains" >&2
      exit 1; }

  run_once > "$dir/pipeline_packed.txt"
  cmp "$dir/pipeline_loose.txt" "$dir/pipeline_packed.txt" ||
    { echo "compaction smoke: pack-resumed run diverged from loose run" >&2
      exit 1; }
  echo "=== checkpoint-compaction smoke ok ==="
}
compaction_smoke

# Flight-recorder smoke: the recorder's hard invariant is that it OBSERVES
# without participating — stable output bytes are identical with the rings
# and watchdog armed or disabled. Then both forensic paths are exercised
# for real: a wedged pool task must trip the watchdog dump, and a SIGSEGV
# delivered mid-chaos-run must leave a postmortem the offline reconstructor
# can render.
flight_smoke() {
  echo "=== flight-recorder smoke (build-release) ==="
  local dir=build-release/flight-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local cli=build-release/tools/sca_cli

  # 1) Byte-identity: recorder+watchdog on vs recorder off, at 1 and 8
  # threads. A clean run must also leave no watchdog dump behind.
  local t mode
  for t in 1 8; do
    for mode in on off; do
      local events=256
      [ "$mode" = off ] && events=0
      (cd "$dir" &&
       SCA_PIPELINE_ONCE=1 SCA_THREADS=$t SCA_FAULT_RATE=0.05 \
         SCA_CHECKPOINT_DIR= SCA_CACHE_DIR= \
         SCA_FLIGHT_EVENTS=$events SCA_WATCHDOG_S=2 \
         SCA_FLIGHT_DIR="flight_t${t}_$mode" \
         SCA_MANIFEST="manifest_t${t}_$mode.json" \
         ../bench/micro_pipeline) |
        grep '^\[pipeline\]' > "$dir/pipeline_t${t}_$mode.txt"
      "$cli" metrics "$dir/manifest_t${t}_$mode.json" --stable \
        > "$dir/stable_t${t}_$mode.json"
    done
    cmp "$dir/pipeline_t${t}_on.txt" "$dir/pipeline_t${t}_off.txt" ||
      { echo "flight smoke: recorder changed pipeline digests (t=$t)" >&2
        exit 1; }
    cmp "$dir/stable_t${t}_on.json" "$dir/stable_t${t}_off.json" ||
      { echo "flight smoke: recorder changed stable metrics (t=$t)" >&2
        exit 1; }
    if [ -e "$dir/flight_t${t}_on/watchdog.json" ]; then
      echo "flight smoke: watchdog dumped on a clean run (t=$t)" >&2
      exit 1
    fi
  done
  cmp "$dir/stable_t1_on.json" "$dir/stable_t8_on.json" ||
    { echo "flight smoke: stable metrics differ between threads" >&2
      exit 1; }

  # 2) Wedged pool task (test hook stalls the first task for 6s) must trip
  # the 1s watchdog; the run still completes, the dump names the stall.
  (cd "$dir" &&
   SCA_PIPELINE_ONCE=1 SCA_THREADS=4 SCA_FAULT_RATE=0.05 \
     SCA_CHECKPOINT_DIR= SCA_CACHE_DIR= \
     SCA_OBS_TEST_STALL_MS=6000 SCA_WATCHDOG_S=1 \
     SCA_FLIGHT_DIR=flight-wedge SCA_MANIFEST=manifest_wedge.json \
     ../bench/micro_pipeline > wedge.out 2>&1) ||
    { cat "$dir/wedge.out" >&2
      echo "flight smoke: wedged run did not complete" >&2; exit 1; }
  [ -s "$dir/flight-wedge/watchdog.json" ] ||
    { echo "flight smoke: watchdog never dumped on the wedged run" >&2
      exit 1; }
  grep -q '"cause":"watchdog_stall"' "$dir/flight-wedge/watchdog.json" ||
    { echo "flight smoke: watchdog dump has wrong cause" >&2; exit 1; }
  "$cli" postmortem "$dir/flight-wedge/watchdog.json" \
    > "$dir/wedge_report.txt" ||
    { echo "flight smoke: postmortem could not render watchdog dump" >&2
      exit 1; }
  grep -q 'suspected stall site' "$dir/wedge_report.txt" ||
    { echo "flight smoke: watchdog report names no stall site" >&2
      exit 1; }

  # 3) SIGSEGV mid-chaos-serve: the async-signal-safe handler must leave a
  # parseable postmortem with per-thread timelines. The subshell execs the
  # bench so $! is the bench pid, not a wrapper shell.
  cd "$dir"
  ( exec env SCA_THREADS=4 SCA_SHARDS=4 SCA_FAULT_RATE=0.15 \
      SCA_OBS_TEST_STALL_MS=8000 SCA_FLIGHT_DIR=flight-crash \
      ../bench/macro_serve > crash.out 2>&1 ) &
  local pid=$!
  sleep 2
  kill -SEGV "$pid" 2> /dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  cd - > /dev/null
  [ "$rc" -eq 139 ] ||
    { echo "flight smoke: SEGV run exited $rc, expected 139" >&2; exit 1; }
  [ -s "$dir/flight-crash/postmortem.json" ] ||
    { echo "flight smoke: no postmortem after SIGSEGV" >&2; exit 1; }
  "$cli" postmortem "$dir/flight-crash/postmortem.json" \
    > "$dir/crash_report.txt" ||
    { echo "flight smoke: postmortem could not parse the SIGSEGV dump" >&2
      exit 1; }
  grep -q 'cause=signal signal=SIGSEGV' "$dir/crash_report.txt" ||
    { echo "flight smoke: report missing SIGSEGV cause" >&2; exit 1; }
  grep -q '^thread ' "$dir/crash_report.txt" ||
    { echo "flight smoke: report has no per-thread timelines" >&2
      exit 1; }
  echo "=== flight-recorder smoke ok ==="
}
flight_smoke

# TSan needs a few threads to have anything to race; don't let SCA_THREADS=1
# from the caller's environment turn the parallel paths off.
SCA_THREADS="${SCA_TSAN_THREADS:-4}" \
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=thread
# Faults-on pass: dataset builders read SCA_FAULT_RATE from the environment,
# so the whole suite runs through the resilient client stack (injection,
# retries, validation re-parses) under ASan. The determinism tests still
# pass because retried output is byte-identical to a faults-off run.
SCA_FAULT_RATE="${SCA_CI_FAULT_RATE:-0.05}" \
  run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=address

# ASan+UBSan focused pass over the zero-copy lexer and the arena parser:
# every token is a string_view into a shared buffer and every AST node an
# index into a pooled arena, so out-of-bounds views, misaligned access and
# overflowing offset arithmetic are the realistic failure modes — and the
# fuzz/property suites are the inputs most likely to provoke them. The
# binaries run directly (not via ctest) because only these three targets
# are built in this tree.
ubsan_focus() {
  echo "=== configure build-asan-ubsan (lexer/parser focus) ==="
  cmake -B build-asan-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSCA_SANITIZE=address+undefined
  echo "=== build build-asan-ubsan ==="
  cmake --build build-asan-ubsan -j "$JOBS" \
    --target lexer_test parser_fuzz_test roundtrip_property_test
  echo "=== test build-asan-ubsan ==="
  local t
  for t in lexer_test parser_fuzz_test roundtrip_property_test; do
    "build-asan-ubsan/tests/$t" ||
      { echo "$t failed under ASan+UBSan" >&2; exit 1; }
  done
}
ubsan_focus

echo "=== ci ok ==="
