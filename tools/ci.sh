#!/usr/bin/env bash
# CI entry point: build + test the two configurations that gate a PR.
#
#   1. Release        — the tier-1 suite exactly as ROADMAP.md specifies.
#   2. ThreadSanitizer — the same suite under -fsanitize=thread, proving the
#      shared runtime pool, the feature analysis cache and the parallel
#      fold/forest paths are race-free.
#   3. AddressSanitizer + fault injection — the same suite under
#      -fsanitize=address with SCA_FAULT_RATE>0, so every env-driven
#      pipeline exercises the fault-injection/retry/degradation stack and
#      the parser-hardening paths while ASan watches for memory errors.
#
# After the Release configuration, an observability smoke runs the
# deterministic one-shot pipeline (SCA_PIPELINE_ONCE) at 1 and 8 threads
# with tracing and fault injection on, validates the emitted manifest and
# Chrome trace with sca_cli (which exits nonzero on malformed files or an
# empty metrics snapshot), and byte-compares the stable metrics sections —
# the registry's thread-count-invariance contract, checked on every PR.
#
# Usage: tools/ci.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== test $dir ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release

obs_smoke() {
  echo "=== observability smoke (build-release) ==="
  local dir=build-release/obs-smoke
  rm -rf "$dir" && mkdir -p "$dir"
  local t
  for t in 1 8; do
    # SCA_CHECKPOINT_DIR is cleared so a caller's checkpoint directory
    # cannot turn the second run into a resume (written vs loaded chains
    # would legitimately differ between the two runs).
    (cd "$dir" &&
     SCA_PIPELINE_ONCE=1 SCA_THREADS=$t SCA_FAULT_RATE=0.05 \
       SCA_CHECKPOINT_DIR= \
       SCA_TRACE="trace_t$t.json" SCA_MANIFEST="manifest_t$t.json" \
       ../bench/micro_pipeline)
    # Both inspectors fail on malformed input; --stable additionally fails
    # on an empty metrics snapshot (lost telemetry).
    build-release/tools/sca_cli metrics "$dir/manifest_t$t.json" --stable \
      > "$dir/stable_t$t.json"
    build-release/tools/sca_cli trace "$dir/trace_t$t.json" > /dev/null
    grep -q '"status":"complete"' "$dir/manifest_t$t.json" ||
      { echo "manifest_t$t.json not marked complete" >&2; exit 1; }
  done
  cmp "$dir/stable_t1.json" "$dir/stable_t8.json" ||
    { echo "stable metrics differ between SCA_THREADS=1 and 8" >&2; exit 1; }
  echo "=== observability smoke ok ==="
}
obs_smoke

# TSan needs a few threads to have anything to race; don't let SCA_THREADS=1
# from the caller's environment turn the parallel paths off.
SCA_THREADS="${SCA_TSAN_THREADS:-4}" \
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=thread
# Faults-on pass: dataset builders read SCA_FAULT_RATE from the environment,
# so the whole suite runs through the resilient client stack (injection,
# retries, validation re-parses) under ASan. The determinism tests still
# pass because retried output is byte-identical to a faults-off run.
SCA_FAULT_RATE="${SCA_CI_FAULT_RATE:-0.05}" \
  run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCA_SANITIZE=address

echo "=== ci ok ==="
