// sca_cli — command-line front end for the library.
//
//   sca_cli generate <challenge-id> [year] [seed]   emit LLM code
//   sca_cli transform <file.cpp> [year] [seed]      one GPT(.) rewrite
//   sca_cli inspect <file.cpp>                      inferred style profile
//   sca_cli train <model.txt> [year] [authors]      train + save an oracle
//   sca_cli attribute <model.txt> <file.cpp>        predict the author
//   sca_cli evade <model.txt> <file.cpp> <author>   style-space evasion
//   sca_cli challenges                              list the catalogue
//   sca_cli metrics <manifest.json> [--stable]      inspect a run manifest
//   sca_cli diff <manifestA> <manifestB>            compare two manifests
//   sca_cli trace <trace.json> [--summary]          summarize a Chrome trace
//   sca_cli history list|check|gc [path]            cross-run perf history
//   sca_cli checkpoints [dir] [--purge-stale|--compact]
//                                                   inspect/compact checkpoints
//   sca_cli cache stats|verify|purge [dir] [manifest.json]
//                                                   inspect the result cache
//   sca_cli serve                                   JSONL serving loop on
//                                                   stdin/stdout
//   sca_cli serve-report <log> [--slowest N]        per-request lifecycle
//                                                   report from an SCA_LOG
//
// No arguments (or `help`) prints the full usage listing and exits 0; an
// unknown subcommand prints the same listing to stderr and exits nonzero.
//
// Every command flushes the $SCA_TRACE Chrome trace on exit, so any
// invocation can be profiled: SCA_TRACE=t.json sca_cli train ...
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "core/attribution_model.hpp"
#include "corpus/dataset.hpp"
#include "evasion/evasion.hpp"
#include "llm/checkpoint.hpp"
#include "llm/synthetic_llm.hpp"
#include "obs/flight.hpp"
#include "obs/flight_report.hpp"
#include "obs/history.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/report.hpp"
#include "serve/server.hpp"
#include "style/archetypes.hpp"
#include "style/infer.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

using namespace sca;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void printUsage(std::ostream& out) {
  out <<
      "usage: sca_cli <command> [args]\n"
      "\n"
      "  generate <challenge-id> [year] [seed]     emit LLM code\n"
      "  transform <file.cpp> [year] [seed]        one GPT(.) rewrite\n"
      "  inspect <file.cpp>                        inferred style profile\n"
      "  train <model.txt> [year] [authors]        train + save an oracle\n"
      "  attribute <model.txt> <file.cpp>          predict the author\n"
      "  evade <model.txt> <file.cpp> <author-id>  style-space evasion\n"
      "  challenges                                list the catalogue\n"
      "  metrics <manifest.json> [--stable]        inspect a run manifest\n"
      "  diff <manifestA> <manifestB>              compare two manifests\n"
      "                              (exit 0 iff stable metrics byte-equal)\n"
      "  trace <trace.json> [--summary [--top N]]  summarize a Chrome trace\n"
      "                              (--summary: self-time hotspots and the\n"
      "                               critical path)\n"
      "  history list|check|gc [path] [--window K --factor F --min-delta S\n"
      "                               --min-seconds S --rss-factor F\n"
      "                               --min-rss-delta-kb K --keep N\n"
      "                               --no-digest]\n"
      "                              cross-run perf history; default path\n"
      "                              $SCA_HISTORY or\n"
      "                              bench_out/history/history.jsonl\n"
      "  checkpoints [dir] [--purge-stale] [--compact]\n"
      "                              inspect chain checkpoints; with\n"
      "                              --purge-stale, delete files whose\n"
      "                              header contradicts their filename;\n"
      "                              with --compact, fold loose files into\n"
      "                              the single chains.pack manifest\n"
      "                              (default $SCA_CHECKPOINT_DIR)\n"
      "  cache stats|verify|purge [dir] [manifest.json]\n"
      "                              inspect the result cache\n"
      "                              (default dir: $SCA_CACHE_DIR)\n"
      "  serve                       JSONL serving loop on stdin/stdout\n"
      "                              over a sharded LLM fleet (SCA_SHARDS,\n"
      "                              SCA_FAULT_RATE, SCA_SERVE_QUEUE,\n"
      "                              SCA_SERVE_BATCH, SCA_SERVE_BURST,\n"
      "                              SCA_SERVE_DEADLINE_S, SCA_SERVE_TIMING;\n"
      "                              schema in src/serve/protocol.hpp)\n"
      "  serve-report <log> [--slowest N]\n"
      "                              reconstruct per-request lifecycles\n"
      "                              from a structured event log (SCA_LOG):\n"
      "                              slowest-N requests and per-op SLO\n"
      "                              table\n"
      "  postmortem <file> [--events N]\n"
      "                              reconstruct an sca-postmortem-v1\n"
      "                              flight-recorder dump (watchdog stall\n"
      "                              or fatal-signal crash): suspected\n"
      "                              stall site, per-thread active spans\n"
      "                              and last-N event timelines\n"
      "  help                        this listing\n";
}

int usage() {
  printUsage(std::cerr);
  return 2;
}

int cmdGenerate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  llm::LlmOptions options;
  options.year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  options.seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  llm::SyntheticLlm llm(options);
  std::cout << llm.generate(corpus::challengeById(args[0]));
  return 0;
}

int cmdTransform(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  llm::LlmOptions options;
  options.year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  options.seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  llm::SyntheticLlm llm(options);
  std::cout << llm.transform(readFile(args[0]));
  return 0;
}

int cmdInspect(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const style::StyleProfile profile =
      style::inferProfileFromSource(readFile(args[0]));
  std::cout << profile.describe() << '\n';
  const style::NearestArchetype nearest = style::nearestArchetype(profile);
  std::cout << "nearest LLM archetype #" << nearest.index << " at distance "
            << nearest.distance << '\n';
  return 0;
}

int cmdTrain(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const int year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  const std::size_t authors =
      args.size() > 2 ? std::stoull(args[2]) : 60;
  std::cerr << "training " << authors << "-author oracle for " << year
            << "...\n";
  const corpus::YearDataset ds = corpus::buildYearDataset(year, authors);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& sample : ds.samples) {
    sources.push_back(sample.source);
    labels.push_back(sample.authorId);
  }
  core::AttributionModel model;
  model.train(sources, labels);
  model.saveFile(args[0]);
  std::cerr << "saved " << args[0] << " (" << model.classCount()
            << " classes)\n";
  return 0;
}

int cmdAttribute(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const core::AttributionModel model =
      core::AttributionModel::loadFile(args[0]);
  const std::string source = readFile(args[1]);
  const int predicted = model.predict(source);
  const std::vector<double> votes = model.predictProba(source);
  std::cout << "A" << predicted << " (confidence "
            << votes[static_cast<std::size_t>(predicted)] << ")\n";
  return 0;
}

int cmdEvade(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const core::AttributionModel model =
      core::AttributionModel::loadFile(args[0]);
  evasion::StyleEvader evader(model, evasion::EvasionConfig{});
  const evasion::EvasionResult result =
      evader.evade(readFile(args[1]), std::stoi(args[2]));
  std::cerr << "A" << result.originalPrediction << " -> A"
            << result.finalPrediction << " in " << result.classifierQueries
            << " queries (" << (result.evaded ? "evaded" : "NOT evaded")
            << ")\n";
  std::cout << result.source;
  return result.evaded ? 0 : 1;
}

int cmdChallenges() {
  for (const corpus::Challenge& ch : corpus::catalogue()) {
    std::cout << ch.id << "  -  " << ch.title << '\n';
  }
  return 0;
}

// --- observability inspectors ---------------------------------------------

/// Top-level string/number field of one JSON object, unquoted ("" if
/// absent).
std::string manifestField(const std::string& json, const std::string& key) {
  std::vector<std::pair<std::string, std::string>> entries;
  if (!obs::topLevelEntries(json, &entries)) return "";
  for (const auto& [name, value] : entries) {
    if (name != key) continue;
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      return value.substr(1, value.size() - 2);
    }
    return value;
  }
  return "";
}

void printObjectEntries(const std::string& objectJson,
                        const std::string& indent) {
  std::vector<std::pair<std::string, std::string>> entries;
  if (!obs::topLevelEntries(objectJson, &entries)) return;
  for (const auto& [name, value] : entries) {
    std::cout << indent << name << " = " << value << '\n';
  }
}

int cmdMetrics(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const bool stableOnly =
      std::find(args.begin(), args.end(), "--stable") != args.end();
  const std::string manifest = readFile(args[0]);
  const std::string metrics = obs::extractJsonObject(manifest, "metrics");
  if (metrics.empty()) {
    std::cerr << "error: " << args[0] << " has no \"metrics\" object\n";
    return 1;
  }

  if (stableOnly) {
    // Raw canonical bytes, so two manifests can be compared with cmp(1).
    // An empty stable section is an error: an instrumented run always
    // records something, so emptiness means telemetry was lost.
    std::vector<std::pair<std::string, std::string>> counters;
    if (!obs::topLevelEntries(obs::extractJsonObject(metrics, "counters"),
                              &counters)) {
      std::cerr << "error: malformed stable metrics in " << args[0] << '\n';
      return 1;
    }
    if (counters.empty()) {
      std::cerr << "error: empty stable metrics snapshot in " << args[0]
                << '\n';
      return 1;
    }
    std::cout << metrics << '\n';
    return 0;
  }

  std::cout << "bench:    " << manifestField(manifest, "bench") << '\n'
            << "status:   " << manifestField(manifest, "status") << '\n';
  if (const std::string cause = manifestField(manifest, "partial_cause");
      !cause.empty()) {
    std::cout << "cause:    " << cause << '\n';
  }
  std::cout << "git_sha:  " << manifestField(manifest, "git_sha") << '\n'
            << "threads:  " << manifestField(manifest, "threads") << '\n';
  std::cout << "stable counters:\n";
  printObjectEntries(obs::extractJsonObject(metrics, "counters"), "  ");
  const std::string histograms = obs::extractJsonObject(metrics,
                                                        "histograms");
  if (histograms.size() > 2) {
    std::cout << "stable histograms:\n";
    printObjectEntries(histograms, "  ");
  }
  const std::string runtimeMetrics =
      obs::extractJsonObject(manifest, "runtime_metrics");
  if (!runtimeMetrics.empty()) {
    std::cout << "runtime counters:\n";
    printObjectEntries(obs::extractJsonObject(runtimeMetrics, "counters"),
                       "  ");
    std::cout << "gauges:\n";
    printObjectEntries(obs::extractJsonObject(runtimeMetrics, "gauges"),
                       "  ");
  }
  std::cout << "phases (s):\n";
  printObjectEntries(obs::extractJsonObject(manifest, "phases"), "  ");
  return 0;
}

/// `trace <file> --summary [--top N]`: the analytics view — per-name self
/// time hotspots plus the critical path, both from trace_analysis.hpp.
int cmdTraceSummary(const std::string& path, std::size_t topN) {
  const util::Result<std::vector<obs::TraceEvent>> parsed =
      obs::parseChromeTrace(readFile(path));
  if (!parsed.ok()) {
    std::cerr << "error: " << path << ": " << parsed.status().toString()
              << '\n';
    return 1;
  }
  const std::vector<obs::TraceEvent>& events = parsed.value();
  std::cout << events.size() << " spans\n";

  std::cout << "hotspots (by self time):\n";
  for (const obs::SpanStats& stats : obs::spanHotspots(events, topN)) {
    std::cout << "  " << stats.name << ": " << stats.count << " spans, self "
              << util::formatDouble(static_cast<double>(stats.selfNs) / 1e9,
                                    6)
              << " s, total "
              << util::formatDouble(static_cast<double>(stats.totalNs) / 1e9,
                                    6)
              << " s\n";
  }

  std::cout << "critical path:\n";
  for (const obs::CriticalPathStep& step : obs::criticalPath(events)) {
    std::cout << "  " << step.name << " ("
              << util::formatDouble(
                     static_cast<double>(step.durationNs) / 1e9, 6)
              << " s, self "
              << util::formatDouble(static_cast<double>(step.selfNs) / 1e9, 6)
              << " s)\n";
  }
  return 0;
}

int cmdTrace(const std::vector<std::string>& args) {
  std::string path;
  bool summary = false;
  std::size_t topN = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--summary") {
      summary = true;
    } else if (args[i] == "--top") {
      if (i + 1 >= args.size()) return usage();
      topN = std::stoull(args[++i]);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (summary) return cmdTraceSummary(path, topN);

  const std::string trace = readFile(path);
  std::vector<std::string> events;
  if (!obs::topLevelElements(obs::extractJsonArray(trace, "traceEvents"),
                             &events)) {
    std::cerr << "error: " << path
              << " is not a Chrome trace (no traceEvents array)\n";
    return 1;
  }
  if (events.empty()) {
    std::cerr << "error: " << path << " contains no events\n";
    return 1;
  }

  struct Row {
    std::size_t count = 0;
    double totalUs = 0.0;
  };
  std::map<std::string, Row> byName;
  for (const std::string& event : events) {
    const std::string name = manifestField(event, "name");
    const std::string dur = manifestField(event, "dur");
    if (name.empty() || dur.empty()) {
      std::cerr << "error: malformed event in " << path << '\n';
      return 1;
    }
    Row& row = byName[name];
    ++row.count;
    row.totalUs += std::strtod(dur.c_str(), nullptr);
  }
  std::cout << events.size() << " events\n";
  for (const auto& [name, row] : byName) {
    std::cout << "  " << name << ": " << row.count << " spans, "
              << util::formatDouble(row.totalUs / 1e6, 6) << " s\n";
  }
  return 0;
}

/// Numeric top-level entries of one JSON object as a name->double map
/// (non-numeric values parse as 0, which never occurs in these sections).
std::map<std::string, double> numericEntries(const std::string& objectJson) {
  std::map<std::string, double> out;
  std::vector<std::pair<std::string, std::string>> entries;
  if (!obs::topLevelEntries(objectJson, &entries)) return out;
  for (const auto& [name, value] : entries) {
    out.emplace(name, std::strtod(value.c_str(), nullptr));
  }
  return out;
}

/// `diff <manifestA> <manifestB>`: exit 0 iff the stable metrics sections
/// are byte-equal; either way, print per-counter and per-phase deltas so
/// "what changed" never requires eyeballing raw JSON.
int cmdDiff(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string manifestA = readFile(args[0]);
  const std::string manifestB = readFile(args[1]);
  const std::string metricsA = obs::extractJsonObject(manifestA, "metrics");
  const std::string metricsB = obs::extractJsonObject(manifestB, "metrics");
  if (metricsA.empty() || metricsB.empty()) {
    std::cerr << "error: "
              << (metricsA.empty() ? args[0] : args[1])
              << " has no \"metrics\" object\n";
    return 2;
  }

  std::cout << "A: " << args[0] << " (bench "
            << manifestField(manifestA, "bench") << ", "
            << manifestField(manifestA, "status") << ")\n"
            << "B: " << args[1] << " (bench "
            << manifestField(manifestB, "bench") << ", "
            << manifestField(manifestB, "status") << ")\n";

  const std::map<std::string, double> countersA =
      numericEntries(obs::extractJsonObject(metricsA, "counters"));
  const std::map<std::string, double> countersB =
      numericEntries(obs::extractJsonObject(metricsB, "counters"));
  std::map<std::string, std::pair<double, double>> merged;
  for (const auto& [name, value] : countersA) merged[name].first = value;
  for (const auto& [name, value] : countersB) merged[name].second = value;
  std::size_t differing = 0;
  for (const auto& [name, values] : merged) {
    if (values.first == values.second) continue;
    ++differing;
    std::cout << "  counter " << name << ": "
              << util::formatDouble(values.first, 0) << " -> "
              << util::formatDouble(values.second, 0) << '\n';
  }
  if (differing == 0) std::cout << "  stable counters: identical\n";

  const std::map<std::string, double> phasesA =
      numericEntries(obs::extractJsonObject(manifestA, "phases"));
  const std::map<std::string, double> phasesB =
      numericEntries(obs::extractJsonObject(manifestB, "phases"));
  std::map<std::string, std::pair<double, double>> phases;
  for (const auto& [name, value] : phasesA) phases[name].first = value;
  for (const auto& [name, value] : phasesB) phases[name].second = value;
  for (const auto& [name, values] : phases) {
    std::cout << "  phase " << name << ": "
              << util::formatDouble(values.first, 3) << " s -> "
              << util::formatDouble(values.second, 3) << " s ("
              << (values.second >= values.first ? "+" : "")
              << util::formatDouble(values.second - values.first, 3)
              << ")\n";
  }

  const bool identical = metricsA == metricsB;
  std::cout << (identical ? "stable metrics identical\n"
                          : "stable metrics DIFFER\n");
  return identical ? 0 : 1;
}

/// `history list|check|gc`: the cross-run perf history inspectors.
int cmdHistory(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& action = args[0];
  if (action != "list" && action != "check" && action != "gc") {
    return usage();
  }

  std::string path;
  obs::RegressionPolicy policy;
  std::size_t keep = 20;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const bool hasValue = i + 1 < args.size();
    if (arg == "--no-digest") {
      policy.checkDigest = false;
    } else if (arg == "--window" && hasValue) {
      policy.window = std::stoull(args[++i]);
    } else if (arg == "--factor" && hasValue) {
      policy.factor = std::stod(args[++i]);
    } else if (arg == "--min-delta" && hasValue) {
      policy.minDeltaSeconds = std::stod(args[++i]);
    } else if (arg == "--min-seconds" && hasValue) {
      policy.minPhaseSeconds = std::stod(args[++i]);
    } else if (arg == "--rss-factor" && hasValue) {
      policy.rssFactor = std::stod(args[++i]);
    } else if (arg == "--min-rss-delta-kb" && hasValue) {
      policy.minRssDeltaKb = std::stoull(args[++i]);
    } else if (arg == "--keep" && hasValue) {
      keep = std::stoull(args[++i]);
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) path = obs::configuredHistoryPath();
  if (path.empty()) {
    std::cerr << "error: history disabled (SCA_HISTORY=off) and no path "
                 "given\n";
    return 2;
  }

  obs::HistoryStore store(path);

  if (action == "gc") {
    const util::Result<std::size_t> dropped = store.gc(keep);
    if (!dropped.ok()) {
      std::cerr << "error: " << dropped.status().toString() << '\n';
      return 1;
    }
    std::cout << "dropped " << dropped.value()
              << " record(s), kept the newest " << keep << " per group\n";
    return 0;
  }

  const obs::HistoryStore::LoadResult loaded = store.load();
  if (loaded.skippedLines > 0) {
    std::cout << "note: skipped " << loaded.skippedLines
              << " torn line(s) in " << path << '\n';
  }
  if (!loaded.magicOk || loaded.records.empty()) {
    // An absent history is not a failure: the first run of a fresh
    // checkout has nothing to baseline against.
    std::cout << "no history at " << path << '\n';
    return 0;
  }

  if (action == "list") {
    for (const obs::HistoryRecord& record : loaded.records) {
      std::cout << record.bench << "  threads=" << record.threads
                << "  " << (record.complete ? "complete" : "partial ")
                << "  total "
                << util::formatDouble(record.totalSeconds, 3)
                << " s  digest " << record.digest;
      if (!record.gitSha.empty()) {
        std::cout << "  git " << record.gitSha.substr(0, 8);
      }
      if (record.maxRssKb > 0) {
        std::cout << "  rss " << record.maxRssKb << " kB";
      }
      std::cout << '\n';
    }
    std::cout << loaded.records.size() << " record(s) in " << path << '\n';
    return 0;
  }

  // check
  const obs::RegressionReport report =
      obs::checkRegressions(loaded.records, policy);
  std::cout << report.groupsChecked << " group(s) checked, "
            << report.groupsSkipped << " skipped (too few baselines)\n";
  for (const obs::RegressionFinding& finding : report.findings) {
    std::cout << "REGRESSION [" << finding.kind << "] " << finding.bench
              << " (" << finding.group << ")";
    if (!finding.phase.empty()) {
      std::cout << " " << finding.phase << ": baseline "
                << util::formatDouble(finding.baseline, 3) << " s -> "
                << util::formatDouble(finding.current, 3) << " s";
    }
    std::cout << "  " << finding.detail << '\n';
  }
  std::cout << (report.ok() ? "ok" : "FAIL") << '\n';
  return report.ok() ? 0 : 1;
}

int cmdCheckpoints(const std::vector<std::string>& args) {
  std::string dir;
  bool purgeStale = false;
  bool compact = false;
  for (const std::string& arg : args) {
    if (arg == "--purge-stale") {
      purgeStale = true;
    } else if (arg == "--compact") {
      compact = true;
    } else if (dir.empty() && arg.rfind("--", 0) != 0) {
      dir = arg;
    } else {
      return usage();
    }
  }
  if (dir.empty()) {
    if (const char* env = std::getenv("SCA_CHECKPOINT_DIR");
        env != nullptr && *env != '\0') {
      dir = env;
    } else {
      std::cerr << "error: no directory given and SCA_CHECKPOINT_DIR unset\n";
      return 2;
    }
  }
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "error: " << dir << " is not a directory\n";
    return 1;
  }

  if (compact) {
    const util::Result<llm::CompactionResult> compacted =
        llm::compactCheckpoints(dir);
    if (!compacted.ok()) {
      std::cerr << "error: " << compacted.status().toString() << '\n';
      return 1;
    }
    std::cout << "packed " << compacted.value().packedChains
              << " chain(s) into " << llm::chainPackPath(dir) << ", removed "
              << compacted.value().removedFiles << " loose file(s)\n";
  }

  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("chain_", 0) == 0 &&
        entry.path().extension() == ".jsonl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  // Compacted chains live inside the pack; report them alongside the loose
  // files (the pack index is name-sorted already).
  std::size_t packedChains = 0;
  const std::string packPath = llm::chainPackPath(dir);
  if (const auto index = llm::readChainPackIndex(packPath); index.ok()) {
    packedChains = index.value().size();
    for (const llm::ChainPackEntry& entry : index.value()) {
      std::cout << "pack:" << entry.name << " (" << entry.length
                << " bytes)\n";
    }
  }

  if (paths.empty()) {
    if (packedChains > 0) {
      std::cout << packedChains << " chain(s) in " << packPath
                << ", no loose checkpoints\n";
    } else {
      std::cout << "no chain checkpoints in " << dir << '\n';
    }
    return 0;
  }

  std::size_t complete = 0;
  std::size_t stale = 0;
  std::size_t purged = 0;
  for (const std::string& path : paths) {
    const llm::CheckpointInfo info = llm::inspectChainCheckpoint(path);
    std::cout << std::filesystem::path(path).filename().string() << ": ";
    if (info.headerOk) {
      std::cout << "y" << info.year << " " << info.setting << " c"
                << info.challenge << " steps " << info.entries << "/"
                << info.steps << " origin " << info.originHash
                << " fault_rate " << info.faultRate << " - " << info.verdict
                << '\n';
    } else {
      std::cout << info.verdict << '\n';
    }
    if (info.complete && !info.stale) ++complete;
    if (info.stale) {
      ++stale;
      if (purgeStale) {
        std::error_code ec;
        if (std::filesystem::remove(path, ec) && !ec) {
          ++purged;
          std::cout << "  purged\n";
        } else {
          std::cout << "  PURGE FAILED: " << ec.message() << '\n';
        }
      }
    }
  }
  std::cout << complete << "/" << paths.size() << " loose chains complete";
  if (packedChains > 0) std::cout << ", " << packedChains << " packed";
  if (stale > 0) {
    std::cout << ", " << stale << " stale";
    if (purgeStale) std::cout << " (" << purged << " purged)";
  }
  std::cout << '\n';
  return 0;
}

/// `serve`: the JSONL serving loop (src/serve/server.hpp) on
/// stdin/stdout. Responses and the drain record go to stdout; the human
/// summary goes to stderr. With SCA_MANIFEST set, the run's manifest is
/// written on exit; with SCA_HISTORY set, one history record is appended —
/// the same artifacts a bench run leaves, so `sca_cli history check` and
/// the CI smoke gates cover serving runs too.
int cmdServe(const std::vector<std::string>& args) {
  if (!args.empty()) return usage();
  // Arm crash forensics for the whole serving session: a wedged shard or a
  // crash mid-stream leaves a postmortem under bench_out/flight/.
  obs::flight::ArmedScope flightScope(obs::flight::armOptionsFromEnv("serve"));
  const auto start = std::chrono::steady_clock::now();
  serve::Server server(serve::ServerOptions::fromEnv());
  const serve::ServeStats stats = server.run(std::cin, std::cout);
  const double totalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  obs::recordProcessRusage();
  const std::size_t threads = runtime::globalPool().size();
  if (const char* manifestPath = std::getenv("SCA_MANIFEST");
      manifestPath != nullptr && *manifestPath != '\0') {
    obs::RunManifestOptions options;
    options.path = manifestPath;
    options.benchName = "serve";
    options.complete = true;
    options.threads = threads;
    const util::Status status = obs::writeRunManifest(options);
    if (!status.isOk()) {
      std::cerr << "[manifest] write failed: " << status.toString() << '\n';
    }
  }
  if (const char* historyPath = std::getenv("SCA_HISTORY");
      historyPath != nullptr && *historyPath != '\0') {
    if (const std::string resolved = obs::configuredHistoryPath();
        !resolved.empty()) {
      obs::HistoryStore store(resolved);
      const util::Status status =
          obs::appendRunHistory(store, "serve", threads, true, totalSeconds);
      if (!status.isOk()) {
        std::cerr << "[history] append failed: " << status.toString() << '\n';
      }
    }
  }

  std::cerr << "served " << stats.ok << "/" << stats.requests
            << " ok (errors " << stats.errors << ", shed " << stats.shed
            << ", rejected " << stats.rejected << ", invalid "
            << stats.invalid << "), availability "
            << stats.availabilityDisplay()
            << (stats.availabilityDefined() ? "%" : "") << "\n";
  return 0;
}

/// `serve-report <log> [--slowest N]`: reconstruct per-request lifecycles
/// from a structured event log (src/serve/report.hpp).
int cmdServeReport(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::size_t slowestN = 5;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--slowest" && i + 1 < args.size()) {
      slowestN = static_cast<std::size_t>(
          std::max(0LL, std::atoll(args[++i].c_str())));
    } else {
      return usage();
    }
  }
  const serve::ServeReport report =
      serve::ServeReport::fromLog(readFile(args[0]));
  std::cout << report.summaryText(slowestN);
  return report.requests().empty() ? 1 : 0;
}

int cmdCache(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& action = args[0];
  std::string dir;
  if (args.size() > 1) {
    dir = args[1];
  } else if (const char* env = std::getenv("SCA_CACHE_DIR");
             env != nullptr && *env != '\0') {
    dir = env;
  } else {
    std::cerr << "error: no directory given and SCA_CACHE_DIR unset\n";
    return 2;
  }

  cache::StoreOptions options;
  options.dir = dir;
  cache::DiskCache store(options);

  if (action == "stats") {
    const cache::DiskCache::Stats stats = store.stats();
    std::cout << "dir:       " << dir << '\n'
              << "entries:   " << store.entryCount() << '\n'
              << "bytes:     " << store.totalBytes() << '\n';
    if (stats.skippedIndexLines > 0) {
      std::cout << "skipped:   " << stats.skippedIndexLines
                << " torn index line(s)\n";
    }
    // With a manifest, report the run's cache effectiveness (the store's
    // counters land in the manifest's runtime_metrics section).
    if (args.size() > 2) {
      const std::string manifest = readFile(args[2]);
      const std::string runtimeMetrics =
          obs::extractJsonObject(manifest, "runtime_metrics");
      std::vector<std::pair<std::string, std::string>> counters;
      if (runtimeMetrics.empty() ||
          !obs::topLevelEntries(
              obs::extractJsonObject(runtimeMetrics, "counters"), &counters)) {
        std::cerr << "error: " << args[2] << " has no runtime counters\n";
        return 1;
      }
      double hits = 0.0;
      double misses = 0.0;
      std::cout << "run " << manifestField(manifest, "bench") << ":\n";
      for (const auto& [name, value] : counters) {
        if (name.rfind("cache_", 0) == 0 || name.rfind("llm_cache_", 0) == 0 ||
            name.rfind("features_cache_", 0) == 0) {
          std::cout << "  " << name << " = " << value << '\n';
        }
        if (name == "cache_hits") hits = std::strtod(value.c_str(), nullptr);
        if (name == "cache_misses") {
          misses = std::strtod(value.c_str(), nullptr);
        }
      }
      // Zero lookups renders "--": a NaN (0/0) or an invented 0.0 would
      // both misreport a run that simply never touched the cache.
      std::cout << "  hit ratio = "
                << (hits + misses > 0.0
                        ? util::formatDouble(hits / (hits + misses), 4)
                        : std::string("--"))
                << '\n';
    }
    return 0;
  }

  if (action == "verify") {
    const cache::DiskCache::VerifyReport report = store.verify();
    std::cout << "dir:      " << dir << '\n'
              << "entries:  " << report.entries << '\n'
              << "bytes:    " << report.bytes << '\n'
              << "orphans:  " << report.orphanValues << '\n';
    for (const std::string& problem : report.problems) {
      std::cout << "PROBLEM:  " << problem << '\n';
    }
    std::cout << (report.ok() ? "ok" : "CORRUPT") << '\n';
    return report.ok() ? 0 : 1;
  }

  if (action == "purge") {
    const util::Status status = store.purge();
    if (!status.isOk()) {
      std::cerr << "error: " << status.toString() << '\n';
      return 1;
    }
    std::cout << "purged " << dir << '\n';
    return 0;
  }

  return usage();
}

/// `postmortem <file> [--events N]`: offline reconstruction of a flight-
/// recorder dump — watchdog stall verdicts and fatal-signal postmortems
/// share the sca-postmortem-v1 schema.
int cmdPostmortem(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string path;
  std::size_t eventsPerThread = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--events") {
      if (i + 1 >= args.size()) return usage();
      eventsPerThread = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (path.empty() && args[i].rfind("--", 0) != 0) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  const util::Result<obs::flight::Postmortem> parsed =
      obs::flight::Postmortem::parse(readFile(path));
  if (!parsed.ok()) {
    std::cerr << "error: " << path << ": " << parsed.status().toString()
              << '\n';
    return 1;
  }
  std::cout << parsed.value().renderText(eventsPerThread);
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& command,
             const std::vector<std::string>& args) {
  if (command == "generate") return cmdGenerate(args);
  if (command == "transform") return cmdTransform(args);
  if (command == "inspect") return cmdInspect(args);
  if (command == "train") return cmdTrain(args);
  if (command == "attribute") return cmdAttribute(args);
  if (command == "evade") return cmdEvade(args);
  if (command == "challenges") return cmdChallenges();
  if (command == "metrics") return cmdMetrics(args);
  if (command == "diff") return cmdDiff(args);
  if (command == "trace") return cmdTrace(args);
  if (command == "history") return cmdHistory(args);
  if (command == "checkpoints") return cmdCheckpoints(args);
  if (command == "cache") return cmdCache(args);
  if (command == "serve") return cmdServe(args);
  if (command == "serve-report") return cmdServeReport(args);
  if (command == "postmortem") return cmdPostmortem(args);
  if (command == "help" || command == "--help" || command == "-h") {
    printUsage(std::cout);
    return 0;
  }
  std::cerr << "error: unknown command \"" << command << "\"\n";
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  util::setLogLevel(util::LogLevel::Warn);
  if (argc < 2) {
    // Bare invocation is a request for orientation, not a mistake.
    printUsage(std::cout);
    return 0;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  int rc = 0;
  try {
    rc = dispatch(command, args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    rc = 1;
  }
  const util::Status traceStatus = obs::flushConfiguredTrace();
  if (!traceStatus.isOk()) {
    std::cerr << "[trace] write failed: " << traceStatus.toString() << '\n';
  }
  return rc;
}
