// sca_cli — command-line front end for the library.
//
//   sca_cli generate <challenge-id> [year] [seed]   emit LLM code
//   sca_cli transform <file.cpp> [year] [seed]      one GPT(.) rewrite
//   sca_cli inspect <file.cpp>                      inferred style profile
//   sca_cli train <model.txt> [year] [authors]      train + save an oracle
//   sca_cli attribute <model.txt> <file.cpp>        predict the author
//   sca_cli evade <model.txt> <file.cpp> <author>   style-space evasion
//   sca_cli challenges                              list the catalogue
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/attribution_model.hpp"
#include "corpus/dataset.hpp"
#include "evasion/evasion.hpp"
#include "llm/synthetic_llm.hpp"
#include "style/archetypes.hpp"
#include "style/infer.hpp"
#include "util/log.hpp"

namespace {

using namespace sca;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  sca_cli generate <challenge-id> [year] [seed]\n"
      "  sca_cli transform <file.cpp> [year] [seed]\n"
      "  sca_cli inspect <file.cpp>\n"
      "  sca_cli train <model.txt> [year] [authors]\n"
      "  sca_cli attribute <model.txt> <file.cpp>\n"
      "  sca_cli evade <model.txt> <file.cpp> <true-author-id>\n"
      "  sca_cli challenges\n";
  return 2;
}

int cmdGenerate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  llm::LlmOptions options;
  options.year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  options.seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  llm::SyntheticLlm llm(options);
  std::cout << llm.generate(corpus::challengeById(args[0]));
  return 0;
}

int cmdTransform(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  llm::LlmOptions options;
  options.year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  options.seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  llm::SyntheticLlm llm(options);
  std::cout << llm.transform(readFile(args[0]));
  return 0;
}

int cmdInspect(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const style::StyleProfile profile =
      style::inferProfileFromSource(readFile(args[0]));
  std::cout << profile.describe() << '\n';
  const style::NearestArchetype nearest = style::nearestArchetype(profile);
  std::cout << "nearest LLM archetype #" << nearest.index << " at distance "
            << nearest.distance << '\n';
  return 0;
}

int cmdTrain(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const int year = args.size() > 1 ? std::stoi(args[1]) : 2018;
  const std::size_t authors =
      args.size() > 2 ? std::stoull(args[2]) : 60;
  std::cerr << "training " << authors << "-author oracle for " << year
            << "...\n";
  const corpus::YearDataset ds = corpus::buildYearDataset(year, authors);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& sample : ds.samples) {
    sources.push_back(sample.source);
    labels.push_back(sample.authorId);
  }
  core::AttributionModel model;
  model.train(sources, labels);
  model.saveFile(args[0]);
  std::cerr << "saved " << args[0] << " (" << model.classCount()
            << " classes)\n";
  return 0;
}

int cmdAttribute(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const core::AttributionModel model =
      core::AttributionModel::loadFile(args[0]);
  const std::string source = readFile(args[1]);
  const int predicted = model.predict(source);
  const std::vector<double> votes = model.predictProba(source);
  std::cout << "A" << predicted << " (confidence "
            << votes[static_cast<std::size_t>(predicted)] << ")\n";
  return 0;
}

int cmdEvade(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const core::AttributionModel model =
      core::AttributionModel::loadFile(args[0]);
  evasion::StyleEvader evader(model, evasion::EvasionConfig{});
  const evasion::EvasionResult result =
      evader.evade(readFile(args[1]), std::stoi(args[2]));
  std::cerr << "A" << result.originalPrediction << " -> A"
            << result.finalPrediction << " in " << result.classifierQueries
            << " queries (" << (result.evaded ? "evaded" : "NOT evaded")
            << ")\n";
  std::cout << result.source;
  return result.evaded ? 0 : 1;
}

int cmdChallenges() {
  for (const corpus::Challenge& ch : corpus::catalogue()) {
    std::cout << ch.id << "  -  " << ch.title << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::setLogLevel(util::LogLevel::Warn);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "generate") return cmdGenerate(args);
    if (command == "transform") return cmdTransform(args);
    if (command == "inspect") return cmdInspect(args);
    if (command == "train") return cmdTrain(args);
    if (command == "attribute") return cmdAttribute(args);
    if (command == "evade") return cmdEvade(args);
    if (command == "challenges") return cmdChallenges();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return usage();
}
