// The paper's full pipeline (Figure 1), narrated stage by stage at reduced
// scale: corpus -> oracle -> ChatGPT generation -> NCT/CT transformation ->
// oracle labeling -> feature-based grouping -> 205-class retraining.
//
//   $ ./attribution_pipeline [year]
#include <cstdlib>
#include <iostream>

#include "core/binary.hpp"
#include "core/experiments.hpp"

int main(int argc, char** argv) {
  using namespace sca;
  const int year = argc > 1 ? std::atoi(argv[1]) : 2018;

  core::ExperimentConfig config;
  config.authorCount = 40;       // scaled down from the paper's 204
  config.steps = 12;             // scaled down from 50
  config.chatgptSetPerChallenge = 6;
  config.model.forest.treeCount = 60;

  core::YearExperiment experiment(year, config);

  std::cout << "== Stage 1: corpus ==\n";
  const corpus::YearDataset& corpus = experiment.corpusData();
  std::cout << corpus.authors.size() << " authors x "
            << corpus.challenges.size() << " challenges = "
            << corpus.samples.size() << " samples\n\n";

  std::cout << "== Stage 2: pre-trained (oracle) authorship model ==\n";
  (void)experiment.oracle();
  std::cout << "trained a " << corpus.authors.size()
            << "-class random forest on the human corpus\n\n";

  std::cout << "== Stage 3: ChatGPT generation + NCT/CT transformation ==\n";
  const llm::TransformedDataset& transformed = experiment.transformedData();
  std::cout << transformed.samples.size()
            << " transformed samples (human author for ~N/~C: A"
            << transformed.humanAuthorId << ")\n\n";

  std::cout << "== Stage 4: oracle labeling of transformed code ==\n";
  const auto counts = experiment.styleCounts();
  std::cout << "mean styles per challenge: +N "
            << counts.averages[0] << ", +C " << counts.averages[1]
            << ", ~N " << counts.averages[2] << ", ~C "
            << counts.averages[3] << " (max " << counts.maxCount << ")\n\n";

  std::cout << "== Stage 5: grouping + 205-class retraining ==\n";
  const auto naive = experiment.attribution(core::Approach::Naive);
  const auto featureBased =
      experiment.attribution(core::Approach::FeatureBased);
  std::cout << "naive:         mean accuracy "
            << naive.meanAccuracy * 100 << "%, ChatGPT folds correct "
            << naive.chatgptCorrectPercent << "%\n";
  std::cout << "feature-based: mean accuracy "
            << featureBased.meanAccuracy * 100
            << "%, ChatGPT folds correct "
            << featureBased.chatgptCorrectPercent << "% (target label A"
            << featureBased.targetLabel << ")\n\n";

  std::cout << "== Stage 6: binary ChatGPT-vs-human detector ==\n";
  const auto binary = core::binaryIndividual(experiment);
  std::cout << "mean binary accuracy " << binary.meanAccuracy * 100
            << "%\n";
  return 0;
}
