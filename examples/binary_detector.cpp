// Binary ChatGPT-vs-human detector (the paper's §VI-E) as a small tool:
// trains on a scaled-down year and classifies either a file you pass or a
// built-in pair of demo snippets.
//
//   $ ./binary_detector [file.cpp]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/binary.hpp"
#include "core/experiments.hpp"

namespace {

using namespace sca;

/// Trains a 2-class model on one scaled-down year.
core::AttributionModel trainDetector() {
  core::ExperimentConfig config;
  config.authorCount = 40;
  config.steps = 10;
  config.model.forest.treeCount = 80;
  config.model.selectTopK = config.binarySelectTopK;
  core::YearExperiment experiment(2018, config);

  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const llm::TransformedSample& sample :
       experiment.transformedData().samples) {
    sources.push_back(sample.source);
    labels.push_back(core::kChatGptClass);
  }
  std::size_t humans = 0;
  for (const corpus::CodeSample& sample : experiment.corpusData().samples) {
    if (humans >= sources.size() / 2) break;
    sources.push_back(sample.source);
    labels.push_back(core::kHumanClass);
    ++humans;
  }
  core::AttributionModel model(experiment.config().model);
  model.train(sources, labels);
  return model;
}

void classify(const core::AttributionModel& model, const std::string& name,
              const std::string& source) {
  const std::vector<double> votes = model.predictProba(source);
  const bool chatgpt = votes[core::kChatGptClass] > votes[core::kHumanClass];
  std::cout << name << ": " << (chatgpt ? "ChatGPT-like" : "human-like")
            << " (P(chatgpt) = " << votes[core::kChatGptClass] << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sca;
  std::cout << "Training the detector (scaled-down 2018 dataset)...\n";
  const core::AttributionModel model = trainDetector();

  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    classify(model, argv[1], buffer.str());
    return 0;
  }

  // Built-in demo: one fresh LLM generation, one fresh human rendering,
  // both for a challenge and author the detector never saw.
  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 77;
  llm::SyntheticLlm llm(options);
  const std::string synthetic =
      llm.generate(corpus::challengeById("race"));
  const auto authors = corpus::makeAuthorPopulation(2019, 60);
  const std::string human = corpus::renderSolution(
      authors[59], corpus::challengeById("race"), 2019, 0);

  classify(model, "fresh LLM generation", synthetic);
  classify(model, "fresh human solution", human);
  return 0;
}
