// Evasion study (the paper's RQ1): can the LLM's transformation mislead a
// pre-trained authorship model about who wrote a piece of code?
//
// Takes one author's solution, asks the synthetic LLM to transform it N
// times (non-chaining), and shows who the oracle attributes each rewrite
// to. In the paper this contradicts Ye et al.'s minimal-rewriting
// conjecture: the attribution flips away from the true author.
//
//   $ ./evasion_study [steps]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/attribution_model.hpp"
#include "corpus/dataset.hpp"
#include "llm/pipelines.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace sca;
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  std::cout << "Training a 40-author oracle on GCJ 2018...\n";
  const corpus::YearDataset corpus = corpus::buildYearDataset(2018, 40);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& sample : corpus.samples) {
    sources.push_back(sample.source);
    labels.push_back(sample.authorId);
  }
  core::ModelConfig config;
  config.forest.treeCount = 80;
  core::AttributionModel oracle(config);
  oracle.train(sources, labels);

  // The victim: author A7's solution to the first challenge.
  const corpus::CodeSample* victim = nullptr;
  for (const corpus::CodeSample& sample : corpus.samples) {
    if (sample.authorId == 7 && sample.challengeIndex == 0) victim = &sample;
  }
  std::cout << "Original is by A7; oracle says: A"
            << oracle.predict(victim->source) << "\n\n";

  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 1234;
  llm::SyntheticLlm llm(options);
  const std::vector<std::string> rewrites =
      llm::nonChainingTransform(llm, victim->source, steps);

  std::size_t evaded = 0;
  std::cout << "step  predicted  confidence(A7)\n";
  for (std::size_t i = 0; i < rewrites.size(); ++i) {
    const int predicted = oracle.predict(rewrites[i]);
    const std::vector<double> votes = oracle.predictProba(rewrites[i]);
    if (predicted != 7) ++evaded;
    std::cout << std::setw(4) << (i + 1) << "  A" << std::setw(3)
              << predicted << "      " << std::fixed << std::setprecision(3)
              << votes[7] << "\n";
  }
  std::cout << "\nEvasion rate: " << evaded << "/" << rewrites.size()
            << " rewrites misattributed (paper: transformation reliably "
               "changes the predicted author).\n";
  return 0;
}
