// Style inspector: prints the inferred StyleProfile of a C++ file (or of a
// built-in demo sample) plus its distance to the synthetic LLM's style
// repertoire — the same signals the transformation engine uses to decide
// whether code "looks like its own".
//
//   $ ./style_inspector [file.cpp]
#include <fstream>
#include <iostream>
#include <sstream>

#include "corpus/dataset.hpp"
#include "style/archetypes.hpp"
#include "style/infer.hpp"

int main(int argc, char** argv) {
  using namespace sca;
  std::string source;
  std::string name;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    name = argv[1];
  } else {
    const auto authors = corpus::makeAuthorPopulation(2018, 5);
    source = corpus::renderSolution(authors[3],
                                    corpus::challengeById("sheep"), 2018, 2);
    name = "built-in demo (A3's 'sheep' solution)";
  }

  const style::StyleProfile profile = style::inferProfileFromSource(source);
  std::cout << "Inferred style of " << name << ":\n";
  std::cout << "  summary:            " << profile.describe() << "\n";
  std::cout << "  indent:             "
            << (profile.useTabs ? "tabs"
                                : std::to_string(profile.indentWidth) +
                                      " spaces")
            << "\n";
  std::cout << "  braces:             "
            << (profile.allmanBraces ? "Allman" : "K&R") << "\n";
  std::cout << "  io:                 "
            << (profile.ioStyle == ast::IoStyle::Stdio ? "scanf/printf"
                                                       : "cin/cout")
            << (profile.useEndl ? " (endl)" : "") << "\n";
  std::cout << "  loops:              "
            << (profile.loops == style::LoopPreference::WhileLoops
                    ? "while-leaning"
                    : "for-leaning")
            << "\n";
  std::cout << "  decomposition:      "
            << (profile.extractSolve ? "helper functions" : "monolithic main")
            << "\n";
  std::cout << "  comment density:    " << profile.commentDensity << "\n";
  std::cout << "  using namespace std " << (profile.usingNamespaceStd ? "yes" : "no")
            << ", bits/stdc++.h " << (profile.useBitsHeader ? "yes" : "no")
            << "\n";

  const style::NearestArchetype nearest = style::nearestArchetype(profile);
  std::cout << "\nNearest LLM archetype: #" << nearest.index
            << " at style distance " << nearest.distance
            << (nearest.distance <= 0.30
                    ? "  -> the synthetic LLM would treat this as familiar"
                    : "  -> out-of-repertoire for the synthetic LLM")
            << "\n";
  return 0;
}
