// Quickstart: train an authorship model on a small corpus and attribute an
// unseen code sample.
//
//   $ ./quickstart
//
// Walks the minimal public API: build a corpus (corpus::buildYearDataset),
// train a model (core::AttributionModel) and call predict() on new code.
#include <iostream>

#include "core/attribution_model.hpp"
#include "corpus/dataset.hpp"

int main() {
  using namespace sca;

  // 1. A small corpus: 20 synthetic authors, 8 challenges each.
  std::cout << "Building a 20-author corpus...\n";
  const corpus::YearDataset corpus = corpus::buildYearDataset(2018, 20);

  // 2. Train on 7 challenges, keep the last one for the demo.
  std::vector<std::string> sources;
  std::vector<int> labels;
  std::vector<const corpus::CodeSample*> heldOut;
  for (const corpus::CodeSample& sample : corpus.samples) {
    if (sample.challengeIndex == 7) {
      heldOut.push_back(&sample);
    } else {
      sources.push_back(sample.source);
      labels.push_back(sample.authorId);
    }
  }
  std::cout << "Training the attribution model on " << sources.size()
            << " samples...\n";
  core::ModelConfig config;
  config.forest.treeCount = 60;
  core::AttributionModel model(config);
  model.train(sources, labels);

  // 3. Attribute the held-out challenge's solutions.
  std::size_t correct = 0;
  for (const corpus::CodeSample* sample : heldOut) {
    const int predicted = model.predict(sample->source);
    if (predicted == sample->authorId) ++correct;
  }
  std::cout << "Attributed " << correct << "/" << heldOut.size()
            << " unseen solutions to the right author.\n";

  // 4. Peek inside one prediction.
  const corpus::CodeSample& probe = *heldOut.front();
  const std::vector<double> votes = model.predictProba(probe.source);
  std::cout << "\nSample written by A" << probe.authorId
            << "; forest votes (top classes):\n";
  for (int label = 0; label < model.classCount(); ++label) {
    if (votes[static_cast<std::size_t>(label)] > 0.08) {
      std::cout << "  A" << label << ": "
                << votes[static_cast<std::size_t>(label)] << "\n";
    }
  }
  return 0;
}
