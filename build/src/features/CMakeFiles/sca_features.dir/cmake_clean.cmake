file(REMOVE_RECURSE
  "CMakeFiles/sca_features.dir/extractor.cpp.o"
  "CMakeFiles/sca_features.dir/extractor.cpp.o.d"
  "CMakeFiles/sca_features.dir/selection.cpp.o"
  "CMakeFiles/sca_features.dir/selection.cpp.o.d"
  "CMakeFiles/sca_features.dir/vocabulary.cpp.o"
  "CMakeFiles/sca_features.dir/vocabulary.cpp.o.d"
  "libsca_features.a"
  "libsca_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
