# Empty compiler generated dependencies file for sca_features.
# This may be replaced when dependencies are built.
