file(REMOVE_RECURSE
  "libsca_features.a"
)
