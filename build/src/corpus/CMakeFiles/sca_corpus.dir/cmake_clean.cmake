file(REMOVE_RECURSE
  "CMakeFiles/sca_corpus.dir/authors.cpp.o"
  "CMakeFiles/sca_corpus.dir/authors.cpp.o.d"
  "CMakeFiles/sca_corpus.dir/challenges.cpp.o"
  "CMakeFiles/sca_corpus.dir/challenges.cpp.o.d"
  "CMakeFiles/sca_corpus.dir/dataset.cpp.o"
  "CMakeFiles/sca_corpus.dir/dataset.cpp.o.d"
  "libsca_corpus.a"
  "libsca_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
