
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/authors.cpp" "src/corpus/CMakeFiles/sca_corpus.dir/authors.cpp.o" "gcc" "src/corpus/CMakeFiles/sca_corpus.dir/authors.cpp.o.d"
  "/root/repo/src/corpus/challenges.cpp" "src/corpus/CMakeFiles/sca_corpus.dir/challenges.cpp.o" "gcc" "src/corpus/CMakeFiles/sca_corpus.dir/challenges.cpp.o.d"
  "/root/repo/src/corpus/dataset.cpp" "src/corpus/CMakeFiles/sca_corpus.dir/dataset.cpp.o" "gcc" "src/corpus/CMakeFiles/sca_corpus.dir/dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/style/CMakeFiles/sca_style.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/sca_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/sca_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
