# Empty compiler generated dependencies file for sca_corpus.
# This may be replaced when dependencies are built.
