file(REMOVE_RECURSE
  "libsca_corpus.a"
)
