file(REMOVE_RECURSE
  "CMakeFiles/sca_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/sca_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/sca_ml.dir/dataset.cpp.o"
  "CMakeFiles/sca_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sca_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/sca_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/sca_ml.dir/metrics.cpp.o"
  "CMakeFiles/sca_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/sca_ml.dir/random_forest.cpp.o"
  "CMakeFiles/sca_ml.dir/random_forest.cpp.o.d"
  "libsca_ml.a"
  "libsca_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
