# Empty dependencies file for sca_ml.
# This may be replaced when dependencies are built.
