file(REMOVE_RECURSE
  "libsca_ml.a"
)
