# Empty compiler generated dependencies file for sca_util.
# This may be replaced when dependencies are built.
