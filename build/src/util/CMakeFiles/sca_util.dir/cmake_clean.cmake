file(REMOVE_RECURSE
  "CMakeFiles/sca_util.dir/log.cpp.o"
  "CMakeFiles/sca_util.dir/log.cpp.o.d"
  "CMakeFiles/sca_util.dir/rng.cpp.o"
  "CMakeFiles/sca_util.dir/rng.cpp.o.d"
  "CMakeFiles/sca_util.dir/stats.cpp.o"
  "CMakeFiles/sca_util.dir/stats.cpp.o.d"
  "CMakeFiles/sca_util.dir/strings.cpp.o"
  "CMakeFiles/sca_util.dir/strings.cpp.o.d"
  "CMakeFiles/sca_util.dir/table.cpp.o"
  "CMakeFiles/sca_util.dir/table.cpp.o.d"
  "libsca_util.a"
  "libsca_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
