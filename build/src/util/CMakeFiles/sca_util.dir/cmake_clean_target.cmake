file(REMOVE_RECURSE
  "libsca_util.a"
)
