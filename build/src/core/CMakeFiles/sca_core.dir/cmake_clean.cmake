file(REMOVE_RECURSE
  "CMakeFiles/sca_core.dir/attribution_model.cpp.o"
  "CMakeFiles/sca_core.dir/attribution_model.cpp.o.d"
  "CMakeFiles/sca_core.dir/binary.cpp.o"
  "CMakeFiles/sca_core.dir/binary.cpp.o.d"
  "CMakeFiles/sca_core.dir/experiments.cpp.o"
  "CMakeFiles/sca_core.dir/experiments.cpp.o.d"
  "CMakeFiles/sca_core.dir/grouping.cpp.o"
  "CMakeFiles/sca_core.dir/grouping.cpp.o.d"
  "libsca_core.a"
  "libsca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
