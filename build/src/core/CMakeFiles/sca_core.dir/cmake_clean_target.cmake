file(REMOVE_RECURSE
  "libsca_core.a"
)
