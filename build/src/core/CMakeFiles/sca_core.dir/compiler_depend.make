# Empty compiler generated dependencies file for sca_core.
# This may be replaced when dependencies are built.
