# Empty compiler generated dependencies file for sca_ast.
# This may be replaced when dependencies are built.
