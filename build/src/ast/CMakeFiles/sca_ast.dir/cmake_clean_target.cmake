file(REMOVE_RECURSE
  "libsca_ast.a"
)
