
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cpp" "src/ast/CMakeFiles/sca_ast.dir/ast.cpp.o" "gcc" "src/ast/CMakeFiles/sca_ast.dir/ast.cpp.o.d"
  "/root/repo/src/ast/parser.cpp" "src/ast/CMakeFiles/sca_ast.dir/parser.cpp.o" "gcc" "src/ast/CMakeFiles/sca_ast.dir/parser.cpp.o.d"
  "/root/repo/src/ast/render.cpp" "src/ast/CMakeFiles/sca_ast.dir/render.cpp.o" "gcc" "src/ast/CMakeFiles/sca_ast.dir/render.cpp.o.d"
  "/root/repo/src/ast/transforms.cpp" "src/ast/CMakeFiles/sca_ast.dir/transforms.cpp.o" "gcc" "src/ast/CMakeFiles/sca_ast.dir/transforms.cpp.o.d"
  "/root/repo/src/ast/visit.cpp" "src/ast/CMakeFiles/sca_ast.dir/visit.cpp.o" "gcc" "src/ast/CMakeFiles/sca_ast.dir/visit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lexer/CMakeFiles/sca_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
