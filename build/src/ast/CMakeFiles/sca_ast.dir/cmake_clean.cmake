file(REMOVE_RECURSE
  "CMakeFiles/sca_ast.dir/ast.cpp.o"
  "CMakeFiles/sca_ast.dir/ast.cpp.o.d"
  "CMakeFiles/sca_ast.dir/parser.cpp.o"
  "CMakeFiles/sca_ast.dir/parser.cpp.o.d"
  "CMakeFiles/sca_ast.dir/render.cpp.o"
  "CMakeFiles/sca_ast.dir/render.cpp.o.d"
  "CMakeFiles/sca_ast.dir/transforms.cpp.o"
  "CMakeFiles/sca_ast.dir/transforms.cpp.o.d"
  "CMakeFiles/sca_ast.dir/visit.cpp.o"
  "CMakeFiles/sca_ast.dir/visit.cpp.o.d"
  "libsca_ast.a"
  "libsca_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
