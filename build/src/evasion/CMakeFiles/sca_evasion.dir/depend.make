# Empty dependencies file for sca_evasion.
# This may be replaced when dependencies are built.
