file(REMOVE_RECURSE
  "CMakeFiles/sca_evasion.dir/evasion.cpp.o"
  "CMakeFiles/sca_evasion.dir/evasion.cpp.o.d"
  "CMakeFiles/sca_evasion.dir/mcts.cpp.o"
  "CMakeFiles/sca_evasion.dir/mcts.cpp.o.d"
  "libsca_evasion.a"
  "libsca_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
