file(REMOVE_RECURSE
  "libsca_evasion.a"
)
