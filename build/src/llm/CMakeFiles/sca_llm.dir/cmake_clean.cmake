file(REMOVE_RECURSE
  "CMakeFiles/sca_llm.dir/archetypes.cpp.o"
  "CMakeFiles/sca_llm.dir/archetypes.cpp.o.d"
  "CMakeFiles/sca_llm.dir/pipelines.cpp.o"
  "CMakeFiles/sca_llm.dir/pipelines.cpp.o.d"
  "CMakeFiles/sca_llm.dir/synthetic_llm.cpp.o"
  "CMakeFiles/sca_llm.dir/synthetic_llm.cpp.o.d"
  "libsca_llm.a"
  "libsca_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
