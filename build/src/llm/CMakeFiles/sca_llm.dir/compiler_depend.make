# Empty compiler generated dependencies file for sca_llm.
# This may be replaced when dependencies are built.
