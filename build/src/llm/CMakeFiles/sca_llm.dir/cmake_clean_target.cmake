file(REMOVE_RECURSE
  "libsca_llm.a"
)
