
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/style/apply.cpp" "src/style/CMakeFiles/sca_style.dir/apply.cpp.o" "gcc" "src/style/CMakeFiles/sca_style.dir/apply.cpp.o.d"
  "/root/repo/src/style/archetypes.cpp" "src/style/CMakeFiles/sca_style.dir/archetypes.cpp.o" "gcc" "src/style/CMakeFiles/sca_style.dir/archetypes.cpp.o.d"
  "/root/repo/src/style/infer.cpp" "src/style/CMakeFiles/sca_style.dir/infer.cpp.o" "gcc" "src/style/CMakeFiles/sca_style.dir/infer.cpp.o.d"
  "/root/repo/src/style/naming.cpp" "src/style/CMakeFiles/sca_style.dir/naming.cpp.o" "gcc" "src/style/CMakeFiles/sca_style.dir/naming.cpp.o.d"
  "/root/repo/src/style/profile.cpp" "src/style/CMakeFiles/sca_style.dir/profile.cpp.o" "gcc" "src/style/CMakeFiles/sca_style.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/sca_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/sca_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
