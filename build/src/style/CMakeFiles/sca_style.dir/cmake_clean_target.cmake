file(REMOVE_RECURSE
  "libsca_style.a"
)
