file(REMOVE_RECURSE
  "CMakeFiles/sca_style.dir/apply.cpp.o"
  "CMakeFiles/sca_style.dir/apply.cpp.o.d"
  "CMakeFiles/sca_style.dir/archetypes.cpp.o"
  "CMakeFiles/sca_style.dir/archetypes.cpp.o.d"
  "CMakeFiles/sca_style.dir/infer.cpp.o"
  "CMakeFiles/sca_style.dir/infer.cpp.o.d"
  "CMakeFiles/sca_style.dir/naming.cpp.o"
  "CMakeFiles/sca_style.dir/naming.cpp.o.d"
  "CMakeFiles/sca_style.dir/profile.cpp.o"
  "CMakeFiles/sca_style.dir/profile.cpp.o.d"
  "libsca_style.a"
  "libsca_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
