# Empty compiler generated dependencies file for sca_style.
# This may be replaced when dependencies are built.
