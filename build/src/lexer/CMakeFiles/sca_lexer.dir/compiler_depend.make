# Empty compiler generated dependencies file for sca_lexer.
# This may be replaced when dependencies are built.
