file(REMOVE_RECURSE
  "CMakeFiles/sca_lexer.dir/layout.cpp.o"
  "CMakeFiles/sca_lexer.dir/layout.cpp.o.d"
  "CMakeFiles/sca_lexer.dir/lexer.cpp.o"
  "CMakeFiles/sca_lexer.dir/lexer.cpp.o.d"
  "CMakeFiles/sca_lexer.dir/token.cpp.o"
  "CMakeFiles/sca_lexer.dir/token.cpp.o.d"
  "libsca_lexer.a"
  "libsca_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
