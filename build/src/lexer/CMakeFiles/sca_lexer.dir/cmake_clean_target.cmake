file(REMOVE_RECURSE
  "libsca_lexer.a"
)
