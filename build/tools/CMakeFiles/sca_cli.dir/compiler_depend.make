# Empty compiler generated dependencies file for sca_cli.
# This may be replaced when dependencies are built.
