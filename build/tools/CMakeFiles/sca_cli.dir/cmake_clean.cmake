file(REMOVE_RECURSE
  "CMakeFiles/sca_cli.dir/sca_cli.cpp.o"
  "CMakeFiles/sca_cli.dir/sca_cli.cpp.o.d"
  "sca_cli"
  "sca_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sca_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
