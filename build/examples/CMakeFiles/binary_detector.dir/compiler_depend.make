# Empty compiler generated dependencies file for binary_detector.
# This may be replaced when dependencies are built.
