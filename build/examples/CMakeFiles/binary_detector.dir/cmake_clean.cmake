file(REMOVE_RECURSE
  "CMakeFiles/binary_detector.dir/binary_detector.cpp.o"
  "CMakeFiles/binary_detector.dir/binary_detector.cpp.o.d"
  "binary_detector"
  "binary_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
