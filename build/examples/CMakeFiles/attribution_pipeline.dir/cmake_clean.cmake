file(REMOVE_RECURSE
  "CMakeFiles/attribution_pipeline.dir/attribution_pipeline.cpp.o"
  "CMakeFiles/attribution_pipeline.dir/attribution_pipeline.cpp.o.d"
  "attribution_pipeline"
  "attribution_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribution_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
