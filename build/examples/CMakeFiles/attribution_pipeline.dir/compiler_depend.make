# Empty compiler generated dependencies file for attribution_pipeline.
# This may be replaced when dependencies are built.
