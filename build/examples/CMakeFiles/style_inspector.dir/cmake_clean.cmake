file(REMOVE_RECURSE
  "CMakeFiles/style_inspector.dir/style_inspector.cpp.o"
  "CMakeFiles/style_inspector.dir/style_inspector.cpp.o.d"
  "style_inspector"
  "style_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/style_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
