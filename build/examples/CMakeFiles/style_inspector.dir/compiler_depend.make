# Empty compiler generated dependencies file for style_inspector.
# This may be replaced when dependencies are built.
