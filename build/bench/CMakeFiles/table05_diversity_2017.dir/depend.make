# Empty dependencies file for table05_diversity_2017.
# This may be replaced when dependencies are built.
