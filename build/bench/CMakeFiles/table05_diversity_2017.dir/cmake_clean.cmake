file(REMOVE_RECURSE
  "CMakeFiles/table05_diversity_2017.dir/table05_diversity_2017.cpp.o"
  "CMakeFiles/table05_diversity_2017.dir/table05_diversity_2017.cpp.o.d"
  "table05_diversity_2017"
  "table05_diversity_2017.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_diversity_2017.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
