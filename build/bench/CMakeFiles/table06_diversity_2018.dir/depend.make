# Empty dependencies file for table06_diversity_2018.
# This may be replaced when dependencies are built.
