file(REMOVE_RECURSE
  "CMakeFiles/table06_diversity_2018.dir/table06_diversity_2018.cpp.o"
  "CMakeFiles/table06_diversity_2018.dir/table06_diversity_2018.cpp.o.d"
  "table06_diversity_2018"
  "table06_diversity_2018.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_diversity_2018.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
