file(REMOVE_RECURSE
  "CMakeFiles/fig03_05_examples.dir/fig03_05_examples.cpp.o"
  "CMakeFiles/fig03_05_examples.dir/fig03_05_examples.cpp.o.d"
  "fig03_05_examples"
  "fig03_05_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_05_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
