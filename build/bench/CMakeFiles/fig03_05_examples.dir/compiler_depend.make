# Empty compiler generated dependencies file for fig03_05_examples.
# This may be replaced when dependencies are built.
