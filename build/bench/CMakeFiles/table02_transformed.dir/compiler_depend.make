# Empty compiler generated dependencies file for table02_transformed.
# This may be replaced when dependencies are built.
