file(REMOVE_RECURSE
  "CMakeFiles/table02_transformed.dir/table02_transformed.cpp.o"
  "CMakeFiles/table02_transformed.dir/table02_transformed.cpp.o.d"
  "table02_transformed"
  "table02_transformed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_transformed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
