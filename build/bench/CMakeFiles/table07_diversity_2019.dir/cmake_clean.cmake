file(REMOVE_RECURSE
  "CMakeFiles/table07_diversity_2019.dir/table07_diversity_2019.cpp.o"
  "CMakeFiles/table07_diversity_2019.dir/table07_diversity_2019.cpp.o.d"
  "table07_diversity_2019"
  "table07_diversity_2019.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_diversity_2019.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
