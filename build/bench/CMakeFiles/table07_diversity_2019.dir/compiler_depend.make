# Empty compiler generated dependencies file for table07_diversity_2019.
# This may be replaced when dependencies are built.
