
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table01_datasets.cpp" "bench/CMakeFiles/table01_datasets.dir/table01_datasets.cpp.o" "gcc" "bench/CMakeFiles/table01_datasets.dir/table01_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evasion/CMakeFiles/sca_evasion.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/sca_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/sca_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/style/CMakeFiles/sca_style.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/sca_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sca_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/sca_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/sca_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sca_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
