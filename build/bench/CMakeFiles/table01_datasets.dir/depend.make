# Empty dependencies file for table01_datasets.
# This may be replaced when dependencies are built.
