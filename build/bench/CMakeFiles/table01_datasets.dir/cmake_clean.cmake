file(REMOVE_RECURSE
  "CMakeFiles/table01_datasets.dir/table01_datasets.cpp.o"
  "CMakeFiles/table01_datasets.dir/table01_datasets.cpp.o.d"
  "table01_datasets"
  "table01_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
