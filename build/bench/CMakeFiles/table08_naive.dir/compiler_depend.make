# Empty compiler generated dependencies file for table08_naive.
# This may be replaced when dependencies are built.
