file(REMOVE_RECURSE
  "CMakeFiles/table08_naive.dir/table08_naive.cpp.o"
  "CMakeFiles/table08_naive.dir/table08_naive.cpp.o.d"
  "table08_naive"
  "table08_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
