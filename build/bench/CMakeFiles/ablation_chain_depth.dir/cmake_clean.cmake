file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_depth.dir/ablation_chain_depth.cpp.o"
  "CMakeFiles/ablation_chain_depth.dir/ablation_chain_depth.cpp.o.d"
  "ablation_chain_depth"
  "ablation_chain_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
