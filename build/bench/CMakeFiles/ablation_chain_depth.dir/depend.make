# Empty dependencies file for ablation_chain_depth.
# This may be replaced when dependencies are built.
