file(REMOVE_RECURSE
  "CMakeFiles/fig02_nct_vs_ct.dir/fig02_nct_vs_ct.cpp.o"
  "CMakeFiles/fig02_nct_vs_ct.dir/fig02_nct_vs_ct.cpp.o.d"
  "fig02_nct_vs_ct"
  "fig02_nct_vs_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nct_vs_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
