# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02_nct_vs_ct.
