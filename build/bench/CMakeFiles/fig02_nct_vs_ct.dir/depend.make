# Empty dependencies file for fig02_nct_vs_ct.
# This may be replaced when dependencies are built.
