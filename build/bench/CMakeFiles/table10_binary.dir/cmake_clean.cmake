file(REMOVE_RECURSE
  "CMakeFiles/table10_binary.dir/table10_binary.cpp.o"
  "CMakeFiles/table10_binary.dir/table10_binary.cpp.o.d"
  "table10_binary"
  "table10_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
