# Empty dependencies file for table10_binary.
# This may be replaced when dependencies are built.
