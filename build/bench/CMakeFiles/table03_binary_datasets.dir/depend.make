# Empty dependencies file for table03_binary_datasets.
# This may be replaced when dependencies are built.
