file(REMOVE_RECURSE
  "CMakeFiles/table03_binary_datasets.dir/table03_binary_datasets.cpp.o"
  "CMakeFiles/table03_binary_datasets.dir/table03_binary_datasets.cpp.o.d"
  "table03_binary_datasets"
  "table03_binary_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_binary_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
