file(REMOVE_RECURSE
  "CMakeFiles/ablation_evasion.dir/ablation_evasion.cpp.o"
  "CMakeFiles/ablation_evasion.dir/ablation_evasion.cpp.o.d"
  "ablation_evasion"
  "ablation_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
