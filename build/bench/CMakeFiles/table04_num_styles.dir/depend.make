# Empty dependencies file for table04_num_styles.
# This may be replaced when dependencies are built.
