file(REMOVE_RECURSE
  "CMakeFiles/table04_num_styles.dir/table04_num_styles.cpp.o"
  "CMakeFiles/table04_num_styles.dir/table04_num_styles.cpp.o.d"
  "table04_num_styles"
  "table04_num_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_num_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
