# Empty dependencies file for table09_feature_based.
# This may be replaced when dependencies are built.
