file(REMOVE_RECURSE
  "CMakeFiles/table09_feature_based.dir/table09_feature_based.cpp.o"
  "CMakeFiles/table09_feature_based.dir/table09_feature_based.cpp.o.d"
  "table09_feature_based"
  "table09_feature_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_feature_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
