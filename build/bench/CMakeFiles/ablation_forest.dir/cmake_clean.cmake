file(REMOVE_RECURSE
  "CMakeFiles/ablation_forest.dir/ablation_forest.cpp.o"
  "CMakeFiles/ablation_forest.dir/ablation_forest.cpp.o.d"
  "ablation_forest"
  "ablation_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
