file(REMOVE_RECURSE
  "CMakeFiles/archetype_test.dir/archetype_test.cpp.o"
  "CMakeFiles/archetype_test.dir/archetype_test.cpp.o.d"
  "archetype_test"
  "archetype_test.pdb"
  "archetype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archetype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
