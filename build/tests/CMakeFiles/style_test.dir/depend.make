# Empty dependencies file for style_test.
# This may be replaced when dependencies are built.
