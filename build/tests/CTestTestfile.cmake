# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/style_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/archetype_test[1]_include.cmake")
include("/root/repo/build/tests/evasion_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
