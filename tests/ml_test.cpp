#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace sca::ml {
namespace {

/// Three Gaussian-ish blobs in 2-D, trivially separable.
Dataset blobs(std::size_t perClass, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  const double centers[3][2] = {{0, 0}, {5, 5}, {0, 5}};
  for (int label = 0; label < 3; ++label) {
    for (std::size_t i = 0; i < perClass; ++i) {
      data.x.push_back({centers[label][0] + rng.normal(0, 0.5),
                        centers[label][1] + rng.normal(0, 0.5)});
      data.y.push_back(label);
      data.groups.push_back(static_cast<int>(i % 4));
    }
  }
  return data;
}

TEST(Dataset, ValidateCatchesShapeErrors) {
  Dataset ok = blobs(5, 1);
  EXPECT_NO_THROW(ok.validate());
  Dataset ragged = blobs(5, 1);
  ragged.x[0].push_back(9.0);
  EXPECT_THROW(ragged.validate(), std::invalid_argument);
  Dataset mismatched = blobs(5, 1);
  mismatched.y.pop_back();
  EXPECT_THROW(mismatched.validate(), std::invalid_argument);
}

TEST(Dataset, SubsetCopiesRowsAndGroups) {
  const Dataset data = blobs(4, 2);
  const Dataset sub = data.subset({0, 5, 10});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.x[1], data.x[5]);
  EXPECT_EQ(sub.y[2], data.y[10]);
  EXPECT_EQ(sub.groups[0], data.groups[0]);
}

TEST(Dataset, ClassCount) {
  EXPECT_EQ(blobs(3, 3).classCount(), 3);
  Dataset empty;
  EXPECT_EQ(empty.classCount(), 0);
}

TEST(DecisionTree, FitsSeparableDataPerfectly) {
  const Dataset data = blobs(30, 4);
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  DecisionTree tree;
  tree.fit(data, all, 3, TreeConfig{}, util::Rng(1));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.x[i]) == data.y[i]) ++hits;
  }
  EXPECT_EQ(hits, data.size());
  EXPECT_GT(tree.nodeCount(), 1u);
  EXPECT_GT(tree.leafCount(), 1u);
}

TEST(DecisionTree, ExactModeAlsoSeparates) {
  const Dataset data = blobs(30, 5);
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  TreeConfig config;
  config.thresholdsPerFeature = 0;  // exact sorted sweep
  DecisionTree tree;
  tree.fit(data, all, 3, config, util::Rng(2));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.x[i]) == data.y[i]) ++hits;
  }
  EXPECT_EQ(hits, data.size());
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  const Dataset data = blobs(30, 6);
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  TreeConfig config;
  config.maxDepth = 1;
  DecisionTree tree;
  tree.fit(data, all, 3, config, util::Rng(3));
  EXPECT_LE(tree.depth(), 1u);
  EXPECT_LE(tree.nodeCount(), 3u);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.x.push_back({static_cast<double>(i)});
    data.y.push_back(0);
  }
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  DecisionTree tree;
  tree.fit(data, all, 1, TreeConfig{}, util::Rng(4));
  EXPECT_EQ(tree.nodeCount(), 1u);
  EXPECT_EQ(tree.predict({42.0}), 0);
}

TEST(RandomForest, HighAccuracyOnBlobs) {
  const Dataset data = blobs(40, 7);
  ForestConfig config;
  config.treeCount = 25;
  RandomForest forest(config);
  forest.fit(data);
  const auto predictions = forest.predictAll(data.x);
  EXPECT_GT(accuracy(data.y, predictions), 0.97);
  EXPECT_EQ(forest.classCount(), 3);
  EXPECT_EQ(forest.treeCount(), 25u);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Dataset data = blobs(20, 8);
  ForestConfig config;
  config.treeCount = 10;
  config.seed = 99;
  RandomForest a(config), b(config);
  a.fit(data);
  b.fit(data);
  const std::vector<double> probe = {2.5, 2.5};
  EXPECT_EQ(a.predict(probe), b.predict(probe));
  EXPECT_EQ(a.predictProba(probe), b.predictProba(probe));
}

TEST(RandomForest, ProbaSumsToOne) {
  const Dataset data = blobs(20, 9);
  RandomForest forest(ForestConfig{.treeCount = 15});
  forest.fit(data);
  const auto proba = forest.predictProba({0.1, 0.1});
  double sum = 0.0;
  for (const double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(proba.size(), 3u);
}

TEST(RandomForest, ThrowsOnEmptyDataset) {
  RandomForest forest;
  EXPECT_THROW(forest.fit(Dataset{}), std::invalid_argument);
}

/// Spills `data` to a sca-matrix-v1 file and returns its path.
std::string spillToMatrix(const Dataset& data, const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove(path);
  MatrixWriter writer(data.dimension(), 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    writer.appendRow(data.row(i), data.y[i],
                     data.groups.empty() ? 0 : data.groups[i]);
  }
  EXPECT_TRUE(writer.finish(path).isOk());
  return path;
}

TEST(RandomForest, StreamingPredictAllIsIdenticalToResidentPath) {
  const Dataset data = blobs(40, 7);
  ForestConfig config;
  config.treeCount = 25;
  RandomForest forest(config);
  forest.fit(data);
  const std::vector<int> resident = forest.predictAll(data.x);

  auto opened =
      MatrixFile::open(spillToMatrix(data, "sca_ml_stream_eq.mtx"), 1);
  ASSERT_TRUE(opened.ok()) << opened.status().toString();
  const Dataset mapped = Dataset::fromMatrix(opened.value());

  // Same votes through every storage mode and thread cap — tiny residency
  // budget included, which forces block eviction mid-scan.
  EXPECT_EQ(forest.predictAll(mapped), resident);
  opened.value().setResidencyBudget(4096);
  EXPECT_EQ(forest.predictAll(mapped), resident);
  EXPECT_EQ(forest.predictAll(data), resident);

  ForestConfig serial = config;
  serial.threads = 1;
  RandomForest serialForest(serial);
  serialForest.fit(data);
  EXPECT_EQ(serialForest.predictAll(mapped), resident);
}

TEST(RandomForest, FitOnViewsAndMatrixMatchesFitOnCopies) {
  const Dataset data = blobs(30, 11);
  std::vector<std::size_t> train;
  for (std::size_t i = 0; i < data.size(); i += 2) train.push_back(i);

  ForestConfig config;
  config.treeCount = 15;
  config.seed = 41;

  RandomForest onCopy(config), onView(config), onMatrix(config);
  onCopy.fit(data.subset(train));
  onView.fit(data.subsetView(train));

  auto opened =
      MatrixFile::open(spillToMatrix(data, "sca_ml_fit_modes.mtx"), 1);
  ASSERT_TRUE(opened.ok());
  const Dataset mapped = Dataset::fromMatrix(opened.value());
  onMatrix.fit(mapped.subsetView(train));

  const std::vector<int> expected = onCopy.predictAll(data.x);
  EXPECT_EQ(onView.predictAll(data), expected);
  EXPECT_EQ(onMatrix.predictAll(data), expected);
}

TEST(DecisionTree, SaveLoadRoundTrip) {
  const Dataset data = blobs(25, 12);
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  DecisionTree tree;
  tree.fit(data, all, 3, TreeConfig{}, util::Rng(5));
  std::stringstream buffer;
  tree.save(buffer);
  const DecisionTree restored = DecisionTree::load(buffer);
  EXPECT_EQ(restored.nodeCount(), tree.nodeCount());
  for (const auto& row : data.x) {
    EXPECT_EQ(restored.predict(row), tree.predict(row));
  }
}

TEST(DecisionTree, LoadRejectsGarbage) {
  std::stringstream bad("nonsense 3");
  EXPECT_THROW(DecisionTree::load(bad), std::runtime_error);
  std::stringstream truncated("tree 2\n1 0.5 1 2 -1 0\n");
  EXPECT_THROW(DecisionTree::load(truncated), std::runtime_error);
}

TEST(RandomForest, SaveLoadKeepsPredictions) {
  const Dataset data = blobs(20, 13);
  RandomForest forest(ForestConfig{.treeCount = 12});
  forest.fit(data);
  std::stringstream buffer;
  forest.save(buffer);
  const RandomForest restored = RandomForest::load(buffer);
  EXPECT_EQ(restored.classCount(), forest.classCount());
  EXPECT_EQ(restored.treeCount(), forest.treeCount());
  for (const auto& row : data.x) {
    EXPECT_EQ(restored.predict(row), forest.predict(row));
    EXPECT_EQ(restored.predictProba(row), forest.predictProba(row));
  }
}

TEST(RandomForest, FeatureImportancesNormalizedAndInformative) {
  // Feature 0 separates the blobs; feature 2 is constant noise.
  Dataset data = blobs(30, 14);
  for (auto& row : data.x) row.push_back(0.5);  // constant third column
  RandomForest forest(ForestConfig{.treeCount = 20});
  forest.fit(data);
  const auto importances = forest.featureImportances(3);
  ASSERT_EQ(importances.size(), 3u);
  double sum = 0.0;
  for (const double v : importances) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(importances[2], 0.0);  // constant column never splits
  EXPECT_GT(importances[0] + importances[1], 0.9);
}

TEST(Metrics, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_THROW(accuracy({1}, {}), std::invalid_argument);
}

TEST(Metrics, ConfusionMatrixCells) {
  const ConfusionMatrix cm(2, {0, 0, 1, 1}, {0, 1, 1, 1});
  EXPECT_EQ(cm.at(0, 0), 1u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_EQ(cm.at(1, 1), 2u);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.f1(1), 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(cm.macroRecall(), 0.75);
}

TEST(Metrics, ConfusionValidatesRange) {
  EXPECT_THROW(ConfusionMatrix(2, {0, 2}, {0, 0}), std::out_of_range);
}

TEST(Metrics, PercentFormatting) {
  EXPECT_EQ(percent(0.931), "93.1");
  EXPECT_EQ(percent(1.0, 0), "100");
}

TEST(CrossValidation, GroupIndicesPartition) {
  const auto idx = groupIndices({1, 0, 1, 2, 0});
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.at(0), (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(idx.at(1), (std::vector<std::size_t>{0, 2}));
}

TEST(CrossValidation, LeaveOneGroupOutUsesAllRowsOnce) {
  const Dataset data = blobs(12, 10);  // groups 0..3
  std::atomic<std::size_t> tested{0};  // folds run concurrently
  const auto folds = leaveOneGroupOut(
      data, [&](const Dataset& train, const Dataset& test) {
        EXPECT_EQ(train.size() + test.size(), data.size());
        RandomForest forest(ForestConfig{.treeCount = 10});
        forest.fit(train);
        tested += test.size();
        return forest.predictAll(test);  // folds are views; x stays empty
      });
  EXPECT_EQ(folds.size(), 4u);
  EXPECT_EQ(tested, data.size());
  EXPECT_GT(meanAccuracy(folds), 0.9);
}

TEST(CrossValidation, StratifiedSplitBalancesClasses) {
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) labels.push_back(i % 4);
  const Split split = stratifiedSplit(labels, 0.25, 7);
  EXPECT_EQ(split.trainIndices.size() + split.testIndices.size(), 40u);
  std::map<int, int> testPerClass;
  for (const std::size_t i : split.testIndices) ++testPerClass[labels[i]];
  for (int label = 0; label < 4; ++label) {
    EXPECT_EQ(testPerClass[label], 2 + 1 /* ~25% of 10, rounded */)
        << "class " << label;
  }
  // Deterministic in seed; different seeds differ.
  const Split again = stratifiedSplit(labels, 0.25, 7);
  EXPECT_EQ(split.testIndices, again.testIndices);
}

TEST(CrossValidation, StratifiedSplitValidatesFraction) {
  EXPECT_THROW(stratifiedSplit({0, 1}, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(stratifiedSplit({0, 1}, 1.0, 1), std::invalid_argument);
}

TEST(CrossValidation, StratifiedKFoldPartitions) {
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) labels.push_back(i % 3);
  const auto folds = stratifiedKFold(labels, 5, 11);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 6u);
    std::map<int, int> perClass;
    for (const std::size_t i : fold) {
      ++perClass[labels[i]];
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " duplicated";
    }
    for (const auto& [label, count] : perClass) EXPECT_EQ(count, 2);
  }
  EXPECT_EQ(seen.size(), 30u);
  EXPECT_THROW(stratifiedKFold(labels, 1, 1), std::invalid_argument);
}

TEST(CrossValidation, RequiresGroups) {
  Dataset data = blobs(4, 11);
  data.groups.clear();
  EXPECT_THROW(
      leaveOneGroupOut(data,
                       [](const Dataset&, const Dataset& test) {
                         return std::vector<int>(test.size(), 0);
                       }),
      std::invalid_argument);
}

}  // namespace
}  // namespace sca::ml
