#include <gtest/gtest.h>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "corpus/dataset.hpp"
#include "evasion/evasion.hpp"
#include "evasion/mcts.hpp"

namespace sca::evasion {
namespace {

/// A small trained oracle shared by the suite (training once keeps the
/// suite fast; the tests only read it).
class EvasionTest : public ::testing::Test {
 protected:
  static core::AttributionModel& oracle() {
    static core::AttributionModel* model = [] {
      const corpus::YearDataset ds = corpus::buildYearDataset(2018, 12);
      std::vector<std::string> sources;
      std::vector<int> labels;
      for (const corpus::CodeSample& sample : ds.samples) {
        sources.push_back(sample.source);
        labels.push_back(sample.authorId);
      }
      core::ModelConfig config;
      config.forest.treeCount = 40;
      auto* m = new core::AttributionModel(config);
      m->train(sources, labels);
      return m;
    }();
    return *model;
  }

  static const corpus::YearDataset& data() {
    static const corpus::YearDataset ds = corpus::buildYearDataset(2018, 12);
    return ds;
  }
};

TEST_F(EvasionTest, UntargetedEvasionSucceedsOnMostVictims) {
  std::vector<VictimSample> victims;
  for (const corpus::CodeSample& sample : data().samples) {
    if (sample.challengeIndex == 0 && sample.authorId < 6) {
      victims.push_back(VictimSample{sample.source, sample.authorId});
    }
  }
  ASSERT_EQ(victims.size(), 6u);
  EvasionConfig config;
  config.maxIterations = 15;
  config.candidatesPerIteration = 4;
  const double rate = evasionSuccessRate(oracle(), victims, config);
  EXPECT_GE(rate, 0.8);  // Quiring et al. report ~99% on the real corpus
}

TEST_F(EvasionTest, EvadedOutputStillParsesAndKeepsIo) {
  const corpus::CodeSample& victim = data().samples[0];
  StyleEvader evader(oracle(), EvasionConfig{});
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  const ast::ParseResult before = ast::parse(victim.source);
  const ast::ParseResult after = ast::parse(result.source);
  EXPECT_TRUE(after.clean);
  std::size_t beforeReads = 0, afterReads = 0;
  ast::forEachStmt(before.unit, [&](const ast::Stmt& s) {
    if (s.is<ast::ReadStmt>()) ++beforeReads;
  });
  ast::forEachStmt(after.unit, [&](const ast::Stmt& s) {
    if (s.is<ast::ReadStmt>()) ++afterReads;
  });
  EXPECT_EQ(beforeReads, afterReads);
}

TEST_F(EvasionTest, ConfidenceDropsMonotonicallyAlongTrace) {
  const corpus::CodeSample& victim = data().samples[8];  // author 1
  StyleEvader evader(oracle(), EvasionConfig{});
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  double previous = 1.0;
  for (const EvasionStep& step : result.trace) {
    EXPECT_LE(step.confidence, previous + 1e-9);
    previous = step.confidence;
  }
  EXPECT_LE(result.finalConfidence, result.originalConfidence + 1e-9);
}

TEST_F(EvasionTest, QueryBudgetRespected) {
  const corpus::CodeSample& victim = data().samples[16];  // author 2
  EvasionConfig config;
  config.maxIterations = 5;
  config.candidatesPerIteration = 3;
  StyleEvader evader(oracle(), config);
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  // 1 initial + at most iterations*candidates + 1 final.
  EXPECT_LE(result.classifierQueries, 1 + 5 * 3 + 1);
}

TEST_F(EvasionTest, TargetedModeAimsAtTheTarget) {
  const corpus::CodeSample& victim = data().samples[24];  // author 3
  EvasionConfig config;
  config.targetAuthor = 5;
  config.maxIterations = 30;
  StyleEvader evader(oracle(), config);
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  // Targeted impersonation is much harder; at minimum the search must not
  // claim success unless it hit the target.
  if (result.evaded) {
    EXPECT_EQ(result.finalPrediction, 5);
  }
}

TEST_F(EvasionTest, ActionCatalogueCoversEveryDimensionValue) {
  const auto& actions = styleActionCatalogue();
  EXPECT_GE(actions.size(), 30u);
  // Every action must be applicable and change (or at least set) the field
  // it names — smoke-check a few.
  style::StyleProfile p;
  for (const StyleAction& action : actions) {
    style::StyleProfile copy = p;
    action.apply(copy);  // must not crash
    EXPECT_FALSE(action.name.empty());
  }
}

TEST_F(EvasionTest, MctsEvadesAndStaysParseable) {
  const corpus::CodeSample& victim = data().samples[40];  // author 5
  MctsConfig config;
  config.iterations = 40;
  MctsEvader evader(oracle(), config);
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  EXPECT_TRUE(ast::parse(result.source).clean);
  EXPECT_LE(result.finalConfidence, result.originalConfidence + 1e-9);
  EXPECT_TRUE(result.evaded);
}

TEST_F(EvasionTest, MctsDeterministicForFixedSeed) {
  const corpus::CodeSample& victim = data().samples[48];  // author 6
  MctsConfig config;
  config.iterations = 20;
  config.seed = 321;
  MctsEvader a(oracle(), config);
  MctsEvader b(oracle(), config);
  const EvasionResult ra = a.evade(victim.source, victim.authorId);
  const EvasionResult rb = b.evade(victim.source, victim.authorId);
  EXPECT_EQ(ra.source, rb.source);
  EXPECT_EQ(ra.classifierQueries, rb.classifierQueries);
}

TEST_F(EvasionTest, MctsRespectsIterationBudget) {
  const corpus::CodeSample& victim = data().samples[56];  // author 7
  MctsConfig config;
  config.iterations = 6;
  MctsEvader evader(oracle(), config);
  const EvasionResult result = evader.evade(victim.source, victim.authorId);
  // initial + <= iterations evaluations + final.
  EXPECT_LE(result.classifierQueries, 1 + 6 + 1);
  EXPECT_LE(result.trace.size(), 6u);
}

TEST_F(EvasionTest, DeterministicForFixedSeed) {
  const corpus::CodeSample& victim = data().samples[32];  // author 4
  EvasionConfig config;
  config.seed = 99;
  StyleEvader a(oracle(), config);
  StyleEvader b(oracle(), config);
  const EvasionResult ra = a.evade(victim.source, victim.authorId);
  const EvasionResult rb = b.evade(victim.source, victim.authorId);
  EXPECT_EQ(ra.source, rb.source);
  EXPECT_EQ(ra.finalPrediction, rb.finalPrediction);
  EXPECT_EQ(ra.classifierQueries, rb.classifierQueries);
}

}  // namespace
}  // namespace sca::evasion
