#include <gtest/gtest.h>

#include <sstream>

#include "core/attribution_model.hpp"
#include "core/binary.hpp"
#include "core/experiments.hpp"
#include "core/grouping.hpp"
#include "corpus/dataset.hpp"

namespace sca::core {
namespace {

/// Scaled-down config so the full pipeline runs in seconds on one core.
ExperimentConfig tinyConfig() {
  ExperimentConfig config;
  config.authorCount = 16;
  config.steps = 5;
  config.chatgptSetPerChallenge = 4;
  config.model.forest.treeCount = 30;
  config.model.selectTopK = 150;
  return config;
}

TEST(AttributionModel, LearnsTwoClearAuthors) {
  // Two authors with very different styles, 8 samples each.
  const corpus::YearDataset ds = corpus::buildYearDataset(2017, 2);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& s : ds.samples) {
    sources.push_back(s.source);
    labels.push_back(s.authorId);
  }
  ModelConfig config;
  config.forest.treeCount = 30;
  AttributionModel model(config);
  model.train(sources, labels);
  const auto predictions = model.predictAll(sources);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++hits;
  }
  EXPECT_GE(hits, predictions.size() - 1);  // training-set accuracy
  EXPECT_EQ(model.classCount(), 2);
}

TEST(AttributionModel, TrainValidatesInput) {
  AttributionModel model;
  EXPECT_THROW(model.train({}, {}), std::invalid_argument);
  EXPECT_THROW(model.train({"int main(){}"}, {0, 1}), std::invalid_argument);
}

TEST(AttributionModel, ProbaHasClassDimension) {
  const corpus::YearDataset ds = corpus::buildYearDataset(2018, 3);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& s : ds.samples) {
    sources.push_back(s.source);
    labels.push_back(s.authorId);
  }
  ModelConfig config;
  config.forest.treeCount = 15;
  AttributionModel model(config);
  model.train(sources, labels);
  EXPECT_EQ(model.predictProba(sources[0]).size(), 3u);
}

TEST(AttributionModel, SaveLoadKeepsBehaviour) {
  const corpus::YearDataset ds = corpus::buildYearDataset(2017, 4);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& s : ds.samples) {
    sources.push_back(s.source);
    labels.push_back(s.authorId);
  }
  ModelConfig config;
  config.forest.treeCount = 20;
  config.selectTopK = 100;
  AttributionModel model(config);
  model.train(sources, labels);

  std::stringstream buffer;
  model.save(buffer);
  const AttributionModel restored = AttributionModel::load(buffer);
  EXPECT_EQ(restored.classCount(), model.classCount());
  for (const std::string& source : sources) {
    EXPECT_EQ(restored.predict(source), model.predict(source));
    EXPECT_EQ(restored.predictProba(source), model.predictProba(source));
  }
}

TEST(AttributionModel, TopFeaturesAreNamedAndNormalized) {
  const corpus::YearDataset ds = corpus::buildYearDataset(2017, 6);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& s : ds.samples) {
    sources.push_back(s.source);
    labels.push_back(s.authorId);
  }
  ModelConfig config;
  config.forest.treeCount = 25;
  config.selectTopK = 120;
  AttributionModel model(config);
  model.train(sources, labels);
  const auto top = model.topFeatures(10);
  ASSERT_EQ(top.size(), 10u);
  double previous = 1.0;
  for (const auto& [name, importance] : top) {
    EXPECT_FALSE(name.empty());
    EXPECT_GT(importance, 0.0);
    EXPECT_LE(importance, previous + 1e-12);
    previous = importance;
  }
}

TEST(AttributionModel, LoadRejectsCorruptStream) {
  std::stringstream bad("not-a-model v9");
  EXPECT_THROW(AttributionModel::load(bad), std::runtime_error);
}

TEST(AttributionModel, SaveFileLoadFileRoundTrip) {
  const corpus::YearDataset ds = corpus::buildYearDataset(2018, 3);
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& s : ds.samples) {
    sources.push_back(s.source);
    labels.push_back(s.authorId);
  }
  ModelConfig config;
  config.forest.treeCount = 10;
  AttributionModel model(config);
  model.train(sources, labels);
  const std::string path = ::testing::TempDir() + "/sca_model.txt";
  model.saveFile(path);
  const AttributionModel restored = AttributionModel::loadFile(path);
  EXPECT_EQ(restored.predict(sources[0]), model.predict(sources[0]));
  EXPECT_THROW(AttributionModel::loadFile(path + ".missing"),
               std::runtime_error);
}

TEST(Grouping, FeatureBasedKeysOnModalLabel) {
  llm::TransformedDataset transformed;
  transformed.year = 2018;
  for (int c = 0; c < 2; ++c) {
    for (int step = 1; step <= 4; ++step) {
      llm::TransformedSample s;
      s.source = "int main() { return 0; }";
      s.challengeIndex = c;
      s.setting = llm::Setting::ChatGptNct;
      s.step = step;
      transformed.samples.push_back(std::move(s));
    }
  }
  // Labels: 7 (majority) for steps 1-3, 2 otherwise.
  std::vector<int> labels;
  for (int c = 0; c < 2; ++c) {
    labels.insert(labels.end(), {7, 7, 7, 2});
  }
  const ChatGptSet set =
      buildChatGptSet(transformed, labels, Approach::FeatureBased, 2);
  EXPECT_EQ(set.targetLabel, 7);
  EXPECT_EQ(set.sampleIndices.size(), 4u);  // 2 per challenge
  for (const std::size_t i : set.sampleIndices) {
    EXPECT_EQ(labels[i], 7);
  }
}

TEST(Grouping, NaiveTakesFirstResponses) {
  llm::TransformedDataset transformed;
  for (int step = 4; step >= 1; --step) {  // deliberately unsorted
    llm::TransformedSample s;
    s.source = "x";
    s.challengeIndex = 0;
    s.step = step;
    transformed.samples.push_back(std::move(s));
  }
  const std::vector<int> labels = {9, 9, 9, 9};
  const ChatGptSet set =
      buildChatGptSet(transformed, labels, Approach::Naive, 2);
  EXPECT_EQ(set.targetLabel, -1);
  ASSERT_EQ(set.sampleIndices.size(), 2u);
  // first responses = lowest steps = indices 3 (step 1) and 2 (step 2)
  EXPECT_EQ(transformed.samples[set.sampleIndices[0]].step +
                transformed.samples[set.sampleIndices[1]].step,
            3);
}

TEST(ExperimentConfig, EnvOverrides) {
  ::setenv("SCA_AUTHORS", "33", 1);
  ::setenv("SCA_TREES", "44", 1);
  const ExperimentConfig config = ExperimentConfig::fromEnv();
  EXPECT_EQ(config.authorCount, 33u);
  EXPECT_EQ(config.model.forest.treeCount, 44u);
  ::unsetenv("SCA_AUTHORS");
  ::unsetenv("SCA_TREES");
  const ExperimentConfig fresh = ExperimentConfig::fromEnv();
  EXPECT_EQ(fresh.authorCount, 204u);
}

class YearExperimentTest : public ::testing::Test {
 protected:
  YearExperimentTest() : experiment_(2018, tinyConfig()) {}
  YearExperiment experiment_;
};

TEST_F(YearExperimentTest, StagesHaveConsistentShapes) {
  const corpus::YearDataset& data = experiment_.corpusData();
  EXPECT_EQ(data.samples.size(), 16u * 8u);
  const llm::TransformedDataset& transformed = experiment_.transformedData();
  EXPECT_EQ(transformed.samples.size(), 4u * 5u * 8u);
  const std::vector<int>& labels = experiment_.oracleLabels();
  EXPECT_EQ(labels.size(), transformed.samples.size());
  for (const int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 16);
  }
}

TEST_F(YearExperimentTest, StyleCountsBounded) {
  const auto counts = experiment_.styleCounts();
  ASSERT_EQ(counts.perChallenge.size(), 8u);
  EXPECT_GT(counts.maxCount, 0u);
  for (const auto& row : counts.perChallenge) {
    for (const std::size_t c : row) {
      EXPECT_LE(c, 5u);  // never more styles than steps per setting
    }
  }
  for (const double avg : counts.averages) {
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 5.0);
  }
}

TEST_F(YearExperimentTest, DiversityRanksAndFilters) {
  const auto rows = experiment_.diversity(2);
  double totalPercent = 0.0;
  std::size_t previous = SIZE_MAX;
  for (const auto& row : rows) {
    EXPECT_LE(row.occurrences, previous);
    previous = row.occurrences;
    EXPECT_GE(row.occurrences, 2u);
    totalPercent += row.percent;
  }
  EXPECT_LE(totalPercent, 100.0 + 1e-9);
  // filtered + kept account for every distinct label
  const auto all = experiment_.diversity(1);
  EXPECT_EQ(all.size(), rows.size() + experiment_.diversityFilteredCount(2));
}

TEST_F(YearExperimentTest, AttributionProducesEightFolds) {
  const auto result = experiment_.attribution(Approach::FeatureBased);
  EXPECT_EQ(result.folds.size(), 8u);
  EXPECT_GE(result.targetLabel, 0);
  EXPECT_GT(result.setSize, 0u);
  EXPECT_GT(result.meanAccuracy, 0.3);  // tiny corpus, loose bound
  EXPECT_GE(result.chatgptCorrectPercent, 0.0);
  EXPECT_LE(result.chatgptCorrectPercent, 100.0);
  for (const auto& fold : result.folds) {
    EXPECT_GE(fold.accuracy205, 0.0);
    EXPECT_LE(fold.accuracy205, 1.0);
  }
}

TEST_F(YearExperimentTest, NaiveSetIgnoresLabels) {
  const auto naive = experiment_.attribution(Approach::Naive);
  EXPECT_EQ(naive.targetLabel, -1);
  EXPECT_EQ(naive.folds.size(), 8u);
}

TEST(Binary, IndividualBalancedAndAccurate) {
  YearExperiment experiment(2017, tinyConfig());
  const auto result = binaryIndividual(experiment);
  EXPECT_EQ(result.year, 2017);
  EXPECT_EQ(result.foldAccuracies.size(), 8u);
  EXPECT_GT(result.meanAccuracy, 0.5);  // must beat coin flip
}

TEST(Binary, CombinedCoversYearsAndAllColumn) {
  YearExperiment y2017(2017, tinyConfig());
  YearExperiment y2018(2018, tinyConfig());
  const auto result = binaryCombined({&y2017, &y2018}, 3);
  EXPECT_EQ(result.years, (std::vector<int>{2017, 2018}));
  EXPECT_EQ(result.perChallenge.size(), 3u);
  for (const auto& row : result.perChallenge) {
    // "All" column is a weighted combination; with equal sizes it lies
    // within [min, max] of the per-year accuracies.
    const double lo = std::min(row[0], row[1]);
    const double hi = std::max(row[0], row[1]);
    EXPECT_GE(row[3] + 1e-9, lo);
    EXPECT_LE(row[3] - 1e-9, hi);
  }
}

}  // namespace
}  // namespace sca::core
