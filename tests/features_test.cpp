#include <gtest/gtest.h>

#include <cmath>

#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "features/selection.hpp"
#include "features/vocabulary.hpp"

namespace sca::features {
namespace {

const std::string kSampleA =
    "#include <iostream>\nusing namespace std;\n"
    "int main() {\n    int numCases;\n    cin >> numCases;\n"
    "    for (int i = 0; i < numCases; i++) {\n"
    "        cout << i << \"\\n\";\n    }\n    return 0;\n}\n";

const std::string kSampleB =
    "#include <cstdio>\nint main()\n{\n\tint num_cases;\n"
    "\tscanf(\"%d\", &num_cases);\n\tint i = 0;\n"
    "\twhile (i < num_cases)\n\t{\n\t\tprintf(\"%d\\n\", i);\n\t\ti++;\n"
    "\t}\n\treturn 0;\n}\n";

// ------------------------------------------------------------ vocabulary --

TEST(Vocabulary, TopTermsByDocumentFrequency) {
  const std::vector<std::vector<std::string>> docs = {
      {"num", "cases", "num"}, {"num", "time"}, {"time", "cases"}};
  const Vocabulary vocab = Vocabulary::fit(docs, 2);
  EXPECT_EQ(vocab.size(), 2u);
  // "cases" and "num" tie with "time" at 2 docs each; alphabetic tiebreak
  // keeps fitting deterministic.
  EXPECT_TRUE(vocab.indexOf("cases").has_value());
  EXPECT_TRUE(vocab.indexOf("num").has_value());
  EXPECT_FALSE(vocab.indexOf("time").has_value());
}

TEST(Vocabulary, VectorizeIsL1NormalizedTermFrequency) {
  const std::vector<std::vector<std::string>> docs = {{"a"}, {"b"}};
  const Vocabulary vocab = Vocabulary::fit(docs, 10);
  const auto vec = vocab.vectorize({"a", "a", "b", "zzz"});
  double sum = 0.0;
  for (const double v : vec) sum += v;
  EXPECT_NEAR(sum, 0.75, 1e-9);  // zzz out of vocabulary
  EXPECT_NEAR(vec[*vocab.indexOf("a")], 0.5, 1e-9);
}

TEST(Vocabulary, EmptyDocumentYieldsZeros) {
  const Vocabulary vocab = Vocabulary::fit({{"x"}}, 4);
  for (const double v : vocab.vectorize({})) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(IdentifierTerms, SplitsTokensIntoWords) {
  const auto terms = identifierTerms("int numTestCases = maxTime;");
  EXPECT_NE(std::find(terms.begin(), terms.end(), "num"), terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "cases"), terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "max"), terms.end());
}

// ------------------------------------------------------------- extractor --

TEST(Extractor, DimensionMatchesNamesAndFamilies) {
  FeatureExtractor ex;
  ex.fit({kSampleA, kSampleB});
  EXPECT_GT(ex.dimension(), 80u);
  EXPECT_EQ(ex.featureNames().size(), ex.dimension());
  EXPECT_EQ(ex.featureFamilies().size(), ex.dimension());
  const auto vec = ex.transform(kSampleA);
  EXPECT_EQ(vec.size(), ex.dimension());
}

TEST(Extractor, ValuesAreFiniteAndMostlyBounded) {
  FeatureExtractor ex;
  ex.fit({kSampleA, kSampleB});
  for (const std::string& src : {kSampleA, kSampleB}) {
    for (const double v : ex.transform(src)) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 16.0);
    }
  }
}

TEST(Extractor, DistinguishesLayoutStyles) {
  FeatureExtractor ex;
  ex.fit({kSampleA, kSampleB});
  const auto a = ex.transform(kSampleA);
  const auto b = ex.transform(kSampleB);
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += std::fabs(a[i] - b[i]);
  }
  EXPECT_GT(distance, 0.5);
}

TEST(Extractor, TransformIsDeterministic) {
  FeatureExtractor ex;
  ex.fit({kSampleA, kSampleB});
  EXPECT_EQ(ex.transform(kSampleA), ex.transform(kSampleA));
}

TEST(Extractor, FamilySwitchesControlSchema) {
  ExtractorConfig lexOnly;
  lexOnly.useLayout = false;
  lexOnly.useSyntactic = false;
  FeatureExtractor ex(lexOnly);
  ex.fit({kSampleA});
  for (const FeatureFamily family : ex.featureFamilies()) {
    EXPECT_EQ(family, FeatureFamily::Lexical);
  }
  ExtractorConfig layoutOnly;
  layoutOnly.useLexical = false;
  layoutOnly.useSyntactic = false;
  FeatureExtractor ex2(layoutOnly);
  ex2.fit({kSampleA});
  EXPECT_EQ(ex2.featureFamilies().size(), 16u);
}

TEST(Extractor, KeywordColumnsReflectUsage) {
  FeatureExtractor ex;
  ex.fit({kSampleA, kSampleB});
  const auto& names = ex.featureNames();
  const auto a = ex.transform(kSampleA);
  const auto b = ex.transform(kSampleB);
  const auto col = [&](const std::string& name) {
    const auto it = std::find(names.begin(), names.end(), name);
    EXPECT_NE(it, names.end()) << name;
    return static_cast<std::size_t>(it - names.begin());
  };
  EXPECT_GT(a[col("kw:for")], 0.0);
  EXPECT_DOUBLE_EQ(b[col("kw:for")], 0.0);
  EXPECT_GT(b[col("kw:while")], 0.0);
  EXPECT_GT(b[col("lay:tab-indent-ratio")], 0.9);
  EXPECT_DOUBLE_EQ(a[col("lay:tab-indent-ratio")], 0.0);
  EXPECT_GT(b[col("lay:allman-ratio")], 0.5);
}

TEST(Extractor, HandlesGarbageInput) {
  FeatureExtractor ex;
  ex.fit({kSampleA});
  const auto vec = ex.transform("not really c++ @@@ ;;");
  EXPECT_EQ(vec.size(), ex.dimension());
  for (const double v : vec) EXPECT_TRUE(std::isfinite(v));
}

TEST(Extractor, EmptyInputSafe) {
  FeatureExtractor ex;
  ex.fit({kSampleA});
  const auto vec = ex.transform("");
  EXPECT_EQ(vec.size(), ex.dimension());
}

// -------------------------------------------------------------- selection --

TEST(Selection, PicksTheInformativeFeature) {
  // Feature 0 separates classes perfectly, feature 1 is constant,
  // feature 2 is noise-ish.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    x.push_back({label == 0 ? 0.0 : 1.0, 5.0, (i % 3) * 0.1});
    y.push_back(label);
  }
  FeatureSelector sel;
  sel.fit(x, y, 1);
  ASSERT_EQ(sel.selected().size(), 1u);
  EXPECT_EQ(sel.selected()[0], 0u);
  EXPECT_GT(sel.gains()[0], sel.gains()[2]);
  EXPECT_DOUBLE_EQ(sel.gains()[1], 0.0);
}

TEST(Selection, IdentityWhenKCoversAll) {
  std::vector<std::vector<double>> x = {{1, 2}, {3, 4}};
  std::vector<int> y = {0, 1};
  FeatureSelector sel;
  sel.fit(x, y, 10);
  EXPECT_TRUE(sel.identity());
  EXPECT_EQ(sel.apply({7, 8}), (std::vector<double>{7, 8}));
}

TEST(Selection, ApplyProjectsInGainOrder) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    const int label = i % 2;
    // feature 1 is perfect, feature 0 constant.
    x.push_back({1.0, label == 0 ? 0.0 : 1.0, 0.5});
    y.push_back(label);
  }
  FeatureSelector sel;
  sel.fit(x, y, 2);
  ASSERT_EQ(sel.selected().size(), 2u);
  EXPECT_EQ(sel.selected()[0], 1u);
  const auto projected = sel.apply({10, 20, 30});
  EXPECT_EQ(projected[0], 20);
}

TEST(Vocabulary, FromTermsRoundTrip) {
  const Vocabulary built = Vocabulary::fromTerms({"beta", "alpha", "gamma"});
  EXPECT_EQ(built.size(), 3u);
  EXPECT_EQ(*built.indexOf("beta"), 0u);
  EXPECT_EQ(*built.indexOf("gamma"), 2u);
  EXPECT_FALSE(built.indexOf("delta").has_value());
  // vectorize honours the explicit ordering
  const auto vec = built.vectorize({"gamma", "gamma"});
  EXPECT_DOUBLE_EQ(vec[2], 1.0);
}

TEST(Extractor, RebuiltFromVocabulariesMatchesOriginal) {
  FeatureExtractor fitted;
  fitted.fit({kSampleA, kSampleB});
  FeatureExtractor rebuilt(fitted.config(), fitted.identifierVocabulary(),
                           fitted.bigramVocabulary());
  EXPECT_EQ(rebuilt.dimension(), fitted.dimension());
  EXPECT_EQ(rebuilt.transform(kSampleA), fitted.transform(kSampleA));
  EXPECT_EQ(rebuilt.transform(kSampleB), fitted.transform(kSampleB));
}

TEST(Selection, FromIndicesProjects) {
  const FeatureSelector sel = FeatureSelector::fromIndices({2, 0});
  EXPECT_FALSE(sel.identity());
  EXPECT_EQ(sel.apply({10, 20, 30}), (std::vector<double>{30, 10}));
}

TEST(Selection, LabelEntropy) {
  EXPECT_DOUBLE_EQ(labelEntropy({1, 1, 1}), 0.0);
  EXPECT_NEAR(labelEntropy({0, 1}), std::log(2.0), 1e-9);
}

// -------------------------------------------------------- analysis cache --

TEST(AnalysisCache, CountsHitsMissesAndEntries) {
  clearAnalysisCache();
  const AnalysisCacheStats empty = analysisCacheStats();
  EXPECT_EQ(empty.hits, 0u);
  EXPECT_EQ(empty.misses, 0u);
  EXPECT_EQ(empty.entries, 0u);

  FeatureExtractor extractor;
  extractor.fit({kSampleA});  // first analysis of kSampleA: one miss
  const AnalysisCacheStats afterFit = analysisCacheStats();
  EXPECT_EQ(afterFit.misses, 1u);
  EXPECT_EQ(afterFit.entries, 1u);

  (void)extractor.transform(kSampleA);  // same content: a hit, no new entry
  const AnalysisCacheStats afterHit = analysisCacheStats();
  EXPECT_EQ(afterHit.hits, afterFit.hits + 1);
  EXPECT_EQ(afterHit.misses, 1u);
  EXPECT_EQ(afterHit.entries, 1u);

  (void)extractor.transform(kSampleB);  // new content: a miss, new entry
  const AnalysisCacheStats afterMiss = analysisCacheStats();
  EXPECT_EQ(afterMiss.misses, 2u);
  EXPECT_EQ(afterMiss.entries, 2u);

  clearAnalysisCache();
  const AnalysisCacheStats cleared = analysisCacheStats();
  EXPECT_EQ(cleared.hits, 0u);
  EXPECT_EQ(cleared.misses, 0u);
  EXPECT_EQ(cleared.entries, 0u);
}

TEST(AnalysisCache, WarmCacheIsTransparent) {
  FeatureExtractor extractor;
  extractor.fit({kSampleA, kSampleB});
  clearAnalysisCache();
  const std::vector<double> cold = extractor.transform(kSampleA);
  const std::vector<double> warm = extractor.transform(kSampleA);
  EXPECT_EQ(cold, warm);
  // A second extractor with different vocabularies shares the cache yet
  // projects its own features — cached analyses are extractor-independent.
  ExtractorConfig narrow;
  narrow.identifierVocabulary = 5;
  narrow.bigramVocabulary = 3;
  FeatureExtractor other(narrow);
  other.fit({kSampleB});
  EXPECT_EQ(other.transform(kSampleA), other.transform(kSampleA));
  EXPECT_NE(other.dimension(), extractor.dimension());
}

}  // namespace
}  // namespace sca::features
