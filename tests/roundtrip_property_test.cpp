// Property sweeps over the style grid: for every challenge IR and a wide
// sample of style profiles, render -> parse must be clean, re-render must be
// a fixed point, and semantic IO structure must survive — the invariants
// the whole measurement pipeline rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "ast/visit.hpp"
#include "corpus/challenges.hpp"
#include "lexer/lexer.hpp"
#include "style/apply.hpp"
#include "style/profile.hpp"

namespace sca {
namespace {

struct IoSignature {
  std::size_t reads = 0;
  std::size_t readTargets = 0;
  std::size_t writes = 0;
  std::size_t loops = 0;

  friend bool operator==(const IoSignature&, const IoSignature&) = default;
};

IoSignature signatureOf(const ast::TranslationUnit& unit) {
  IoSignature sig;
  ast::forEachStmt(unit, [&](const ast::Stmt& s) {
    if (s.is<ast::ReadStmt>()) {
      ++sig.reads;
      sig.readTargets += s.as<ast::ReadStmt>().targets.size();
    }
    if (s.is<ast::WriteStmt>()) ++sig.writes;
    if (s.is<ast::ForStmt>() || s.is<ast::WhileStmt>() ||
        s.is<ast::DoWhileStmt>()) {
      ++sig.loops;
    }
  });
  return sig;
}

// Parameter: (challenge index, profile seed).
class StyleGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StyleGridTest, RenderParseRoundTripClean) {
  const auto [challengeIdx, seed] = GetParam();
  const corpus::Challenge& challenge =
      corpus::catalogue()[static_cast<std::size_t>(challengeIdx)];
  util::Rng profileRng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const style::StyleProfile profile = style::sampleProfile(profileRng);
  util::Rng applyRng(static_cast<std::uint64_t>(seed) * 104729 + 7);

  const std::string source =
      style::applyStyle(challenge.ir, profile, applyRng);
  const ast::ParseResult parsed = ast::parse(source);
  ASSERT_TRUE(parsed.clean)
      << challenge.id << " / " << profile.describe() << "\n"
      << (parsed.warnings.empty() ? "" : parsed.warnings[0]) << "\n"
      << source;

  // Re-rendering the parse under the same options reproduces the text
  // exactly (comment-free profiles only: comments round-trip structurally
  // but the renderer re-wraps block comments).
  if (profile.commentDensity == 0.0 && !profile.fileHeaderComment) {
    const std::string again = ast::render(parsed.unit, profile.renderOptions());
    EXPECT_EQ(source, again) << challenge.id << " / " << profile.describe();
  }
}

TEST_P(StyleGridTest, IoStructureSurvivesStyling) {
  const auto [challengeIdx, seed] = GetParam();
  const corpus::Challenge& challenge =
      corpus::catalogue()[static_cast<std::size_t>(challengeIdx)];
  util::Rng profileRng(static_cast<std::uint64_t>(seed) * 31337 + 3);
  const style::StyleProfile profile = style::sampleProfile(profileRng);
  util::Rng applyRng(static_cast<std::uint64_t>(seed) * 27644437 + 11);

  const IoSignature before = signatureOf(challenge.ir);
  const std::string source =
      style::applyStyle(challenge.ir, profile, applyRng);
  const ast::ParseResult parsed = ast::parse(source);
  ASSERT_TRUE(parsed.clean);
  const IoSignature after = signatureOf(parsed.unit);

  // Reads/writes must be preserved exactly: they ARE the program's
  // observable behaviour. Loop count is preserved too (for<->while swaps
  // keep the loop, decomposition moves but never deletes them).
  EXPECT_EQ(before.reads, after.reads) << profile.describe() << "\n" << source;
  EXPECT_EQ(before.readTargets, after.readTargets) << profile.describe();
  EXPECT_EQ(before.writes, after.writes) << profile.describe();
  EXPECT_EQ(before.loops, after.loops) << profile.describe();
}

TEST_P(StyleGridTest, ArenaCopyAndStreamParseAgree) {
  // The arena memory model's two load-bearing properties, swept over the
  // same style grid: (1) parsing a pre-lexed TokenStream (the extractor's
  // zero-copy path) is the same parse as parsing the text, and (2)
  // deepCopy — a raw pool copy, valid because ids are arena-relative —
  // yields a unit that renders byte-identically to its original.
  const auto [challengeIdx, seed] = GetParam();
  const corpus::Challenge& challenge =
      corpus::catalogue()[static_cast<std::size_t>(challengeIdx)];
  util::Rng profileRng(static_cast<std::uint64_t>(seed) * 15485863 + 29);
  const style::StyleProfile profile = style::sampleProfile(profileRng);
  util::Rng applyRng(static_cast<std::uint64_t>(seed) * 982451653 + 17);

  const std::string source =
      style::applyStyle(challenge.ir, profile, applyRng);
  const lexer::TokenStream stream = lexer::tokenize(source);
  const ast::ParseResult fromStream = ast::parse(stream);
  const ast::ParseResult fromText = ast::parse(source);
  ASSERT_EQ(fromStream.clean, fromText.clean)
      << challenge.id << " / " << profile.describe();

  const ast::RenderOptions canonical;
  const std::string streamRender = ast::render(fromStream.unit, canonical);
  EXPECT_EQ(streamRender, ast::render(fromText.unit, canonical))
      << challenge.id << " / " << profile.describe();

  const ast::TranslationUnit copy = ast::deepCopy(fromStream.unit);
  EXPECT_EQ(ast::render(copy, canonical), streamRender)
      << challenge.id << " / " << profile.describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllChallengesManyStyles, StyleGridTest,
    ::testing::Combine(::testing::Range(0, 20), ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return corpus::catalogue()[static_cast<std::size_t>(
                                     std::get<0>(info.param))]
                 .id +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// Chained re-styling must stay clean arbitrarily deep (CT runs 50 deep in
// the paper; we sweep a few chains of depth 12).
class ChainDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepthTest, DeepChainsRemainParseable) {
  const int chainSeed = GetParam();
  const corpus::Challenge& challenge =
      corpus::catalogue()[static_cast<std::size_t>(chainSeed) %
                          corpus::catalogue().size()];
  util::Rng rng(static_cast<std::uint64_t>(chainSeed));
  std::string current = ast::render(challenge.ir, ast::RenderOptions{});
  const IoSignature original = signatureOf(challenge.ir);
  for (int depth = 0; depth < 12; ++depth) {
    util::Rng profileRng = rng.derive(static_cast<std::uint64_t>(depth));
    const style::StyleProfile profile = style::sampleProfile(profileRng);
    ast::ParseResult parsed = ast::parse(current);
    ASSERT_TRUE(parsed.clean) << "depth " << depth << "\n" << current;
    util::Rng applyRng = rng.derive(1000 + static_cast<std::uint64_t>(depth));
    current = style::applyStyle(parsed.unit, profile, applyRng);
  }
  const ast::ParseResult last = ast::parse(current);
  ASSERT_TRUE(last.clean);
  EXPECT_EQ(signatureOf(last.unit), original);
}

INSTANTIATE_TEST_SUITE_P(Chains, ChainDepthTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace sca
