#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sca::util {
namespace {

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DeriveIsIndependentOfParentUse) {
  Rng a(7);
  Rng childBefore = a.derive("x");
  a.next();
  a.next();
  // Deriving again from the mutated parent gives a different stream — but
  // the stream obtained *before* must be reproducible from a fresh parent.
  Rng b(7);
  Rng childFresh = b.derive("x");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(childBefore.next(), childFresh.next());
  }
}

TEST(Rng, DeriveByLabelSeparatesStreams) {
  Rng a(7);
  Rng x = a.derive("x");
  Rng y = a.derive("y");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (x.next() == y.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.weightedIndex(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(17);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weightedIndex(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  const auto sample = rng.sampleIndices(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesClampsOversizedRequest) {
  Rng rng(23);
  EXPECT_EQ(rng.sampleIndices(5, 100).size(), 5u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Hash64, StableAndDistinct) {
  EXPECT_EQ(hash64("abc"), hash64("abc"));
  EXPECT_NE(hash64("abc"), hash64("abd"));
  EXPECT_NE(hash64(""), hash64("a"));
}

// --------------------------------------------------------------- strings --

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = splitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim("\n\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, CaseConversions) {
  EXPECT_EQ(toLower("MiXeD"), "mixed");
  EXPECT_EQ(toUpper("MiXeD"), "MIXED");
  EXPECT_EQ(capitalize("wORD"), "Word");
  EXPECT_EQ(capitalize(""), "");
}

TEST(Strings, SplitIdentifierHandlesAllConventions) {
  EXPECT_EQ(splitIdentifier("numTestCases"),
            (std::vector<std::string>{"num", "test", "cases"}));
  EXPECT_EQ(splitIdentifier("max_time"),
            (std::vector<std::string>{"max", "time"}));
  EXPECT_EQ(splitIdentifier("MaxTime"),
            (std::vector<std::string>{"max", "time"}));
  EXPECT_EQ(splitIdentifier("x"), (std::vector<std::string>{"x"}));
  EXPECT_EQ(splitIdentifier("__"), (std::vector<std::string>{}));
}

TEST(Strings, CountLinesWithAndWithoutTrailingNewline) {
  EXPECT_EQ(countLines(""), 0u);
  EXPECT_EQ(countLines("a"), 1u);
  EXPECT_EQ(countLines("a\n"), 1u);
  EXPECT_EQ(countLines("a\nb"), 2u);
  EXPECT_EQ(countLines("a\nb\n"), 2u);
}

TEST(Strings, ReplaceAllNonOverlapping) {
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("%x%", "%", "%%"), "%%x%%");
  EXPECT_EQ(replaceAll("abc", "", "z"), "abc");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(90.25, 1), "90.2");  // round-to-even
  EXPECT_EQ(formatDouble(100.0, 1), "100.0");
}

TEST(Strings, Hex64RoundTrip) {
  EXPECT_EQ(toHex64(0), "0000000000000000");
  EXPECT_EQ(toHex64(0xdeadbeefcafef00dull), "deadbeefcafef00d");
  std::uint64_t value = 0;
  EXPECT_TRUE(parseHex64("deadbeefcafef00d", &value));
  EXPECT_EQ(value, 0xdeadbeefcafef00dull);
  EXPECT_TRUE(parseHex64(toHex64(~0ull), &value));
  EXPECT_EQ(value, ~0ull);
}

TEST(Strings, ParseHex64RejectsMalformedInput) {
  std::uint64_t value = 99;
  EXPECT_FALSE(parseHex64("", &value));
  EXPECT_FALSE(parseHex64("deadbeef", &value));            // too short
  EXPECT_FALSE(parseHex64("deadbeefcafef00d00", &value));  // too long
  EXPECT_FALSE(parseHex64("DEADBEEFCAFEF00D", &value));    // uppercase
  EXPECT_FALSE(parseHex64("deadbeefcafef00g", &value));    // non-hex
  EXPECT_EQ(value, 99u);  // out untouched on failure
}

TEST(Strings, JsonObjectBuilderProducesParseableRecord) {
  const std::string record = JsonObjectBuilder()
                                 .add("name", "a \"b\"\nc")
                                 .addUint("count", 18446744073709551615ull)
                                 .addInt("delta", -42)
                                 .addDouble("ratio", 0.125, 3)
                                 .addRaw("nested", "{\"x\":1}")
                                 .str();
  EXPECT_EQ(record,
            "{\"name\":\"a \\\"b\\\"\\nc\",\"count\":18446744073709551615,"
            "\"delta\":-42,\"ratio\":0.125,\"nested\":{\"x\":1}}");

  std::string text;
  EXPECT_TRUE(jsonStringField(record, "name", &text));
  EXPECT_EQ(text, "a \"b\"\nc");
  long long number = 0;
  EXPECT_TRUE(jsonIntField(record, "delta", &number));
  EXPECT_EQ(number, -42);
}

TEST(Strings, JsonFieldExtractorsFailSoftOnTornRecords) {
  const std::string record =
      JsonObjectBuilder().add("key", "value").addInt("n", 7).str();
  // Any truncation must return false, never crash or return garbage.
  for (std::size_t cut = 0; cut < record.size(); ++cut) {
    const std::string torn = record.substr(0, cut);
    std::string text;
    long long number = 0;
    if (jsonStringField(torn, "key", &text)) {
      EXPECT_EQ(text, "value");
    }
    if (jsonIntField(torn, "n", &number)) {
      EXPECT_EQ(number, 7);
    }
  }
  std::string text;
  EXPECT_FALSE(jsonStringField(record, "missing", &text));
  long long number = 0;
  EXPECT_FALSE(jsonIntField(record, "key", &number));  // string, not int
}

// ----------------------------------------------------------------- stats --

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, EntropyUniformAndDegenerate) {
  const std::vector<std::size_t> uniform = {5, 5, 5, 5};
  EXPECT_NEAR(entropy(uniform), std::log(4.0), 1e-9);
  const std::vector<std::size_t> degenerate = {10, 0, 0};
  EXPECT_DOUBLE_EQ(entropy(degenerate), 0.0);
}

TEST(Histogram, RankedOrdersByCountThenKey) {
  Histogram h;
  h.add("b");
  h.add("a");
  h.add("b");
  h.add("c");
  h.add("a");
  h.add("a");
  const auto ranked = h.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, "a");
  EXPECT_EQ(ranked[0].second, 3u);
  EXPECT_EQ(ranked[1].first, "b");
  EXPECT_EQ(ranked[2].first, "c");
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count("missing"), 0u);
}

// ----------------------------------------------------------------- table --

TEST(Table, PrintsAlignedCells) {
  TablePrinter table("Caption");
  table.setHeader({"A", "Long header"});
  table.addRow({"row", "x"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Caption"), std::string::npos);
  EXPECT_NE(out.find("Long header"), std::string::npos);
  EXPECT_NE(out.find("| row"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  EXPECT_EQ(csvEscape("plain"), "plain");
  EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, ToCsvHasHeaderAndRows) {
  TablePrinter table("");
  table.setHeader({"x", "y"});
  table.addRow({"1", "2"});
  table.addSeparator();
  table.addRow({"3", "4"});
  EXPECT_EQ(table.toCsv(), "x,y\n1,2\n3,4\n");
}

}  // namespace
}  // namespace sca::util
