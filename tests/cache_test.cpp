// Tests for the persistent content-addressed cache (src/cache/) and its
// two integration seams: the CachingClient LLM decorator and the feature
// extractor's analysis spill/restore.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "cache/codec.hpp"
#include "cache/key.hpp"
#include "cache/store.hpp"
#include "corpus/challenges.hpp"
#include "features/extractor.hpp"
#include "llm/caching_client.hpp"
#include "llm/fault_injection.hpp"
#include "llm/resilient_client.hpp"
#include "llm/synthetic_llm.hpp"
#include "runtime/parallel.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace sca::cache {
namespace {

std::string tempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sca_cache_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CacheKey key(std::uint64_t hi, std::uint64_t lo) { return CacheKey{hi, lo}; }

// ------------------------------------------------------------------ codec

TEST(Codec, RoundTripsEveryFieldKind) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.str("hello \x01 world");
  w.str("");
  w.boolean(true);
  w.boolean(false);
  const std::string bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double negZero = r.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.str(), "hello \x01 world");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.atEnd());
}

TEST(Codec, TruncationLatchesNotOkInsteadOfCrashing) {
  ByteWriter w;
  w.u64(42);
  w.str("payload");
  const std::string bytes = w.take();

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(std::string_view(bytes).substr(0, cut));
    (void)r.u64();
    (void)r.str();
    EXPECT_FALSE(r.ok() && r.atEnd()) << "cut at " << cut;
  }
}

// -------------------------------------------------------------- DiskCache

TEST(DiskCache, PutGetRoundTripAndPersistAcrossInstances) {
  const std::string dir = tempDir("roundtrip");
  {
    DiskCache cache(StoreOptions{.dir = dir});
    EXPECT_EQ(cache.get(key(1, 2)), std::nullopt);
    ASSERT_TRUE(cache.put(key(1, 2), "alpha").isOk());
    ASSERT_TRUE(cache.put(key(3, 4), std::string("b\0b", 3)).isOk());
    EXPECT_EQ(cache.get(key(1, 2)), "alpha");
    EXPECT_EQ(cache.get(key(3, 4)), std::string("b\0b", 3));
    EXPECT_EQ(cache.entryCount(), 2u);
  }
  DiskCache reloaded(StoreOptions{.dir = dir});
  EXPECT_EQ(reloaded.entryCount(), 2u);
  EXPECT_EQ(reloaded.get(key(1, 2)), "alpha");
  EXPECT_EQ(reloaded.get(key(3, 4)), std::string("b\0b", 3));
  EXPECT_EQ(reloaded.stats().loadedEntries, 2u);
}

TEST(DiskCache, OverwriteReplacesValueAndBytes) {
  DiskCache cache(StoreOptions{.dir = tempDir("overwrite")});
  ASSERT_TRUE(cache.put(key(1, 1), "short").isOk());
  ASSERT_TRUE(cache.put(key(1, 1), "a much longer value").isOk());
  EXPECT_EQ(cache.entryCount(), 1u);
  EXPECT_EQ(cache.totalBytes(), 19u);
  EXPECT_EQ(cache.get(key(1, 1)), "a much longer value");
}

TEST(DiskCache, EvictsLeastRecentlyUsedFirstAndHonorsByteCapacity) {
  StoreOptions options;
  options.dir = tempDir("lru");
  options.maxBytes = 30;  // three 10-byte values
  DiskCache cache(options);
  const std::string tenBytes(10, 'x');
  ASSERT_TRUE(cache.put(key(0, 1), tenBytes).isOk());
  ASSERT_TRUE(cache.put(key(0, 2), tenBytes).isOk());
  ASSERT_TRUE(cache.put(key(0, 3), tenBytes).isOk());
  EXPECT_EQ(cache.entryCount(), 3u);

  // A hit refreshes entry 1, so entry 2 is now the LRU victim.
  EXPECT_TRUE(cache.get(key(0, 1)).has_value());
  ASSERT_TRUE(cache.put(key(0, 4), tenBytes).isOk());
  EXPECT_EQ(cache.entryCount(), 3u);
  EXPECT_EQ(cache.get(key(0, 2)), std::nullopt);  // evicted
  EXPECT_TRUE(cache.get(key(0, 1)).has_value());
  EXPECT_TRUE(cache.get(key(0, 3)).has_value());
  EXPECT_TRUE(cache.get(key(0, 4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.totalBytes(), options.maxBytes);
}

TEST(DiskCache, LruOrderSurvivesReload) {
  StoreOptions options;
  options.dir = tempDir("lru_reload");
  options.maxBytes = 1000;
  {
    DiskCache cache(options);
    ASSERT_TRUE(cache.put(key(0, 1), std::string(400, 'a')).isOk());
    ASSERT_TRUE(cache.put(key(0, 2), std::string(400, 'b')).isOk());
    EXPECT_TRUE(cache.get(key(0, 1)).has_value());  // 1 newer than 2 now
  }
  DiskCache reloaded(options);
  ASSERT_TRUE(reloaded.put(key(0, 3), std::string(400, 'c')).isOk());
  EXPECT_EQ(reloaded.get(key(0, 2)), std::nullopt);  // evicted, not 1
  EXPECT_TRUE(reloaded.get(key(0, 1)).has_value());
}

TEST(DiskCache, WrongMagicStartsEmpty) {
  const std::string dir = tempDir("magic");
  {
    DiskCache cache(StoreOptions{.dir = dir});
    ASSERT_TRUE(cache.put(key(7, 7), "value").isOk());
  }
  // A different format version (or garbage) in the header invalidates the
  // whole index.
  ASSERT_TRUE(
      util::atomicWriteFile(dir + "/index.json",
                            "{\"magic\":\"sca-cache-v999\",\"next_gen\":9}\n")
          .isOk());
  DiskCache reloaded(StoreOptions{.dir = dir});
  EXPECT_EQ(reloaded.entryCount(), 0u);
  EXPECT_EQ(reloaded.get(key(7, 7)), std::nullopt);
}

TEST(DiskCache, TruncatedIndexLineIsSkippedOthersSurvive) {
  const std::string dir = tempDir("torn_index");
  {
    DiskCache cache(StoreOptions{.dir = dir});
    ASSERT_TRUE(cache.put(key(1, 1), "first").isOk());
    ASSERT_TRUE(cache.put(key(2, 2), "second").isOk());
  }
  // Simulate a crash mid-write: chop the index mid-last-line.
  const util::Result<std::string> index = util::readFile(dir + "/index.json");
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(
      util::atomicWriteFile(dir + "/index.json",
                            index.value().substr(0, index.value().size() - 30))
          .isOk());

  DiskCache reloaded(StoreOptions{.dir = dir});
  EXPECT_EQ(reloaded.entryCount(), 1u);
  EXPECT_GE(reloaded.stats().skippedIndexLines, 1u);
  EXPECT_TRUE(reloaded.get(key(1, 1)).has_value());
  EXPECT_EQ(reloaded.get(key(2, 2)), std::nullopt);
}

TEST(DiskCache, CorruptValueFileIsAMissAndDropsTheEntry) {
  const std::string dir = tempDir("corrupt_value");
  DiskCache cache(StoreOptions{.dir = dir});
  ASSERT_TRUE(cache.put(key(5, 5), "pristine bytes").isOk());

  // Flip the value file behind the cache's back.
  const std::string hex = formatKey(key(5, 5));
  const std::string valuePath =
      dir + "/values/" + hex.substr(0, 2) + "/" + hex + ".val";
  ASSERT_TRUE(util::atomicWriteFile(valuePath, "tampered bytes").isOk());

  EXPECT_EQ(cache.get(key(5, 5)), std::nullopt);
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.stats().corruptValues, 1u);

  // put() repairs it.
  ASSERT_TRUE(cache.put(key(5, 5), "pristine bytes").isOk());
  EXPECT_EQ(cache.get(key(5, 5)), "pristine bytes");
}

TEST(DiskCache, VerifyFlagsCorruptionAndCountsOrphans) {
  const std::string dir = tempDir("verify");
  DiskCache cache(StoreOptions{.dir = dir});
  ASSERT_TRUE(cache.put(key(1, 1), "good").isOk());
  ASSERT_TRUE(cache.put(key(2, 2), "bad soon").isOk());
  EXPECT_TRUE(cache.verify().ok());

  const std::string hex = formatKey(key(2, 2));
  const std::string valuePath =
      dir + "/values/" + hex.substr(0, 2) + "/" + hex + ".val";
  ASSERT_TRUE(util::atomicWriteFile(valuePath, "bad now!").isOk());
  const DiskCache::VerifyReport report = cache.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.problems.size(), 1u);

  // An orphan value (file without an index entry) is informational only.
  const std::string orphanHex = formatKey(key(9, 9));
  ASSERT_TRUE(util::atomicWriteFile(dir + "/values/" +
                                        orphanHex.substr(0, 2) + "/" +
                                        orphanHex + ".val",
                                    "orphan")
                  .isOk());
  EXPECT_EQ(cache.verify().orphanValues, 1u);
}

TEST(DiskCache, PurgeDropsEverything) {
  const std::string dir = tempDir("purge");
  DiskCache cache(StoreOptions{.dir = dir});
  ASSERT_TRUE(cache.put(key(1, 1), "value").isOk());
  ASSERT_TRUE(cache.purge().isOk());
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.totalBytes(), 0u);
  EXPECT_EQ(cache.get(key(1, 1)), std::nullopt);
  EXPECT_FALSE(std::filesystem::exists(dir + "/index.json"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/values"));
}

TEST(DiskCache, DeferredFlushStillPersistsOnDestruction) {
  const std::string dir = tempDir("deferred");
  StoreOptions options;
  options.dir = dir;
  options.flushInterval = 0;  // only flush()/destructor persist the index
  {
    DiskCache cache(options);
    ASSERT_TRUE(cache.put(key(1, 1), "value").isOk());
    EXPECT_FALSE(std::filesystem::exists(dir + "/index.json"));
  }
  DiskCache reloaded(StoreOptions{.dir = dir});
  EXPECT_EQ(reloaded.get(key(1, 1)), "value");
}

TEST(DiskCache, ConcurrentReadersAllHit) {
  DiskCache cache(StoreOptions{.dir = tempDir("concurrent")});
  constexpr std::size_t kEntries = 64;
  for (std::size_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(
        cache.put(key(1, i), "value-" + std::to_string(i)).isOk());
  }
  const std::vector<int> results = runtime::parallelMap<int>(
      kEntries * 4, [&](std::size_t task) {
        const std::size_t i = task % kEntries;
        const std::optional<std::string> value = cache.get(key(1, i));
        return (value.has_value() && *value == "value-" + std::to_string(i))
                   ? 1
                   : 0;
      });
  for (const int ok : results) EXPECT_EQ(ok, 1);
  EXPECT_EQ(cache.stats().hits, kEntries * 4);
}

// ---------------------------------------------------------- CachingClient

/// Full decorator stack of the dataset builder, with faults on: model ->
/// fault injector -> resilient wrapper [-> caching].
std::vector<std::string> runChain(DiskCache* store, std::size_t steps,
                                  std::uint64_t seed, double faultRate) {
  llm::LlmOptions options;
  options.year = 2018;
  options.seed = seed;
  llm::SyntheticLlm model(options);
  llm::FaultInjectingClient faulty(
      model, llm::FaultOptions::scaled(faultRate, seed));
  llm::RetryPolicy retry;
  retry.seed = seed;
  llm::ResilientClient resilient(faulty, retry);

  llm::LlmClient* client = &resilient;
  std::optional<llm::CachingClient> caching;
  if (store != nullptr) {
    caching.emplace(*client, *store,
                    llm::llmConfigHash(options, faultRate));
    client = &*caching;
  }

  const corpus::Challenge& challenge = corpus::challengeById("race");
  std::vector<std::string> outputs;
  outputs.push_back(client->tryGenerate(challenge).value());
  for (std::size_t i = 1; i < steps; ++i) {
    outputs.push_back(client->tryTransform(outputs.back()).value());
  }
  return outputs;
}

TEST(CachingClient, ColdAndWarmMatchUncachedByteForByte) {
  DiskCache store(StoreOptions{.dir = tempDir("llm_identity")});
  const std::vector<std::string> uncached =
      runChain(nullptr, 6, 42, /*faultRate=*/0.3);
  const std::vector<std::string> cold = runChain(&store, 6, 42, 0.3);
  const std::vector<std::string> warm = runChain(&store, 6, 42, 0.3);
  EXPECT_EQ(uncached, cold);
  EXPECT_EQ(uncached, warm);
}

TEST(CachingClient, WarmRunServesFromStoreWithoutTouchingInner) {
  DiskCache store(StoreOptions{.dir = tempDir("llm_warm")});
  (void)runChain(&store, 5, 7, 0.0);

  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 7;
  llm::SyntheticLlm model(options);
  llm::CachingClient caching(model, store,
                             llm::llmConfigHash(options, 0.0));
  const corpus::Challenge& challenge = corpus::challengeById("race");
  std::string output = caching.tryGenerate(challenge).value();
  for (int i = 1; i < 5; ++i) {
    output = caching.tryTransform(output).value();
  }
  EXPECT_EQ(model.callCount(), 0u);  // every request was a hit
  EXPECT_EQ(caching.stats().hits, 5u);
  EXPECT_EQ(caching.stats().misses, 0u);
}

TEST(CachingClient, FirstMissReplaysServedPrefixThroughInner) {
  DiskCache store(StoreOptions{.dir = tempDir("llm_replay")});
  // Cold: 4 steps cached. Warm: 7 steps — the first 4 hit, step 5 misses
  // and must replay the 4 served calls to restore inner state.
  const std::vector<std::string> cold = runChain(&store, 4, 11, 0.0);
  const std::vector<std::string> longUncached = runChain(nullptr, 7, 11, 0.0);

  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 11;
  llm::SyntheticLlm model(options);
  llm::CachingClient caching(model, store,
                             llm::llmConfigHash(options, 0.0));
  const corpus::Challenge& challenge = corpus::challengeById("race");
  std::vector<std::string> warm;
  warm.push_back(caching.tryGenerate(challenge).value());
  for (int i = 1; i < 7; ++i) {
    warm.push_back(caching.tryTransform(warm.back()).value());
  }
  EXPECT_EQ(warm, longUncached);
  EXPECT_EQ(caching.stats().hits, 4u);
  EXPECT_EQ(caching.stats().replays, 4u);
  EXPECT_EQ(caching.stats().misses, 3u);
  // The extension is now cached too.
  EXPECT_EQ(std::vector<std::string>(warm.begin(), warm.begin() + 4), cold);
}

TEST(CachingClient, DifferentConfigHashNeverHits) {
  DiskCache store(StoreOptions{.dir = tempDir("llm_config")});
  (void)runChain(&store, 4, 3, 0.0);
  const std::uint64_t putsAfterCold = store.stats().puts;
  ASSERT_GT(putsAfterCold, 0u);

  // Same conversation, different fault rate => different config hash =>
  // a fully cold run (the stale entries are simply never addressed).
  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 3;
  llm::SyntheticLlm model(options);
  llm::CachingClient caching(model, store,
                             llm::llmConfigHash(options, /*faultRate=*/0.5));
  const corpus::Challenge& challenge = corpus::challengeById("race");
  (void)caching.tryGenerate(challenge).value();
  EXPECT_EQ(caching.stats().hits, 0u);
  EXPECT_EQ(caching.stats().misses, 1u);
}

TEST(CachingClient, ErrorsAreNotCached) {
  DiskCache store(StoreOptions{.dir = tempDir("llm_errors")});

  struct FailingClient : llm::LlmClient {
    util::Result<std::string> tryGenerate(const corpus::Challenge&) override {
      return util::Status(util::StatusCode::kUnavailable, "down");
    }
    util::Result<std::string> tryTransform(const std::string&) override {
      return util::Status(util::StatusCode::kUnavailable, "down");
    }
    std::string_view describe() const override { return "failing"; }
  } failing;

  llm::CachingClient caching(failing, store, 123);
  EXPECT_FALSE(caching.tryTransform("x").ok());
  EXPECT_EQ(store.stats().puts, 0u);
  EXPECT_EQ(store.entryCount(), 0u);
}

// --------------------------------------------------- analysis spill/restore

/// Scoped attach: points the extractor's analysis cache at `store` and
/// restores the process default afterwards (tests share one process).
class ScopedAnalysisDisk {
 public:
  explicit ScopedAnalysisDisk(DiskCache* store) {
    features::setAnalysisDiskCache(store);
    features::clearAnalysisCache();
  }
  ~ScopedAnalysisDisk() {
    features::setAnalysisDiskCache(nullptr);
    features::clearAnalysisCache();
  }
};

TEST(AnalysisDiskCache, RestoredAnalysesReproduceFeatureVectorsExactly) {
  DiskCache store(StoreOptions{.dir = tempDir("analysis")});
  const std::vector<std::string> sources = {
      "#include <iostream>\nint main() {\n  int x = 1;\n  // note\n"
      "  for (int i = 0; i < 3; ++i) x += i;\n  std::cout << x;\n}\n",
      "#include <bits/stdc++.h>\nusing namespace std;\n"
      "int helper(int a, int b) { return a + b; }\n"
      "int main() { cout << helper(1, 2); }\n",
  };

  ScopedAnalysisDisk scoped(&store);
  features::FeatureExtractor extractor;
  extractor.fit(sources);
  const std::vector<std::vector<double>> fresh =
      extractor.transformAll(sources);
  const std::size_t spills = features::analysisCacheStats().diskSpills;
  EXPECT_GT(spills, 0u);

  // Drop the in-memory layer; the disk must reproduce the exact vectors.
  features::clearAnalysisCache();
  const std::vector<std::vector<double>> restored =
      extractor.transformAll(sources);
  EXPECT_EQ(fresh, restored);
  EXPECT_GT(features::analysisCacheStats().diskRestores, 0u);
}

TEST(AnalysisDiskCache, CorruptSpillFallsBackToRecompute) {
  DiskCache store(StoreOptions{.dir = tempDir("analysis_corrupt")});
  const std::string source = "int main() { return 42; }\n";

  ScopedAnalysisDisk scoped(&store);
  features::FeatureExtractor extractor;
  extractor.fit({source});
  const std::vector<double> fresh = extractor.transform(source);

  // Tamper with every spilled value: restores must fail checksum (or
  // deserialization) and recompute, yielding identical features.
  for (const auto& shard :
       std::filesystem::directory_iterator(store.dir() + "/values")) {
    for (const auto& file : std::filesystem::directory_iterator(shard)) {
      std::ofstream out(file.path(), std::ios::trunc | std::ios::binary);
      out << "garbage";
    }
  }
  features::clearAnalysisCache();
  EXPECT_EQ(extractor.transform(source), fresh);
}

}  // namespace
}  // namespace sca::cache
