// Tests for the out-of-core matrix layer (src/ml/matrix.hpp): the
// sca-matrix-v1 format, both writers, the mmap reader with its residency
// budget, and the Dataset storage modes built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/matrix.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace sca::ml {
namespace {

std::string tempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sca_matrix_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic but irregular test payload: rows x cols doubles whose
/// values exercise sign, magnitude and exact-binary-fraction cases.
std::vector<std::vector<double>> testRows(std::size_t rows,
                                          std::size_t cols) {
  std::vector<std::vector<double>> out(rows, std::vector<double>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double base = static_cast<double>(i * cols + j);
      out[i][j] = (j % 3 == 0)   ? base * 0.25
                  : (j % 3 == 1) ? -base / 7.0
                                 : base * 1e6;
    }
  }
  return out;
}

std::string writeTestMatrix(const std::string& path, std::size_t rows,
                            std::size_t cols, std::uint64_t metaHash) {
  MatrixWriter writer(cols, metaHash);
  const auto data = testRows(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    writer.appendRow(data[i], static_cast<int>(i % 5),
                     static_cast<int>(i % 3));
  }
  EXPECT_TRUE(writer.finish(path).isOk());
  return path;
}

// ------------------------------------------------------------- format

TEST(Matrix, RoundTripsRowsLabelsGroupsBitForBit) {
  const std::string dir = tempDir("roundtrip");
  const std::uint64_t meta = util::hash64("roundtrip-meta");
  const std::string path = writeTestMatrix(dir + "/m.mtx", 17, 9, meta);

  auto opened = MatrixFile::open(path, meta);
  ASSERT_TRUE(opened.ok()) << opened.status().toString();
  const MatrixFile& file = opened.value();
  EXPECT_EQ(file.rows(), 17u);
  EXPECT_EQ(file.cols(), 9u);
  EXPECT_EQ(file.metaHash(), meta);

  const auto expected = testRows(17, 9);
  for (std::size_t i = 0; i < 17; ++i) {
    const std::span<const double> row = file.row(i);
    ASSERT_EQ(row.size(), 9u);
    for (std::size_t j = 0; j < 9; ++j) {
      // Bit-level equality, not approximate: doubles are stored as IEEE
      // bit patterns.
      EXPECT_EQ(row[j], expected[i][j]) << i << "," << j;
    }
    EXPECT_EQ(file.label(i), static_cast<int>(i % 5));
    EXPECT_EQ(file.group(i), static_cast<int>(i % 3));
  }
}

TEST(Matrix, StreamWriterProducesIdenticalBytesToBufferedWriter) {
  const std::string dir = tempDir("stream_eq");
  const std::uint64_t meta = util::hash64("stream-meta");
  const std::string buffered =
      writeTestMatrix(dir + "/buffered.mtx", 23, 6, meta);

  // Same rows through the streaming writer, in uneven blocks.
  const auto data = testRows(23, 6);
  MatrixStreamWriter stream(dir + "/streamed.mtx", 23, 6, meta);
  std::size_t at = 0;
  for (const std::size_t block : {5ul, 1ul, 11ul, 6ul}) {
    std::vector<double> values;
    std::vector<std::int32_t> labels;
    std::vector<std::int32_t> groups;
    for (std::size_t i = at; i < at + block; ++i) {
      values.insert(values.end(), data[i].begin(), data[i].end());
      labels.push_back(static_cast<std::int32_t>(i % 5));
      groups.push_back(static_cast<std::int32_t>(i % 3));
    }
    ASSERT_TRUE(stream.appendRows(values, labels, groups).isOk());
    at += block;
  }
  ASSERT_EQ(at, 23u);
  ASSERT_TRUE(stream.finish().isOk());

  const auto a = util::readFile(buffered);
  const auto b = util::readFile(dir + "/streamed.mtx");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // byte-identical files
}

TEST(Matrix, StreamWriterEnforcesDeclaredShape) {
  const std::string dir = tempDir("stream_shape");
  const std::vector<std::int32_t> oneLabel = {0};
  const std::vector<std::int32_t> oneGroup = {0};
  {
    MatrixStreamWriter writer(dir + "/short.mtx", 4, 3, 1);
    const std::vector<double> row(3, 1.0);
    ASSERT_TRUE(writer.appendRows(row, oneLabel, oneGroup).isOk());
    EXPECT_FALSE(writer.finish().isOk());  // 1 of 4 declared rows
    // The abandoned temp never became the target.
    EXPECT_FALSE(std::filesystem::exists(dir + "/short.mtx"));
  }
  {
    MatrixStreamWriter writer(dir + "/wide.mtx", 2, 3, 1);
    const std::vector<double> notRowMultiple(5, 1.0);
    EXPECT_FALSE(writer.appendRows(notRowMultiple, oneLabel, oneGroup).isOk());
  }
}

TEST(Matrix, OpenRejectsMissingForeignTruncatedAndStaleFiles) {
  const std::string dir = tempDir("reject");
  EXPECT_FALSE(MatrixFile::open(dir + "/absent.mtx").ok());

  const std::string path =
      writeTestMatrix(dir + "/m.mtx", 8, 4, util::hash64("fresh"));

  // Stale metaHash: opens fine unpinned, rejected when pinned elsewhere.
  EXPECT_TRUE(MatrixFile::open(path).ok());
  EXPECT_TRUE(MatrixFile::open(path, util::hash64("fresh")).ok());
  EXPECT_FALSE(MatrixFile::open(path, util::hash64("stale")).ok());

  // Truncated payload.
  const auto full = util::readFile(path);
  ASSERT_TRUE(full.ok());
  {
    std::ofstream torn(dir + "/torn.mtx", std::ios::binary);
    torn << full.value().substr(0, full.value().size() - 7);
  }
  EXPECT_FALSE(MatrixFile::open(dir + "/torn.mtx").ok());

  // Foreign magic.
  {
    std::string foreign = full.value();
    foreign[6] ^= 0x20;  // corrupt a magic byte (inside the str payload)
    std::ofstream out(dir + "/foreign.mtx", std::ios::binary);
    out << foreign;
  }
  EXPECT_FALSE(MatrixFile::open(dir + "/foreign.mtx").ok());
}

// ---------------------------------------------------------- residency

TEST(Matrix, ResidencyBudgetBoundsChunksWithoutChangingValues) {
  const std::string dir = tempDir("residency");
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kCols = 64;
  const std::string path =
      writeTestMatrix(dir + "/big.mtx", kRows, kCols, 7);

  auto opened = MatrixFile::open(path, 7);
  ASSERT_TRUE(opened.ok());
  const MatrixFile& file = opened.value();

  // A budget far below the payload (128 KiB of f64s): the scan must still
  // read every value bit-exactly while the tracker stays bounded.
  file.setResidencyBudget(16 * 1024);
  const auto expected = testRows(kRows, kCols);
  for (std::size_t pass = 0; pass < 2; ++pass) {  // refaults on pass 2
    for (std::size_t i = 0; i < kRows; ++i) {
      const std::span<const double> row = file.row(i);
      for (std::size_t j = 0; j < kCols; ++j) {
        ASSERT_EQ(row[j], expected[i][j]);
      }
    }
  }
  EXPECT_GT(file.residentChunks(), 0u);

  file.dropResidency();
  // Values survive a full drop — pages refault from the file.
  EXPECT_EQ(file.row(kRows - 1)[kCols - 1],
            expected[kRows - 1][kCols - 1]);
}

TEST(Matrix, RowBlockReaderCoversEveryRowExactlyOnce) {
  const std::string dir = tempDir("blocks");
  const std::string path = writeTestMatrix(dir + "/m.mtx", 10, 3, 1);
  auto opened = MatrixFile::open(path);
  ASSERT_TRUE(opened.ok());

  for (const std::size_t rowsPerBlock : {1ul, 3ul, 10ul, 64ul}) {
    RowBlockReader reader(opened.value(), rowsPerBlock);
    std::vector<bool> seen(10, false);
    while (reader.next()) {
      EXPECT_LE(reader.endRow() - reader.beginRow(), rowsPerBlock);
      for (std::size_t i = reader.beginRow(); i < reader.endRow(); ++i) {
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
        EXPECT_EQ(reader.row(i)[0], opened.value().row(i)[0]);
      }
    }
    for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(seen[i]) << i;
  }
}

TEST(Matrix, ContentHashTracksBytesNotAccessPattern) {
  const std::string dir = tempDir("hash");
  const std::string a = writeTestMatrix(dir + "/a.mtx", 40, 8, 3);
  const std::string b = writeTestMatrix(dir + "/b.mtx", 40, 8, 3);

  auto fileA = MatrixFile::open(a);
  auto fileB = MatrixFile::open(b);
  ASSERT_TRUE(fileA.ok());
  ASSERT_TRUE(fileB.ok());
  const std::uint64_t hashA = matrixContentHash(fileA.value());
  EXPECT_EQ(hashA, matrixContentHash(fileB.value()));

  // Budgeted access does not change the hash...
  fileA.value().setResidencyBudget(4096);
  EXPECT_EQ(matrixContentHash(fileA.value()), hashA);

  // ...but one flipped payload byte does.
  auto bytes = util::readFile(a);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.value();
  mutated[mutated.size() / 2] ^= 1;
  {
    std::ofstream out(dir + "/c.mtx", std::ios::binary);
    out << mutated;
  }
  auto fileC = MatrixFile::open(dir + "/c.mtx");
  ASSERT_TRUE(fileC.ok());
  EXPECT_NE(matrixContentHash(fileC.value()), hashA);
}

// ------------------------------------------------------ dataset modes

TEST(Matrix, DatasetFromMatrixServesZeroCopyRowsWithMaterializedSides) {
  const std::string dir = tempDir("dataset");
  const std::string path = writeTestMatrix(dir + "/m.mtx", 12, 5, 1);
  auto opened = MatrixFile::open(path);
  ASSERT_TRUE(opened.ok());

  const Dataset data = Dataset::fromMatrix(opened.value());
  data.validate();
  EXPECT_TRUE(data.x.empty());  // nothing copied
  EXPECT_EQ(data.size(), 12u);
  EXPECT_EQ(data.dimension(), 5u);
  ASSERT_EQ(data.y.size(), 12u);
  ASSERT_EQ(data.groups.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(data.row(i).data(), opened.value().row(i).data());
    EXPECT_EQ(data.y[i], opened.value().label(i));
    EXPECT_EQ(data.groups[i], opened.value().group(i));
  }

  // subset() copies out of the mapping; subsetView() stays zero-copy and
  // flattens view-of-view indirection to the root base.
  const std::vector<std::size_t> pick = {11, 0, 7};
  const Dataset owned = data.subset(pick);
  owned.validate();
  EXPECT_EQ(owned.matrix, nullptr);
  EXPECT_EQ(owned.x.size(), 3u);
  EXPECT_EQ(owned.row(0)[2], data.row(11)[2]);

  const Dataset view = data.subsetView(pick);
  view.validate();
  EXPECT_EQ(view.row(1).data(), data.row(0).data());
  EXPECT_EQ(view.y[2], data.y[7]);

  const Dataset nested = view.subsetView({2, 0});
  nested.validate();
  EXPECT_EQ(nested.base, view.base);  // flattened, depth stays 1
  EXPECT_EQ(nested.row(0).data(), data.row(7).data());
  EXPECT_EQ(nested.y[1], data.y[11]);
}

}  // namespace
}  // namespace sca::ml
