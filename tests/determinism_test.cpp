// The hard invariant of the parallel runtime: every table-producing path
// is bit-identical between SCA_THREADS=1 and N threads. These tests run
// the transformed-dataset build and a full (scaled-down) LOGO attribution
// experiment under both schedules and require exact equality — doubles are
// compared with ==, not tolerances, because the parallel code paths must
// perform the same arithmetic in the same order per task.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiments.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "llm/pipelines.hpp"
#include "runtime/thread_pool.hpp"

namespace sca {
namespace {

core::ExperimentConfig smallConfig() {
  core::ExperimentConfig config;
  config.authorCount = 12;
  config.steps = 3;
  config.chatgptSetPerChallenge = 3;
  config.model.forest.treeCount = 15;
  config.model.selectTopK = 60;
  return config;
}

class DeterminismTest : public ::testing::Test {
 protected:
  ~DeterminismTest() override { runtime::setGlobalThreadCount(0); }
};

TEST_F(DeterminismTest, TransformedDatasetIsThreadCountInvariant) {
  const corpus::YearDataset corpus = corpus::buildYearDataset(2018, 12);

  runtime::setGlobalThreadCount(1);
  const llm::TransformedDataset serial =
      llm::buildTransformedDataset(corpus, 4);
  runtime::setGlobalThreadCount(4);
  const llm::TransformedDataset parallel =
      llm::buildTransformedDataset(corpus, 4);

  EXPECT_EQ(serial.year, parallel.year);
  EXPECT_EQ(serial.humanAuthorId, parallel.humanAuthorId);
  EXPECT_EQ(serial.chatgptOriginals, parallel.chatgptOriginals);
  EXPECT_EQ(serial.humanOriginals, parallel.humanOriginals);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].source, parallel.samples[i].source)
        << "sample " << i;
    EXPECT_EQ(serial.samples[i].challengeIndex,
              parallel.samples[i].challengeIndex);
    EXPECT_EQ(serial.samples[i].setting, parallel.samples[i].setting);
    EXPECT_EQ(serial.samples[i].step, parallel.samples[i].step);
  }
}

TEST_F(DeterminismTest, FullLogoExperimentIsThreadCountInvariant) {
  // Serial run on a cold analysis cache vs parallel run on a warm one:
  // covers seed derivation, ordered collection AND cache transparency in
  // one comparison.
  features::clearAnalysisCache();

  runtime::setGlobalThreadCount(1);
  core::YearExperiment serialExp(2017, smallConfig());
  const std::vector<double> serialBaseline =
      serialExp.baselineFoldAccuracies();
  const auto serialResult = serialExp.attribution(core::Approach::Naive);

  runtime::setGlobalThreadCount(4);
  core::YearExperiment parallelExp(2017, smallConfig());
  const std::vector<double> parallelBaseline =
      parallelExp.baselineFoldAccuracies();
  const auto parallelResult = parallelExp.attribution(core::Approach::Naive);

  EXPECT_EQ(serialBaseline, parallelBaseline);
  EXPECT_EQ(serialResult.targetLabel, parallelResult.targetLabel);
  EXPECT_EQ(serialResult.setSize, parallelResult.setSize);
  ASSERT_EQ(serialResult.folds.size(), parallelResult.folds.size());
  for (std::size_t f = 0; f < serialResult.folds.size(); ++f) {
    EXPECT_EQ(serialResult.folds[f].accuracy205,
              parallelResult.folds[f].accuracy205)
        << "fold " << f;
    EXPECT_EQ(serialResult.folds[f].chatgptCorrect,
              parallelResult.folds[f].chatgptCorrect);
    EXPECT_EQ(serialResult.folds[f].targetCorrect,
              parallelResult.folds[f].targetCorrect);
    EXPECT_EQ(serialResult.folds[f].chatgptTestCount,
              parallelResult.folds[f].chatgptTestCount);
  }
  EXPECT_EQ(serialResult.meanAccuracy, parallelResult.meanAccuracy);
  EXPECT_EQ(serialResult.chatgptCorrectPercent,
            parallelResult.chatgptCorrectPercent);
  EXPECT_EQ(serialResult.targetCorrectPercent,
            parallelResult.targetCorrectPercent);
}

TEST_F(DeterminismTest, StyleCountsAreThreadCountInvariant) {
  runtime::setGlobalThreadCount(1);
  core::YearExperiment serialExp(2019, smallConfig());
  const auto serialCounts = serialExp.styleCounts();

  runtime::setGlobalThreadCount(4);
  core::YearExperiment parallelExp(2019, smallConfig());
  const auto parallelCounts = parallelExp.styleCounts();

  EXPECT_EQ(serialCounts.maxCount, parallelCounts.maxCount);
  EXPECT_EQ(serialCounts.averages, parallelCounts.averages);
  ASSERT_EQ(serialCounts.perChallenge.size(),
            parallelCounts.perChallenge.size());
  for (std::size_t c = 0; c < serialCounts.perChallenge.size(); ++c) {
    EXPECT_EQ(serialCounts.perChallenge[c], parallelCounts.perChallenge[c])
        << "challenge " << c;
  }
}

}  // namespace
}  // namespace sca
