#include <gtest/gtest.h>

#include <algorithm>

#include "ast/ast.hpp"
#include "ast/visit.hpp"

namespace sca::ast {
namespace {

TypeRef intType() { return TypeRef{BaseType::Int, false}; }

TranslationUnit tinyUnit() {
  // int main() { int a = 1; if (a < 2) { a = a + 1; } return a; }
  TranslationUnit tu;
  Arena& a = tu.arena;
  Function main;
  main.returnType = intType();
  main.name = "main";
  main.body.stmts.push_back(a.varDecl1(intType(), "a", a.intLit(1)));
  BlockStmt then;
  then.stmts.push_back(a.exprStmt(
      a.assign(AssignOp::Assign, a.ident("a"),
               a.binary(BinaryOp::Add, a.ident("a"), a.intLit(1)))));
  main.body.stmts.push_back(
      a.ifStmt(a.binary(BinaryOp::Lt, a.ident("a"), a.intLit(2)),
               a.makeStmt(std::move(then))));
  main.body.stmts.push_back(a.returnStmt(a.ident("a")));
  tu.functions.push_back(std::move(main));
  return tu;
}

TEST(Ast, TypeNames) {
  EXPECT_EQ(typeName(TypeRef{BaseType::Int, false}), "int");
  EXPECT_EQ(typeName(TypeRef{BaseType::LongLong, false}), "long long");
  EXPECT_EQ(typeName(TypeRef{BaseType::Double, true}), "vector<double>");
  EXPECT_EQ(typeName(TypeRef{BaseType::String, false}), "string");
}

TEST(Ast, OperatorSpellings) {
  EXPECT_EQ(binaryOpSpelling(BinaryOp::LogicalAnd), "&&");
  EXPECT_EQ(binaryOpSpelling(BinaryOp::Shl), "<<");
  EXPECT_EQ(assignOpSpelling(AssignOp::AddAssign), "+=");
}

TEST(Ast, FactoriesProduceExpectedKinds) {
  Arena a;
  EXPECT_TRUE(a[a.intLit(3)].is<IntLit>());
  EXPECT_TRUE(a[a.ident("x")].is<Ident>());
  EXPECT_TRUE(a[a.binary(BinaryOp::Add, a.intLit(1), a.intLit(2))].is<Binary>());
  EXPECT_TRUE(a[a.varDecl1(intType(), "x")].is<VarDeclStmt>());
  EXPECT_TRUE(a[a.breakStmt()].is<BreakStmt>());
}

TEST(Ast, NullIdsAreFalsy) {
  EXPECT_FALSE(bool(ExprId{}));
  EXPECT_FALSE(bool(StmtId{}));
  Arena a;
  EXPECT_TRUE(bool(a.intLit(1)));
  EXPECT_TRUE(bool(a.breakStmt()));
}

TEST(Ast, DeepCopyIsStructurallyIndependent) {
  TranslationUnit original = tinyUnit();
  TranslationUnit copy = deepCopy(original);
  // Mutate the copy; original must be unaffected.
  copy.functions[0].name = "other";
  copy.functions[0].body.stmts.clear();
  EXPECT_EQ(original.functions[0].name, "main");
  EXPECT_EQ(original.functions[0].body.stmts.size(), 3u);
}

TEST(Ast, DeepCopyDetachesArenaNodes) {
  TranslationUnit original = tinyUnit();
  TranslationUnit copy = deepCopy(original);
  // Payload mutation in the copy's pools must not leak into the original.
  forEachExpr(copy, [](Expr& e) {
    if (auto* id = std::get_if<Ident>(&e.node)) id->name = "zz";
  });
  std::size_t originalA = 0;
  forEachExpr(original, [&](const Expr& e) {
    if (const auto* id = std::get_if<Ident>(&e.node); id && id->name == "a") {
      ++originalA;
    }
  });
  EXPECT_EQ(originalA, 4u);  // cond, target, add lhs, return
}

TEST(Ast, DeepCopyPreservesCounts) {
  TranslationUnit original = tinyUnit();
  TranslationUnit copy = deepCopy(original);
  EXPECT_EQ(countStmts(original), countStmts(copy));
  EXPECT_EQ(maxStmtDepth(original), maxStmtDepth(copy));
}

TEST(Visit, ForEachStmtVisitsNested) {
  TranslationUnit tu = tinyUnit();
  std::size_t count = 0;
  forEachStmt(tu, [&](const Stmt&) { ++count; });
  // decl, if, then-block, inner expr, return = 5
  EXPECT_EQ(count, 5u);
}

TEST(Visit, ForEachExprReachesDeclInits) {
  TranslationUnit tu = tinyUnit();
  std::size_t intLits = 0;
  forEachExpr(tu, [&](const Expr& e) {
    if (e.is<IntLit>()) ++intLits;
  });
  EXPECT_EQ(intLits, 3u);  // 1 (init), 2 (cond), 1 (a + 1)
}

TEST(Visit, MaxDepthCountsNesting) {
  TranslationUnit tu = tinyUnit();
  // if at depth 1, then-block at 2, assignment at 3
  EXPECT_EQ(maxStmtDepth(tu), 3u);
}

TEST(Visit, DepthStatsMatchSeparateQueries) {
  TranslationUnit tu = tinyUnit();
  const DepthStats stats = stmtDepthStats(tu);
  EXPECT_EQ(stats.maxDepth, maxStmtDepth(tu));
  EXPECT_EQ(stats.count, countStmts(tu));
  EXPECT_DOUBLE_EQ(stats.mean(), meanStmtDepth(tu));
}

TEST(Visit, StmtKindNamesStable) {
  TranslationUnit tu = tinyUnit();
  const auto& stmts = tu.functions[0].body.stmts;
  EXPECT_EQ(stmtKindName(tu.arena[stmts[0]]), "decl");
  EXPECT_EQ(stmtKindName(tu.arena[stmts[1]]), "if");
  EXPECT_EQ(stmtKindName(tu.arena[stmts[2]]), "return");
}

TEST(Visit, KindIndexMatchesNamePosition) {
  TranslationUnit tu = tinyUnit();
  const auto& stmtNames = allStmtKindNames();
  forEachStmt(tu, [&](const Stmt& s) {
    EXPECT_EQ(stmtNames[stmtKindIndex(s)], stmtKindName(s));
  });
  const auto& exprNames = allExprKindNames();
  forEachExpr(tu, [&](const Expr& e) {
    EXPECT_EQ(exprNames[exprKindIndex(e)], exprKindName(e));
  });
}

TEST(Visit, BigramsHaveFunctionRoot) {
  TranslationUnit tu = tinyUnit();
  const auto bigrams = stmtKindBigrams(tu);
  EXPECT_NE(std::find(bigrams.begin(), bigrams.end(), "fn>decl"),
            bigrams.end());
  EXPECT_NE(std::find(bigrams.begin(), bigrams.end(), "if>block"),
            bigrams.end());
  EXPECT_NE(std::find(bigrams.begin(), bigrams.end(), "block>expr"),
            bigrams.end());
}

TEST(Visit, DeclaredNamesExcludeMain) {
  TranslationUnit tu = tinyUnit();
  const auto names = declaredNames(tu);
  EXPECT_EQ(names, (std::vector<std::string>{"a"}));
}

TEST(Visit, CollectIdentifiersIncludesUsesAndDecls) {
  TranslationUnit tu = tinyUnit();
  const auto names = collectIdentifiers(tu);
  // main (function), a (decl), a/a/a (uses: cond, target, add)
  EXPECT_GE(std::count(names.begin(), names.end(), "a"), 3);
  EXPECT_EQ(std::count(names.begin(), names.end(), "main"), 1);
}

TEST(Visit, AllKindNameListsMatchEnumArity) {
  // 14 statement alternatives, 13 expression alternatives.
  EXPECT_EQ(allStmtKindNames().size(), 14u);
  EXPECT_EQ(allExprKindNames().size(), 13u);
}

}  // namespace
}  // namespace sca::ast
