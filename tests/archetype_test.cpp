#include <gtest/gtest.h>

#include <set>

#include "corpus/authors.hpp"
#include "llm/archetypes.hpp"
#include "style/archetypes.hpp"
#include "style/infer.hpp"

namespace sca::style {
namespace {

TEST(Archetypes, PoolIsStableAndBounded) {
  const auto& a = archetypePool();
  const auto& b = archetypePool();
  ASSERT_EQ(a.size(), kArchetypeCount);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(StyleProfile::distance(a[i], b[i]), 0.0);
  }
}

TEST(Archetypes, EveryArchetypeCarriesTheAccent) {
  for (const StyleProfile& p : archetypePool()) {
    EXPECT_FALSE(p.useTabs);
    EXPECT_EQ(p.indentWidth, 4);
    EXPECT_TRUE(p.spaceAroundOps);
    EXPECT_TRUE(p.spaceAfterComma);
    EXPECT_TRUE(p.spaceAfterKeyword);
    EXPECT_GE(p.commentDensity, 0.12);
    EXPECT_FALSE(p.useBitsHeader);
    EXPECT_FALSE(p.aliasLongLong);
    EXPECT_TRUE(p.usingNamespaceStd);
    EXPECT_NE(p.verbosity, Verbosity::Short);
    EXPECT_NE(p.naming, NamingConvention::Abbreviated);
    EXPECT_NE(p.namingSeed, 0u);  // persistent favourite names
  }
}

TEST(Archetypes, PairwiseDistinguishable) {
  const auto& pool = archetypePool();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_GT(StyleProfile::distance(pool[i], pool[j]), 0.0)
          << i << " vs " << j;
    }
  }
}

TEST(Archetypes, AccentIsIdempotent) {
  util::Rng rng(5);
  StyleProfile p = sampleProfile(rng);
  applyLlmAccent(p);
  StyleProfile q = p;
  applyLlmAccent(q);
  EXPECT_DOUBLE_EQ(StyleProfile::distance(p, q), 0.0);
}

TEST(Archetypes, NearestArchetypeFindsExactMatch) {
  const auto& pool = archetypePool();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const NearestArchetype hit = nearestArchetype(pool[i]);
    EXPECT_DOUBLE_EQ(hit.distance, 0.0);
    // ties possible only if two archetypes coincide, which the pairwise
    // test above excludes.
    EXPECT_EQ(hit.index, i);
  }
}

TEST(Archetypes, WeightsShapesPerYear) {
  EXPECT_GT(llm::archetypeWeights(2017)[0], 0.7);
  const auto& w18 = llm::archetypeWeights(2018);
  EXPECT_LT(w18[0], 0.3);
  const auto& w19 = llm::archetypeWeights(2019);
  EXPECT_GT(w19[0], w19[1]);
}

TEST(Twins, LargePopulationContainsOnePerArchetype) {
  const auto authors = corpus::makeAuthorPopulation(2018, 204);
  std::set<std::size_t> matched;
  for (const corpus::Author& author : authors) {
    const NearestArchetype hit = nearestArchetype(author.profile);
    // Humanized twins sit close (two layout quirks) but never exactly on
    // the archetype.
    if (hit.distance <= 0.11) {
      EXPECT_GT(hit.distance, 0.0);
      matched.insert(hit.index);
    }
  }
  EXPECT_EQ(matched.size(), kArchetypeCount);
}

TEST(Twins, SmallPopulationsHaveNone) {
  const auto authors = corpus::makeAuthorPopulation(2018, 16);
  for (const corpus::Author& author : authors) {
    EXPECT_GT(nearestArchetype(author.profile).distance, 0.0);
  }
}

TEST(Twins, TwinsKeepHumanVocabularySeeds) {
  const auto authors = corpus::makeAuthorPopulation(2019, 204);
  for (const corpus::Author& author : authors) {
    EXPECT_NE(author.profile.namingSeed, 0u) << author.name;
  }
}

}  // namespace
}  // namespace sca::style
