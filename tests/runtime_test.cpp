#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace sca::runtime {
namespace {

/// Tests drive explicit pool sizes; restore the environment default after
/// each so suites sharing the process are unaffected.
class RuntimeTest : public ::testing::Test {
 protected:
  ~RuntimeTest() override { setGlobalThreadCount(0); }
};

TEST_F(RuntimeTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setGlobalThreadCount(threads);
    constexpr std::size_t kBegin = 3, kEnd = 517;
    std::vector<std::atomic<int>> visits(kEnd);
    for (auto& v : visits) v.store(0);
    parallelFor(kBegin, kEnd, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kEnd; ++i) {
      EXPECT_EQ(visits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
    }
  }
}

TEST_F(RuntimeTest, ParallelForEmptyAndSingletonRanges) {
  setGlobalThreadCount(4);
  std::atomic<int> calls{0};
  parallelFor(5, 5, [&](std::size_t) { ++calls; });
  parallelFor(7, 3, [&](std::size_t) { ++calls; });  // inverted = empty
  EXPECT_EQ(calls.load(), 0);
  parallelFor(9, 10, [&](std::size_t i) {
    EXPECT_EQ(i, 9u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(RuntimeTest, ParallelForHonoursGrainAndMaxWorkers) {
  setGlobalThreadCount(4);
  std::atomic<int> count{0};
  ParallelOptions options;
  options.grain = 7;
  options.maxWorkers = 2;
  parallelFor(0, 100, [&](std::size_t) { ++count; }, options);
  EXPECT_EQ(count.load(), 100);
}

TEST_F(RuntimeTest, ParallelForPropagatesTheFirstException) {
  setGlobalThreadCount(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallelFor(0, 64,
                  [&](std::size_t i) {
                    ++ran;
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The throwing index ran; unstarted chunks were abandoned, never
  // half-executed (ran is only bumped before the throw).
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);
}

TEST_F(RuntimeTest, ParallelForSerialPathPropagatesExceptions) {
  setGlobalThreadCount(1);
  EXPECT_THROW(parallelFor(0, 4,
                           [](std::size_t i) {
                             if (i == 2) throw std::invalid_argument("bad");
                           }),
               std::invalid_argument);
}

TEST_F(RuntimeTest, ParallelMapKeepsResultOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setGlobalThreadCount(threads);
    const std::vector<std::size_t> out =
        parallelMap<std::size_t>(200, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 200u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST_F(RuntimeTest, NestedParallelismDegradesToSerial) {
  setGlobalThreadCount(4);
  EXPECT_FALSE(inParallelRegion());  // the test thread is not a pool worker
  std::atomic<int> nestedParallel{0};
  std::atomic<int> total{0};
  parallelFor(0, 8, [&](std::size_t) {
    // Inner loops still run — just inline on the current worker.
    parallelFor(0, 4, [&](std::size_t) {
      ++total;
      if (!inParallelRegion()) ++nestedParallel;
    });
  });
  EXPECT_EQ(total.load(), 32);
  // Every inner iteration observed itself inside a pool task (or the
  // caller's helping thread, which never re-submits either way).
  EXPECT_EQ(nestedParallel.load(), 0);
}

TEST_F(RuntimeTest, TaskSeedsAreDistinctAndScheduleFree) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(taskSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);        // no collisions in practice
  EXPECT_EQ(taskSeed(42, 7), taskSeed(42, 7));  // pure function of inputs
  EXPECT_NE(taskSeed(42, 7), taskSeed(43, 7));
}

TEST_F(RuntimeTest, ConfiguredThreadCountIsPositive) {
  EXPECT_GE(configuredThreadCount(), 1u);
}

TEST_F(RuntimeTest, PhaseTimesAccumulateAndReset) {
  PhaseTimes& times = PhaseTimes::global();
  times.reset();
  times.add("phase_a", 1.5);
  times.add("phase_a", 0.5);
  times.add("phase_b", 2.0);
  const auto snapshot = times.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.at("phase_a"), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.at("phase_b"), 2.0);
  times.reset();
  EXPECT_TRUE(times.snapshot().empty());
}

TEST_F(RuntimeTest, PhaseTimerRecordsScope) {
  PhaseTimes::global().reset();
  { PhaseTimer timer("scoped"); }
  const auto snapshot = PhaseTimes::global().snapshot();
  ASSERT_EQ(snapshot.count("scoped"), 1u);
  EXPECT_GE(snapshot.at("scoped"), 0.0);
  PhaseTimes::global().reset();
}

}  // namespace
}  // namespace sca::runtime
