#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/history.hpp"
#include "util/io.hpp"

namespace sca::obs {
namespace {

HistoryRecord makeRecord(const std::string& bench, double totalSeconds,
                         const std::string& digest = "00000000000000aa",
                         std::uint64_t threads = 4) {
  HistoryRecord record;
  record.bench = bench;
  record.complete = true;
  record.gitSha = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef";
  record.threads = threads;
  record.envClass = "SCA_FAULT_RATE=0.05";
  record.digest = digest;
  record.totalSeconds = totalSeconds;
  record.maxRssKb = 51240;
  record.userCpuSeconds = totalSeconds * 0.9;
  record.sysCpuSeconds = 0.01;
  record.unixTime = 1754450000;
  record.phases = {{"corpus_build", totalSeconds * 0.4},
                   {"llm_transform", totalSeconds * 0.6}};
  record.counters = {{"llm_retries", 3}, {"rt_tables", 1}};
  return record;
}

/// TempDir() outlives the test run, and the store is append-only by design
/// — start every store test from a path guaranteed not to exist.
std::string freshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(HistoryRecordTest, JsonRoundTripPreservesEveryField) {
  const HistoryRecord record = makeRecord("micro_pipeline", 1.25);
  const std::string line = historyRecordJson(record);
  HistoryRecord back;
  ASSERT_TRUE(parseHistoryRecord(line, &back));
  EXPECT_EQ(back.bench, record.bench);
  EXPECT_EQ(back.complete, record.complete);
  EXPECT_EQ(back.gitSha, record.gitSha);
  EXPECT_EQ(back.threads, record.threads);
  EXPECT_EQ(back.envClass, record.envClass);
  EXPECT_EQ(back.digest, record.digest);
  EXPECT_DOUBLE_EQ(back.totalSeconds, record.totalSeconds);
  EXPECT_EQ(back.maxRssKb, record.maxRssKb);
  EXPECT_EQ(back.unixTime, record.unixTime);
  EXPECT_EQ(back.phases, record.phases);
  EXPECT_EQ(back.counters, record.counters);
  // Canonical form: serializing the parse reproduces the exact bytes.
  EXPECT_EQ(historyRecordJson(back), line);
}

TEST(HistoryRecordTest, ParseRejectsTornAndForeignLines) {
  const std::string line = historyRecordJson(makeRecord("b", 1.0));
  HistoryRecord out;
  EXPECT_FALSE(parseHistoryRecord(line.substr(0, line.size() / 2), &out));
  EXPECT_FALSE(parseHistoryRecord("{\"foo\":1}", &out));
  EXPECT_FALSE(parseHistoryRecord("", &out));
  EXPECT_FALSE(parseHistoryRecord("not json at all", &out));
}

TEST(HistoryStoreTest, AppendCreatesHeaderAndLoadsBack) {
  HistoryStore store(freshPath("history_roundtrip.jsonl"));
  ASSERT_TRUE(store.append(makeRecord("micro_pipeline", 1.0)).isOk());
  ASSERT_TRUE(store.append(makeRecord("micro_pipeline", 1.1)).isOk());
  const HistoryStore::LoadResult loaded = store.load();
  EXPECT_TRUE(loaded.magicOk);
  EXPECT_EQ(loaded.skippedLines, 0u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.records[0].totalSeconds, 1.0);
  EXPECT_DOUBLE_EQ(loaded.records[1].totalSeconds, 1.1);

  // The first line really is the magic header (crash-safe append relies
  // on it landing before any record).
  const util::Result<std::string> raw = util::readFile(store.path());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().rfind("{\"magic\":\"sca-history-v1\"}\n", 0), 0u);
}

TEST(HistoryStoreTest, TornLastLineIsSkippedNotFatal) {
  HistoryStore store(freshPath("history_torn.jsonl"));
  ASSERT_TRUE(store.append(makeRecord("a", 1.0)).isOk());
  ASSERT_TRUE(store.append(makeRecord("a", 2.0)).isOk());

  // Simulate a kill mid-append: chop the final record in half.
  const util::Result<std::string> raw = util::readFile(store.path());
  ASSERT_TRUE(raw.ok());
  std::string torn = raw.value();
  torn.resize(torn.size() - torn.size() / 4);
  ASSERT_TRUE(util::atomicWriteFile(store.path(), torn).isOk());

  const HistoryStore::LoadResult loaded = store.load();
  EXPECT_TRUE(loaded.magicOk);
  EXPECT_EQ(loaded.skippedLines, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.records[0].totalSeconds, 1.0);
}

TEST(HistoryStoreTest, WrongMagicReadsAsEmpty) {
  const std::string path = ::testing::TempDir() + "history_foreign.jsonl";
  ASSERT_TRUE(util::atomicWriteFile(
                  path, "{\"magic\":\"some-other-format\"}\n" +
                            historyRecordJson(makeRecord("a", 1.0)) + "\n")
                  .isOk());
  const HistoryStore::LoadResult loaded = HistoryStore(path).load();
  EXPECT_FALSE(loaded.magicOk);
  EXPECT_TRUE(loaded.records.empty());
}

TEST(HistoryStoreTest, MissingFileIsEmptyNotError) {
  const HistoryStore::LoadResult loaded =
      HistoryStore(freshPath("history_never_written.jsonl")).load();
  EXPECT_FALSE(loaded.magicOk);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.skippedLines, 0u);
}

TEST(HistoryStoreTest, GcKeepsNewestPerGroupPreservingOrder) {
  HistoryStore store(freshPath("history_gc.jsonl"));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.append(makeRecord("a", 1.0 + i)).isOk());
  }
  ASSERT_TRUE(store.append(makeRecord("b", 9.0)).isOk());

  const util::Result<std::size_t> dropped = store.gc(2);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 3u);

  const HistoryStore::LoadResult loaded = store.load();
  ASSERT_TRUE(loaded.magicOk);
  ASSERT_EQ(loaded.records.size(), 3u);
  // The two newest "a" runs survive, in their original order, then "b".
  EXPECT_DOUBLE_EQ(loaded.records[0].totalSeconds, 4.0);
  EXPECT_DOUBLE_EQ(loaded.records[1].totalSeconds, 5.0);
  EXPECT_EQ(loaded.records[2].bench, "b");
}

// --- regression detector --------------------------------------------------

TEST(RegressionTest, IdenticalRunsPass) {
  const std::vector<HistoryRecord> records = {
      makeRecord("a", 1.0), makeRecord("a", 1.0), makeRecord("a", 1.0)};
  const RegressionReport report = checkRegressions(records, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.groupsChecked, 1u);
  EXPECT_EQ(report.groupsSkipped, 0u);
}

TEST(RegressionTest, TwoFoldSlowdownIsFlagged) {
  std::vector<HistoryRecord> records = {
      makeRecord("a", 1.0), makeRecord("a", 1.0), makeRecord("a", 1.0)};
  records.push_back(makeRecord("a", 2.0));  // 2x: well past 1.5x + 0.05 s
  const RegressionReport report = checkRegressions(records, {});
  ASSERT_FALSE(report.ok());
  for (const RegressionFinding& finding : report.findings) {
    EXPECT_EQ(finding.kind, "perf");
    EXPECT_EQ(finding.bench, "a");
    EXPECT_GT(finding.current, finding.baseline);
  }
}

TEST(RegressionTest, NoiseWithinToleranceIsNotFlagged) {
  std::vector<HistoryRecord> records = {
      makeRecord("a", 1.00), makeRecord("a", 0.98), makeRecord("a", 1.02)};
  records.push_back(makeRecord("a", 1.04));  // +4%: inside both gates
  EXPECT_TRUE(checkRegressions(records, {}).ok());
}

TEST(RegressionTest, DigestChangeIsAlwaysFlagged) {
  std::vector<HistoryRecord> records = {makeRecord("a", 1.0),
                                        makeRecord("a", 1.0)};
  // Faster AND different answer: speed never excuses a digest change.
  records.push_back(makeRecord("a", 0.5, "00000000000000bb"));
  const RegressionReport report = checkRegressions(records, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, "digest");

  RegressionPolicy lenient;
  lenient.checkDigest = false;
  EXPECT_TRUE(checkRegressions(records, lenient).ok());
}

TEST(RegressionTest, PartialRunsAreIgnored) {
  std::vector<HistoryRecord> records = {makeRecord("a", 1.0),
                                        makeRecord("a", 1.0)};
  HistoryRecord crashed = makeRecord("a", 40.0, "00000000000000cc");
  crashed.complete = false;  // hung run that was killed: not evidence
  records.push_back(crashed);
  EXPECT_TRUE(checkRegressions(records, {}).ok());
}

TEST(RegressionTest, DifferentThreadCountsDoNotCompare) {
  const std::vector<HistoryRecord> records = {
      makeRecord("a", 4.0, "00000000000000aa", 1),
      makeRecord("a", 1.0, "00000000000000aa", 8)};
  const RegressionReport report = checkRegressions(records, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.groupsChecked, 0u);
  EXPECT_EQ(report.groupsSkipped, 2u);  // two singleton groups, no baseline
}

TEST(RegressionTest, RssBlowUpIsFlaggedAndNoiseIsNot) {
  std::vector<HistoryRecord> records = {
      makeRecord("a", 1.0), makeRecord("a", 1.0), makeRecord("a", 1.0)};
  // 4x the 51240 KB baseline and far past the absolute floor.
  HistoryRecord bloated = makeRecord("a", 1.0);
  bloated.maxRssKb = 51240 * 4;
  records.push_back(bloated);

  const RegressionReport report = checkRegressions(records, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, "rss");
  EXPECT_GT(report.findings[0].current, report.findings[0].baseline);

  // Same ratio on a tiny footprint: relative gate trips but the absolute
  // floor (32 MiB) does not — page-cache noise, not a regression.
  std::vector<HistoryRecord> tiny;
  for (int i = 0; i < 3; ++i) {
    HistoryRecord r = makeRecord("a", 1.0);
    r.maxRssKb = 1000;
    tiny.push_back(r);
  }
  HistoryRecord wobble = makeRecord("a", 1.0);
  wobble.maxRssKb = 4000;
  tiny.push_back(wobble);
  EXPECT_TRUE(checkRegressions(tiny, {}).ok());

  // Records without an RSS sample never baseline and never trigger.
  std::vector<HistoryRecord> unsampled = {makeRecord("a", 1.0),
                                          makeRecord("a", 1.0)};
  unsampled[0].maxRssKb = 0;
  unsampled[1].maxRssKb = 0;
  EXPECT_TRUE(checkRegressions(unsampled, {}).ok());

  // The factor is policy, like the slowdown gate.
  RegressionPolicy lenient;
  lenient.rssFactor = 10.0;
  EXPECT_TRUE(checkRegressions(records, lenient).ok());
}

TEST(RegressionTest, WindowLimitsTheBaseline) {
  // Old slow era, then a fast regime the window's length: the current run
  // must baseline against the recent fast runs, not the ancient slow ones.
  std::vector<HistoryRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(makeRecord("a", 10.0));
  for (int i = 0; i < 5; ++i) records.push_back(makeRecord("a", 1.0));
  records.push_back(makeRecord("a", 2.0));
  RegressionPolicy policy;
  policy.window = 5;
  EXPECT_FALSE(checkRegressions(records, policy).ok());
}

}  // namespace
}  // namespace sca::obs
