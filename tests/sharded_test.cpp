// Tests for the sharded fleet layer: deterministic routing, failover
// byte-identity (including the failed-turn canonical-conversation rule),
// the ShardSet health fold (ejection / cooldown / probe / recovery), and
// the honest health report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/challenges.hpp"
#include "llm/call_context.hpp"
#include "llm/sharded_client.hpp"
#include "llm/synthetic_llm.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace sca::llm {
namespace {

constexpr int kYear = 2017;

std::uint64_t chainSeed(int chain) {
  return util::combine64(util::hash64("sharded-test"),
                         static_cast<std::uint64_t>(chain));
}

/// The bare single-client conversation the fleet must reproduce byte for
/// byte: generate once, then transform the previous output.
std::vector<std::string> oracleConversation(std::uint64_t seed, int turns) {
  LlmOptions options;
  options.year = kYear;
  options.seed = seed;
  SyntheticLlm model(options);
  const auto challenges = corpus::challengesForYear(kYear);
  std::vector<std::string> out;
  out.push_back(model.generate(*challenges.front()));
  for (int turn = 1; turn < turns; ++turn) {
    out.push_back(model.transform(out.back()));
  }
  return out;
}

FleetOptions fleetOptions(int shards, double faultRate = 0.0) {
  FleetOptions options;
  options.shards = shards;
  options.faultRate = faultRate;
  options.year = kYear;
  return options;
}

// ------------------------------------------------------------- routing

TEST(ShardedClient, HealthyFleetMatchesSingleClientByteForByte) {
  ShardSet fleet(fleetOptions(4));
  const auto challenges = corpus::challengesForYear(kYear);
  for (int chain = 0; chain < 6; ++chain) {
    const std::uint64_t seed = chainSeed(chain);
    const std::vector<std::string> oracle = oracleConversation(seed, 5);

    ShardedClient client(fleet, seed);
    auto first = client.tryGenerate(*challenges.front());
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), oracle[0]);
    // Home routing is the chain seed alone.
    EXPECT_EQ(client.servingShard(), static_cast<int>(seed % 4));
    for (int turn = 1; turn < 5; ++turn) {
      auto next = client.tryTransform(
          oracle[static_cast<std::size_t>(turn - 1)]);
      ASSERT_TRUE(next.ok());
      EXPECT_EQ(next.value(), oracle[static_cast<std::size_t>(turn)]);
    }
    EXPECT_EQ(client.stats().failovers, 0u);
    fleet.fold(client.takeEvents());
  }
  EXPECT_EQ(fleet.stats().ejections, 0u);
}

TEST(ShardedClient, FailoverAfterKillIsByteIdentical) {
  ShardSet fleet(fleetOptions(2));
  const auto challenges = corpus::challengesForYear(kYear);
  const std::uint64_t seed = chainSeed(1);
  const std::vector<std::string> oracle = oracleConversation(seed, 6);

  ShardedClient client(fleet, seed);
  ASSERT_TRUE(client.tryGenerate(*challenges.front()).ok());
  ASSERT_TRUE(client.tryTransform(oracle[0]).ok());
  ASSERT_TRUE(client.tryTransform(oracle[1]).ok());
  const int home = client.servingShard();

  // The serving shard dies mid-conversation: the next turn re-homes after
  // replaying the full 3-turn prefix, and every byte still matches the
  // oracle — the model seed never depended on the shard.
  fleet.killShard(home);
  for (int turn = 3; turn < 6; ++turn) {
    auto next =
        client.tryTransform(oracle[static_cast<std::size_t>(turn - 1)]);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.value(), oracle[static_cast<std::size_t>(turn)]);
  }
  EXPECT_NE(client.servingShard(), home);
  EXPECT_EQ(client.stats().failovers, 1u);
  EXPECT_EQ(client.stats().replayedTurns, 3u);
}

TEST(ShardedClient, FailedTurnStillAdvancesCanonicalConversation) {
  // One shard, no failover possible: a turn that times out surfaces to the
  // caller, but the CANONICAL conversation still advances — the next
  // successful turn must equal oracle position k, not k-1.
  ShardSet fleet(fleetOptions(1));
  const auto challenges = corpus::challengesForYear(kYear);
  const std::uint64_t seed = chainSeed(2);
  const std::vector<std::string> oracle = oracleConversation(seed, 3);

  ShardedClient client(fleet, seed);
  ASSERT_TRUE(client.tryGenerate(*challenges.front()).ok());

  fleet.slowShard(0);
  CallContext tight = CallContext::withDeadline(10.0);
  auto failed = client.tryTransform(oracle[0], tight);
  ASSERT_FALSE(failed.ok());

  fleet.slowShard(0, /*slowed=*/false);
  auto recovered = client.tryTransform(oracle[1]);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), oracle[2]);
  // The rebuild replayed both recorded turns, including the failed one.
  EXPECT_GE(client.stats().replayedTurns, 2u);
}

TEST(ShardedClient, AllShardsIneligibleIsUnavailable) {
  ShardSet fleet(fleetOptions(1));
  fleet.killShard(0);
  ShardedClient client(fleet, chainSeed(3));
  auto result = client.tryTransform("int main() { return 0; }\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
}

TEST(ShardedClient, HedgeWinMigratesConversationWithoutChangingBytes) {
  // The home shard is slowed but still correct (no attempt timeout, ample
  // deadline): its success charges the full injected latency, which trips
  // the hedge, and the fast shard takes the conversation over — bytes
  // unchanged, latency refunded.
  FleetOptions options = fleetOptions(2);
  options.policy.hedgeAfterSeconds = 5.0;
  options.policy.attemptTimeoutSeconds = 0.0;
  ShardSet fleet(options);
  const auto challenges = corpus::challengesForYear(kYear);
  const std::uint64_t seed = chainSeed(4);
  const std::vector<std::string> oracle = oracleConversation(seed, 2);

  ShardedClient client(fleet, seed);
  ASSERT_TRUE(client.tryGenerate(*challenges.front()).ok());
  const int home = client.servingShard();

  fleet.slowShard(home);
  CallContext context = CallContext::withDeadline(200.0);
  auto hedged = client.tryTransform(oracle[0], context);
  ASSERT_TRUE(hedged.ok());
  EXPECT_EQ(hedged.value(), oracle[1]);
  EXPECT_EQ(client.stats().hedges, 1u);
  EXPECT_EQ(client.stats().hedgeWins, 1u);
  EXPECT_NE(client.servingShard(), home);
  // The winner's latency replaced the straggler's.
  EXPECT_LT(context.chargedSeconds,
            options.policy.slowShardLatencySeconds);
}

// ------------------------------------------------------------ health fold

TEST(ShardSet, ConsecutiveTimeoutsEjectOnTheLowerThreshold) {
  ShardSet fleet(fleetOptions(2));
  const auto timeouts = std::vector<ShardEvent>{
      {0, ShardEvent::Kind::Timeout}, {0, ShardEvent::Kind::Timeout}};
  fleet.fold(timeouts);
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::Open);
  EXPECT_EQ(fleet.stats().ejections, 1u);
  EXPECT_EQ(fleet.stats().timeoutEjections, 1u);
}

TEST(ShardSet, ConsecutiveFailuresEjectViaTheFailurePath) {
  ShardSet fleet(fleetOptions(2));
  fleet.fold({{1, ShardEvent::Kind::Failure},
              {1, ShardEvent::Kind::Failure},
              {1, ShardEvent::Kind::Failure}});
  EXPECT_EQ(fleet.snapshot()[1].state, ShardState::Open);
  EXPECT_EQ(fleet.stats().ejections, 1u);
  EXPECT_EQ(fleet.stats().timeoutEjections, 0u);
}

TEST(ShardSet, SuccessResetsTheConsecutiveCounters) {
  ShardSet fleet(fleetOptions(1));
  fleet.fold({{0, ShardEvent::Kind::Timeout},
              {0, ShardEvent::Kind::Success},
              {0, ShardEvent::Kind::Timeout}});
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::Closed);
  EXPECT_EQ(fleet.stats().ejections, 0u);
}

TEST(ShardSet, CooldownProbeAndRecoveryCycle) {
  FleetOptions options = fleetOptions(2);
  options.policy.cooldownRequests = 3;
  ShardSet fleet(options);
  fleet.fold({{0, ShardEvent::Kind::Timeout}, {0, ShardEvent::Kind::Timeout}});
  ASSERT_EQ(fleet.snapshot()[0].state, ShardState::Open);

  // Cooldown is counted in routed-around requests: two skips keep it Open,
  // the third admits a probe.
  fleet.fold({{0, ShardEvent::Kind::Skipped}, {0, ShardEvent::Kind::Skipped}});
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::Open);
  fleet.fold({{0, ShardEvent::Kind::Skipped}});
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::HalfOpen);
  EXPECT_EQ(fleet.stats().probes, 1u);

  // A successful probe closes; a failed one would re-eject (below).
  fleet.fold({{0, ShardEvent::Kind::Success}});
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::Closed);
  EXPECT_EQ(fleet.stats().recoveries, 1u);
}

TEST(ShardSet, FailedProbeReEjectsImmediately) {
  FleetOptions options = fleetOptions(1);
  options.policy.cooldownRequests = 1;
  ShardSet fleet(options);
  fleet.fold({{0, ShardEvent::Kind::Timeout}, {0, ShardEvent::Kind::Timeout}});
  fleet.fold({{0, ShardEvent::Kind::Skipped}});
  ASSERT_EQ(fleet.snapshot()[0].state, ShardState::HalfOpen);
  fleet.fold({{0, ShardEvent::Kind::Timeout}});
  EXPECT_EQ(fleet.snapshot()[0].state, ShardState::Open);
  EXPECT_EQ(fleet.stats().ejections, 2u);
  EXPECT_EQ(fleet.stats().timeoutEjections, 2u);
}

TEST(ShardSet, HealthJsonReportsStateAndChaosFlags) {
  ShardSet fleet(fleetOptions(3));
  fleet.killShard(1);
  fleet.slowShard(2);
  const std::string json = fleet.healthJson();
  EXPECT_NE(json.find("\"shard\":0"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"closed\""), std::string::npos);
  EXPECT_NE(json.find("\"killed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"slowed\":true"), std::string::npos);
}

}  // namespace
}  // namespace sca::llm
