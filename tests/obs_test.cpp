#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "llm/checkpoint.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace sca::obs {
namespace {

/// Tests drive explicit pool sizes, tracer and event-log state; restore
/// all three so the other suites sharing the process are unaffected.
class ObsTest : public ::testing::Test {
 protected:
  ~ObsTest() override {
    runtime::setGlobalThreadCount(0);
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
    EventLog::global().configure("", LogLevel::kInfo);
  }
};

// The registry's headline contract: the stable section of a snapshot is
// byte-identical for every thread count, as long as the recorded *events*
// are. This is exactly what the CI observability smoke compares between
// whole micro_pipeline runs; here it is pinned at the unit level.
TEST_F(ObsTest, StableSnapshotIsByteIdenticalAcrossThreadCounts) {
  MetricsRegistry& registry = MetricsRegistry::global();
  std::vector<std::string> renders;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    runtime::setGlobalThreadCount(threads);
    registry.markReset();
    const Counter items = registry.counter("obs_test_items");
    const Histogram sizes =
        registry.histogram("obs_test_sizes", {1.0, 4.0, 16.0});
    runtime::parallelFor(0, 512, [&](std::size_t i) {
      items.add();
      sizes.observe(static_cast<double>(i % 20));
    });
    renders.push_back(stableMetricsJson(registry.snapshot()));
  }
  EXPECT_EQ(renders[0], renders[1]);
  // And the section is not trivially empty.
  EXPECT_NE(renders[0].find("\"obs_test_items\":512"), std::string::npos);
}

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.markReset();
  const Histogram h = registry.histogram("obs_test_edges", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 4.0, 4.1}) h.observe(v);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.count("obs_test_edges"), 1u);
  const HistogramSnapshot& edges = snapshot.histograms.at("obs_test_edges");
  ASSERT_EQ(edges.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(edges.counts[0], 2u);      // 0.5, 1.0  (bound inclusive)
  EXPECT_EQ(edges.counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(edges.counts[2], 1u);      // 4.0
  EXPECT_EQ(edges.counts[3], 1u);      // 4.1 overflows
  EXPECT_EQ(edges.total(), 6u);
}

TEST_F(ObsTest, CounterResetIsNonDestructive) {
  MetricsRegistry& registry = MetricsRegistry::global();
  const Counter c = registry.counter("obs_test_rebase");
  registry.markResetCounter("obs_test_rebase");
  const std::uint64_t lifetimeBefore =
      registry.counterValue("obs_test_rebase", Scope::kLifetime);
  c.add(5);
  registry.markResetCounter("obs_test_rebase");
  c.add(2);
  EXPECT_EQ(registry.counterValue("obs_test_rebase"), 2u);
  EXPECT_EQ(registry.counterValue("obs_test_rebase", Scope::kLifetime),
            lifetimeBefore + 7u);
  // Unregistered names read as zero rather than erroring.
  EXPECT_EQ(registry.counterValue("obs_test_never_registered"), 0u);
}

TEST_F(ObsTest, GaugeSumAccumulatesAndMaxKeepsHighWater) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.markReset();
  const Gauge sum = registry.gauge("obs_test_sum", GaugeKind::kSum);
  const Gauge max = registry.gauge("obs_test_max", GaugeKind::kMax);
  sum.add(1.5);
  sum.add(2.5);
  max.recordMax(3.0);
  max.recordMax(7.0);
  max.recordMax(5.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test_sum"), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test_max"), 7.0);
  // Gauges are always runtime: never in the stable section.
  EXPECT_EQ(stableMetricsJson(snapshot).find("obs_test_sum"),
            std::string::npos);
}

TEST_F(ObsTest, ReRegisteringUnderADifferentTypeThrows) {
  MetricsRegistry& registry = MetricsRegistry::global();
  (void)registry.counter("obs_test_typed");
  EXPECT_THROW((void)registry.gauge("obs_test_typed"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("obs_test_typed", {1.0}),
               std::logic_error);
  // Same type re-registration is find-or-create, not an error.
  (void)registry.counter("obs_test_typed");
}

// Satellite: the runtime::PhaseTimes / runtime::Counters shims are thin
// veneers over the registry — the same event is visible through both APIs,
// with no second bookkeeping copy to drift.
TEST_F(ObsTest, RuntimeShimsLandInTheRegistry) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.markReset();
  runtime::Counters::global().add("obs_test_shim_counter", 3);
  EXPECT_EQ(registry.counterValue("obs_test_shim_counter"), 3u);
  EXPECT_EQ(runtime::Counters::global().value("obs_test_shim_counter"), 3u);

  runtime::PhaseTimes::global().add("obs_test_shim_phase", 1.25);
  const MetricsSnapshot snapshot = registry.snapshot();
  const std::string gaugeName =
      std::string(kPhaseGaugePrefix) + "obs_test_shim_phase";
  ASSERT_EQ(snapshot.gauges.count(gaugeName), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at(gaugeName), 1.25);
  // And the shim's own snapshot strips the prefix back off.
  EXPECT_DOUBLE_EQ(
      runtime::PhaseTimes::global().snapshot().at("obs_test_shim_phase"),
      1.25);
}

TEST_F(ObsTest, SpanParentLinkageFollowsLexicalNesting) {
  Tracer& tracer = Tracer::global();
  tracer.setEnabled(true);
  tracer.clear();
  {
    Span outer("obs_test_outer");
    {
      Span inner("obs_test_inner");
      EXPECT_NE(inner.id(), 0u);
      EXPECT_NE(inner.id(), outer.id());
    }
    { Span sibling("obs_test_sibling"); }
  }
  const std::vector<TraceEvent> events = tracer.snapshotEvents();
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* sibling = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "obs_test_outer") outer = &e;
    if (e.name == "obs_test_inner") inner = &e;
    if (e.name == "obs_test_sibling") sibling = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parentId, 0u);  // root span
  EXPECT_EQ(inner->parentId, outer->id);
  EXPECT_EQ(sibling->parentId, outer->id);
  EXPECT_GE(inner->startNs, outer->startNs);
  EXPECT_LE(inner->startNs + inner->durationNs,
            outer->startNs + outer->durationNs);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.setEnabled(false);
  tracer.clear();
  {
    Span span("obs_test_invisible");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(tracer.snapshotEvents().empty());
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormedAndRoundTrips) {
  Tracer& tracer = Tracer::global();
  tracer.setEnabled(true);
  tracer.clear();
  {
    Span outer("obs_test_trace_outer");
    { Span inner("obs_test_trace_inner"); }
  }
  const std::string json = chromeTraceJson(tracer.snapshotEvents());
  const std::string array = extractJsonArray(json, "traceEvents");
  ASSERT_FALSE(array.empty());
  std::vector<std::string> elements;
  ASSERT_TRUE(topLevelElements(array, &elements));
  ASSERT_EQ(elements.size(), 2u);
  for (const std::string& e : elements) {
    EXPECT_NE(e.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(e.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(e.find("\"ts\":"), std::string::npos);
    EXPECT_NE(e.find("\"dur\":"), std::string::npos);
  }

  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(tracer.writeChromeTrace(path).isOk());
  const util::Result<std::string> back = util::readFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), json);
}

TEST_F(ObsTest, RunManifestMarksPartialAndCompleteRuns) {
  MetricsRegistry::global().markReset();
  (void)MetricsRegistry::global().counter("obs_test_manifest").add(1);

  RunManifestOptions options;
  options.path = ::testing::TempDir() + "obs_test_manifest.json";
  options.benchName = "obs_test_bench";
  options.threads = 3;
  options.scope = Scope::kSinceReset;

  options.complete = false;
  ASSERT_TRUE(writeRunManifest(options).isOk());
  util::Result<std::string> manifest = util::readFile(options.path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_NE(manifest.value().find("\"schema\":\"sca-manifest-v2\""),
            std::string::npos);
  EXPECT_NE(manifest.value().find("\"status\":\"partial\""),
            std::string::npos);
  EXPECT_NE(manifest.value().find("\"bench\":\"obs_test_bench\""),
            std::string::npos);
  EXPECT_NE(manifest.value().find("\"threads\":3"), std::string::npos);

  options.complete = true;
  ASSERT_TRUE(writeRunManifest(options).isOk());
  manifest = util::readFile(options.path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_NE(manifest.value().find("\"status\":\"complete\""),
            std::string::npos);

  // The embedded stable section is navigable with the bundled scanners —
  // the same path sca_cli metrics walks.
  const std::string metrics = extractJsonObject(manifest.value(), "metrics");
  ASSERT_FALSE(metrics.empty());
  const std::string counters = extractJsonObject(metrics, "counters");
  ASSERT_FALSE(counters.empty());
  EXPECT_NE(counters.find("\"obs_test_manifest\":1"), std::string::npos);
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(topLevelEntries(metrics, &entries));
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].first, "counters");
}

// --- quantile sketches ----------------------------------------------------

TEST_F(ObsTest, QuantileSketchTracksQuantilesWithinRelativeAccuracy) {
  QuantileSketch sketch(0.01);
  for (int i = 1; i <= 1000; ++i) sketch.observe(static_cast<double>(i));
  EXPECT_EQ(sketch.count(), 1000u);
  EXPECT_DOUBLE_EQ(sketch.minValue(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.maxValue(), 1000.0);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth = q * 1000.0;
    const double got = sketch.quantile(q);
    EXPECT_NEAR(got, truth, truth * 0.021)  // 2*alpha + rounding headroom
        << "q=" << q;
  }
  // Non-positive observations land in the zero bucket and anchor q=0.
  sketch.observe(0.0);
  sketch.observe(-3.0);
  EXPECT_DOUBLE_EQ(sketch.minValue(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
}

TEST_F(ObsTest, EmptyQuantileSketchReadsAsZeroes) {
  const QuantileSketch empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.999), 0.0);
  EXPECT_DOUBLE_EQ(empty.minValue(), 0.0);
  EXPECT_DOUBLE_EQ(empty.maxValue(), 0.0);
  EXPECT_EQ(empty.percentilesJson(), "{\"count\":0}");
}

// The determinism contract: integer bucket merges are associative and
// commutative, so any sharding of one observation stream serializes to the
// same bytes.
TEST_F(ObsTest, QuantileSketchMergeIsOrderIndependent) {
  QuantileSketch a, b, c;
  for (int i = 0; i < 40; ++i) a.observe(0.001 * (i + 1));
  for (int i = 0; i < 40; ++i) b.observe(3.0 * (i + 1));
  for (int i = 0; i < 10; ++i) c.observe(0.0);

  QuantileSketch abc = a;
  abc.merge(b);
  abc.merge(c);
  QuantileSketch cba = c;
  cba.merge(b);
  cba.merge(a);
  QuantileSketch bcIntoA = a;  // (b merged c) merged into a: associativity
  QuantileSketch bc = b;
  bc.merge(c);
  bcIntoA.merge(bc);

  EXPECT_EQ(abc.toJson(), cba.toJson());
  EXPECT_EQ(abc.toJson(), bcIntoA.toJson());
  EXPECT_EQ(abc.count(), 90u);

  // Merging an empty sketch is the identity in both directions.
  QuantileSketch empty;
  QuantileSketch aCopy = a;
  aCopy.merge(empty);
  EXPECT_EQ(aCopy.toJson(), a.toJson());
  empty.merge(a);
  EXPECT_EQ(empty.toJson(), a.toJson());

  // Mismatched non-empty grids cannot merge meaningfully: no-op.
  QuantileSketch coarse(0.1);
  coarse.observe(5.0);
  const std::string before = coarse.toJson();
  coarse.merge(a);
  EXPECT_EQ(coarse.toJson(), before);
}

// Same shape as StableSnapshotIsByteIdenticalAcrossThreadCounts: the
// registry's serialized sketches may not depend on how many workers fed
// them.
TEST_F(ObsTest, SketchRegistryJsonIsByteIdenticalAcrossThreadCounts) {
  SketchRegistry& registry = SketchRegistry::global();
  std::vector<std::string> renders;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    runtime::setGlobalThreadCount(threads);
    registry.reset();
    runtime::parallelFor(0, 512, [&](std::size_t i) {
      registry.observe("obs_test_sketch",
                       static_cast<double>((i * 37) % 100) * 0.25);
    });
    renders.push_back(registry.sketchesJson());
  }
  registry.reset();
  EXPECT_EQ(renders[0], renders[1]);
  EXPECT_NE(renders[0].find("\"obs_test_sketch\":{\"count\":512"),
            std::string::npos);
  EXPECT_NE(renders[0].find("\"sketch\":{\"alpha\":0.01"),
            std::string::npos);
}

TEST_F(ObsTest, QuantileSketchRoundTripsThroughJsonAndTheManifest) {
  QuantileSketch sketch(0.02);
  sketch.observe(0.0);
  for (int i = 1; i <= 200; ++i) sketch.observe(0.01 * i * i);

  QuantileSketch back;
  ASSERT_TRUE(QuantileSketch::fromJson(sketch.toJson(), &back));
  EXPECT_EQ(back.toJson(), sketch.toJson());
  EXPECT_EQ(back.count(), sketch.count());
  EXPECT_DOUBLE_EQ(back.quantile(0.99), sketch.quantile(0.99));

  // Torn records (count no longer equals the bucket totals) are rejected.
  std::string torn = sketch.toJson();
  torn.resize(torn.rfind("],["));
  EXPECT_FALSE(QuantileSketch::fromJson(torn, &back));
  EXPECT_FALSE(QuantileSketch::fromJson("{\"alpha\":0.01}", &back));

  // And the same sketch survives a trip through the manifest's "sketches"
  // section — the path serve telemetry actually takes.
  SketchRegistry::global().reset();
  SketchRegistry::global().merge("obs_test_roundtrip", sketch);
  RunManifestOptions options;
  options.path = ::testing::TempDir() + "obs_test_sketch_manifest.json";
  options.benchName = "obs_test_sketch";
  options.complete = true;
  ASSERT_TRUE(writeRunManifest(options).isOk());
  const util::Result<std::string> manifest = util::readFile(options.path);
  ASSERT_TRUE(manifest.ok());
  const std::string section =
      extractJsonObject(manifest.value(), "sketches");
  ASSERT_FALSE(section.empty());
  const std::string entry =
      extractJsonObject(section, "obs_test_roundtrip");
  ASSERT_FALSE(entry.empty());
  QuantileSketch fromManifest;
  ASSERT_TRUE(QuantileSketch::fromJson(extractJsonObject(entry, "sketch"),
                                       &fromManifest));
  EXPECT_EQ(fromManifest.toJson(), sketch.toJson());
  SketchRegistry::global().reset();
}

TEST_F(ObsTest, JsonScannersHandleNestingEscapesAndMalformedInput) {
  const std::string json =
      "{\"a\":{\"nested\":{\"x\":1}},\"s\":\"br{ace \\\" quote\","
      "\"arr\":[{\"k\":[1,2]},\"two\"],\"n\":7}";
  EXPECT_EQ(extractJsonObject(json, "a"), "{\"nested\":{\"x\":1}}");
  EXPECT_EQ(extractJsonArray(json, "arr"), "[{\"k\":[1,2]},\"two\"]");
  EXPECT_TRUE(extractJsonObject(json, "missing").empty());
  EXPECT_TRUE(extractJsonArray(json, "a").empty());  // object, not array

  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(topLevelEntries(json, &entries));
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[1].first, "s");
  EXPECT_EQ(entries[1].second, "\"br{ace \\\" quote\"");
  EXPECT_EQ(entries[3].second, "7");

  std::vector<std::string> elements;
  ASSERT_TRUE(topLevelElements("[{\"k\":[1,2]},\"two\"]", &elements));
  ASSERT_EQ(elements.size(), 2u);
  EXPECT_EQ(elements[0], "{\"k\":[1,2]}");
  EXPECT_EQ(elements[1], "\"two\"");

  EXPECT_FALSE(topLevelEntries("{\"unterminated\":", &entries));
  EXPECT_FALSE(topLevelElements("[1,2", &elements));
}

TEST_F(ObsTest, EventLogFiltersByLevelAndRecordsFields) {
  EventLog& log = EventLog::global();
  const std::string path = ::testing::TempDir() + "obs_test_events.jsonl";
  ASSERT_TRUE(util::atomicWriteFile(path, "").isOk());
  log.configure(path, LogLevel::kWarn);
  EXPECT_FALSE(log.enabledFor(LogLevel::kDebug));
  EXPECT_FALSE(log.enabledFor(LogLevel::kInfo));
  EXPECT_TRUE(log.enabledFor(LogLevel::kWarn));
  EXPECT_TRUE(log.enabledFor(LogLevel::kError));

  logEvent(LogLevel::kInfo, "test", "filtered_out");
  logEvent(LogLevel::kWarn, "test", "kept",
           [](util::JsonObjectBuilder& fields) { fields.addInt("n", 7); });
  log.configure("", LogLevel::kInfo);

  const util::Result<std::string> content = util::readFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value().find("filtered_out"), std::string::npos);
  EXPECT_NE(content.value().find("\"event\":\"kept\""), std::string::npos);
  EXPECT_NE(content.value().find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(content.value().find("\"component\":\"test\""),
            std::string::npos);
  EXPECT_NE(content.value().find("\"fields\":{\"n\":7}"), std::string::npos);
}

TEST_F(ObsTest, EventLogStampsTheInnermostLiveSpan) {
  Tracer::global().setEnabled(true);
  Tracer::global().clear();
  EventLog& log = EventLog::global();
  const std::string path = ::testing::TempDir() + "obs_test_span_log.jsonl";
  ASSERT_TRUE(util::atomicWriteFile(path, "").isOk());
  log.configure(path, LogLevel::kDebug);

  std::uint64_t spanId = 0;
  {
    Span span("obs_test_log_span");
    spanId = span.id();
    logEvent(LogLevel::kInfo, "test", "inside");
  }
  logEvent(LogLevel::kInfo, "test", "outside");
  log.configure("", LogLevel::kInfo);

  ASSERT_NE(spanId, 0u);
  const util::Result<std::string> content = util::readFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(
      content.value().find("\"span\":\"" + util::toHex64(spanId) + "\""),
      std::string::npos);
  EXPECT_NE(content.value().find("\"span\":\"" + util::toHex64(0) + "\""),
            std::string::npos);
}

TEST_F(ObsTest, DisabledEventLogWritesNothing) {
  EventLog& log = EventLog::global();
  log.configure("", LogLevel::kDebug);
  EXPECT_FALSE(log.enabledFor(LogLevel::kError));
  // Call sites stay armed; with no sink they must be inert and crash-free.
  logEvent(LogLevel::kError, "test", "dropped",
           [](util::JsonObjectBuilder& fields) { fields.addInt("n", 1); });
}

// Each record is appended with ONE O_APPEND write(2), so a reader tailing
// the file while N threads log concurrently must only ever observe whole
// lines — no interleaved fragments, no partial trailing record.
TEST_F(ObsTest, ConcurrentLogWritersNeverTearALine) {
  const std::string path =
      ::testing::TempDir() + "obs_test_concurrent_log.jsonl";
  std::remove(path.c_str());
  EventLog::global().configure(path, LogLevel::kInfo);

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> tornObservations{0};

  const auto checkContent = [&](const std::string& content) {
    // A file produced by whole-line writes always ends at a newline.
    if (!content.empty() && content.back() != '\n') {
      tornObservations.fetch_add(1);
      return;
    }
    std::size_t pos = 0;
    while (pos < content.size()) {
      const std::size_t eol = content.find('\n', pos);
      const std::string_view line(content.data() + pos, eol - pos);
      if (line.empty() || line.front() != '{' || line.back() != '}') {
        tornObservations.fetch_add(1);
      }
      pos = eol + 1;
    }
  };

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (const util::Result<std::string> content = util::readFile(path);
          content.ok()) {
        checkContent(content.value());
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kPerWriter; ++i) {
        logEvent(LogLevel::kInfo, "torn_test", "w",
                 [&](util::JsonObjectBuilder& fields) {
                   fields.addInt("writer", w);
                   fields.addInt("i", i);
                 });
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(tornObservations.load(), 0);

  // Final state: every record arrived exactly once, all lines whole.
  const util::Result<std::string> content = util::readFile(path);
  ASSERT_TRUE(content.ok());
  checkContent(content.value());
  EXPECT_EQ(tornObservations.load(), 0);
  std::size_t records = 0;
  std::size_t pos = 0;
  while ((pos = content.value().find("\"component\":\"torn_test\"", pos)) !=
         std::string::npos) {
    ++records;
    pos += 1;
  }
  EXPECT_EQ(records, static_cast<std::size_t>(kWriters) * kPerWriter);
  EXPECT_EQ(EventLog::global().droppedWrites(), 0u);
}

// --- trace analytics ------------------------------------------------------

/// Hand-built span tree with known self times:
///   root [0,100)       self 10 (children cover 60+30)
///     childA [0,60)    self 60
///     childB [65,95)   self 10 (grand covers 20)
///       grand [70,90)  self 20
std::vector<TraceEvent> spanFixture() {
  std::vector<TraceEvent> events(4);
  events[0].name = "root";
  events[0].startNs = 0;
  events[0].durationNs = 100;
  events[0].id = 1;
  events[1].name = "childA";
  events[1].startNs = 0;
  events[1].durationNs = 60;
  events[1].id = 2;
  events[1].parentId = 1;
  events[2].name = "childB";
  events[2].startNs = 65;
  events[2].durationNs = 30;
  events[2].id = 3;
  events[2].parentId = 1;
  events[3].name = "grand";
  events[3].startNs = 70;
  events[3].durationNs = 20;
  events[3].id = 4;
  events[3].parentId = 3;
  return events;
}

TEST_F(ObsTest, SpanHotspotsRankBySelfTime) {
  const std::vector<SpanStats> hotspots = spanHotspots(spanFixture());
  ASSERT_EQ(hotspots.size(), 4u);
  EXPECT_EQ(hotspots[0].name, "childA");
  EXPECT_EQ(hotspots[0].selfNs, 60u);
  EXPECT_EQ(hotspots[1].name, "grand");
  EXPECT_EQ(hotspots[1].selfNs, 20u);
  // Equal self times (10) rank alphabetically: deterministic reports.
  EXPECT_EQ(hotspots[2].name, "childB");
  EXPECT_EQ(hotspots[3].name, "root");
  EXPECT_EQ(hotspots[3].totalNs, 100u);

  EXPECT_EQ(spanHotspots(spanFixture(), 2).size(), 2u);
}

// Pin the tie-break contract `sca_cli trace --summary` relies on: spans
// with equal self time rank by name, never by map/insertion order — the
// report is byte-stable for any event ordering of the same trace.
TEST_F(ObsTest, SpanHotspotTiesBreakBySpanNameNotInsertionOrder) {
  const auto makeEvent = [](const char* name, std::uint64_t id) {
    TraceEvent event;
    event.name = name;
    event.startNs = id * 1000;  // disjoint roots: selfNs == durationNs
    event.durationNs = 50;
    event.id = id;
    return event;
  };
  std::vector<TraceEvent> events = {makeEvent("zeta", 1),
                                    makeEvent("alpha", 2),
                                    makeEvent("mid", 3)};
  const std::vector<std::string> expected = {"alpha", "mid", "zeta"};
  do {
    const std::vector<SpanStats> hotspots = spanHotspots(events);
    ASSERT_EQ(hotspots.size(), 3u);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(hotspots[i].name, expected[i]);
      EXPECT_EQ(hotspots[i].selfNs, 50u);
    }
  } while (std::next_permutation(
      events.begin(), events.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.id < b.id; }));
}

TEST_F(ObsTest, CriticalPathDescendsIntoTheLastFinishingChild) {
  const std::vector<CriticalPathStep> path = criticalPath(spanFixture());
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].name, "root");
  EXPECT_EQ(path[1].name, "childB");  // ends at 95, after childA's 60
  EXPECT_EQ(path[2].name, "grand");
  EXPECT_EQ(path[1].selfNs, 10u);
  EXPECT_EQ(path[2].durationNs, 20u);
  EXPECT_TRUE(criticalPath({}).empty());
}

TEST_F(ObsTest, ChromeTraceParsesBackToTheSameEvents) {
  std::vector<TraceEvent> events = spanFixture();
  for (TraceEvent& e : events) {  // µs-grid values round-trip exactly
    e.startNs *= 1000;
    e.durationNs *= 1000;
    e.tid = 2;
  }
  const util::Result<std::vector<TraceEvent>> parsed =
      parseChromeTrace(chromeTraceJson(events));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].name, events[i].name);
    EXPECT_EQ(parsed.value()[i].startNs, events[i].startNs);
    EXPECT_EQ(parsed.value()[i].durationNs, events[i].durationNs);
    EXPECT_EQ(parsed.value()[i].tid, events[i].tid);
    EXPECT_EQ(parsed.value()[i].id, events[i].id);
    EXPECT_EQ(parsed.value()[i].parentId, events[i].parentId);
  }

  EXPECT_FALSE(parseChromeTrace("{\"notATrace\":[]}").ok());
}

// Satellite: the checkpoint inspector behind `sca_cli checkpoints`.
TEST_F(ObsTest, CheckpointInspectorClassifiesFiles) {
  const std::string dir = ::testing::TempDir() + "obs_test_ckpt";
  llm::ChainKey key;
  key.year = 2018;
  key.settingIndex = 1;
  key.settingLabel = "+C";
  key.challenge = 2;
  key.steps = 3;
  key.originHash = 0xabcdef0123456789ull;
  key.faultRate = 0.05;
  ASSERT_TRUE(
      llm::writeChainCheckpoint(dir, key, {"int a;", "int b;", "int c;"})
          .isOk());

  const std::string path = llm::chainCheckpointPath(dir, key);
  const llm::CheckpointInfo good = llm::inspectChainCheckpoint(path);
  EXPECT_TRUE(good.headerOk);
  EXPECT_TRUE(good.complete);
  EXPECT_EQ(good.verdict, "ok");
  EXPECT_EQ(good.year, 2018);
  EXPECT_EQ(good.setting, "+C");
  EXPECT_EQ(good.steps, 3);
  EXPECT_EQ(good.entries, 3u);

  // Truncate after the second record: header fine, chain incomplete.
  const util::Result<std::string> full = util::readFile(path);
  ASSERT_TRUE(full.ok());
  std::string truncated = full.value();
  truncated.resize(truncated.rfind("{\"step\":3"));
  const std::string shortPath = dir + "/chain_truncated.jsonl";
  ASSERT_TRUE(util::atomicWriteFile(shortPath, truncated).isOk());
  const llm::CheckpointInfo partial = llm::inspectChainCheckpoint(shortPath);
  EXPECT_TRUE(partial.headerOk);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.verdict, "incomplete: 2/3 steps");

  const std::string badPath = dir + "/chain_bad.jsonl";
  ASSERT_TRUE(
      util::atomicWriteFile(badPath, "{\"magic\":\"wrong\"}\n").isOk());
  EXPECT_EQ(llm::inspectChainCheckpoint(badPath).verdict,
            "bad magic \"wrong\"");

  const llm::CheckpointInfo missing =
      llm::inspectChainCheckpoint(dir + "/chain_missing.jsonl");
  EXPECT_FALSE(missing.headerOk);
  EXPECT_EQ(missing.verdict.rfind("unreadable:", 0), 0u);
}

}  // namespace
}  // namespace sca::obs
