#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "ast/visit.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "lexer/layout.hpp"
#include "ml/matrix.hpp"
#include "util/io.hpp"

namespace sca::corpus {
namespace {

TEST(Challenges, CatalogueHasTwentyDistinctProblems) {
  const auto& all = catalogue();
  EXPECT_EQ(all.size(), 20u);
  std::set<std::string> ids;
  for (const Challenge& ch : all) {
    EXPECT_FALSE(ch.id.empty());
    EXPECT_FALSE(ch.title.empty());
    EXPECT_GT(ch.statement.size(), 40u);
    ids.insert(ch.id);
  }
  EXPECT_EQ(ids.size(), all.size());
}

TEST(Challenges, EveryIrRendersAndParsesCleanly) {
  for (const Challenge& ch : catalogue()) {
    const std::string source = ast::render(ch.ir, ast::RenderOptions{});
    const ast::ParseResult r = ast::parse(source);
    EXPECT_TRUE(r.clean) << ch.id << ":\n" << source;
  }
}

TEST(Challenges, EveryIrHasMainAndCaseOutput) {
  for (const Challenge& ch : catalogue()) {
    bool hasMain = false;
    for (const auto& fn : ch.ir.functions) {
      if (fn.name == "main") hasMain = true;
    }
    EXPECT_TRUE(hasMain) << ch.id;
    const std::string source = ast::render(ch.ir, ast::RenderOptions{});
    EXPECT_NE(source.find("Case #"), std::string::npos) << ch.id;
  }
}

TEST(Challenges, IrsAreNontrivial) {
  for (const Challenge& ch : catalogue()) {
    EXPECT_GE(ast::countStmts(ch.ir), 8u) << ch.id;
    EXPECT_GE(ast::maxStmtDepth(ch.ir), 2u) << ch.id;
  }
}

TEST(Challenges, YearsDrawEightWithOverlap) {
  const auto y2017 = challengesForYear(2017);
  const auto y2018 = challengesForYear(2018);
  const auto y2019 = challengesForYear(2019);
  EXPECT_EQ(y2017.size(), 8u);
  EXPECT_EQ(y2018.size(), 8u);
  EXPECT_EQ(y2019.size(), 8u);
  std::set<const Challenge*> s2017(y2017.begin(), y2017.end());
  std::set<const Challenge*> s2018(y2018.begin(), y2018.end());
  EXPECT_NE(s2017, s2018);  // years differ
}

TEST(Challenges, LookupByIdAndFigure3) {
  EXPECT_EQ(challengeById("race").id, "race");
  EXPECT_THROW(challengeById("nope"), std::out_of_range);
  EXPECT_EQ(figure3Challenge().id, "race");
}

TEST(Authors, PopulationDeterministicAndYearDependent) {
  const auto a1 = makeAuthorPopulation(2017, 20);
  const auto a2 = makeAuthorPopulation(2017, 20);
  const auto b = makeAuthorPopulation(2018, 20);
  ASSERT_EQ(a1.size(), 20u);
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        style::StyleProfile::distance(a1[i].profile, a2[i].profile), 0.0);
  }
  // Different year => (almost surely) different profiles somewhere.
  double totalDistance = 0.0;
  for (std::size_t i = 0; i < a1.size(); ++i) {
    totalDistance += style::StyleProfile::distance(a1[i].profile, b[i].profile);
  }
  EXPECT_GT(totalDistance, 0.5);
}

TEST(Authors, NamesFollowPaperConvention) {
  const auto authors = makeAuthorPopulation(2019, 3);
  EXPECT_EQ(authors[0].name, "A0");
  EXPECT_EQ(authors[2].name, "A2");
}

TEST(Dataset, ShapeMatchesTableOne) {
  // Scaled-down shape check: authors x challenges samples.
  const YearDataset ds = buildYearDataset(2017, 12);
  EXPECT_EQ(ds.authors.size(), 12u);
  EXPECT_EQ(ds.challenges.size(), 8u);
  EXPECT_EQ(ds.samples.size(), 96u);
}

TEST(Dataset, SamplesParseCleanAndCarryProvenance) {
  const YearDataset ds = buildYearDataset(2018, 6);
  for (const CodeSample& sample : ds.samples) {
    EXPECT_EQ(sample.origin, "human");
    EXPECT_GE(sample.authorId, 0);
    EXPECT_LT(sample.authorId, 6);
    EXPECT_TRUE(ast::parse(sample.source).clean);
  }
}

TEST(Dataset, RenderSolutionDeterministic) {
  const auto authors = makeAuthorPopulation(2017, 2);
  const auto& ch = challengeById("race");
  EXPECT_EQ(renderSolution(authors[0], ch, 2017, 0),
            renderSolution(authors[0], ch, 2017, 0));
  EXPECT_NE(renderSolution(authors[0], ch, 2017, 0),
            renderSolution(authors[1], ch, 2017, 0));
}

TEST(Dataset, AuthorStyleConsistentAcrossChallenges) {
  // The same author's solutions to different challenges share their layout
  // dimensions in aggregate (a small per-sample wobble is intentional —
  // real authors are not machines).
  const auto authors = makeAuthorPopulation(2019, 1);
  const auto challenges = challengesForYear(2019);
  const style::StyleProfile& p = authors[0].profile;
  std::size_t braceMatches = 0;
  std::size_t tabMatches = 0;
  for (std::size_t c = 0; c < challenges.size(); ++c) {
    const std::string src =
        renderSolution(authors[0], *challenges[c], 2019, static_cast<int>(c));
    const auto layout = lexer::computeLayoutMetrics(src);
    if ((layout.tabIndentRatio() > 0.5) == p.useTabs) ++tabMatches;
    if ((layout.allmanBraceRatio() > 0.5) == p.allmanBraces) ++braceMatches;
  }
  EXPECT_GE(tabMatches, challenges.size() - 2);
  EXPECT_GE(braceMatches, challenges.size() - 2);
}

// ----------------------------------------------------- out-of-core scale

std::string scaleDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sca_scale_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Extractor fitted the way macro_scale fits it: on the first authors'
/// rendered solutions.
features::FeatureExtractor fittedExtractor(int year, std::size_t authors) {
  const auto population = makeAuthorPopulation(year, authors);
  const auto challenges = challengesForYear(year);
  std::vector<std::string> sources;
  for (const Author& author : population) {
    for (std::size_t c = 0; c < challenges.size(); ++c) {
      sources.push_back(
          renderSolution(author, *challenges[c], year, static_cast<int>(c)));
    }
  }
  features::FeatureExtractor extractor;
  extractor.fit(sources);
  return extractor;
}

std::string matrixBytes(const std::string& path) {
  const auto bytes = util::readFile(path);
  EXPECT_TRUE(bytes.ok()) << path;
  return bytes.ok() ? bytes.value() : std::string();
}

TEST(ScaleMatrix, FinalBytesIndependentOfShardSize) {
  const auto extractor = fittedExtractor(2017, 6);

  ScaleConfig a;
  a.year = 2017;
  a.authorCount = 13;
  a.outDir = scaleDir("shard_a");
  a.shardSize = 4;
  const auto resultA = buildYearMatrix(extractor, a);
  ASSERT_TRUE(resultA.ok()) << resultA.status().toString();
  EXPECT_EQ(resultA.value().shardCount, 4u);
  EXPECT_EQ(resultA.value().freshShards, 4u);

  ScaleConfig b = a;
  b.outDir = scaleDir("shard_b");
  b.shardSize = 13;  // single shard
  const auto resultB = buildYearMatrix(extractor, b);
  ASSERT_TRUE(resultB.ok());
  EXPECT_EQ(resultB.value().shardCount, 1u);

  EXPECT_EQ(matrixBytes(resultA.value().matrixPath),
            matrixBytes(resultB.value().matrixPath));

  // Segments are checkpoints, not products: gone after the merge.
  std::size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(a.outDir)) {
    if (entry.path().filename().string().starts_with("seg_")) ++segments;
  }
  EXPECT_EQ(segments, 0u);
}

TEST(ScaleMatrix, CrashAndResumeReproducesUninterruptedBytes) {
  const auto extractor = fittedExtractor(2017, 6);

  ScaleConfig clean;
  clean.year = 2017;
  clean.authorCount = 12;
  clean.outDir = scaleDir("crash_clean");
  clean.shardSize = 3;
  const auto uninterrupted = buildYearMatrix(extractor, clean);
  ASSERT_TRUE(uninterrupted.ok());

  ScaleConfig crashing = clean;
  crashing.outDir = scaleDir("crash_resume");
  crashing.crashAfterShards = 2;
  const auto crashed = buildYearMatrix(extractor, crashing);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), util::StatusCode::kInternal);

  // The crash left whole segments behind — and only whole ones.
  std::size_t segments = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(crashing.outDir)) {
    if (entry.path().filename().string().starts_with("seg_")) ++segments;
  }
  // The flag is checked between shards, so in-flight shards may still
  // finish: anywhere from crashAfterShards to all 4 segments can exist.
  EXPECT_GE(segments, crashing.crashAfterShards);
  EXPECT_LE(segments, 4u);

  ScaleConfig resume = crashing;
  resume.crashAfterShards = 0;
  const auto resumed = buildYearMatrix(extractor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
  EXPECT_EQ(resumed.value().resumedShards, segments);
  EXPECT_EQ(resumed.value().freshShards, 4u - segments);

  EXPECT_EQ(matrixBytes(resumed.value().matrixPath),
            matrixBytes(uninterrupted.value().matrixPath));

  // A third call short-circuits on the finished final matrix.
  const auto reused = buildYearMatrix(extractor, resume);
  ASSERT_TRUE(reused.ok());
  EXPECT_TRUE(reused.value().reusedFinal);
  EXPECT_EQ(reused.value().freshShards, 0u);
}

TEST(ScaleMatrix, MetaHashPinsExtractorSchemaAndShape) {
  const auto extractor = fittedExtractor(2017, 6);

  ScaleConfig config;
  config.year = 2017;
  config.authorCount = 5;
  config.outDir = scaleDir("meta");
  config.shardSize = 5;
  const auto result = buildYearMatrix(extractor, config);
  ASSERT_TRUE(result.ok());

  const std::uint64_t pinned =
      yearMatrixMetaHash(extractor, config.year, config.authorCount);
  EXPECT_EQ(result.value().metaHash, pinned);
  EXPECT_TRUE(ml::MatrixFile::open(result.value().matrixPath, pinned).ok());

  // A different cohort size or a differently fitted extractor pins a
  // different hash, so its reader rejects this file.
  EXPECT_NE(yearMatrixMetaHash(extractor, config.year, 6), pinned);
  const auto other = fittedExtractor(2017, 3);
  EXPECT_NE(yearMatrixMetaHash(other, config.year, config.authorCount),
            pinned);
  EXPECT_FALSE(
      ml::MatrixFile::open(
          result.value().matrixPath,
          yearMatrixMetaHash(other, config.year, config.authorCount))
          .ok());

  // Rows land author-major with the labels/groups the contract promises.
  auto opened = ml::MatrixFile::open(result.value().matrixPath, pinned);
  ASSERT_TRUE(opened.ok());
  const auto challenges = challengesForYear(config.year);
  ASSERT_EQ(opened.value().rows(), config.authorCount * challenges.size());
  for (std::size_t i = 0; i < opened.value().rows(); ++i) {
    EXPECT_EQ(opened.value().label(i),
              static_cast<int>(i / challenges.size()));
    EXPECT_EQ(opened.value().group(i),
              static_cast<int>(i % challenges.size()));
  }

  // And the row contents are exactly the uncached extractor's output.
  const auto population =
      makeAuthorPopulation(config.year, config.authorCount);
  const std::vector<double> expected = extractor.transformUncached(
      renderSolution(population[2], *challenges[1], config.year, 1));
  const auto row = opened.value().row(2 * challenges.size() + 1);
  ASSERT_EQ(row.size(), expected.size());
  for (std::size_t j = 0; j < expected.size(); ++j) {
    EXPECT_EQ(row[j], expected[j]);
  }
}

}  // namespace
}  // namespace sca::corpus
