#include <gtest/gtest.h>

#include <set>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "ast/visit.hpp"
#include "corpus/dataset.hpp"
#include "lexer/layout.hpp"

namespace sca::corpus {
namespace {

TEST(Challenges, CatalogueHasTwentyDistinctProblems) {
  const auto& all = catalogue();
  EXPECT_EQ(all.size(), 20u);
  std::set<std::string> ids;
  for (const Challenge& ch : all) {
    EXPECT_FALSE(ch.id.empty());
    EXPECT_FALSE(ch.title.empty());
    EXPECT_GT(ch.statement.size(), 40u);
    ids.insert(ch.id);
  }
  EXPECT_EQ(ids.size(), all.size());
}

TEST(Challenges, EveryIrRendersAndParsesCleanly) {
  for (const Challenge& ch : catalogue()) {
    const std::string source = ast::render(ch.ir, ast::RenderOptions{});
    const ast::ParseResult r = ast::parse(source);
    EXPECT_TRUE(r.clean) << ch.id << ":\n" << source;
  }
}

TEST(Challenges, EveryIrHasMainAndCaseOutput) {
  for (const Challenge& ch : catalogue()) {
    bool hasMain = false;
    for (const auto& fn : ch.ir.functions) {
      if (fn.name == "main") hasMain = true;
    }
    EXPECT_TRUE(hasMain) << ch.id;
    const std::string source = ast::render(ch.ir, ast::RenderOptions{});
    EXPECT_NE(source.find("Case #"), std::string::npos) << ch.id;
  }
}

TEST(Challenges, IrsAreNontrivial) {
  for (const Challenge& ch : catalogue()) {
    EXPECT_GE(ast::countStmts(ch.ir), 8u) << ch.id;
    EXPECT_GE(ast::maxStmtDepth(ch.ir), 2u) << ch.id;
  }
}

TEST(Challenges, YearsDrawEightWithOverlap) {
  const auto y2017 = challengesForYear(2017);
  const auto y2018 = challengesForYear(2018);
  const auto y2019 = challengesForYear(2019);
  EXPECT_EQ(y2017.size(), 8u);
  EXPECT_EQ(y2018.size(), 8u);
  EXPECT_EQ(y2019.size(), 8u);
  std::set<const Challenge*> s2017(y2017.begin(), y2017.end());
  std::set<const Challenge*> s2018(y2018.begin(), y2018.end());
  EXPECT_NE(s2017, s2018);  // years differ
}

TEST(Challenges, LookupByIdAndFigure3) {
  EXPECT_EQ(challengeById("race").id, "race");
  EXPECT_THROW(challengeById("nope"), std::out_of_range);
  EXPECT_EQ(figure3Challenge().id, "race");
}

TEST(Authors, PopulationDeterministicAndYearDependent) {
  const auto a1 = makeAuthorPopulation(2017, 20);
  const auto a2 = makeAuthorPopulation(2017, 20);
  const auto b = makeAuthorPopulation(2018, 20);
  ASSERT_EQ(a1.size(), 20u);
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        style::StyleProfile::distance(a1[i].profile, a2[i].profile), 0.0);
  }
  // Different year => (almost surely) different profiles somewhere.
  double totalDistance = 0.0;
  for (std::size_t i = 0; i < a1.size(); ++i) {
    totalDistance += style::StyleProfile::distance(a1[i].profile, b[i].profile);
  }
  EXPECT_GT(totalDistance, 0.5);
}

TEST(Authors, NamesFollowPaperConvention) {
  const auto authors = makeAuthorPopulation(2019, 3);
  EXPECT_EQ(authors[0].name, "A0");
  EXPECT_EQ(authors[2].name, "A2");
}

TEST(Dataset, ShapeMatchesTableOne) {
  // Scaled-down shape check: authors x challenges samples.
  const YearDataset ds = buildYearDataset(2017, 12);
  EXPECT_EQ(ds.authors.size(), 12u);
  EXPECT_EQ(ds.challenges.size(), 8u);
  EXPECT_EQ(ds.samples.size(), 96u);
}

TEST(Dataset, SamplesParseCleanAndCarryProvenance) {
  const YearDataset ds = buildYearDataset(2018, 6);
  for (const CodeSample& sample : ds.samples) {
    EXPECT_EQ(sample.origin, "human");
    EXPECT_GE(sample.authorId, 0);
    EXPECT_LT(sample.authorId, 6);
    EXPECT_TRUE(ast::parse(sample.source).clean);
  }
}

TEST(Dataset, RenderSolutionDeterministic) {
  const auto authors = makeAuthorPopulation(2017, 2);
  const auto& ch = challengeById("race");
  EXPECT_EQ(renderSolution(authors[0], ch, 2017, 0),
            renderSolution(authors[0], ch, 2017, 0));
  EXPECT_NE(renderSolution(authors[0], ch, 2017, 0),
            renderSolution(authors[1], ch, 2017, 0));
}

TEST(Dataset, AuthorStyleConsistentAcrossChallenges) {
  // The same author's solutions to different challenges share their layout
  // dimensions in aggregate (a small per-sample wobble is intentional —
  // real authors are not machines).
  const auto authors = makeAuthorPopulation(2019, 1);
  const auto challenges = challengesForYear(2019);
  const style::StyleProfile& p = authors[0].profile;
  std::size_t braceMatches = 0;
  std::size_t tabMatches = 0;
  for (std::size_t c = 0; c < challenges.size(); ++c) {
    const std::string src =
        renderSolution(authors[0], *challenges[c], 2019, static_cast<int>(c));
    const auto layout = lexer::computeLayoutMetrics(src);
    if ((layout.tabIndentRatio() > 0.5) == p.useTabs) ++tabMatches;
    if ((layout.allmanBraceRatio() > 0.5) == p.allmanBraces) ++braceMatches;
  }
  EXPECT_GE(tabMatches, challenges.size() - 2);
  EXPECT_GE(braceMatches, challenges.size() - 2);
}

}  // namespace
}  // namespace sca::corpus
