#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lexer/lexer.hpp"

namespace sca::lexer {
namespace {

TokenStream lex(std::string_view src) { return tokenize(src); }

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = lex("int foo while whilex");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].isKeyword("int"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Identifier));
  EXPECT_TRUE(tokens[2].isKeyword("while"));
  EXPECT_TRUE(tokens[3].is(TokenKind::Identifier));
  EXPECT_EQ(tokens[3].text, "whilex");
}

TEST(Lexer, IntAndFloatLiterals) {
  const auto tokens = lex("42 0x1F 3.14 1e9 2.5e-3 100LL 1.0f");
  EXPECT_TRUE(tokens[0].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[1].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[2].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[3].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[4].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[5].is(TokenKind::IntLiteral));
  EXPECT_EQ(tokens[5].text, "100LL");
  EXPECT_TRUE(tokens[6].is(TokenKind::FloatLiteral));
}

TEST(Lexer, StringAndCharLiteralsKeepSpelling) {
  const auto tokens = lex(R"("a\"b" '\n' 'x')");
  EXPECT_TRUE(tokens[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(tokens[0].text, R"("a\"b")");
  EXPECT_TRUE(tokens[1].is(TokenKind::CharLiteral));
  EXPECT_EQ(tokens[1].text, R"('\n')");
  EXPECT_EQ(tokens[2].text, "'x'");
}

TEST(Lexer, UnterminatedStringToleratedAtLineEnd) {
  const auto tokens = lex("\"oops\nint x;");
  EXPECT_TRUE(tokens[0].is(TokenKind::StringLiteral));
  // lexing continues on the next line
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, LineAndBlockComments) {
  const auto tokens = lex("x // note\n/* multi\nline */ y");
  EXPECT_TRUE(tokens[0].is(TokenKind::Identifier));
  EXPECT_TRUE(tokens[1].is(TokenKind::LineComment));
  EXPECT_EQ(tokens[1].text, " note");
  EXPECT_TRUE(tokens[2].is(TokenKind::BlockComment));
  EXPECT_EQ(tokens[2].text, " multi\nline ");
  EXPECT_EQ(tokens[3].text, "y");
}

TEST(Lexer, UnterminatedBlockCommentRunsToEof) {
  const auto tokens = lex("/* open");
  EXPECT_TRUE(tokens[0].is(TokenKind::BlockComment));
  EXPECT_TRUE(tokens[1].is(TokenKind::EndOfFile));
}

TEST(Lexer, MultiCharPunctuatorsLongestMatch) {
  const auto tokens = lex("a<<=b >>= ++ -- <= >= == != && || -> :: <<");
  EXPECT_EQ(tokens[1].text, "<<=");
  EXPECT_EQ(tokens[3].text, ">>=");
  EXPECT_EQ(tokens[4].text, "++");
  EXPECT_EQ(tokens[5].text, "--");
  EXPECT_EQ(tokens[6].text, "<=");
  EXPECT_EQ(tokens[7].text, ">=");
  EXPECT_EQ(tokens[8].text, "==");
  EXPECT_EQ(tokens[9].text, "!=");
  EXPECT_EQ(tokens[10].text, "&&");
  EXPECT_EQ(tokens[11].text, "||");
  EXPECT_EQ(tokens[12].text, "->");
  EXPECT_EQ(tokens[13].text, "::");
  EXPECT_EQ(tokens[14].text, "<<");
}

TEST(Lexer, PreprocessorTakesWholeLine) {
  const auto tokens = lex("#include <iostream>\nint x;");
  EXPECT_TRUE(tokens[0].is(TokenKind::Preprocessor));
  EXPECT_EQ(tokens[0].text, "#include <iostream>");
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, PreprocessorLineContinuation) {
  const auto tokens = lex("#define X \\\n 5\nint y;");
  EXPECT_TRUE(tokens[0].is(TokenKind::Preprocessor));
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, UnknownBytesBecomePunctuators) {
  const auto tokens = lex("a @ b");
  EXPECT_TRUE(tokens[1].is(TokenKind::Punctuator));
  EXPECT_EQ(tokens[1].text, "@");
}

TEST(Lexer, WithoutTriviaDropsComments) {
  const auto tokens = lex("x // c\n/* d */ y");
  const std::vector<std::uint32_t> clean = withoutTrivia(tokens);
  ASSERT_EQ(clean.size(), 3u);  // x, y, eof
  EXPECT_EQ(tokens[clean[0]].text, "x");
  EXPECT_EQ(tokens[clean[1]].text, "y");
}

TEST(Lexer, TokenTextViewsPointIntoStreamSource) {
  const auto stream =
      lex("int main() {\n  // add\n  int x = 1 + 2; /* y */\n  return x;\n}\n");
  const std::string_view src = stream.source();
  for (const Token& t : stream) {
    if (t.is(TokenKind::EndOfFile)) {
      EXPECT_EQ(t.offset, src.size());
      continue;
    }
    // Zero-copy invariant: every token text is a view into the stream's own
    // source buffer, and offset locates that view.
    EXPECT_GE(t.text.data(), src.data());
    EXPECT_LE(t.text.data() + t.text.size(), src.data() + src.size());
    ASSERT_LE(std::size_t{t.offset} + t.text.size(), src.size());
    EXPECT_EQ(src.substr(t.offset, t.text.size()), t.text);
  }
}

TEST(Lexer, OffsetLineColumnConsistent) {
  const std::string source =
      "int a = 1;\n  // note\nwhile (a) { /* dec */ a--; }\n";
  const auto stream = lex(source);
  const std::string_view src = stream.source();
  for (const Token& t : stream) {
    if (t.is(TokenKind::EndOfFile)) continue;
    // Recompute line/column from the recorded offset and compare. Comment
    // offsets point at the interior (after the two delimiter chars), while
    // line/column point at the delimiter itself.
    std::uint32_t line = 1;
    std::uint32_t column = 1;
    for (std::uint32_t i = 0; i < t.offset; ++i) {
      if (src[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    const bool comment =
        t.is(TokenKind::LineComment) || t.is(TokenKind::BlockComment);
    EXPECT_EQ(t.line, line) << "token '" << std::string(t.text) << "'";
    EXPECT_EQ(t.column, comment ? column - 2 : column)
        << "token '" << std::string(t.text) << "'";
  }
}

TEST(Lexer, ViewsSurviveStreamMove) {
  TokenStream stream = lex("alpha beta");
  const char* alphaData = stream[0].text.data();
  TokenStream moved = std::move(stream);
  EXPECT_EQ(moved[0].text.data(), alphaData);
  EXPECT_EQ(moved[0].text, "alpha");
  EXPECT_EQ(moved[1].text, "beta");
}

TEST(Lexer, FromPartsRebuildsEquivalentStream) {
  const auto original = lex("int x = 42; // done");
  // The EOF token rides along as an ordinary (kind, "") part, mirroring how
  // cached analyses persist token streams.
  std::vector<std::pair<TokenKind, std::string>> parts;
  for (const Token& t : original) {
    parts.emplace_back(t.kind, std::string(t.text));
  }
  const TokenStream rebuilt = TokenStream::fromParts(parts);
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rebuilt[i].kind, original[i].kind);
    EXPECT_EQ(rebuilt[i].text, original[i].text);
  }
  EXPECT_TRUE(rebuilt[rebuilt.size() - 1].is(TokenKind::EndOfFile));
}

TEST(Lexer, DotBeforeDigitsIsFloat) {
  const auto tokens = lex(".5 a.b");
  EXPECT_TRUE(tokens[0].is(TokenKind::FloatLiteral));
  EXPECT_EQ(tokens[0].text, ".5");
  // but member access stays punctuation
  EXPECT_EQ(tokens[2].text, ".");
}

}  // namespace
}  // namespace sca::lexer
