#include <gtest/gtest.h>

#include "lexer/lexer.hpp"

namespace sca::lexer {
namespace {

std::vector<Token> lex(std::string_view src) { return tokenize(src); }

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = lex("int foo while whilex");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].isKeyword("int"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Identifier));
  EXPECT_TRUE(tokens[2].isKeyword("while"));
  EXPECT_TRUE(tokens[3].is(TokenKind::Identifier));
  EXPECT_EQ(tokens[3].text, "whilex");
}

TEST(Lexer, IntAndFloatLiterals) {
  const auto tokens = lex("42 0x1F 3.14 1e9 2.5e-3 100LL 1.0f");
  EXPECT_TRUE(tokens[0].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[1].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[2].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[3].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[4].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(tokens[5].is(TokenKind::IntLiteral));
  EXPECT_EQ(tokens[5].text, "100LL");
  EXPECT_TRUE(tokens[6].is(TokenKind::FloatLiteral));
}

TEST(Lexer, StringAndCharLiteralsKeepSpelling) {
  const auto tokens = lex(R"("a\"b" '\n' 'x')");
  EXPECT_TRUE(tokens[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(tokens[0].text, R"("a\"b")");
  EXPECT_TRUE(tokens[1].is(TokenKind::CharLiteral));
  EXPECT_EQ(tokens[1].text, R"('\n')");
  EXPECT_EQ(tokens[2].text, "'x'");
}

TEST(Lexer, UnterminatedStringToleratedAtLineEnd) {
  const auto tokens = lex("\"oops\nint x;");
  EXPECT_TRUE(tokens[0].is(TokenKind::StringLiteral));
  // lexing continues on the next line
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, LineAndBlockComments) {
  const auto tokens = lex("x // note\n/* multi\nline */ y");
  EXPECT_TRUE(tokens[0].is(TokenKind::Identifier));
  EXPECT_TRUE(tokens[1].is(TokenKind::LineComment));
  EXPECT_EQ(tokens[1].text, " note");
  EXPECT_TRUE(tokens[2].is(TokenKind::BlockComment));
  EXPECT_EQ(tokens[2].text, " multi\nline ");
  EXPECT_EQ(tokens[3].text, "y");
}

TEST(Lexer, UnterminatedBlockCommentRunsToEof) {
  const auto tokens = lex("/* open");
  EXPECT_TRUE(tokens[0].is(TokenKind::BlockComment));
  EXPECT_TRUE(tokens[1].is(TokenKind::EndOfFile));
}

TEST(Lexer, MultiCharPunctuatorsLongestMatch) {
  const auto tokens = lex("a<<=b >>= ++ -- <= >= == != && || -> :: <<");
  EXPECT_EQ(tokens[1].text, "<<=");
  EXPECT_EQ(tokens[3].text, ">>=");
  EXPECT_EQ(tokens[4].text, "++");
  EXPECT_EQ(tokens[5].text, "--");
  EXPECT_EQ(tokens[6].text, "<=");
  EXPECT_EQ(tokens[7].text, ">=");
  EXPECT_EQ(tokens[8].text, "==");
  EXPECT_EQ(tokens[9].text, "!=");
  EXPECT_EQ(tokens[10].text, "&&");
  EXPECT_EQ(tokens[11].text, "||");
  EXPECT_EQ(tokens[12].text, "->");
  EXPECT_EQ(tokens[13].text, "::");
  EXPECT_EQ(tokens[14].text, "<<");
}

TEST(Lexer, PreprocessorTakesWholeLine) {
  const auto tokens = lex("#include <iostream>\nint x;");
  EXPECT_TRUE(tokens[0].is(TokenKind::Preprocessor));
  EXPECT_EQ(tokens[0].text, "#include <iostream>");
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, PreprocessorLineContinuation) {
  const auto tokens = lex("#define X \\\n 5\nint y;");
  EXPECT_TRUE(tokens[0].is(TokenKind::Preprocessor));
  EXPECT_TRUE(tokens[1].isKeyword("int"));
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].column, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, UnknownBytesBecomePunctuators) {
  const auto tokens = lex("a @ b");
  EXPECT_TRUE(tokens[1].is(TokenKind::Punctuator));
  EXPECT_EQ(tokens[1].text, "@");
}

TEST(Lexer, WithoutTriviaDropsComments) {
  const auto tokens = lex("x // c\n/* d */ y");
  const auto clean = withoutTrivia(tokens);
  ASSERT_EQ(clean.size(), 3u);  // x, y, eof
  EXPECT_EQ(clean[0].text, "x");
  EXPECT_EQ(clean[1].text, "y");
}

TEST(Lexer, DotBeforeDigitsIsFloat) {
  const auto tokens = lex(".5 a.b");
  EXPECT_TRUE(tokens[0].is(TokenKind::FloatLiteral));
  EXPECT_EQ(tokens[0].text, ".5");
  // but member access stays punctuation
  EXPECT_EQ(tokens[2].text, ".");
}

}  // namespace
}  // namespace sca::lexer
