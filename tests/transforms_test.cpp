#include <gtest/gtest.h>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "ast/transforms.hpp"
#include "ast/visit.hpp"

namespace sca::ast {
namespace {

TranslationUnit parsed(std::string_view src) {
  ParseResult r = parse(src);
  EXPECT_TRUE(r.clean) << (r.warnings.empty() ? "" : r.warnings[0]);
  return std::move(r.unit);
}

std::size_t countKind(const TranslationUnit& tu, std::string_view kind) {
  std::size_t n = 0;
  forEachStmt(tu, [&](const Stmt& s) {
    if (stmtKindName(s) == kind) ++n;
  });
  return n;
}

TEST(Rename, RenamesDeclsUsesAndCalls) {
  TranslationUnit tu = parsed(
      "void helper(int x) { x++; }\n"
      "int main() { int total = 0; helper(total); return total; }\n");
  renameIdentifiers(tu, {{"total", "sum"}, {"helper", "process"}});
  const std::string out = render(tu, RenderOptions{});
  EXPECT_EQ(out.find("total"), std::string::npos);
  EXPECT_EQ(out.find("helper"), std::string::npos);
  EXPECT_NE(out.find("int sum = 0;"), std::string::npos);
  EXPECT_NE(out.find("process(sum);"), std::string::npos);
  EXPECT_NE(out.find("void process(int x)"), std::string::npos);
}

TEST(Rename, MainIsNeverRenamed) {
  TranslationUnit tu = parsed("int main() { return 0; }\n");
  renameIdentifiers(tu, {{"main", "start"}});
  EXPECT_EQ(tu.functions[0].name, "main");
}

TEST(Rename, DottedMemberBaseRenamed) {
  TranslationUnit tu = parsed(
      "int main() { vector<int> v; v.push_back(1); int n = v.size(); "
      "return n; }\n");
  renameIdentifiers(tu, {{"v", "values"}});
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("values.push_back(1);"), std::string::npos);
  EXPECT_NE(out.find("values.size()"), std::string::npos);
}

TEST(Loops, ForToWhileHoistsInitAndAppendsStep) {
  TranslationUnit tu = parsed(
      "int main() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } "
      "return s; }\n");
  convertForToWhile(tu);
  EXPECT_EQ(countKind(tu, "for"), 0u);
  EXPECT_EQ(countKind(tu, "while"), 1u);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("int i = 0;"), std::string::npos);
  EXPECT_NE(out.find("while (i < 4)"), std::string::npos);
  EXPECT_NE(out.find("i++;"), std::string::npos);
}

TEST(Loops, ForToWhileSkipsCollidingSiblings) {
  // Two sibling loops reuse "i": hoisting both would double-declare it.
  TranslationUnit tu = parsed(
      "int main() { int s = 0;\n"
      "for (int i = 0; i < 4; i++) { s += i; }\n"
      "for (int i = 0; i < 3; i++) { s -= i; }\n"
      "return s; }\n");
  convertForToWhile(tu);
  EXPECT_EQ(countKind(tu, "for"), 1u);   // second loop untouched
  EXPECT_EQ(countKind(tu, "while"), 1u);
  // Result must still round-trip cleanly.
  const ParseResult again = parse(render(tu, RenderOptions{}));
  EXPECT_TRUE(again.clean);
}

TEST(Loops, ForToWhileSkipsLoopsWithContinue) {
  TranslationUnit tu = parsed(
      "int main() { int s = 0; for (int i = 0; i < 4; i++) { "
      "if (i == 2) { continue; } s += i; } return s; }\n");
  convertForToWhile(tu);
  EXPECT_EQ(countKind(tu, "for"), 1u);  // untouched: continue would skip step
}

TEST(Loops, WhileToForProducesHeaderOnlyCondition) {
  TranslationUnit tu = parsed(
      "int main() { int i = 3; while (i > 0) { i--; } return i; }\n");
  convertWhileToFor(tu);
  EXPECT_EQ(countKind(tu, "while"), 0u);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("for (; i > 0; )"), std::string::npos);
}

TEST(Increment, StatementAndForStepFlipped) {
  TranslationUnit tu = parsed(
      "int main() { int n = 0; for (int i = 0; i < 4; i++) { n++; } "
      "return n; }\n");
  setIncrementStyle(tu, IncrementStyle::PreIncrement);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("++i)"), std::string::npos);
  EXPECT_NE(out.find("++n;"), std::string::npos);
  setIncrementStyle(tu, IncrementStyle::PostIncrement);
  const std::string back = render(tu, RenderOptions{});
  EXPECT_NE(back.find("i++)"), std::string::npos);
}

TEST(Increment, ValuePositionUntouched) {
  TranslationUnit tu = parsed(
      "int main() { int i = 0; int x = i++; return x; }\n");
  setIncrementStyle(tu, IncrementStyle::PreIncrement);
  const std::string out = render(tu, RenderOptions{});
  // flipping would change the value of x
  EXPECT_NE(out.find("x = i++"), std::string::npos);
}

TEST(CompoundAssign, BothDirections) {
  TranslationUnit tu = parsed(
      "int main() { int x = 1; x = x + 2; x = x * 3; return x; }\n");
  preferCompoundAssign(tu, true);
  std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("x += 2;"), std::string::npos);
  EXPECT_NE(out.find("x *= 3;"), std::string::npos);
  preferCompoundAssign(tu, false);
  out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("x = x + 2;"), std::string::npos);
  EXPECT_NE(out.find("x = x * 3;"), std::string::npos);
}

TEST(CompoundAssign, OnlySelfReferencingPatterns) {
  TranslationUnit tu = parsed(
      "int main() { int x = 1, y = 2; x = y + 2; return x; }\n");
  preferCompoundAssign(tu, true);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("x = y + 2;"), std::string::npos);
}

TEST(Comments, StripRemovesEverything) {
  TranslationUnit tu = parsed(
      "/* header */\n// lead\nint main() {\n  // inner\n  return 0;\n}\n");
  stripComments(tu);
  EXPECT_TRUE(tu.headerComment.empty());
  EXPECT_TRUE(tu.functions[0].leadingComment.empty());
  EXPECT_EQ(countKind(tu, "comment"), 0u);
}

TEST(Types, WidenIntToLongLong) {
  TranslationUnit tu = parsed(
      "int f(int a) { return a; }\n"
      "int main() { int x; cin >> x; cout << f(x) << \"\\n\"; return 0; }\n");
  widenIntToLongLong(tu);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("long long f(long long a)"), std::string::npos);
  EXPECT_NE(out.find("long long x;"), std::string::npos);
  // main's return type must stay int
  EXPECT_NE(out.find("int main()"), std::string::npos);
}

TEST(Types, AliasLongLongIdempotent) {
  TranslationUnit tu = parsed("int main() { long long x = 1; return 0; }\n");
  aliasLongLong(tu, "ll", true);
  aliasLongLong(tu, "LL", false);  // second call must not add another alias
  ASSERT_EQ(tu.aliases.size(), 1u);
  EXPECT_EQ(tu.aliases[0].name, "ll");
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("ll x = 1;"), std::string::npos);
}

TEST(Extract, SolveFunctionPulledOutOfMain) {
  TranslationUnit tu = parsed(
      "int main() { int t; cin >> t; for (int i = 1; i <= t; i++) { "
      "int n; cin >> n; int r = n * 2; cout << r << \"\\n\"; } return 0; }\n");
  ASSERT_TRUE(extractSolveFunction(tu, "solve_case"));
  ASSERT_EQ(tu.functions.size(), 2u);
  EXPECT_EQ(tu.functions[0].name, "solve_case");
  EXPECT_EQ(tu.functions[1].name, "main");
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("solve_case("), std::string::npos);
  // Round-trips cleanly.
  EXPECT_TRUE(parse(out).clean);
}

TEST(Extract, RefusesWhenBodyHasBreak) {
  TranslationUnit tu = parsed(
      "int main() { int t; cin >> t; for (int i = 0; i < t; i++) { "
      "int n; cin >> n; if (n == 0) { break; } cout << n << \"\\n\"; } "
      "return 0; }\n");
  EXPECT_FALSE(extractSolveFunction(tu, "solve_case"));
  ASSERT_EQ(tu.functions.size(), 1u);
}

TEST(Extract, InlineUndoesExtract) {
  TranslationUnit tu = parsed(
      "int main() { int t; cin >> t; for (int i = 1; i <= t; i++) { "
      "int n; cin >> n; int r = n * 2; cout << r << \"\\n\"; } return 0; }\n");
  ASSERT_TRUE(extractSolveFunction(tu, "solve_case"));
  EXPECT_EQ(inlineHelperFunctions(tu), 1u);
  ASSERT_EQ(tu.functions.size(), 1u);
  EXPECT_EQ(tu.functions[0].name, "main");
  EXPECT_TRUE(parse(render(tu, RenderOptions{})).clean);
}

TEST(Ternary, IfElseAssignToTernaryAndBack) {
  TranslationUnit tu = parsed(
      "int main() { int a = 1, b = 2, m; if (a > b) { m = a; } else { "
      "m = b; } return m; }\n");
  preferTernary(tu, true);
  std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("m = a > b ? a : b;"), std::string::npos);
  preferTernary(tu, false);
  out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("} else {"), std::string::npos);
  EXPECT_EQ(out.find("?"), std::string::npos);
}

TEST(Loops, CountingForRoundTrip) {
  // for -> while -> for must reconstruct an equivalent counting loop.
  TranslationUnit tu = parsed(
      "int main() { int s = 0; for (int i = 0; i < 4; i++) { s += i; } "
      "return s; }\n");
  convertForToWhile(tu);
  ASSERT_EQ(countKind(tu, "while"), 1u);
  EXPECT_EQ(convertWhileToCountingFor(tu), 1u);
  EXPECT_EQ(countKind(tu, "while"), 0u);
  EXPECT_EQ(countKind(tu, "for"), 1u);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("for (int i = 0; i < 4; i++)"), std::string::npos);
  EXPECT_TRUE(parse(out).clean);
}

TEST(Loops, CountingForSkipsWhenVariableUsedAfterLoop) {
  TranslationUnit tu = parsed(
      "int main() { int i = 0; while (i < 4) { i++; } return i; }\n");
  EXPECT_EQ(convertWhileToCountingFor(tu), 0u);
  EXPECT_EQ(countKind(tu, "while"), 1u);
}

TEST(Loops, CountingForSkipsWhenBodyHasContinue) {
  TranslationUnit tu = parsed(
      "int main() { int s = 0; int i = 0; while (i < 4) { "
      "if (i == 2) { s++; } i++; } return s; }\n");
  // Insert a continue via a source variant instead:
  TranslationUnit tu2 = parsed(
      "int main() { int s = 0; int i = 0; while (i < 9) { "
      "if (s > 2) { continue; } i++; } return s; }\n");
  EXPECT_EQ(convertWhileToCountingFor(tu2), 0u);
  // The continue-free variant converts.
  EXPECT_EQ(convertWhileToCountingFor(tu), 1u);
}

TEST(Loops, CountingForSkipsSentinelWhiles) {
  TranslationUnit tu = parsed(
      "int main() { int x; cin >> x; while (x > 0) { x /= 2; } "
      "return 0; }\n");
  // No immediately preceding single-declarator init => untouched.
  EXPECT_EQ(convertWhileToCountingFor(tu), 0u);
}

TEST(Loops, CountingForHandlesCompoundStep) {
  TranslationUnit tu = parsed(
      "int main() { int total = 0; int k = 1; while (k <= 64) { "
      "total += k; k *= 2; } cout << total << \"\\n\"; return 0; }\n");
  EXPECT_EQ(convertWhileToCountingFor(tu), 1u);
  const std::string out = render(tu, RenderOptions{});
  EXPECT_NE(out.find("for (int k = 1; k <= 64; k *= 2)"),
            std::string::npos);
}

TEST(DeclaredTypes, CoversParamsLocalsGlobalsArrays) {
  TranslationUnit tu = parsed(
      "int cache[10];\nvoid f(double d) { string s; }\n"
      "int main() { vector<int> v; return 0; }\n");
  const auto types = declaredTypes(tu);
  EXPECT_TRUE(types.at("cache").isVector);  // arrays behave like vectors
  EXPECT_EQ(types.at("d").base, BaseType::Double);
  EXPECT_EQ(types.at("s").base, BaseType::String);
  EXPECT_TRUE(types.at("v").isVector);
}

}  // namespace
}  // namespace sca::ast
