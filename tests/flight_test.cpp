#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/flight_report.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "util/io.hpp"

namespace sca::obs::flight {
namespace {

/// Flight state is process-global; restore the recorder gate and keep each
/// test's dump directory private so the suites sharing this binary do not
/// interfere.
class FlightTest : public ::testing::Test {
 protected:
  FlightTest() : initiallyEnabled_(enabled()) {
    detail::setEnabledForTest(true);
  }
  ~FlightTest() override {
    detail::setEnabledForTest(initiallyEnabled_);
    EventLog::global().configure("", LogLevel::kInfo);
  }

  static std::string freshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

 private:
  bool initiallyEnabled_;
};

const ThreadSnapshot* findByLastEvent(const std::vector<ThreadSnapshot>& all,
                                      std::string_view name,
                                      std::uint64_t arg) {
  for (const ThreadSnapshot& thread : all) {
    if (!thread.events.empty() && thread.events.back().name == name &&
        thread.events.back().arg == arg) {
      return &thread;
    }
  }
  return nullptr;
}

// The ring keeps the newest capacity-1 events with contiguous sequence
// numbers once it wraps; the oldest slot is the one being overwritten and
// is deliberately outside the readable window.
TEST_F(FlightTest, RingOverwritesOldestAndKeepsSequenceContiguous) {
  const std::uint64_t capacity = detail::ringCapacity();
  ASSERT_GE(capacity, 16u);
  const std::uint64_t target = capacity + 50;
  ThreadSnapshot mine;
  bool found = false;
  // A fresh thread owns a fresh ring, so totalEvents is exactly what this
  // test records. The thread snapshots itself while quiescent: no shear.
  std::thread worker([&] {
    for (std::uint64_t i = 0; i < target; ++i) {
      note(EventKind::kPhase, "flight_fill", i);
    }
    const std::vector<ThreadSnapshot> all = snapshot();
    if (const ThreadSnapshot* self =
            findByLastEvent(all, "flight_fill", target - 1)) {
      mine = *self;
      found = true;
    }
  });
  worker.join();
  ASSERT_TRUE(found);
  EXPECT_EQ(mine.totalEvents, target);
  ASSERT_EQ(mine.events.size(), capacity - 1);
  EXPECT_EQ(mine.events.front().seq, target - (capacity - 1));
  for (std::size_t i = 1; i < mine.events.size(); ++i) {
    EXPECT_EQ(mine.events[i].seq, mine.events[i - 1].seq + 1);
  }
  EXPECT_EQ(mine.events.back().arg, target - 1);
  EXPECT_EQ(mine.events.back().kind,
            static_cast<std::uint8_t>(EventKind::kPhase));
}

// obs::Span feeds the recorder even with the tracer disabled, and the
// active-span stack tracks nesting in real time.
TEST_F(FlightTest, SpansFeedTheActiveStackIndependentlyOfTheTracer) {
  ASSERT_FALSE(Tracer::global().enabled());
  std::vector<std::string> whileNested;
  std::vector<std::string> afterInner;
  std::thread worker([&] {
    Span outer("flight_outer");
    {
      Span inner("flight_inner");
      for (const ThreadSnapshot& thread : snapshot()) {
        if (!thread.activeSpans.empty() &&
            thread.activeSpans.back().name == "flight_inner") {
          for (const SnapshotActiveSpan& span : thread.activeSpans) {
            whileNested.push_back(span.name);
          }
        }
      }
    }
    for (const ThreadSnapshot& thread : snapshot()) {
      if (!thread.activeSpans.empty() &&
          thread.activeSpans.back().name == "flight_outer") {
        for (const SnapshotActiveSpan& span : thread.activeSpans) {
          afterInner.push_back(span.name);
        }
      }
    }
  });
  worker.join();
  ASSERT_EQ(whileNested.size(), 2u);
  EXPECT_EQ(whileNested[0], "flight_outer");
  EXPECT_EQ(whileNested[1], "flight_inner");
  ASSERT_EQ(afterInner.size(), 1u);
  EXPECT_EQ(afterInner[0], "flight_outer");
}

// logEvent call sites land in the ring as "component:event" records even
// when SCA_LOG is unset — the crash rings see retries/failovers that the
// (disabled) event log never writes anywhere.
TEST_F(FlightTest, LogEventFeedsTheRingWhenTheEventLogIsOff) {
  ASSERT_FALSE(EventLog::global().enabledFor(LogLevel::kError));
  std::atomic<bool> seen{false};
  std::thread worker([&] {
    logEvent(LogLevel::kWarn, "flight_test", "ping");
    for (const ThreadSnapshot& thread : snapshot()) {
      for (const SnapshotEvent& event : thread.events) {
        if (event.name == "flight_test:ping" &&
            event.kind == static_cast<std::uint8_t>(EventKind::kLog) &&
            event.level == static_cast<std::uint8_t>(LogLevel::kWarn)) {
          seen.store(true);
        }
      }
    }
  });
  worker.join();
  EXPECT_TRUE(seen.load());
}

// Names are sanitized at record time so dump writers can embed them in
// JSON without escaping — quotes, backslashes and control bytes cannot
// reach the async-signal-safe serializer.
TEST_F(FlightTest, EventNamesAreSanitizedAtRecordTime) {
  bool checked = false;
  std::thread worker([&] {
    note(EventKind::kPhase, "bad\"name\\with\ncontrol", 7);
    for (const ThreadSnapshot& thread : snapshot()) {
      if (!thread.events.empty() && thread.events.back().arg == 7) {
        EXPECT_EQ(thread.events.back().name, "bad_name_with_control");
        checked = true;
      }
    }
  });
  worker.join();
  EXPECT_TRUE(checked);
}

TEST_F(FlightTest, WatchdogTripsOnAWedgedSpan) {
  const std::string dir = freshDir("flight_wd_trip");
  ArmOptions options;
  options.dir = dir;
  options.label = "flight_test";
  options.watchdogSeconds = 0.04;
  options.installSignalHandlers = false;
  {
    ArmedScope scope(options);
    EXPECT_EQ(incidentCause(), "");
    std::thread wedged([] {
      Span span("flight_wedged");
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    });
    wedged.join();
  }
  EXPECT_EQ(incidentCause(), "watchdog_stall");
  const util::Result<std::string> dump =
      util::readFile(dir + "/watchdog.json");
  ASSERT_TRUE(dump.ok());
  const util::Result<Postmortem> parsed = Postmortem::parse(dump.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
  EXPECT_EQ(parsed.value().cause, "watchdog_stall");
  EXPECT_EQ(parsed.value().label, "flight_test");
  EXPECT_TRUE(parsed.value().hasMetrics);
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t ageNs = 0;
  ASSERT_TRUE(parsed.value().suspectOrInfer(&tid, &name, &ageNs));
  EXPECT_EQ(name, "flight_wedged");
  const std::string text = parsed.value().renderText(10);
  EXPECT_NE(text.find("watchdog_stall"), std::string::npos);
  EXPECT_NE(text.find("flight_wedged"), std::string::npos);
}

TEST_F(FlightTest, WatchdogStaysSilentWhileEventsFlow) {
  const std::string dir = freshDir("flight_wd_silent");
  ArmOptions options;
  options.dir = dir;
  options.label = "flight_test";
  options.watchdogSeconds = 0.04;
  options.installSignalHandlers = false;
  {
    ArmedScope scope(options);
    std::thread busy([] {
      Span span("flight_busy");
      for (int i = 0; i < 60; ++i) {
        note(EventKind::kPhase, "flight_heartbeat",
             static_cast<std::uint64_t>(i));
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    busy.join();
  }
  EXPECT_EQ(incidentCause(), "");
  EXPECT_FALSE(std::filesystem::exists(dir + "/watchdog.json"));
}

// The test bridge runs the real async-signal-safe dump path (fixed
// buffers + write(2)) without re-raising, so the postmortem format and
// the incident-cause latch are verifiable in-process.
TEST_F(FlightTest, FatalSignalPathWritesAParseablePostmortem) {
  const std::string dir = freshDir("flight_sig");
  ArmOptions options;
  options.dir = dir;
  options.label = "flight_test";
  options.watchdogSeconds = 0.0;
  options.installSignalHandlers = false;
  ArmedScope scope(options);
  Span span("flight_crash_site");
  detail::runFatalSignalHandlerForTest(SIGSEGV);
  EXPECT_EQ(incidentCause(), "SIGSEGV");

  const util::Result<std::string> dump =
      util::readFile(dir + "/postmortem.json");
  ASSERT_TRUE(dump.ok());
  const util::Result<Postmortem> parsed = Postmortem::parse(dump.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
  EXPECT_EQ(parsed.value().cause, "signal");
  EXPECT_EQ(parsed.value().signal, "SIGSEGV");
  EXPECT_EQ(parsed.value().signo, SIGSEGV);
  ASSERT_FALSE(parsed.value().threads.empty());
  const std::string text = parsed.value().renderText(5);
  EXPECT_NE(text.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(text.find("flight_crash_site"), std::string::npos);
  EXPECT_NE(text.find("thread "), std::string::npos);

  // The latched cause is what bench::Session writes as partial_cause.
  RunManifestOptions manifest;
  manifest.benchName = "flight_test";
  manifest.complete = false;
  manifest.partialCause = incidentCause();
  const std::string json = runManifestJson(manifest);
  EXPECT_NE(json.find("\"partial_cause\":\"SIGSEGV\""), std::string::npos);

  RunManifestOptions completeManifest;
  completeManifest.benchName = "flight_test";
  completeManifest.complete = true;
  completeManifest.partialCause = "ignored";
  EXPECT_EQ(runManifestJson(completeManifest).find("partial_cause"),
            std::string::npos);
}

// A fresh arm clears any previously latched incident.
TEST_F(FlightTest, ArmingClearsThePreviousIncidentCause) {
  const std::string dir = freshDir("flight_rearm");
  ArmOptions options;
  options.dir = dir;
  options.label = "flight_test";
  options.installSignalHandlers = false;
  {
    ArmedScope scope(options);
    detail::runFatalSignalHandlerForTest(SIGABRT);
    EXPECT_EQ(incidentCause(), "SIGABRT");
  }
  {
    ArmedScope scope(options);
    EXPECT_EQ(incidentCause(), "");
  }
}

TEST_F(FlightTest, PostmortemParserRejectsGarbage) {
  EXPECT_FALSE(Postmortem::parse("not json at all").ok());
  EXPECT_FALSE(Postmortem::parse("{\"schema\":\"something-else\"}").ok());
  EXPECT_FALSE(Postmortem::parse("").ok());
}

// A crash can truncate the final record; everything before it must still
// parse.
TEST_F(FlightTest, PostmortemParserToleratesATruncatedFinalLine) {
  const std::string text =
      "{\"schema\":\"sca-postmortem-v1\",\"cause\":\"signal\","
      "\"signal\":\"SIGBUS\",\"signo\":7,\"label\":\"x\",\"ts_ns\":5,"
      "\"capacity\":256}\n"
      "{\"type\":\"thread\",\"tid\":1,\"exited\":0,\"events\":3}\n"
      "{\"type\":\"event\",\"tid\":1,\"seq\":2,\"ts_ns\":4,"
      "\"kind\":\"phase\",\"level\":0,\"name\":\"ok\",\"arg\":0}\n"
      "{\"type\":\"event\",\"tid\":1,\"seq\":3,\"ts_";  // torn mid-write
  const util::Result<Postmortem> parsed = Postmortem::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
  EXPECT_EQ(parsed.value().signal, "SIGBUS");
  ASSERT_EQ(parsed.value().threads.size(), 1u);
  EXPECT_EQ(parsed.value().threads.at(1).events.size(), 1u);
}

}  // namespace
}  // namespace sca::obs::flight
