// Tests for the resilience layer: Status/Result plumbing, deterministic
// fault injection, retry/backoff schedules, the circuit breaker state
// machine, graceful degradation, and checkpoint/resume bit-identity.
#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>

#include "ast/parser.hpp"
#include "corpus/dataset.hpp"
#include "llm/checkpoint.hpp"
#include "llm/client.hpp"
#include "llm/fault_injection.hpp"
#include "llm/pipelines.hpp"
#include "llm/resilient_client.hpp"
#include "llm/synthetic_llm.hpp"
#include "util/io.hpp"
#include "util/status.hpp"

namespace sca::llm {
namespace {

/// A minimal completion that passes the resilient validator.
constexpr std::string_view kGoodSource =
    "int main() {\n    int x = 1;\n    return 0;\n}\n";

/// Scripted backend: fails the first `failuresBeforeSuccess` attempts with
/// `failure`, then succeeds forever with kGoodSource. Counts attempts.
class ScriptedClient : public LlmClient {
 public:
  explicit ScriptedClient(int failuresBeforeSuccess = 0,
                          util::Status failure = util::Status(
                              util::StatusCode::kTimeout, "scripted"))
      : remainingFailures_(failuresBeforeSuccess),
        failure_(std::move(failure)) {}

  util::Result<std::string> tryGenerate(const corpus::Challenge&) override {
    return next();
  }
  util::Result<std::string> tryTransform(const std::string&) override {
    return next();
  }
  [[nodiscard]] std::string_view describe() const override {
    return "scripted";
  }

  int attempts = 0;

 private:
  util::Result<std::string> next() {
    ++attempts;
    if (remainingFailures_ > 0) {
      --remainingFailures_;
      return failure_;
    }
    return std::string(kGoodSource);
  }

  int remainingFailures_;
  util::Status failure_;
};

/// A backend that always fails — for budget and degradation tests.
class DeadClient : public LlmClient {
 public:
  util::Result<std::string> tryGenerate(const corpus::Challenge&) override {
    ++attempts;
    return util::Status(util::StatusCode::kTimeout, "dead");
  }
  util::Result<std::string> tryTransform(const std::string&) override {
    ++attempts;
    return util::Status(util::StatusCode::kTimeout, "dead");
  }
  [[nodiscard]] std::string_view describe() const override { return "dead"; }
  int attempts = 0;
};

RetryPolicy fastRetry(std::uint64_t seed = 7) {
  RetryPolicy policy;
  policy.seed = seed;
  return policy;
}

std::string tempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sca_" + name)).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ----------------------------------------------------------- Status/Result

TEST(Status, DefaultIsOkAndCodesStringify) {
  EXPECT_TRUE(util::Status().isOk());
  const util::Status s(util::StatusCode::kRateLimited, "429");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.toString(), "rate_limited: 429");
  EXPECT_EQ(util::statusCodeName(util::StatusCode::kDataLoss), "data_loss");
}

TEST(Status, RetryableTaxonomy) {
  using util::StatusCode;
  EXPECT_TRUE(util::isRetryable(StatusCode::kTimeout));
  EXPECT_TRUE(util::isRetryable(StatusCode::kRateLimited));
  EXPECT_TRUE(util::isRetryable(StatusCode::kInvalidOutput));
  EXPECT_FALSE(util::isRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(util::isRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(util::isRetryable(StatusCode::kDataLoss));
}

TEST(Result, ValueAndErrorPaths) {
  util::Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.valueOr(-1), 42);

  util::Result<int> bad(util::Status(util::StatusCode::kTimeout, "t"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kTimeout);
  EXPECT_EQ(bad.valueOr(-1), -1);
}

// ------------------------------------------------------------ fault layer

TEST(FaultInjection, ScaledMixSumsToTotal) {
  const FaultOptions options = FaultOptions::scaled(0.05, 1);
  EXPECT_NEAR(options.totalRate(), 0.05, 1e-12);
  EXPECT_GT(options.timeoutRate, 0.0);
  EXPECT_GT(options.garbageRate, 0.0);
}

TEST(FaultInjection, DeterministicUnderFixedSeed) {
  for (int round = 0; round < 2; ++round) {
    ScriptedClient innerA;
    ScriptedClient innerB;
    FaultInjectingClient a(innerA, FaultOptions::scaled(0.5, 99));
    FaultInjectingClient b(innerB, FaultOptions::scaled(0.5, 99));
    for (int i = 0; i < 64; ++i) {
      const auto ra = a.tryTransform("int main() {}");
      const auto rb = b.tryTransform("int main() {}");
      ASSERT_EQ(ra.ok(), rb.ok()) << "attempt " << i;
      if (ra.ok()) {
        EXPECT_EQ(ra.value(), rb.value());
      } else {
        EXPECT_EQ(ra.status().code(), rb.status().code());
      }
    }
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_GT(a.stats().total(), 0u);
  }
}

TEST(FaultInjection, PreCallFaultsNeverTouchTheModel) {
  ScriptedClient inner;
  FaultOptions options;
  options.seed = 3;
  options.timeoutRate = 0.6;
  options.rateLimitRate = 0.4;  // every attempt faults before the call
  FaultInjectingClient client(inner, options);
  for (int i = 0; i < 32; ++i) {
    const auto result = client.tryTransform("int main() {}");
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(inner.attempts, 0);
}

TEST(FaultInjection, CorruptedCompletionIsStashedAndReplayed) {
  ScriptedClient inner;
  FaultOptions options;
  options.seed = 11;
  options.garbageRate = 1.0;  // first attempt always garbles
  FaultInjectingClient client(inner, options);

  const auto bad = client.tryTransform("int main() {}");
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad.value(), kGoodSource);
  EXPECT_EQ(inner.attempts, 1);

  // The retry of the same request is served the stashed good completion
  // without advancing the model again.
  const auto replay = client.tryTransform("int main() {}");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value(), kGoodSource);
  EXPECT_EQ(inner.attempts, 1);
}

TEST(FaultInjection, CorruptionsNeverParseClean) {
  SyntheticLlm llm([] {
    LlmOptions o;
    o.year = 2018;
    o.seed = 21;
    return o;
  }());
  const std::string good = llm.generate(corpus::challengeById("race"));
  ASSERT_TRUE(ast::parse(good).clean);
  for (const double fraction : {0.0, 0.3, 0.5, 0.7, 0.99}) {
    const std::string cut =
        FaultInjectingClient::truncateOutput(good, fraction);
    EXPECT_FALSE(ast::parse(cut).clean && !cut.empty())
        << "fraction " << fraction;
  }
  EXPECT_FALSE(ast::parse(FaultInjectingClient::garbleOutput(good)).clean);
}

// ------------------------------------------------------------- slow mode

TEST(FaultInjection, SlowModeWithinBudgetSucceedsAndChargesLatency) {
  ScriptedClient inner;
  FaultOptions faults;
  faults.seed = 11;
  faults.slowRate = 1.0;
  faults.slowLatencySeconds = 30.0;
  FaultInjectingClient faulty(inner, faults);

  CallContext context = CallContext::withDeadline(100.0);
  const auto result = faulty.tryTransform("x", context);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), kGoodSource);
  EXPECT_DOUBLE_EQ(context.chargedSeconds, 30.0);
  EXPECT_EQ(inner.attempts, 1);
}

TEST(FaultInjection, AttemptTimeoutHangsUpEverySlowDeliveryAttempt) {
  // Attempt timeout below the injected latency: the caller hangs up at the
  // 20 s mark even though the request has ample budget, and the RETRY of
  // the stashed delivery rides the same slow wire — it times out again.
  ScriptedClient inner;
  FaultOptions faults;
  faults.seed = 11;
  faults.slowRate = 1.0;
  faults.slowLatencySeconds = 30.0;
  faults.attemptTimeoutSeconds = 20.0;
  FaultInjectingClient faulty(inner, faults);

  CallContext context = CallContext::withDeadline(1000.0);
  const auto first = faulty.tryTransform("x", context);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), util::StatusCode::kTimeout);
  EXPECT_DOUBLE_EQ(context.chargedSeconds, 20.0);

  const auto second = faulty.tryTransform("x", context);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kTimeout);
  EXPECT_DOUBLE_EQ(context.chargedSeconds, 40.0);
  // The model advanced exactly once: retries replay the stash, they never
  // regenerate the completion.
  EXPECT_EQ(inner.attempts, 1);
}

TEST(FaultInjection, SlowStashReplayDeliversTheModelsOnlyCompletion) {
  // Deadline blown on the first delivery, retried with a fresh budget: the
  // stashed completion arrives (paying the slow wire again) and is byte-
  // identical to what a healthy model would have produced — the model's
  // RNG advanced exactly once.
  LlmOptions options;
  options.year = 2017;
  options.seed = 21;
  SyntheticLlm model(options);
  SyntheticLlm twin(options);
  const std::string input =
      twin.generate(corpus::challengeById("race"));
  const std::string source = model.generate(corpus::challengeById("race"));

  FaultOptions faults;
  faults.seed = 11;
  faults.slowRate = 1.0;
  faults.slowLatencySeconds = 30.0;
  FaultInjectingClient faulty(model, faults);

  CallContext tight = CallContext::withDeadline(10.0);
  const auto blown = faulty.tryTransform(source, tight);
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), util::StatusCode::kTimeout);

  CallContext fresh = CallContext::withDeadline(100.0);
  const auto delivered = faulty.tryTransform(source, fresh);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered.value(), twin.transform(input));
}

TEST(ResilientClient, SlowShardLadderSurfacesAsTimeout) {
  // Every attempt of the ladder hangs up at the attempt timeout; the
  // exhausted ladder must surface AS a timeout (not kResourceExhausted) —
  // that classification is what feeds fleet-level timeout ejection.
  ScriptedClient inner;
  FaultOptions faults;
  faults.seed = 11;
  faults.slowRate = 1.0;
  faults.slowLatencySeconds = 30.0;
  faults.attemptTimeoutSeconds = 20.0;
  FaultInjectingClient faulty(inner, faults);
  RetryPolicy retry = fastRetry();
  retry.maxAttempts = 3;
  ResilientClient client(faulty, retry);

  CallContext context = CallContext::withDeadline(1000.0);
  const auto result = client.tryTransform("x", context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kTimeout);
  EXPECT_EQ(inner.attempts, 1);          // stash replayed, model advanced once
  EXPECT_GE(context.chargedSeconds, 60.0);  // three 20 s hang-ups + backoff
}

TEST(ResilientClient, DeadlineStopsTheRetryLadder) {
  DeadClient inner;
  ResilientClient client(inner, fastRetry());
  CallContext context = CallContext::withDeadline(1.0);
  const auto result = client.tryTransform("x", context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_GE(client.stats().deadlineStops, 1u);
  // The ladder was cut short: the deadline could not cover the next
  // backoff delay, so the full attempt schedule never ran.
  EXPECT_LT(inner.attempts, 6);
}

// -------------------------------------------------------------- retries

TEST(ResilientClient, RetriesUntilSuccess) {
  ScriptedClient inner(3);
  ResilientClient client(inner, fastRetry());
  const auto result = client.tryTransform("x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), kGoodSource);
  EXPECT_EQ(inner.attempts, 4);
  EXPECT_EQ(client.stats().retries, 3u);
}

TEST(ResilientClient, BackoffScheduleIsDeterministicUnderFixedSeed) {
  ScriptedClient innerA(4);
  ScriptedClient innerB(4);
  ResilientClient a(innerA, fastRetry(123));
  ResilientClient b(innerB, fastRetry(123));
  ASSERT_TRUE(a.tryTransform("x").ok());
  ASSERT_TRUE(b.tryTransform("x").ok());
  ASSERT_EQ(a.backoffLog().size(), 4u);
  EXPECT_EQ(a.backoffLog(), b.backoffLog());

  // A different seed jitters differently around the same base curve.
  ScriptedClient innerC(4);
  ResilientClient c(innerC, fastRetry(456));
  ASSERT_TRUE(c.tryTransform("x").ok());
  EXPECT_NE(a.backoffLog(), c.backoffLog());
}

TEST(ResilientClient, BackoffCurveIsExponentialAndCapped) {
  ScriptedClient inner;
  RetryPolicy policy = fastRetry();
  policy.baseDelaySeconds = 1.0;
  policy.backoffMultiplier = 2.0;
  policy.maxDelaySeconds = 8.0;
  ResilientClient client(inner, policy);
  EXPECT_DOUBLE_EQ(client.baseDelayFor(0), 1.0);
  EXPECT_DOUBLE_EQ(client.baseDelayFor(1), 2.0);
  EXPECT_DOUBLE_EQ(client.baseDelayFor(2), 4.0);
  EXPECT_DOUBLE_EQ(client.baseDelayFor(3), 8.0);
  EXPECT_DOUBLE_EQ(client.baseDelayFor(7), 8.0);  // capped

  // Jitter stays inside the configured band around the base curve.
  ScriptedClient flaky(3);
  ResilientClient jittered(flaky, policy);
  ASSERT_TRUE(jittered.tryTransform("x").ok());
  for (std::size_t i = 0; i < jittered.backoffLog().size(); ++i) {
    const double base = jittered.baseDelayFor(static_cast<int>(i));
    EXPECT_GE(jittered.backoffLog()[i],
              base * (1.0 - policy.jitterFraction));
    EXPECT_LE(jittered.backoffLog()[i],
              base * (1.0 + policy.jitterFraction));
  }
}

TEST(ResilientClient, SleeperReceivesEveryBackoffDelay) {
  ScriptedClient inner(2);
  ResilientClient client(inner, fastRetry());
  std::vector<double> slept;
  client.setSleeper([&](double seconds) { slept.push_back(seconds); });
  ASSERT_TRUE(client.tryTransform("x").ok());
  EXPECT_EQ(slept, client.backoffLog());
}

TEST(ResilientClient, RetryBudgetExhaustionIsFinal) {
  DeadClient inner;
  RetryPolicy policy = fastRetry();
  policy.maxAttempts = 4;
  policy.retryBudget = 5;
  ResilientClient client(inner, policy);

  // First request: 4 attempts, 3 retries. Second request: budget allows 2
  // more retries, then kResourceExhausted.
  const auto first = client.tryTransform("x");
  EXPECT_FALSE(first.ok());
  const auto second = client.tryTransform("x");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(client.stats().retries, 5u);
  EXPECT_EQ(client.stats().budgetExhaustions, 1u);

  // Budget is spent: the next failure is immediately final.
  const int attemptsBefore = inner.attempts;
  const auto third = client.tryTransform("x");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(inner.attempts, attemptsBefore + 1);
}

// ------------------------------------------------------- circuit breaker

TEST(ResilientClient, BreakerOpensHalfOpensAndCloses) {
  // 12 failures then success; threshold 3, cooldown 2, enough attempts for
  // the whole arc to play out inside retry loops.
  ScriptedClient inner(12);
  RetryPolicy retry = fastRetry();
  retry.maxAttempts = 40;
  retry.retryBudget = 100;
  BreakerPolicy breaker;
  breaker.failureThreshold = 3;
  breaker.cooldownAttempts = 2;
  ResilientClient client(inner, retry, breaker);

  EXPECT_EQ(client.breakerState(), ResilientClient::BreakerState::Closed);
  const auto result = client.tryTransform("x");
  ASSERT_TRUE(result.ok());
  // Success closes the circuit again...
  EXPECT_EQ(client.breakerState(), ResilientClient::BreakerState::Closed);
  // ...but the arc passed through open at least once, fast-failing while
  // open instead of hammering the backend.
  EXPECT_GE(client.stats().breakerOpens, 1u);
  EXPECT_GE(client.stats().breakerFastFails, 1u);
  // Fast-fails do not reach the backend: 12 failures + probes + 1 success.
  EXPECT_LT(inner.attempts,
            static_cast<int>(client.stats().attempts));
}

TEST(ResilientClient, FailedProbeReopensTheCircuit) {
  // threshold 2: two failures open it; cooldown 1: third attempt is the
  // half-open probe, which also fails -> straight back to open.
  DeadClient inner;
  RetryPolicy retry = fastRetry();
  retry.maxAttempts = 4;  // failures: real, real (open), fast-fail, probe
  BreakerPolicy breaker;
  breaker.failureThreshold = 2;
  breaker.cooldownAttempts = 1;
  ResilientClient client(inner, retry, breaker);
  const auto result = client.tryTransform("x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client.breakerState(), ResilientClient::BreakerState::Open);
  EXPECT_EQ(inner.attempts, 3);  // fast-fail attempt never reached it
}

/// Fails the first N backend calls, then BLOCKS the next one until the
/// test releases it — the window in which concurrent callers must observe
/// "half-open probe in flight" and fail fast instead of stampeding.
class GatedClient : public LlmClient {
 public:
  explicit GatedClient(int failuresBeforeGate)
      : failuresBeforeGate_(failuresBeforeGate) {}

  util::Result<std::string> tryGenerate(const corpus::Challenge&) override {
    return next();
  }
  util::Result<std::string> tryTransform(const std::string&) override {
    return next();
  }
  [[nodiscard]] std::string_view describe() const override { return "gated"; }

  void waitForProbe() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return probeArrived_; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  util::Result<std::string> next() {
    std::unique_lock<std::mutex> lock(mu_);
    const int call = ++calls_;
    if (call <= failuresBeforeGate_) {
      return util::Status(util::StatusCode::kTimeout, "gated failure");
    }
    if (call == failuresBeforeGate_ + 1) {
      probeArrived_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return std::string(kGoodSource);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  int failuresBeforeGate_;
  int calls_ = 0;
  bool probeArrived_ = false;
  bool released_ = false;
};

TEST(ResilientClient, HalfOpenAdmitsExactlyOneProbeUnderConcurrency) {
  // Two failures open the circuit; the cooldown admits exactly one probe,
  // which the gate holds in flight while a second caller arrives.
  GatedClient inner(2);
  RetryPolicy retry = fastRetry();
  retry.maxAttempts = 1;  // one attempt per call: the test drives the arc
  BreakerPolicy breaker;
  breaker.failureThreshold = 2;
  breaker.cooldownAttempts = 1;
  ResilientClient client(inner, retry, breaker);

  EXPECT_FALSE(client.tryTransform("x").ok());
  EXPECT_FALSE(client.tryTransform("x").ok());
  ASSERT_EQ(client.breakerState(), ResilientClient::BreakerState::Open);
  // Cooldown fast-fail: never reaches the backend.
  EXPECT_FALSE(client.tryTransform("x").ok());

  std::optional<util::Result<std::string>> probeResult;
  std::thread probe([&] { probeResult = client.tryTransform("x"); });
  inner.waitForProbe();

  // While the probe is in flight, a concurrent caller is refused rather
  // than allowed to stampede the recovering backend.
  const auto concurrent = client.tryTransform("x");
  EXPECT_FALSE(concurrent.ok());
  EXPECT_GE(client.stats().probeFastFails, 1u);

  inner.release();
  probe.join();
  ASSERT_TRUE(probeResult.has_value());
  EXPECT_TRUE(probeResult->ok());
  EXPECT_EQ(client.breakerState(), ResilientClient::BreakerState::Closed);
}

// ------------------------------------------------------------ validation

TEST(ResilientClient, RejectsRefusalsAndGarbageThenRecovers) {
  SyntheticLlm llm([] {
    LlmOptions o;
    o.year = 2017;
    o.seed = 5;
    return o;
  }());
  FaultOptions faults;
  faults.seed = 17;
  faults.emptyRate = 0.3;
  faults.garbageRate = 0.3;
  FaultInjectingClient faulty(llm, faults);
  ResilientClient client(faulty, fastRetry());

  const std::string original = llm.generate(corpus::challengeById("race"));
  for (int i = 0; i < 20; ++i) {
    const auto result = client.tryTransform(original);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_TRUE(ast::parse(result.value()).clean);
  }
  EXPECT_GT(client.stats().validationFailures, 0u);
}

// ----------------------------------------------------------- degradation

TEST(TransformSchedules, NctDegradesToOriginal) {
  DeadClient client;
  const std::string original = "int main() {\n    return 0;\n}\n";
  ResilientClient resilient(client, fastRetry());
  const auto outputs = nonChainingTransform(resilient, original, 5);
  ASSERT_TRUE(outputs.ok());
  ASSERT_EQ(outputs.value().size(), 5u);
  for (const std::string& out : outputs.value()) {
    EXPECT_EQ(out, original);  // failed NCT step = untransformed original
  }
}

TEST(TransformSchedules, CtDegradesToLastGoodOutput) {
  // Succeeds twice, then dies: steps 3..5 must repeat step 2's output.
  class TwoThenDead : public LlmClient {
   public:
    util::Result<std::string> tryGenerate(const corpus::Challenge&) override {
      return util::Status(util::StatusCode::kInternal, "unused");
    }
    util::Result<std::string> tryTransform(const std::string&) override {
      if (++calls <= 2) {
        return "int main() {\n    int v" + std::to_string(calls) +
               " = 0;\n    return 0;\n}\n";
      }
      return util::Status(util::StatusCode::kTimeout, "dead");
    }
    [[nodiscard]] std::string_view describe() const override { return "t"; }
    int calls = 0;
  };

  TwoThenDead inner;
  RetryPolicy policy = fastRetry();
  policy.maxAttempts = 2;
  policy.retryBudget = 2;
  ResilientClient client(inner, policy);
  const auto outputs =
      chainingTransform(client, "int main() {\n    return 0;\n}\n", 5);
  ASSERT_TRUE(outputs.ok());
  const std::vector<std::string>& chain = outputs.value();
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_NE(chain[0], chain[1]);
  EXPECT_EQ(chain[2], chain[1]);  // degraded: last good output
  EXPECT_EQ(chain[3], chain[1]);
  EXPECT_EQ(chain[4], chain[1]);
}

TEST(TransformSchedules, AbortPolicyPropagatesStatus) {
  DeadClient client;
  TransformPolicy policy;
  policy.degradeOnFailure = false;
  const auto result =
      nonChainingTransform(client, "int main() {}", 3, policy);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kTimeout);
}

// ----------------------------------------------------------- checkpoints

ChainKey testKey() {
  ChainKey key;
  key.year = 2018;
  key.settingIndex = 1;
  key.settingLabel = "+C";
  key.challenge = 3;
  key.steps = 3;
  key.originHash = util::hash64("original");
  key.faultRate = 0.05;
  return key;
}

TEST(Checkpoint, RoundTripsExactBytes) {
  const std::string dir = tempDir("ckpt_roundtrip");
  const std::vector<std::string> outputs = {
      "int main() {\n    return 0;\n}\n",
      "line with \"quotes\" and \\ backslash\n\ttab",
      "",
  };
  ASSERT_TRUE(writeChainCheckpoint(dir, testKey(), outputs).isOk());
  const auto loaded = loadChainCheckpoint(dir, testKey());
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_EQ(loaded.value(), outputs);
}

TEST(Checkpoint, StaleHeadersAreRejected) {
  const std::string dir = tempDir("ckpt_stale");
  const std::vector<std::string> outputs = {"a", "b", "c"};
  ASSERT_TRUE(writeChainCheckpoint(dir, testKey(), outputs).isOk());

  ChainKey wrongSteps = testKey();
  wrongSteps.steps = 4;
  EXPECT_FALSE(loadChainCheckpoint(dir, wrongSteps).ok());

  ChainKey wrongOrigin = testKey();
  wrongOrigin.originHash = util::hash64("different original");
  EXPECT_FALSE(loadChainCheckpoint(dir, wrongOrigin).ok());

  ChainKey wrongRate = testKey();
  wrongRate.faultRate = 0.0;
  EXPECT_FALSE(loadChainCheckpoint(dir, wrongRate).ok());
}

TEST(Checkpoint, TornFilesAreRejected) {
  const std::string dir = tempDir("ckpt_torn");
  const std::vector<std::string> outputs = {"aaaa", "bbbb", "cccc"};
  ASSERT_TRUE(writeChainCheckpoint(dir, testKey(), outputs).isOk());
  const std::string path = chainCheckpointPath(dir, testKey());

  // Simulate a kill mid-write of a non-atomic writer: chop the file mid
  // final record.
  const auto full = util::readFile(path);
  ASSERT_TRUE(full.ok());
  std::ofstream torn(path, std::ios::binary | std::ios::trunc);
  torn << full.value().substr(0, full.value().size() - 6);
  torn.close();

  EXPECT_FALSE(loadChainCheckpoint(dir, testKey()).ok());
}

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  const corpus::YearDataset corpus = corpus::buildYearDataset(2018, 10);

  BuildOptions plain;
  plain.steps = 3;
  const TransformedDataset uninterrupted =
      buildTransformedDataset(corpus, plain);

  // First run persists every chain.
  BuildOptions checkpointed = plain;
  checkpointed.checkpointDir = tempDir("ckpt_resume");
  const TransformedDataset firstRun =
      buildTransformedDataset(corpus, checkpointed);

  // Simulate a mid-build kill: some chains checkpointed, one torn by a
  // non-atomic writer, the rest never started.
  std::size_t removed = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(checkpointed.checkpointDir)) {
    if (removed < 5) {
      std::filesystem::remove(entry.path());
      ++removed;
    } else if (removed == 5) {
      std::ofstream torn(entry.path(), std::ios::binary | std::ios::trunc);
      torn << "{\"magic\":\"sca-chain-v1\",\"year\":2018,\"set";
      ++removed;
    }
  }
  ASSERT_GE(removed, 6u);

  const TransformedDataset resumed =
      buildTransformedDataset(corpus, checkpointed);

  ASSERT_EQ(resumed.samples.size(), uninterrupted.samples.size());
  for (std::size_t i = 0; i < resumed.samples.size(); ++i) {
    ASSERT_EQ(resumed.samples[i].source, uninterrupted.samples[i].source)
        << "sample " << i;
    ASSERT_EQ(resumed.samples[i].setting, uninterrupted.samples[i].setting);
    ASSERT_EQ(resumed.samples[i].step, uninterrupted.samples[i].step);
  }
  ASSERT_EQ(firstRun.samples.size(), uninterrupted.samples.size());
  for (std::size_t i = 0; i < firstRun.samples.size(); ++i) {
    ASSERT_EQ(firstRun.samples[i].source, uninterrupted.samples[i].source);
  }
}

// ----------------------------------------------------------- chain pack

ChainKey packKey(int challenge) {
  ChainKey key = testKey();
  key.challenge = challenge;
  return key;
}

TEST(ChainPack, CompactionPacksLooseFilesAndLoadsFallBack) {
  const std::string dir = tempDir("pack_roundtrip");
  const std::vector<std::string> outputs = {"first\n", "second \"q\"", ""};
  for (int challenge = 0; challenge < 3; ++challenge) {
    ASSERT_TRUE(
        writeChainCheckpoint(dir, packKey(challenge), outputs).isOk());
  }

  const auto compacted = compactCheckpoints(dir);
  ASSERT_TRUE(compacted.ok()) << compacted.status().toString();
  EXPECT_EQ(compacted.value().packedChains, 3u);
  EXPECT_EQ(compacted.value().removedFiles, 3u);

  // No loose chain files survive; the pack indexes all three.
  for (int challenge = 0; challenge < 3; ++challenge) {
    EXPECT_FALSE(std::filesystem::exists(
        chainCheckpointPath(dir, packKey(challenge))));
  }
  const auto index = readChainPackIndex(chainPackPath(dir));
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index.value().size(), 3u);

  // Loads are served from the pack and pass the same validation.
  for (int challenge = 0; challenge < 3; ++challenge) {
    const auto loaded = loadChainCheckpoint(dir, packKey(challenge));
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value(), outputs);
  }
  // A key the pack does not hold still misses cleanly.
  EXPECT_FALSE(loadChainCheckpoint(dir, packKey(9)).ok());
  // Stale keys are rejected even when the bytes come from the pack.
  ChainKey wrongOrigin = packKey(0);
  wrongOrigin.originHash = util::hash64("not the original");
  EXPECT_FALSE(loadChainCheckpoint(dir, wrongOrigin).ok());
}

TEST(ChainPack, LooseFileWinsAndRecompactionMerges) {
  const std::string dir = tempDir("pack_merge");
  const std::vector<std::string> stale = {"old a", "old b", "old c"};
  const std::vector<std::string> fresh = {"new a", "new b", "new c"};

  ASSERT_TRUE(writeChainCheckpoint(dir, packKey(0), stale).isOk());
  ASSERT_TRUE(writeChainCheckpoint(dir, packKey(1), stale).isOk());
  ASSERT_TRUE(compactCheckpoints(dir).ok());

  // A newer loose file for chain 0 shadows its packed copy...
  ASSERT_TRUE(writeChainCheckpoint(dir, packKey(0), fresh).isOk());
  auto loaded = loadChainCheckpoint(dir, packKey(0));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), fresh);

  // ...and wins the merge when compaction runs again.
  const auto recompacted = compactCheckpoints(dir);
  ASSERT_TRUE(recompacted.ok());
  EXPECT_EQ(recompacted.value().packedChains, 2u);
  EXPECT_EQ(recompacted.value().removedFiles, 1u);
  loaded = loadChainCheckpoint(dir, packKey(0));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), fresh);
  loaded = loadChainCheckpoint(dir, packKey(1));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), stale);
}

TEST(ChainPack, EmptyDirectoryAndCorruptPackAreHandled) {
  const std::string dir = tempDir("pack_edge");
  const auto noop = compactCheckpoints(dir);
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop.value().packedChains, 0u);
  EXPECT_FALSE(std::filesystem::exists(chainPackPath(dir)));

  ASSERT_TRUE(
      writeChainCheckpoint(dir, packKey(0), {"x", "y", "z"}).isOk());
  ASSERT_TRUE(compactCheckpoints(dir).ok());

  // Truncate the pack mid-payload: the index read fails loudly and a load
  // degrades to a clean miss instead of crashing or returning torn bytes.
  const auto packed = util::readFile(chainPackPath(dir));
  ASSERT_TRUE(packed.ok());
  {
    std::ofstream torn(chainPackPath(dir),
                       std::ios::binary | std::ios::trunc);
    torn << packed.value().substr(0, packed.value().size() / 2);
  }
  EXPECT_FALSE(readChainPackIndex(chainPackPath(dir)).ok());
  EXPECT_FALSE(loadChainCheckpoint(dir, packKey(0)).ok());
}

// -------------------------------------------------- end-to-end invariants

TEST(ResilientPipeline, FaultsOnReproducesFaultsOffByteForByte) {
  const corpus::YearDataset corpus = corpus::buildYearDataset(2017, 10);

  BuildOptions off;
  off.steps = 3;
  BuildOptions on = off;
  on.faultRate = 0.05;

  const TransformedDataset clean = buildTransformedDataset(corpus, off);
  const TransformedDataset faulted = buildTransformedDataset(corpus, on);

  ASSERT_EQ(clean.samples.size(), faulted.samples.size());
  for (std::size_t i = 0; i < clean.samples.size(); ++i) {
    ASSERT_EQ(clean.samples[i].source, faulted.samples[i].source)
        << "sample " << i;
  }
}

TEST(ResilientPipeline, HeavyFaultsStillCompleteEveryChain) {
  const corpus::YearDataset corpus = corpus::buildYearDataset(2019, 10);
  BuildOptions options;
  options.steps = 2;
  options.faultRate = 0.5;
  const TransformedDataset dataset = buildTransformedDataset(corpus, options);
  EXPECT_EQ(dataset.samples.size(),
            corpus.challenges.size() * allSettings().size() * options.steps);
  for (const TransformedSample& sample : dataset.samples) {
    EXPECT_FALSE(sample.source.empty());
  }
}

}  // namespace
}  // namespace sca::llm
