#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.hpp"
#include "ast/render.hpp"

namespace sca::ast {
namespace {

/// Parses, re-renders under `options`, and returns the text.
std::string rerender(std::string_view src, const RenderOptions& options) {
  ParseResult r = parse(src);
  EXPECT_TRUE(r.clean);
  return render(r.unit, options);
}

const std::string kProgram =
    "#include <iostream>\n"
    "using namespace std;\n"
    "int main() {\n"
    "    int n;\n"
    "    cin >> n;\n"
    "    for (int i = 0; i < n; i++) {\n"
    "        if (i % 2 == 0) {\n"
    "            cout << i << \"\\n\";\n"
    "        }\n"
    "    }\n"
    "    return 0;\n"
    "}\n";

TEST(Render, DefaultOptionsRoundTripStable) {
  RenderOptions opt;
  const std::string once = rerender(kProgram, opt);
  const std::string twice = rerender(once, opt);
  EXPECT_EQ(once, twice);  // idempotent fixed point
}

TEST(Render, IndentWidthRespected) {
  RenderOptions opt;
  opt.indentWidth = 2;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("\n  int n;"), std::string::npos);
  opt.indentWidth = 8;
  const std::string wide = rerender(kProgram, opt);
  EXPECT_NE(wide.find("\n        int n;"), std::string::npos);
}

TEST(Render, TabsRespected) {
  RenderOptions opt;
  opt.useTabs = true;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("\n\tint n;"), std::string::npos);
}

TEST(Render, AllmanBraces) {
  RenderOptions opt;
  opt.allmanBraces = true;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("int main()\n{"), std::string::npos);
}

TEST(Render, KeywordSpacing) {
  RenderOptions opt;
  opt.spaceAfterKeyword = false;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("for(int"), std::string::npos);
  EXPECT_NE(out.find("if(i"), std::string::npos);
}

TEST(Render, OperatorSpacing) {
  RenderOptions opt;
  opt.spaceAroundOps = false;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("i%2==0"), std::string::npos);
}

TEST(Render, StdioStyleWritesScanfPrintf) {
  RenderOptions opt;
  opt.ioStyle = IoStyle::Stdio;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("scanf(\"%d\", &n);"), std::string::npos);
  EXPECT_NE(out.find("printf(\"%d\\n\", i);"), std::string::npos);
  EXPECT_EQ(out.find("cout"), std::string::npos);
}

TEST(Render, EndlStyle) {
  RenderOptions opt;
  opt.useEndl = true;
  const std::string out = rerender(kProgram, opt);
  EXPECT_NE(out.find("<< endl;"), std::string::npos);
}

TEST(Render, PrecisionEmitsFixedSetprecision) {
  const std::string src =
      "#include <iostream>\n#include <iomanip>\nusing namespace std;\n"
      "int main() { double x = 1; cout << fixed << setprecision(6) << x "
      "<< \"\\n\"; return 0; }\n";
  RenderOptions opt;
  const std::string out = rerender(src, opt);
  EXPECT_NE(out.find("fixed << setprecision(6)"), std::string::npos);
  opt.ioStyle = IoStyle::Stdio;
  const std::string stdio = rerender(src, opt);
  EXPECT_NE(stdio.find("%.6lf"), std::string::npos);
}

TEST(Render, StdQualificationWithoutUsingNamespace) {
  ParseResult r = parse(kProgram);
  r.unit.usingNamespaceStd = false;
  const std::string out = render(r.unit, RenderOptions{});
  EXPECT_NE(out.find("std::cin >> n"), std::string::npos);
  EXPECT_NE(out.find("std::cout"), std::string::npos);
  EXPECT_EQ(out.find("using namespace std"), std::string::npos);
}

TEST(Render, AliasUsedForLongLong) {
  const std::string src =
      "typedef long long ll;\nint main() { ll x = 1; return 0; }\n";
  const std::string out = rerender(src, RenderOptions{});
  EXPECT_NE(out.find("typedef long long ll;"), std::string::npos);
  EXPECT_NE(out.find("ll x = 1;"), std::string::npos);
}

TEST(Render, PrecedenceParenthesization) {
  // (1 + 2) * 3 must keep its parens; 1 + 2 * 3 must not gain any.
  const std::string src =
      "int main() { int a = (1 + 2) * 3; int b = 1 + 2 * 3; return a + b; }\n";
  const std::string out = rerender(src, RenderOptions{});
  EXPECT_NE(out.find("(1 + 2) * 3"), std::string::npos);
  EXPECT_NE(out.find("b = 1 + 2 * 3"), std::string::npos);
}

TEST(Render, SubtractionAssociativity) {
  // a - (b - c) must keep parens; (a - b) - c may drop them.
  const std::string src =
      "int main() { int a=9,b=4,c=2; int x = a - (b - c); return x; }\n";
  const std::string out = rerender(src, RenderOptions{});
  EXPECT_NE(out.find("a - (b - c)"), std::string::npos);
}

TEST(Render, StringEscapes) {
  EXPECT_EQ(escapeString("a\nb\t\"q\"\\"), "a\\nb\\t\\\"q\\\"\\\\");
}

TEST(Render, DoWhileShape) {
  const std::string src =
      "int main() { int i = 3; do { i--; } while (i > 0); return i; }\n";
  const std::string out = rerender(src, RenderOptions{});
  EXPECT_NE(out.find("do {"), std::string::npos);
  EXPECT_NE(out.find("} while (i > 0);"), std::string::npos);
}

TEST(Render, ElseIfChainsStayFlat) {
  const std::string src =
      "int main() { int x = 1; if (x == 0) { return 0; } else if (x == 1) { "
      "return 1; } else { return 2; } }\n";
  const std::string out = rerender(src, RenderOptions{});
  EXPECT_NE(out.find("} else if (x == 1) {"), std::string::npos);
  EXPECT_NE(out.find("} else {"), std::string::npos);
}

TEST(Render, NormalizeIncludesIostream) {
  ParseResult r = parse(
      "int main() { int x; cin >> x; cout << x << \"\\n\"; return 0; }\n");
  normalizeIncludes(r.unit, IoStyle::Iostream);
  ASSERT_FALSE(r.unit.includes.empty());
  EXPECT_EQ(r.unit.includes[0], "iostream");
}

TEST(Render, NormalizeIncludesStdioAndLibraries) {
  ParseResult r = parse(
      "int main() { vector<int> v; v.push_back(1); sort(v.begin(), v.end());"
      " double d = sqrt(2.0); printf(\"%f\\n\", d); return 0; }\n");
  normalizeIncludes(r.unit, IoStyle::Stdio);
  const auto& inc = r.unit.includes;
  EXPECT_NE(std::find(inc.begin(), inc.end(), "cstdio"), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), "vector"), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), "algorithm"), inc.end());
  EXPECT_NE(std::find(inc.begin(), inc.end(), "cmath"), inc.end());
}

TEST(Render, NormalizeIncludesKeepsBitsHeader) {
  ParseResult r = parse(
      "#include <bits/stdc++.h>\nusing namespace std;\n"
      "int main() { return 0; }\n");
  normalizeIncludes(r.unit, IoStyle::Iostream);
  ASSERT_EQ(r.unit.includes.size(), 1u);
  EXPECT_EQ(r.unit.includes[0], "bits/stdc++.h");
}

TEST(Render, UnbracedSingleStatementBodies) {
  RenderOptions opt;
  opt.braceSingleStatements = false;
  const std::string out = rerender(kProgram, opt);
  // the single cout statement under if renders without braces
  EXPECT_EQ(out.find("if (i % 2 == 0) {"), std::string::npos);
}

TEST(Render, MultiLineBlockCommentWrapped) {
  ParseResult r = parse("int main() { return 0; }\n");
  r.unit.headerComment = "line one\nline two";
  const std::string out = render(r.unit, RenderOptions{});
  EXPECT_NE(out.find("/*"), std::string::npos);
  EXPECT_NE(out.find(" * line one"), std::string::npos);
  EXPECT_NE(out.find(" * line two"), std::string::npos);
}

TEST(Render, BlankLinesBetweenFunctionsHonored) {
  const std::string src =
      "void a() { return; }\nvoid b() { return; }\nint main() { return 0; }\n";
  RenderOptions opt;
  opt.blankLinesBetweenFunctions = 2;
  const std::string out = rerender(src, opt);
  EXPECT_NE(out.find("}\n\n\nvoid b()"), std::string::npos);
}

TEST(Render, VectorConstructorInit) {
  const std::string out = rerender(
      "int main() { int n = 4; vector<int> v(n); vector<int> w; "
      "return 0; }\n",
      RenderOptions{});
  EXPECT_NE(out.find("vector<int> v(n);"), std::string::npos);
  EXPECT_NE(out.find("vector<int> w;"), std::string::npos);
}

TEST(Render, CharLiteralEscapes) {
  const std::string out = rerender(
      "int main() { char a = '\\n'; char b = '\\''; char c = 'x'; "
      "return 0; }\n",
      RenderOptions{});
  EXPECT_NE(out.find("'\\n'"), std::string::npos);
  EXPECT_NE(out.find("'\\''"), std::string::npos);
  EXPECT_NE(out.find("'x'"), std::string::npos);
}

TEST(Render, ScanfSkipsStringsGracefully) {
  // A string read target cannot go through scanf; the renderer falls back
  // to cin for that statement even in stdio mode.
  RenderOptions opt;
  opt.ioStyle = IoStyle::Stdio;
  const std::string out = rerender(
      "#include <iostream>\nusing namespace std;\n"
      "int main() { string s; cin >> s; cout << s << \"\\n\"; return 0; }\n",
      opt);
  EXPECT_NE(out.find("cin >> s;"), std::string::npos);
  EXPECT_NE(out.find("printf(\"%s\\n\", s.c_str());"), std::string::npos);
}

TEST(Render, OpaqueStatementsEmittedVerbatim) {
  ParseResult r = parse("int main() { goto x; return 0; }\n");
  const std::string out = render(r.unit, RenderOptions{});
  EXPECT_NE(out.find("goto x ;"), std::string::npos);
}

}  // namespace
}  // namespace sca::ast
