#include <gtest/gtest.h>

#include <set>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "corpus/dataset.hpp"
#include "llm/archetypes.hpp"
#include "llm/pipelines.hpp"
#include "llm/synthetic_llm.hpp"
#include "style/archetypes.hpp"
#include "style/infer.hpp"

namespace sca::llm {
namespace {

LlmOptions optionsFor(int year, std::uint64_t seed) {
  LlmOptions o;
  o.year = year;
  o.seed = seed;
  return o;
}

TEST(Archetypes, PoolHasExactlyTwelveStyles) {
  EXPECT_EQ(archetypePool().size(), kArchetypeCount);
  EXPECT_EQ(archetypePool().size(), 12u);
}

TEST(Archetypes, WeightsNormalizedPerYear) {
  for (const int year : {2017, 2018, 2019}) {
    const auto& w = archetypeWeights(year);
    ASSERT_EQ(w.size(), kArchetypeCount);
    double sum = 0.0;
    for (const double v : w) {
      EXPECT_GT(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_THROW(archetypeWeights(2020), std::out_of_range);
}

TEST(Archetypes, YearSkewMatchesPaperShape) {
  // 2017 near-degenerate; 2018 top-3 ~2/3; 2019 top-2 ~0.59.
  EXPECT_GT(archetypeWeights(2017)[0], 0.7);
  const auto& w18 = archetypeWeights(2018);
  EXPECT_NEAR(w18[0] + w18[1] + w18[2], 0.665, 0.05);
  const auto& w19 = archetypeWeights(2019);
  EXPECT_NEAR(w19[0] + w19[1], 0.586, 0.05);
}

TEST(SyntheticLlm, GenerateIsParseableAndDeterministic) {
  const auto& ch = corpus::challengeById("race");
  SyntheticLlm a(optionsFor(2018, 5));
  SyntheticLlm b(optionsFor(2018, 5));
  const std::string s1 = a.generate(ch);
  const std::string s2 = b.generate(ch);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(ast::parse(s1).clean);
  EXPECT_EQ(a.callCount(), 1u);
}

TEST(SyntheticLlm, TransformPreservesIoShape) {
  const auto& ch = corpus::challengeById("pace");
  SyntheticLlm llm(optionsFor(2018, 9));
  const std::string original = llm.generate(ch);
  const ast::ParseResult before = ast::parse(original);
  std::size_t beforeReads = 0, beforeWrites = 0;
  ast::forEachStmt(before.unit, [&](const ast::Stmt& s) {
    if (s.is<ast::ReadStmt>()) ++beforeReads;
    if (s.is<ast::WriteStmt>()) ++beforeWrites;
  });
  for (int i = 0; i < 10; ++i) {
    const std::string transformed = llm.transform(original);
    const ast::ParseResult after = ast::parse(transformed);
    EXPECT_TRUE(after.clean);
    std::size_t reads = 0, writes = 0;
    ast::forEachStmt(after.unit, [&](const ast::Stmt& s) {
      if (s.is<ast::ReadStmt>()) ++reads;
      if (s.is<ast::WriteStmt>()) ++writes;
    });
    EXPECT_EQ(reads, beforeReads) << transformed;
    EXPECT_EQ(writes, beforeWrites) << transformed;
  }
}

TEST(SyntheticLlm, TransformChangesSurfaceText) {
  const auto& ch = corpus::challengeById("votes");
  SyntheticLlm llm(optionsFor(2019, 3));
  const std::string original = llm.generate(ch);
  std::size_t changed = 0;
  for (int i = 0; i < 8; ++i) {
    if (llm.transform(original) != original) ++changed;
  }
  EXPECT_GE(changed, 6u);
}

TEST(SyntheticLlm, BoundedStyleRepertoire) {
  // Any number of generations uses at most the 12 archetypes.
  const auto& ch = corpus::challengeById("budget");
  SyntheticLlm llm(optionsFor(2018, 21));
  std::set<std::size_t> archetypes;
  for (int i = 0; i < 60; ++i) {
    (void)llm.generate(ch);
    archetypes.insert(llm.lastArchetype());
  }
  EXPECT_LE(archetypes.size(), kArchetypeCount);
  EXPECT_GE(archetypes.size(), 3u);  // 2018 weights are spread out
}

TEST(SyntheticLlm, Year2017IsNearDegenerate) {
  const auto& ch = corpus::challengeById("race");
  SyntheticLlm llm(optionsFor(2017, 33));
  std::size_t dominant = 0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    (void)llm.generate(ch);
    if (llm.lastArchetype() == 0) ++dominant;
  }
  EXPECT_GT(static_cast<double>(dominant) / n, 0.55);
}

TEST(SyntheticLlm, FamiliarInputSticks) {
  // Transforming the LLM's own output should mostly stay in-repertoire
  // near the source archetype; transforming exotic human code should
  // scatter more (Table IV's +N vs ~N asymmetry).
  const auto& ch = corpus::challengeById("race");
  SyntheticLlm gen(optionsFor(2018, 41));
  const std::string own = gen.generate(ch);

  corpus::Author exotic;
  exotic.id = 0;
  exotic.profile.naming = style::NamingConvention::HungarianLite;
  exotic.profile.verbosity = style::Verbosity::Long;
  exotic.profile.useTabs = true;
  exotic.profile.allmanBraces = true;
  exotic.profile.ioStyle = ast::IoStyle::Stdio;
  exotic.profile.spaceAroundOps = false;
  exotic.profile.spaceAfterComma = false;
  const std::string human = corpus::renderSolution(exotic, ch, 2018, 0);

  SyntheticLlm llmOwn(optionsFor(2018, 43));
  SyntheticLlm llmHuman(optionsFor(2018, 43));
  std::set<std::size_t> ownStyles, humanStyles;
  for (int i = 0; i < 25; ++i) {
    (void)llmOwn.transform(own);
    ownStyles.insert(llmOwn.lastArchetype());
    (void)llmHuman.transform(human);
    humanStyles.insert(llmHuman.lastArchetype());
  }
  EXPECT_LE(ownStyles.size(), humanStyles.size());
}

TEST(SyntheticLlm, ConversationStickinessMakesChainsConverge) {
  // Feeding the model's own previous output back (what CT does) almost
  // always keeps the style; fresh NCT calls on the original explore more.
  const auto& ch = corpus::challengeById("pace");
  SyntheticLlm gen(optionsFor(2018, 60));
  const std::string original = gen.generate(ch);

  SyntheticLlm ct(optionsFor(2018, 61));
  std::set<std::size_t> ctStyles;
  std::string current = original;
  for (int i = 0; i < 30; ++i) {
    current = ct.transform(current);
    ctStyles.insert(ct.lastArchetype());
  }
  SyntheticLlm nct(optionsFor(2018, 61));
  std::set<std::size_t> nctStyles;
  for (int i = 0; i < 30; ++i) {
    (void)nct.transform(original);
    nctStyles.insert(nct.lastArchetype());
  }
  EXPECT_LE(ctStyles.size(), nctStyles.size());
  EXPECT_LE(ctStyles.size(), 4u);  // chains absorb quickly
}

TEST(SyntheticLlm, EmissionsCarryTheAccentStatistically) {
  // The accent is a statistical habit (per-emission sloppiness is
  // intentional): each property must hold on the overwhelming majority of
  // emissions, not necessarily all.
  const auto& ch = corpus::challengeById("tidy");  // long enough program
  SyntheticLlm llm(optionsFor(2019, 70));
  const int n = 12;
  int noTabs = 0, noBits = 0, spaced = 0, commented = 0;
  for (int i = 0; i < n; ++i) {
    const std::string out = llm.generate(ch);
    const style::StyleProfile p = style::inferProfileFromSource(out);
    if (!p.useTabs) ++noTabs;
    if (!p.useBitsHeader) ++noBits;
    if (p.spaceAroundOps) ++spaced;
    if (p.commentDensity > 0.0) ++commented;
  }
  EXPECT_GE(noTabs, n - 2);
  EXPECT_GE(noBits, n - 2);
  EXPECT_GE(spaced, n - 2);
  EXPECT_GE(commented, n - 3);
}

TEST(SyntheticLlm, LastWasStayReflectsPath) {
  const auto& ch = corpus::challengeById("race");
  SyntheticLlm llm(optionsFor(2017, 80));
  (void)llm.generate(ch);
  EXPECT_FALSE(llm.lastWasStay());
  // Chained input == last output: overwhelmingly a stay.
  std::string current = llm.generate(ch);
  int stays = 0;
  for (int i = 0; i < 20; ++i) {
    current = llm.transform(current);
    if (llm.lastWasStay()) ++stays;
  }
  EXPECT_GE(stays, 16);
}

TEST(Pipelines, HumanAuthorPickFollowsYearRegime) {
  // 2017 picks an archetype-familiar author; 2018/2019 pick distant ones.
  const corpus::YearDataset y2017 = corpus::buildYearDataset(2017, 204);
  const corpus::YearDataset y2018 = corpus::buildYearDataset(2018, 204);
  const TransformedDataset t2017 = buildTransformedDataset(y2017, 1);
  const TransformedDataset t2018 = buildTransformedDataset(y2018, 1);
  const double d2017 = style::nearestArchetype(
      y2017.authors[static_cast<std::size_t>(t2017.humanAuthorId)].profile)
      .distance;
  const double d2018 = style::nearestArchetype(
      y2018.authors[static_cast<std::size_t>(t2018.humanAuthorId)].profile)
      .distance;
  EXPECT_LT(d2017, d2018);
}

TEST(Pipelines, SettingLabels) {
  EXPECT_EQ(settingLabel(Setting::ChatGptNct), "+N");
  EXPECT_EQ(settingLabel(Setting::HumanCt), "~C");
  EXPECT_EQ(allSettings().size(), 4u);
}

TEST(Pipelines, NctAlwaysRestartsFromOriginal) {
  const auto& ch = corpus::challengeById("steps");
  SyntheticLlm gen(optionsFor(2018, 50));
  const std::string original = gen.generate(ch);
  SyntheticLlm llm(optionsFor(2018, 51));
  const auto outputs = nonChainingTransform(llm, original, 6);
  ASSERT_EQ(outputs.size(), 6u);
  for (const std::string& out : outputs) {
    EXPECT_TRUE(ast::parse(out).clean);
  }
}

TEST(Pipelines, CtChainsOutputs) {
  const auto& ch = corpus::challengeById("steps");
  SyntheticLlm gen(optionsFor(2019, 52));
  const std::string original = gen.generate(ch);
  SyntheticLlm llm(optionsFor(2019, 53));
  const auto outputs = chainingTransform(llm, original, 6);
  ASSERT_EQ(outputs.size(), 6u);
  for (const std::string& out : outputs) {
    EXPECT_TRUE(ast::parse(out).clean);
  }
  EXPECT_EQ(llm.callCount(), 6u);
}

TEST(Pipelines, TransformedDatasetShapeMatchesTableTwo) {
  const corpus::YearDataset year = corpus::buildYearDataset(2017, 8);
  const TransformedDataset ds = buildTransformedDataset(year, 5);
  EXPECT_EQ(ds.year, 2017);
  EXPECT_EQ(ds.chatgptOriginals.size(), 8u);
  EXPECT_EQ(ds.humanOriginals.size(), 8u);
  // 4 settings x 5 steps x 8 challenges
  EXPECT_EQ(ds.samples.size(), 4u * 5u * 8u);
  EXPECT_GE(ds.humanAuthorId, 0);
  EXPECT_LT(ds.humanAuthorId, 8);
  std::size_t perSetting[4] = {0, 0, 0, 0};
  for (const TransformedSample& sample : ds.samples) {
    ++perSetting[static_cast<int>(sample.setting)];
    EXPECT_GE(sample.step, 1);
    EXPECT_LE(sample.step, 5);
  }
  for (const std::size_t count : perSetting) EXPECT_EQ(count, 40u);
}

TEST(Pipelines, TransformedDatasetDeterministic) {
  const corpus::YearDataset year = corpus::buildYearDataset(2018, 4);
  const TransformedDataset a = buildTransformedDataset(year, 3);
  const TransformedDataset b = buildTransformedDataset(year, 3);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].source, b.samples[i].source);
  }
}

}  // namespace
}  // namespace sca::llm
