#include <gtest/gtest.h>

#include "lexer/layout.hpp"

namespace sca::lexer {
namespace {

TEST(Layout, CountsLinesAndBlanks) {
  const auto m = computeLayoutMetrics("int a;\n\nint b;\n");
  EXPECT_EQ(m.lineCount, 3u);
  EXPECT_EQ(m.blankLines, 1u);
  EXPECT_NEAR(m.blankLineRatio(), 1.0 / 3.0, 1e-9);
}

TEST(Layout, EmptySourceIsAllZero) {
  const auto m = computeLayoutMetrics("");
  EXPECT_EQ(m.lineCount, 0u);
  EXPECT_DOUBLE_EQ(m.blankLineRatio(), 0.0);
  EXPECT_DOUBLE_EQ(m.commentCharRatio(), 0.0);
}

TEST(Layout, CommentAccounting) {
  const auto m = computeLayoutMetrics("// four\nint x; /* abc */\n");
  EXPECT_EQ(m.lineComments, 1u);
  EXPECT_EQ(m.blockComments, 1u);
  EXPECT_GT(m.commentChars, 10u);
}

TEST(Layout, IndentWidthHistogram) {
  const std::string src =
      "int main() {\n"
      "    int a;\n"
      "    if (a) {\n"
      "        a = 1;\n"
      "    }\n"
      "}\n";
  const auto m = computeLayoutMetrics(src);
  EXPECT_EQ(m.indentWidth4, 3u);  // "int a;", "if...", "}"
  EXPECT_EQ(m.indentWidth8, 1u);
  EXPECT_EQ(m.tabIndentedLines, 0u);
}

TEST(Layout, TabIndentDetection) {
  const auto m = computeLayoutMetrics("x;\n\ta;\n\tb;\n");
  EXPECT_EQ(m.tabIndentedLines, 2u);
  EXPECT_DOUBLE_EQ(m.tabIndentRatio(), 1.0);
}

TEST(Layout, BracePlacementKnRVsAllman) {
  const auto knr = computeLayoutMetrics("int f() {\n  return 0;\n}\n");
  EXPECT_EQ(knr.bracesEndOfLine, 1u);
  EXPECT_EQ(knr.bracesOwnLine, 0u);
  const auto allman = computeLayoutMetrics("int f()\n{\n  return 0;\n}\n");
  EXPECT_EQ(allman.bracesOwnLine, 1u);
  EXPECT_DOUBLE_EQ(allman.allmanBraceRatio(), 1.0);
}

TEST(Layout, SpacedVsTightOperators) {
  const auto spaced = computeLayoutMetrics("x = a + b;\ny = c * d;\n");
  EXPECT_GT(spaced.spacedBinaryOps, 0u);
  EXPECT_EQ(spaced.tightBinaryOps, 0u);
  const auto tight = computeLayoutMetrics("x=a+b;\ny=c*d;\n");
  EXPECT_GT(tight.tightBinaryOps, 0u);
  EXPECT_EQ(tight.spacedBinaryOps, 0u);
}

TEST(Layout, CommaSpacing) {
  const auto m = computeLayoutMetrics("f(a, b,c);\n");
  EXPECT_EQ(m.spaceAfterComma, 1u);
  EXPECT_EQ(m.noSpaceAfterComma, 1u);
}

TEST(Layout, KeywordParenSpacing) {
  const auto m = computeLayoutMetrics("if (a) {}\nwhile(b) {}\nfor (;;) {}\n");
  EXPECT_EQ(m.spaceAfterKeyword, 2u);
  EXPECT_EQ(m.noSpaceAfterKeyword, 1u);
}

TEST(Layout, OperatorsInsideStringsIgnored) {
  const auto m = computeLayoutMetrics("s = \"a+b, c\";\n");
  EXPECT_EQ(m.tightBinaryOps, 0u);
  EXPECT_EQ(m.noSpaceAfterComma, 0u);
}

TEST(Layout, OperatorsInsideCommentsIgnored) {
  const auto m = computeLayoutMetrics("// a+b\nx = 1;\n/* c,d */\n");
  EXPECT_EQ(m.tightBinaryOps, 0u);
  EXPECT_EQ(m.noSpaceAfterComma, 0u);
}

TEST(Layout, LineLengthStats) {
  const auto m = computeLayoutMetrics("abcd\nab\n");
  EXPECT_EQ(m.maxLineLength, 4u);
  EXPECT_NEAR(m.meanLineLength, 3.0, 1e-9);
}

TEST(Layout, UnaryMinusNotCountedAsBinaryOp) {
  const auto m = computeLayoutMetrics("x = -1;\ny = (-z);\n");
  EXPECT_EQ(m.tightBinaryOps, 0u);
}

}  // namespace
}  // namespace sca::lexer
