#include <gtest/gtest.h>

#include "ast/parser.hpp"
#include "ast/visit.hpp"

namespace sca::ast {
namespace {

ParseResult parseClean(std::string_view src) {
  ParseResult result = parse(src);
  EXPECT_TRUE(result.clean) << "warnings: "
                            << (result.warnings.empty()
                                    ? ""
                                    : result.warnings.front());
  return result;
}

// Id-dereference helpers: nodes live in the unit's arena.
const Stmt& at(const ParseResult& r, StmtId id) { return r.unit.arena[id]; }
const Expr& at(const ParseResult& r, ExprId id) { return r.unit.arena[id]; }

// Statement `i` of the first function's body.
const Stmt& stmtAt(const ParseResult& r, std::size_t i) {
  return at(r, r.unit.functions[0].body.stmts[i]);
}

TEST(Parser, IncludesAndUsingNamespace) {
  const auto r = parseClean(
      "#include <iostream>\n#include <vector>\nusing namespace std;\n"
      "int main() { return 0; }\n");
  ASSERT_EQ(r.unit.includes.size(), 2u);
  EXPECT_EQ(r.unit.includes[0], "iostream");
  EXPECT_TRUE(r.unit.usingNamespaceStd);
  ASSERT_EQ(r.unit.functions.size(), 1u);
  EXPECT_EQ(r.unit.functions[0].name, "main");
}

TEST(Parser, TypedefAndUsingAliases) {
  const auto r = parseClean(
      "typedef long long ll;\nusing vi = vector<int>;\n"
      "int main() { ll x = 5; return 0; }\n");
  ASSERT_EQ(r.unit.aliases.size(), 2u);
  EXPECT_EQ(r.unit.aliases[0].name, "ll");
  EXPECT_TRUE(r.unit.aliases[0].usesTypedef);
  EXPECT_EQ(r.unit.aliases[0].aliased.base, BaseType::LongLong);
  EXPECT_EQ(r.unit.aliases[1].name, "vi");
  EXPECT_TRUE(r.unit.aliases[1].aliased.isVector);
  // "ll x" resolves through the alias:
  const auto& decl = stmtAt(r, 0).as<VarDeclStmt>();
  EXPECT_EQ(decl.type.base, BaseType::LongLong);
}

TEST(Parser, MultiDeclaratorAndArray) {
  const auto r = parseClean("int main() { int a = 1, b, c[10]; return 0; }\n");
  const auto& decl = stmtAt(r, 0).as<VarDeclStmt>();
  ASSERT_EQ(decl.decls.size(), 3u);
  EXPECT_TRUE(bool(decl.decls[0].init));
  EXPECT_FALSE(bool(decl.decls[1].init));
  EXPECT_TRUE(bool(decl.decls[2].arraySize));
}

TEST(Parser, VectorWithConstructorSize) {
  const auto r =
      parseClean("int main() { int n = 3; vector<int> v(n); return 0; }\n");
  const auto& decl = stmtAt(r, 1).as<VarDeclStmt>();
  EXPECT_TRUE(decl.type.isVector);
  ASSERT_EQ(decl.decls.size(), 1u);
  EXPECT_TRUE(bool(decl.decls[0].init));
}

TEST(Parser, CinChainBecomesReadStmtWithTypes) {
  const auto r = parseClean(
      "int main() { int a; double d; cin >> a >> d; return 0; }\n");
  const auto& read = stmtAt(r, 2).as<ReadStmt>();
  ASSERT_EQ(read.targets.size(), 2u);
  EXPECT_EQ(read.targets[0].type.base, BaseType::Int);
  EXPECT_EQ(read.targets[1].type.base, BaseType::Double);
}

TEST(Parser, ScanfBecomesReadStmt) {
  const auto r = parseClean(
      "int main() { int a; long long b; scanf(\"%d %lld\", &a, &b); "
      "return 0; }\n");
  const auto& read = stmtAt(r, 2).as<ReadStmt>();
  ASSERT_EQ(read.targets.size(), 2u);
  EXPECT_EQ(read.targets[1].type.base, BaseType::LongLong);
}

TEST(Parser, CoutChainBecomesWriteStmt) {
  const auto r = parseClean(
      "int main() { int i = 1; double x = 2; "
      "cout << \"Case #\" << i << \": \" << fixed << setprecision(6) << x "
      "<< \"\\n\"; return 0; }\n");
  const auto& write = stmtAt(r, 2).as<WriteStmt>();
  EXPECT_TRUE(write.trailingNewline);
  ASSERT_EQ(write.items.size(), 4u);
  EXPECT_TRUE(write.items[0].isLiteral);
  EXPECT_EQ(write.items[0].literal, "Case #");
  EXPECT_FALSE(write.items[1].isLiteral);
  EXPECT_EQ(write.items[1].type.base, BaseType::Int);
  EXPECT_EQ(write.items[3].precision, 6);
}

TEST(Parser, EndlFoldsToTrailingNewline) {
  const auto r =
      parseClean("int main() { int i = 0; cout << i << endl; return 0; }\n");
  const auto& write = stmtAt(r, 1).as<WriteStmt>();
  EXPECT_TRUE(write.trailingNewline);
  ASSERT_EQ(write.items.size(), 1u);
}

TEST(Parser, PrintfBecomesWriteStmt) {
  const auto r = parseClean(
      "int main() { int i = 1; double x = 0.5; "
      "printf(\"Case #%d: %.6lf\\n\", i, x); return 0; }\n");
  const auto& write = stmtAt(r, 2).as<WriteStmt>();
  EXPECT_TRUE(write.trailingNewline);
  ASSERT_EQ(write.items.size(), 4u);
  EXPECT_EQ(write.items[0].literal, "Case #");
  EXPECT_EQ(write.items[1].type.base, BaseType::Int);
  EXPECT_EQ(write.items[2].literal, ": ");
  EXPECT_EQ(write.items[3].type.base, BaseType::Double);
  EXPECT_EQ(write.items[3].precision, 6);
}

TEST(Parser, PrintfPercentEscape) {
  const auto r = parseClean(
      "int main() { int p = 50; printf(\"%d%%\\n\", p); return 0; }\n");
  const auto& write = stmtAt(r, 1).as<WriteStmt>();
  ASSERT_EQ(write.items.size(), 2u);
  EXPECT_EQ(write.items[1].literal, "%");
}

TEST(Parser, ControlFlowShapes) {
  const auto r = parseClean(
      "int main() {\n"
      "  for (int i = 0; i < 3; i++) { continue; }\n"
      "  int j = 0;\n"
      "  while (j < 2) { j++; }\n"
      "  do { j--; } while (j > 0);\n"
      "  if (j == 0) { return 1; } else if (j == 1) { return 2; } else { "
      "return 3; }\n"
      "}\n");
  EXPECT_TRUE(stmtAt(r, 0).is<ForStmt>());
  EXPECT_TRUE(stmtAt(r, 2).is<WhileStmt>());
  EXPECT_TRUE(stmtAt(r, 3).is<DoWhileStmt>());
  EXPECT_TRUE(stmtAt(r, 4).is<IfStmt>());
  const auto& ifNode = stmtAt(r, 4).as<IfStmt>();
  ASSERT_TRUE(bool(ifNode.elseBranch));
  EXPECT_TRUE(at(r, ifNode.elseBranch).is<IfStmt>());
}

TEST(Parser, UnbracedBodiesCanonicalizedToBlocks) {
  const auto r = parseClean(
      "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i;\n"
      "if (s > 3) s = 3; return s; }\n");
  const auto& loop = stmtAt(r, 1).as<ForStmt>();
  ASSERT_TRUE(at(r, loop.body).is<BlockStmt>());
  EXPECT_EQ(at(r, loop.body).as<BlockStmt>().stmts.size(), 1u);
}

TEST(Parser, ExpressionPrecedence) {
  const auto r = parseClean("int main() { int x = 1 + 2 * 3; return x; }\n");
  const auto& decl = stmtAt(r, 0).as<VarDeclStmt>();
  const auto& add = at(r, decl.decls[0].init).as<Binary>();
  EXPECT_EQ(add.op, BinaryOp::Add);
  EXPECT_EQ(at(r, add.rhs).as<Binary>().op, BinaryOp::Mul);
}

TEST(Parser, TernaryAndCasts) {
  const auto r = parseClean(
      "int main() { int a = 1; double d = (double)a / double(2); "
      "int m = a > 0 ? a : -a; return m; }\n");
  const auto& dDecl = stmtAt(r, 1).as<VarDeclStmt>();
  const auto& division = at(r, dDecl.decls[0].init).as<Binary>();
  EXPECT_TRUE(at(r, division.lhs).is<Cast>());
  EXPECT_FALSE(at(r, division.lhs).as<Cast>().functionalStyle);
  EXPECT_TRUE(at(r, division.rhs).is<Cast>());
  EXPECT_TRUE(at(r, division.rhs).as<Cast>().functionalStyle);
  const auto& mDecl = stmtAt(r, 2).as<VarDeclStmt>();
  EXPECT_TRUE(at(r, mDecl.decls[0].init).is<Ternary>());
}

TEST(Parser, MemberCallsFoldToDottedCallee) {
  const auto r = parseClean(
      "int main() { vector<int> v; v.push_back(4); int n = v.size(); "
      "return n; }\n");
  const auto& callStmt = stmtAt(r, 1).as<ExprStmt>();
  EXPECT_EQ(at(r, callStmt.expr).as<Call>().callee, "v.push_back");
}

TEST(Parser, StdQualifiersFoldAway) {
  const auto r = parseClean(
      "#include <iostream>\nint main() { int x; std::cin >> x; "
      "std::cout << std::max(x, 2) << \"\\n\"; return 0; }\n");
  EXPECT_FALSE(r.unit.usingNamespaceStd);
  EXPECT_TRUE(stmtAt(r, 1).is<ReadStmt>());
  EXPECT_TRUE(stmtAt(r, 2).is<WriteStmt>());
  EXPECT_EQ(
      at(r, stmtAt(r, 2).as<WriteStmt>().items[0].expr).as<Call>().callee,
      "max");
}

TEST(Parser, FunctionWithParamsAndReferences) {
  const auto r = parseClean(
      "void solve(int n, vector<int>& v) { v.push_back(n); }\n"
      "int main() { return 0; }\n");
  const auto& fn = r.unit.functions[0];
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_FALSE(fn.params[0].byReference);
  EXPECT_TRUE(fn.params[1].byReference);
  EXPECT_TRUE(fn.params[1].type.isVector);
}

TEST(Parser, CommentsAttachAsStatements) {
  const auto r = parseClean(
      "int main() {\n  // read input\n  int x;\n  return 0;\n}\n");
  ASSERT_GE(r.unit.functions[0].body.stmts.size(), 3u);
  EXPECT_TRUE(stmtAt(r, 0).is<CommentStmt>());
  EXPECT_EQ(stmtAt(r, 0).as<CommentStmt>().text, " read input");
}

TEST(Parser, HeaderCommentCaptured) {
  const auto r = parse(
      "/* My solution */\n#include <iostream>\nint main() { return 0; }\n");
  EXPECT_EQ(r.unit.headerComment, " My solution ");
}

TEST(Parser, GlobalVariablesKept) {
  const auto r = parseClean("int cache[100];\nint main() { return 0; }\n");
  ASSERT_EQ(r.unit.globals.size(), 1u);
  EXPECT_TRUE(at(r, r.unit.globals[0]).is<VarDeclStmt>());
}

TEST(Parser, UnknownStatementDegradesToOpaque) {
  const auto r = parse(
      "int main() { goto done; done: return 0; }\n");
  EXPECT_FALSE(r.clean);
  bool sawOpaque = false;
  forEachStmt(r.unit, [&](const Stmt& s) {
    if (s.is<OpaqueStmt>()) sawOpaque = true;
  });
  EXPECT_TRUE(sawOpaque);
  // The function itself still parsed.
  ASSERT_EQ(r.unit.functions.size(), 1u);
}

TEST(Parser, NeverThrowsOnGarbage) {
  EXPECT_NO_THROW({ auto r = parse("$$$ 1 2 3 }{ ++;; \"unterminated"); });
  EXPECT_NO_THROW({ auto r = parse(""); });
  EXPECT_NO_THROW({ auto r = parse("int main() {"); });
}

TEST(Parser, CompoundAssignOps) {
  const auto r = parseClean(
      "int main() { int x = 0; x += 2; x -= 1; x *= 3; x /= 2; x %= 5; "
      "return x; }\n");
  EXPECT_EQ(at(r, stmtAt(r, 1).as<ExprStmt>().expr).as<Assign>().op,
            AssignOp::AddAssign);
  EXPECT_EQ(at(r, stmtAt(r, 5).as<ExprStmt>().expr).as<Assign>().op,
            AssignOp::ModAssign);
}

TEST(Parser, VectorOfLongLongAndAliasedVectors) {
  const auto r = parseClean(
      "typedef long long ll;\nusing vll = vector<ll>;\n"
      "int main() { vector<long long> a; vll b; ll x = 0; "
      "a.push_back(x); b.push_back(x); return 0; }\n");
  const auto& aDecl = stmtAt(r, 0).as<VarDeclStmt>();
  EXPECT_TRUE(aDecl.type.isVector);
  EXPECT_EQ(aDecl.type.base, BaseType::LongLong);
  const auto& bDecl = stmtAt(r, 1).as<VarDeclStmt>();
  EXPECT_TRUE(bDecl.type.isVector);
  EXPECT_EQ(bDecl.type.base, BaseType::LongLong);
}

TEST(Parser, UnbracedDoWhileBody) {
  const auto r = parseClean(
      "int main() { int i = 3; do i--; while (i > 0); return i; }\n");
  const auto& loop = stmtAt(r, 1).as<DoWhileStmt>();
  ASSERT_TRUE(at(r, loop.body).is<BlockStmt>());
  EXPECT_EQ(at(r, loop.body).as<BlockStmt>().stmts.size(), 1u);
}

TEST(Parser, EmptyForClauses) {
  const auto r = parseClean(
      "int main() { int i = 0; for (;;) { i++; if (i > 3) { break; } } "
      "for (; i > 0; ) { i--; } return i; }\n");
  const auto& infinite = stmtAt(r, 1).as<ForStmt>();
  EXPECT_FALSE(bool(infinite.init));
  EXPECT_FALSE(bool(infinite.cond));
  EXPECT_FALSE(bool(infinite.step));
  const auto& condOnly = stmtAt(r, 2).as<ForStmt>();
  EXPECT_FALSE(bool(condOnly.init));
  EXPECT_TRUE(bool(condOnly.cond));
}

TEST(Parser, NestedTernary) {
  const auto r = parseClean(
      "int main() { int a = 5; int s = a > 0 ? 1 : a < 0 ? -1 : 0; "
      "return s; }\n");
  const auto& decl = stmtAt(r, 1).as<VarDeclStmt>();
  const auto& outer = at(r, decl.decls[0].init).as<Ternary>();
  EXPECT_TRUE(at(r, outer.elseExpr).is<Ternary>());
}

TEST(Parser, LogicalPrecedence) {
  const auto r = parseClean(
      "int main() { int a = 1, b = 0; bool x = a > 0 && b > 0 || a < 0; "
      "return x; }\n");
  const auto& decl = stmtAt(r, 1).as<VarDeclStmt>();
  const auto& orNode = at(r, decl.decls[0].init).as<Binary>();
  EXPECT_EQ(orNode.op, BinaryOp::LogicalOr);
  EXPECT_EQ(at(r, orNode.lhs).as<Binary>().op, BinaryOp::LogicalAnd);
}

TEST(Parser, GetlineRemainsPlainCall) {
  const auto r = parseClean(
      "int main() { string line; getline(cin, line); return 0; }\n");
  const auto& stmt = stmtAt(r, 1).as<ExprStmt>();
  EXPECT_EQ(at(r, stmt.expr).as<Call>().callee, "getline");
}

TEST(Parser, CoutWithArithmeticItem) {
  // "cout << a + b << x * 2" must split items at "<<", not fold them into
  // shift expressions.
  const auto r = parseClean(
      "int main() { int a = 1, b = 2; cout << a + b << \" \" << a * 2 "
      "<< \"\\n\"; return 0; }\n");
  const auto& write = stmtAt(r, 1).as<WriteStmt>();
  ASSERT_EQ(write.items.size(), 3u);
  EXPECT_TRUE(at(r, write.items[0].expr).is<Binary>());
  EXPECT_EQ(at(r, write.items[0].expr).as<Binary>().op, BinaryOp::Add);
  EXPECT_EQ(at(r, write.items[2].expr).as<Binary>().op, BinaryOp::Mul);
}

TEST(Parser, BreakAndContinue) {
  const auto r = parseClean(
      "int main() { while (true) { break; } for (;;) { continue; } "
      "return 0; }\n");
  EXPECT_TRUE(r.clean);
}

}  // namespace
}  // namespace sca::ast
