#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "lexer/token.hpp"
#include "corpus/challenges.hpp"
#include "style/apply.hpp"
#include "style/infer.hpp"
#include "style/naming.hpp"
#include "style/profile.hpp"

namespace sca::style {
namespace {

StyleProfile defaultProfile() { return StyleProfile{}; }

TEST(Profile, RenderOptionsMirrorLayoutDims) {
  StyleProfile p;
  p.indentWidth = 2;
  p.useTabs = true;
  p.allmanBraces = true;
  p.ioStyle = ast::IoStyle::Stdio;
  p.useEndl = true;
  const ast::RenderOptions opt = p.renderOptions();
  EXPECT_EQ(opt.indentWidth, 2);
  EXPECT_TRUE(opt.useTabs);
  EXPECT_TRUE(opt.allmanBraces);
  EXPECT_EQ(opt.ioStyle, ast::IoStyle::Stdio);
  EXPECT_TRUE(opt.useEndl);
}

TEST(Profile, DistanceZeroForIdentical) {
  EXPECT_DOUBLE_EQ(StyleProfile::distance(defaultProfile(), defaultProfile()),
                   0.0);
}

TEST(Profile, DistanceGrowsWithDifferences) {
  StyleProfile a;
  StyleProfile b;
  b.naming = NamingConvention::SnakeCase;
  const double one = StyleProfile::distance(a, b);
  b.allmanBraces = !b.allmanBraces;
  b.ioStyle = ast::IoStyle::Stdio;
  const double three = StyleProfile::distance(a, b);
  EXPECT_GT(one, 0.0);
  EXPECT_GT(three, one);
  EXPECT_LE(three, 1.0);
}

TEST(Profile, SampleIsDeterministicPerSeed) {
  util::Rng r1(99), r2(99);
  const StyleProfile a = sampleProfile(r1);
  const StyleProfile b = sampleProfile(r2);
  EXPECT_DOUBLE_EQ(StyleProfile::distance(a, b), 0.0);
}

TEST(Profile, SampleProducesVariety) {
  util::Rng rng(7);
  std::set<std::string> described;
  for (int i = 0; i < 60; ++i) {
    util::Rng sub = rng.derive(static_cast<std::uint64_t>(i));
    described.insert(sampleProfile(sub).describe());
  }
  EXPECT_GT(described.size(), 30u);
}

TEST(Profile, SampleKeepsInternalConsistency) {
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    util::Rng sub = rng.derive(static_cast<std::uint64_t>(i));
    const StyleProfile p = sampleProfile(sub);
    if (p.naming == NamingConvention::HungarianLite) {
      EXPECT_NE(p.verbosity, Verbosity::Short);
    }
    if (p.useBitsHeader) {
      EXPECT_EQ(p.ioStyle, ast::IoStyle::Iostream);
    }
    if (p.aliasLongLong) EXPECT_TRUE(p.widenToLongLong);
  }
}

// ---------------------------------------------------------------- naming --

TEST(Naming, ApplyConventionAllForms) {
  const std::vector<std::string> words = {"num", "test", "cases"};
  const ast::TypeRef intType{ast::BaseType::Int, false};
  EXPECT_EQ(applyConvention(words, NamingConvention::CamelCase, intType),
            "numTestCases");
  EXPECT_EQ(applyConvention(words, NamingConvention::SnakeCase, intType),
            "num_test_cases");
  EXPECT_EQ(applyConvention(words, NamingConvention::PascalCase, intType),
            "NumTestCases");
  EXPECT_EQ(applyConvention(words, NamingConvention::HungarianLite, intType),
            "nNumTestCases");
}

TEST(Naming, HungarianPrefixTracksType) {
  const std::vector<std::string> words = {"time"};
  EXPECT_EQ(applyConvention(words, NamingConvention::HungarianLite,
                            ast::TypeRef{ast::BaseType::Double, false}),
            "dTime");
  EXPECT_EQ(applyConvention(words, NamingConvention::HungarianLite,
                            ast::TypeRef{ast::BaseType::String, false}),
            "sTime");
  EXPECT_EQ(applyConvention(words, NamingConvention::HungarianLite,
                            ast::TypeRef{ast::BaseType::Int, true}),
            "vTime");
}

TEST(Naming, ShortenAndExpandInverseish) {
  EXPECT_EQ(shortenWord("number"), "num");
  EXPECT_EQ(expandWord("cnt"), "count");
  EXPECT_EQ(shortenWord("zebra"), "zebra");  // unknown short word unchanged
  EXPECT_EQ(shortenWord("elephant"), "ele"); // unknown long word prefixed
}

TEST(Naming, RestyleKeepsLoopCounters) {
  util::Rng rng(3);
  StyleProfile p;
  p.naming = NamingConvention::SnakeCase;
  EXPECT_EQ(restyleIdentifier("i", p, {ast::BaseType::Int, false}, rng), "i");
  EXPECT_EQ(restyleIdentifier("j", p, {ast::BaseType::Int, false}, rng), "j");
}

TEST(Naming, RestyleNeverEmitsKeyword) {
  util::Rng rng(5);
  StyleProfile p;
  p.naming = NamingConvention::Abbreviated;
  p.verbosity = Verbosity::Short;
  // "integer" shortens aggressively; result must not be a C++ keyword.
  for (const char* name : {"integer", "int_value", "forCount", "doStep"}) {
    const std::string out =
        restyleIdentifier(name, p, {ast::BaseType::Int, false}, rng);
    EXPECT_FALSE(lexer::isCppKeyword(out)) << out;
    EXPECT_FALSE(out.empty());
  }
}

TEST(Naming, RenameMapIsCollisionFree) {
  const auto& challenge = corpus::challengeById("race");
  util::Rng rng(17);
  StyleProfile p;
  p.naming = NamingConvention::Abbreviated;  // aggressive compression
  p.verbosity = Verbosity::Short;
  const auto renames = renameMapFor(challenge.ir, p, rng);
  std::set<std::string> produced;
  for (const auto& [from, to] : renames) {
    EXPECT_TRUE(produced.insert(to).second) << "duplicate target " << to;
    EXPECT_NE(to, "main");
  }
}

TEST(Naming, HabitualSynonymIsDeterministicPerSeed) {
  const std::string a = habitualSynonymFor("num", 42);
  const std::string b = habitualSynonymFor("num", 42);
  EXPECT_EQ(a, b);
  // Across many seeds the habit varies (it is a choice, not the identity).
  std::set<std::string> choices;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    choices.insert(habitualSynonymFor("num", seed));
  }
  EXPECT_GT(choices.size(), 1u);
}

TEST(Naming, NamingSeedMakesVocabularyPersistent) {
  // The same author must use the same synonym for the same concept across
  // different programs (different rng states).
  StyleProfile p;
  p.naming = NamingConvention::SnakeCase;
  p.namingSeed = 777;
  util::Rng rng1(1), rng2(2);
  const std::string first =
      restyleIdentifier("num_cases", p, {ast::BaseType::Int, false}, rng1);
  const std::string second =
      restyleIdentifier("num_cases", p, {ast::BaseType::Int, false}, rng2);
  EXPECT_EQ(first, second);
}

TEST(Naming, SynonymStaysInGroup) {
  util::Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const std::string synonym = synonymFor("num", rng);
    bool found = false;
    for (const auto& group : synonymGroups()) {
      if (std::find(group.begin(), group.end(), synonym) != group.end() &&
          std::find(group.begin(), group.end(), "num") != group.end()) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << synonym;
  }
}

// ----------------------------------------------------------------- apply --

TEST(Apply, StyleUnitDoesNotMutateInput) {
  const auto& challenge = corpus::challengeById("race");
  const std::string before = ast::render(challenge.ir, ast::RenderOptions{});
  util::Rng rng(31);
  StyleProfile p;
  p.naming = NamingConvention::PascalCase;
  (void)styleUnit(challenge.ir, p, rng);
  const std::string after = ast::render(challenge.ir, ast::RenderOptions{});
  EXPECT_EQ(before, after);
}

TEST(Apply, AppliedSourceParsesCleanly) {
  const auto& challenge = corpus::challengeById("tidy");
  util::Rng outer(37);
  for (int i = 0; i < 25; ++i) {
    util::Rng profileRng = outer.derive(static_cast<std::uint64_t>(i));
    const StyleProfile p = sampleProfile(profileRng);
    util::Rng applyRng = outer.derive(1000 + static_cast<std::uint64_t>(i));
    const std::string source = applyStyle(challenge.ir, p, applyRng);
    const ast::ParseResult r = ast::parse(source);
    EXPECT_TRUE(r.clean) << p.describe() << "\n" << source;
  }
}

TEST(Apply, ExtractSolveChangesFunctionCount) {
  const auto& challenge = corpus::challengeById("race");
  StyleProfile p;
  p.extractSolve = true;
  util::Rng rng(41);
  const ast::TranslationUnit styled = styleUnit(challenge.ir, p, rng);
  EXPECT_EQ(styled.functions.size(), 2u);
  StyleProfile q;
  q.extractSolve = false;
  util::Rng rng2(41);
  const ast::TranslationUnit flat = styleUnit(challenge.ir, q, rng2);
  EXPECT_EQ(flat.functions.size(), 1u);
}

TEST(Apply, CommentDensityProducesComments) {
  const auto& challenge = corpus::challengeById("pace");
  StyleProfile p;
  p.commentDensity = 0.9;
  util::Rng rng(43);
  const std::string source = applyStyle(challenge.ir, p, rng);
  EXPECT_NE(source.find("//"), std::string::npos);
}

// ----------------------------------------------------------------- infer --

TEST(Infer, RecoversCoreDimensions) {
  const auto& challenge = corpus::challengeById("race");
  StyleProfile p;
  p.naming = NamingConvention::SnakeCase;
  p.indentWidth = 2;
  p.allmanBraces = true;
  p.ioStyle = ast::IoStyle::Stdio;
  p.extractSolve = true;
  util::Rng rng(47);
  const std::string source = applyStyle(challenge.ir, p, rng);
  const StyleProfile inferred = inferProfileFromSource(source);
  EXPECT_EQ(inferred.naming, NamingConvention::SnakeCase);
  EXPECT_EQ(inferred.indentWidth, 2);
  EXPECT_TRUE(inferred.allmanBraces);
  EXPECT_EQ(inferred.ioStyle, ast::IoStyle::Stdio);
  EXPECT_TRUE(inferred.extractSolve);
}

TEST(Infer, RoundTripDistanceSmallerThanRandomPair) {
  const auto& challenge = corpus::challengeById("budget");
  util::Rng rng(53);
  double roundTrip = 0.0, crossPair = 0.0;
  const int trials = 12;
  for (int i = 0; i < trials; ++i) {
    util::Rng pr = rng.derive(static_cast<std::uint64_t>(i));
    const StyleProfile a = sampleProfile(pr);
    util::Rng pr2 = rng.derive(1000 + static_cast<std::uint64_t>(i));
    const StyleProfile b = sampleProfile(pr2);
    util::Rng ar = rng.derive(2000 + static_cast<std::uint64_t>(i));
    const std::string source = applyStyle(challenge.ir, a, ar);
    const StyleProfile inferred = inferProfileFromSource(source);
    roundTrip += StyleProfile::distance(a, inferred);
    crossPair += StyleProfile::distance(a, b);
  }
  EXPECT_LT(roundTrip / trials, crossPair / trials);
}

TEST(Infer, MutateRateZeroIsIdentity) {
  util::Rng rng(59);
  const StyleProfile p = sampleProfile(rng);
  util::Rng mr(61);
  const StyleProfile m = mutateProfile(p, mr, 0.0);
  EXPECT_DOUBLE_EQ(StyleProfile::distance(p, m), 0.0);
}

TEST(Infer, MutateRateOneChangesMostDimensions) {
  util::Rng rng(67);
  const StyleProfile p = sampleProfile(rng);
  util::Rng mr(71);
  const StyleProfile m = mutateProfile(p, mr, 1.0);
  EXPECT_GT(StyleProfile::distance(p, m), 0.2);
}

}  // namespace
}  // namespace sca::style
