// Tests for the JSONL serving loop: protocol parsing, admission /
// load-shedding, deadline budgets, shutdown semantics and the honesty of
// the drain record.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "corpus/challenges.hpp"
#include "llm/synthetic_llm.hpp"
#include "obs/log.hpp"
#include "serve/protocol.hpp"
#include "serve/report.hpp"
#include "serve/server.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sca::serve {
namespace {

constexpr int kYear = 2017;

ServerOptions smallServer(int shards = 1) {
  ServerOptions options;
  options.queueCapacity = 64;
  options.batchSize = 8;
  options.arrivalBurst = 8;
  options.year = kYear;
  options.fleet.shards = shards;
  options.fleet.year = kYear;
  return options;
}

std::vector<std::string> runLines(Server& server, const std::string& stream,
                                  ServeStats* stats) {
  std::istringstream in(stream);
  std::ostringstream out;
  *stats = server.run(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

std::string dataLine(const char* op, const std::string& id, long long chain,
                     long long deadlineSeconds = -1) {
  util::JsonObjectBuilder builder;
  builder.add("op", op);
  builder.add("id", id);
  builder.addInt("chain", chain);
  if (std::string_view(op) == "generate") {
    builder.addInt("challenge", 0);
  } else {
    builder.add("source", "int main() { return 0; }\n");
  }
  if (deadlineSeconds > 0) builder.addInt("deadline_s", deadlineSeconds);
  return builder.str() + "\n";
}

// -------------------------------------------------------------- protocol

TEST(Protocol, ParsesDataAndControlOps) {
  Request generate = parseRequest(
      R"({"op":"generate","id":"r1","chain":7,"challenge":3,"deadline_s":25})");
  EXPECT_EQ(generate.op, Op::kGenerate);
  EXPECT_EQ(generate.id, "r1");
  EXPECT_EQ(generate.chain, 7);
  EXPECT_EQ(generate.challenge, 3);
  EXPECT_EQ(generate.deadlineSeconds, 25);

  Request transform = parseRequest(
      R"({"op":"transform","id":"r2","chain":7,"source":"int x;"})");
  EXPECT_EQ(transform.op, Op::kTransform);
  EXPECT_EQ(transform.source, "int x;");
  EXPECT_EQ(transform.deadlineSeconds, -1);

  Request slow = parseRequest(
      R"({"op":"slow_shard","id":"c1","shard":2,"slowed":0})");
  EXPECT_EQ(slow.op, Op::kSlowShard);
  EXPECT_EQ(slow.shard, 2);
  EXPECT_FALSE(slow.slowed);
  EXPECT_TRUE(isControl(slow.op));

  Request shutdown = parseRequest(R"({"op":"shutdown","id":"c2"})");
  EXPECT_EQ(shutdown.op, Op::kShutdown);
  EXPECT_TRUE(isControl(shutdown.op));
  EXPECT_FALSE(isControl(Op::kGenerate));
}

TEST(Protocol, MalformedLinesComeBackInvalidWithRecoveredId) {
  Request garbage = parseRequest("not json at all");
  EXPECT_EQ(garbage.op, Op::kInvalid);
  EXPECT_FALSE(garbage.error.empty());

  // Missing required field: id is still recovered so the error response
  // correlates with the request.
  Request missing = parseRequest(R"({"op":"generate","id":"r9","chain":1})");
  EXPECT_EQ(missing.op, Op::kInvalid);
  EXPECT_EQ(missing.id, "r9");
  EXPECT_FALSE(missing.error.empty());

  Request unknownOp = parseRequest(R"({"op":"reboot","id":"r10"})");
  EXPECT_EQ(unknownOp.op, Op::kInvalid);
}

TEST(Protocol, ResponseBuildersEmitTheDocumentedSchema) {
  const std::string ok = okResponse("r1", "int x;", 2, 1.125);
  EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(ok.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(ok.find("\"sim_s\":1.125"), std::string::npos);

  const std::string error = errorResponse("r2", "timeout", "gone");
  EXPECT_NE(error.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(error.find("\"code\":\"timeout\""), std::string::npos);

  EXPECT_NE(overloadedResponse("r3").find("\"status\":\"overloaded\""),
            std::string::npos);
  EXPECT_NE(rejectedResponse("r4").find("\"status\":\"rejected\""),
            std::string::npos);
  const std::string ack = ackResponse("c1", Op::kKillShard);
  EXPECT_NE(ack.find("\"status\":\"ack\""), std::string::npos);
  EXPECT_NE(ack.find("\"op\":\"kill_shard\""), std::string::npos);
}

// Satellite: numeric fields are range-checked at parse time, and each
// rejection names the offending field so the client can fix the request.
TEST(Protocol, OutOfRangeNumericFieldsAreRejectedWithAReason) {
  const Request negChain = parseRequest(
      R"({"op":"transform","id":"r1","chain":-2,"source":"int x;"})");
  EXPECT_EQ(negChain.op, Op::kInvalid);
  EXPECT_NE(negChain.error.find("\"chain\" out of range"),
            std::string::npos);

  const Request negDeadline = parseRequest(
      R"({"op":"transform","id":"r2","chain":1,"source":"x","deadline_s":-5})");
  EXPECT_EQ(negDeadline.op, Op::kInvalid);
  EXPECT_NE(negDeadline.error.find("\"deadline_s\" out of range"),
            std::string::npos);

  const Request bigShard = parseRequest(
      R"({"op":"slow_shard","id":"c1","shard":9999})");
  EXPECT_EQ(bigShard.op, Op::kInvalid);
  EXPECT_NE(bigShard.error.find("\"shard\" out of range"),
            std::string::npos);

  const Request negChallenge = parseRequest(
      R"({"op":"generate","id":"r3","chain":0,"challenge":-1})");
  EXPECT_EQ(negChallenge.op, Op::kInvalid);
  EXPECT_NE(negChallenge.error.find("\"challenge\" out of range"),
            std::string::npos);

  // The structured invalid response carries the reason verbatim.
  const std::string response = invalidResponse("r2", negDeadline.error);
  EXPECT_NE(response.find("\"code\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(response.find("\"reason\":\"\\\"deadline_s\\\" out of range\""),
            std::string::npos);
}

TEST(Protocol, StatsParsesInlineAndTimingAppendsInPlace) {
  const Request stats = parseRequest(R"({"op":"stats","id":"s1"})");
  EXPECT_EQ(stats.op, Op::kStats);
  // stats is answered inline during admission, NOT a batch barrier like
  // the chaos controls — otherwise the queue it reports would always have
  // just been drained.
  EXPECT_FALSE(isControl(stats.op));

  const std::string timed = appendTimingField(
      okResponse("r1", "int x;", 0, 0.0), R"({"sim_s":0.0,"retries":0})");
  EXPECT_EQ(timed.back(), '}');
  EXPECT_NE(timed.find(",\"timing\":{\"sim_s\":0.0,\"retries\":0}}"),
            std::string::npos);
}

// ---------------------------------------------------------------- server

TEST(Server, ServesConversationsByteIdenticalToTheBareModel) {
  Server server(smallServer(/*shards=*/2));
  std::string stream;
  stream += dataLine("generate", "a0", 0);
  stream += dataLine("generate", "b0", 1);
  stream += dataLine("transform", "a1", 0);
  stream += dataLine("transform", "b1", 1);

  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_DOUBLE_EQ(stats.availabilityPct(), 100.0);

  // Chain 0's generate must equal the bare single-client model under the
  // serve-chain seed: sharding is invisible in the bytes.
  llm::LlmOptions options;
  options.year = kYear;
  options.seed = util::combine64(util::hash64("serve-chain"), 0);
  llm::SyntheticLlm bare(options);
  const auto challenges = corpus::challengesForYear(kYear);
  const std::string expected = bare.generate(*challenges.front());

  bool found = false;
  for (const std::string& line : lines) {
    std::string id;
    if (!util::jsonStringField(line, "id", &id) || id != "a0") continue;
    std::string output;
    ASSERT_TRUE(util::jsonStringField(line, "output", &output));
    EXPECT_EQ(output, expected);
    found = true;
  }
  EXPECT_TRUE(found);
  // Responses come back in request order; the drain record is last.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines.back().find("\"event\":\"drain\""), std::string::npos);
}

TEST(Server, ShedsExplicitlyWhenTheQueueIsFull) {
  ServerOptions options = smallServer();
  options.queueCapacity = 1;
  options.arrivalBurst = 8;
  Server server(options);

  std::string stream;
  for (int i = 0; i < 4; ++i) {
    stream += dataLine("transform", "r" + std::to_string(i), 0);
  }
  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);

  // One admitted per burst, the rest answered "overloaded" immediately —
  // never silently dropped.
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.shed, 3u);
  int overloaded = 0;
  for (const std::string& line : lines) {
    if (line.find("\"status\":\"overloaded\"") != std::string::npos) {
      ++overloaded;
    }
  }
  EXPECT_EQ(overloaded, 3);
  EXPECT_DOUBLE_EQ(stats.availabilityPct(), 25.0);
}

TEST(Server, ShutdownRejectsQueuedWorkAndDrains) {
  Server server(smallServer());
  std::string stream;
  stream += dataLine("transform", "r1", 0);
  stream += R"({"op":"shutdown","id":"c1"})" "\n";
  stream += dataLine("transform", "never_read", 0);

  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);
  // r1 was queued behind the shutdown barrier: refused explicitly, not
  // served into a closing window. The line after shutdown is never read.
  EXPECT_EQ(stats.ok, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"status\":\"rejected\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":\"r1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"ack\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"event\":\"drain\""), std::string::npos);
}

TEST(Server, DeadlineExceededIsAnHonestError) {
  // One shard, slowed before the request arrives: a 10-simulated-second
  // budget cannot cover even one slow attempt, so the caller gets an
  // explicit deadline_exceeded error rather than a hung stream.
  Server server(smallServer(/*shards=*/1));
  std::string stream;
  stream += R"({"op":"slow_shard","id":"c1","shard":0})" "\n";
  stream += dataLine("transform", "r1", 0, /*deadline_s=*/10);

  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);
  EXPECT_EQ(stats.ok, 0u);
  EXPECT_EQ(stats.errors, 1u);
  bool sawError = false;
  for (const std::string& line : lines) {
    if (line.find("\"id\":\"r1\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(line.find("deadline_exceeded"), std::string::npos);
    sawError = true;
  }
  EXPECT_TRUE(sawError);
}

TEST(Server, InvalidLinesAreAnsweredAndCounted) {
  Server server(smallServer());
  std::string stream = "garbage\n";
  stream += dataLine("transform", "r1", 0);

  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_NE(lines.front().find("invalid_argument"), std::string::npos);
}

TEST(Server, DrainRecordMatchesTheStatsItSummarizes) {
  ServerOptions options = smallServer();
  options.queueCapacity = 1;
  options.arrivalBurst = 8;
  Server server(options);
  std::string stream;
  for (int i = 0; i < 3; ++i) {
    stream += dataLine("transform", "r" + std::to_string(i), 0);
  }
  ServeStats stats;
  (void)runLines(server, stream, &stats);

  const std::string& drain = server.drainRecord();
  long long value = -1;
  ASSERT_TRUE(util::jsonIntField(drain, "ok", &value));
  EXPECT_EQ(value, static_cast<long long>(stats.ok));
  ASSERT_TRUE(util::jsonIntField(drain, "shed", &value));
  EXPECT_EQ(value, static_cast<long long>(stats.shed));
  ASSERT_TRUE(util::jsonIntField(drain, "requests", &value));
  EXPECT_EQ(value, static_cast<long long>(stats.requests));
  // The per-shard health report rides along.
  EXPECT_NE(drain.find("\"shards\":["), std::string::npos);
  EXPECT_NE(drain.find("\"availability_pct\""), std::string::npos);
}

// ------------------------------------------------------------- telemetry

TEST(Server, StatsOpReportsLiveStateInline) {
  Server server(smallServer(/*shards=*/2));
  std::string stream;
  stream += R"({"op":"stats","id":"s0"})" "\n";  // before any data
  stream += dataLine("generate", "r1", 0);
  stream += dataLine("transform", "r2", 0);
  // A control barrier forces the batch to process before s1 is read, so
  // the second snapshot observes completed work.
  stream += R"({"op":"slow_shard","id":"c1","shard":0,"slowed":0})" "\n";
  stream += R"({"op":"stats","id":"s1"})" "\n";

  ServeStats stats;
  const std::vector<std::string> lines = runLines(server, stream, &stats);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.controls, 3u);  // two stats snapshots + the barrier

  // The idle snapshot has served nothing: availability is undefined and
  // rendered "--", never a 0/0 NaN.
  ASSERT_FALSE(lines.empty());
  const std::string& idle = lines.front();
  EXPECT_NE(idle.find("\"id\":\"s0\""), std::string::npos);
  EXPECT_NE(idle.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(idle.find("\"availability_pct\":\"--\""), std::string::npos);
  EXPECT_NE(idle.find("\"latency\":{\"count\":0}"), std::string::npos);

  bool sawLive = false;
  for (const std::string& line : lines) {
    if (line.find("\"id\":\"s1\"") == std::string::npos) continue;
    sawLive = true;
    long long depth = -1;
    EXPECT_TRUE(util::jsonIntField(line, "queue_depth", &depth));
    EXPECT_GE(depth, 0);
    EXPECT_NE(line.find("\"queue_capacity\":64"), std::string::npos);
    EXPECT_NE(line.find("\"availability_pct\":100"), std::string::npos);
    EXPECT_NE(line.find("\"latency\":{\"count\":2"), std::string::npos);
    EXPECT_NE(line.find("\"queue\":{"), std::string::npos);
    EXPECT_NE(line.find("\"shards\":["), std::string::npos);
  }
  EXPECT_TRUE(sawLive);
}

TEST(Server, TimingEchoDecoratesWithoutPerturbingOutputs) {
  const std::string stream =
      dataLine("generate", "r1", 0) + dataLine("transform", "r2", 0);

  Server plain(smallServer());
  ServeStats plainStats;
  const std::vector<std::string> off = runLines(plain, stream, &plainStats);

  ServerOptions echoOptions = smallServer();
  echoOptions.timingEcho = true;
  Server echo(echoOptions);
  ServeStats echoStats;
  const std::vector<std::string> on = runLines(echo, stream, &echoStats);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {  // skip drain record
    EXPECT_EQ(off[i].find("\"timing\":{"), std::string::npos);
    EXPECT_NE(on[i].find("\"timing\":{"), std::string::npos);
    EXPECT_NE(on[i].find("\"retries\":"), std::string::npos);
    EXPECT_NE(on[i].find("\"shard\":"), std::string::npos);
    // Stripping the echo must recover the exact timing-off bytes: the
    // payload is untouched.
    const std::size_t cut = on[i].find(",\"timing\":{");
    ASSERT_NE(cut, std::string::npos);
    EXPECT_EQ(on[i].substr(0, cut) + "}", off[i]);
  }

  // Per-request sketches observed both runs identically.
  EXPECT_EQ(plain.latencySketch().toJson(), echo.latencySketch().toJson());
  EXPECT_EQ(plain.latencySketch().count(), 2u);
  EXPECT_EQ(plain.queueWaitSketch().count(), 2u);
}

TEST(Server, ServeReportReconstructsRequestLifecyclesFromTheLog) {
  const std::string path =
      ::testing::TempDir() + "serve_test_report_log.jsonl";
  ASSERT_TRUE(util::atomicWriteFile(path, "").isOk());
  obs::EventLog::global().configure(path, obs::LogLevel::kInfo);

  Server server(smallServer(/*shards=*/2));
  std::string stream;
  stream += dataLine("generate", "g0", 0);
  stream += dataLine("generate", "g1", 1);
  stream += dataLine("transform", "t0", 0);
  ServeStats stats;
  (void)runLines(server, stream, &stats);
  obs::EventLog::global().configure("", obs::LogLevel::kInfo);
  ASSERT_EQ(stats.ok, 3u);

  const util::Result<std::string> log = util::readFile(path);
  ASSERT_TRUE(log.ok());
  const ServeReport report = ServeReport::fromLog(log.value());
  ASSERT_EQ(report.requests().size(), 3u);
  for (const RequestRecord& record : report.requests()) {
    EXPECT_TRUE(record.ok());
    EXPECT_GE(record.shard, 0);
    EXPECT_GE(record.endNs, record.startNs);
    EXPECT_GE(record.startNs, record.admitNs);
  }

  const std::vector<OpSlo> slo = report.sloTable();
  ASSERT_EQ(slo.size(), 2u);  // generate, transform — op-sorted
  EXPECT_EQ(slo[0].op, "generate");
  EXPECT_EQ(slo[0].requests, 2u);
  EXPECT_EQ(slo[1].op, "transform");
  EXPECT_DOUBLE_EQ(slo[0].availabilityPct(), 100.0);

  const std::string text = report.summaryText(2);
  EXPECT_NE(text.find("serve-report: 3 request(s) reconstructed"),
            std::string::npos);
  EXPECT_NE(text.find("slowest requests:"), std::string::npos);
  EXPECT_NE(text.find("slo table:"), std::string::npos);

  // A log with no serve records reconstructs an empty (non-fatal) report.
  EXPECT_TRUE(ServeReport::fromLog("{\"component\":\"bench\"}\n")
                  .requests()
                  .empty());
}

TEST(Server, AvailabilityDisplayGuardsTheZeroDenominator) {
  ServeStats idle;
  EXPECT_FALSE(idle.availabilityDefined());
  EXPECT_EQ(idle.availabilityDisplay(), "--");
  // The numeric accessor keeps its benign-idle contract for callers that
  // gate on thresholds.
  EXPECT_DOUBLE_EQ(idle.availabilityPct(), 100.0);

  ServeStats some;
  some.requests = 4;
  some.ok = 3;
  some.shed = 1;
  EXPECT_TRUE(some.availabilityDefined());
  EXPECT_EQ(some.availabilityDisplay(), "75.00");
}

}  // namespace
}  // namespace sca::serve
