// Robustness stress for ast::parse: the attribution pipeline must accept
// arbitrary adversarial input, so the parser must never crash, throw, or
// loop forever — it degrades into OpaqueStmt fallbacks plus warnings.
//
// The corpus here is every archetype rendering of a real challenge, mutated
// by randomized token deletion/duplication, truncation at every byte
// boundary class, and raw byte garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "ast/transforms.hpp"
#include "corpus/challenges.hpp"
#include "lexer/lexer.hpp"
#include "style/apply.hpp"
#include "style/archetypes.hpp"
#include "util/rng.hpp"

namespace sca::ast {
namespace {

/// One source rendering per archetype: the realistic input space.
std::vector<std::string> archetypeRenderings() {
  std::vector<std::string> sources;
  const corpus::Challenge& challenge = corpus::challengeById("race");
  const std::vector<style::StyleProfile>& pool = style::archetypePool();
  sources.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    util::Rng rng(util::combine64(util::hash64("parser-fuzz"), i));
    sources.push_back(style::applyStyle(challenge.ir, pool[i], rng));
  }
  return sources;
}

/// Re-spells one token so a mutated token stream can be turned back into
/// source text the lexer will accept.
std::string spell(const lexer::Token& token) {
  const std::string text(token.text);
  switch (token.kind) {
    case lexer::TokenKind::LineComment:
      return "//" + text + "\n";
    case lexer::TokenKind::BlockComment:
      return "/*" + text + "*/";
    case lexer::TokenKind::Preprocessor:
      return "\n" + text + "\n";
    case lexer::TokenKind::StringLiteral:
    case lexer::TokenKind::CharLiteral:
    default:
      return text;
  }
}

/// Deletes or duplicates `mutations` randomly chosen tokens. Token texts are
/// views into the stream's buffer, so they are re-spelled into owning
/// strings before the stream goes out of scope.
std::string mutateTokens(const std::string& source, util::Rng& rng,
                         int mutations) {
  std::vector<std::string> spelled;
  {
    const lexer::TokenStream stream = lexer::tokenize(source);
    spelled.reserve(stream.size());
    for (const lexer::Token& token : stream) {
      if (token.is(lexer::TokenKind::EndOfFile)) break;
      spelled.push_back(spell(token));
    }
  }
  for (int m = 0; m < mutations && spelled.size() > 1; ++m) {
    const auto index = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(spelled.size()) - 1));
    if (rng.uniformReal(0.0, 1.0) < 0.5) {
      spelled.erase(spelled.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      spelled.insert(spelled.begin() + static_cast<std::ptrdiff_t>(index),
                     spelled[index]);
    }
  }
  std::string out;
  for (const std::string& piece : spelled) {
    out += piece;
    out += ' ';
  }
  return out;
}

/// The invariant under test: parse() returns (no crash, no throw), and a
/// non-clean result carries at least one warning explaining itself.
void expectSurvives(const std::string& source) {
  const ParseResult result = parse(source);
  if (!result.clean) {
    EXPECT_FALSE(result.warnings.empty()) << source.substr(0, 120);
  }
}

TEST(ParserFuzz, CleanRenderingsStayClean) {
  for (const std::string& source : archetypeRenderings()) {
    const ParseResult result = parse(source);
    EXPECT_TRUE(result.clean) << source.substr(0, 120);
  }
}

TEST(ParserFuzz, SurvivesTokenDeletionAndDuplication) {
  const std::vector<std::string> sources = archetypeRenderings();
  util::Rng rng(util::hash64("token-mutation"));
  for (const std::string& source : sources) {
    for (int round = 0; round < 24; ++round) {
      // Escalating damage: 1 mutation (nearly valid) up to 24 (shredded).
      expectSurvives(mutateTokens(source, rng, 1 + round));
    }
  }
}

TEST(ParserFuzz, SurvivesTruncationAtEveryPrefix) {
  const std::vector<std::string> sources = archetypeRenderings();
  for (std::size_t i = 0; i < 2 && i < sources.size(); ++i) {
    const std::string& source = sources[i];
    for (std::size_t cut = 0; cut <= source.size(); ++cut) {
      expectSurvives(source.substr(0, cut));
    }
  }
}

TEST(ParserFuzz, SurvivesRawByteGarbage) {
  util::Rng rng(util::hash64("byte-garbage"));
  for (int round = 0; round < 64; ++round) {
    std::string junk;
    const auto length = static_cast<std::size_t>(rng.uniformInt(0, 512));
    junk.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      junk.push_back(static_cast<char>(rng.uniformInt(1, 255)));
    }
    expectSurvives(junk);
  }
}

TEST(ParserFuzz, DeepNestingHitsTheCeilingNotTheStack) {
  // Way past kMaxDepth: without the recursion guard each of these would
  // overflow the stack; with it they must come back as non-clean parses.
  const int depth = 20000;

  std::string parens = "int main() {\n    int x = ";
  parens.append(static_cast<std::size_t>(depth), '(');
  parens += "1";
  parens.append(static_cast<std::size_t>(depth), ')');
  parens += ";\n    return 0;\n}\n";
  EXPECT_FALSE(parse(parens).clean);

  std::string unary = "int main() {\n    int x = ";
  for (int i = 0; i < depth; ++i) unary += '!';
  unary += "1;\n    return 0;\n}\n";
  EXPECT_FALSE(parse(unary).clean);

  std::string blocks = "int main() {\n";
  for (int i = 0; i < depth; ++i) blocks += '{';
  for (int i = 0; i < depth; ++i) blocks += '}';
  blocks += "\n    return 0;\n}\n";
  expectSurvives(blocks);

  std::string vectors = "int main() {\n    ";
  for (int i = 0; i < depth; ++i) vectors += "vector<";
  vectors += "int";
  for (int i = 0; i < depth; ++i) vectors += '>';
  vectors += " v;\n    return 0;\n}\n";
  expectSurvives(vectors);
}

TEST(ParserFuzz, ParseStrictContract) {
  const auto ok = parseStrict("int main() {\n    return 0;\n}\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().functions.size(), 1u);

  const auto truncated = parseStrict("int main() {\n    int x = ");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kInvalidOutput);
  EXPECT_FALSE(truncated.status().message().empty());

  EXPECT_FALSE(parseStrict("@@ garbled completion @@").ok());
}

TEST(ParserFuzz, ArenaRenderReparseEquivalence) {
  // Parse into the arena, pool-copy the unit, render, re-parse: the result
  // must be clean and render to the same bytes (render/parse fixpoint over
  // arena-backed trees). Comments are stripped first: "// text" re-lexes
  // with its leading space included, so commented renders are stable only
  // structurally, not byte-for-byte (same guard as the roundtrip property
  // test).
  for (const std::string& source : archetypeRenderings()) {
    const ParseResult first = parse(source);
    ASSERT_TRUE(first.clean) << source.substr(0, 120);
    TranslationUnit copy = deepCopy(first.unit);
    stripComments(copy);
    copy.headerComment.clear();
    const std::string rendered = render(copy, RenderOptions{});
    const ParseResult second = parse(rendered);
    EXPECT_TRUE(second.clean) << rendered.substr(0, 120);
    EXPECT_EQ(render(second.unit, RenderOptions{}), rendered);
  }
}

TEST(ParserFuzz, ParseIsDeterministic) {
  // Same bytes in -> same warnings out, independent of prior parses.
  util::Rng rng(util::hash64("determinism-fuzz"));
  const std::string mutated =
      mutateTokens(archetypeRenderings().front(), rng, 8);
  const ParseResult a = parse(mutated);
  const ParseResult b = parse(mutated);
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.warnings, b.warnings);
}

}  // namespace
}  // namespace sca::ast
