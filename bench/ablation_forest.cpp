// Ablation: random-forest design choices — tree count and split mode
// (randomized thresholds vs exact CART sweep) against accuracy and fit
// time, on the 204-author GCJ 2018 task.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "ml/metrics.hpp"
#include "util/log.hpp"

int main() {
  sca::bench::Session session("ablation_forest");
  using namespace sca;
  using Clock = std::chrono::steady_clock;
  util::setLogLevel(util::LogLevel::Info);
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  core::YearExperiment experiment(2018, config);
  const corpus::YearDataset& data = experiment.corpusData();

  // One fold (hold out challenge 0).
  std::vector<std::string> trainSources, testSources;
  std::vector<int> trainLabels, testLabels;
  for (const corpus::CodeSample& sample : data.samples) {
    if (sample.challengeIndex == 0) {
      testSources.push_back(sample.source);
      testLabels.push_back(sample.authorId);
    } else {
      trainSources.push_back(sample.source);
      trainLabels.push_back(sample.authorId);
    }
  }

  struct Variant {
    std::string name;
    std::size_t trees;
    std::size_t thresholds;  // 0 = exact
  };
  const std::vector<Variant> variants = {
      {"10 trees, randomized", 10, 8},  {"40 trees, randomized", 40, 8},
      {"120 trees, randomized", 120, 8}, {"240 trees, randomized", 240, 8},
      {"40 trees, exact CART", 40, 0},  {"120 trees, exact CART", 120, 0},
  };

  util::TablePrinter table(
      "Ablation: forest size and split mode (204 authors, GCJ 2018, fold "
      "C1).");
  table.setHeader({"Variant", "Accuracy (%)", "Fit time (s)"});
  for (const Variant& variant : variants) {
    core::ModelConfig modelConfig = config.model;
    modelConfig.forest.treeCount = variant.trees;
    modelConfig.forest.tree.thresholdsPerFeature = variant.thresholds;
    const auto start = Clock::now();
    core::AttributionModel model(modelConfig);
    model.train(trainSources, trainLabels);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double accuracy =
        ml::accuracy(testLabels, model.predictAll(testSources));
    table.addRow({variant.name, bench::pct(accuracy),
                  util::formatDouble(seconds, 2)});
    std::cout << variant.name << " -> " << bench::pct(accuracy) << "% in "
              << util::formatDouble(seconds, 2) << "s\n";
  }
  bench::emit(table, "ablation_forest");
  session.complete();
  return 0;
}
