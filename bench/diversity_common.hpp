// Shared implementation of Tables V-VII: the diversity of styles of one
// year — how often each predicted label was assigned to the 1,600
// ChatGPT-transformed samples, filtered at two occurrences as in the paper.
#pragma once

#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "util/log.hpp"

namespace sca::bench {

inline int runDiversityTable(int year, const std::string& romanNumeral,
                             const std::string& outputName) {
  Session session(outputName);
  util::setLogLevel(util::LogLevel::Info);
  core::YearExperiment experiment(year,
                                  core::ExperimentConfig::fromEnv());
  const auto rows = experiment.diversity(/*minOccurrences=*/2);
  const std::size_t filtered = experiment.diversityFilteredCount(2);

  util::TablePrinter table(
      "Table " + romanNumeral + ": The diversity of styles - GCJ " +
      std::to_string(year) + ". Labels with fewer than two occurrences are "
      "filtered (a total of " + std::to_string(filtered) + ").");
  table.setHeader({"Label", "Occurrences", "Percentage"});
  for (const auto& row : rows) {
    table.addRow({row.label, std::to_string(row.occurrences),
                  util::formatDouble(row.percent, 1)});
  }
  emit(table, outputName);

  double topShare = 0.0;
  for (std::size_t i = 0; i < rows.size() && i < 3; ++i) {
    topShare += rows[i].percent;
  }
  std::cout << "Top-1 share: "
            << (rows.empty() ? 0.0 : rows[0].percent) << "%, top-3 share: "
            << topShare << "%\n";
  session.complete();
  return 0;
}

}  // namespace sca::bench
