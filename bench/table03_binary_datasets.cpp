// Regenerates Table III: datasets for the binary (ChatGPT vs human)
// classification — three per-year datasets and the combined dataset with
// five challenges per year.
#include "bench_common.hpp"
#include "core/experiments.hpp"

int main() {
  sca::bench::Session session("table03_binary_datasets");
  using namespace sca;
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  util::TablePrinter table(
      "Table III: Datasets for binary classification (ChatGPT vs Human).");
  table.setHeader(
      {"Dataset", "# of challenges", "# of codes", "Language", "Total"});

  std::size_t combinedTotal = 0;
  const std::size_t combinedChallenges = 5;
  for (const int year : {2017, 2018, 2019}) {
    core::YearExperiment experiment(year, config);
    const llm::TransformedDataset& transformed = experiment.transformedData();
    const std::size_t challenges = experiment.corpusData().challenges.size();
    const std::size_t perChallenge = transformed.samples.size() / challenges;
    // Both classes are balanced per challenge: total = 2 x transformed.
    table.addRow({"GCJ " + std::to_string(year), std::to_string(challenges),
                  std::to_string(perChallenge), "C++",
                  std::to_string(2 * transformed.samples.size())});
    combinedTotal += 2 * perChallenge * combinedChallenges;
  }
  table.addRow({"Combined",
                std::to_string(3 * combinedChallenges),
                std::to_string(combinedTotal /
                               (3 * combinedChallenges)),
                "C++", std::to_string(combinedTotal)});
  bench::emit(table, "table03_binary_datasets");
  session.complete();
  return 0;
}
