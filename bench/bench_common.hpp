// Shared helpers for the table-regeneration benches.
//
// Every bench prints the same row/column structure as the corresponding
// table in the paper and mirrors it into bench_out/<name>.csv so results
// can be diffed across runs. emit() also appends one timing record per
// table to bench_out/bench_times.json (see below), which is the repo's
// perf trajectory: phase wall-times per bench, per run, across PRs.
//
// bench_times.json format — JSON Lines, one self-contained object per
// emitted table:
//
//   {"bench":"table09_feature_based","threads":8,
//    "phases":{"corpus_build":1.23,"llm_transform":4.56,...},
//    "total_s":12.34}
//
// `threads` is the shared pool's worker count (SCA_THREADS or hardware
// concurrency); `phases` accumulates runtime::PhaseTimer scopes since the
// previous emit (concurrent phases sum their per-task wall time, so phase
// seconds can exceed total_s on multi-core hosts); `total_s` is process
// wall-clock since the previous emit. The file is append-only: rerunning a
// bench adds new lines rather than rewriting history.
#pragma once

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sca::bench {

namespace detail {

/// Wall-clock anchor for total_s: process start (static init), advanced
/// after every emit so each record covers its own table only.
inline std::chrono::steady_clock::time_point gEmitAnchor =
    std::chrono::steady_clock::now();

inline std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Appends the phase snapshot as one JSONL record, then resets the
/// registry and the wall-clock anchor so the next emit reports its own
/// phases only.
inline void appendTimes(const std::string& name) {
  const std::map<std::string, double> phases =
      runtime::PhaseTimes::global().snapshot();
  const auto now = std::chrono::steady_clock::now();
  const double totalSeconds =
      std::chrono::duration<double>(now - gEmitAnchor).count();

  std::ofstream json("bench_out/bench_times.json", std::ios::app);
  if (json) {
    json << "{\"bench\":\"" << jsonEscape(name) << "\",\"threads\":"
         << runtime::globalPool().size() << ",\"phases\":{";
    bool first = true;
    for (const auto& [phase, seconds] : phases) {
      if (!first) json << ',';
      first = false;
      json << '"' << jsonEscape(phase) << "\":"
           << util::formatDouble(seconds, 3);
    }
    json << "},\"total_s\":" << util::formatDouble(totalSeconds, 3) << "}\n";
    std::cout << "[times] bench_out/bench_times.json\n";
  }
  runtime::PhaseTimes::global().reset();
  gEmitAnchor = now;
}

}  // namespace detail

/// Prints the table, writes its CSV next to the binary and appends the
/// phase timing record for everything computed since the previous emit.
inline void emit(const util::TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    std::ofstream csv("bench_out/" + name + ".csv");
    csv << table.toCsv();
    std::cout << "[csv] bench_out/" << name << ".csv\n";
    detail::appendTimes(name);
  }
  std::cout << "\n";
}

/// "93.1"-style percentage cell.
inline std::string pct(double fraction, int decimals = 1) {
  return util::formatDouble(fraction * 100.0, decimals);
}

/// The paper's check/cross marks, in ASCII.
inline std::string mark(bool ok) { return ok ? "v" : "x"; }

}  // namespace sca::bench
