// Shared helpers for the table-regeneration benches.
//
// Every bench prints the same row/column structure as the corresponding
// table in the paper and mirrors it into bench_out/<name>.csv so results
// can be diffed across runs. emit() also appends one timing record per
// table to bench_out/bench_times.json (see below), which is the repo's
// perf trajectory: phase wall-times per bench, per run, across PRs.
//
// Both writers are crash-safe (util/io.hpp): CSVs go through temp-file +
// atomic rename, so a killed bench never leaves a torn CSV behind; the
// bench_times.json record is appended with a single O_APPEND write, so
// two benches running concurrently interleave whole lines, never partial
// ones.
//
// bench_times.json format — JSON Lines, one self-contained object per
// emitted table:
//
//   {"bench":"table09_feature_based","threads":8,
//    "phases":{"corpus_build":1.23,"llm_transform":4.56,...},
//    "counters":{"llm_retries":12,"llm_faults_timeout":7,...},
//    "total_s":12.34}
//
// `threads` is the shared pool's worker count (SCA_THREADS or hardware
// concurrency); `phases` accumulates runtime::PhaseTimer scopes since the
// previous emit (concurrent phases sum their per-task wall time, so phase
// seconds can exceed total_s on multi-core hosts); `counters` merges every
// stable AND runtime metrics-registry counter — retry/fault/degradation/
// checkpoint telemetry from the resilience layer, the rt_/ml_/features_
// instrumentation and the cache_/llm_cache_ effectiveness counts — and is
// omitted when empty; `total_s` is
// process wall-clock since the previous emit. The file is append-only:
// rerunning a bench adds new lines rather than rewriting history.
//
// Each bench main also holds a Session, which writes the versioned run
// manifest (bench_out/manifest.json, or $SCA_MANIFEST) on exit and
// flushes the $SCA_TRACE Chrome trace. The manifest schema is documented
// in src/obs/manifest.hpp; unlike the per-table bench_times records it is
// run-cumulative (lifetime scope, surviving the per-emit resets) and is
// rewritten atomically per run, not appended. A Session destroyed before
// complete() marks the manifest "status":"partial" so downstream tooling
// never mistakes a crashed run for a finished one.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sca::bench {

/// RAII run manifest + history record: construct at the top of a bench
/// main, call complete() as the last statement before a successful return.
/// The destructor writes the manifest either way — reaching it without
/// complete() (early return, exception unwind) records a partial run —
/// and appends one sca-history-v1 record to the run-history store so the
/// bench trajectory accumulates across runs (`sca_cli history`).
class Session {
 public:
  explicit Session(std::string benchName)
      : benchName_(std::move(benchName)),
        start_(std::chrono::steady_clock::now()),
        flightScope_(obs::flight::armOptionsFromEnv(benchName_)) {
    obs::logEvent(obs::LogLevel::kInfo, "bench", "session_start",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("bench", benchName_);
                  });
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void complete() noexcept { complete_ = true; }

  ~Session() {
    const util::Status traceStatus = obs::flushConfiguredTrace();
    if (!traceStatus.isOk()) {
      std::cerr << "[trace] write failed: " << traceStatus.toString() << "\n";
    } else if (obs::Tracer::global().enabled()) {
      std::cout << "[trace] " << obs::Tracer::global().configuredPath()
                << "\n";
    }

    // Memory/CPU gauges land before the manifest snapshot so both the
    // manifest's runtime section and the history record carry them.
    obs::recordProcessRusage();

    obs::RunManifestOptions options;
    options.benchName = benchName_;
    options.complete = complete_;
    if (!complete_) {
      // Cross-reference the flight recorder: a latched watchdog verdict or
      // signal name beats the generic "torn down early".
      const std::string cause = obs::flight::incidentCause();
      options.partialCause = cause.empty() ? "destructor" : cause;
    }
    options.threads = runtime::globalPool().size();
    if (const char* path = std::getenv("SCA_MANIFEST");
        path != nullptr && *path != '\0') {
      // Explicit override: exactly one file, wherever the caller said.
      options.path = path;
      report(util::atomicWriteFile(options.path,
                                   obs::runManifestJson(options)),
             options.path);
    } else {
      // Per-bench manifest plus a latest-run copy: sequential benches in
      // one sweep no longer clobber each other, so `sca_cli diff` can
      // compare any two of them afterwards.
      const std::string json = obs::runManifestJson(options);
      options.path = "bench_out/manifest." + benchName_ + ".json";
      report(util::atomicWriteFile(options.path, json), options.path);
      report(util::atomicWriteFile("bench_out/manifest.json", json),
             "bench_out/manifest.json");
    }

    const double totalSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (const std::string historyPath = obs::configuredHistoryPath();
        !historyPath.empty()) {
      obs::HistoryStore store(historyPath);
      const util::Status status = obs::appendRunHistory(
          store, benchName_, runtime::globalPool().size(), complete_,
          totalSeconds);
      if (status.isOk()) {
        std::cout << "[history] " << historyPath << "\n";
      } else {
        std::cerr << "[history] append failed: " << status.toString()
                  << "\n";
      }
    }
    obs::logEvent(obs::LogLevel::kInfo, "bench", "session_end",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("bench", benchName_);
                    fields.add("status",
                               complete_ ? "complete" : "partial");
                    fields.addDouble("total_s", totalSeconds, 3);
                  });
  }

 private:
  static void report(const util::Status& status, const std::string& path) {
    if (status.isOk()) {
      std::cout << "[manifest] " << path << "\n";
    } else {
      std::cerr << "[manifest] write failed: " << status.toString() << "\n";
    }
  }

  std::string benchName_;
  std::chrono::steady_clock::time_point start_;
  // Arms the flight recorder's fatal-signal handlers (and the stall
  // watchdog when SCA_WATCHDOG_S is set) for the whole bench; destroyed
  // after the destructor body, so the manifest write above still sees any
  // latched incident cause.
  obs::flight::ArmedScope flightScope_;
  bool complete_ = false;
};

namespace detail {

/// Wall-clock anchor for total_s: process start (static init), advanced
/// after every emit so each record covers its own table only.
inline std::chrono::steady_clock::time_point gEmitAnchor =
    std::chrono::steady_clock::now();

/// Builds the phase+counter snapshot as one JSONL record, appends it with
/// a single atomic write, then resets both registries and the wall-clock
/// anchor so the next emit reports its own table only. Counters merge the
/// registry's stable AND runtime sections (names are disjoint): warm-cache
/// runs move most transport work behind cache_/llm_cache_ counters, and
/// the perf trajectory should show that, not hide it.
inline void appendTimes(const std::string& name) {
  const std::map<std::string, double> phases =
      runtime::PhaseTimes::global().snapshot();
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  std::map<std::string, std::uint64_t> counters = metrics.counters;
  counters.insert(metrics.runtimeCounters.begin(),
                  metrics.runtimeCounters.end());
  const auto now = std::chrono::steady_clock::now();
  const double totalSeconds =
      std::chrono::duration<double>(now - gEmitAnchor).count();

  util::JsonObjectBuilder record;
  record.add("bench", name);
  record.addUint("threads", runtime::globalPool().size());
  util::JsonObjectBuilder phasesJson;
  for (const auto& [phase, seconds] : phases) {
    phasesJson.addDouble(phase, seconds, 3);
  }
  record.addRaw("phases", phasesJson.str());
  if (!counters.empty()) {
    util::JsonObjectBuilder countersJson;
    for (const auto& [key, count] : counters) {
      countersJson.addUint(key, count);
    }
    record.addRaw("counters", countersJson.str());
  }
  record.addDouble("total_s", totalSeconds, 3);

  if (util::appendLine("bench_out/bench_times.json", record.str()).isOk()) {
    std::cout << "[times] bench_out/bench_times.json\n";
  }
  runtime::PhaseTimes::global().reset();
  runtime::Counters::global().reset();
  gEmitAnchor = now;
}

}  // namespace detail

/// Prints the table, atomically writes its CSV next to the binary and
/// appends the telemetry record for everything computed since the
/// previous emit.
inline void emit(const util::TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  const std::string path = "bench_out/" + name + ".csv";
  if (util::atomicWriteFile(path, table.toCsv()).isOk()) {
    std::cout << "[csv] " << path << "\n";
    detail::appendTimes(name);
  }
  std::cout << "\n";
}

/// "93.1"-style percentage cell.
inline std::string pct(double fraction, int decimals = 1) {
  return util::formatDouble(fraction * 100.0, decimals);
}

/// The paper's check/cross marks, in ASCII.
inline std::string mark(bool ok) { return ok ? "v" : "x"; }

}  // namespace sca::bench
