// Shared helpers for the table-regeneration benches.
//
// Every bench prints the same row/column structure as the corresponding
// table in the paper and mirrors it into bench_out/<name>.csv so results
// can be diffed across runs.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace sca::bench {

/// Prints the table and writes its CSV next to the binary.
inline void emit(const util::TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    std::ofstream csv("bench_out/" + name + ".csv");
    csv << table.toCsv();
    std::cout << "[csv] bench_out/" << name << ".csv\n";
  }
  std::cout << "\n";
}

/// "93.1"-style percentage cell.
inline std::string pct(double fraction, int decimals = 1) {
  return util::formatDouble(fraction * 100.0, decimals);
}

/// The paper's check/cross marks, in ASCII.
inline std::string mark(bool ok) { return ok ? "v" : "x"; }

}  // namespace sca::bench
