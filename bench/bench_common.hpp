// Shared helpers for the table-regeneration benches.
//
// Every bench prints the same row/column structure as the corresponding
// table in the paper and mirrors it into bench_out/<name>.csv so results
// can be diffed across runs. emit() also appends one timing record per
// table to bench_out/bench_times.json (see below), which is the repo's
// perf trajectory: phase wall-times per bench, per run, across PRs.
//
// Both writers are crash-safe (util/io.hpp): CSVs go through temp-file +
// atomic rename, so a killed bench never leaves a torn CSV behind; the
// bench_times.json record is appended with a single O_APPEND write, so
// two benches running concurrently interleave whole lines, never partial
// ones.
//
// bench_times.json format — JSON Lines, one self-contained object per
// emitted table:
//
//   {"bench":"table09_feature_based","threads":8,
//    "phases":{"corpus_build":1.23,"llm_transform":4.56,...},
//    "counters":{"llm_retries":12,"llm_faults_timeout":7,...},
//    "total_s":12.34}
//
// `threads` is the shared pool's worker count (SCA_THREADS or hardware
// concurrency); `phases` accumulates runtime::PhaseTimer scopes since the
// previous emit (concurrent phases sum their per-task wall time, so phase
// seconds can exceed total_s on multi-core hosts); `counters` accumulates
// runtime::Counters events — retry/fault/degradation/checkpoint telemetry
// from the resilience layer — and is omitted when empty; `total_s` is
// process wall-clock since the previous emit. The file is append-only:
// rerunning a bench adds new lines rather than rewriting history.
#pragma once

#include <chrono>
#include <iostream>
#include <map>
#include <string>

#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sca::bench {

namespace detail {

/// Wall-clock anchor for total_s: process start (static init), advanced
/// after every emit so each record covers its own table only.
inline std::chrono::steady_clock::time_point gEmitAnchor =
    std::chrono::steady_clock::now();

/// Builds the phase+counter snapshot as one JSONL record, appends it with
/// a single atomic write, then resets both registries and the wall-clock
/// anchor so the next emit reports its own table only.
inline void appendTimes(const std::string& name) {
  const std::map<std::string, double> phases =
      runtime::PhaseTimes::global().snapshot();
  const std::map<std::string, std::uint64_t> counters =
      runtime::Counters::global().snapshot();
  const auto now = std::chrono::steady_clock::now();
  const double totalSeconds =
      std::chrono::duration<double>(now - gEmitAnchor).count();

  std::string record = "{\"bench\":\"" + util::jsonEscape(name) +
                       "\",\"threads\":" +
                       std::to_string(runtime::globalPool().size()) +
                       ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, seconds] : phases) {
    if (!first) record += ',';
    first = false;
    record += '"' + util::jsonEscape(phase) + "\":" +
              util::formatDouble(seconds, 3);
  }
  record += '}';
  if (!counters.empty()) {
    record += ",\"counters\":{";
    first = true;
    for (const auto& [key, count] : counters) {
      if (!first) record += ',';
      first = false;
      record += '"' + util::jsonEscape(key) + "\":" + std::to_string(count);
    }
    record += '}';
  }
  record += ",\"total_s\":" + util::formatDouble(totalSeconds, 3) + '}';

  if (util::appendLine("bench_out/bench_times.json", record).isOk()) {
    std::cout << "[times] bench_out/bench_times.json\n";
  }
  runtime::PhaseTimes::global().reset();
  runtime::Counters::global().reset();
  gEmitAnchor = now;
}

}  // namespace detail

/// Prints the table, atomically writes its CSV next to the binary and
/// appends the telemetry record for everything computed since the
/// previous emit.
inline void emit(const util::TablePrinter& table, const std::string& name) {
  table.print(std::cout);
  const std::string path = "bench_out/" + name + ".csv";
  if (util::atomicWriteFile(path, table.toCsv()).isOk()) {
    std::cout << "[csv] " << path << "\n";
    detail::appendTimes(name);
  }
  std::cout << "\n";
}

/// "93.1"-style percentage cell.
inline std::string pct(double fraction, int decimals = 1) {
  return util::formatDouble(fraction * 100.0, decimals);
}

/// The paper's check/cross marks, in ASCII.
inline std::string mark(bool ok) { return ok ? "v" : "x"; }

}  // namespace sca::bench
