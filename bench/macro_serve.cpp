// Chaos bench for the sharded serving stack (src/serve/ + ShardedClient).
//
// Four passes over the same 64-conversation, 12-turn request stream:
//
//   oracle     every conversation replayed on a bare chain-seeded
//              SyntheticLlm — the single-client path, and the byte truth
//              the serving fleet must reproduce,
//   healthy    4 shards, no faults: every request must succeed and match
//              the oracle byte for byte,
//   chaos      faults on (SCA_FAULT_RATE, default 0.15), one shard slowed
//              and one shard killed mid-stream via control lines in the
//              request stream itself,
//   overload   tiny admission queue under a full-round burst: most of the
//              load must be SHED with explicit "overloaded" responses
//              while the admitted conversations stay byte-perfect.
//
// Hard assertions (exit 1):
//   * every successful response, in EVERY pass, is byte-identical to the
//     oracle — chaos may cost availability, never correctness;
//   * chaos availability >= 99% with failovers > 0 and at least one
//     timeout ejection (the slowed shard must actually be ejected);
//   * the drain record agrees with the server's own counters — degradation
//     is recorded honestly;
//   * overload sheds without corrupting the conversations it admits.
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus/challenges.hpp"
#include "llm/sharded_client.hpp"
#include "llm/synthetic_llm.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace sca;

constexpr int kChains = 64;
constexpr int kTurns = 12;
constexpr int kSlowRound = 4;  // slow_shard control lands before this round
constexpr int kKillRound = 8;  // kill_shard control lands before this round
constexpr int kYear = 2017;

double envDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  return end != raw && parsed > 0.0 ? parsed : fallback;
}

/// chain -> its oracle transcript (turn 0 = generate, then transforms of
/// the previous oracle output: exactly the conversation the serving fleet
/// is asked to hold).
std::vector<std::vector<std::string>> buildOracle(
    const std::vector<const corpus::Challenge*>& challenges) {
  std::vector<std::vector<std::string>> oracle(kChains);
  for (int chain = 0; chain < kChains; ++chain) {
    llm::LlmOptions options;
    options.year = kYear;
    options.seed = util::combine64(util::hash64("serve-chain"),
                                   static_cast<std::uint64_t>(chain));
    llm::SyntheticLlm model(options);
    std::vector<std::string>& turns = oracle[static_cast<std::size_t>(chain)];
    turns.reserve(kTurns);
    turns.push_back(model.generate(
        *challenges[static_cast<std::size_t>(chain) % challenges.size()]));
    for (int turn = 1; turn < kTurns; ++turn) {
      turns.push_back(model.transform(turns.back()));
    }
  }
  return oracle;
}

struct RequestRef {
  int chain = 0;
  int turn = 0;
};

/// Per-request budget in simulated seconds. Must cover one full retry
/// ladder on a slowed shard (6 attempts hanging up at the 20 s attempt
/// timeout plus ~15 s of backoff) with room to fail over and be served
/// elsewhere — that is the availability story: a slow shard costs latency,
/// which the deadline can afford, instead of costing the request.
constexpr int kDeadlineSeconds = 240;

/// Round-major JSONL stream: all chains' turn r before any turn r+1, so
/// every batch mixes conversations. Transform inputs are the ORACLE
/// outputs — with the canonical-conversation design, a chain whose turn
/// failed still advances, so later successes must equal the oracle.
std::string buildStream(const std::vector<std::vector<std::string>>& oracle,
                        bool chaosControls, int slowShard, int killShard,
                        std::map<std::string, RequestRef>* byId) {
  std::string stream;
  for (int turn = 0; turn < kTurns; ++turn) {
    if (chaosControls && turn == kSlowRound) {
      stream += util::JsonObjectBuilder()
                    .add("op", "slow_shard")
                    .add("id", "ctl_slow")
                    .addInt("shard", slowShard)
                    .str();
      stream += '\n';
    }
    if (chaosControls && turn == kKillRound) {
      stream += util::JsonObjectBuilder()
                    .add("op", "kill_shard")
                    .add("id", "ctl_kill")
                    .addInt("shard", killShard)
                    .str();
      stream += '\n';
    }
    for (int chain = 0; chain < kChains; ++chain) {
      const std::string id =
          "c" + std::to_string(chain) + "t" + std::to_string(turn);
      (*byId)[id] = RequestRef{chain, turn};
      util::JsonObjectBuilder line;
      if (turn == 0) {
        line.add("op", "generate")
            .add("id", id)
            .addInt("chain", chain)
            .addInt("challenge", chain % 8)
            .addInt("deadline_s", kDeadlineSeconds);
      } else {
        line.add("op", "transform")
            .add("id", id)
            .addInt("chain", chain)
            .add("source",
                 oracle[static_cast<std::size_t>(chain)]
                       [static_cast<std::size_t>(turn) - 1])
            .addInt("deadline_s", kDeadlineSeconds);
      }
      stream += line.str();
      stream += '\n';
    }
  }
  return stream;
}

struct PassResult {
  serve::ServeStats stats;
  llm::ShardSet::FleetStats fleet;
  std::string drain;
  std::size_t okMatched = 0;
  std::size_t okMismatched = 0;
  std::uint64_t okDigest = util::hash64("macro_serve");
};

PassResult runPass(const char* phase, const std::string& stream,
                   serve::ServerOptions options,
                   const std::vector<std::vector<std::string>>& oracle,
                   const std::map<std::string, RequestRef>& byId) {
  runtime::PhaseTimer timer(phase);
  serve::Server server(std::move(options));
  std::istringstream in(stream);
  std::ostringstream out;

  PassResult result;
  result.stats = server.run(in, out);
  result.fleet = server.fleet().stats();
  result.drain = server.drainRecord();

  std::istringstream responses(out.str());
  std::string line;
  while (std::getline(responses, line)) {
    std::string status;
    if (!util::jsonStringField(line, "status", &status) || status != "ok") {
      continue;
    }
    std::string id;
    std::string output;
    if (!util::jsonStringField(line, "id", &id) ||
        !util::jsonStringField(line, "output", &output)) {
      ++result.okMismatched;
      continue;
    }
    const auto ref = byId.find(id);
    const bool matched =
        ref != byId.end() &&
        output == oracle[static_cast<std::size_t>(ref->second.chain)]
                        [static_cast<std::size_t>(ref->second.turn)];
    if (matched) {
      ++result.okMatched;
      result.okDigest = util::combine64(
          result.okDigest,
          util::combine64(util::hash64(id), util::hash64(output)));
    } else {
      ++result.okMismatched;
      std::cerr << "[macro_serve] " << phase << ": response " << id
                << " diverged from the oracle\n";
    }
  }
  return result;
}

/// The drain record must agree with the server's own counters: the final
/// line is how an operator learns what degraded, so it lying is a bug.
bool drainHonest(const PassResult& result) {
  const struct {
    const char* field;
    long long expected;
  } checks[] = {
      {"ok", static_cast<long long>(result.stats.ok)},
      {"errors", static_cast<long long>(result.stats.errors)},
      {"shed", static_cast<long long>(result.stats.shed)},
      {"rejected", static_cast<long long>(result.stats.rejected)},
      {"ejections", static_cast<long long>(result.fleet.ejections)},
      {"timeout_ejections",
       static_cast<long long>(result.fleet.timeoutEjections)},
  };
  for (const auto& check : checks) {
    long long actual = -1;
    if (!util::jsonIntField(result.drain, check.field, &actual) ||
        actual != check.expected) {
      std::cerr << "[macro_serve] drain record dishonest: " << check.field
                << "=" << actual << ", server counted " << check.expected
                << "\n";
      return false;
    }
  }
  return true;
}

std::string row(double value) { return util::formatDouble(value, 2); }

}  // namespace

int main() {
  bench::Session session("macro_serve");

  int shards = static_cast<int>(envDouble("SCA_SHARDS", 4));
  if (shards < 4) {
    std::cout << "[macro_serve] SCA_SHARDS=" << shards
              << " too small for the chaos schedule; using 4\n";
    shards = 4;
  }
  const double faultRate = envDouble("SCA_FAULT_RATE", 0.15);
  const int slowShard = 1 % shards;
  const int killShard = 2 % shards;

  const std::vector<const corpus::Challenge*> challenges =
      corpus::challengesForYear(kYear);
  std::vector<std::vector<std::string>> oracle;
  {
    runtime::PhaseTimer timer("serve_oracle");
    oracle = buildOracle(challenges);
  }

  std::map<std::string, RequestRef> byId;
  const std::string calmStream =
      buildStream(oracle, /*chaosControls=*/false, 0, 0, &byId);
  const std::string chaosStream =
      buildStream(oracle, /*chaosControls=*/true, slowShard, killShard,
                  &byId);

  serve::ServerOptions base;
  base.queueCapacity = 256;
  base.batchSize = 16;
  base.arrivalBurst = 32;
  base.year = kYear;
  base.fleet.shards = shards;
  base.fleet.year = kYear;

  serve::ServerOptions healthyOptions = base;
  const PassResult healthy =
      runPass("serve_healthy", calmStream, healthyOptions, oracle, byId);

  serve::ServerOptions chaosOptions = base;
  chaosOptions.fleet.faultRate = faultRate;
  // Hedge requests whose retry ladder already charged a backoff step: the
  // first retry delay is baseDelaySeconds (0.5s) +/- jitter, so 0.3s
  // catches every request that faulted at least once while never firing on
  // a clean first attempt. This keeps the hedge path (and its manifest
  // counters) exercised under chaos without touching the healthy pass.
  chaosOptions.fleet.policy.hedgeAfterSeconds = 0.3;
  const PassResult chaos =
      runPass("serve_chaos", chaosStream, chaosOptions, oracle, byId);

  serve::ServerOptions overloadOptions = base;
  overloadOptions.queueCapacity = 4;
  overloadOptions.arrivalBurst = kChains;  // one full round per burst
  const PassResult overload =
      runPass("serve_overload", calmStream, overloadOptions, oracle, byId);

  util::TablePrinter table(
      "macro_serve: " + std::to_string(kChains) + " chains x " +
      std::to_string(kTurns) + " turns, shards=" + std::to_string(shards) +
      ", fault_rate=" + util::formatDouble(faultRate, 2));
  table.setHeader({"pass", "ok", "errors", "shed", "avail %", "failovers",
                   "ejections", "ok digest"});
  const auto addRow = [&](const char* name, const PassResult& result) {
    long long failovers = 0;
    (void)util::jsonIntField(result.drain, "failovers", &failovers);
    table.addRow({name, std::to_string(result.stats.ok),
                  std::to_string(result.stats.errors),
                  std::to_string(result.stats.shed),
                  row(result.stats.availabilityPct()),
                  std::to_string(failovers),
                  std::to_string(result.fleet.ejections),
                  util::toHex64(result.okDigest)});
  };
  addRow("healthy", healthy);
  addRow("chaos", chaos);
  addRow("overload", overload);
  bench::emit(table, "macro_serve");

  bool ok = true;
  const std::size_t total = static_cast<std::size_t>(kChains) * kTurns;

  // Healthy: nothing may fail, every byte must match the oracle — which IS
  // the single-client path, so this is also the fleet-vs-single equality.
  if (healthy.stats.ok != total || healthy.okMatched != total ||
      healthy.okMismatched != 0) {
    std::cerr << "[macro_serve] healthy pass: " << healthy.okMatched << "/"
              << total << " oracle-identical responses (errors "
              << healthy.stats.errors << ", mismatches "
              << healthy.okMismatched << ")\n";
    ok = false;
  }

  // Chaos: successes must stay byte-identical; availability >= 99%; the
  // kill must force failovers and the slowed shard must be ejected on the
  // timeout path.
  if (chaos.okMismatched != 0) {
    std::cerr << "[macro_serve] chaos pass: " << chaos.okMismatched
              << " successful response(s) diverged from the oracle\n";
    ok = false;
  }
  if (chaos.stats.availabilityPct() < 99.0) {
    std::cerr << "[macro_serve] chaos availability "
              << row(chaos.stats.availabilityPct())
              << "% below the 99% floor\n";
    ok = false;
  }
  long long chaosFailovers = 0;
  (void)util::jsonIntField(chaos.drain, "failovers", &chaosFailovers);
  if (chaosFailovers <= 0) {
    std::cerr << "[macro_serve] chaos pass recorded no failovers despite a "
                 "killed shard\n";
    ok = false;
  }
  if (chaos.fleet.timeoutEjections < 1) {
    std::cerr << "[macro_serve] slowed shard was never ejected on the "
                 "timeout path\n";
    ok = false;
  }
  long long chaosHedges = 0;
  (void)util::jsonIntField(chaos.drain, "hedges", &chaosHedges);
  if (chaosHedges < 1) {
    std::cerr << "[macro_serve] chaos pass issued no hedges despite the "
                 "0.3s hedge threshold\n";
    ok = false;
  }
  if (!drainHonest(healthy) || !drainHonest(chaos) || !drainHonest(overload)) {
    ok = false;
  }

  // Overload: the tiny queue must shed most of each burst, and what it
  // admits (the same chains every round) must stay byte-perfect.
  if (overload.stats.shed == 0) {
    std::cerr << "[macro_serve] overload pass shed nothing\n";
    ok = false;
  }
  if (overload.okMismatched != 0 || overload.stats.ok == 0) {
    std::cerr << "[macro_serve] overload pass: " << overload.stats.ok
              << " ok, " << overload.okMismatched << " mismatched\n";
    ok = false;
  }

  if (!ok) return 1;
  std::cout << "[macro_serve] all successful responses oracle-identical; "
               "chaos availability "
            << row(chaos.stats.availabilityPct()) << "% with "
            << chaosFailovers << " failover(s), " << chaosHedges
            << " hedge(s), " << chaos.fleet.timeoutEjections
            << " timeout ejection(s)\n";
  session.complete();
  return 0;
}
