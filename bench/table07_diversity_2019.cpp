// Regenerates Table VII: the diversity of styles for GCJ 2019 (in the paper
// the top two labels carried 58.6% of the mass).
#include "diversity_common.hpp"

int main() { return sca::bench::runDiversityTable(2019, "VII", "table07_diversity_2019"); }
