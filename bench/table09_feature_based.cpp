// Regenerates Table IX: the 205-author accuracy with the FEATURE-BASED
// ChatGPT set (samples grouped by the oracle's predicted style label). In
// the paper this kept ChatGPT recognition at 100/87.5/62.5% across years.
#include "attribution_common.hpp"

int main() {
  return sca::bench::runAttributionTable(sca::core::Approach::FeatureBased,
                                         "IX", "table09_feature_based");
}
