// Shared implementation of Tables VIII (naive) and IX (feature-based):
// the 205-author experiment — per-challenge fold accuracy, plus whether
// the held-out ChatGPT samples (and, for feature-based, the target
// author's samples) were classified correctly.
#pragma once

#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "util/log.hpp"

namespace sca::bench {

inline int runAttributionTable(core::Approach approach,
                               const std::string& romanNumeral,
                               const std::string& outputName) {
  Session session(outputName);
  util::setLogLevel(util::LogLevel::Info);
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  const bool featureBased = approach == core::Approach::FeatureBased;

  util::TablePrinter table(
      featureBased
          ? "Table " + romanNumeral + ": Accuracy (feature-based) for 205 "
            "authors per fold (C challenge, A average, T target label, F "
            "feature-based set; v correct / x incorrect)."
          : "Table " + romanNumeral + ": Accuracy (naive) for 205 authors "
            "per fold (C challenge, A average, N naive set; v correct / x "
            "incorrect).");
  std::vector<std::string> header = {"C"};
  for (const int year : {2017, 2018, 2019}) {
    header.push_back(std::to_string(year) + " 205");
    if (featureBased) {
      header.push_back("T");
      header.push_back("F");
    } else {
      header.push_back("N");
    }
  }
  table.setHeader(header);

  std::vector<core::YearExperiment::AttributionResult> results;
  for (const int year : {2017, 2018, 2019}) {
    core::YearExperiment experiment(year, config);
    results.push_back(experiment.attribution(approach));
  }

  const std::size_t folds = results[0].folds.size();
  for (std::size_t c = 0; c < folds; ++c) {
    std::vector<std::string> row = {"C" + std::to_string(c + 1)};
    for (const auto& result : results) {
      row.push_back(pct(result.folds[c].accuracy205));
      if (featureBased) {
        row.push_back(mark(result.folds[c].targetCorrect));
        row.push_back(mark(result.folds[c].chatgptCorrect));
      } else {
        row.push_back(mark(result.folds[c].chatgptCorrect));
      }
    }
    table.addRow(row);
  }
  table.addSeparator();
  std::vector<std::string> avg = {"A"};
  for (const auto& result : results) {
    avg.push_back(pct(result.meanAccuracy));
    if (featureBased) {
      avg.push_back(util::formatDouble(result.targetCorrectPercent, 1));
      avg.push_back(util::formatDouble(result.chatgptCorrectPercent, 1));
    } else {
      avg.push_back(util::formatDouble(result.chatgptCorrectPercent, 1));
    }
  }
  table.addRow(avg);
  emit(table, outputName);

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "year " << (2017 + static_cast<int>(i))
              << ": ChatGPT set size " << results[i].setSize;
    if (featureBased) {
      std::cout << ", target label A" << results[i].targetLabel;
    }
    std::cout << "\n";
  }
  session.complete();
  return 0;
}

}  // namespace sca::bench
