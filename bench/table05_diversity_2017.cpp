// Regenerates Table V: the diversity of styles for GCJ 2017 (in the paper
// a single label, A49, carried 77.1% of the mass).
#include "diversity_common.hpp"

int main() { return sca::bench::runDiversityTable(2017, "V", "table05_diversity_2017"); }
