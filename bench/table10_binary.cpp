// Regenerates Table X: binary (ChatGPT vs human) classification accuracy —
// individual per-year datasets (8 challenge folds) and the combined
// three-year dataset (5 challenge folds).
#include <iostream>

#include "bench_common.hpp"
#include "core/binary.hpp"
#include "util/log.hpp"

int main() {
  sca::bench::Session session("table10_binary");
  using namespace sca;
  util::setLogLevel(util::LogLevel::Info);
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();

  core::YearExperiment y2017(2017, config);
  core::YearExperiment y2018(2018, config);
  core::YearExperiment y2019(2019, config);

  const core::BinaryIndividualResult r2017 = core::binaryIndividual(y2017);
  const core::BinaryIndividualResult r2018 = core::binaryIndividual(y2018);
  const core::BinaryIndividualResult r2019 = core::binaryIndividual(y2019);
  const core::BinaryCombinedResult combined =
      core::binaryCombined({&y2017, &y2018, &y2019});

  util::TablePrinter table(
      "Table X: Binary classification accuracy (ChatGPT vs Human) for "
      "individual and combined training.");
  table.setHeader({"C", "Ind 2017", "Ind 2018", "Ind 2019", "Comb 2017",
                   "Comb 2018", "Comb 2019", "All"});
  const std::size_t folds = r2017.foldAccuracies.size();
  for (std::size_t c = 0; c < folds; ++c) {
    std::vector<std::string> row = {"C" + std::to_string(c + 1)};
    row.push_back(bench::pct(r2017.foldAccuracies[c]));
    row.push_back(bench::pct(r2018.foldAccuracies[c]));
    row.push_back(bench::pct(r2019.foldAccuracies[c]));
    if (c < combined.perChallenge.size()) {
      for (const double v : combined.perChallenge[c]) {
        row.push_back(bench::pct(v));
      }
    } else {
      row.insert(row.end(), 4, "");
    }
    table.addRow(row);
  }
  table.addSeparator();
  table.addRow({"A", bench::pct(r2017.meanAccuracy),
                bench::pct(r2018.meanAccuracy),
                bench::pct(r2019.meanAccuracy),
                bench::pct(combined.means[0]), bench::pct(combined.means[1]),
                bench::pct(combined.means[2]), bench::pct(combined.means[3])});
  bench::emit(table, "table10_binary");

  std::cout << "Paper reference (A row): individual 90.9 / 89.7 / 93.8, "
               "combined 95.5 / 90.8 / 91.9, All 93.1\n";
  session.complete();
  return 0;
}
