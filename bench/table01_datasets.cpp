// Regenerates Table I: the non-ChatGPT datasets used to train the
// non-ChatGPT authorship models (204 authors x 8 challenges per year).
#include <iostream>

#include "bench_common.hpp"
#include "corpus/dataset.hpp"

int main() {
  sca::bench::Session session("table01_datasets");
  using namespace sca;
  util::TablePrinter table(
      "Table I: Non-ChatGPT code datasets used to train the authorship "
      "models.");
  table.setHeader({"Dataset", "Authors", "Challenges", "Language", "Total"});
  for (const int year : {2017, 2018, 2019}) {
    const corpus::YearDataset ds = corpus::buildYearDataset(year);
    table.addRow({"GCJ " + std::to_string(year),
                  std::to_string(ds.authors.size()),
                  std::to_string(ds.challenges.size()), "C++",
                  std::to_string(ds.samples.size())});
  }
  bench::emit(table, "table01_datasets");

  std::cout << "Challenge catalogue in use:\n";
  for (const int year : {2017, 2018, 2019}) {
    std::cout << "  " << year << ":";
    for (const corpus::Challenge* ch : corpus::challengesForYear(year)) {
      std::cout << " " << ch->id;
    }
    std::cout << "\n";
  }
  session.complete();
  return 0;
}
