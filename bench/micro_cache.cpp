// Cold-vs-warm bench for the persistent cache subsystem (src/cache/).
//
// Three passes over the same workload — the Table II mini build (LLM
// generation + 4 settings x 6 transform steps) followed by feature
// extraction over every produced sample:
//
//   cache_off   no store attached: the PR-1 baseline,
//   cache_cold  store attached but purged: pays every put,
//   cache_warm  same store, in-memory caches cleared: served from disk.
//
// The bench asserts the subsystem's hard invariant — a combined digest of
// every transformed byte and every feature double is identical across the
// three passes (exit 1 otherwise) — and reports the cold/warm wall times
// whose ratio the CI acceptance checks (warm must be >= 3x faster).
// Timings land in bench_out/bench_times.json via the usual emit() path.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cache/store.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "llm/pipelines.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace sca;

constexpr std::size_t kSteps = 6;

/// One full pass: transform build + extractor fit + transformAll.
/// Returns a digest folding every transformed source byte and every
/// feature-vector double (as IEEE-754 bits) — any divergence between cache
/// states lands in this value.
std::uint64_t runPass(const corpus::YearDataset& data,
                      cache::DiskCache* store) {
  llm::BuildOptions options;
  options.steps = kSteps;
  options.faultRate = 0.0;
  options.resultCache = store;
  const llm::TransformedDataset transformed =
      llm::buildTransformedDataset(data, options);

  std::vector<std::string> sources;
  sources.reserve(transformed.samples.size());
  for (const llm::TransformedSample& sample : transformed.samples) {
    sources.push_back(sample.source);
  }

  features::FeatureExtractor extractor;
  extractor.fit(sources);
  const std::vector<std::vector<double>> rows =
      extractor.transformAll(sources);

  std::uint64_t digest = util::hash64("micro_cache");
  for (const std::string& source : sources) {
    digest = util::combine64(digest, util::hash64(source));
  }
  for (const std::vector<double>& row : rows) {
    for (const double v : row) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      digest = util::combine64(digest, bits);
    }
  }
  return digest;
}

/// Resets the in-memory layers so each pass starts from the same process
/// state; only the disk store (when attached) carries warmth across passes.
void resetMemory(cache::DiskCache* store) {
  features::setAnalysisDiskCache(store);
  features::clearAnalysisCache();
}

}  // namespace

int main() {
  bench::Session session("micro_cache");

  const char* envDir = std::getenv("SCA_CACHE_DIR");
  const std::string dir = (envDir != nullptr && *envDir != '\0')
                              ? std::string(envDir)
                              : std::string("bench_out/micro_cache.cache");
  cache::StoreOptions storeOptions;
  storeOptions.dir = dir;
  storeOptions.flushInterval = 32;
  cache::DiskCache store(storeOptions);

  const corpus::YearDataset data = corpus::buildYearDataset(2018, 24);

  const auto timedPass = [&](const char* phase, cache::DiskCache* passStore,
                             std::uint64_t* digest) {
    const auto start = std::chrono::steady_clock::now();
    {
      runtime::PhaseTimer timer(phase);
      *digest = runPass(data, passStore);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t offDigest = 0;
  std::uint64_t coldDigest = 0;
  std::uint64_t warmDigest = 0;

  resetMemory(nullptr);
  const double offSeconds = timedPass("cache_off", nullptr, &offDigest);

  if (!store.purge().isOk()) {
    std::cerr << "[micro_cache] purge failed for " << dir << "\n";
    return 1;
  }
  resetMemory(&store);
  const double coldSeconds = timedPass("cache_cold", &store, &coldDigest);

  resetMemory(&store);
  const double warmSeconds = timedPass("cache_warm", &store, &warmDigest);
  resetMemory(nullptr);

  const cache::DiskCache::Stats stats = store.stats();

  util::TablePrinter table("micro_cache: cold vs warm (steps=" +
                           std::to_string(kSteps) + ")");
  table.setHeader({"pass", "seconds", "digest", "store hits", "store puts"});
  table.addRow({"cache_off", util::formatDouble(offSeconds, 3),
                util::toHex64(offDigest), "-", "-"});
  table.addRow({"cache_cold", util::formatDouble(coldSeconds, 3),
                util::toHex64(coldDigest), "-",
                std::to_string(stats.puts)});
  table.addRow({"cache_warm", util::formatDouble(warmSeconds, 3),
                util::toHex64(warmDigest), std::to_string(stats.hits), "-"});
  const double speedup = warmSeconds > 0.0 ? coldSeconds / warmSeconds : 0.0;
  table.addRow({"speedup (cold/warm)", util::formatDouble(speedup, 2) + "x",
                "", "", ""});
  bench::emit(table, "micro_cache");

  if (offDigest != coldDigest || coldDigest != warmDigest) {
    std::cerr << "[micro_cache] DIGEST MISMATCH: off=" << util::toHex64(offDigest)
              << " cold=" << util::toHex64(coldDigest)
              << " warm=" << util::toHex64(warmDigest) << "\n";
    return 1;
  }
  if (stats.hits == 0) {
    std::cerr << "[micro_cache] warm pass produced no store hits\n";
    return 1;
  }
  // The acceptance floor for the subsystem: serving from disk must beat
  // recomputing by a wide margin, not just nominally.
  constexpr double kMinSpeedup = 3.0;
  if (speedup < kMinSpeedup) {
    std::cerr << "[micro_cache] warm speedup " << util::formatDouble(speedup, 2)
              << "x below the " << util::formatDouble(kMinSpeedup, 1)
              << "x acceptance floor\n";
    return 1;
  }
  std::cout << "[micro_cache] byte-identical across off/cold/warm; warm "
            << util::formatDouble(speedup, 2) << "x faster than cold\n";

  session.complete();
  return 0;
}
