// Sustained-load bench for the serving stack's telemetry layer.
//
// macro_serve proves the fleet survives chaos; this bench measures what
// the fleet sustains and proves the REQUEST-LEVEL telemetry (obs sketches,
// the in-band stats op, the timing echo) observes without participating:
//
//   steady   32 conversations x 8 turns, round-major, stats probes
//            embedded in the stream every other round. Measures wall
//            requests/sec and asserts every response matches the bare
//            single-client oracle byte for byte.
//   repeat   the steady pass re-run on a fresh server: the FULL response
//            byte stream (stats snapshots included) must be identical —
//            live percentile snapshots may not wobble across replays.
//   echo     the steady pass with timingEcho on: responses must carry a
//            "timing" object, and stripping it must NOT be needed for the
//            oracle check (outputs unchanged) — the echo decorates, never
//            perturbs.
//   surge    a 6-slot queue under full-round bursts: most load is shed,
//            so the shed-rate and queue-depth sketches see real pressure.
//
// Manifest: the serve sketches (serve_latency_s, serve_queue_wait_s,
// serve_queue_depth, serve_batch_size, serve_shed_rate_pct) land in the
// "sketches" section via SketchRegistry; requests/sec is recorded as the
// runtime gauge serve_requests_per_s. `sca_cli history check` gates the
// phase times like every other bench.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus/challenges.hpp"
#include "llm/synthetic_llm.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace sca;

constexpr int kChains = 32;
constexpr int kTurns = 8;
constexpr int kYear = 2017;
constexpr int kDeadlineSeconds = 240;

/// chain -> oracle transcript, exactly macro_serve's construction: the
/// serving fleet must reproduce the bare chain-seeded model byte for byte.
std::vector<std::vector<std::string>> buildOracle(
    const std::vector<const corpus::Challenge*>& challenges) {
  std::vector<std::vector<std::string>> oracle(kChains);
  for (int chain = 0; chain < kChains; ++chain) {
    llm::LlmOptions options;
    options.year = kYear;
    options.seed = util::combine64(util::hash64("serve-chain"),
                                   static_cast<std::uint64_t>(chain));
    llm::SyntheticLlm model(options);
    std::vector<std::string>& turns =
        oracle[static_cast<std::size_t>(chain)];
    turns.reserve(kTurns);
    turns.push_back(model.generate(
        *challenges[static_cast<std::size_t>(chain) % challenges.size()]));
    for (int turn = 1; turn < kTurns; ++turn) {
      turns.push_back(model.transform(turns.back()));
    }
  }
  return oracle;
}

struct RequestRef {
  int chain = 0;
  int turn = 0;
};

/// Round-major stream with an {"op":"stats"} probe before every second
/// round and one more at the end — the live snapshots ride the same stream
/// they observe.
std::string buildStream(const std::vector<std::vector<std::string>>& oracle,
                        std::map<std::string, RequestRef>* byId) {
  std::string stream;
  for (int turn = 0; turn < kTurns; ++turn) {
    if (turn % 2 == 0) {
      stream += util::JsonObjectBuilder()
                    .add("op", "stats")
                    .add("id", "stats_r" + std::to_string(turn))
                    .str();
      stream += '\n';
    }
    for (int chain = 0; chain < kChains; ++chain) {
      const std::string id =
          "c" + std::to_string(chain) + "t" + std::to_string(turn);
      (*byId)[id] = RequestRef{chain, turn};
      util::JsonObjectBuilder line;
      if (turn == 0) {
        line.add("op", "generate")
            .add("id", id)
            .addInt("chain", chain)
            .addInt("challenge", chain % 8)
            .addInt("deadline_s", kDeadlineSeconds);
      } else {
        line.add("op", "transform")
            .add("id", id)
            .addInt("chain", chain)
            .add("source",
                 oracle[static_cast<std::size_t>(chain)]
                       [static_cast<std::size_t>(turn) - 1])
            .addInt("deadline_s", kDeadlineSeconds);
      }
      stream += line.str();
      stream += '\n';
    }
  }
  stream += util::JsonObjectBuilder()
                .add("op", "stats")
                .add("id", "stats_final")
                .str();
  stream += '\n';
  return stream;
}

struct PassResult {
  serve::ServeStats stats;
  std::string output;       // the full response byte stream
  std::string drain;
  std::string finalStats;   // the last stats-op response line
  std::size_t okMatched = 0;
  std::size_t okMismatched = 0;
  std::size_t timingFields = 0;  // ok/error lines carrying "timing"
  double wallSeconds = 0.0;
  double latencyP50 = 0.0;
  double latencyP99 = 0.0;
  std::uint64_t latencyCount = 0;
  std::uint64_t queueWaitCount = 0;
};

PassResult runPass(const char* phase, const std::string& stream,
                   serve::ServerOptions options,
                   const std::vector<std::vector<std::string>>& oracle,
                   const std::map<std::string, RequestRef>& byId,
                   bool oracleCheck = true) {
  runtime::PhaseTimer timer(phase);
  serve::Server server(std::move(options));
  std::istringstream in(stream);
  std::ostringstream out;

  PassResult result;
  const auto start = std::chrono::steady_clock::now();
  result.stats = server.run(in, out);
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.output = out.str();
  result.drain = server.drainRecord();
  result.latencyP50 = server.latencySketch().quantile(0.50);
  result.latencyP99 = server.latencySketch().quantile(0.99);
  result.latencyCount = server.latencySketch().count();
  result.queueWaitCount = server.queueWaitSketch().count();

  std::istringstream responses(result.output);
  std::string line;
  while (std::getline(responses, line)) {
    std::string op;
    if (util::jsonStringField(line, "op", &op) && op == "stats") {
      result.finalStats = line;
      continue;
    }
    if (line.find("\"timing\":{") != std::string::npos) {
      ++result.timingFields;
    }
    std::string status;
    if (!util::jsonStringField(line, "status", &status) || status != "ok" ||
        !oracleCheck) {
      // Shedding rewinds a chain's conversation state relative to the
      // oracle's, so passes that shed are not oracle-comparable.
      continue;
    }
    std::string id;
    std::string output;
    if (!util::jsonStringField(line, "id", &id) ||
        !util::jsonStringField(line, "output", &output)) {
      ++result.okMismatched;
      continue;
    }
    const auto ref = byId.find(id);
    const bool matched =
        ref != byId.end() &&
        output == oracle[static_cast<std::size_t>(ref->second.chain)]
                        [static_cast<std::size_t>(ref->second.turn)];
    if (matched) {
      ++result.okMatched;
    } else {
      ++result.okMismatched;
      std::cerr << "[macro_serve_load] " << phase << ": response " << id
                << " diverged from the oracle\n";
    }
  }
  return result;
}

std::string row(double value, int precision = 2) {
  return util::formatDouble(value, precision);
}

}  // namespace

int main() {
  bench::Session session("macro_serve_load");

  const std::vector<const corpus::Challenge*> challenges =
      corpus::challengesForYear(kYear);
  std::vector<std::vector<std::string>> oracle;
  {
    runtime::PhaseTimer timer("load_oracle");
    oracle = buildOracle(challenges);
  }

  std::map<std::string, RequestRef> byId;
  const std::string stream = buildStream(oracle, &byId);
  const std::size_t total = static_cast<std::size_t>(kChains) * kTurns;

  serve::ServerOptions base;
  base.queueCapacity = 256;
  base.batchSize = 16;
  base.arrivalBurst = 32;
  base.year = kYear;
  base.fleet.shards = 4;
  base.fleet.year = kYear;

  const PassResult steady =
      runPass("load_steady", stream, base, oracle, byId);
  const PassResult repeat =
      runPass("load_repeat", stream, base, oracle, byId);

  serve::ServerOptions echoOptions = base;
  echoOptions.timingEcho = true;
  const PassResult echo =
      runPass("load_echo", stream, echoOptions, oracle, byId);

  serve::ServerOptions surgeOptions = base;
  surgeOptions.queueCapacity = 6;
  surgeOptions.arrivalBurst = kChains;  // one full round per burst
  surgeOptions.fleet.faultRate = 0.10;  // retries charge simulated seconds
  const PassResult surge = runPass("load_surge", stream, surgeOptions,
                                   oracle, byId, /*oracleCheck=*/false);

  const double rps =
      static_cast<double>(steady.stats.requests) /
      std::max(steady.wallSeconds, 1e-9);
  obs::MetricsRegistry::global()
      .gauge("serve_requests_per_s", obs::GaugeKind::kMax)
      .recordMax(rps);
  obs::MetricsRegistry::global()
      .gauge("serve_surge_shed_pct", obs::GaugeKind::kMax)
      .recordMax(100.0 * static_cast<double>(surge.stats.shed) /
                 static_cast<double>(surge.stats.requests));

  util::TablePrinter table(
      "macro_serve_load: " + std::to_string(kChains) + " chains x " +
      std::to_string(kTurns) + " turns, shards=4");
  table.setHeader({"pass", "ok", "shed", "avail %", "p50 sim_s", "p99 sim_s",
                   "req/s"});
  const auto addRow = [&](const char* name, const PassResult& result,
                          double passRps) {
    table.addRow({name, std::to_string(result.stats.ok),
                  std::to_string(result.stats.shed),
                  result.stats.availabilityDisplay(),
                  row(result.latencyP50, 3), row(result.latencyP99, 3),
                  passRps > 0.0 ? row(passRps, 0) : "--"});
  };
  addRow("steady", steady, rps);
  addRow("repeat", repeat, 0.0);
  addRow("echo", echo, 0.0);
  addRow("surge", surge, 0.0);
  bench::emit(table, "macro_serve_load");

  bool ok = true;

  // Steady: full success, byte-identical to the oracle, and every request
  // observed by both the latency and queue-wait sketches.
  if (steady.stats.ok != total || steady.okMatched != total ||
      steady.okMismatched != 0) {
    std::cerr << "[macro_serve_load] steady pass: " << steady.okMatched
              << "/" << total << " oracle-identical (errors "
              << steady.stats.errors << ")\n";
    ok = false;
  }
  if (steady.latencyCount != total || steady.queueWaitCount != total) {
    std::cerr << "[macro_serve_load] sketches observed "
              << steady.latencyCount << "/" << steady.queueWaitCount
              << " of " << total << " requests\n";
    ok = false;
  }
  if (!(steady.latencyP50 <= steady.latencyP99)) {
    std::cerr << "[macro_serve_load] latency percentiles not monotone: p50="
              << steady.latencyP50 << " p99=" << steady.latencyP99 << "\n";
    ok = false;
  }
  if (steady.finalStats.find("\"op\":\"stats\"") == std::string::npos ||
      steady.finalStats.find("\"latency\":{") == std::string::npos ||
      steady.finalStats.find("\"queue\":{") == std::string::npos ||
      steady.finalStats.find("\"shards\":[") == std::string::npos) {
    std::cerr << "[macro_serve_load] stats op response incomplete: "
              << steady.finalStats << "\n";
    ok = false;
  }
  if (steady.timingFields != 0) {
    std::cerr << "[macro_serve_load] timing echo leaked into a pass that "
                 "did not enable it\n";
    ok = false;
  }

  // Repeat: the whole byte stream — data responses, stats snapshots, drain
  // record — must replay identically. This is the telemetry determinism
  // gate: sketches and counters may not perturb or wobble.
  if (repeat.output != steady.output) {
    std::cerr << "[macro_serve_load] repeat pass byte-diverged from the "
                 "steady pass (telemetry is not deterministic)\n";
    ok = false;
  }

  // Echo: every data response carries timing, and the payloads still match
  // the oracle — the echo is decoration, not perturbation.
  if (echo.timingFields != total) {
    std::cerr << "[macro_serve_load] timing echo on " << echo.timingFields
              << "/" << total << " responses\n";
    ok = false;
  }
  if (echo.okMatched != total || echo.okMismatched != 0) {
    std::cerr << "[macro_serve_load] echo pass diverged from the oracle\n";
    ok = false;
  }

  // Surge: the tiny queue must shed under full-round bursts, and the
  // pressure must be visible in the global sketch registry.
  if (surge.stats.shed == 0) {
    std::cerr << "[macro_serve_load] surge pass shed nothing\n";
    ok = false;
  }
  const std::map<std::string, obs::QuantileSketch> sketches =
      obs::SketchRegistry::global().snapshot();
  for (const char* name :
       {"serve_latency_s", "serve_queue_wait_s", "serve_queue_depth",
        "serve_batch_size", "serve_shed_rate_pct"}) {
    const auto it = sketches.find(name);
    if (it == sketches.end() || it->second.empty()) {
      std::cerr << "[macro_serve_load] sketch " << name
                << " missing or empty in the registry\n";
      ok = false;
    }
  }

  if (!ok) return 1;
  std::cout << "[macro_serve_load] " << total << " requests/pass at "
            << row(rps, 0) << " req/s steady; repeat pass byte-identical; "
            << echo.timingFields << " timing echoes; surge shed "
            << surge.stats.shed << " with shed-rate p99 "
            << row(obs::SketchRegistry::global()
                       .snapshot()
                       .at("serve_shed_rate_pct")
                       .quantile(0.99),
                   1)
            << "%\n";
  session.complete();
  return 0;
}
