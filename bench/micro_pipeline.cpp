// Microbenchmarks (google-benchmark) for the pipeline primitives: lexing,
// layout metrics, parsing, rendering, style application, feature
// extraction and random-forest train/predict.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "bench_common.hpp"
#include "core/attribution_model.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"
#include "llm/pipelines.hpp"
#include "ml/random_forest.hpp"
#include "runtime/thread_pool.hpp"
#include "style/apply.hpp"
#include "util/rng.hpp"

namespace {

using namespace sca;

const std::string& sampleSource() {
  static const std::string kSource = [] {
    const auto authors = corpus::makeAuthorPopulation(2018, 1);
    return corpus::renderSolution(authors[0],
                                  corpus::challengeById("tidy"), 2018, 0);
  }();
  return kSource;
}

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer::tokenize(sampleSource()));
  }
}
BENCHMARK(BM_Tokenize);

void BM_LayoutMetrics(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer::computeLayoutMetrics(sampleSource()));
  }
}
BENCHMARK(BM_LayoutMetrics);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ast::parse(sampleSource()));
  }
}
BENCHMARK(BM_Parse);

void BM_Render(benchmark::State& state) {
  const ast::ParseResult parsed = ast::parse(sampleSource());
  const ast::RenderOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ast::render(parsed.unit, options));
  }
}
BENCHMARK(BM_Render);

void BM_ApplyStyle(benchmark::State& state) {
  const ast::ParseResult parsed = ast::parse(sampleSource());
  util::Rng rng(7);
  const style::StyleProfile profile = style::sampleProfile(rng);
  std::uint64_t salt = 0;
  for (auto _ : state) {
    util::Rng applyRng(salt++);
    benchmark::DoNotOptimize(
        style::applyStyle(parsed.unit, profile, applyRng));
  }
}
BENCHMARK(BM_ApplyStyle);

void BM_FeatureTransform(benchmark::State& state) {
  features::FeatureExtractor extractor;
  extractor.fit({sampleSource()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.transform(sampleSource()));
  }
}
BENCHMARK(BM_FeatureTransform);

ml::Dataset syntheticDataset(std::size_t rows, std::size_t dims,
                             int classes) {
  util::Rng rng(11);
  ml::Dataset data;
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(classes));
    std::vector<double> row(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = rng.uniformReal() + (d % static_cast<std::size_t>(classes) ==
                                            static_cast<std::size_t>(label)
                                        ? 0.6
                                        : 0.0);
    }
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  return data;
}

void BM_ForestFit(benchmark::State& state) {
  const ml::Dataset data = syntheticDataset(800, 120, 16);
  ml::ForestConfig config;
  config.treeCount = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.treeCount());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(40);

void BM_ForestPredict(benchmark::State& state) {
  const ml::Dataset data = syntheticDataset(800, 120, 16);
  ml::RandomForest forest(ml::ForestConfig{.treeCount = 40});
  forest.fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data.x[0]));
  }
}
BENCHMARK(BM_ForestPredict);

// ---------------------------------------------------- parallel pipeline --
// The macro benchmarks below exercise the shared runtime pool end to end.
// Compare SCA_THREADS=1 vs default to measure the parallel speedup of a
// full table-style regeneration (corpus -> transform -> train -> predict).

const corpus::YearDataset& miniCorpus() {
  static const corpus::YearDataset kCorpus =
      corpus::buildYearDataset(2018, 24);
  return kCorpus;
}

void BM_BuildTransformedDataset(benchmark::State& state) {
  const corpus::YearDataset& data = miniCorpus();
  const auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::buildTransformedDataset(data, steps));
  }
  state.counters["threads"] =
      static_cast<double>(runtime::globalPool().size());
}
BENCHMARK(BM_BuildTransformedDataset)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FeatureTransformAll(benchmark::State& state) {
  const corpus::YearDataset& data = miniCorpus();
  std::vector<std::string> sources;
  for (const corpus::CodeSample& sample : data.samples) {
    sources.push_back(sample.source);
  }
  features::FeatureExtractor extractor;
  extractor.fit(sources);
  for (auto _ : state) {
    features::clearAnalysisCache();  // measure extraction, not memoization
    benchmark::DoNotOptimize(extractor.transformAll(sources));
  }
  state.counters["threads"] =
      static_cast<double>(runtime::globalPool().size());
}
BENCHMARK(BM_FeatureTransformAll)->Unit(benchmark::kMillisecond);

void BM_AttributionTrainPredict(benchmark::State& state) {
  const corpus::YearDataset& data = miniCorpus();
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& sample : data.samples) {
    sources.push_back(sample.source);
    labels.push_back(sample.authorId);
  }
  core::ModelConfig config;
  config.forest.treeCount = 60;
  for (auto _ : state) {
    features::clearAnalysisCache();
    core::AttributionModel model(config);
    model.train(sources, labels);
    benchmark::DoNotOptimize(model.predictAll(sources));
  }
  state.counters["threads"] =
      static_cast<double>(runtime::globalPool().size());
}
BENCHMARK(BM_AttributionTrainPredict)->Unit(benchmark::kMillisecond);

/// SCA_PIPELINE_ONCE mode: exactly one deterministic pass over the mini
/// pipeline (corpus -> transform -> train -> predict), each stage under a
/// PhaseTimer. Unlike the google-benchmark path, whose adaptive iteration
/// counts vary run to run, this mode performs a fixed event sequence — so
/// the manifest's stable metrics section is byte-identical across
/// SCA_THREADS values, which is what the CI observability smoke compares.
int runPipelineOnce() {
  const corpus::YearDataset* data = nullptr;
  {
    runtime::PhaseTimer timer("corpus_build");
    data = &miniCorpus();
  }
  llm::TransformedDataset transformed;
  {
    runtime::PhaseTimer timer("llm_transform");
    transformed = llm::buildTransformedDataset(*data, 3);
  }
  std::vector<std::string> sources;
  std::vector<int> labels;
  for (const corpus::CodeSample& sample : data->samples) {
    sources.push_back(sample.source);
    labels.push_back(sample.authorId);
  }
  core::ModelConfig config;
  config.forest.treeCount = 60;
  core::AttributionModel model(config);
  {
    runtime::PhaseTimer timer("train");
    model.train(sources, labels);
  }
  std::vector<int> predictions;
  {
    runtime::PhaseTimer timer("predict");
    predictions = model.predictAll(sources);
  }

  // Deterministic digest of everything the pass produced — every
  // transformed sample byte and every predicted label. This line must be
  // byte-identical with the result cache off, cold or warm, at any
  // SCA_THREADS; the CI cache smoke compares it across those runs.
  std::uint64_t digest = util::hash64("pipeline");
  for (const llm::TransformedSample& sample : transformed.samples) {
    digest = util::combine64(digest, util::hash64(sample.source));
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    digest = util::combine64(digest,
                             static_cast<std::uint64_t>(predictions[i]));
    if (predictions[i] == labels[i]) ++correct;
  }
  const double accuracy =
      predictions.empty()
          ? 0.0
          : static_cast<double>(correct) /
                static_cast<double>(predictions.size());
  std::cout << "[pipeline] digest=" << util::toHex64(digest)
            << " transformed=" << transformed.samples.size()
            << " accuracy=" << util::formatDouble(accuracy, 6) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sca::bench::Session session("micro_pipeline");
  if (const char* once = std::getenv("SCA_PIPELINE_ONCE");
      once != nullptr && *once != '\0') {
    const int rc = runPipelineOnce();
    if (rc == 0) session.complete();
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  session.complete();
  return 0;
}
