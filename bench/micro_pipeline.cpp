// Microbenchmarks (google-benchmark) for the pipeline primitives: lexing,
// layout metrics, parsing, rendering, style application, feature
// extraction and random-forest train/predict.
#include <benchmark/benchmark.h>

#include "ast/parser.hpp"
#include "ast/render.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"
#include "ml/random_forest.hpp"
#include "style/apply.hpp"
#include "util/rng.hpp"

namespace {

using namespace sca;

const std::string& sampleSource() {
  static const std::string kSource = [] {
    const auto authors = corpus::makeAuthorPopulation(2018, 1);
    return corpus::renderSolution(authors[0],
                                  corpus::challengeById("tidy"), 2018, 0);
  }();
  return kSource;
}

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer::tokenize(sampleSource()));
  }
}
BENCHMARK(BM_Tokenize);

void BM_LayoutMetrics(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lexer::computeLayoutMetrics(sampleSource()));
  }
}
BENCHMARK(BM_LayoutMetrics);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ast::parse(sampleSource()));
  }
}
BENCHMARK(BM_Parse);

void BM_Render(benchmark::State& state) {
  const ast::ParseResult parsed = ast::parse(sampleSource());
  const ast::RenderOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ast::render(parsed.unit, options));
  }
}
BENCHMARK(BM_Render);

void BM_ApplyStyle(benchmark::State& state) {
  const ast::ParseResult parsed = ast::parse(sampleSource());
  util::Rng rng(7);
  const style::StyleProfile profile = style::sampleProfile(rng);
  std::uint64_t salt = 0;
  for (auto _ : state) {
    util::Rng applyRng(salt++);
    benchmark::DoNotOptimize(
        style::applyStyle(parsed.unit, profile, applyRng));
  }
}
BENCHMARK(BM_ApplyStyle);

void BM_FeatureTransform(benchmark::State& state) {
  features::FeatureExtractor extractor;
  extractor.fit({sampleSource()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.transform(sampleSource()));
  }
}
BENCHMARK(BM_FeatureTransform);

ml::Dataset syntheticDataset(std::size_t rows, std::size_t dims,
                             int classes) {
  util::Rng rng(11);
  ml::Dataset data;
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(classes));
    std::vector<double> row(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = rng.uniformReal() + (d % static_cast<std::size_t>(classes) ==
                                            static_cast<std::size_t>(label)
                                        ? 0.6
                                        : 0.0);
    }
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  return data;
}

void BM_ForestFit(benchmark::State& state) {
  const ml::Dataset data = syntheticDataset(800, 120, 16);
  ml::ForestConfig config;
  config.treeCount = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.fit(data);
    benchmark::DoNotOptimize(forest.treeCount());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(40);

void BM_ForestPredict(benchmark::State& state) {
  const ml::Dataset data = syntheticDataset(800, 120, 16);
  ml::RandomForest forest(ml::ForestConfig{.treeCount = 40});
  forest.fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data.x[0]));
  }
}
BENCHMARK(BM_ForestPredict);

}  // namespace

BENCHMARK_MAIN();
