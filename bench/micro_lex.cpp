// Microbenchmarks (google-benchmark) for the analysis front end in
// isolation: zero-copy lexing, trivia filtering, parsing into the arena and
// the full analyze() path (lex + layout + parse + summarize), each swept
// over every rendering of a seeded mini corpus rather than a single sample.
// This is the harness behind the lexer/AST perf work: the per-stage rows
// show where analysis-phase time goes, and bench_out history keeps the
// trajectory across runs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ast/parser.hpp"
#include "bench_common.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"

namespace {

using namespace sca;

/// Every source rendering in a small deterministic corpus: the realistic
/// mix of styles and sizes the analysis phase sees in the pipeline.
const std::vector<std::string>& corpusSources() {
  static const std::vector<std::string> kSources = [] {
    const corpus::YearDataset data = corpus::buildYearDataset(2018, 24);
    std::vector<std::string> sources;
    sources.reserve(data.samples.size());
    for (const corpus::CodeSample& sample : data.samples) {
      sources.push_back(sample.source);
    }
    return sources;
  }();
  return kSources;
}

void BM_LexCorpus(benchmark::State& state) {
  const std::vector<std::string>& sources = corpusSources();
  std::size_t bytes = 0;
  for (const std::string& s : sources) bytes += s.size();
  for (auto _ : state) {
    std::size_t tokens = 0;
    for (const std::string& source : sources) {
      const lexer::TokenStream stream = lexer::tokenize(source);
      tokens += stream.size();
    }
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_LexCorpus)->Unit(benchmark::kMillisecond);

void BM_WithoutTriviaCorpus(benchmark::State& state) {
  const std::vector<std::string>& sources = corpusSources();
  std::vector<lexer::TokenStream> streams;
  streams.reserve(sources.size());
  for (const std::string& source : sources) {
    streams.push_back(lexer::tokenize(source));
  }
  for (auto _ : state) {
    std::size_t kept = 0;
    for (const lexer::TokenStream& stream : streams) {
      kept += lexer::withoutTrivia(stream).size();
    }
    benchmark::DoNotOptimize(kept);
  }
}
BENCHMARK(BM_WithoutTriviaCorpus)->Unit(benchmark::kMillisecond);

void BM_LayoutCorpus(benchmark::State& state) {
  const std::vector<std::string>& sources = corpusSources();
  for (auto _ : state) {
    for (const std::string& source : sources) {
      benchmark::DoNotOptimize(lexer::computeLayoutMetrics(source));
    }
  }
}
BENCHMARK(BM_LayoutCorpus)->Unit(benchmark::kMillisecond);

void BM_ParseCorpus(benchmark::State& state) {
  const std::vector<std::string>& sources = corpusSources();
  for (auto _ : state) {
    std::size_t functions = 0;
    for (const std::string& source : sources) {
      functions += ast::parse(source).unit.functions.size();
    }
    benchmark::DoNotOptimize(functions);
  }
}
BENCHMARK(BM_ParseCorpus)->Unit(benchmark::kMillisecond);

void BM_AnalyzeCorpus(benchmark::State& state) {
  // The full analyze() path (lex + layout + parse + summarize) plus the
  // feature-vector assembly, via the extractor front door.
  const std::vector<std::string>& sources = corpusSources();
  features::FeatureExtractor extractor;
  extractor.fit(sources);
  for (auto _ : state) {
    features::clearAnalysisCache();  // measure analysis, not memoization
    std::size_t dims = 0;
    for (const std::string& source : sources) {
      dims += extractor.transform(source).size();
    }
    benchmark::DoNotOptimize(dims);
  }
}
BENCHMARK(BM_AnalyzeCorpus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sca::bench::Session session("micro_lex");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  session.complete();
  return 0;
}
