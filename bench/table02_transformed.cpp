// Regenerates Table II: ChatGPT-transformed datasets built with the
// non-chaining (NCT) and chaining (CT) schedules over ChatGPT-generated
// and human (non-ChatGPT) originals.
#include <map>
#include <string>

#include "bench_common.hpp"
#include "core/experiments.hpp"

int main() {
  sca::bench::Session session("table02_transformed");
  using namespace sca;
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  util::TablePrinter table(
      "Table II: ChatGPT-transformed datasets per challenge "
      "(+N ChatGPT+NCT, +C ChatGPT+CT, ~N non-ChatGPT+NCT, ~C "
      "non-ChatGPT+CT).");
  table.setHeader({"Dataset", "+N", "+C", "~N", "~C", "Total"});
  for (const int year : {2017, 2018, 2019}) {
    core::YearExperiment experiment(year, config);
    const llm::TransformedDataset& ds = experiment.transformedData();
    std::map<llm::Setting, std::size_t> perChallenge;
    for (const llm::TransformedSample& sample : ds.samples) {
      if (sample.challengeIndex == 0) ++perChallenge[sample.setting];
    }
    const std::size_t challenges =
        experiment.corpusData().challenges.size();
    table.addRow({
        "GCJ " + std::to_string(year),
        std::to_string(perChallenge[llm::Setting::ChatGptNct]),
        std::to_string(perChallenge[llm::Setting::ChatGptCt]),
        std::to_string(perChallenge[llm::Setting::HumanNct]),
        std::to_string(perChallenge[llm::Setting::HumanCt]),
        std::to_string(ds.samples.size()) + " (" +
            std::to_string(ds.samples.size() / challenges) + "x" +
            std::to_string(challenges) + ")",
    });
  }
  bench::emit(table, "table02_transformed");
  session.complete();
  return 0;
}
