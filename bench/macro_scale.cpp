// Out-of-core corpus scale bench: generate, train and predict over a
// feature matrix that is never fully resident.
//
// Flow (order matters — ru_maxrss is a process-lifetime high-water mark,
// so the streaming phases run BEFORE any resident control work and the
// recorded peak belongs to the out-of-core path):
//
//   fit        freeze the extractor vocabularies on a small seed cohort
//              (first <=128 authors), exactly what corpus generation pins
//              into the matrix metaHash,
//   generate   buildYearMatrix(): sharded render+extract on the runtime
//              pool, crash-safe segments, deterministic merge,
//   hash       matrixContentHash() over the final file (block-resident),
//              recorded as the stable counter scale_matrix_hash — equal
//              bytes across shard sizes / thread counts / crash-resume
//              cycles <=> equal counter,
//   train      RandomForest on an index VIEW of the first train-authors'
//              rows (no row copies; the view reads the mmap directly),
//   predict    streaming predictAll over the full matrix under the
//              residency budget; the fold of every vote is recorded as
//              the stable counter scale_pred_hash,
//   control    a strided sample of rows copied into an owned dataset and
//              predicted through the resident path.
//
// Hard assertions (exit 1):
//   * every control prediction is identical to the streaming prediction
//     of the same row — the out-of-core path changes where bytes live,
//     never what is computed;
//   * when the matrix is big enough for the comparison to mean anything
//     (>= 16 MiB on disk), the streaming peak RSS is strictly below the
//     estimated footprint of holding the corpus as owned rows — the bench
//     fails if out-of-core stops being cheaper than resident.
//
// The peak lands in the manifest via rusage_max_rss_kb, so
// `sca_cli history check` flags an RSS regression across runs the same
// way it flags a slowdown. SCA_SCALE_CRASH_SHARDS injects a mid-build
// crash (nonzero exit, segments left behind) for the resume smoke test.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus/authors.hpp"
#include "corpus/challenges.hpp"
#include "corpus/dataset.hpp"
#include "features/extractor.hpp"
#include "ml/dataset.hpp"
#include "ml/matrix.hpp"
#include "ml/random_forest.hpp"
#include "runtime/timer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace sca;

constexpr int kYear = 2017;
constexpr std::size_t kFitAuthors = 128;    // vocabulary seed cohort
constexpr std::size_t kControlRows = 4096;  // resident-control sample cap
constexpr std::size_t kRssCheckFloorBytes = std::size_t{16} << 20;

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  return end != raw && parsed > 0 ? static_cast<std::size_t>(parsed)
                                  : fallback;
}

std::string mb(std::size_t bytes) {
  return util::formatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0),
                            1);
}

/// Lifetime high-water RSS in KB as getrusage reports it right now.
double peakRssKb() {
  obs::recordProcessRusage();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot(obs::Scope::kLifetime);
  const auto it = snapshot.gauges.find("rusage_max_rss_kb");
  return it == snapshot.gauges.end() ? 0.0 : it->second;
}

}  // namespace

int main() {
  bench::Session session("macro_scale");

  const std::size_t authorCount = envSize("SCA_SCALE_AUTHORS", 50000);
  const std::size_t shardSize = envSize("SCA_SCALE_SHARD", 2048);
  const std::size_t budgetBytes = envSize("SCA_SCALE_BUDGET_MB", 64) << 20;
  const std::size_t trainAuthors =
      std::min(envSize("SCA_SCALE_TRAIN_AUTHORS", 256), authorCount);
  const std::size_t treeCount = envSize("SCA_SCALE_TREES", 16);
  std::string outDir = "bench_out/scale";
  if (const char* dir = std::getenv("SCA_SCALE_DIR");
      dir != nullptr && *dir != '\0') {
    outDir = dir;
  }

  const std::vector<const corpus::Challenge*> challenges =
      corpus::challengesForYear(kYear);

  // Vocabulary fit on the seed cohort. transformUncached is the extraction
  // path generation uses, but fitting itself is tiny (<=128 authors) and
  // deterministic in (year, cohort size) only.
  features::FeatureExtractor extractor;
  {
    runtime::PhaseTimer timer("scale_fit");
    const std::vector<corpus::Author> seed = corpus::makeAuthorPopulation(
        kYear, std::min(authorCount, kFitAuthors));
    std::vector<std::string> sources;
    sources.reserve(seed.size() * challenges.size());
    for (const corpus::Author& author : seed) {
      for (std::size_t c = 0; c < challenges.size(); ++c) {
        sources.push_back(corpus::renderSolution(author, *challenges[c],
                                                 kYear,
                                                 static_cast<int>(c)));
      }
    }
    extractor.fit(sources);
  }

  corpus::ScaleConfig config;
  config.year = kYear;
  config.authorCount = authorCount;
  config.outDir = outDir;
  config.shardSize = shardSize;
  config.crashAfterShards = envSize("SCA_SCALE_CRASH_SHARDS", 0);

  corpus::ScaleBuildResult build;
  {
    runtime::PhaseTimer timer("scale_generate");
    util::Result<corpus::ScaleBuildResult> result =
        corpus::buildYearMatrix(extractor, config);
    if (!result.ok()) {
      // Injected crashes land here too — nonzero exit, partial manifest,
      // segments left behind for the resume run.
      std::cerr << "macro_scale: generation failed: "
                << result.status().toString() << "\n";
      return 3;
    }
    build = result.value();
  }

  util::Result<ml::MatrixFile> opened = ml::MatrixFile::open(
      build.matrixPath,
      corpus::yearMatrixMetaHash(extractor, kYear, authorCount));
  if (!opened.ok()) {
    std::cerr << "macro_scale: reopen failed: "
              << opened.status().toString() << "\n";
    return 1;
  }
  const ml::MatrixFile file = std::move(opened.value());
  file.setResidencyBudget(budgetBytes);

  std::uint64_t matrixHash = 0;
  {
    runtime::PhaseTimer timer("scale_hash");
    matrixHash = ml::matrixContentHash(file);
  }
  obs::MetricsRegistry::global().counter("scale_matrix_hash").add(matrixHash);

  const ml::Dataset full = ml::Dataset::fromMatrix(file);
  std::vector<std::size_t> trainIdx(trainAuthors * challenges.size());
  for (std::size_t i = 0; i < trainIdx.size(); ++i) trainIdx[i] = i;
  const ml::Dataset trainView = full.subsetView(trainIdx);

  ml::ForestConfig forestConfig;
  forestConfig.treeCount = treeCount;
  forestConfig.seed = util::hash64("macro-scale-forest");
  ml::RandomForest forest(forestConfig);
  {
    runtime::PhaseTimer timer("scale_train");
    forest.fit(trainView);
  }

  std::vector<int> streamed;
  {
    runtime::PhaseTimer timer("scale_predict_stream");
    streamed = forest.predictAll(full);
  }
  std::uint64_t predHash = util::hash64("scale-pred-v1");
  for (const int vote : streamed) {
    predHash = util::combine64(predHash, static_cast<std::uint64_t>(vote));
  }
  obs::MetricsRegistry::global().counter("scale_pred_hash").add(predHash);

  std::size_t trainHits = 0;
  for (const std::size_t i : trainIdx) {
    if (streamed[i] == full.y[i]) ++trainHits;
  }

  // Streaming peak, sampled BEFORE any resident work touches memory.
  const double streamPeakKb = peakRssKb();
  const std::size_t streamPeakBytes =
      static_cast<std::size_t>(streamPeakKb) * 1024;
  // What holding the corpus as owned rows would cost: payload plus
  // per-row vector bookkeeping (heap header + size/capacity/pointer).
  const std::size_t residentEstimate =
      full.size() * (file.cols() * sizeof(double) + 48);

  // Resident control: strided row sample, copied into owned storage,
  // predicted through the non-streaming path.
  std::vector<std::size_t> controlIdx;
  {
    const std::size_t stride =
        std::max<std::size_t>(1, full.size() / kControlRows);
    for (std::size_t i = 0; i < full.size(); i += stride) {
      controlIdx.push_back(i);
    }
  }
  std::size_t controlMismatches = 0;
  {
    runtime::PhaseTimer timer("scale_control");
    const ml::Dataset control = full.subset(controlIdx);
    const std::vector<int> controlPreds = forest.predictAll(control);
    for (std::size_t j = 0; j < controlIdx.size(); ++j) {
      if (controlPreds[j] != streamed[controlIdx[j]]) ++controlMismatches;
    }
  }

  const bool rssCheckActive = file.fileBytes() >= kRssCheckFloorBytes;
  const bool rssBoundOk =
      !rssCheckActive || streamPeakBytes < residentEstimate;

  util::TablePrinter table(
      "macro_scale: out-of-core corpus generate / train / predict");
  table.setHeader({"metric", "value"});
  table.addRow({"authors", std::to_string(authorCount)});
  table.addRow({"rows", std::to_string(build.rows)});
  table.addRow({"cols", std::to_string(build.cols)});
  table.addRow({"matrix_mb", mb(file.fileBytes())});
  table.addRow({"shards", std::to_string(build.shardCount)});
  table.addRow({"fresh_shards", std::to_string(build.freshShards)});
  table.addRow({"resumed_shards", std::to_string(build.resumedShards)});
  table.addRow({"reused_final", bench::mark(build.reusedFinal)});
  table.addRow({"train_authors", std::to_string(trainAuthors)});
  table.addRow({"train_acc_pct",
                bench::pct(static_cast<double>(trainHits) /
                           static_cast<double>(trainIdx.size()))});
  table.addSeparator();
  table.addRow({"stream_peak_rss_mb", mb(streamPeakBytes)});
  table.addRow({"resident_estimate_mb", mb(residentEstimate)});
  table.addRow({"rss_bound",
                rssCheckActive ? bench::mark(rssBoundOk) : "skipped"});
  table.addRow({"control_rows", std::to_string(controlIdx.size())});
  table.addRow({"control_identical", bench::mark(controlMismatches == 0)});
  bench::emit(table, "macro_scale");

  if (controlMismatches != 0) {
    std::cerr << "macro_scale: FAIL: " << controlMismatches << "/"
              << controlIdx.size()
              << " resident-control predictions diverge from the "
                 "streaming path\n";
    return 1;
  }
  if (!rssBoundOk) {
    std::cerr << "macro_scale: FAIL: streaming peak RSS ("
              << mb(streamPeakBytes) << " MB) is not below the resident "
              << "estimate (" << mb(residentEstimate) << " MB)\n";
    return 1;
  }

  session.complete();
  return 0;
}
