// Regenerates Figures 3-5: the running example — the original horse-race
// code (Fig. 3), two non-chaining transformations of it (Figs. 4a/4b) and
// two chaining transformations (Figs. 5a/5b).
#include <iostream>

#include "ast/render.hpp"
#include "bench_common.hpp"
#include "corpus/challenges.hpp"
#include "llm/pipelines.hpp"
#include "style/apply.hpp"

int main() {
  sca::bench::Session session("fig03_05_examples");
  using namespace sca;
  const auto& challenge = corpus::figure3Challenge();

  // Figure 3: the original code, in the compact style of the paper's
  // figure (2-space indent, terse names, cout with setprecision).
  style::StyleProfile fig3;
  fig3.naming = style::NamingConvention::CamelCase;
  fig3.verbosity = style::Verbosity::Short;
  fig3.indentWidth = 2;
  fig3.extractSolve = false;
  fig3.commentDensity = 0.0;
  util::Rng fig3Rng(42);
  const std::string original = style::applyStyle(challenge.ir, fig3, fig3Rng);
  std::cout << "===== Figure 3: original code =====\n" << original << "\n";

  // Figures 4a/4b: two independent (non-chaining) transformations.
  llm::LlmOptions options;
  options.year = 2018;
  options.seed = 404;
  llm::SyntheticLlm nct(options);
  const std::vector<std::string> nctOut =
      llm::nonChainingTransform(nct, original, 2);
  std::cout << "===== Figure 4a: first NCT transformation =====\n"
            << nctOut[0] << "\n";
  std::cout << "===== Figure 4b: second NCT transformation (of the SAME "
               "original) =====\n"
            << nctOut[1] << "\n";

  // Figures 5a/5b: two chained transformations.
  options.seed = 505;
  llm::SyntheticLlm ct(options);
  const std::vector<std::string> ctOut =
      llm::chainingTransform(ct, original, 2);
  std::cout << "===== Figure 5a: first CT transformation =====\n"
            << ctOut[0] << "\n";
  std::cout << "===== Figure 5b: second CT transformation (of Figure 5a) "
               "=====\n"
            << ctOut[1] << "\n";
  session.complete();
  return 0;
}
