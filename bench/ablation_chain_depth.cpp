// Ablation: chain depth — how the chaining schedule's outputs drift (or
// rather converge) with depth, extending Figure 2 / Table IV: distinct
// archetypes seen and oracle-label agreement as a function of CT depth.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "style/infer.hpp"
#include "util/log.hpp"

int main() {
  sca::bench::Session session("ablation_chain_depth");
  using namespace sca;
  util::setLogLevel(util::LogLevel::Info);
  core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  core::YearExperiment experiment(2018, config);
  const core::AttributionModel& oracle = experiment.oracle();
  const auto& challenges = experiment.corpusData().challenges;

  util::TablePrinter table(
      "Ablation: chaining-transformation depth (GCJ 2018) — cumulative "
      "distinct archetypes and distinct oracle labels, averaged over "
      "challenges.");
  table.setHeader({"depth", "mean distinct archetypes",
                   "mean distinct oracle labels"});

  constexpr std::size_t kMaxDepth = 50;
  const std::size_t challengeCount = challenges.size();
  std::vector<std::set<std::size_t>> archetypes(challengeCount);
  std::vector<std::set<int>> labels(challengeCount);
  std::vector<llm::SyntheticLlm> llms;
  std::vector<std::string> current;
  for (std::size_t c = 0; c < challengeCount; ++c) {
    llm::LlmOptions options;
    options.year = 2018;
    options.seed = 9000 + c;
    llms.emplace_back(options);
    current.push_back(llms.back().generate(*challenges[c]));
  }

  for (std::size_t depth = 1; depth <= kMaxDepth; ++depth) {
    double archSum = 0.0, labelSum = 0.0;
    for (std::size_t c = 0; c < challengeCount; ++c) {
      current[c] = llms[c].transform(current[c]);
      archetypes[c].insert(llms[c].lastArchetype());
      labels[c].insert(oracle.predict(current[c]));
      archSum += static_cast<double>(archetypes[c].size());
      labelSum += static_cast<double>(labels[c].size());
    }
    if (depth == 1 || depth % 5 == 0) {
      table.addRow({std::to_string(depth),
                    util::formatDouble(archSum / challengeCount, 2),
                    util::formatDouble(labelSum / challengeCount, 2)});
    }
  }
  bench::emit(table, "ablation_chain_depth");
  std::cout << "Converging curves confirm CT's absorbing behaviour "
               "(Table IV: +C averages stay near 1.5-2).\n";
  session.complete();
  return 0;
}
