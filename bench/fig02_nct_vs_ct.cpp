// Regenerates Figure 2's comparison as data: the non-chaining and chaining
// schedules side by side — per-step archetype trace and style distance to
// the original, showing that NCT keeps re-rolling from the source while CT
// settles into an absorbing style.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "corpus/challenges.hpp"
#include "llm/pipelines.hpp"
#include "style/infer.hpp"

int main() {
  sca::bench::Session session("fig02_nct_vs_ct");
  using namespace sca;
  const auto& challenge = corpus::figure3Challenge();

  llm::LlmOptions genOptions;
  genOptions.year = 2018;
  genOptions.seed = 7;
  llm::SyntheticLlm gen(genOptions);
  const std::string original = gen.generate(challenge);
  const style::StyleProfile originalProfile =
      style::inferProfileFromSource(original);

  constexpr std::size_t kSteps = 50;

  llm::LlmOptions nctOptions = genOptions;
  nctOptions.seed = 8;
  llm::SyntheticLlm nctLlm(nctOptions);
  std::vector<std::size_t> nctArch;
  std::vector<double> nctDrift;
  for (std::size_t i = 0; i < kSteps; ++i) {
    const std::string out = nctLlm.transform(original);
    nctArch.push_back(nctLlm.lastArchetype());
    nctDrift.push_back(style::StyleProfile::distance(
        originalProfile, style::inferProfileFromSource(out)));
  }

  llm::LlmOptions ctOptions = genOptions;
  ctOptions.seed = 8;
  llm::SyntheticLlm ctLlm(ctOptions);
  std::vector<std::size_t> ctArch;
  std::vector<double> ctDrift;
  std::string current = original;
  for (std::size_t i = 0; i < kSteps; ++i) {
    current = ctLlm.transform(current);
    ctArch.push_back(ctLlm.lastArchetype());
    ctDrift.push_back(style::StyleProfile::distance(
        originalProfile, style::inferProfileFromSource(current)));
  }

  util::TablePrinter table(
      "Figure 2 (as data): NCT vs CT over 50 steps — archetype used at each "
      "step and style distance to the original.");
  table.setHeader({"step", "NCT arch", "NCT drift", "CT arch", "CT drift"});
  for (std::size_t i = 0; i < kSteps; ++i) {
    table.addRow({std::to_string(i + 1), std::to_string(nctArch[i]),
                  util::formatDouble(nctDrift[i], 2),
                  std::to_string(ctArch[i]),
                  util::formatDouble(ctDrift[i], 2)});
  }
  bench::emit(table, "fig02_nct_vs_ct");

  auto distinct = [](const std::vector<std::size_t>& xs) {
    std::set<std::size_t> s(xs.begin(), xs.end());
    return s.size();
  };
  std::cout << "Distinct archetypes: NCT " << distinct(nctArch) << ", CT "
            << distinct(ctArch)
            << " (the paper's Table IV shape: NCT > CT)\n";
  session.complete();
  return 0;
}
