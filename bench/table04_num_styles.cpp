// Regenerates Table IV: the number of styles — distinct predicted labels
// assigned to ChatGPT-transformed code by the pre-trained non-ChatGPT
// authorship model, per challenge and setting, for all three years.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "util/log.hpp"

int main() {
  sca::bench::Session session("table04_num_styles");
  using namespace sca;
  util::setLogLevel(util::LogLevel::Info);
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();

  util::TablePrinter table(
      "Table IV: Number of styles (distinct predicted labels) per challenge "
      "(+N ChatGPT+NCT, +C ChatGPT+CT, ~N non-ChatGPT+NCT, ~C "
      "non-ChatGPT+CT, A average).");
  table.setHeader({"", "2017 +N", "+C", "~N", "~C", "2018 +N", "+C", "~N",
                   "~C", "2019 +N", "+C", "~N", "~C"});

  std::vector<core::YearExperiment::StyleCounts> years;
  std::size_t maxStyles = 0;
  for (const int year : {2017, 2018, 2019}) {
    core::YearExperiment experiment(year, config);
    years.push_back(experiment.styleCounts());
    maxStyles = std::max(maxStyles, years.back().maxCount);
  }

  const std::size_t challengeCount = years[0].perChallenge.size();
  for (std::size_t c = 0; c < challengeCount; ++c) {
    std::vector<std::string> row = {"C" + std::to_string(c + 1)};
    for (const auto& year : years) {
      for (std::size_t s = 0; s < 4; ++s) {
        row.push_back(std::to_string(year.perChallenge[c][s]));
      }
    }
    table.addRow(row);
  }
  table.addSeparator();
  std::vector<std::string> avg = {"A"};
  for (const auto& year : years) {
    for (std::size_t s = 0; s < 4; ++s) {
      avg.push_back(util::formatDouble(year.averages[s], 1));
    }
  }
  table.addRow(avg);
  bench::emit(table, "table04_num_styles");

  std::cout << "Maximum number of styles observed anywhere: " << maxStyles
            << " (paper: 12)\n";
  session.complete();
  return 0;
}
