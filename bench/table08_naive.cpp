// Regenerates Table VIII: the 205-author accuracy with the NAIVE ChatGPT
// set (first responses, no style grouping). In the paper the naive set's
// per-fold ChatGPT recognition collapsed for 2018 (50%) and 2019 (37.5%).
#include "attribution_common.hpp"

int main() {
  return sca::bench::runAttributionTable(sca::core::Approach::Naive, "VIII",
                                         "table08_naive");
}
