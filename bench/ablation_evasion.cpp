// Extension bench: deliberate authorship evasion (the Quiring et al.
// baseline from the paper's §II-B) against our 204-author oracle — success
// rate and classifier-query cost as a function of the search budget.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "evasion/evasion.hpp"
#include "evasion/mcts.hpp"
#include "util/log.hpp"

int main() {
  sca::bench::Session session("ablation_evasion");
  using namespace sca;
  util::setLogLevel(util::LogLevel::Info);
  core::YearExperiment experiment(2018, core::ExperimentConfig::fromEnv());
  const core::AttributionModel& oracle = experiment.oracle();
  const corpus::YearDataset& data = experiment.corpusData();

  // 16 victims: two challenges from eight different authors.
  std::vector<evasion::VictimSample> victims;
  for (const corpus::CodeSample& sample : data.samples) {
    if (sample.authorId % 25 == 3 && sample.challengeIndex < 2 &&
        victims.size() < 16) {
      victims.push_back(
          evasion::VictimSample{sample.source, sample.authorId});
    }
  }

  util::TablePrinter table(
      "Ablation: style-space evasion vs the 204-author oracle (GCJ 2018); "
      "Quiring et al. report up to 99% evasion with MCTS.");
  table.setHeader({"Strategy", "Budget", "Success rate (%)",
                   "Mean queries"});
  for (const std::size_t iterations : {2ul, 5ul, 10ul, 25ul}) {
    evasion::EvasionConfig config;
    config.maxIterations = iterations;
    config.candidatesPerIteration = 6;
    std::size_t queries = 0;
    std::size_t successes = 0;
    for (std::size_t i = 0; i < victims.size(); ++i) {
      evasion::EvasionConfig perVictim = config;
      perVictim.seed = i + 1;
      evasion::StyleEvader evader(oracle, perVictim);
      const auto r = evader.evade(victims[i].source, victims[i].author);
      queries += r.classifierQueries;
      if (r.evaded) ++successes;
    }
    const double rate = static_cast<double>(successes) / victims.size();
    table.addRow({"greedy", std::to_string(iterations) + " iters",
                  bench::pct(rate),
                  std::to_string(queries / victims.size())});
    std::cout << "greedy/" << iterations << " -> " << bench::pct(rate)
              << "% evaded\n";
  }
  for (const std::size_t iterations : {10ul, 30ul, 60ul}) {
    evasion::MctsConfig config;
    config.iterations = iterations;
    std::size_t queries = 0;
    std::size_t successes = 0;
    for (std::size_t i = 0; i < victims.size(); ++i) {
      evasion::MctsConfig perVictim = config;
      perVictim.seed = i + 1;
      evasion::MctsEvader evader(oracle, perVictim);
      const auto r = evader.evade(victims[i].source, victims[i].author);
      queries += r.classifierQueries;
      if (r.evaded) ++successes;
    }
    const double rate = static_cast<double>(successes) / victims.size();
    table.addRow({"mcts", std::to_string(iterations) + " iters",
                  bench::pct(rate),
                  std::to_string(queries / victims.size())});
    std::cout << "mcts/" << iterations << " -> " << bench::pct(rate)
              << "% evaded\n";
  }
  bench::emit(table, "ablation_evasion");
  session.complete();
  return 0;
}
