// Regenerates Table VI: the diversity of styles for GCJ 2018 (in the paper
// the top three labels carried 66.5% of the mass).
#include "diversity_common.hpp"

int main() { return sca::bench::runDiversityTable(2018, "VI", "table06_diversity_2018"); }
