// Ablation: which feature family carries attribution?
//
// Trains the 204-author oracle of GCJ 2018 with each family switched off
// (and alone), reporting leave-one-challenge-out accuracy. DESIGN.md §4.2
// calls out the three Caliskan-Islam families; this bench quantifies them.
#include <iostream>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "ml/metrics.hpp"
#include "util/log.hpp"

namespace {

using namespace sca;

double foldAccuracy(const corpus::YearDataset& data,
                    const core::ModelConfig& modelConfig) {
  // Two representative folds (not all 8) keep the sweep affordable.
  double sum = 0.0;
  int folds = 0;
  for (const std::size_t held : {std::size_t{0}, std::size_t{4}}) {
    std::vector<std::string> trainSources, testSources;
    std::vector<int> trainLabels, testLabels;
    for (const corpus::CodeSample& sample : data.samples) {
      if (static_cast<std::size_t>(sample.challengeIndex) == held) {
        testSources.push_back(sample.source);
        testLabels.push_back(sample.authorId);
      } else {
        trainSources.push_back(sample.source);
        trainLabels.push_back(sample.authorId);
      }
    }
    core::AttributionModel model(modelConfig);
    model.train(trainSources, trainLabels);
    sum += ml::accuracy(testLabels, model.predictAll(testSources));
    ++folds;
  }
  return sum / folds;
}

}  // namespace

int main() {
  sca::bench::Session session("ablation_features");
  util::setLogLevel(util::LogLevel::Info);
  const core::ExperimentConfig config = core::ExperimentConfig::fromEnv();
  core::YearExperiment experiment(2018, config);
  const corpus::YearDataset& data = experiment.corpusData();

  struct Variant {
    std::string name;
    bool lexical, layout, syntactic;
  };
  const std::vector<Variant> variants = {
      {"all families", true, true, true},
      {"no lexical", false, true, true},
      {"no layout", true, false, true},
      {"no syntactic", true, true, false},
      {"lexical only", true, false, false},
      {"layout only", false, true, false},
      {"syntactic only", false, false, true},
  };

  util::TablePrinter table(
      "Ablation: 204-author attribution accuracy (GCJ 2018, 2 folds) by "
      "feature family.");
  table.setHeader({"Variant", "Accuracy (%)", "Dimensions"});
  for (const Variant& variant : variants) {
    core::ModelConfig modelConfig = config.model;
    modelConfig.extractor.useLexical = variant.lexical;
    modelConfig.extractor.useLayout = variant.layout;
    modelConfig.extractor.useSyntactic = variant.syntactic;
    const double accuracy = foldAccuracy(data, modelConfig);
    features::FeatureExtractor probe(modelConfig.extractor);
    table.addRow({variant.name, sca::bench::pct(accuracy),
                  std::to_string(probe.dimension()) + "+vocab"});
    std::cout << variant.name << " -> " << sca::bench::pct(accuracy)
              << "%\n";
  }
  sca::bench::emit(table, "ablation_features");

  // Which individual features does the full model split on most?
  std::vector<std::string> trainSources;
  std::vector<int> trainLabels;
  for (const corpus::CodeSample& sample : data.samples) {
    if (sample.challengeIndex != 0) {
      trainSources.push_back(sample.source);
      trainLabels.push_back(sample.authorId);
    }
  }
  core::AttributionModel full(config.model);
  full.train(trainSources, trainLabels);
  std::cout << "Top-12 split features of the full oracle:\n";
  for (const auto& [name, importance] : full.topFeatures(12)) {
    std::cout << "  " << name << "  " << sca::bench::pct(importance, 2)
              << "%\n";
  }
  session.complete();
  return 0;
}
