// Span tracer: RAII scopes -> per-thread event buffers -> Chrome
// trace_event JSON.
//
// A Span records name, category, parent linkage (the innermost live span
// on the same thread), a dense per-thread tid and steady-clock
// start/duration in nanoseconds since the tracer epoch. Completed spans
// land in the recording thread's own buffer (one brief uncontended mutex
// per span exit — spans are phase/task granularity, not per-token), and
// writeChromeTrace() merges the buffers into the JSON that
// chrome://tracing and Perfetto load, written crash-safely via
// util::atomicWriteFile.
//
// Tracing is off unless the SCA_TRACE environment variable names an
// output path (or a test calls setEnabled). While off, constructing a
// Span is a single relaxed flag load — the instrumentation can stay in
// every hot path permanently.
//
// Timestamps are wall-clock and therefore excluded from all deterministic
// output: traces and the manifest's span aggregates are diagnostics, never
// part of the byte-comparable metrics section.
//
// Buffers are capped (kMaxEventsPerThread); overflow drops the new event
// and counts it, so a runaway region degrades the trace instead of memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace sca::obs {

struct TraceEvent {
  std::string name;
  const char* category = "phase";  // static strings only
  std::uint64_t startNs = 0;       // since the tracer epoch (steady clock)
  std::uint64_t durationNs = 0;
  std::uint32_t tid = 0;           // dense per-thread id, assigned on attach
  std::uint64_t id = 0;            // unique non-zero span id
  std::uint64_t parentId = 0;      // 0 = root (no enclosing span)
};

class Tracer {
 public:
  static constexpr std::size_t kMaxEventsPerThread = 65536;

  /// The process-global tracer (created on first use, never destroyed).
  [[nodiscard]] static Tracer& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void setEnabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// The SCA_TRACE value captured at first use ("" when unset).
  [[nodiscard]] const std::string& configuredPath() const noexcept;

  void record(TraceEvent event);

  /// All completed spans so far, merged and sorted by (startNs, tid, id).
  [[nodiscard]] std::vector<TraceEvent> snapshotEvents() const;

  /// Drops every recorded event (buffers stay attached). For tests.
  void clear();

  [[nodiscard]] std::uint64_t droppedEvents() const noexcept;

  /// Steady-clock nanoseconds since the tracer epoch.
  [[nodiscard]] std::uint64_t nowNs() const;

  /// Id of the innermost live span on the calling thread (0 = none). The
  /// event log stamps this on every record so log lines can be joined to
  /// the trace they were emitted under.
  [[nodiscard]] static std::uint64_t currentSpanId() noexcept;

  /// Atomically writes the Chrome trace JSON for every event so far.
  [[nodiscard]] util::Status writeChromeTrace(const std::string& path) const;

 private:
  struct Buffer;
  struct BufferHandle;
  struct Impl;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] Buffer& localBuffer();
  void detachBuffer(Buffer* buffer);

  friend class Span;
  std::atomic<bool> enabled_{false};
  Impl* impl_;
};

/// RAII span. Near-free when tracing is disabled at construction.
class Span {
 public:
  explicit Span(std::string_view name, const char* category = "phase");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// 0 when tracing was disabled at construction.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  std::string name_;
  const char* category_ = nullptr;
  std::uint64_t startNs_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parentId_ = 0;
  bool active_ = false;        // feeding the tracer
  bool flightActive_ = false;  // feeding the flight recorder
};

/// Renders events as a Chrome trace_event JSON document (ts/dur in
/// microseconds, pid 1, args carrying the span/parent ids).
[[nodiscard]] std::string chromeTraceJson(
    const std::vector<TraceEvent>& events);

/// Writes the trace to the SCA_TRACE path when tracing is enabled and a
/// path is configured; OK no-op otherwise.
[[nodiscard]] util::Status flushConfiguredTrace();

}  // namespace sca::obs
