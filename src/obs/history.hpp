// Cross-run performance history: the repo's memory of how fast it ran.
//
// The run manifest (manifest.hpp) captures ONE run and is rewritten each
// time; this store keeps every run. bench::Session appends one compact
// record per bench run to an append-only JSONL file, and the regression
// detector baselines the newest record of each comparable group against
// the median of its predecessors — so `sca_cli history check` (wired into
// tools/ci.sh) turns "it got slower" and "it computes something different"
// from anecdotes into exit codes.
//
// File layout (default bench_out/history/history.jsonl, override with
// SCA_HISTORY=path; SCA_HISTORY=off disables):
//
//   {"magic":"sca-history-v1"}
//   {"bench":"micro_pipeline","status":"complete","git_sha":"<40 hex>",
//    "threads":8,"env_class":"SCA_FAULT_RATE=0.05 SCA_PIPELINE_ONCE=1",
//    "digest":"<16 hex>","total_s":1.234,"max_rss_kb":51240,
//    "user_s":3.21,"sys_s":0.12,"ts":1754450000,
//    "phases":{"corpus_build":0.102,...},"counters":{"llm_retries":3,...}}
//   ...
//
// Crash safety mirrors the cache index: the header and every record land
// with one util::appendLine O_APPEND write each, so concurrent benches
// interleave whole lines and a kill can tear at most the final line —
// which load() skips (counted, not fatal). A wrong or missing magic means
// the file is not ours: the history reads as empty rather than guessing.
//
// Comparability: records only baseline each other within a group of equal
// (bench, threads, env_class). env_class is the sorted SCA_* environment
// minus the knobs that cannot change what a run computes or how fast it
// legitimately runs: output paths (SCA_MANIFEST/SCA_TRACE/SCA_LOG*,
// SCA_HISTORY*), SCA_GIT_SHA, SCA_THREADS (its own field) — and the CI
// injection hooks SCA_OBS_TEST_DELAY_MS (slowdown) and
// SCA_OBS_TEST_BALLAST_KB (peak-RSS inflation), which exist precisely so
// the detector can be proven to catch what they inject.
//
// Determinism: every field except the wall-time/rusage/timestamp ones is
// byte-deterministic for a fixed seed and environment; "digest" is
// util::hash64 of the manifest's canonical stable-metrics JSON, so a
// digest change means the run computed different results — a correctness
// regression, which the detector always flags regardless of thresholds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace sca::obs {

inline constexpr std::string_view kHistoryMagic = "sca-history-v1";

struct HistoryRecord {
  std::string bench;
  bool complete = false;
  std::string gitSha;
  std::uint64_t threads = 0;
  std::string envClass;
  std::string digest;  // 16 hex chars (util::hash64 of stable metrics JSON)
  double totalSeconds = 0.0;
  std::uint64_t maxRssKb = 0;
  double userCpuSeconds = 0.0;
  double sysCpuSeconds = 0.0;
  long long unixTime = 0;
  std::map<std::string, double> phases;
  std::map<std::string, std::uint64_t> counters;
};

/// One record as its canonical JSONL line (no trailing newline). Sorted
/// maps and fixed formatting keep equal records byte-equal.
[[nodiscard]] std::string historyRecordJson(const HistoryRecord& record);

/// Parses one line previously produced by historyRecordJson. False on a
/// torn or foreign line (`*out` is then unspecified).
[[nodiscard]] bool parseHistoryRecord(std::string_view line,
                                      HistoryRecord* out);

class HistoryStore {
 public:
  explicit HistoryStore(std::string path) : path_(std::move(path)) {}

  /// Appends one record (writing the magic header first when the file is
  /// missing or empty). Each line is a single O_APPEND write.
  [[nodiscard]] util::Status append(const HistoryRecord& record);

  struct LoadResult {
    std::vector<HistoryRecord> records;
    bool magicOk = false;        // false: absent/foreign file, records empty
    std::size_t skippedLines = 0;  // torn/unparseable lines (never fatal)
  };
  /// Corruption-tolerant read of the whole history.
  [[nodiscard]] LoadResult load() const;

  /// Atomically rewrites the file keeping only the newest `keepPerGroup`
  /// records of every (bench, threads, env_class) group, order preserved.
  /// Returns the number of records dropped.
  [[nodiscard]] util::Result<std::size_t> gc(std::size_t keepPerGroup);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Resolved history path: SCA_HISTORY when set ("off"/"0" -> "" = history
/// disabled), else "bench_out/history/history.jsonl".
[[nodiscard]] std::string configuredHistoryPath();

/// The comparability key of the current environment (see file comment).
[[nodiscard]] std::string currentEnvClass();

/// Builds the record for the run that just finished — registry lifetime
/// snapshot (phases, counters, rusage gauges), git SHA, env class, stable
/// digest — and appends it to `store`. Called by bench::Session's
/// destructor after the manifest write.
[[nodiscard]] util::Status appendRunHistory(HistoryStore& store,
                                            const std::string& benchName,
                                            std::size_t threads,
                                            bool complete,
                                            double totalSeconds);

// --- regression detection -------------------------------------------------

struct RegressionPolicy {
  std::size_t window = 5;        // baseline = median of last K comparable runs
  double factor = 1.5;           // flag when current > median * factor ...
  double minDeltaSeconds = 0.05;  // ... and current - median > this slack
  double minPhaseSeconds = 0.01;  // phases with a smaller median are noise
  std::size_t minBaselineRuns = 1;
  bool checkDigest = true;  // stable-digest changes always hard-fail
  // Peak-RSS gate (same dual-threshold shape as the time gate): flag when
  // current max_rss_kb exceeds the baseline median by the relative factor
  // AND by the absolute slack. Records without rusage (max_rss_kb == 0)
  // neither baseline nor trigger it.
  double rssFactor = 1.5;
  std::uint64_t minRssDeltaKb = 32 * 1024;
};

struct RegressionFinding {
  std::string bench;
  std::string group;  // "threads=8 env=..." for the report
  std::string kind;   // "perf" | "digest" | "rss"
  std::string phase;  // phase name or "total_s"; "" for digest/rss findings
  double baseline = 0.0;
  double current = 0.0;
  std::string detail;
};

struct RegressionReport {
  std::vector<RegressionFinding> findings;
  std::size_t groupsChecked = 0;
  std::size_t groupsSkipped = 0;  // too few comparable complete runs
  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
};

/// Checks the newest complete record of every comparable group against the
/// median of up to `policy.window` preceding complete records. Perf
/// findings need both the relative factor and the absolute slack exceeded
/// (noise tolerance); a digest mismatch against the most recent baseline
/// is always a finding — correctness outranks speed.
[[nodiscard]] RegressionReport checkRegressions(
    const std::vector<HistoryRecord>& records, const RegressionPolicy& policy);

}  // namespace sca::obs
