// QuantileSketch: a deterministic, mergeable log-bucketed histogram.
//
// The metrics registry's Histogram answers "how many observations fell in
// these hand-picked buckets"; serving SLOs need the inverse question —
// "what latency did the 99th percentile request see" — without picking
// bucket bounds per metric up front. A QuantileSketch buckets values on a
// geometric grid (DDSketch-style): bucket i covers (gamma^(i-1), gamma^i]
// with gamma = (1+alpha)/(1-alpha), so any reported quantile is within
// relative error `alpha` of the true order statistic.
//
// Determinism is the design constraint, same as the registry's shards:
//
//   * bucket counts are INTEGERS, so merging two sketches is bucket-wise
//     integer addition — associative, commutative, and independent of
//     merge order and thread count;
//   * no floating accumulator crosses a merge (no running sum/mean): the
//     only doubles kept are exact min/max, which are order-independent;
//   * toJson() renders buckets in ascending index order with fixed number
//     formatting, so two sketches holding the same observations serialize
//     byte-identically no matter how the observations were sharded.
//
// Values <= kMinValue (including all non-positive values) land in a
// dedicated zero bucket whose representative is 0.0 — queue depths of
// zero and un-retried requests are common and must not distort the grid.
//
// SketchRegistry is the process-global named-sketch store that the run
// manifest snapshots ("sketches" section, schema sca-manifest-v2). Local
// sketches (e.g. one serve loop's) fold in via merge() — the same
// fold-at-the-end discipline the serve loop uses for shard events.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace sca::obs {

class QuantileSketch {
 public:
  /// Values at or below this observe into the zero bucket.
  static constexpr double kMinValue = 1e-9;

  explicit QuantileSketch(double relativeAccuracy = 0.01);

  void observe(double value);
  /// Bucket-wise integer merge; `other` may use a different accuracy only
  /// if it is empty (mixed grids cannot merge meaningfully — ignored with
  /// the counts of `other` dropped would lie, so mismatched non-empty
  /// merges are a no-op by contract and callers keep one alpha per name).
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double relativeAccuracy() const noexcept { return alpha_; }
  /// Exact smallest/largest observed value (0.0 when empty).
  [[nodiscard]] double minValue() const noexcept;
  [[nodiscard]] double maxValue() const noexcept;

  /// The value at quantile q in [0,1], within `alpha` relative error,
  /// clamped to [minValue, maxValue]. An EMPTY sketch returns 0.0 for
  /// every q — callers render "--" off count()==0, never off a sentinel.
  [[nodiscard]] double quantile(double q) const;

  /// Full state, canonically formatted:
  ///   {"alpha":0.01,"count":7,"zero":1,"min":0.125,"max":40,
  ///    "buckets":[[-3,2],[5,4]]}
  [[nodiscard]] std::string toJson() const;
  /// Inverse of toJson (used by the manifest round-trip and serve-report).
  /// False on malformed input; `*out` is reset either way.
  [[nodiscard]] static bool fromJson(std::string_view json,
                                     QuantileSketch* out);

  /// The summary object manifests and the serve `stats` op embed:
  ///   {"count":7,"p50":1.125,"p90":...,"p99":...,"p999":...,
  ///    "min":...,"max":...}
  /// count==0 renders {"count":0} alone.
  [[nodiscard]] std::string percentilesJson() const;

 private:
  [[nodiscard]] int bucketIndex(double value) const;
  [[nodiscard]] double bucketValue(int index) const;

  double alpha_;
  double gamma_;
  double logGamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_ = 0;
  double min_ = 0.0;  // valid only when count_ > 0
  double max_ = 0.0;
  std::map<int, std::uint64_t> buckets_;
};

/// Process-global named sketches, folded into the run manifest. Immortal
/// like MetricsRegistry::global(); all operations take one mutex — callers
/// batch via local sketches and merge() at phase boundaries, so this is
/// never on a per-observation hot path.
class SketchRegistry {
 public:
  [[nodiscard]] static SketchRegistry& global();

  /// Folds `sketch` into the named global sketch (created on first use
  /// with `sketch`'s accuracy).
  void merge(const std::string& name, const QuantileSketch& sketch);
  /// Single-value convenience for call sites without a local sketch.
  void observe(const std::string& name, double value,
               double relativeAccuracy = 0.01);

  [[nodiscard]] std::map<std::string, QuantileSketch> snapshot() const;
  /// Drops every named sketch (tests).
  void reset();

  /// The manifest's "sketches" section: name-sorted
  ///   {"name":{"p50":...,...,"sketch":{<toJson>}},...}
  [[nodiscard]] std::string sketchesJson() const;

 private:
  SketchRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, QuantileSketch> sketches_;
};

}  // namespace sca::obs
