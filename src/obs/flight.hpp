#pragma once

// Always-on flight recorder, stall watchdog, and crash forensics.
//
// Every thread that records an event owns a fixed-size overwrite-oldest
// ring of compact events (span begin/end, log records, phases, stream
// progress) plus a bounded stack of currently-active span names. Rings
// are single-writer (the owning thread) and multi-reader (watchdog
// thread, fatal-signal handler, tests); every slot field is a relaxed
// atomic word so concurrent reads are race-free and lock-free, and the
// per-ring head is the release/acquire publication point.
//
// The recorder is purely observational: it never touches RNG state,
// stable metrics, or any output byte, so recorder-on runs stay
// byte-identical to recorder-off runs.
//
// Arming (done by bench::Session and `sca_cli serve`) installs
// SIGSEGV/SIGABRT/SIGBUS handlers that serialize the rings as an
// `sca-postmortem-v1` JSONL record using only async-signal-safe
// primitives, and optionally starts a watchdog thread that dumps the
// same record when event flow stops while spans are still active.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sca::obs::flight {

enum class EventKind : std::uint8_t {
  kSpanBegin = 1,
  kSpanEnd = 2,
  kLog = 3,
  kPhase = 4,
  kStream = 5,
};

// Stable text name for an event kind ("span_begin", "log", ...).
const char* eventKindName(std::uint8_t kind) noexcept;

namespace detail {
// One relaxed load; resolved from SCA_FLIGHT_EVENTS at process start.
extern std::atomic<bool> gEnabled;
}  // namespace detail

// True when the recorder is capturing events. Inline so the disabled
// cost at a call site is a single relaxed atomic load.
inline bool enabled() noexcept {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

// Record one event into the calling thread's ring. `name` is truncated
// to the slot width and sanitized to printable ASCII without quotes or
// backslashes, so dump writers can embed it in JSON verbatim. No-op
// when the recorder is disabled.
void note(EventKind kind, std::string_view name, std::uint64_t arg = 0,
          std::uint8_t level = 0);

// Log feed (called by obs::logEvent before its own enabled gate): records
// a kLog event named "component:event" so retries, failovers, evictions,
// checkpoints etc. land in the ring even when SCA_LOG is unset.
void noteLog(std::uint8_t level, std::string_view component,
             std::string_view event);

// Span lifecycle feed (called by obs::Span). Begin pushes onto the
// thread's active-span stack and records a kSpanBegin event; end pops
// and records kSpanEnd with the duration as `arg`.
void spanBegin(std::string_view name);
void spanEnd(std::string_view name, std::uint64_t durationNs);

// Sum of all ring heads: every recorded event advances it, so it doubles
// as the watchdog's heartbeat epoch.
std::uint64_t progressEpoch() noexcept;

// ---------------------------------------------------------------------------
// Snapshots (tests and the watchdog use this; the signal handler walks the
// rings directly with preallocated buffers instead).

struct SnapshotEvent {
  std::uint64_t tsNs = 0;
  std::uint64_t arg = 0;
  std::uint64_t seq = 0;
  std::uint32_t tid = 0;
  std::uint8_t kind = 0;
  std::uint8_t level = 0;
  std::string name;
};

struct SnapshotActiveSpan {
  std::string name;
  std::uint64_t sinceNs = 0;
};

struct ThreadSnapshot {
  std::uint32_t tid = 0;
  bool exited = false;
  std::uint64_t totalEvents = 0;
  std::vector<SnapshotEvent> events;  // oldest -> newest tail of the ring
  std::vector<SnapshotActiveSpan> activeSpans;  // outermost first
};

std::vector<ThreadSnapshot> snapshot();

// ---------------------------------------------------------------------------
// Arming: watchdog + fatal-signal handlers + dump destination.

struct ArmOptions {
  std::string dir = "bench_out/flight";  // dump directory
  std::string label;                     // bench / command name for the header
  double watchdogSeconds = 0.0;          // <= 0 disables the watchdog thread
  bool installSignalHandlers = true;
};

// dir from SCA_FLIGHT_DIR, watchdogSeconds from SCA_WATCHDOG_S.
ArmOptions armOptionsFromEnv(std::string label);

// Install handlers / start the watchdog. Re-entrant: nested arms are
// counted and only the outermost pair does work. Clears any previous
// incident cause.
void arm(const ArmOptions& options);
void disarm();

class ArmedScope {
 public:
  explicit ArmedScope(const ArmOptions& options) { arm(options); }
  ~ArmedScope() { disarm(); }
  ArmedScope(const ArmedScope&) = delete;
  ArmedScope& operator=(const ArmedScope&) = delete;
};

// "" when the run is healthy; otherwise a signal name ("SIGSEGV"),
// "watchdog_stall", or whatever cause was last latched since arm().
// bench::Session folds this into the manifest `partial_cause` field.
std::string incidentCause();

// Path the watchdog dump / signal postmortem will be written to under the
// currently-armed options ("" when not armed).
std::string watchdogDumpPath();
std::string postmortemPath();

namespace detail {
// Test hooks. setEnabledForTest flips the recorder gate (tests restore
// the initial state); ringCapacity reports the resolved per-thread slot
// count; runFatalSignalHandlerForTest executes the real handler body
// (dump + cause latch) without re-raising, so tests can exercise the
// async-signal-safe path in-process.
void setEnabledForTest(bool enabled);
std::size_t ringCapacity() noexcept;
void runFatalSignalHandlerForTest(int signo);
std::uint64_t droppedEvents() noexcept;
}  // namespace detail

}  // namespace sca::obs::flight
