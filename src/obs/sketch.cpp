#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/manifest.hpp"
#include "util/strings.hpp"

namespace sca::obs {
namespace {

/// Canonical number rendering for sketch JSON: fixed precision with the
/// trailing zeros trimmed, so 0.01 is "0.01" and 40 is "40" — stable
/// bytes without padding noise.
std::string formatTrimmed(double value, int precision) {
  std::string out = util::formatDouble(value, precision);
  if (out.find('.') == std::string::npos) return out;
  std::size_t end = out.size();
  while (end > 0 && out[end - 1] == '0') --end;
  if (end > 0 && out[end - 1] == '.') --end;
  out.resize(end);
  return out;
}

}  // namespace

QuantileSketch::QuantileSketch(double relativeAccuracy) {
  alpha_ = relativeAccuracy;
  if (!(alpha_ > 0.0) || alpha_ >= 1.0) alpha_ = 0.01;
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  logGamma_ = std::log(gamma_);
}

int QuantileSketch::bucketIndex(double value) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; ceil of log_gamma lands the
  // value in it. The tiny epsilon keeps exact powers of gamma from
  // flipping buckets on the last ulp of the division.
  return static_cast<int>(std::ceil(std::log(value) / logGamma_ - 1e-11));
}

double QuantileSketch::bucketValue(int index) const {
  // Midpoint of the bucket's range: within alpha of anything it holds.
  const double hi = std::pow(gamma_, static_cast<double>(index));
  return (hi / gamma_ + hi) / 2.0;
}

void QuantileSketch::observe(double value) {
  if (count_ == 0) {
    min_ = max_ = std::max(value, 0.0);
  } else {
    min_ = std::min(min_, std::max(value, 0.0));
    max_ = std::max(max_, value);
  }
  ++count_;
  if (!(value > kMinValue)) {  // non-positive and NaN both land here
    ++zero_;
    return;
  }
  ++buckets_[bucketIndex(value)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ != 0 && other.alpha_ != alpha_) return;  // mismatched grids
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  zero_ += other.zero_;
  for (const auto& [index, bucketCount] : other.buckets_) {
    buckets_[index] += bucketCount;
  }
}

double QuantileSketch::minValue() const noexcept {
  return count_ == 0 ? 0.0 : min_;
}

double QuantileSketch::maxValue() const noexcept {
  return count_ == 0 ? 0.0 : max_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the order statistic; integer arithmetic so every
  // caller lands on the same bucket regardless of platform rounding.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             q * static_cast<double>(count_) - 1e-11)));
  std::uint64_t seen = zero_;
  if (rank <= seen) return std::clamp(0.0, min_, max_);
  for (const auto& [index, bucketCount] : buckets_) {
    seen += bucketCount;
    if (rank <= seen) return std::clamp(bucketValue(index), min_, max_);
  }
  return max_;
}

std::string QuantileSketch::toJson() const {
  std::string out = "{\"alpha\":" + formatTrimmed(alpha_, 6);
  out += ",\"count\":" + std::to_string(count_);
  out += ",\"zero\":" + std::to_string(zero_);
  out += ",\"min\":" + formatTrimmed(minValue(), 6);
  out += ",\"max\":" + formatTrimmed(maxValue(), 6);
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [index, bucketCount] : buckets_) {
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(index) + ',' + std::to_string(bucketCount) +
           ']';
  }
  out += "]}";
  return out;
}

bool QuantileSketch::fromJson(std::string_view json, QuantileSketch* out) {
  double alpha = 0.0;
  if (!util::jsonDoubleField(json, "alpha", &alpha)) return false;
  QuantileSketch sketch(alpha);
  long long count = 0;
  long long zero = 0;
  double lo = 0.0;
  double hi = 0.0;
  if (!util::jsonIntField(json, "count", &count) || count < 0 ||
      !util::jsonIntField(json, "zero", &zero) || zero < 0 ||
      !util::jsonDoubleField(json, "min", &lo) ||
      !util::jsonDoubleField(json, "max", &hi)) {
    return false;
  }
  std::vector<std::string> pairs;
  if (!topLevelElements(extractJsonArray(json, "buckets"), &pairs)) {
    return false;
  }
  std::uint64_t bucketTotal = 0;
  for (const std::string& pair : pairs) {
    // Each element is "[index,count]".
    if (pair.size() < 5 || pair.front() != '[' || pair.back() != ']') {
      return false;
    }
    const char* text = pair.c_str() + 1;
    char* end = nullptr;
    const long long index = std::strtoll(text, &end, 10);
    if (end == text || *end != ',') return false;
    text = end + 1;
    const long long bucketCount = std::strtoll(text, &end, 10);
    if (end == text || bucketCount <= 0) return false;
    sketch.buckets_[static_cast<int>(index)] +=
        static_cast<std::uint64_t>(bucketCount);
    bucketTotal += static_cast<std::uint64_t>(bucketCount);
  }
  if (static_cast<std::uint64_t>(zero) + bucketTotal !=
      static_cast<std::uint64_t>(count)) {
    return false;  // torn or hand-edited record
  }
  sketch.count_ = static_cast<std::uint64_t>(count);
  sketch.zero_ = static_cast<std::uint64_t>(zero);
  sketch.min_ = lo;
  sketch.max_ = hi;
  *out = std::move(sketch);
  return true;
}

std::string QuantileSketch::percentilesJson() const {
  util::JsonObjectBuilder out;
  out.addUint("count", count_);
  if (count_ > 0) {
    out.addDouble("p50", quantile(0.50), 6);
    out.addDouble("p90", quantile(0.90), 6);
    out.addDouble("p99", quantile(0.99), 6);
    out.addDouble("p999", quantile(0.999), 6);
    out.addDouble("min", minValue(), 6);
    out.addDouble("max", maxValue(), 6);
  }
  return out.str();
}

SketchRegistry& SketchRegistry::global() {
  static SketchRegistry* instance = new SketchRegistry();  // immortal
  return *instance;
}

void SketchRegistry::merge(const std::string& name,
                           const QuantileSketch& sketch) {
  if (sketch.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    sketches_.emplace(name, sketch);
    return;
  }
  it->second.merge(sketch);
}

void SketchRegistry::observe(const std::string& name, double value,
                             double relativeAccuracy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(name, QuantileSketch(relativeAccuracy)).first;
  }
  it->second.observe(value);
}

std::map<std::string, QuantileSketch> SketchRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketches_;
}

void SketchRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sketches_.clear();
}

std::string SketchRegistry::sketchesJson() const {
  const std::map<std::string, QuantileSketch> sketches = snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, sketch] : sketches) {
    if (!first) out += ',';
    first = false;
    std::string entry = sketch.percentilesJson();
    entry.insert(entry.size() - 1, ",\"sketch\":" + sketch.toJson());
    out += '"' + util::jsonEscape(name) + "\":" + entry;
  }
  out += '}';
  return out;
}

}  // namespace sca::obs
