// Structured event log: leveled, span-correlated JSONL diagnostics.
//
// The metrics registry answers "how many"; traces answer "how long"; this
// log answers "what happened, in order" — the retry that fired, the
// breaker that opened, the cache entry that was evicted, the checkpoint
// that resumed a chain. Each event is one self-contained JSON line:
//
//   {"ts_ns":182734,"level":"info","tid":2,"span":"000000020000000d",
//    "component":"llm","event":"retry",
//    "fields":{"attempt":2,"delay_s":1.125,"error":"timeout"}}
//
//   ts_ns      nanoseconds since the tracer epoch (the same clock spans
//              use, so log lines and trace spans share a timeline)
//   tid        dense per-thread id (the log's own numbering)
//   span       innermost live trace span on the emitting thread as 16 hex
//              chars ("0" * 16 = none) — join key into SCA_TRACE output
//   fields     event-specific payload, omitted when empty
//
// Enabling: SCA_LOG=path names the output file; SCA_LOG_LEVEL is one of
// debug|info|warn|error (default info). Unset SCA_LOG means *zero* hot-path
// overhead: enabledFor() is one relaxed atomic load and every logEvent()
// call site builds its fields lambda only after that check passes — no
// formatting, no allocation, no clock read.
//
// Writing: each record is appended with a single write(2) on an O_APPEND
// descriptor, so concurrent threads (and processes sharing the file)
// interleave whole lines, never partial ones — the same guarantee
// util::appendLine gives bench_times.json. Failed writes are counted, not
// thrown: diagnostics must never take down the run they describe.
//
// Determinism: the log observes, it never participates — no RNG draws, no
// branching on log state in computation paths — so every table and stable
// metric is byte-identical with logging on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "obs/flight.hpp"
#include "util/strings.hpp"

namespace sca::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug"/"info"/"warn"/"error" (case-insensitive); fallback on anything
/// else.
[[nodiscard]] LogLevel parseLogLevel(std::string_view text,
                                     LogLevel fallback = LogLevel::kInfo);
[[nodiscard]] std::string_view logLevelName(LogLevel level) noexcept;

class EventLog {
 public:
  /// The process-global log, configured from SCA_LOG / SCA_LOG_LEVEL on
  /// first use (created on first use, never destroyed).
  [[nodiscard]] static EventLog& global();

  /// The one check hot paths pay when logging is off.
  [[nodiscard]] bool enabledFor(LogLevel level) const noexcept {
    return enabled_.load(std::memory_order_relaxed) &&
           static_cast<int>(level) >= minLevel_.load(std::memory_order_relaxed);
  }

  /// Appends one record. `fieldsJson` is a raw JSON object ("" = omit the
  /// "fields" key). Callers normally go through logEvent() below, which
  /// performs the enabledFor gate; write() itself re-checks nothing.
  void write(LogLevel level, std::string_view component,
             std::string_view event, std::string_view fieldsJson);

  /// Re-points the log (tests; "" disables). Closes any open descriptor.
  void configure(std::string path, LogLevel minLevel);

  [[nodiscard]] const std::string& path() const;
  [[nodiscard]] std::uint64_t droppedWrites() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  EventLog();
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  struct Impl;
  Impl* impl_;  // immortal alongside the log
  std::atomic<bool> enabled_{false};
  std::atomic<int> minLevel_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Call-site helper: `fill` receives a JsonObjectBuilder for the event's
/// fields and runs only when the level is enabled — disabled logging costs
/// exactly the enabledFor() load.
template <typename F>
inline void logEvent(LogLevel level, std::string_view component,
                     std::string_view event, F&& fill) {
  // The flight recorder sees every log call site regardless of SCA_LOG, so
  // retries, failovers, evictions and checkpoints land in the crash rings.
  if (flight::enabled()) {
    flight::noteLog(static_cast<std::uint8_t>(level), component, event);
  }
  EventLog& log = EventLog::global();
  if (!log.enabledFor(level)) return;
  util::JsonObjectBuilder fields;
  std::forward<F>(fill)(fields);
  log.write(level, component, event, fields.str());
}

inline void logEvent(LogLevel level, std::string_view component,
                     std::string_view event) {
  if (flight::enabled()) {
    flight::noteLog(static_cast<std::uint8_t>(level), component, event);
  }
  EventLog& log = EventLog::global();
  if (!log.enabledFor(level)) return;
  log.write(level, component, event, {});
}

}  // namespace sca::obs
