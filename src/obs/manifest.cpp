#include "obs/manifest.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "obs/sketch.hpp"
#include "obs/trace.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

extern char** environ;

namespace sca::obs {
namespace {

/// SCA_GIT_SHA override, else `git rev-parse HEAD` (benches run inside the
/// worktree), else "unknown". Never fails the manifest.
std::string resolveGitSha() {
  if (const char* sha = std::getenv("SCA_GIT_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
  std::string out;
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[128];
    while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
    ::pclose(pipe);
  }
  std::string sha(util::trim(out));
  const bool hex40 =
      sha.size() == 40 &&
      std::all_of(sha.begin(), sha.end(), [](unsigned char c) {
        return std::isxdigit(c) != 0;
      });
  return hex40 ? sha : "unknown";
}

/// Every SCA_* environment variable, sorted, as one JSON object — the
/// knobs that decide what a run computed.
std::string scaEnvJson() {
  std::map<std::string, std::string> vars;
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    const std::string_view entry(*env);
    if (!util::startsWith(entry, "SCA_")) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    vars.emplace(entry.substr(0, eq), entry.substr(eq + 1));
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : vars) {
    if (!first) out += ',';
    first = false;
    out += '"' + util::jsonEscape(key) + "\":\"" + util::jsonEscape(value) +
           '"';
  }
  out += '}';
  return out;
}

/// Aggregates completed spans into (parent name, name) edges — a flat
/// encoding of the phase tree that cannot recurse on self-nested spans
/// (e.g. parallel_for inside parallel_for).
std::string spanEdgesJson() {
  const std::vector<TraceEvent> events = Tracer::global().snapshotEvents();
  std::map<std::uint64_t, const TraceEvent*> byId;
  for (const TraceEvent& e : events) byId.emplace(e.id, &e);

  struct Edge {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
  };
  std::map<std::pair<std::string, std::string>, Edge> edges;
  for (const TraceEvent& e : events) {
    const auto parent = byId.find(e.parentId);
    std::string parentName =
        parent == byId.end() ? std::string() : parent->second->name;
    Edge& edge = edges[{std::move(parentName), e.name}];
    ++edge.count;
    edge.totalNs += e.durationNs;
  }

  std::string out = "[";
  bool first = true;
  for (const auto& [key, edge] : edges) {
    if (!first) out += ',';
    first = false;
    out += "{\"parent\":\"" + util::jsonEscape(key.first) + "\",\"name\":\"" +
           util::jsonEscape(key.second) +
           "\",\"count\":" + std::to_string(edge.count) + ",\"total_s\":" +
           util::formatDouble(static_cast<double>(edge.totalNs) / 1e9, 6) +
           '}';
  }
  out += ']';
  return out;
}

/// Gauges under kPhaseGaugePrefix, prefix stripped — the flat phase
/// wall-times, compatible with the bench_times.json "phases" object.
std::string phasesJson(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, seconds] : snapshot.gauges) {
    if (!util::startsWith(name, kPhaseGaugePrefix)) continue;
    if (!first) out += ',';
    first = false;
    out += '"' +
           util::jsonEscape(name.substr(kPhaseGaugePrefix.size())) + "\":" +
           util::formatDouble(seconds, 6);
  }
  out += '}';
  return out;
}

}  // namespace

std::string runGitSha() { return resolveGitSha(); }

void recordProcessRusage() {
  // CI hook: allocate-and-touch N KB right before sampling, so the RSS
  // regression gate can be proven to catch a memory blow-up the same way
  // SCA_OBS_TEST_DELAY_MS proves the slowdown gate. ru_maxrss is a
  // process-lifetime high-water mark, so touching once is enough; the
  // ballast is freed immediately and never affects what the run computes.
  if (const char* env = std::getenv("SCA_OBS_TEST_BALLAST_KB");
      env != nullptr && *env != '\0') {
    if (const long kb = std::strtol(env, nullptr, 10); kb > 0) {
      const std::size_t bytes = static_cast<std::size_t>(kb) * 1024;
      std::vector<char> ballast(bytes);
      constexpr std::size_t kPage = 4096;
      for (std::size_t i = 0; i < bytes; i += kPage) ballast[i] = 1;
      // Volatile read defeats dead-store elimination of the touch loop.
      volatile char sink = ballast[bytes - 1];
      (void)sink;
    }
  }
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return;
  MetricsRegistry& registry = MetricsRegistry::global();
  // ru_maxrss is kilobytes on Linux. All three are cumulative process
  // totals, so max-gauges make repeated sampling idempotent.
  registry.gauge("rusage_max_rss_kb", GaugeKind::kMax)
      .recordMax(static_cast<double>(usage.ru_maxrss));
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  registry.gauge("rusage_user_s", GaugeKind::kMax)
      .recordMax(seconds(usage.ru_utime));
  registry.gauge("rusage_sys_s", GaugeKind::kMax)
      .recordMax(seconds(usage.ru_stime));
}

std::string runManifestJson(const RunManifestOptions& options) {
  const MetricsSnapshot snapshot =
      MetricsRegistry::global().snapshot(options.scope);
  const Tracer& tracer = Tracer::global();

  std::string out = "{\n";
  out += "\"schema\":\"sca-manifest-v2\",\n";
  out += "\"bench\":\"" + util::jsonEscape(options.benchName) + "\",\n";
  out += std::string("\"status\":\"") +
         (options.complete ? "complete" : "partial") + "\",\n";
  if (!options.complete && !options.partialCause.empty()) {
    out += "\"partial_cause\":\"" + util::jsonEscape(options.partialCause) +
           "\",\n";
  }
  out += "\"git_sha\":\"" + util::jsonEscape(resolveGitSha()) + "\",\n";
  out += "\"threads\":" + std::to_string(options.threads) + ",\n";
  out += "\"env\":" + scaEnvJson() + ",\n";
  out += "\"metrics\":" + stableMetricsJson(snapshot) + ",\n";
  out += "\"runtime_metrics\":" + runtimeMetricsJson(snapshot) + ",\n";
  out += "\"sketches\":" + SketchRegistry::global().sketchesJson() + ",\n";
  out += "\"phases\":" + phasesJson(snapshot);
  if (tracer.enabled()) {
    out += ",\n\"span_edges\":" + spanEdgesJson();
    if (!tracer.configuredPath().empty()) {
      out += ",\n\"trace\":\"" + util::jsonEscape(tracer.configuredPath()) +
             '"';
    }
  }
  out += "\n}\n";
  return out;
}

util::Status writeRunManifest(const RunManifestOptions& options) {
  return util::atomicWriteFile(options.path, runManifestJson(options));
}

// --- JSON scanners --------------------------------------------------------

namespace {

/// Advances past one JSON value starting at `i` (object, array, string, or
/// scalar token). Returns false on unbalanced/truncated input.
bool skipValue(std::string_view json, std::size_t* i) {
  while (*i < json.size() &&
         std::isspace(static_cast<unsigned char>(json[*i])) != 0) {
    ++*i;
  }
  if (*i >= json.size()) return false;
  const char open = json[*i];
  if (open == '"') {
    ++*i;
    while (*i < json.size()) {
      if (json[*i] == '\\') {
        *i += 2;
        continue;
      }
      if (json[*i] == '"') {
        ++*i;
        return true;
      }
      ++*i;
    }
    return false;  // unterminated string
  }
  if (open == '{' || open == '[') {
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    while (*i < json.size()) {
      const char c = json[*i];
      if (c == '"') {
        if (!skipValue(json, i)) return false;
        continue;
      }
      if (c == open) ++depth;
      if (c == close && --depth == 0) {
        ++*i;
        return true;
      }
      ++*i;
    }
    return false;  // unbalanced
  }
  // Scalar: run to the next structural character.
  while (*i < json.size() && json[*i] != ',' && json[*i] != '}' &&
         json[*i] != ']' && std::isspace(static_cast<unsigned char>(
                                json[*i])) == 0) {
    ++*i;
  }
  return true;
}

std::string extractValueOfKind(std::string_view json, std::string_view key,
                               char kind) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string_view::npos) return "";
  std::size_t i = at + needle.size();
  while (i < json.size() &&
         std::isspace(static_cast<unsigned char>(json[i])) != 0) {
    ++i;
  }
  if (i >= json.size() || json[i] != kind) return "";
  std::size_t end = i;
  if (!skipValue(json, &end)) return "";
  return std::string(json.substr(i, end - i));
}

}  // namespace

std::string extractJsonObject(std::string_view json, std::string_view key) {
  return extractValueOfKind(json, key, '{');
}

std::string extractJsonArray(std::string_view json, std::string_view key) {
  return extractValueOfKind(json, key, '[');
}

bool topLevelEntries(std::string_view objectJson,
                     std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::size_t i = 0;
  while (i < objectJson.size() &&
         std::isspace(static_cast<unsigned char>(objectJson[i])) != 0) {
    ++i;
  }
  if (i >= objectJson.size() || objectJson[i] != '{') return false;
  ++i;
  for (;;) {
    while (i < objectJson.size() &&
           (std::isspace(static_cast<unsigned char>(objectJson[i])) != 0 ||
            objectJson[i] == ',')) {
      ++i;
    }
    if (i < objectJson.size() && objectJson[i] == '}') return true;
    // Key string.
    std::size_t keyBegin = i;
    if (i >= objectJson.size() || objectJson[i] != '"' ||
        !skipValue(objectJson, &i)) {
      return false;
    }
    const std::string key = util::jsonUnescape(
        objectJson.substr(keyBegin + 1, i - keyBegin - 2));
    while (i < objectJson.size() &&
           std::isspace(static_cast<unsigned char>(objectJson[i])) != 0) {
      ++i;
    }
    if (i >= objectJson.size() || objectJson[i] != ':') return false;
    ++i;
    std::size_t valueBegin = i;
    if (!skipValue(objectJson, &i)) return false;
    out->emplace_back(key, std::string(util::trim(objectJson.substr(
                               valueBegin, i - valueBegin))));
  }
}

bool topLevelElements(std::string_view arrayJson,
                      std::vector<std::string>* out) {
  out->clear();
  std::size_t i = 0;
  while (i < arrayJson.size() &&
         std::isspace(static_cast<unsigned char>(arrayJson[i])) != 0) {
    ++i;
  }
  if (i >= arrayJson.size() || arrayJson[i] != '[') return false;
  ++i;
  for (;;) {
    while (i < arrayJson.size() &&
           (std::isspace(static_cast<unsigned char>(arrayJson[i])) != 0 ||
            arrayJson[i] == ',')) {
      ++i;
    }
    if (i < arrayJson.size() && arrayJson[i] == ']') return true;
    if (i >= arrayJson.size()) return false;
    std::size_t begin = i;
    if (!skipValue(arrayJson, &i)) return false;
    out->push_back(
        std::string(util::trim(arrayJson.substr(begin, i - begin))));
  }
}

}  // namespace sca::obs
