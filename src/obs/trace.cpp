#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "obs/flight.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace sca::obs {
namespace {

/// Innermost live span on this thread (0 = none) — the parent for the
/// next span constructed here. Spans are strictly LIFO per thread, so a
/// single slot suffices.
thread_local std::uint64_t tlsCurrentSpan = 0;

/// Per-thread span sequence number; combined with the tid for unique ids.
thread_local std::uint64_t tlsSpanSequence = 0;

}  // namespace

struct Tracer::Buffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Tracer::BufferHandle {
  Tracer* tracer = nullptr;
  Buffer* buffer = nullptr;

  ~BufferHandle() {
    if (tracer != nullptr && buffer != nullptr) tracer->detachBuffer(buffer);
  }
};

struct Tracer::Impl {
  mutable std::mutex mutex;
  std::vector<Buffer*> buffers;       // live threads
  std::vector<TraceEvent> retired;    // events from exited threads
  std::uint32_t nextTid = 1;
  std::atomic<std::uint64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::string configuredPath;
};

Tracer::Tracer() : impl_(new Impl) {
  if (const char* path = std::getenv("SCA_TRACE");
      path != nullptr && *path != '\0') {
    impl_->configuredPath = path;
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer::~Tracer() = default;  // never runs for global()

Tracer& Tracer::global() {
  // Intentionally leaked, like the metrics registry: worker threads detach
  // their buffers during static teardown.
  static Tracer* instance = new Tracer();
  return *instance;
}

const std::string& Tracer::configuredPath() const noexcept {
  return impl_->configuredPath;
}

Tracer::Buffer& Tracer::localBuffer() {
  thread_local BufferHandle handle;
  if (handle.buffer == nullptr) {
    handle.tracer = this;
    handle.buffer = new Buffer();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    handle.buffer->tid = impl_->nextTid++;
    impl_->buffers.push_back(handle.buffer);
  }
  return *handle.buffer;
}

void Tracer::detachBuffer(Buffer* buffer) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    impl_->retired.insert(impl_->retired.end(),
                          std::make_move_iterator(buffer->events.begin()),
                          std::make_move_iterator(buffer->events.end()));
  }
  impl_->buffers.erase(
      std::remove(impl_->buffers.begin(), impl_->buffers.end(), buffer),
      impl_->buffers.end());
  delete buffer;
}

std::uint64_t Tracer::currentSpanId() noexcept { return tlsCurrentSpan; }

std::uint64_t Tracer::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

void Tracer::record(TraceEvent event) {
  Buffer& buffer = localBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::snapshotEvents() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out = impl_->retired;
    for (Buffer* buffer : impl_->buffers) {
      std::lock_guard<std::mutex> bufferLock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.id < b.id;
            });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->retired.clear();
  for (Buffer* buffer : impl_->buffers) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    buffer->events.clear();
  }
  impl_->dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t Tracer::droppedEvents() const noexcept {
  return impl_->dropped.load(std::memory_order_relaxed);
}

util::Status Tracer::writeChromeTrace(const std::string& path) const {
  return util::atomicWriteFile(path, chromeTraceJson(snapshotEvents()));
}

Span::Span(std::string_view name, const char* category) {
  Tracer& tracer = Tracer::global();
  const bool traceOn = tracer.enabled();
  const bool flightOn = flight::enabled();
  if (!traceOn && !flightOn) return;
  name_ = std::string(name);
  category_ = category;
  startNs_ = tracer.nowNs();
  if (traceOn) {
    active_ = true;
    parentId_ = tlsCurrentSpan;
    // tid (assigned on buffer attach) in the high bits keeps ids unique
    // across threads without any shared counter.
    id_ = (static_cast<std::uint64_t>(tracer.localBuffer().tid) << 32) |
          (++tlsSpanSequence & 0xffffffffULL);
    tlsCurrentSpan = id_;
  }
  if (flightOn) {
    flightActive_ = true;
    flight::spanBegin(name_);
  }
}

Span::~Span() {
  if (flightActive_) {
    flight::spanEnd(name_, Tracer::global().nowNs() - startNs_);
  }
  if (!active_) return;
  tlsCurrentSpan = parentId_;
  Tracer& tracer = Tracer::global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.startNs = startNs_;
  event.durationNs = tracer.nowNs() - startNs_;
  event.id = id_;
  event.parentId = parentId_;
  tracer.record(std::move(event));
}

namespace {

/// Microseconds with nanosecond resolution, Chrome's expected unit.
std::string formatUs(std::uint64_t ns) {
  return util::formatDouble(static_cast<double>(ns) / 1000.0, 3);
}

}  // namespace

std::string chromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",\n";
    out += "{\"name\":\"" + util::jsonEscape(e.name) + "\",\"cat\":\"" +
           util::jsonEscape(e.category == nullptr ? "phase" : e.category) +
           "\",\"ph\":\"X\",\"ts\":" + formatUs(e.startNs) +
           ",\"dur\":" + formatUs(e.durationNs) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"args\":{\"id\":" + std::to_string(e.id) +
           ",\"parent\":" + std::to_string(e.parentId) + "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

util::Status flushConfiguredTrace() {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled() || tracer.configuredPath().empty()) {
    return util::Status::ok();
  }
  return tracer.writeChromeTrace(tracer.configuredPath());
}

}  // namespace sca::obs
