#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/io.hpp"
#include "util/strings.hpp"

namespace sca::obs::flight {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kNameWords = 5;
constexpr std::size_t kNameBytes = kNameWords * 8;  // 40
constexpr std::uint32_t kMaxActiveDepth = 24;
constexpr std::size_t kMaxRings = 1024;

// Slot fields are individually-relaxed atomics: the owning thread is the
// only writer, but the watchdog thread and the fatal-signal handler read
// concurrently, and lock-free atomic words keep those reads both race-free
// and async-signal-safe. A reader validates `seq` against the index it
// expects, so a slot overwritten mid-read is detected and skipped.
struct Slot {
  std::atomic<std::uint64_t> tsNs{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint8_t> level{0};
  std::atomic<std::uint64_t> name[kNameWords]{};
};

struct ActiveSlot {
  std::atomic<std::uint64_t> sinceNs{0};
  std::atomic<std::uint64_t> name[kNameWords]{};
};

struct Ring {
  std::uint32_t tid = 0;       // written once before publication
  std::uint32_t capacity = 0;  // written once before publication
  Slot* slots = nullptr;       // written once before publication
  std::atomic<std::uint64_t> head{0};
  std::atomic<bool> exited{false};
  std::atomic<std::uint32_t> depth{0};
  ActiveSlot active[kMaxActiveDepth];
};

std::size_t gCapacity = 256;
std::atomic<Ring*> gRings[kMaxRings];
std::atomic<std::uint32_t> gRingCount{0};
std::atomic<std::uint32_t> gNextTid{1};
std::atomic<std::uint64_t> gDropped{0};

[[maybe_unused]] const bool gInitDone = [] {
  long value = 256;
  if (const char* raw = std::getenv("SCA_FLIGHT_EVENTS");
      raw != nullptr && *raw != '\0') {
    value = std::strtol(raw, nullptr, 10);
  }
  if (value <= 0) {
    gCapacity = 0;
    detail::gEnabled.store(false, std::memory_order_relaxed);
    return true;
  }
  gCapacity = static_cast<std::size_t>(std::clamp(value, 16L, 65536L));
  detail::gEnabled.store(true, std::memory_order_relaxed);
  return true;
}();

char sanitizeChar(char c) noexcept {
  const unsigned char u = static_cast<unsigned char>(c);
  if (u < 0x20 || u > 0x7e || c == '"' || c == '\\') return '_';
  return c;
}

void packName(std::string_view name, std::uint64_t out[kNameWords]) noexcept {
  char bytes[kNameBytes] = {};
  const std::size_t n = name.size() < kNameBytes ? name.size() : kNameBytes;
  for (std::size_t i = 0; i < n; ++i) bytes[i] = sanitizeChar(name[i]);
  for (std::size_t w = 0; w < kNameWords; ++w) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[w * 8 + b]))
              << (8 * b);
    }
    out[w] = word;
  }
}

// `out` must hold kNameBytes + 1; returns the NUL-terminated length.
std::size_t unpackName(const std::uint64_t words[kNameWords],
                       char out[]) noexcept {
  for (std::size_t w = 0; w < kNameWords; ++w) {
    for (std::size_t b = 0; b < 8; ++b) {
      out[w * 8 + b] = static_cast<char>((words[w] >> (8 * b)) & 0xff);
    }
  }
  out[kNameBytes] = '\0';
  std::size_t len = 0;
  while (len < kNameBytes && out[len] != '\0') ++len;
  out[len] = '\0';
  return len;
}

Ring* attachRing() {
  const std::uint32_t index =
      gRingCount.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxRings) return nullptr;
  Ring* ring = new Ring;  // immortal, reachable through gRings
  ring->tid = gNextTid.fetch_add(1, std::memory_order_relaxed);
  ring->capacity = static_cast<std::uint32_t>(gCapacity);
  ring->slots = new Slot[gCapacity];
  gRings[index].store(ring, std::memory_order_release);
  return ring;
}

struct RingHandle {
  Ring* ring = nullptr;
  bool attachFailed = false;
  ~RingHandle() {
    if (ring != nullptr) ring->exited.store(true, std::memory_order_relaxed);
  }
};

thread_local RingHandle tlsRing;

Ring* localRing() {
  RingHandle& handle = tlsRing;
  if (handle.ring == nullptr && !handle.attachFailed) {
    handle.ring = attachRing();
    if (handle.ring == nullptr) handle.attachFailed = true;
  }
  return handle.ring;
}

void recordEvent(Ring& ring, std::uint64_t tsNs, EventKind kind,
                 const std::uint64_t nameWords[kNameWords], std::uint64_t arg,
                 std::uint8_t level) {
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h % ring.capacity];
  slot.tsNs.store(tsNs, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.seq.store(h, std::memory_order_relaxed);
  slot.tid.store(ring.tid, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.level.store(level, std::memory_order_relaxed);
  for (std::size_t w = 0; w < kNameWords; ++w) {
    slot.name[w].store(nameWords[w], std::memory_order_relaxed);
  }
  ring.head.store(h + 1, std::memory_order_release);
}

std::uint32_t publishedRingCount() noexcept {
  const std::uint32_t count = gRingCount.load(std::memory_order_acquire);
  return count < kMaxRings ? count : static_cast<std::uint32_t>(kMaxRings);
}

bool anyActiveSpans() noexcept {
  const std::uint32_t count = publishedRingCount();
  for (std::uint32_t i = 0; i < count; ++i) {
    Ring* ring = gRings[i].load(std::memory_order_acquire);
    if (ring != nullptr && ring->depth.load(std::memory_order_relaxed) > 0) {
      return true;
    }
  }
  return false;
}

std::uint64_t monotonicNowNs() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------------
// Async-signal-safe emission. Everything below the Sink line builds JSON
// into fixed stack buffers with manual integer formatting — no allocation,
// no locks, no stdio — so the same code serves the fatal-signal handler,
// the watchdog dump, and tests.

struct Sink {
  void (*fn)(void* ctx, const char* data, std::size_t len);
  void* ctx;
};

void fdSinkFn(void* ctx, const char* data, std::size_t len) {
  const int fd = *static_cast<const int*>(ctx);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void stringSinkFn(void* ctx, const char* data, std::size_t len) {
  static_cast<std::string*>(ctx)->append(data, len);
}

struct LineBuf {
  char data[768];
  std::size_t len = 0;
  void ch(char c) noexcept {
    if (len < sizeof(data)) data[len++] = c;
  }
  void str(const char* s) noexcept {
    while (*s != '\0') ch(*s++);
  }
  void strN(const char* s, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) ch(s[i]);
  }
  void u64(std::uint64_t v) noexcept {
    char tmp[24];
    int i = 0;
    do {
      tmp[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (i > 0) ch(tmp[--i]);
  }
  void flush(const Sink& sink) noexcept {
    ch('\n');
    sink.fn(sink.ctx, data, len);
    len = 0;
  }
};

const char* signalNameOrNull(int signo) noexcept {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    default:
      return nullptr;
  }
}

// Arm state. The label and postmortem path live in fixed buffers filled at
// arm() time so the signal handler never touches std::string.
std::mutex gArmMutex;
int gArmCount = 0;
std::string gDir;
std::string gWatchdogPath;
std::string gPostmortemPath;
char gPostmortemPathBuf[512] = {};
char gLabelBuf[64] = {};
std::atomic<std::uint64_t> gEpochOffsetNs{0};  // monotonic ns at tracer epoch
std::atomic<int> gFatalSignal{0};
std::atomic<bool> gWatchdogTripped{false};
volatile sig_atomic_t gInHandler = 0;
bool gHandlersInstalled = false;
struct sigaction gPrevSegv, gPrevAbrt, gPrevBus;

std::thread gWatchdogThread;
std::mutex gWatchdogMutex;
std::condition_variable gWatchdogCv;
bool gWatchdogStop = false;

std::uint64_t sigSafeNowNs() noexcept {
  return monotonicNowNs() - gEpochOffsetNs.load(std::memory_order_relaxed);
}

void emitHeader(const Sink& sink, const char* cause, int signo) noexcept {
  LineBuf line;
  line.str("{\"schema\":\"sca-postmortem-v1\",\"cause\":\"");
  line.str(cause);
  line.ch('"');
  if (signo != 0) {
    line.str(",\"signal\":\"");
    if (const char* name = signalNameOrNull(signo); name != nullptr) {
      line.str(name);
    } else {
      line.str("SIG");
      line.u64(static_cast<std::uint64_t>(signo));
    }
    line.str("\",\"signo\":");
    line.u64(static_cast<std::uint64_t>(signo));
  }
  line.str(",\"label\":\"");
  line.str(gLabelBuf);
  line.str("\",\"ts_ns\":");
  line.u64(sigSafeNowNs());
  line.str(",\"capacity\":");
  line.u64(gCapacity);
  line.ch('}');
  line.flush(sink);
}

void emitRings(const Sink& sink) noexcept {
  const std::uint32_t count = publishedRingCount();
  std::uint64_t totalEvents = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    Ring* ring = gRings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    totalEvents += head;
    LineBuf line;
    line.str("{\"type\":\"thread\",\"tid\":");
    line.u64(ring->tid);
    line.str(",\"exited\":");
    line.u64(ring->exited.load(std::memory_order_relaxed) ? 1 : 0);
    line.str(",\"events\":");
    line.u64(head);
    line.ch('}');
    line.flush(sink);

    std::uint32_t depth = ring->depth.load(std::memory_order_acquire);
    if (depth > kMaxActiveDepth) depth = kMaxActiveDepth;
    char name[kNameBytes + 1];
    for (std::uint32_t d = 0; d < depth; ++d) {
      std::uint64_t words[kNameWords];
      for (std::size_t w = 0; w < kNameWords; ++w) {
        words[w] = ring->active[d].name[w].load(std::memory_order_relaxed);
      }
      const std::size_t nameLen = unpackName(words, name);
      line.str("{\"type\":\"active\",\"tid\":");
      line.u64(ring->tid);
      line.str(",\"depth\":");
      line.u64(d);
      line.str(",\"name\":\"");
      line.strN(name, nameLen);
      line.str("\",\"since_ns\":");
      line.u64(ring->active[d].sinceNs.load(std::memory_order_relaxed));
      line.ch('}');
      line.flush(sink);
    }

    const std::uint64_t window =
        ring->capacity > 0 ? ring->capacity - 1 : 0;
    const std::uint64_t tail = head < window ? head : window;
    for (std::uint64_t seq = head - tail; seq < head; ++seq) {
      Slot& slot = ring->slots[seq % ring->capacity];
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
      std::uint64_t words[kNameWords];
      for (std::size_t w = 0; w < kNameWords; ++w) {
        words[w] = slot.name[w].load(std::memory_order_relaxed);
      }
      const std::size_t nameLen = unpackName(words, name);
      line.str("{\"type\":\"event\",\"tid\":");
      line.u64(ring->tid);
      line.str(",\"seq\":");
      line.u64(seq);
      line.str(",\"ts_ns\":");
      line.u64(slot.tsNs.load(std::memory_order_relaxed));
      line.str(",\"kind\":\"");
      line.str(eventKindName(slot.kind.load(std::memory_order_relaxed)));
      line.str("\",\"level\":");
      line.u64(slot.level.load(std::memory_order_relaxed));
      line.str(",\"name\":\"");
      line.strN(name, nameLen);
      line.str("\",\"arg\":");
      line.u64(slot.arg.load(std::memory_order_relaxed));
      line.ch('}');
      line.flush(sink);
    }
  }
  LineBuf end;
  end.str("{\"type\":\"end\",\"threads\":");
  end.u64(count);
  end.str(",\"events\":");
  end.u64(totalEvents);
  end.ch('}');
  end.flush(sink);
}

void writeSignalPostmortem(int signo) noexcept {
  const int fd =
      ::open(gPostmortemPathBuf, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  int fdCopy = fd;
  Sink sink{&fdSinkFn, &fdCopy};
  emitHeader(sink, "signal", signo);
  emitRings(sink);
  ::close(fd);
}

void restoreDefaultAndRaise(int signo) noexcept {
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(signo, &dfl, nullptr);
  ::raise(signo);
}

void fatalSignalHandler(int signo) {
  if (gInHandler != 0) {
    restoreDefaultAndRaise(signo);
    return;
  }
  gInHandler = 1;
  gFatalSignal.store(signo, std::memory_order_relaxed);
  writeSignalPostmortem(signo);
  restoreDefaultAndRaise(signo);
}

void mkdirAll(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!prefix.empty() && prefix != "/") {
        ::mkdir(prefix.c_str(), 0755);  // EEXIST is fine
      }
    }
    if (i < path.size()) prefix.push_back(path[i]);
  }
}

// Watchdog dump: the sig-safe ring serialization plus context only a
// normal-context writer can gather (suspect line, metrics, rusage),
// written crash-safely through atomicWriteFile.
void writeWatchdogDump(double intervalSeconds, int quietTicks) {
  std::string out;
  Sink sink{&stringSinkFn, &out};
  emitHeader(sink, "watchdog_stall", 0);

  const std::uint64_t nowNs = Tracer::global().nowNs();
  std::vector<ThreadSnapshot> threads = snapshot();
  const ThreadSnapshot* suspectThread = nullptr;
  std::uint64_t suspectAge = 0;
  for (const ThreadSnapshot& thread : threads) {
    if (thread.exited || thread.activeSpans.empty()) continue;
    const std::uint64_t since = thread.activeSpans.back().sinceNs;
    const std::uint64_t age = nowNs > since ? nowNs - since : 0;
    if (suspectThread == nullptr || age > suspectAge) {
      suspectThread = &thread;
      suspectAge = age;
    }
  }
  if (suspectThread != nullptr) {
    out += "{\"type\":\"suspect\",\"tid\":" +
           std::to_string(suspectThread->tid) + ",\"name\":\"" +
           suspectThread->activeSpans.back().name +
           "\",\"age_ns\":" + std::to_string(suspectAge) +
           ",\"quiet_ticks\":" + std::to_string(quietTicks) +
           ",\"interval_s\":" + util::formatDouble(intervalSeconds, 3) +
           "}\n";
  }

  const MetricsSnapshot metrics =
      MetricsRegistry::global().snapshot(Scope::kLifetime);
  out += "{\"type\":\"metrics\",\"stable\":" + stableMetricsJson(metrics) +
         ",\"runtime\":" + runtimeMetricsJson(metrics) + "}\n";

  rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    const double userS = static_cast<double>(usage.ru_utime.tv_sec) +
                         static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    const double sysS = static_cast<double>(usage.ru_stime.tv_sec) +
                        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    out += "{\"type\":\"rusage\",\"max_rss_kb\":" +
           std::to_string(usage.ru_maxrss) +
           ",\"user_s\":" + util::formatDouble(userS, 3) +
           ",\"sys_s\":" + util::formatDouble(sysS, 3) + "}\n";
  }

  emitRings(sink);
  (void)util::atomicWriteFile(gWatchdogPath, out);
}

// Two consecutive quiet intervals with live spans = a stall: a single
// quiet tick can be a long compute chunk, but span-instrumented work that
// makes progress records events (heartbeats) well inside one interval.
void watchdogLoop(double intervalSeconds) {
  const auto interval = std::chrono::duration<double>(intervalSeconds);
  std::uint64_t last = progressEpoch();
  int quiet = 0;
  std::unique_lock<std::mutex> lock(gWatchdogMutex);
  while (!gWatchdogStop) {
    if (gWatchdogCv.wait_for(lock, interval, [] { return gWatchdogStop; })) {
      break;
    }
    lock.unlock();
    const std::uint64_t now = progressEpoch();
    if (now == last && anyActiveSpans()) {
      ++quiet;
      if (quiet >= 2 &&
          !gWatchdogTripped.exchange(true, std::memory_order_acq_rel)) {
        writeWatchdogDump(intervalSeconds, quiet);
        MetricsRegistry::global()
            .counter("flight_watchdog_trips", Stability::kRuntime)
            .add(1);
        logEvent(LogLevel::kWarn, "flight", "watchdog_stall",
                 [&](util::JsonObjectBuilder& fields) {
                   fields.addUint("quiet_ticks",
                                  static_cast<std::uint64_t>(quiet));
                   fields.add("dump", gWatchdogPath);
                 });
      }
    } else {
      quiet = 0;
    }
    last = now;
    lock.lock();
  }
}

std::string signalNameString(int signo) {
  if (const char* name = signalNameOrNull(signo); name != nullptr) {
    return name;
  }
  return "SIG" + std::to_string(signo);
}

}  // namespace

const char* eventKindName(std::uint8_t kind) noexcept {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kLog:
      return "log";
    case EventKind::kPhase:
      return "phase";
    case EventKind::kStream:
      return "stream";
  }
  return "unknown";
}

void note(EventKind kind, std::string_view name, std::uint64_t arg,
          std::uint8_t level) {
  if (!enabled()) return;
  Ring* ring = localRing();
  if (ring == nullptr) {
    gDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t words[kNameWords];
  packName(name, words);
  recordEvent(*ring, Tracer::global().nowNs(), kind, words, arg, level);
}

void noteLog(std::uint8_t level, std::string_view component,
             std::string_view event) {
  if (!enabled()) return;
  char buf[kNameBytes];
  std::size_t n = 0;
  for (char c : component) {
    if (n >= kNameBytes) break;
    buf[n++] = c;
  }
  if (n < kNameBytes) buf[n++] = ':';
  for (char c : event) {
    if (n >= kNameBytes) break;
    buf[n++] = c;
  }
  note(EventKind::kLog, std::string_view(buf, n), 0, level);
}

void spanBegin(std::string_view name) {
  if (!enabled()) return;
  Ring* ring = localRing();
  if (ring == nullptr) {
    gDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t now = Tracer::global().nowNs();
  std::uint64_t words[kNameWords];
  packName(name, words);
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  if (depth < kMaxActiveDepth) {
    ActiveSlot& active = ring->active[depth];
    active.sinceNs.store(now, std::memory_order_relaxed);
    for (std::size_t w = 0; w < kNameWords; ++w) {
      active.name[w].store(words[w], std::memory_order_relaxed);
    }
  }
  ring->depth.store(depth + 1, std::memory_order_release);
  recordEvent(*ring, now, EventKind::kSpanBegin, words, 0,
              static_cast<std::uint8_t>(std::min<std::uint32_t>(depth, 255)));
}

void spanEnd(std::string_view name, std::uint64_t durationNs) {
  if (!enabled()) return;
  Ring* ring = localRing();
  if (ring == nullptr) {
    gDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  if (depth > 0) ring->depth.store(depth - 1, std::memory_order_release);
  std::uint64_t words[kNameWords];
  packName(name, words);
  recordEvent(
      *ring, Tracer::global().nowNs(), EventKind::kSpanEnd, words, durationNs,
      static_cast<std::uint8_t>(std::min<std::uint32_t>(
          depth > 0 ? depth - 1 : 0, 255)));
}

std::uint64_t progressEpoch() noexcept {
  const std::uint32_t count = publishedRingCount();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    Ring* ring = gRings[i].load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<ThreadSnapshot> snapshot() {
  std::vector<ThreadSnapshot> out;
  const std::uint32_t count = publishedRingCount();
  out.reserve(count);
  char name[kNameBytes + 1];
  for (std::uint32_t i = 0; i < count; ++i) {
    Ring* ring = gRings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ThreadSnapshot snap;
    snap.tid = ring->tid;
    snap.exited = ring->exited.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    snap.totalEvents = head;
    const std::uint64_t window =
        ring->capacity > 0 ? ring->capacity - 1 : 0;
    const std::uint64_t tail = head < window ? head : window;
    snap.events.reserve(tail);
    for (std::uint64_t seq = head - tail; seq < head; ++seq) {
      Slot& slot = ring->slots[seq % ring->capacity];
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
      SnapshotEvent event;
      event.seq = seq;
      event.tsNs = slot.tsNs.load(std::memory_order_relaxed);
      event.arg = slot.arg.load(std::memory_order_relaxed);
      event.tid = slot.tid.load(std::memory_order_relaxed);
      event.kind = slot.kind.load(std::memory_order_relaxed);
      event.level = slot.level.load(std::memory_order_relaxed);
      std::uint64_t words[kNameWords];
      for (std::size_t w = 0; w < kNameWords; ++w) {
        words[w] = slot.name[w].load(std::memory_order_relaxed);
      }
      const std::size_t nameLen = unpackName(words, name);
      event.name.assign(name, nameLen);
      snap.events.push_back(std::move(event));
    }
    std::uint32_t depth = ring->depth.load(std::memory_order_acquire);
    if (depth > kMaxActiveDepth) depth = kMaxActiveDepth;
    for (std::uint32_t d = 0; d < depth; ++d) {
      std::uint64_t words[kNameWords];
      for (std::size_t w = 0; w < kNameWords; ++w) {
        words[w] = ring->active[d].name[w].load(std::memory_order_relaxed);
      }
      const std::size_t nameLen = unpackName(words, name);
      SnapshotActiveSpan span;
      span.name.assign(name, nameLen);
      span.sinceNs = ring->active[d].sinceNs.load(std::memory_order_relaxed);
      snap.activeSpans.push_back(std::move(span));
    }
    out.push_back(std::move(snap));
  }
  return out;
}

ArmOptions armOptionsFromEnv(std::string label) {
  ArmOptions options;
  options.label = std::move(label);
  if (const char* dir = std::getenv("SCA_FLIGHT_DIR");
      dir != nullptr && *dir != '\0') {
    options.dir = dir;
  }
  if (const char* raw = std::getenv("SCA_WATCHDOG_S");
      raw != nullptr && *raw != '\0') {
    options.watchdogSeconds = std::clamp(std::strtod(raw, nullptr), 0.0, 3600.0);
  }
  return options;
}

void arm(const ArmOptions& options) {
  std::lock_guard<std::mutex> lock(gArmMutex);
  if (++gArmCount > 1) return;
  gFatalSignal.store(0, std::memory_order_relaxed);
  gWatchdogTripped.store(false, std::memory_order_relaxed);
  gDir = options.dir.empty() ? std::string("bench_out/flight") : options.dir;
  gWatchdogPath = gDir + "/watchdog.json";
  gPostmortemPath = gDir + "/postmortem.json";
  mkdirAll(gDir);

  std::size_t n = std::min(gPostmortemPath.size(),
                           sizeof(gPostmortemPathBuf) - 1);
  std::memcpy(gPostmortemPathBuf, gPostmortemPath.data(), n);
  gPostmortemPathBuf[n] = '\0';

  n = std::min(options.label.size(), sizeof(gLabelBuf) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    gLabelBuf[i] = sanitizeChar(options.label[i]);
  }
  gLabelBuf[n] = '\0';

  gEpochOffsetNs.store(monotonicNowNs() - Tracer::global().nowNs(),
                       std::memory_order_relaxed);

  if (options.installSignalHandlers) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &fatalSignalHandler;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGSEGV, &action, &gPrevSegv);
    ::sigaction(SIGABRT, &action, &gPrevAbrt);
    ::sigaction(SIGBUS, &action, &gPrevBus);
    gHandlersInstalled = true;
  }

  if (options.watchdogSeconds > 0.0 && enabled()) {
    {
      std::lock_guard<std::mutex> wdLock(gWatchdogMutex);
      gWatchdogStop = false;
    }
    gWatchdogThread = std::thread(&watchdogLoop, options.watchdogSeconds);
  }
}

void disarm() {
  std::thread toJoin;
  {
    std::lock_guard<std::mutex> lock(gArmMutex);
    if (gArmCount == 0) return;
    if (--gArmCount > 0) return;
    {
      std::lock_guard<std::mutex> wdLock(gWatchdogMutex);
      gWatchdogStop = true;
    }
    gWatchdogCv.notify_all();
    toJoin = std::move(gWatchdogThread);
    if (gHandlersInstalled) {
      ::sigaction(SIGSEGV, &gPrevSegv, nullptr);
      ::sigaction(SIGABRT, &gPrevAbrt, nullptr);
      ::sigaction(SIGBUS, &gPrevBus, nullptr);
      gHandlersInstalled = false;
    }
  }
  if (toJoin.joinable()) toJoin.join();
}

std::string incidentCause() {
  const int signo = gFatalSignal.load(std::memory_order_relaxed);
  if (signo != 0) return signalNameString(signo);
  if (gWatchdogTripped.load(std::memory_order_relaxed)) {
    return "watchdog_stall";
  }
  return {};
}

std::string watchdogDumpPath() {
  std::lock_guard<std::mutex> lock(gArmMutex);
  return gArmCount > 0 ? gWatchdogPath : std::string{};
}

std::string postmortemPath() {
  std::lock_guard<std::mutex> lock(gArmMutex);
  return gArmCount > 0 ? gPostmortemPath : std::string{};
}

namespace detail {

void setEnabledForTest(bool enabled) {
  if (enabled && gCapacity == 0) gCapacity = 256;
  gEnabled.store(enabled, std::memory_order_relaxed);
}

std::size_t ringCapacity() noexcept { return gCapacity; }

void runFatalSignalHandlerForTest(int signo) {
  gFatalSignal.store(signo, std::memory_order_relaxed);
  writeSignalPostmortem(signo);
}

std::uint64_t droppedEvents() noexcept {
  return gDropped.load(std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace sca::obs::flight
