#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "obs/manifest.hpp"
#include "util/strings.hpp"

namespace sca::obs {
namespace {

/// Sum of direct children's durations per parent id.
std::unordered_map<std::uint64_t, std::uint64_t> childTimeByParent(
    const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, std::uint64_t> childNs;
  for (const TraceEvent& e : events) {
    if (e.parentId != 0) childNs[e.parentId] += e.durationNs;
  }
  return childNs;
}

std::uint64_t selfTime(const TraceEvent& e,
                       const std::unordered_map<std::uint64_t, std::uint64_t>&
                           childNs) {
  const auto it = childNs.find(e.id);
  const std::uint64_t children = it == childNs.end() ? 0 : it->second;
  return e.durationNs > children ? e.durationNs - children : 0;
}

std::uint64_t endNs(const TraceEvent& e) { return e.startNs + e.durationNs; }

/// The deterministic "bigger" span: later end, then longer, then smaller
/// id (ids are assigned in creation order, so ties resolve to the span
/// that started first).
bool dominates(const TraceEvent& a, const TraceEvent& b) {
  if (endNs(a) != endNs(b)) return endNs(a) > endNs(b);
  if (a.durationNs != b.durationNs) return a.durationNs > b.durationNs;
  return a.id < b.id;
}

}  // namespace

std::vector<SpanStats> spanHotspots(const std::vector<TraceEvent>& events,
                                    std::size_t topN) {
  const auto childNs = childTimeByParent(events);
  std::map<std::string, SpanStats> byName;
  for (const TraceEvent& e : events) {
    SpanStats& stats = byName[e.name];
    stats.name = e.name;
    ++stats.count;
    stats.totalNs += e.durationNs;
    stats.selfNs += selfTime(e, childNs);
  }
  std::vector<SpanStats> out;
  out.reserve(byName.size());
  for (auto& [name, stats] : byName) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const SpanStats& a,
                                       const SpanStats& b) {
    if (a.selfNs != b.selfNs) return a.selfNs > b.selfNs;
    return a.name < b.name;
  });
  if (topN > 0 && out.size() > topN) out.resize(topN);
  return out;
}

std::vector<CriticalPathStep> criticalPath(
    const std::vector<TraceEvent>& events) {
  std::vector<CriticalPathStep> path;
  if (events.empty()) return path;
  const auto childNs = childTimeByParent(events);

  std::unordered_map<std::uint64_t, const TraceEvent*> byId;
  std::unordered_map<std::uint64_t, std::vector<const TraceEvent*>> children;
  for (const TraceEvent& e : events) byId.emplace(e.id, &e);
  const TraceEvent* root = nullptr;
  for (const TraceEvent& e : events) {
    // A parent missing from the event set (still open when the snapshot
    // was taken) makes its children roots of what we *can* see.
    if (e.parentId != 0 && byId.count(e.parentId) != 0) {
      children[e.parentId].push_back(&e);
    } else if (root == nullptr ||
               e.durationNs > root->durationNs ||
               (e.durationNs == root->durationNs && dominates(e, *root))) {
      root = &e;
    }
  }

  for (const TraceEvent* node = root; node != nullptr;) {
    path.push_back({node->name, node->durationNs, selfTime(*node, childNs)});
    const auto kids = children.find(node->id);
    if (kids == children.end()) break;
    const TraceEvent* next = nullptr;
    for (const TraceEvent* child : kids->second) {
      if (next == nullptr || dominates(*child, *next)) next = child;
    }
    node = next;
  }
  return path;
}

util::Result<std::vector<TraceEvent>> parseChromeTrace(std::string_view json) {
  std::vector<std::string> elements;
  const std::string array = extractJsonArray(json, "traceEvents");
  if (array.empty() || !topLevelElements(array, &elements)) {
    return util::Status(util::StatusCode::kDataLoss,
                        "no traceEvents array in trace document");
  }
  std::vector<TraceEvent> events;
  events.reserve(elements.size());
  for (const std::string& element : elements) {
    std::vector<std::pair<std::string, std::string>> entries;
    if (!topLevelEntries(element, &entries)) {
      return util::Status(util::StatusCode::kDataLoss,
                          "malformed trace event");
    }
    TraceEvent event;
    bool sawName = false;
    bool sawTiming = false;
    for (const auto& [key, raw] : entries) {
      if (key == "name") {
        if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
          event.name = util::jsonUnescape(
              std::string_view(raw).substr(1, raw.size() - 2));
          sawName = true;
        }
      } else if (key == "ts") {
        event.startNs = static_cast<std::uint64_t>(
            std::strtod(raw.c_str(), nullptr) * 1000.0 + 0.5);
        sawTiming = true;
      } else if (key == "dur") {
        event.durationNs = static_cast<std::uint64_t>(
            std::strtod(raw.c_str(), nullptr) * 1000.0 + 0.5);
      } else if (key == "tid") {
        event.tid = static_cast<std::uint32_t>(
            std::strtoul(raw.c_str(), nullptr, 10));
      } else if (key == "args") {
        std::vector<std::pair<std::string, std::string>> args;
        if (topLevelEntries(raw, &args)) {
          for (const auto& [argKey, argRaw] : args) {
            if (argKey == "id") {
              event.id = std::strtoull(argRaw.c_str(), nullptr, 10);
            } else if (argKey == "parent") {
              event.parentId = std::strtoull(argRaw.c_str(), nullptr, 10);
            }
          }
        }
      }
    }
    if (!sawName || !sawTiming) {
      return util::Status(util::StatusCode::kDataLoss,
                          "trace event missing name/ts");
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace sca::obs
