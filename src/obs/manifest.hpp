// Versioned run manifests: one self-describing JSON record per bench run.
//
// The manifest is what makes successive runs diffable: it pins the code
// (git SHA), the configuration (SCA_* environment, pool thread count),
// and the run's complete telemetry — the deterministic metrics snapshot,
// the runtime (scheduling/clock-dependent) metrics, the phase wall-times,
// and, when tracing is on, aggregated span edges and the trace path.
//
// Layout (one top-level key per line so plain `diff` works):
//
//   {
//   "schema":"sca-manifest-v2",
//   "bench":"micro_pipeline",
//   "status":"complete",            // "partial" when the run did not finish
//   "git_sha":"<40 hex or unknown>",
//   "threads":8,
//   "env":{"SCA_FAULT_RATE":"0.05","SCA_THREADS":"8"},
//   "metrics":{"counters":{...},"histograms":{...}},
//   "runtime_metrics":{"counters":{...},"gauges":{...},"histograms":{...}},
//   "sketches":{"serve_latency_s":{"count":N,"p50":...,"p90":...,
//               "p99":...,"p999":...,"min":...,"max":...,
//               "sketch":{<QuantileSketch::toJson state>}},...},
//   "phases":{"corpus_build":1.234,...},
//   "span_edges":[{"parent":"","name":"pipeline_once","count":1,
//                  "total_s":1.2},...],
//   "trace":"trace.json"
//   }
//
// "metrics" is the canonical stable section (sorted keys, fixed number
// formatting): byte-identical across SCA_THREADS settings for a
// deterministic workload, which is the contract `sca_cli metrics --stable`
// and the CI smoke step compare. Everything wall-clock lives outside it.
// "sketches" (schema v2) snapshots SketchRegistry::global() — quantile
// summaries plus full mergeable state, so later tooling can re-merge
// manifests; it sits outside the stable section like runtime_metrics.
//
// The file is written with util::atomicWriteFile, and only by
// bench::Session's destructor — a bench killed mid-run leaves the previous
// manifest (or none), never a torn or silently-incomplete one; a bench
// that unwound without reaching Session::complete() writes
// "status":"partial".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace sca::obs {

struct RunManifestOptions {
  std::string path = "bench_out/manifest.json";
  std::string benchName;
  bool complete = false;
  // Why a partial manifest is partial: a signal name ("SIGSEGV"),
  // "watchdog_stall", or "destructor" (session torn down before
  // markComplete). Emitted as "partial_cause" only when !complete, so
  // flight dumps and manifests cross-reference.
  std::string partialCause;
  std::size_t threads = 0;         // caller-supplied (obs sits below runtime)
  Scope scope = Scope::kLifetime;  // survives the benches' per-table resets
};

[[nodiscard]] util::Status writeRunManifest(const RunManifestOptions& options);

/// The manifest document as a string — for callers (bench::Session) that
/// write the same run to more than one path.
[[nodiscard]] std::string runManifestJson(const RunManifestOptions& options);

/// The SHA the manifest/history records pin: SCA_GIT_SHA override, else
/// `git rev-parse HEAD`, else "unknown".
[[nodiscard]] std::string runGitSha();

/// Samples getrusage(RUSAGE_SELF) into runtime max-gauges — peak RSS
/// ("rusage_max_rss_kb") and cumulative user/system CPU seconds
/// ("rusage_user_s"/"rusage_sys_s") — so manifests and history records
/// capture memory and CPU cost, not just wall time. Idempotent: the
/// values are cumulative high-water marks, so repeated calls only raise
/// them.
void recordProcessRusage();

// --- minimal JSON navigation for the sca_cli inspectors -------------------
// These are scanners, not a parser: they understand object/array nesting
// and string escapes, which is all the self-emitted formats above need.

/// The raw `{...}` value of `"key":` at any nesting depth ("" if absent or
/// unbalanced).
[[nodiscard]] std::string extractJsonObject(std::string_view json,
                                            std::string_view key);

/// The raw `[...]` value of `"key":` ("" if absent or unbalanced).
[[nodiscard]] std::string extractJsonArray(std::string_view json,
                                           std::string_view key);

/// Top-level `"key":value` pairs of one object, values as raw text.
/// Returns false (with partial output) on malformed input.
[[nodiscard]] bool topLevelEntries(
    std::string_view objectJson,
    std::vector<std::pair<std::string, std::string>>* out);

/// Top-level elements of one array, as raw text. False on malformed input.
[[nodiscard]] bool topLevelElements(std::string_view arrayJson,
                                    std::vector<std::string>* out);

}  // namespace sca::obs
