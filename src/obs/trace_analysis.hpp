// Trace analytics: post-processing for the span data the tracer records.
//
// The Chrome trace viewer answers questions interactively; these helpers
// answer the two questions CI and a terminal need answered mechanically:
//
//   * Where did the time go?  Per-span *self* time (duration minus the
//     duration of direct children), aggregated by span name — the top-N
//     hotspot list. Total time double-counts parents; self time does not.
//
//   * What bounded the run?  The critical path: starting from the
//     longest root span, repeatedly descend into the child whose interval
//     ends last — the chain of spans that had to finish for the run to
//     finish. Shortening anything off this path cannot shorten the run.
//
// Both operate on TraceEvent vectors, which come either from the live
// tracer (Tracer::snapshotEvents) or from a Chrome trace file written by
// an earlier run (parseChromeTrace reads exactly what chromeTraceJson
// writes — args.id/args.parent carry the span linkage).
//
// Tie-breaking is deterministic everywhere (duration, then start, then id)
// so the same trace always yields the same report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/status.hpp"

namespace sca::obs {

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t selfNs = 0;  // total minus direct children's durations
};

/// Per-name aggregation sorted by self time (desc; ties by name), truncated
/// to `topN` (0 = all). A child that outlives its parent clamps to zero
/// rather than underflowing.
[[nodiscard]] std::vector<SpanStats> spanHotspots(
    const std::vector<TraceEvent>& events, std::size_t topN = 0);

struct CriticalPathStep {
  std::string name;
  std::uint64_t durationNs = 0;
  std::uint64_t selfNs = 0;
};

/// Root-to-leaf chain: the longest root span, then at each level the child
/// whose interval ends last (ties: longer duration, then smaller id).
/// Empty when there are no events.
[[nodiscard]] std::vector<CriticalPathStep> criticalPath(
    const std::vector<TraceEvent>& events);

/// Reads a Chrome trace document produced by chromeTraceJson back into
/// events (name, ts/dur restored to nanoseconds, tid, args.id/args.parent).
/// kDataLoss when the document has no traceEvents array or an event is
/// missing its fields.
[[nodiscard]] util::Result<std::vector<TraceEvent>> parseChromeTrace(
    std::string_view json);

}  // namespace sca::obs
