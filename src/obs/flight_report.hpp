#pragma once

// Offline reconstruction of `sca-postmortem-v1` flight-recorder dumps
// (watchdog stall dumps and fatal-signal postmortems share the schema).
// Backs `sca_cli postmortem <file>`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sca::obs::flight {

struct ReportEvent {
  std::uint64_t tsNs = 0;
  std::uint64_t arg = 0;
  std::uint64_t seq = 0;
  std::uint8_t level = 0;
  std::string kind;
  std::string name;
};

struct ReportActiveSpan {
  std::uint32_t depth = 0;
  std::uint64_t sinceNs = 0;
  std::string name;
};

struct ReportThread {
  std::uint32_t tid = 0;
  bool exited = false;
  std::uint64_t totalEvents = 0;
  std::vector<ReportActiveSpan> activeSpans;  // outermost first
  std::vector<ReportEvent> events;            // oldest -> newest
};

struct Postmortem {
  std::string cause;   // "signal" | "watchdog_stall"
  std::string signal;  // "SIGSEGV" etc. ("" unless cause == "signal")
  int signo = 0;
  std::string label;
  std::uint64_t tsNs = 0;  // dump timestamp, tracer clock
  std::uint64_t capacity = 0;
  std::uint64_t declaredThreads = 0;
  std::uint64_t declaredEvents = 0;
  // Suspect recorded by the watchdog at dump time (tid 0 = none recorded;
  // suspectOrInfer() falls back to deriving one from the active spans).
  std::uint32_t suspectTid = 0;
  std::string suspectName;
  std::uint64_t suspectAgeNs = 0;
  bool hasMetrics = false;
  std::string rusageJson;  // "" when absent (signal dumps)
  std::map<std::uint32_t, ReportThread> threads;

  /// Parses one dump. Fails on a missing/mismatched schema header or
  /// structurally broken lines; unknown record types are skipped so newer
  /// writers stay readable.
  [[nodiscard]] static util::Result<Postmortem> parse(std::string_view text);

  /// The suspect line if the dump carried one, else the innermost active
  /// span that has been live the longest. False when no spans were active.
  [[nodiscard]] bool suspectOrInfer(std::uint32_t* tid, std::string* name,
                                    std::uint64_t* ageNs) const;

  /// Human-readable timeline: header, suspected stall site, then each
  /// thread's active-span chain and last `eventsPerThread` events.
  [[nodiscard]] std::string renderText(std::size_t eventsPerThread) const;
};

}  // namespace sca::obs::flight
