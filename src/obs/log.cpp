#include "obs/log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "obs/trace.hpp"

namespace sca::obs {
namespace {

/// Dense per-thread id for log records, independent of the tracer's tid
/// numbering (the log must work when tracing is off).
std::uint32_t localTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1,
                                                  std::memory_order_relaxed);
  return tid;
}

}  // namespace

LogLevel parseLogLevel(std::string_view text, LogLevel fallback) {
  const std::string lowered = util::toLower(text);
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  return fallback;
}

std::string_view logLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

struct EventLog::Impl {
  std::mutex mutex;  // guards path/fd lifecycle, not the write itself
  std::string path;
  int fd = -1;

  void closeLocked() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  /// Opens (or reuses) the O_APPEND descriptor. -1 on failure.
  int descriptorLocked() {
    if (fd >= 0 || path.empty()) return fd;
    std::error_code ec;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    return fd;
  }
};

EventLog::EventLog() : impl_(new Impl) {
  const char* path = std::getenv("SCA_LOG");
  if (path == nullptr || *path == '\0') return;
  impl_->path = path;
  if (const char* level = std::getenv("SCA_LOG_LEVEL");
      level != nullptr && *level != '\0') {
    minLevel_.store(static_cast<int>(parseLogLevel(level)),
                    std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

EventLog::~EventLog() = default;  // never runs for global()

EventLog& EventLog::global() {
  // Intentionally leaked, like the registry and the tracer: worker threads
  // may emit events during static teardown.
  static EventLog* instance = new EventLog();
  return *instance;
}

const std::string& EventLog::path() const { return impl_->path; }

void EventLog::configure(std::string path, LogLevel minLevel) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->closeLocked();
  impl_->path = std::move(path);
  minLevel_.store(static_cast<int>(minLevel), std::memory_order_relaxed);
  enabled_.store(!impl_->path.empty(), std::memory_order_relaxed);
}

void EventLog::write(LogLevel level, std::string_view component,
                     std::string_view event, std::string_view fieldsJson) {
  util::JsonObjectBuilder record;
  record.addUint("ts_ns", Tracer::global().nowNs());
  record.add("level", logLevelName(level));
  record.addUint("tid", localTid());
  record.add("span", util::toHex64(Tracer::currentSpanId()));
  record.add("component", component);
  record.add("event", event);
  if (!fieldsJson.empty() && fieldsJson != "{}") {
    record.addRaw("fields", fieldsJson);
  }
  std::string line = record.str();
  line += '\n';

  std::lock_guard<std::mutex> lock(impl_->mutex);
  const int fd = impl_->descriptorLocked();
  if (fd < 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // One write() for the whole line: O_APPEND interleaves records from
  // concurrent emitters (threads or processes) line-by-line.
  ssize_t n;
  do {
    n = ::write(fd, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0 || static_cast<std::size_t>(n) != line.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sca::obs
