#include "obs/flight_report.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/manifest.hpp"
#include "util/strings.hpp"

namespace sca::obs::flight {

namespace {

using Entries = std::vector<std::pair<std::string, std::string>>;

const std::string* findEntry(const Entries& entries, std::string_view key) {
  for (const auto& [name, value] : entries) {
    if (name == key) return &value;
  }
  return nullptr;
}

// Raw values come back quoted for strings; names were sanitized at record
// time (no escapes survive), so stripping the quotes is enough.
std::string stringValue(const Entries& entries, std::string_view key) {
  const std::string* raw = findEntry(entries, key);
  if (raw == nullptr) return {};
  if (raw->size() >= 2 && raw->front() == '"' && raw->back() == '"') {
    return raw->substr(1, raw->size() - 2);
  }
  return *raw;
}

std::uint64_t uintValue(const Entries& entries, std::string_view key) {
  const std::string* raw = findEntry(entries, key);
  if (raw == nullptr) return 0;
  return std::strtoull(raw->c_str(), nullptr, 10);
}

std::string seconds(std::uint64_t ns) {
  return util::formatDouble(static_cast<double>(ns) * 1e-9, 3);
}

}  // namespace

util::Result<Postmortem> Postmortem::parse(std::string_view text) {
  Postmortem pm;
  bool sawHeader = false;
  std::size_t pos = 0;
  int lineNo = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const bool lastLine = eol >= text.size() - 1 &&
                          text.find_first_not_of(" \t\r\n", eol) ==
                              std::string_view::npos;
    pos = eol + 1;
    ++lineNo;
    if (line.empty()) continue;

    Entries entries;
    if (line.front() != '{' || !topLevelEntries(line, &entries)) {
      // A crash can truncate the final record mid-write; everything before
      // it is still evidence. Garbage earlier in the file is a real error.
      if (lastLine && sawHeader) break;
      return util::Status(util::StatusCode::kDataLoss,
                          "postmortem line " + std::to_string(lineNo) +
                              " is not a JSON object");
    }

    if (!sawHeader) {
      if (stringValue(entries, "schema") != "sca-postmortem-v1") {
        return util::Status(util::StatusCode::kDataLoss,
                            "missing or unsupported postmortem schema header");
      }
      pm.cause = stringValue(entries, "cause");
      pm.signal = stringValue(entries, "signal");
      pm.signo = static_cast<int>(uintValue(entries, "signo"));
      pm.label = stringValue(entries, "label");
      pm.tsNs = uintValue(entries, "ts_ns");
      pm.capacity = uintValue(entries, "capacity");
      sawHeader = true;
      continue;
    }

    const std::string type = stringValue(entries, "type");
    if (type == "thread") {
      const auto tid = static_cast<std::uint32_t>(uintValue(entries, "tid"));
      ReportThread& thread = pm.threads[tid];
      thread.tid = tid;
      thread.exited = uintValue(entries, "exited") != 0;
      thread.totalEvents = uintValue(entries, "events");
    } else if (type == "active") {
      const auto tid = static_cast<std::uint32_t>(uintValue(entries, "tid"));
      ReportThread& thread = pm.threads[tid];
      thread.tid = tid;
      ReportActiveSpan span;
      span.depth = static_cast<std::uint32_t>(uintValue(entries, "depth"));
      span.sinceNs = uintValue(entries, "since_ns");
      span.name = stringValue(entries, "name");
      thread.activeSpans.push_back(std::move(span));
    } else if (type == "event") {
      const auto tid = static_cast<std::uint32_t>(uintValue(entries, "tid"));
      ReportThread& thread = pm.threads[tid];
      thread.tid = tid;
      ReportEvent event;
      event.seq = uintValue(entries, "seq");
      event.tsNs = uintValue(entries, "ts_ns");
      event.arg = uintValue(entries, "arg");
      event.level = static_cast<std::uint8_t>(uintValue(entries, "level"));
      event.kind = stringValue(entries, "kind");
      event.name = stringValue(entries, "name");
      thread.events.push_back(std::move(event));
    } else if (type == "suspect") {
      pm.suspectTid = static_cast<std::uint32_t>(uintValue(entries, "tid"));
      pm.suspectName = stringValue(entries, "name");
      pm.suspectAgeNs = uintValue(entries, "age_ns");
    } else if (type == "metrics") {
      pm.hasMetrics = true;
    } else if (type == "rusage") {
      pm.rusageJson = std::string(line);
    } else if (type == "end") {
      pm.declaredThreads = uintValue(entries, "threads");
      pm.declaredEvents = uintValue(entries, "events");
    }
    // Unknown types: skip (forward compatibility).
  }
  if (!sawHeader) {
    return util::Status(util::StatusCode::kDataLoss,
                        "empty postmortem: no schema header");
  }
  for (auto& [tid, thread] : pm.threads) {
    std::sort(thread.activeSpans.begin(), thread.activeSpans.end(),
              [](const ReportActiveSpan& a, const ReportActiveSpan& b) {
                return a.depth < b.depth;
              });
    std::sort(thread.events.begin(), thread.events.end(),
              [](const ReportEvent& a, const ReportEvent& b) {
                return a.seq < b.seq;
              });
  }
  return pm;
}

bool Postmortem::suspectOrInfer(std::uint32_t* tid, std::string* name,
                                std::uint64_t* ageNs) const {
  if (suspectTid != 0) {
    *tid = suspectTid;
    *name = suspectName;
    *ageNs = suspectAgeNs;
    return true;
  }
  const ReportThread* best = nullptr;
  std::uint64_t bestSince = 0;
  for (const auto& [id, thread] : threads) {
    if (thread.exited || thread.activeSpans.empty()) continue;
    const std::uint64_t since = thread.activeSpans.back().sinceNs;
    if (best == nullptr || since < bestSince) {
      best = &thread;
      bestSince = since;
    }
  }
  if (best == nullptr) return false;
  *tid = best->tid;
  *name = best->activeSpans.back().name;
  *ageNs = tsNs > bestSince ? tsNs - bestSince : 0;
  return true;
}

std::string Postmortem::renderText(std::size_t eventsPerThread) const {
  std::string out = "postmortem: cause=" + cause;
  if (!signal.empty()) out += " signal=" + signal;
  if (!label.empty()) out += " label=" + label;
  out += " threads=" + std::to_string(threads.size());
  out += " events=" + std::to_string(declaredEvents);
  out += " capacity=" + std::to_string(capacity);
  out += " ts=+" + seconds(tsNs) + "s\n";

  std::uint32_t stallTid = 0;
  std::string stallName;
  std::uint64_t stallAge = 0;
  if (suspectOrInfer(&stallTid, &stallName, &stallAge)) {
    out += "suspected stall site: tid " + std::to_string(stallTid) +
           " span \"" + stallName + "\" active " + seconds(stallAge) +
           "s at dump\n";
  } else {
    out += "suspected stall site: none (no active spans)\n";
  }
  if (!rusageJson.empty()) out += "rusage: " + rusageJson + "\n";

  for (const auto& [tid, thread] : threads) {
    out += "thread " + std::to_string(tid) +
           (thread.exited ? " (exited, " : " (live, ") +
           std::to_string(thread.totalEvents) + " events):\n";
    if (!thread.activeSpans.empty()) {
      out += "  active:";
      for (const ReportActiveSpan& span : thread.activeSpans) {
        if (&span != &thread.activeSpans.front()) out += " >";
        out += " " + span.name;
      }
      out += '\n';
      for (const ReportActiveSpan& span : thread.activeSpans) {
        out += "    [" + std::to_string(span.depth) + "] " + span.name +
               "  since +" + seconds(span.sinceNs) + "s\n";
      }
    }
    const std::size_t n = std::min(eventsPerThread, thread.events.size());
    if (n > 0) {
      out += "  last " + std::to_string(n) + " of " +
             std::to_string(thread.totalEvents) + " events:\n";
      for (std::size_t i = thread.events.size() - n; i < thread.events.size();
           ++i) {
        const ReportEvent& event = thread.events[i];
        out += "    +" + seconds(event.tsNs) + "s  " + event.kind + "  " +
               event.name;
        if (event.arg != 0) out += "  arg=" + std::to_string(event.arg);
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace sca::obs::flight
