#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "util/strings.hpp"

namespace sca::obs {
namespace {

/// Hard cap on cells per shard (instrument names are a fixed, small set in
/// this codebase; phases add a handful more). 4096 cells = 32 KiB/thread.
constexpr std::uint32_t kMaxCells = 4096;

std::uint64_t packDouble(double value) { return std::bit_cast<std::uint64_t>(value); }
double unpackDouble(std::uint64_t bits) { return std::bit_cast<double>(bits); }

}  // namespace

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

bool MetricsSnapshot::stableEmpty() const {
  return counters.empty() && histograms.empty();
}

enum class InstrumentType { kCounter, kGauge, kHistogram };

struct MetricsRegistry::Instrument {
  std::string name;
  InstrumentType type = InstrumentType::kCounter;
  Stability stability = Stability::kStable;
  GaugeKind gaugeKind = GaugeKind::kSum;
  std::uint32_t firstCell = 0;
  std::uint32_t cellCount = 1;
  std::vector<double> bounds;  // histograms only; address is stable (deque)
};

/// One thread's cells. Owner-only writes (relaxed load+store — no RMW, no
/// lock prefix); the snapshot thread reads the same atomics relaxed, so
/// concurrent recording is race-free without ever contending.
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
};

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::deque<Instrument> instruments;                    // stable addresses
  std::map<std::string, std::size_t, std::less<>> byName;
  std::vector<Shard*> shards;                            // live threads
  std::array<std::uint64_t, kMaxCells> retired{};        // exited threads
  std::array<std::uint64_t, kMaxCells> resetBase{};      // markReset state
  std::uint32_t nextCell = 0;

  /// Raw merged bit pattern of one cell; `kind` selects the fold
  /// (requires mutex held so the shard list is stable).
  [[nodiscard]] std::uint64_t mergeCell(std::uint32_t cell,
                                        InstrumentType type,
                                        GaugeKind kind) const {
    if (type == InstrumentType::kGauge) {
      double merged = unpackDouble(retired[cell]);
      for (const Shard* shard : shards) {
        const double v = unpackDouble(
            shard->cells[cell].load(std::memory_order_relaxed));
        merged = kind == GaugeKind::kMax ? std::max(merged, v) : merged + v;
      }
      return packDouble(merged);
    }
    std::uint64_t merged = retired[cell];
    for (const Shard* shard : shards) {
      merged += shard->cells[cell].load(std::memory_order_relaxed);
    }
    return merged;
  }

  void baselineInstrument(const Instrument& instrument) {
    for (std::uint32_t c = instrument.firstCell;
         c < instrument.firstCell + instrument.cellCount; ++c) {
      resetBase[c] = mergeCell(c, instrument.type, instrument.gaugeKind);
    }
  }
};

/// Per-thread attachment; folds the shard into `retired` on thread exit.
struct MetricsRegistry::ShardHandle {
  MetricsRegistry* registry = nullptr;
  Shard* shard = nullptr;

  ~ShardHandle() {
    if (registry != nullptr && shard != nullptr) registry->detachShard(shard);
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry() = default;  // never runs for global()

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: worker threads may detach shards during static
  // teardown, after function-local statics would have been destroyed.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Shard& MetricsRegistry::localShard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    handle.registry = this;
    handle.shard = new Shard();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shards.push_back(handle.shard);
  }
  return *handle.shard;
}

void MetricsRegistry::detachShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Fold cell-by-cell with the owning instrument's merge semantics.
  for (const Instrument& instrument : impl_->instruments) {
    for (std::uint32_t c = instrument.firstCell;
         c < instrument.firstCell + instrument.cellCount; ++c) {
      const std::uint64_t value =
          shard->cells[c].load(std::memory_order_relaxed);
      if (instrument.type == InstrumentType::kGauge) {
        const double v = unpackDouble(value);
        const double prior = unpackDouble(impl_->retired[c]);
        impl_->retired[c] =
            packDouble(instrument.gaugeKind == GaugeKind::kMax
                           ? std::max(prior, v)
                           : prior + v);
      } else {
        impl_->retired[c] += value;
      }
    }
  }
  impl_->shards.erase(
      std::remove(impl_->shards.begin(), impl_->shards.end(), shard),
      impl_->shards.end());
  delete shard;
}

namespace {

[[noreturn]] void typeConflict(std::string_view name) {
  throw std::logic_error("obs: instrument '" + std::string(name) +
                         "' re-registered as a different type");
}

}  // namespace

Counter MetricsRegistry::counter(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->byName.find(name); it != impl_->byName.end()) {
    const Instrument& existing = impl_->instruments[it->second];
    if (existing.type != InstrumentType::kCounter) typeConflict(name);
    return Counter(this, existing.firstCell);
  }
  if (impl_->nextCell + 1 > kMaxCells) {
    throw std::length_error("obs: metric cell budget exhausted");
  }
  Instrument instrument;
  instrument.name = std::string(name);
  instrument.type = InstrumentType::kCounter;
  instrument.stability = stability;
  instrument.firstCell = impl_->nextCell++;
  impl_->byName.emplace(instrument.name, impl_->instruments.size());
  impl_->instruments.push_back(std::move(instrument));
  return Counter(this, impl_->instruments.back().firstCell);
}

Gauge MetricsRegistry::gauge(std::string_view name, GaugeKind kind) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->byName.find(name); it != impl_->byName.end()) {
    const Instrument& existing = impl_->instruments[it->second];
    if (existing.type != InstrumentType::kGauge) typeConflict(name);
    return Gauge(this, existing.firstCell, existing.gaugeKind);
  }
  if (impl_->nextCell + 1 > kMaxCells) {
    throw std::length_error("obs: metric cell budget exhausted");
  }
  Instrument instrument;
  instrument.name = std::string(name);
  instrument.type = InstrumentType::kGauge;
  instrument.stability = Stability::kRuntime;
  instrument.gaugeKind = kind;
  instrument.firstCell = impl_->nextCell++;
  impl_->byName.emplace(instrument.name, impl_->instruments.size());
  impl_->instruments.push_back(std::move(instrument));
  const Instrument& stored = impl_->instruments.back();
  return Gauge(this, stored.firstCell, stored.gaugeKind);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds,
                                     Stability stability) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("obs: histogram bounds must be sorted and "
                                "non-empty");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (const auto it = impl_->byName.find(name); it != impl_->byName.end()) {
    const Instrument& existing = impl_->instruments[it->second];
    if (existing.type != InstrumentType::kHistogram) typeConflict(name);
    return Histogram(this, existing.firstCell, &existing.bounds);
  }
  const auto cellCount = static_cast<std::uint32_t>(bounds.size() + 1);
  if (impl_->nextCell + cellCount > kMaxCells) {
    throw std::length_error("obs: metric cell budget exhausted");
  }
  Instrument instrument;
  instrument.name = std::string(name);
  instrument.type = InstrumentType::kHistogram;
  instrument.stability = stability;
  instrument.firstCell = impl_->nextCell;
  instrument.cellCount = cellCount;
  instrument.bounds = std::move(bounds);
  impl_->nextCell += cellCount;
  impl_->byName.emplace(instrument.name, impl_->instruments.size());
  impl_->instruments.push_back(std::move(instrument));
  const Instrument& stored = impl_->instruments.back();
  return Histogram(this, stored.firstCell, &stored.bounds);
}

void MetricsRegistry::bumpCounterCell(std::uint32_t cell, std::uint64_t n) {
  std::atomic<std::uint64_t>& slot = localShard().cells[cell];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void MetricsRegistry::recordGaugeCell(std::uint32_t cell, double value,
                                      GaugeKind kind) {
  std::atomic<std::uint64_t>& slot = localShard().cells[cell];
  const double prior = unpackDouble(slot.load(std::memory_order_relaxed));
  const double next =
      kind == GaugeKind::kMax ? std::max(prior, value) : prior + value;
  slot.store(packDouble(next), std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) const {
  if (registry_ == nullptr || n == 0) return;
  registry_->bumpCounterCell(cell_, n);
}

void Gauge::add(double value) const {
  if (registry_ == nullptr || kind_ != GaugeKind::kSum) return;
  registry_->recordGaugeCell(cell_, value, GaugeKind::kSum);
}

void Gauge::recordMax(double value) const {
  if (registry_ == nullptr || kind_ != GaugeKind::kMax) return;
  registry_->recordGaugeCell(cell_, value, GaugeKind::kMax);
}

void Histogram::observe(double value) const {
  if (registry_ == nullptr) return;
  // Bucket i counts bounds[i-1] < value <= bounds[i]; the final cell is
  // the overflow bucket for value > bounds.back().
  const auto it = std::lower_bound(bounds_->begin(), bounds_->end(), value);
  const auto index = static_cast<std::uint32_t>(it - bounds_->begin());
  registry_->bumpCounterCell(firstCell_ + index, 1);
}

MetricsSnapshot MetricsRegistry::snapshot(Scope scope) const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const Instrument& instrument : impl_->instruments) {
    switch (instrument.type) {
      case InstrumentType::kCounter: {
        std::uint64_t value = impl_->mergeCell(
            instrument.firstCell, instrument.type, instrument.gaugeKind);
        if (scope == Scope::kSinceReset) {
          value -= impl_->resetBase[instrument.firstCell];
        }
        if (value == 0) break;
        (instrument.stability == Stability::kStable
             ? out.counters
             : out.runtimeCounters)[instrument.name] = value;
        break;
      }
      case InstrumentType::kGauge: {
        double value = unpackDouble(impl_->mergeCell(
            instrument.firstCell, instrument.type, instrument.gaugeKind));
        // Sum gauges re-base by subtraction; a max cannot, so max gauges
        // always report the lifetime high-water mark.
        if (scope == Scope::kSinceReset &&
            instrument.gaugeKind == GaugeKind::kSum) {
          value -= unpackDouble(impl_->resetBase[instrument.firstCell]);
        }
        if (value == 0.0) break;
        out.gauges[instrument.name] = value;
        break;
      }
      case InstrumentType::kHistogram: {
        HistogramSnapshot histogram;
        histogram.bounds = instrument.bounds;
        histogram.counts.reserve(instrument.cellCount);
        for (std::uint32_t c = instrument.firstCell;
             c < instrument.firstCell + instrument.cellCount; ++c) {
          std::uint64_t count = impl_->mergeCell(c, instrument.type,
                                                 instrument.gaugeKind);
          if (scope == Scope::kSinceReset) count -= impl_->resetBase[c];
          histogram.counts.push_back(count);
        }
        if (histogram.total() == 0) break;
        (instrument.stability == Stability::kStable
             ? out.histograms
             : out.runtimeHistograms)[instrument.name] = std::move(histogram);
        break;
      }
    }
  }
  return out;
}

std::uint64_t MetricsRegistry::counterValue(std::string_view name,
                                            Scope scope) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->byName.find(name);
  if (it == impl_->byName.end()) return 0;
  const Instrument& instrument = impl_->instruments[it->second];
  if (instrument.type != InstrumentType::kCounter) return 0;
  std::uint64_t value = impl_->mergeCell(instrument.firstCell,
                                         instrument.type,
                                         instrument.gaugeKind);
  if (scope == Scope::kSinceReset) {
    value -= impl_->resetBase[instrument.firstCell];
  }
  return value;
}

void MetricsRegistry::markReset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const Instrument& i : impl_->instruments) impl_->baselineInstrument(i);
}

void MetricsRegistry::markResetCounters() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const Instrument& i : impl_->instruments) {
    if (i.type == InstrumentType::kCounter) impl_->baselineInstrument(i);
  }
}

void MetricsRegistry::markResetGauges() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const Instrument& i : impl_->instruments) {
    if (i.type == InstrumentType::kGauge) impl_->baselineInstrument(i);
  }
}

void MetricsRegistry::markResetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->byName.find(name);
  if (it == impl_->byName.end()) return;
  impl_->baselineInstrument(impl_->instruments[it->second]);
}

namespace {

void appendCounterObject(std::string& out,
                         const std::map<std::string, std::uint64_t>& values) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += '"' + util::jsonEscape(name) + "\":" + std::to_string(value);
  }
  out += '}';
}

void appendHistogramObject(
    std::string& out,
    const std::map<std::string, HistogramSnapshot>& values) {
  out += '{';
  bool first = true;
  for (const auto& [name, histogram] : values) {
    if (!first) out += ',';
    first = false;
    out += '"' + util::jsonEscape(name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += util::formatDouble(histogram.bounds[i], 6);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(histogram.counts[i]);
    }
    out += "]}";
  }
  out += '}';
}

}  // namespace

std::string stableMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":";
  appendCounterObject(out, snapshot.counters);
  out += ",\"histograms\":";
  appendHistogramObject(out, snapshot.histograms);
  out += '}';
  return out;
}

std::string runtimeMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":";
  appendCounterObject(out, snapshot.runtimeCounters);
  out += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + util::jsonEscape(name) + "\":" + util::formatDouble(value, 6);
  }
  out += "},\"histograms\":";
  appendHistogramObject(out, snapshot.runtimeHistograms);
  out += '}';
  return out;
}

}  // namespace sca::obs
