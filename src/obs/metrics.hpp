// Unified metrics registry: the one place every layer's telemetry lands.
//
// Three instrument kinds, registered by name (find-or-create, any thread,
// any time):
//
//   * Counter    — monotone uint64, add(n). Merged by exact integer sum.
//   * Gauge      — double, either Sum (accumulates, e.g. simulated backoff
//                  seconds) or Max (high-water mark, e.g. pool queue depth).
//   * Histogram  — fixed bucket bounds set at registration; observe(v)
//                  lands in the first bucket whose upper bound >= v, with a
//                  trailing overflow bucket. Bucket counts are uint64.
//
// Recording is lock-free per thread: each thread owns a shard (a flat
// array of relaxed atomics written only by its owner), so hot paths never
// contend. snapshot() merges the shards deterministically — integer sums
// are exact and order-independent, so counter and histogram values are
// identical for every SCA_THREADS setting as long as the *events* are
// (which is the repo's standing determinism invariant).
//
// Stability tags partition the export: kStable instruments must be
// invariant across thread counts and appear in the manifest's
// byte-comparable "metrics" section; kRuntime instruments (steal counts,
// queue depths, cache hit/miss splits, wall-clock phase seconds) are
// scheduling- or clock-dependent and are exported separately. Gauges are
// always runtime: merging doubles across shards is order-sensitive in
// floating point, so they can never be byte-stable.
//
// reset is non-destructive: markReset*() snapshots a per-cell baseline and
// Scope::kSinceReset subtracts it, so resetting never races with writers
// and Scope::kLifetime (what the run manifest reports) survives the
// per-table resets the benches do. Max gauges always report the lifetime
// high-water mark (a max cannot be re-based by subtraction).
//
// The global registry is intentionally immortal (never destroyed), so
// worker threads detaching their shards during static teardown are safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sca::obs {

enum class Stability { kStable, kRuntime };
enum class GaugeKind { kSum, kMax };
enum class Scope { kSinceReset, kLifetime };

/// Gauges recorded under this name prefix are phase wall-times; the
/// manifest strips the prefix into its "phases" section and
/// runtime::PhaseTimes registers through it.
inline constexpr std::string_view kPhaseGaugePrefix = "phase:";

class MetricsRegistry;

/// Cheap value handles (registry pointer + cell index). Default-constructed
/// handles are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  /// kSum gauges accumulate; kMax gauges keep the largest non-negative
  /// value ever recorded. Calling the wrong op for the kind is a no-op.
  void add(double value) const;
  void recordMax(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t cell, GaugeKind kind)
      : registry_(registry), cell_(cell), kind_(kind) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
  GaugeKind kind_ = GaugeKind::kSum;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t firstCell,
            const std::vector<double>* bounds)
      : registry_(registry), firstCell_(firstCell), bounds_(bounds) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t firstCell_ = 0;
  const std::vector<double>* bounds_ = nullptr;  // owned by the registry
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  [[nodiscard]] std::uint64_t total() const;
};

/// A merged view of the registry. Zero-valued instruments are omitted, so
/// a snapshot taken right after a reset is empty regardless of what was
/// ever registered.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;            // kStable
  std::map<std::string, HistogramSnapshot> histograms;      // kStable
  std::map<std::string, std::uint64_t> runtimeCounters;
  std::map<std::string, HistogramSnapshot> runtimeHistograms;
  std::map<std::string, double> gauges;                     // always runtime
  [[nodiscard]] bool stableEmpty() const;
};

class MetricsRegistry {
 public:
  /// The process-global registry (created on first use, never destroyed).
  [[nodiscard]] static MetricsRegistry& global();

  /// Find-or-create by name. Re-registering an existing name returns the
  /// original instrument (the first registration's stability/kind/bounds
  /// win); re-registering under a different instrument type throws.
  [[nodiscard]] Counter counter(std::string_view name,
                                Stability stability = Stability::kStable);
  [[nodiscard]] Gauge gauge(std::string_view name,
                            GaugeKind kind = GaugeKind::kSum);
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds,
                                    Stability stability = Stability::kStable);

  /// Deterministic merge of all shards. Byte-stable for the kStable
  /// sections when the process is quiescent (no in-flight recorders).
  [[nodiscard]] MetricsSnapshot snapshot(
      Scope scope = Scope::kSinceReset) const;

  /// Merged value of one counter (0 if never registered).
  [[nodiscard]] std::uint64_t counterValue(
      std::string_view name, Scope scope = Scope::kSinceReset) const;

  /// Baseline the since-reset scope (non-destructive; see file comment).
  void markReset();
  void markResetCounters();
  void markResetGauges();
  void markResetCounter(std::string_view name);

 private:
  struct Shard;
  struct ShardHandle;
  struct Instrument;
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void bumpCounterCell(std::uint32_t cell, std::uint64_t n);
  void recordGaugeCell(std::uint32_t cell, double value, GaugeKind kind);
  [[nodiscard]] Shard& localShard();
  void detachShard(Shard* shard);  // thread exit: fold into retired_

  struct Impl;
  Impl* impl_;  // immortal alongside the registry
};

/// Canonical JSON for the stable section — `{"counters":{...},
/// "histograms":{...}}`, keys sorted, fixed number formatting — the
/// byte-comparable object embedded in the run manifest.
[[nodiscard]] std::string stableMetricsJson(const MetricsSnapshot& snapshot);

/// JSON for the runtime section: `{"counters":{...},"gauges":{...},
/// "histograms":{...}}`.
[[nodiscard]] std::string runtimeMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace sca::obs
