#include "obs/history.hpp"

#include <algorithm>
#include <cstdlib>
#include <ctime>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

extern char** environ;

namespace sca::obs {
namespace {

/// Raw top-level value -> unquoted string ("" when not a string).
std::string unquote(const std::string& raw) {
  if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
    return util::jsonUnescape(
        std::string_view(raw).substr(1, raw.size() - 2));
  }
  return "";
}

double toDouble(const std::string& raw) {
  return std::strtod(raw.c_str(), nullptr);
}

std::uint64_t toUint(const std::string& raw) {
  return std::strtoull(raw.c_str(), nullptr, 10);
}

/// env vars that never change what a run computes or how fast it
/// legitimately runs: output redirections, the git-SHA override, the
/// thread count (its own record field) and the CI slowdown-injection hook.
bool excludedFromEnvClass(std::string_view name) {
  return name == "SCA_MANIFEST" || name == "SCA_TRACE" ||
         name == "SCA_LOG" || name == "SCA_LOG_LEVEL" ||
         name == "SCA_GIT_SHA" || name == "SCA_THREADS" ||
         name == "SCA_OBS_TEST_DELAY_MS" ||
         name == "SCA_OBS_TEST_BALLAST_KB" ||  // CI RSS-injection hook
         name == "SCA_OBS_TEST_STALL_MS" ||    // CI watchdog-wedge hook
         name == "SCA_FLIGHT_EVENTS" || name == "SCA_FLIGHT_DIR" ||
         name == "SCA_WATCHDOG_S" ||  // flight recorder: observational only
         util::startsWith(name, "SCA_HISTORY");
}

std::string groupKey(const HistoryRecord& record) {
  return record.bench + "\x1f" + std::to_string(record.threads) + "\x1f" +
         record.envClass;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

std::string historyRecordJson(const HistoryRecord& record) {
  util::JsonObjectBuilder out;
  out.add("bench", record.bench);
  out.add("status", record.complete ? "complete" : "partial");
  out.add("git_sha", record.gitSha);
  out.addUint("threads", record.threads);
  out.add("env_class", record.envClass);
  out.add("digest", record.digest);
  out.addDouble("total_s", record.totalSeconds, 6);
  out.addUint("max_rss_kb", record.maxRssKb);
  out.addDouble("user_s", record.userCpuSeconds, 6);
  out.addDouble("sys_s", record.sysCpuSeconds, 6);
  out.addInt("ts", record.unixTime);
  util::JsonObjectBuilder phases;
  for (const auto& [name, seconds] : record.phases) {
    phases.addDouble(name, seconds, 6);
  }
  out.addRaw("phases", phases.str());
  util::JsonObjectBuilder counters;
  for (const auto& [name, count] : record.counters) {
    counters.addUint(name, count);
  }
  out.addRaw("counters", counters.str());
  return out.str();
}

bool parseHistoryRecord(std::string_view line, HistoryRecord* out) {
  *out = HistoryRecord{};
  std::vector<std::pair<std::string, std::string>> entries;
  if (!topLevelEntries(line, &entries)) return false;
  bool sawBench = false;
  bool sawDigest = false;
  bool sawStatus = false;
  for (const auto& [key, raw] : entries) {
    if (key == "bench") {
      out->bench = unquote(raw);
      sawBench = !out->bench.empty();
    } else if (key == "status") {
      const std::string status = unquote(raw);
      out->complete = status == "complete";
      sawStatus = status == "complete" || status == "partial";
    } else if (key == "git_sha") {
      out->gitSha = unquote(raw);
    } else if (key == "threads") {
      out->threads = toUint(raw);
    } else if (key == "env_class") {
      out->envClass = unquote(raw);
    } else if (key == "digest") {
      out->digest = unquote(raw);
      sawDigest = out->digest.size() == 16;
    } else if (key == "total_s") {
      out->totalSeconds = toDouble(raw);
    } else if (key == "max_rss_kb") {
      out->maxRssKb = toUint(raw);
    } else if (key == "user_s") {
      out->userCpuSeconds = toDouble(raw);
    } else if (key == "sys_s") {
      out->sysCpuSeconds = toDouble(raw);
    } else if (key == "ts") {
      out->unixTime = static_cast<long long>(toUint(raw));
    } else if (key == "phases") {
      std::vector<std::pair<std::string, std::string>> inner;
      if (!topLevelEntries(raw, &inner)) return false;
      for (const auto& [phase, value] : inner) {
        out->phases.emplace(phase, toDouble(value));
      }
    } else if (key == "counters") {
      std::vector<std::pair<std::string, std::string>> inner;
      if (!topLevelEntries(raw, &inner)) return false;
      for (const auto& [counter, value] : inner) {
        out->counters.emplace(counter, toUint(value));
      }
    }
  }
  return sawBench && sawDigest && sawStatus;
}

util::Status HistoryStore::append(const HistoryRecord& record) {
  const util::Result<std::string> existing = util::readFile(path_);
  if (!existing.ok() || existing.value().empty()) {
    util::JsonObjectBuilder header;
    header.add("magic", kHistoryMagic);
    const util::Status status = util::appendLine(path_, header.str());
    if (!status.isOk()) return status;
  }
  return util::appendLine(path_, historyRecordJson(record));
}

HistoryStore::LoadResult HistoryStore::load() const {
  LoadResult result;
  const util::Result<std::string> content = util::readFile(path_);
  if (!content.ok()) return result;  // absent file = empty history

  const std::vector<std::string> lines = util::split(content.value(), '\n');
  bool headerSeen = false;
  for (const std::string& line : lines) {
    if (util::trim(line).empty()) continue;
    std::string magic;
    if (util::jsonStringField(line, "magic", &magic)) {
      if (!headerSeen) {
        if (magic != kHistoryMagic) return result;  // foreign file: empty
        headerSeen = true;
        result.magicOk = true;
      }
      // Duplicate headers (two processes racing the first append) are
      // harmless; ignore without counting them as corruption.
      continue;
    }
    if (!headerSeen) return result;  // data before any magic: not ours
    HistoryRecord record;
    if (parseHistoryRecord(line, &record)) {
      result.records.push_back(std::move(record));
    } else {
      ++result.skippedLines;  // torn tail or foreign line — never fatal
    }
  }
  return result;
}

util::Result<std::size_t> HistoryStore::gc(std::size_t keepPerGroup) {
  const LoadResult loaded = load();
  // Newest-first pass marks the keepers; the rewrite preserves file order.
  std::map<std::string, std::size_t> kept;
  std::vector<bool> keep(loaded.records.size(), false);
  for (std::size_t i = loaded.records.size(); i-- > 0;) {
    std::size_t& count = kept[groupKey(loaded.records[i])];
    if (count < keepPerGroup) {
      keep[i] = true;
      ++count;
    }
  }
  util::JsonObjectBuilder header;
  header.add("magic", kHistoryMagic);
  std::string out = header.str() + "\n";
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    if (keep[i]) {
      out += historyRecordJson(loaded.records[i]);
      out += '\n';
    } else {
      ++dropped;
    }
  }
  const util::Status status = util::atomicWriteFile(path_, out);
  if (!status.isOk()) return status;
  return dropped;
}

std::string configuredHistoryPath() {
  if (const char* env = std::getenv("SCA_HISTORY");
      env != nullptr && *env != '\0') {
    const std::string value = env;
    if (value == "off" || value == "0") return "";
    return value;
  }
  return "bench_out/history/history.jsonl";
}

std::string currentEnvClass() {
  std::map<std::string, std::string> vars;
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    const std::string_view entry(*env);
    if (!util::startsWith(entry, "SCA_")) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view name = entry.substr(0, eq);
    if (excludedFromEnvClass(name)) continue;
    vars.emplace(name, entry.substr(eq + 1));
  }
  std::string out;
  for (const auto& [name, value] : vars) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += value;
  }
  return out;
}

util::Status appendRunHistory(HistoryStore& store,
                              const std::string& benchName,
                              std::size_t threads, bool complete,
                              double totalSeconds) {
  const MetricsSnapshot snapshot =
      MetricsRegistry::global().snapshot(Scope::kLifetime);

  HistoryRecord record;
  record.bench = benchName;
  record.complete = complete;
  record.gitSha = runGitSha();
  record.threads = threads;
  record.envClass = currentEnvClass();
  record.digest = util::toHex64(util::hash64(stableMetricsJson(snapshot)));
  record.totalSeconds = totalSeconds;
  record.unixTime = static_cast<long long>(std::time(nullptr));
  for (const auto& [name, value] : snapshot.gauges) {
    if (util::startsWith(name, kPhaseGaugePrefix)) {
      record.phases.emplace(name.substr(kPhaseGaugePrefix.size()), value);
    } else if (name == "rusage_max_rss_kb") {
      record.maxRssKb = static_cast<std::uint64_t>(value);
    } else if (name == "rusage_user_s") {
      record.userCpuSeconds = value;
    } else if (name == "rusage_sys_s") {
      record.sysCpuSeconds = value;
    }
  }
  record.counters = snapshot.counters;
  record.counters.insert(snapshot.runtimeCounters.begin(),
                         snapshot.runtimeCounters.end());
  return store.append(record);
}

RegressionReport checkRegressions(const std::vector<HistoryRecord>& records,
                                  const RegressionPolicy& policy) {
  RegressionReport report;
  std::map<std::string, std::vector<const HistoryRecord*>> groups;
  std::vector<std::string> groupOrder;
  for (const HistoryRecord& record : records) {
    if (!record.complete) continue;  // crashed runs baseline nothing
    std::vector<const HistoryRecord*>& group = groups[groupKey(record)];
    if (group.empty()) groupOrder.push_back(groupKey(record));
    group.push_back(&record);
  }

  for (const std::string& key : groupOrder) {
    const std::vector<const HistoryRecord*>& group = groups[key];
    if (group.size() < policy.minBaselineRuns + 1) {
      ++report.groupsSkipped;
      continue;
    }
    ++report.groupsChecked;
    const HistoryRecord& current = *group.back();
    const std::size_t baselineBegin =
        group.size() - 1 > policy.window ? group.size() - 1 - policy.window
                                         : 0;
    const std::vector<const HistoryRecord*> baseline(
        group.begin() + static_cast<std::ptrdiff_t>(baselineBegin),
        group.end() - 1);
    const std::string groupLabel =
        "threads=" + std::to_string(current.threads) +
        (current.envClass.empty() ? "" : " env=" + current.envClass);

    // Correctness first: the stable-metric digest of comparable runs must
    // not drift, no matter how fast the run was.
    if (policy.checkDigest && baseline.back()->digest != current.digest) {
      RegressionFinding finding;
      finding.bench = current.bench;
      finding.group = groupLabel;
      finding.kind = "digest";
      finding.detail = "stable-metric digest changed " +
                       baseline.back()->digest + " -> " + current.digest;
      report.findings.push_back(std::move(finding));
    }

    // Perf: every phase of the current run (plus total_s) against the
    // median of the baseline window.
    std::map<std::string, double> currentTimes = current.phases;
    currentTimes.emplace("total_s", current.totalSeconds);
    for (const auto& [phase, seconds] : currentTimes) {
      std::vector<double> history;
      for (const HistoryRecord* past : baseline) {
        if (phase == "total_s") {
          history.push_back(past->totalSeconds);
        } else if (const auto it = past->phases.find(phase);
                   it != past->phases.end()) {
          history.push_back(it->second);
        }
      }
      if (history.empty()) continue;  // new phase: nothing to compare
      const double base = median(std::move(history));
      if (base < policy.minPhaseSeconds) continue;  // sub-noise phase
      if (seconds > base * policy.factor &&
          seconds - base > policy.minDeltaSeconds) {
        RegressionFinding finding;
        finding.bench = current.bench;
        finding.group = groupLabel;
        finding.kind = "perf";
        finding.phase = phase;
        finding.baseline = base;
        finding.current = seconds;
        finding.detail = phase + " " + util::formatDouble(base, 3) + "s -> " +
                         util::formatDouble(seconds, 3) + "s (" +
                         util::formatDouble(seconds / base, 2) + "x, gate " +
                         util::formatDouble(policy.factor, 2) + "x)";
        report.findings.push_back(std::move(finding));
      }
    }

    // Memory: peak RSS against the baseline median, dual-gated like time.
    // At out-of-core scale the binding constraint is resident memory, not
    // wall clock — a run that got no slower but quietly rematerialized the
    // matrix must fail the same way a slowdown does.
    if (current.maxRssKb > 0) {
      std::vector<double> rssHistory;
      for (const HistoryRecord* past : baseline) {
        if (past->maxRssKb > 0) {
          rssHistory.push_back(static_cast<double>(past->maxRssKb));
        }
      }
      if (!rssHistory.empty()) {
        const double base = median(std::move(rssHistory));
        const double currentKb = static_cast<double>(current.maxRssKb);
        if (currentKb > base * policy.rssFactor &&
            currentKb - base > static_cast<double>(policy.minRssDeltaKb)) {
          RegressionFinding finding;
          finding.bench = current.bench;
          finding.group = groupLabel;
          finding.kind = "rss";
          finding.baseline = base;
          finding.current = currentKb;
          finding.detail =
              "max_rss_kb " + util::formatDouble(base, 0) + " -> " +
              util::formatDouble(currentKb, 0) + " (" +
              util::formatDouble(currentKb / base, 2) + "x, gate " +
              util::formatDouble(policy.rssFactor, 2) + "x)";
          report.findings.push_back(std::move(finding));
        }
      }
    }
  }
  return report;
}

}  // namespace sca::obs
