#include "serve/report.hpp"

#include <algorithm>
#include <map>

#include "obs/manifest.hpp"
#include "util/strings.hpp"

namespace sca::serve {
namespace {

std::uint64_t uintField(std::string_view record, std::string_view field) {
  long long value = 0;
  if (!util::jsonIntField(record, field, &value) || value < 0) return 0;
  return static_cast<std::uint64_t>(value);
}

long long intField(std::string_view record, std::string_view field) {
  long long value = 0;
  (void)util::jsonIntField(record, field, &value);
  return value;
}

double doubleField(std::string_view record, std::string_view field) {
  double value = 0.0;
  (void)util::jsonDoubleField(record, field, &value);
  return value;
}

/// Fixed-width left-padded cell for the SLO table.
std::string cell(std::string text, std::size_t width) {
  if (text.size() < width) {
    text.insert(0, width - text.size(), ' ');
  }
  return text;
}

}  // namespace

ServeReport ServeReport::fromLog(std::string_view logText) {
  ServeReport report;
  std::size_t begin = 0;
  while (begin < logText.size()) {
    std::size_t end = logText.find('\n', begin);
    if (end == std::string_view::npos) end = logText.size();
    const std::string_view line = logText.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;

    std::string component;
    std::string event;
    if (!util::jsonStringField(line, "component", &component) ||
        component != "serve" ||
        !util::jsonStringField(line, "event", &event) ||
        event != "request") {
      continue;
    }
    const std::string fields = obs::extractJsonObject(line, "fields");
    if (fields.empty()) continue;

    RequestRecord record;
    if (!util::jsonStringField(fields, "id", &record.id) ||
        !util::jsonStringField(fields, "op", &record.op) ||
        !util::jsonStringField(fields, "status", &record.status)) {
      continue;  // torn mid-record
    }
    (void)util::jsonStringField(line, "span", &record.span);
    record.chain = intField(fields, "chain");
    record.shard = intField(fields, "shard");
    record.simSeconds = doubleField(fields, "sim_s");
    record.queueWaitSeconds = doubleField(fields, "queue_wait_s");
    record.backoffSeconds = doubleField(fields, "backoff_s");
    record.attempts = intField(fields, "attempts");
    record.retries = intField(fields, "retries");
    record.deadlineStops = intField(fields, "deadline_stops");
    record.failovers = intField(fields, "failovers");
    record.hedges = intField(fields, "hedges");
    record.hedgeWins = intField(fields, "hedge_wins");
    record.replayedTurns = intField(fields, "replayed_turns");
    record.queueDepth = uintField(fields, "queue_depth");
    record.batch = uintField(fields, "batch");
    record.admitNs = uintField(fields, "admit_ns");
    record.startNs = uintField(fields, "start_ns");
    record.endNs = uintField(fields, "end_ns");
    report.requests_.push_back(std::move(record));
  }
  return report;
}

std::vector<const RequestRecord*> ServeReport::slowest(std::size_t n) const {
  std::vector<const RequestRecord*> out;
  out.reserve(requests_.size());
  for (const RequestRecord& record : requests_) out.push_back(&record);
  std::sort(out.begin(), out.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              if (a->simSeconds != b->simSeconds) {
                return a->simSeconds > b->simSeconds;
              }
              if (a->queueWaitSeconds != b->queueWaitSeconds) {
                return a->queueWaitSeconds > b->queueWaitSeconds;
              }
              return a->id < b->id;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<OpSlo> ServeReport::sloTable() const {
  std::map<std::string, OpSlo> byOp;
  for (const RequestRecord& record : requests_) {
    auto it = byOp.find(record.op);
    if (it == byOp.end()) {
      it = byOp.emplace(record.op, OpSlo{}).first;
      it->second.op = record.op;
    }
    OpSlo& row = it->second;
    ++row.requests;
    if (record.ok()) ++row.ok;
    row.latency.observe(record.simSeconds);
    row.queueWait.observe(record.queueWaitSeconds);
  }
  std::vector<OpSlo> out;
  out.reserve(byOp.size());
  for (auto& [op, row] : byOp) out.push_back(std::move(row));
  return out;
}

std::string ServeReport::summaryText(std::size_t slowestN) const {
  std::string out = "serve-report: " + std::to_string(requests_.size()) +
                    " request(s) reconstructed\n";
  if (requests_.empty()) return out;

  out += "\nslowest requests:\n";
  for (const RequestRecord* record : slowest(slowestN)) {
    out += "  " + record->id + "  op=" + record->op +
           " chain=" + std::to_string(record->chain) +
           " status=" + record->status +
           " shard=" + std::to_string(record->shard) +
           " sim_s=" + util::formatDouble(record->simSeconds, 3) +
           " queue_wait_s=" +
           util::formatDouble(record->queueWaitSeconds, 6) +
           " backoff_s=" + util::formatDouble(record->backoffSeconds, 3) +
           " retries=" + std::to_string(record->retries) +
           " failovers=" + std::to_string(record->failovers) +
           " replayed=" + std::to_string(record->replayedTurns);
    if (!record->span.empty() &&
        record->span != "0000000000000000") {
      out += " span=" + record->span;
    }
    out += '\n';
  }

  out += "\nslo table:\n";
  out += "  op         requests     ok  avail%    p50_s    p90_s    p99_s"
         "   p999_s    max_s\n";
  for (const OpSlo& row : sloTable()) {
    std::string line = "  " + row.op;
    if (line.size() < 12) line.append(12 - line.size(), ' ');
    line += cell(std::to_string(row.requests), 8);
    line += cell(std::to_string(row.ok), 7);
    line += cell(util::formatDouble(row.availabilityPct(), 2), 8);
    line += cell(util::formatDouble(row.latency.quantile(0.50), 3), 9);
    line += cell(util::formatDouble(row.latency.quantile(0.90), 3), 9);
    line += cell(util::formatDouble(row.latency.quantile(0.99), 3), 9);
    line += cell(util::formatDouble(row.latency.quantile(0.999), 3), 9);
    line += cell(util::formatDouble(row.latency.maxValue(), 3), 9);
    out += line + '\n';
  }
  return out;
}

}  // namespace sca::serve
