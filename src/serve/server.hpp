// Batch-synchronous JSONL attribution server over a sharded LLM fleet.
//
// `sca_cli serve` wraps this loop around stdin/stdout. The loop alternates
// two phases, and that alternation is the whole determinism story:
//
//   admission   read up to `arrivalBurst` lines. Invalid lines answer
//               immediately; `stats` requests answer inline (read-only
//               snapshot, no barrier); control lines (kill/slow/shutdown)
//               end the phase early (they are barriers); data requests
//               enter the bounded admission queue or — when it is full —
//               are SHED with an explicit "overloaded" response. Load is
//               never dropped silently and never buffered unboundedly.
//
//   processing  drain the queue in `batchSize` chunks. Each batch groups
//               requests by chain (first-appearance order), runs chains in
//               parallel (requests within a chain are a conversation:
//               sequential by nature), writes responses in request order,
//               and only then folds the recorded shard events into the
//               fleet — health moves between batches, never under them,
//               so the trajectory is identical at every SCA_THREADS.
//
// Deadlines: every data request carries a budget in SIMULATED seconds
// (deadline_s, default `defaultDeadlineSeconds`) which rides a
// llm::CallContext through retry backoff, injected slow-shard latency and
// failover. A request that runs out of budget answers "error" with code
// deadline_exceeded — degraded honestly, not hung.
//
// Request telemetry: every request also carries a llm::RequestTelemetry on
// its CallContext, filled in by the retry and fleet layers (attempts,
// retries, backoff, failovers, hedges, replays, serving shard). The server
// adds admission-side observations (queue wait, queue depth at admission)
// and folds them into per-run obs::QuantileSketch instances:
//
//   serve_latency_s       per-request simulated seconds (deterministic)
//   serve_queue_wait_s    wall seconds between admission and execution
//   serve_queue_depth     queue depth seen at each admission
//   serve_batch_size      requests per processing batch
//   serve_shed_rate_pct   per-admission-phase shed percentage
//
// All five merge into obs::SketchRegistry::global() at the end of run()
// (so they land in the manifest's "sketches" section), and each request's
// lifecycle is logged as a component=serve event=request record — inside
// the request's trace span, so SCA_LOG lines join SCA_TRACE output.
// Telemetry observes, it never participates: with `timingEcho` off (the
// default) response bytes are identical with telemetry on or off, across
// SCA_THREADS and chaos schedules. SCA_SERVE_TIMING=1 opts into a
// `"timing":{...}` object on each ok/error response; timing objects carry
// wall-clock fields and are explicitly NOT byte-stable.
//
// The in-band `{"op":"stats"}` request answers with a live snapshot:
//
//   {"id":"s1","status":"ok","op":"stats","queue_depth":N,
//    "queue_capacity":N,"requests":N,"ok":N,"errors":N,"shed":N,
//    "rejected":N,"invalid":N,"controls":N,"batches":N,
//    "availability_pct":99.88,           // "--" before any outcome
//    "latency":{"count":N,"p50":...,"p90":...,"p99":...,"p999":...},
//    "queue":{"count":N,"p50":...,...},  // queue depth at admission
//    "shards":[{"shard":0,"state":"closed",...},...]}
//
// Every field is deterministic for a given request stream (latency is
// simulated seconds; wall-clock sketches stay out), so streams containing
// stats probes replay byte-identically too.
//
// Shutdown is graceful in the batch-synchronous sense: the in-flight batch
// finishes (nothing is abandoned mid-conversation-turn), every request
// still queued answers "rejected", the shutdown is acked, and the final
// line is the drain record:
//
//   {"event":"drain","requests":N,"ok":N,"errors":N,"shed":N,
//    "rejected":N,"invalid":N,"controls":N,"batches":N,
//    "availability_pct":99.88,
//    "failovers":N,"hedges":N,"hedge_wins":N,"replayed_turns":N,
//    "ejections":N,"timeout_ejections":N,"probes":N,"recoveries":N,
//    "shards":[{"shard":0,"state":"closed",...},...]}
//
// EOF on the input behaves like shutdown with an empty queue: drain
// everything admitted, then write the drain record.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llm/sharded_client.hpp"
#include "obs/sketch.hpp"
#include "serve/protocol.hpp"

namespace sca::corpus {
struct Challenge;
}  // namespace sca::corpus

namespace sca::serve {

struct ServerOptions {
  std::size_t queueCapacity = 64;  // admission queue bound; beyond it: shed
  std::size_t batchSize = 16;      // requests per processing chunk
  std::size_t arrivalBurst = 16;   // lines read per admission phase
  /// Default per-request budget in simulated seconds. Sits above the
  /// worst-case healthy retry ladder (~19.4s of backoff), so a healthy
  /// request always fits. On a slowed shard every attempt hangs up at
  /// FleetPolicy::attemptTimeoutSeconds (20) — callers with generous
  /// deadlines ride the full ladder to a failover; callers on this default
  /// blow the budget after the first slow attempt and answer
  /// "deadline_exceeded". Both paths feed the consecutive-timeout ejector.
  long long defaultDeadlineSeconds = 25;
  /// Echo a per-request "timing" object on ok/error responses. Off by
  /// default: timing objects carry wall-clock fields, so enabling this
  /// surrenders response byte-stability (and nothing else).
  bool timingEcho = false;
  int year = 2017;
  llm::FleetOptions fleet;

  /// SCA_SERVE_QUEUE / SCA_SERVE_BATCH / SCA_SERVE_BURST /
  /// SCA_SERVE_DEADLINE_S / SCA_SERVE_TIMING over defaults; fleet from
  /// FleetOptions::fromEnv.
  [[nodiscard]] static ServerOptions fromEnv();
};

struct ServeStats {
  std::uint64_t requests = 0;  // data requests admitted or shed
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;    // failed after admission (incl. deadline)
  std::uint64_t shed = 0;      // refused at admission (queue full)
  std::uint64_t rejected = 0;  // queued but refused at shutdown
  std::uint64_t invalid = 0;   // unparseable lines
  std::uint64_t controls = 0;  // control + stats ops applied
  std::uint64_t batches = 0;

  /// Whether any request reached an outcome — the availability ratio's
  /// denominator. False means availabilityPct() has nothing to divide.
  [[nodiscard]] bool availabilityDefined() const noexcept {
    return ok + errors + shed + rejected > 0;
  }
  /// ok / (ok + errors + shed + rejected), in percent; 100 when idle (the
  /// guarded zero-denominator case — displays render it as "--" via
  /// availabilityDisplay). Shed and rejected requests count against
  /// availability: refusing work is degradation, even when it is the
  /// correct degradation.
  [[nodiscard]] double availabilityPct() const noexcept;
  /// availabilityPct formatted to 2 decimals, or "--" when undefined —
  /// never NaN, never a made-up 100%.
  [[nodiscard]] std::string availabilityDisplay() const;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Runs the loop until shutdown or EOF on `in`. One response line per
  /// request line, drain record last. Not reentrant.
  [[nodiscard]] ServeStats run(std::istream& in, std::ostream& out);

  /// The fleet, exposed so tests and the chaos bench can inspect health
  /// (or pre-degrade shards) around a run.
  [[nodiscard]] llm::ShardSet& fleet() noexcept { return fleet_; }
  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  /// The drain record written by the last run() ("" before that).
  [[nodiscard]] const std::string& drainRecord() const noexcept {
    return drainRecord_;
  }
  /// Per-run request-latency sketch (simulated seconds) — the live view
  /// the `stats` op reports and benches assert on.
  [[nodiscard]] const obs::QuantileSketch& latencySketch() const noexcept {
    return latencySketch_;
  }
  [[nodiscard]] const obs::QuantileSketch& queueWaitSketch() const noexcept {
    return queueWaitSketch_;
  }

 private:
  /// A queued data request plus what admission saw: when it arrived (wall
  /// ns, tracer epoch) and how deep the queue was in front of it.
  struct Admitted {
    Request request;
    std::uint64_t admitNs = 0;
    std::uint64_t depthAtAdmission = 0;
  };
  struct Outcome {
    bool ok = false;
    double simSeconds = 0.0;
    double queueWaitSeconds = 0.0;
    std::string code;  // "ok" or the status code name
    llm::RequestTelemetry telemetry;
  };

  void processBatch(std::ostream& out);
  void applyControl(const Request& request, std::ostream& out);
  [[nodiscard]] std::string buildDrainRecord() const;
  [[nodiscard]] std::string buildStatsResponse(std::string_view id) const;
  [[nodiscard]] std::string timingJson(const Outcome& outcome,
                                       const Admitted& admitted) const;
  void foldSketches();

  ServerOptions options_;
  llm::ShardSet fleet_;
  std::vector<const corpus::Challenge*> challenges_;
  std::deque<Admitted> queue_;
  std::map<long long, std::unique_ptr<llm::ShardedClient>> chains_;
  ServeStats stats_;
  std::string drainRecord_;
  obs::QuantileSketch latencySketch_;
  obs::QuantileSketch queueWaitSketch_;
  obs::QuantileSketch queueDepthSketch_;
  obs::QuantileSketch batchSizeSketch_;
  obs::QuantileSketch shedRateSketch_;
};

}  // namespace sca::serve
