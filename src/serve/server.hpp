// Batch-synchronous JSONL attribution server over a sharded LLM fleet.
//
// `sca_cli serve` wraps this loop around stdin/stdout. The loop alternates
// two phases, and that alternation is the whole determinism story:
//
//   admission   read up to `arrivalBurst` lines. Invalid lines answer
//               immediately; control lines (kill/slow/shutdown) end the
//               phase early (they are barriers); data requests enter the
//               bounded admission queue or — when it is full — are SHED
//               with an explicit "overloaded" response. Load is never
//               dropped silently and never buffered unboundedly.
//
//   processing  drain the queue in `batchSize` chunks. Each batch groups
//               requests by chain (first-appearance order), runs chains in
//               parallel (requests within a chain are a conversation:
//               sequential by nature), writes responses in request order,
//               and only then folds the recorded shard events into the
//               fleet — health moves between batches, never under them,
//               so the trajectory is identical at every SCA_THREADS.
//
// Deadlines: every data request carries a budget in SIMULATED seconds
// (deadline_s, default `defaultDeadlineSeconds`) which rides a
// llm::CallContext through retry backoff, injected slow-shard latency and
// failover. A request that runs out of budget answers "error" with code
// deadline_exceeded — degraded honestly, not hung.
//
// Shutdown is graceful in the batch-synchronous sense: the in-flight batch
// finishes (nothing is abandoned mid-conversation-turn), every request
// still queued answers "rejected", the shutdown is acked, and the final
// line is the drain record:
//
//   {"event":"drain","requests":N,"ok":N,"errors":N,"shed":N,
//    "rejected":N,"invalid":N,"controls":N,"batches":N,
//    "availability_pct":99.88,
//    "failovers":N,"hedges":N,"hedge_wins":N,"replayed_turns":N,
//    "ejections":N,"timeout_ejections":N,"probes":N,"recoveries":N,
//    "shards":[{"shard":0,"state":"closed",...},...]}
//
// EOF on the input behaves like shutdown with an empty queue: drain
// everything admitted, then write the drain record.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llm/sharded_client.hpp"
#include "serve/protocol.hpp"

namespace sca::corpus {
struct Challenge;
}  // namespace sca::corpus

namespace sca::serve {

struct ServerOptions {
  std::size_t queueCapacity = 64;  // admission queue bound; beyond it: shed
  std::size_t batchSize = 16;      // requests per processing chunk
  std::size_t arrivalBurst = 16;   // lines read per admission phase
  /// Default per-request budget in simulated seconds. Sits above the
  /// worst-case healthy retry ladder (~19.4s of backoff), so a healthy
  /// request always fits. On a slowed shard every attempt hangs up at
  /// FleetPolicy::attemptTimeoutSeconds (20) — callers with generous
  /// deadlines ride the full ladder to a failover; callers on this default
  /// blow the budget after the first slow attempt and answer
  /// "deadline_exceeded". Both paths feed the consecutive-timeout ejector.
  long long defaultDeadlineSeconds = 25;
  int year = 2017;
  llm::FleetOptions fleet;

  /// SCA_SERVE_QUEUE / SCA_SERVE_BATCH / SCA_SERVE_BURST /
  /// SCA_SERVE_DEADLINE_S over defaults; fleet from FleetOptions::fromEnv.
  [[nodiscard]] static ServerOptions fromEnv();
};

struct ServeStats {
  std::uint64_t requests = 0;  // data requests admitted or shed
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;    // failed after admission (incl. deadline)
  std::uint64_t shed = 0;      // refused at admission (queue full)
  std::uint64_t rejected = 0;  // queued but refused at shutdown
  std::uint64_t invalid = 0;   // unparseable lines
  std::uint64_t controls = 0;  // control ops applied
  std::uint64_t batches = 0;

  /// ok / (ok + errors + shed + rejected), in percent; 100 when idle.
  /// Shed and rejected requests count against availability: refusing work
  /// is degradation, even when it is the correct degradation.
  [[nodiscard]] double availabilityPct() const noexcept;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Runs the loop until shutdown or EOF on `in`. One response line per
  /// request line, drain record last. Not reentrant.
  [[nodiscard]] ServeStats run(std::istream& in, std::ostream& out);

  /// The fleet, exposed so tests and the chaos bench can inspect health
  /// (or pre-degrade shards) around a run.
  [[nodiscard]] llm::ShardSet& fleet() noexcept { return fleet_; }
  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  /// The drain record written by the last run() ("" before that).
  [[nodiscard]] const std::string& drainRecord() const noexcept {
    return drainRecord_;
  }

 private:
  struct Outcome {
    bool ok = false;
    double simSeconds = 0.0;
  };

  void processBatch(std::ostream& out);
  void applyControl(const Request& request, std::ostream& out);
  [[nodiscard]] std::string buildDrainRecord() const;

  ServerOptions options_;
  llm::ShardSet fleet_;
  std::vector<const corpus::Challenge*> challenges_;
  std::deque<Request> queue_;
  std::map<long long, std::unique_ptr<llm::ShardedClient>> chains_;
  ServeStats stats_;
  std::string drainRecord_;
};

}  // namespace sca::serve
