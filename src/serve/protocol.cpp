#include "serve/protocol.hpp"

#include "util/strings.hpp"

namespace sca::serve {
namespace {

Request invalid(std::string id, std::string why) {
  Request request;
  request.op = Op::kInvalid;
  request.id = std::move(id);
  request.error = std::move(why);
  return request;
}

}  // namespace

std::string_view opName(Op op) noexcept {
  switch (op) {
    case Op::kGenerate: return "generate";
    case Op::kTransform: return "transform";
    case Op::kStats: return "stats";
    case Op::kKillShard: return "kill_shard";
    case Op::kSlowShard: return "slow_shard";
    case Op::kShutdown: return "shutdown";
    case Op::kInvalid: return "invalid";
  }
  return "unknown";
}

bool isControl(Op op) noexcept {
  return op == Op::kKillShard || op == Op::kSlowShard || op == Op::kShutdown;
}

Request parseRequest(std::string_view line) {
  std::string id;
  (void)util::jsonStringField(line, "id", &id);  // best effort, for errors

  std::string op;
  if (!util::jsonStringField(line, "op", &op)) {
    return invalid(std::move(id), "missing \"op\"");
  }

  Request request;
  request.id = std::move(id);
  if (op == "generate") {
    request.op = Op::kGenerate;
  } else if (op == "transform") {
    request.op = Op::kTransform;
  } else if (op == "stats") {
    request.op = Op::kStats;
  } else if (op == "kill_shard") {
    request.op = Op::kKillShard;
  } else if (op == "slow_shard") {
    request.op = Op::kSlowShard;
  } else if (op == "shutdown") {
    request.op = Op::kShutdown;
  } else {
    return invalid(std::move(request.id), "unknown op \"" + op + "\"");
  }

  if (request.op == Op::kGenerate || request.op == Op::kTransform) {
    if (request.id.empty()) {
      return invalid("", "missing \"id\"");
    }
    // Presence and range are distinct failures: a silently-defaulted
    // negative chain or deadline would serve the WRONG conversation or an
    // unlimited budget — both worse than an honest invalid_argument.
    if (!util::jsonIntField(line, "chain", &request.chain)) {
      return invalid(std::move(request.id), "missing \"chain\"");
    }
    if (request.chain < 0 || request.chain >= kMaxChain) {
      return invalid(std::move(request.id), "\"chain\" out of range");
    }
    if (util::jsonIntField(line, "deadline_s", &request.deadlineSeconds) &&
        (request.deadlineSeconds < 0 ||
         request.deadlineSeconds > kMaxDeadlineSeconds)) {
      return invalid(std::move(request.id), "\"deadline_s\" out of range");
    }
  }
  if (request.op == Op::kGenerate) {
    if (!util::jsonIntField(line, "challenge", &request.challenge)) {
      return invalid(std::move(request.id), "missing \"challenge\"");
    }
    if (request.challenge < 0) {
      return invalid(std::move(request.id), "\"challenge\" out of range");
    }
  }
  if (request.op == Op::kTransform &&
      !util::jsonStringField(line, "source", &request.source)) {
    return invalid(std::move(request.id), "missing \"source\"");
  }
  if (request.op == Op::kKillShard || request.op == Op::kSlowShard) {
    if (!util::jsonIntField(line, "shard", &request.shard)) {
      return invalid(std::move(request.id), "missing \"shard\"");
    }
    if (request.shard < 0 || request.shard >= kMaxShard) {
      return invalid(std::move(request.id), "\"shard\" out of range");
    }
    long long slowed = 1;
    (void)util::jsonIntField(line, "slowed", &slowed);
    request.slowed = slowed != 0;
  }
  return request;
}

std::string okResponse(std::string_view id, std::string_view output,
                       int shard, double simSeconds) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "ok");
  out.addInt("shard", shard);
  out.addDouble("sim_s", simSeconds, 3);
  out.add("output", output);
  return out.str();
}

std::string errorResponse(std::string_view id, std::string_view code,
                          std::string_view message) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "error");
  out.add("code", code);
  out.add("error", message);
  return out.str();
}

std::string invalidResponse(std::string_view id, std::string_view reason) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "error");
  out.add("code", "invalid_argument");
  out.add("reason", reason);
  return out.str();
}

std::string overloadedResponse(std::string_view id) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "overloaded");
  out.add("error", "admission queue full");
  return out.str();
}

std::string rejectedResponse(std::string_view id) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "rejected");
  out.add("error", "server shutting down");
  return out.str();
}

std::string ackResponse(std::string_view id, Op op) {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "ack");
  out.add("op", opName(op));
  return out.str();
}

std::string appendTimingField(std::string response,
                              std::string_view timingJson) {
  if (response.empty() || response.back() != '}') return response;
  response.pop_back();
  response += ",\"timing\":";
  response += timingJson;
  response += '}';
  return response;
}

}  // namespace sca::serve
