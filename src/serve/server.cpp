#include "serve/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "corpus/challenges.hpp"
#include "llm/call_context.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sca::serve {
namespace {

// All serving telemetry is runtime-tagged: shed counts, queue depth and
// batch counts depend on arrival patterns and the chaos schedule, never on
// the stable output bytes.
struct ServeCounters {
  obs::Counter requests = make("serve_requests");
  obs::Counter ok = make("serve_ok");
  obs::Counter errors = make("serve_errors");
  obs::Counter shed = make("serve_shed");
  obs::Counter rejected = make("serve_rejected");
  obs::Counter invalid = make("serve_invalid");
  obs::Counter controls = make("serve_controls");
  obs::Counter batches = make("serve_batches");
  obs::Gauge queueDepth = obs::MetricsRegistry::global().gauge(
      "serve_queue_depth", obs::GaugeKind::kMax);
  obs::Histogram simSeconds = obs::MetricsRegistry::global().histogram(
      "serve_request_sim_s", {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0},
      obs::Stability::kRuntime);

  static obs::Counter make(const char* name) {
    return obs::MetricsRegistry::global().counter(name,
                                                  obs::Stability::kRuntime);
  }
  static ServeCounters& get() {
    static ServeCounters instance;
    return instance;
  }
};

long long envLong(const char* name, long long fallback, long long lo,
                  long long hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || parsed < lo || parsed > hi) return fallback;
  return parsed;
}

}  // namespace

ServerOptions ServerOptions::fromEnv() {
  ServerOptions options;
  options.queueCapacity = static_cast<std::size_t>(
      envLong("SCA_SERVE_QUEUE", 64, 1, 1 << 20));
  options.batchSize = static_cast<std::size_t>(
      envLong("SCA_SERVE_BATCH", 16, 1, 1 << 16));
  options.arrivalBurst = static_cast<std::size_t>(
      envLong("SCA_SERVE_BURST", 16, 1, 1 << 20));
  options.defaultDeadlineSeconds =
      envLong("SCA_SERVE_DEADLINE_S", 25, 0, 1 << 20);
  options.timingEcho = envLong("SCA_SERVE_TIMING", 0, 0, 1) != 0;
  options.fleet = llm::FleetOptions::fromEnv();
  options.year = options.fleet.year;
  return options;
}

double ServeStats::availabilityPct() const noexcept {
  const std::uint64_t denied = errors + shed + rejected;
  const std::uint64_t total = ok + denied;
  if (total == 0) return 100.0;
  return 100.0 * static_cast<double>(ok) / static_cast<double>(total);
}

std::string ServeStats::availabilityDisplay() const {
  if (!availabilityDefined()) return "--";
  return util::formatDouble(availabilityPct(), 2);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), fleet_(options_.fleet) {
  options_.queueCapacity = std::max<std::size_t>(1, options_.queueCapacity);
  options_.batchSize = std::max<std::size_t>(1, options_.batchSize);
  options_.arrivalBurst = std::max<std::size_t>(1, options_.arrivalBurst);
  challenges_ = corpus::challengesForYear(options_.year);
}

ServeStats Server::run(std::istream& in, std::ostream& out) {
  ServeCounters& counters = ServeCounters::get();
  bool shuttingDown = false;
  bool eof = false;

  while (!shuttingDown && !eof) {
    // --- admission phase -------------------------------------------------
    Request control;
    bool haveControl = false;
    std::string line;
    std::uint64_t phaseData = 0;
    std::uint64_t phaseShed = 0;
    for (std::size_t read = 0; read < options_.arrivalBurst; ++read) {
      if (!std::getline(in, line)) {
        eof = true;
        break;
      }
      if (line.empty()) continue;
      Request request = parseRequest(line);
      if (request.op == Op::kInvalid) {
        ++stats_.invalid;
        counters.invalid.add();
        out << invalidResponse(request.id, request.error) << '\n';
        continue;
      }
      if (request.op == Op::kStats) {
        // Read-only, answered inline: a barrier would drain the queue
        // first and report a tautological depth of zero. Everything in
        // the snapshot is deterministic for a given stream position.
        ++stats_.controls;
        counters.controls.add();
        out << buildStatsResponse(request.id) << '\n';
        continue;
      }
      if (isControl(request.op)) {
        // Barrier: everything admitted so far is served against the
        // pre-control fleet; the rest of the burst waits in the stream.
        control = std::move(request);
        haveControl = true;
        break;
      }
      ++stats_.requests;
      counters.requests.add();
      ++phaseData;
      if (queue_.size() >= options_.queueCapacity) {
        ++stats_.shed;
        counters.shed.add();
        ++phaseShed;
        out << overloadedResponse(request.id) << '\n';
        continue;
      }
      Admitted admitted;
      admitted.depthAtAdmission = queue_.size();
      admitted.admitNs = obs::Tracer::global().nowNs();
      admitted.request = std::move(request);
      queueDepthSketch_.observe(
          static_cast<double>(admitted.depthAtAdmission));
      queue_.push_back(std::move(admitted));
    }
    counters.queueDepth.recordMax(static_cast<double>(queue_.size()));
    if (phaseData > 0) {
      shedRateSketch_.observe(100.0 * static_cast<double>(phaseShed) /
                              static_cast<double>(phaseData));
    }

    if (haveControl && control.op == Op::kShutdown) {
      // Graceful drain: nothing is mid-batch at a phase boundary, so
      // "finish in-flight work" is already true; what is merely QUEUED is
      // refused explicitly rather than served into a closing window.
      for (const Admitted& admitted : queue_) {
        ++stats_.rejected;
        counters.rejected.add();
        out << rejectedResponse(admitted.request.id) << '\n';
      }
      queue_.clear();
      ++stats_.controls;
      counters.controls.add();
      out << ackResponse(control.id, control.op) << '\n';
      shuttingDown = true;
      break;
    }

    // --- processing phase ------------------------------------------------
    while (!queue_.empty()) processBatch(out);

    if (haveControl) applyControl(control, out);
  }

  drainRecord_ = buildDrainRecord();
  out << drainRecord_ << '\n';
  out.flush();
  foldSketches();
  obs::logEvent(obs::LogLevel::kInfo, "serve", "drain",
                [&](util::JsonObjectBuilder& fields) {
                  fields.addUint("ok", stats_.ok);
                  fields.addUint("errors", stats_.errors);
                  fields.addUint("shed", stats_.shed);
                  fields.addUint("rejected", stats_.rejected);
                  fields.add("availability_pct",
                             stats_.availabilityDisplay());
                });
  return stats_;
}

void Server::processBatch(std::ostream& out) {
  ServeCounters& counters = ServeCounters::get();
  const std::size_t n = std::min(options_.batchSize, queue_.size());
  std::vector<Admitted> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  batchSizeSketch_.observe(static_cast<double>(n));
  const std::uint64_t batchIndex = stats_.batches;
  // Serve-loop heartbeat: batch boundaries keep the flight ring moving even
  // when individual requests neither log nor span (e.g. all-shed batches).
  obs::flight::note(obs::flight::EventKind::kPhase, "serve_batch", batchIndex);

  // Group by chain in first-appearance order: chains run in parallel, a
  // chain's requests run sequentially (they are one conversation), and the
  // event fold below walks the same order — so health evolution is a pure
  // function of the request sequence, at any thread count.
  std::vector<long long> chainOrder;
  std::map<long long, std::vector<std::size_t>> byChain;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t>& members = byChain[batch[i].request.chain];
    if (members.empty()) chainOrder.push_back(batch[i].request.chain);
    members.push_back(i);
  }
  for (long long chain : chainOrder) {
    std::unique_ptr<llm::ShardedClient>& client = chains_[chain];
    if (client == nullptr) {
      client = std::make_unique<llm::ShardedClient>(
          fleet_, util::combine64(util::hash64("serve-chain"),
                                  static_cast<std::uint64_t>(chain)));
    }
  }

  // Each index is written by exactly one task (indices are partitioned by
  // chain), so the shared vectors follow the parallelMap discipline.
  std::vector<std::string> responses(n);
  std::vector<Outcome> outcomes(n);
  (void)runtime::parallelMap<int>(chainOrder.size(), [&](std::size_t ci) {
    llm::ShardedClient& client = *chains_[chainOrder[ci]];
    for (std::size_t index : byChain[chainOrder[ci]]) {
      const Request& request = batch[index].request;
      Outcome& outcome = outcomes[index];
      // The span wraps the whole request so the lifecycle log line below
      // carries its id — SCA_LOG records join SCA_TRACE spans (PR 5).
      obs::Span span("serve_request", "serve");
      const std::uint64_t startNs = obs::Tracer::global().nowNs();
      outcome.queueWaitSeconds =
          static_cast<double>(startNs - batch[index].admitNs) / 1e9;
      const long long budget = request.deadlineSeconds > 0
                                   ? request.deadlineSeconds
                                   : options_.defaultDeadlineSeconds;
      llm::CallContext context =
          budget > 0 ? llm::CallContext::withDeadline(
                           static_cast<double>(budget))
                     : llm::CallContext{};
      context.telemetry = &outcome.telemetry;
      util::Result<std::string> result = [&]() -> util::Result<std::string> {
        if (request.op == Op::kGenerate) {
          if (request.challenge >=
              static_cast<long long>(challenges_.size())) {
            return util::Status(util::StatusCode::kInvalidArgument,
                                "challenge index out of range");
          }
          return client.tryGenerate(
              *challenges_[static_cast<std::size_t>(request.challenge)],
              context);
        }
        return client.tryTransform(request.source, context);
      }();
      outcome.simSeconds = context.chargedSeconds;
      if (result.ok()) {
        outcome.ok = true;
        outcome.code = "ok";
        responses[index] = okResponse(request.id, result.value(),
                                      client.servingShard(),
                                      context.chargedSeconds);
      } else {
        outcome.code = util::statusCodeName(result.status().code());
        responses[index] = errorResponse(
            request.id, util::statusCodeName(result.status().code()),
            result.status().message());
      }
      if (options_.timingEcho) {
        responses[index] = appendTimingField(
            std::move(responses[index]), timingJson(outcome, batch[index]));
      }
      const std::uint64_t endNs = obs::Tracer::global().nowNs();
      obs::logEvent(
          obs::LogLevel::kInfo, "serve", "request",
          [&](util::JsonObjectBuilder& fields) {
            fields.add("id", request.id);
            fields.add("op", opName(request.op));
            fields.addInt("chain", request.chain);
            fields.add("status", outcome.code);
            fields.addInt("shard", outcome.telemetry.shard);
            fields.addDouble("sim_s", outcome.simSeconds, 3);
            fields.addDouble("queue_wait_s", outcome.queueWaitSeconds, 6);
            fields.addUint("queue_depth", batch[index].depthAtAdmission);
            fields.addUint("batch", batchIndex);
            fields.addInt("attempts", outcome.telemetry.attempts);
            fields.addInt("retries", outcome.telemetry.retries);
            fields.addDouble("backoff_s", outcome.telemetry.backoffSeconds,
                             3);
            fields.addInt("deadline_stops",
                          outcome.telemetry.deadlineStops);
            fields.addInt("failovers", outcome.telemetry.failovers);
            fields.addInt("hedges", outcome.telemetry.hedges);
            fields.addInt("hedge_wins", outcome.telemetry.hedgeWins);
            fields.addInt("replayed_turns",
                          outcome.telemetry.replayedTurns);
            fields.addUint("admit_ns", batch[index].admitNs);
            fields.addUint("start_ns", startNs);
            fields.addUint("end_ns", endNs);
          });
    }
    return 0;
  });

  for (std::size_t i = 0; i < n; ++i) {
    out << responses[i] << '\n';
    counters.simSeconds.observe(outcomes[i].simSeconds);
    latencySketch_.observe(outcomes[i].simSeconds);
    queueWaitSketch_.observe(outcomes[i].queueWaitSeconds);
    if (outcomes[i].ok) {
      ++stats_.ok;
      counters.ok.add();
    } else {
      ++stats_.errors;
      counters.errors.add();
    }
  }
  // Health moves here, between batches, in chain first-appearance order.
  for (long long chain : chainOrder) {
    fleet_.fold(chains_[chain]->takeEvents());
  }
  ++stats_.batches;
  counters.batches.add();
}

void Server::applyControl(const Request& request, std::ostream& out) {
  ServeCounters& counters = ServeCounters::get();
  if (request.op == Op::kKillShard) {
    fleet_.killShard(static_cast<int>(request.shard));
  } else if (request.op == Op::kSlowShard) {
    fleet_.slowShard(static_cast<int>(request.shard), request.slowed);
  }
  ++stats_.controls;
  counters.controls.add();
  out << ackResponse(request.id, request.op) << '\n';
}

std::string Server::timingJson(const Outcome& outcome,
                               const Admitted& admitted) const {
  util::JsonObjectBuilder timing;
  timing.addDouble("sim_s", outcome.simSeconds, 3);
  timing.addDouble("queue_wait_s", outcome.queueWaitSeconds, 6);
  timing.addUint("queue_depth", admitted.depthAtAdmission);
  timing.addInt("attempts", outcome.telemetry.attempts);
  timing.addInt("retries", outcome.telemetry.retries);
  timing.addDouble("backoff_s", outcome.telemetry.backoffSeconds, 3);
  timing.addInt("deadline_stops", outcome.telemetry.deadlineStops);
  timing.addInt("failovers", outcome.telemetry.failovers);
  timing.addInt("hedges", outcome.telemetry.hedges);
  timing.addInt("hedge_wins", outcome.telemetry.hedgeWins);
  timing.addInt("replayed_turns", outcome.telemetry.replayedTurns);
  timing.addInt("shard", outcome.telemetry.shard);
  return timing.str();
}

std::string Server::buildStatsResponse(std::string_view id) const {
  util::JsonObjectBuilder out;
  out.add("id", id);
  out.add("status", "ok");
  out.add("op", "stats");
  out.addUint("queue_depth", queue_.size());
  out.addUint("queue_capacity", options_.queueCapacity);
  out.addUint("requests", stats_.requests);
  out.addUint("ok", stats_.ok);
  out.addUint("errors", stats_.errors);
  out.addUint("shed", stats_.shed);
  out.addUint("rejected", stats_.rejected);
  out.addUint("invalid", stats_.invalid);
  out.addUint("controls", stats_.controls);
  out.addUint("batches", stats_.batches);
  if (stats_.availabilityDefined()) {
    out.addDouble("availability_pct", stats_.availabilityPct(), 2);
  } else {
    out.add("availability_pct", "--");
  }
  // Latency is simulated seconds and queue depth is a pure function of the
  // stream, so the snapshot stays byte-identical across replays; the
  // wall-clock sketches (queue wait) are deliberately absent.
  out.addRaw("latency", latencySketch_.percentilesJson());
  out.addRaw("queue", queueDepthSketch_.percentilesJson());
  out.addRaw("shards", fleet_.healthJson());
  return out.str();
}

void Server::foldSketches() {
  obs::SketchRegistry& registry = obs::SketchRegistry::global();
  registry.merge("serve_latency_s", latencySketch_);
  registry.merge("serve_queue_wait_s", queueWaitSketch_);
  registry.merge("serve_queue_depth", queueDepthSketch_);
  registry.merge("serve_batch_size", batchSizeSketch_);
  registry.merge("serve_shed_rate_pct", shedRateSketch_);
}

std::string Server::buildDrainRecord() const {
  llm::ShardedClient::Stats conversations;
  for (const auto& [chain, client] : chains_) {
    conversations.failovers += client->stats().failovers;
    conversations.hedges += client->stats().hedges;
    conversations.hedgeWins += client->stats().hedgeWins;
    conversations.replayedTurns += client->stats().replayedTurns;
  }
  const llm::ShardSet::FleetStats fleet = fleet_.stats();

  util::JsonObjectBuilder out;
  out.add("event", "drain");
  out.addUint("requests", stats_.requests);
  out.addUint("ok", stats_.ok);
  out.addUint("errors", stats_.errors);
  out.addUint("shed", stats_.shed);
  out.addUint("rejected", stats_.rejected);
  out.addUint("invalid", stats_.invalid);
  out.addUint("controls", stats_.controls);
  out.addUint("batches", stats_.batches);
  if (stats_.availabilityDefined()) {
    out.addDouble("availability_pct", stats_.availabilityPct(), 2);
  } else {
    out.add("availability_pct", "--");
  }
  out.addUint("failovers", conversations.failovers);
  out.addUint("hedges", conversations.hedges);
  out.addUint("hedge_wins", conversations.hedgeWins);
  out.addUint("replayed_turns", conversations.replayedTurns);
  out.addUint("ejections", fleet.ejections);
  out.addUint("timeout_ejections", fleet.timeoutEjections);
  out.addUint("probes", fleet.probes);
  out.addUint("recoveries", fleet.recoveries);
  out.addRaw("shards", fleet_.healthJson());
  return out.str();
}

}  // namespace sca::serve
