// serve-report: per-request lifecycle analytics over the structured log.
//
// The serve loop logs one component=serve event=request record per
// executed request (server.cpp), carrying the full RequestTelemetry plus
// admission-side observations and the trace-span join key. This module
// reconstructs those lifecycles from an SCA_LOG file after the fact —
// the offline complement of the in-band `stats` op:
//
//   * slowest-N requests with their span breakdown (queue wait, simulated
//     execution, backoff inside it, failovers/replays that caused it);
//   * a per-op SLO table: request count, availability, and latency
//     percentiles (p50/p90/p99/p999 simulated seconds) computed with the
//     same QuantileSketch the live server uses, so live and offline
//     percentiles agree bucket-for-bucket.
//
// `sca_cli serve-report <log>` is the CLI front; the parsing lives here so
// tests can drive it on synthetic logs. Lines that are not serve/request
// records (other components, drain events, torn lines) are skipped, never
// fatal: a report over a partial log is a partial report.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.hpp"

namespace sca::serve {

/// One reconstructed request lifecycle (field-for-field the event=request
/// log record).
struct RequestRecord {
  std::string id;
  std::string op;
  std::string status;  // "ok" or a status code name
  std::string span;    // 16-hex trace span id ("0"*16 when tracing off)
  long long chain = 0;
  long long shard = -1;
  double simSeconds = 0.0;
  double queueWaitSeconds = 0.0;
  double backoffSeconds = 0.0;
  long long attempts = 0;
  long long retries = 0;
  long long deadlineStops = 0;
  long long failovers = 0;
  long long hedges = 0;
  long long hedgeWins = 0;
  long long replayedTurns = 0;
  std::uint64_t queueDepth = 0;
  std::uint64_t batch = 0;
  std::uint64_t admitNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
};

/// One row of the per-op SLO table.
struct OpSlo {
  std::string op;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  obs::QuantileSketch latency;    // simulated seconds
  obs::QuantileSketch queueWait;  // wall seconds

  [[nodiscard]] bool availabilityDefined() const noexcept {
    return requests > 0;
  }
  [[nodiscard]] double availabilityPct() const noexcept {
    return requests == 0
               ? 100.0
               : 100.0 * static_cast<double>(ok) /
                     static_cast<double>(requests);
  }
};

class ServeReport {
 public:
  /// Scans one event-log text (JSONL) for serve/request records. Never
  /// fails: unrelated or torn lines are skipped.
  [[nodiscard]] static ServeReport fromLog(std::string_view logText);

  [[nodiscard]] const std::vector<RequestRecord>& requests() const noexcept {
    return requests_;
  }
  /// The n slowest requests by simulated seconds (ties broken by queue
  /// wait, then id — deterministic for a deterministic log).
  [[nodiscard]] std::vector<const RequestRecord*> slowest(
      std::size_t n) const;
  /// Per-op SLO rows, op-name sorted.
  [[nodiscard]] std::vector<OpSlo> sloTable() const;

  /// The human-readable report `sca_cli serve-report` prints: the
  /// reconstructed count, the slowest-N span breakdown, and the SLO table.
  [[nodiscard]] std::string summaryText(std::size_t slowestN) const;

 private:
  std::vector<RequestRecord> requests_;
};

}  // namespace sca::serve
