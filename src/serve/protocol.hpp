// JSONL serving protocol: the wire format of `sca_cli serve`.
//
// One request per input line, one response per output line, in request
// order — the contract a batch-synchronous loop can honour exactly. The
// scanners are util::jsonStringField / jsonIntField (the repo's torn-line-
// safe field extractors), not a general JSON parser: the schema is flat by
// design.
//
// Requests:
//
//   {"op":"generate","id":"r1","chain":0,"challenge":3,"deadline_s":25}
//   {"op":"transform","id":"r2","chain":0,"source":"...","deadline_s":25}
//   {"op":"stats","id":"s1"}
//   {"op":"kill_shard","id":"c1","shard":2}
//   {"op":"slow_shard","id":"c2","shard":1,"slowed":1}
//   {"op":"shutdown","id":"c3"}
//
//   chain        conversation id; requests with the same chain form one
//                conversation (served sequentially, in arrival order).
//                Validated: 0 <= chain < 2^32
//   challenge    index into the year's challenge catalogue (generate only;
//                validated non-negative, catalogue bound checked at serve
//                time)
//   source       input text (transform only)
//   deadline_s   per-request budget in SIMULATED seconds (integer; absent
//                or 0 means the server default). Validated:
//                0 <= deadline_s <= 2^20
//   shard        validated: 0 <= shard < 64 (the SCA_SHARDS ceiling)
//   slowed       1 to slow the shard, 0 to un-slow (default 1)
//
// Responses:
//
//   {"id":"r1","status":"ok","shard":0,"sim_s":1.125,"output":"..."}
//   {"id":"r2","status":"error","code":"timeout","error":"..."}
//   {"id":"r5","status":"error","code":"invalid_argument","reason":"..."}
//   {"id":"r3","status":"overloaded","error":"admission queue full"}
//   {"id":"r4","status":"rejected","error":"server shutting down"}
//   {"id":"c1","status":"ack","op":"kill_shard"}
//   {"id":"s1","status":"ok","op":"stats",...}   (server.hpp documents it)
//
// and, as the final line of every run, the drain record — the server's
// honest account of what degraded (serve/server.hpp documents it).
//
// With SCA_SERVE_TIMING=1 the server splices a `"timing":{...}` object
// into each ok/error response (appendTimingField below); the default is
// off, so response bytes stay chaos- and thread-count-identical.
//
// Control ops are barriers: the server finishes every request admitted
// before the control line, applies it, acks it, and only then reads on —
// so a chaos schedule expressed in the input stream is deterministic.
// `stats` is the exception: it is answered INLINE during admission (it is
// read-only, and draining the queue first would make its queue-depth
// snapshot a tautological zero), so it neither barriers nor counts toward
// the admission queue.
#pragma once

#include <string>
#include <string_view>

namespace sca::serve {

enum class Op {
  kGenerate,
  kTransform,
  kStats,
  kKillShard,
  kSlowShard,
  kShutdown,
  kInvalid,  // parse failure; `error` says why
};

// Field validation bounds (parseRequest rejects values outside them with
// a structured invalid_argument response instead of silently defaulting).
inline constexpr long long kMaxChain = 1LL << 32;
inline constexpr long long kMaxShard = 64;  // matches the SCA_SHARDS clamp
inline constexpr long long kMaxDeadlineSeconds = 1LL << 20;

[[nodiscard]] std::string_view opName(Op op) noexcept;
[[nodiscard]] bool isControl(Op op) noexcept;

struct Request {
  Op op = Op::kInvalid;
  std::string id;
  long long chain = 0;             // generate / transform
  long long challenge = 0;         // generate
  std::string source;              // transform
  long long deadlineSeconds = -1;  // <= 0: server default
  long long shard = 0;             // kill_shard / slow_shard
  bool slowed = true;              // slow_shard
  std::string error;               // kInvalid only
};

/// Parses one input line. Never fails hard: anything malformed comes back
/// as Op::kInvalid with `error` (and whatever `id` could be recovered, so
/// the error response still correlates).
[[nodiscard]] Request parseRequest(std::string_view line);

// Response builders — each returns one complete JSON line (no newline).
[[nodiscard]] std::string okResponse(std::string_view id,
                                     std::string_view output, int shard,
                                     double simSeconds);
[[nodiscard]] std::string errorResponse(std::string_view id,
                                        std::string_view code,
                                        std::string_view message);
/// The structured parse/validation failure: status "error", code
/// "invalid_argument", and a `reason` field saying which check failed.
[[nodiscard]] std::string invalidResponse(std::string_view id,
                                          std::string_view reason);
[[nodiscard]] std::string overloadedResponse(std::string_view id);
[[nodiscard]] std::string rejectedResponse(std::string_view id);
[[nodiscard]] std::string ackResponse(std::string_view id, Op op);

/// Splices `"timing":<timingJson>` into a complete response line (before
/// the closing brace). `timingJson` must be a raw JSON object.
[[nodiscard]] std::string appendTimingField(std::string response,
                                            std::string_view timingJson);

}  // namespace sca::serve
