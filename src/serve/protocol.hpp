// JSONL serving protocol: the wire format of `sca_cli serve`.
//
// One request per input line, one response per output line, in request
// order — the contract a batch-synchronous loop can honour exactly. The
// scanners are util::jsonStringField / jsonIntField (the repo's torn-line-
// safe field extractors), not a general JSON parser: the schema is flat by
// design.
//
// Requests:
//
//   {"op":"generate","id":"r1","chain":0,"challenge":3,"deadline_s":25}
//   {"op":"transform","id":"r2","chain":0,"source":"...","deadline_s":25}
//   {"op":"kill_shard","id":"c1","shard":2}
//   {"op":"slow_shard","id":"c2","shard":1,"slowed":1}
//   {"op":"shutdown","id":"c3"}
//
//   chain        conversation id; requests with the same chain form one
//                conversation (served sequentially, in arrival order)
//   challenge    index into the year's challenge catalogue (generate only)
//   source       input text (transform only)
//   deadline_s   per-request budget in SIMULATED seconds (integer; absent
//                or <= 0 means the server default)
//   slowed       1 to slow the shard, 0 to un-slow (default 1)
//
// Responses:
//
//   {"id":"r1","status":"ok","shard":0,"sim_s":1.125,"output":"..."}
//   {"id":"r2","status":"error","code":"timeout","error":"..."}
//   {"id":"r3","status":"overloaded","error":"admission queue full"}
//   {"id":"r4","status":"rejected","error":"server shutting down"}
//   {"id":"c1","status":"ack","op":"kill_shard"}
//
// and, as the final line of every run, the drain record — the server's
// honest account of what degraded (serve/server.hpp documents it).
//
// Control ops are barriers: the server finishes every request admitted
// before the control line, applies it, acks it, and only then reads on —
// so a chaos schedule expressed in the input stream is deterministic.
#pragma once

#include <string>
#include <string_view>

namespace sca::serve {

enum class Op {
  kGenerate,
  kTransform,
  kKillShard,
  kSlowShard,
  kShutdown,
  kInvalid,  // parse failure; `error` says why
};

[[nodiscard]] std::string_view opName(Op op) noexcept;
[[nodiscard]] bool isControl(Op op) noexcept;

struct Request {
  Op op = Op::kInvalid;
  std::string id;
  long long chain = 0;             // generate / transform
  long long challenge = 0;         // generate
  std::string source;              // transform
  long long deadlineSeconds = -1;  // <= 0: server default
  long long shard = 0;             // kill_shard / slow_shard
  bool slowed = true;              // slow_shard
  std::string error;               // kInvalid only
};

/// Parses one input line. Never fails hard: anything malformed comes back
/// as Op::kInvalid with `error` (and whatever `id` could be recovered, so
/// the error response still correlates).
[[nodiscard]] Request parseRequest(std::string_view line);

// Response builders — each returns one complete JSON line (no newline).
[[nodiscard]] std::string okResponse(std::string_view id,
                                     std::string_view output, int shard,
                                     double simSeconds);
[[nodiscard]] std::string errorResponse(std::string_view id,
                                        std::string_view code,
                                        std::string_view message);
[[nodiscard]] std::string overloadedResponse(std::string_view id);
[[nodiscard]] std::string rejectedResponse(std::string_view id);
[[nodiscard]] std::string ackResponse(std::string_view id, Op op);

}  // namespace sca::serve
