// Style application: materializes a StyleProfile onto an AST.
//
// applyStyle() is the single code path behind both corpus generation
// (challenge IR + author profile -> that author's solution text) and the
// synthetic LLM's transformation step (parsed code + archetype profile ->
// re-styled code). Structural dimensions are AST rewrites; layout
// dimensions ride on the returned RenderOptions.
#pragma once

#include <string>

#include "ast/ast.hpp"
#include "style/profile.hpp"
#include "util/rng.hpp"

namespace sca::style {

/// Applies every structural/lexical dimension of `profile` to a copy of
/// `unit` (the input is never mutated): decomposition, loop forms,
/// increments, compound assignment, ternaries, type widening/aliasing,
/// renaming, comments, includes and namespace usage.
[[nodiscard]] ast::TranslationUnit styleUnit(const ast::TranslationUnit& unit,
                                             const StyleProfile& profile,
                                             util::Rng& rng);

/// styleUnit + render: the full IR -> source-text pipeline.
[[nodiscard]] std::string applyStyle(const ast::TranslationUnit& unit,
                                     const StyleProfile& profile,
                                     util::Rng& rng);

}  // namespace sca::style
