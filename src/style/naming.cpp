#include "style/naming.hpp"

#include <algorithm>
#include <set>

#include "ast/transforms.hpp"
#include "ast/visit.hpp"
#include "lexer/token.hpp"
#include "util/strings.hpp"

namespace sca::style {
namespace {

/// word -> group index, built once.
const std::map<std::string, std::size_t>& groupIndex() {
  static const std::map<std::string, std::size_t> kIndex = [] {
    std::map<std::string, std::size_t> index;
    const auto& groups = synonymGroups();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const std::string& word : groups[g]) index[word] = g;
    }
    return index;
  }();
  return kIndex;
}

/// Long -> short forms; expansion uses the reverse direction.
const std::vector<std::pair<std::string, std::string>>& abbreviations() {
  static const std::vector<std::pair<std::string, std::string>> kAbbrev = {
      {"number", "num"},    {"count", "cnt"},    {"index", "idx"},
      {"result", "res"},    {"answer", "ans"},   {"value", "val"},
      {"temporary", "tmp"}, {"temp", "tmp"},     {"maximum", "max"},
      {"minimum", "min"},   {"distance", "dist"}, {"position", "pos"},
      {"current", "cur"},   {"previous", "prev"}, {"length", "len"},
      {"string", "str"},    {"vector", "vec"},   {"total", "tot"},
      {"solve", "solve"},   {"query", "q"},      {"cases", "cases"},
      {"average", "avg"},   {"difference", "diff"}, {"calculate", "calc"},
      {"frequency", "freq"}, {"element", "elem"},
  };
  return kAbbrev;
}

bool isLoopCounter(const std::string& name) {
  return name.size() == 1 && (name == "i" || name == "j" || name == "k" ||
                              name == "t" || name == "x" || name == "y");
}

char typeInitial(const ast::TypeRef& type) {
  if (type.isVector) return 'v';
  switch (type.base) {
    case ast::BaseType::Int: return 'n';
    case ast::BaseType::LongLong: return 'n';
    case ast::BaseType::Double: return 'd';
    case ast::BaseType::Bool: return 'b';
    case ast::BaseType::Char: return 'c';
    case ast::BaseType::String: return 's';
    default: return 'f';  // functions / void
  }
}

}  // namespace

const std::vector<std::vector<std::string>>& synonymGroups() {
  static const std::vector<std::vector<std::string>> kGroups = {
      {"num", "count", "total", "amount"},
      {"case", "test", "query"},
      {"result", "answer", "output", "solution"},
      {"max", "best", "top", "highest"},
      {"min", "lowest", "smallest"},
      {"time", "duration"},
      {"dist", "distance", "length", "range"},
      {"speed", "velocity", "rate"},
      {"pos", "position", "location", "place"},
      {"value", "val", "item"},
      {"cur", "current", "now"},
      {"prev", "previous", "last"},
      {"arr", "array", "list", "data"},
      {"tmp", "temp", "aux"},
      {"solve", "process", "handle", "compute", "run"},
      {"read", "input", "load"},
      {"write", "print", "show", "emit"},
      {"sum", "accum", "aggregate"},
      {"flag", "ok", "valid", "good"},
      {"size", "len", "width"},
      {"digit", "figure"},
      {"grid", "board", "matrix", "field"},
      {"row", "line"},
      {"col", "column"},
      {"horse", "rider"},
      {"page", "sheet"},
      {"word", "token"},
      {"target", "goal", "dest"},
  };
  return kGroups;
}

std::string synonymFor(const std::string& word, util::Rng& rng) {
  const auto it = groupIndex().find(word);
  if (it == groupIndex().end()) return word;
  const auto& group = synonymGroups()[it->second];
  // Bias toward keeping the original (stylistic habits are sticky).
  if (rng.bernoulli(0.45)) return word;
  return group[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(group.size()) - 1))];
}

std::string habitualSynonymFor(const std::string& word,
                               std::uint64_t namingSeed) {
  util::Rng rng(util::combine64(namingSeed, util::hash64(word)));
  return synonymFor(word, rng);
}

std::string shortenWord(const std::string& word) {
  for (const auto& [longForm, shortForm] : abbreviations()) {
    if (word == longForm) return shortForm;
  }
  if (word.size() > 5) return word.substr(0, 3);
  return word;
}

std::string expandWord(const std::string& word) {
  for (const auto& [longForm, shortForm] : abbreviations()) {
    if (word == shortForm) return longForm;
  }
  return word;
}

std::string applyConvention(const std::vector<std::string>& words,
                            NamingConvention convention,
                            const ast::TypeRef& type) {
  if (words.empty()) return "x";
  switch (convention) {
    case NamingConvention::SnakeCase: {
      return util::join(words, "_");
    }
    case NamingConvention::CamelCase: {
      std::string out = util::toLower(words[0]);
      for (std::size_t i = 1; i < words.size(); ++i) {
        out += util::capitalize(words[i]);
      }
      return out;
    }
    case NamingConvention::PascalCase: {
      std::string out;
      for (const std::string& word : words) out += util::capitalize(word);
      return out;
    }
    case NamingConvention::Abbreviated: {
      if (words.size() == 1) {
        const std::string shortened = shortenWord(words[0]);
        return shortened.size() > 4 ? shortened.substr(0, 4) : shortened;
      }
      std::string out;
      for (const std::string& word : words) {
        out += word.substr(0, words.size() > 2 ? 1 : 2);
      }
      return util::toLower(out);
    }
    case NamingConvention::HungarianLite: {
      std::string out(1, typeInitial(type));
      for (const std::string& word : words) out += util::capitalize(word);
      return out;
    }
  }
  return util::join(words, "_");
}

std::string restyleIdentifier(const std::string& name,
                              const StyleProfile& profile,
                              const ast::TypeRef& type, util::Rng& rng) {
  if (isLoopCounter(name)) return name;
  std::vector<std::string> words = util::splitIdentifier(name);
  if (words.empty()) return name;
  // Hungarian prefixes from a previous restyling must not accumulate.
  if (words.size() > 1 && words[0].size() == 1 &&
      std::string("ndbcsvf").find(words[0][0]) != std::string::npos) {
    words.erase(words.begin());
  }
  for (std::string& word : words) {
    word = profile.namingSeed != 0
               ? habitualSynonymFor(word, profile.namingSeed)
               : synonymFor(word, rng);
  }
  switch (profile.verbosity) {
    case Verbosity::Short:
      for (std::string& word : words) word = shortenWord(word);
      if (words.size() > 2) words.resize(2);
      break;
    case Verbosity::Long:
      for (std::string& word : words) word = expandWord(word);
      break;
    case Verbosity::Medium:
      break;
  }
  std::string restyled = applyConvention(words, profile.naming, type);
  if (restyled.empty() || lexer::isCppKeyword(restyled)) restyled += "_v";
  return restyled;
}

std::map<std::string, std::string> renameMapFor(
    const ast::TranslationUnit& unit, const StyleProfile& profile,
    util::Rng& rng) {
  const std::map<std::string, ast::TypeRef> types = ast::declaredTypes(unit);
  std::map<std::string, std::string> renames;
  std::set<std::string> taken;
  std::vector<std::string> names = ast::declaredNames(unit);
  for (const std::string& name : names) taken.insert(name);

  for (const std::string& name : names) {
    if (name == "main") continue;
    ast::TypeRef type{ast::BaseType::Int, false};
    const auto it = types.find(name);
    if (it != types.end()) {
      type = it->second;
    } else {
      // Function name: mark as function-ish for Hungarian prefixes.
      type = ast::TypeRef{ast::BaseType::Void, false};
    }
    std::string restyled = restyleIdentifier(name, profile, type, rng);
    if (restyled == name) continue;
    // Enforce uniqueness against both original and new names.
    std::string candidate = restyled;
    int suffix = 2;
    while (taken.count(candidate) > 0) {
      candidate = restyled + std::to_string(suffix++);
    }
    taken.insert(candidate);
    taken.erase(name);
    renames[name] = candidate;
  }
  return renames;
}

}  // namespace sca::style
