#include "style/profile.hpp"

namespace sca::style {

ast::RenderOptions StyleProfile::renderOptions() const {
  ast::RenderOptions opt;
  opt.indentWidth = indentWidth;
  opt.useTabs = useTabs;
  opt.allmanBraces = allmanBraces;
  opt.spaceAroundOps = spaceAroundOps;
  opt.spaceAfterComma = spaceAfterComma;
  opt.spaceAfterKeyword = spaceAfterKeyword;
  opt.ioStyle = ioStyle;
  opt.useEndl = useEndl;
  opt.braceSingleStatements = braceSingleStatements;
  opt.blankLinesBetweenFunctions = blankLinesBetweenFunctions;
  return opt;
}

std::string StyleProfile::describe() const {
  std::string out;
  switch (naming) {
    case NamingConvention::CamelCase: out += "camel"; break;
    case NamingConvention::SnakeCase: out += "snake"; break;
    case NamingConvention::PascalCase: out += "pascal"; break;
    case NamingConvention::Abbreviated: out += "abbrev"; break;
    case NamingConvention::HungarianLite: out += "hungarian"; break;
  }
  out += verbosity == Verbosity::Short
             ? "-s"
             : (verbosity == Verbosity::Long ? "-l" : "-m");
  out += useTabs ? "/tab" : "/" + std::to_string(indentWidth) + "sp";
  out += allmanBraces ? "/allman" : "/knr";
  out += ioStyle == ast::IoStyle::Stdio ? "/stdio" : "/cout";
  out += loops == LoopPreference::WhileLoops ? "/while" : "/for";
  if (extractSolve) out += "/solve";
  if (widenToLongLong) out += "/ll";
  if (useBitsHeader) out += "/bits";
  if (commentDensity > 0) out += "/cmt";
  return out;
}

double StyleProfile::distance(const StyleProfile& a, const StyleProfile& b) {
  int differing = 0;
  int total = 0;
  auto dim = [&](bool differs) {
    ++total;
    if (differs) ++differing;
  };
  dim(a.naming != b.naming);
  dim(a.verbosity != b.verbosity);
  dim(a.indentWidth != b.indentWidth || a.useTabs != b.useTabs);
  dim(a.allmanBraces != b.allmanBraces);
  dim(a.spaceAroundOps != b.spaceAroundOps);
  dim(a.spaceAfterComma != b.spaceAfterComma);
  dim(a.spaceAfterKeyword != b.spaceAfterKeyword);
  dim(a.braceSingleStatements != b.braceSingleStatements);
  dim(a.ioStyle != b.ioStyle);
  dim(a.useEndl != b.useEndl);
  dim(a.loops != b.loops);
  dim(a.increment != b.increment);
  dim(a.extractSolve != b.extractSolve);
  dim(a.compoundAssign != b.compoundAssign);
  dim(a.useTernary != b.useTernary);
  dim(a.widenToLongLong != b.widenToLongLong);
  dim(a.aliasLongLong != b.aliasLongLong);
  dim(a.usingNamespaceStd != b.usingNamespaceStd);
  dim(a.useBitsHeader != b.useBitsHeader);
  dim((a.commentDensity > 0) != (b.commentDensity > 0));
  return total == 0 ? 0.0
                    : static_cast<double>(differing) / static_cast<double>(total);
}

StyleProfile sampleProfile(util::Rng& rng) {
  StyleProfile p;
  const int naming = static_cast<int>(rng.uniformInt(0, 9));
  // Camel and snake dominate real corpora; the exotic conventions are rare.
  if (naming < 4) p.naming = NamingConvention::CamelCase;
  else if (naming < 7) p.naming = NamingConvention::SnakeCase;
  else if (naming < 8) p.naming = NamingConvention::PascalCase;
  else if (naming < 9) p.naming = NamingConvention::Abbreviated;
  else p.naming = NamingConvention::HungarianLite;

  const int verbosity = static_cast<int>(rng.uniformInt(0, 5));
  p.verbosity = verbosity < 2 ? Verbosity::Short
                              : (verbosity < 5 ? Verbosity::Medium
                                               : Verbosity::Long);
  if (p.naming == NamingConvention::HungarianLite &&
      p.verbosity == Verbosity::Short) {
    p.verbosity = Verbosity::Medium;  // hungarian prefixes need words
  }
  if (p.naming == NamingConvention::Abbreviated) p.verbosity = Verbosity::Short;

  const int indent = static_cast<int>(rng.uniformInt(0, 9));
  if (indent < 4) p.indentWidth = 4;
  else if (indent < 7) p.indentWidth = 2;
  else if (indent < 8) p.indentWidth = 8;
  else p.useTabs = true;

  p.allmanBraces = rng.bernoulli(0.3);
  p.spaceAroundOps = rng.bernoulli(0.75);
  p.spaceAfterComma = rng.bernoulli(0.8);
  p.spaceAfterKeyword = rng.bernoulli(0.7);
  p.braceSingleStatements = rng.bernoulli(0.7);
  p.blankLinesBetweenFunctions = rng.bernoulli(0.85) ? 1 : 2;

  p.ioStyle = rng.bernoulli(0.3) ? ast::IoStyle::Stdio : ast::IoStyle::Iostream;
  p.useEndl = rng.bernoulli(0.4);

  p.loops = rng.bernoulli(0.2) ? LoopPreference::WhileLoops
                               : LoopPreference::ForLoops;
  p.increment = rng.bernoulli(0.35) ? ast::IncrementStyle::PreIncrement
                                    : ast::IncrementStyle::PostIncrement;
  p.extractSolve = rng.bernoulli(0.35);
  p.compoundAssign = rng.bernoulli(0.75);
  p.useTernary = rng.bernoulli(0.25);

  p.widenToLongLong = rng.bernoulli(0.3);
  p.aliasLongLong = p.widenToLongLong && rng.bernoulli(0.5);
  p.aliasWithTypedef = rng.bernoulli(0.7);
  p.usingNamespaceStd = rng.bernoulli(0.85);
  p.useBitsHeader = rng.bernoulli(0.35);
  if (p.useBitsHeader) p.ioStyle = ast::IoStyle::Iostream;

  p.commentDensity = rng.bernoulli(0.35) ? rng.uniformReal(0.05, 0.3) : 0.0;
  p.blockComments = rng.bernoulli(0.25);
  p.fileHeaderComment = rng.bernoulli(0.15);
  return p;
}

}  // namespace sca::style
