#include "style/apply.hpp"

#include "ast/render.hpp"
#include "ast/transforms.hpp"
#include "ast/visit.hpp"
#include "style/naming.hpp"

namespace sca::style {
namespace {

/// Comment text candidates keyed by the statement kind they precede.
std::string commentFor(const ast::Stmt& stmt, util::Rng& rng) {
  static const std::vector<std::string> kReadComments = {
      "read input", "read the values", "get the input", "parse input",
  };
  static const std::vector<std::string> kWriteComments = {
      "print the result", "output the answer", "emit result",
      "write the output",
  };
  static const std::vector<std::string> kLoopComments = {
      "process each case", "iterate over the input", "main loop",
      "loop over all items",
  };
  static const std::vector<std::string> kDeclComments = {
      "initialize variables", "declare state", "set up",
  };
  static const std::vector<std::string> kGenericComments = {
      "compute", "update the state", "handle this case",
  };
  const std::string_view kind = ast::stmtKindName(stmt);
  const std::vector<std::string>* pool = &kGenericComments;
  if (kind == "read") pool = &kReadComments;
  else if (kind == "write") pool = &kWriteComments;
  else if (kind == "for" || kind == "while" || kind == "do") pool = &kLoopComments;
  else if (kind == "decl") pool = &kDeclComments;
  return rng.choice(*pool);
}

void insertComments(ast::TranslationUnit& unit, const StyleProfile& profile,
                    util::Rng& rng) {
  if (profile.commentDensity <= 0.0) return;
  ast::Arena& arena = unit.arena;
  auto decorate = [&](std::vector<ast::StmtId>& stmts) {
    std::vector<ast::StmtId> out;
    out.reserve(stmts.size());
    for (const ast::StmtId stmt : stmts) {
      if (stmt && !arena[stmt].is<ast::CommentStmt>() &&
          rng.bernoulli(profile.commentDensity)) {
        // commentFor reads the node before the factory call appends.
        const std::string text = commentFor(arena[stmt], rng);
        out.push_back(arena.commentStmt(text, profile.blockComments));
      }
      out.push_back(stmt);
    }
    stmts = std::move(out);
  };
  for (ast::Function& fn : unit.functions) decorate(fn.body.stmts);
}

std::string headerCommentFor(util::Rng& rng) {
  static const std::vector<std::string> kHeaders = {
      "Solution", "Code Jam solution", "Competitive programming solution",
      "Solution to the problem", "My solution",
  };
  return rng.choice(kHeaders);
}

}  // namespace

ast::TranslationUnit styleUnit(const ast::TranslationUnit& unit,
                               const StyleProfile& profile, util::Rng& rng) {
  ast::TranslationUnit styled = ast::deepCopy(unit);

  // Comments are regenerated under the new style, never carried over.
  ast::stripComments(styled);

  // Structure.
  if (profile.extractSolve) {
    ast::extractSolveFunction(styled, "solve_case");
  } else {
    ast::inlineHelperFunctions(styled);
  }
  if (profile.loops == LoopPreference::WhileLoops) {
    ast::convertForToWhile(styled);
  } else {
    // Rebuild counting for-loops a previous (re)styling turned into
    // whiles; without the inverse, chained transformations would ratchet
    // every program into while-form.
    ast::convertWhileToCountingFor(styled);
  }
  ast::setIncrementStyle(styled, profile.increment);
  ast::preferCompoundAssign(styled, profile.compoundAssign);
  ast::preferTernary(styled, profile.useTernary);

  // Types. Aliases are a habit of the target style, never inherited: a
  // restyler that does not use "typedef long long ll" spells the type out.
  if (!profile.aliasLongLong) styled.aliases.clear();
  if (profile.widenToLongLong) {
    ast::widenIntToLongLong(styled);
    if (profile.aliasLongLong) {
      ast::aliasLongLong(styled, profile.llAliasName, profile.aliasWithTypedef);
    }
  }

  // Naming.
  util::Rng namingRng = rng.derive("naming");
  const auto renames = renameMapFor(styled, profile, namingRng);
  ast::renameIdentifiers(styled, renames);

  // Comments.
  util::Rng commentRng = rng.derive("comments");
  insertComments(styled, profile, commentRng);
  if (profile.fileHeaderComment) {
    styled.headerComment = headerCommentFor(commentRng);
  }

  // Headers & namespace. bits/stdc++.h is likewise a habit, not a fact
  // about the program: drop it before normalization (which would keep it).
  styled.usingNamespaceStd = profile.usingNamespaceStd;
  if (!profile.useBitsHeader) {
    std::erase(styled.includes, "bits/stdc++.h");
  }
  ast::normalizeIncludes(styled, profile.ioStyle);
  if (profile.useBitsHeader) styled.includes = {"bits/stdc++.h"};

  return styled;
}

std::string applyStyle(const ast::TranslationUnit& unit,
                       const StyleProfile& profile, util::Rng& rng) {
  const ast::TranslationUnit styled = styleUnit(unit, profile, rng);
  return ast::render(styled, profile.renderOptions());
}

}  // namespace sca::style
