// The fixed 12-style repertoire of the synthetic LLM.
//
// It lives in the style module (not llm) because the corpus builder also
// needs it: an LLM trained on human code emits styles it has seen, so a
// realistic author population contains authors whose styles coincide with
// the model's repertoire. corpus/authors.cpp plants one such "twin" per
// archetype into large populations — this is what makes the oracle's
// predicted labels for transformed code stable (paper Tables V-VII, where
// single author labels like A49 absorb most of the transformed mass).
#pragma once

#include <vector>

#include "style/profile.hpp"

namespace sca::style {

/// The paper's observed ceiling on distinct ChatGPT styles (§VI-F).
inline constexpr std::size_t kArchetypeCount = 12;

/// The fixed 12-profile archetype pool (deterministic, year-independent).
[[nodiscard]] const std::vector<StyleProfile>& archetypePool();

/// Distance from `profile` to its nearest archetype, and that archetype's
/// index. Used by the LLM's familiarity check and by the corpus builder's
/// transform-author selection.
struct NearestArchetype {
  std::size_t index = 0;
  double distance = 1.0;
};
[[nodiscard]] NearestArchetype nearestArchetype(const StyleProfile& profile);

/// The LLM "accent": systematic habits shared by EVERY archetype — tidy
/// 4-space indentation, no tabs, spaced operators/commas/keywords,
/// descriptive names. Real ChatGPT output exhibits exactly this uniformity
/// (see the paper's Figures 4-5), and it is what makes the binary
/// ChatGPT-vs-human classifier of Table X work: individual archetypes look
/// like individual humans, but the accent marks the population. Applied to
/// every pool entry and re-applied after mutation.
void applyLlmAccent(StyleProfile& profile);

}  // namespace sca::style
