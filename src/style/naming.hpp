// Identifier styling: synonym lexicon, verbosity adjustment and naming
// conventions.
//
// The same engine renames identifiers when the corpus styler materializes
// an author's style on a challenge IR and when the synthetic LLM
// "transforms" code (ChatGPT's most visible edit in the paper's Figures
// 4-5 is exactly this: nCase -> numCase -> case_number ...).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "style/profile.hpp"
#include "util/rng.hpp"

namespace sca::style {

/// Synonym groups over lowercase words, e.g. {num, count, total} or
/// {result, answer, output}. Stable, order-deterministic.
[[nodiscard]] const std::vector<std::vector<std::string>>& synonymGroups();

/// Returns a synonym for `word` drawn from its group (possibly `word`
/// itself); words outside every group are returned unchanged.
[[nodiscard]] std::string synonymFor(const std::string& word, util::Rng& rng);

/// Deterministic synonym habit: the same (namingSeed, word) always maps to
/// the same synonym. Models an author's persistent vocabulary.
[[nodiscard]] std::string habitualSynonymFor(const std::string& word,
                                             std::uint64_t namingSeed);

/// Shortens a word ("number" -> "num" -> "n") or expands it
/// ("cnt" -> "count"); unknown words pass through (shorten falls back to a
/// 3-letter prefix for long words).
[[nodiscard]] std::string shortenWord(const std::string& word);
[[nodiscard]] std::string expandWord(const std::string& word);

/// Joins lowercase words under a convention. Hungarian needs the declared
/// type for its prefix.
[[nodiscard]] std::string applyConvention(const std::vector<std::string>& words,
                                          NamingConvention convention,
                                          const ast::TypeRef& type);

/// Restyles one identifier end-to-end: split -> synonyms -> verbosity ->
/// convention. Single-letter loop counters (i, j, k, t) pass through.
[[nodiscard]] std::string restyleIdentifier(const std::string& name,
                                            const StyleProfile& profile,
                                            const ast::TypeRef& type,
                                            util::Rng& rng);

/// Builds a whole-unit rename map for `profile` (declared variables,
/// parameters and helper functions; never "main"). Guarantees the new
/// names are unique and collision-free against unrenamed names.
[[nodiscard]] std::map<std::string, std::string> renameMapFor(
    const ast::TranslationUnit& unit, const StyleProfile& profile,
    util::Rng& rng);

}  // namespace sca::style
