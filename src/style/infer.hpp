// Style inference: recovers an approximate StyleProfile from source code.
//
// The synthetic LLM uses this to decide how "familiar" an input program
// looks (paper §VI-A/Table IV: transforming code that is already in one of
// ChatGPT's own styles drifts far less than transforming out-of-
// distribution human code). It is also a handy diagnostic: the
// style_inspector example prints the inferred profile of any file.
#pragma once

#include <string>

#include "ast/ast.hpp"
#include "lexer/layout.hpp"
#include "style/profile.hpp"

namespace sca::style {

/// Infers profile dimensions from a parsed unit plus raw-text layout
/// metrics. Unobservable dimensions keep their defaults.
[[nodiscard]] StyleProfile inferProfile(const ast::TranslationUnit& unit,
                                        const lexer::LayoutMetrics& layout,
                                        const std::string& source);

/// Convenience wrapper: parse + layout + infer.
[[nodiscard]] StyleProfile inferProfileFromSource(const std::string& source);

/// Randomly perturbs a profile: each dimension re-rolls with probability
/// `rate`. Models the residual nondeterminism of an LLM that was asked for
/// "the same style again".
[[nodiscard]] StyleProfile mutateProfile(const StyleProfile& profile,
                                         util::Rng& rng, double rate);

}  // namespace sca::style
