// StyleProfile: the complete coding-style fingerprint of one author (or of
// one synthetic-LLM archetype).
//
// Every dimension here is observable by at least one attribution feature
// (lexical, layout or syntactic), which is precisely what makes the
// authorship experiments meaningful: styles differ -> features differ ->
// the classifier can attribute.
#pragma once

#include <cstdint>
#include <string>

#include "ast/render.hpp"
#include "ast/transforms.hpp"
#include "util/rng.hpp"

namespace sca::style {

enum class NamingConvention {
  CamelCase,     // numCases
  SnakeCase,     // num_cases
  PascalCase,    // NumCases
  Abbreviated,   // nc / ncas (compressed lowercase)
  HungarianLite, // nNumCases / dMaxTime (type-initial prefix)
};

enum class Verbosity { Short, Medium, Long };

enum class LoopPreference { ForLoops, WhileLoops };

struct StyleProfile {
  // Lexical.
  NamingConvention naming = NamingConvention::CamelCase;
  Verbosity verbosity = Verbosity::Medium;

  // Layout.
  int indentWidth = 4;            // 2, 4 or 8
  bool useTabs = false;
  bool allmanBraces = false;
  bool spaceAroundOps = true;
  bool spaceAfterComma = true;
  bool spaceAfterKeyword = true;
  bool braceSingleStatements = true;
  int blankLinesBetweenFunctions = 1;

  // IO.
  ast::IoStyle ioStyle = ast::IoStyle::Iostream;
  bool useEndl = false;

  // Structure.
  LoopPreference loops = LoopPreference::ForLoops;
  ast::IncrementStyle increment = ast::IncrementStyle::PostIncrement;
  bool extractSolve = false;      // helper-function decomposition
  bool compoundAssign = true;     // x += 1 vs x = x + 1
  bool useTernary = false;

  // Types / headers.
  bool widenToLongLong = false;
  bool aliasLongLong = false;     // typedef/using ll
  bool aliasWithTypedef = true;   // typedef vs using
  std::string llAliasName = "ll";
  bool usingNamespaceStd = true;
  bool useBitsHeader = false;     // #include <bits/stdc++.h>

  // Comments.
  double commentDensity = 0.0;    // probability of a comment per stmt site
  bool blockComments = false;
  bool fileHeaderComment = false;

  // Word habits. A non-zero seed makes synonym choice a persistent function
  // of the word ("this author always writes cnt, never count"), which is
  // the cross-problem lexical signal stylometry relies on. Zero means the
  // choice is drawn fresh from the styling RNG on every application — the
  // behaviour of an LLM asked to rewrite code repeatedly.
  std::uint64_t namingSeed = 0;

  /// Layout/IO dimensions as renderer options.
  [[nodiscard]] ast::RenderOptions renderOptions() const;

  /// Compact one-line description ("camel/4sp/knr/cout/for/..."), used in
  /// logs and bench output.
  [[nodiscard]] std::string describe() const;

  /// Fraction of dimensions on which two profiles differ (0 = identical,
  /// 1 = maximally different). Used by style-drift analyses (Fig. 2 bench).
  [[nodiscard]] static double distance(const StyleProfile& a,
                                       const StyleProfile& b);
};

/// Samples a random but internally consistent profile (e.g. Hungarian
/// naming implies medium+ verbosity; bits/stdc++.h implies iostream).
[[nodiscard]] StyleProfile sampleProfile(util::Rng& rng);

}  // namespace sca::style
