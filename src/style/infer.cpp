#include "style/infer.hpp"

#include <cctype>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "util/strings.hpp"

namespace sca::style {
namespace {

NamingConvention classifyName(const std::string& name) {
  const bool hasUnderscore = name.find('_') != std::string::npos;
  const bool startsUpper =
      !name.empty() && std::isupper(static_cast<unsigned char>(name[0])) != 0;
  bool hasInnerUpper = false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (std::isupper(static_cast<unsigned char>(name[i])) != 0) {
      hasInnerUpper = true;
    }
  }
  if (hasUnderscore) return NamingConvention::SnakeCase;
  if (startsUpper) return NamingConvention::PascalCase;
  if (hasInnerUpper) return NamingConvention::CamelCase;
  return NamingConvention::Abbreviated;  // single lowercase word
}

}  // namespace

StyleProfile inferProfile(const ast::TranslationUnit& unit,
                          const lexer::LayoutMetrics& layout,
                          const std::string& source) {
  StyleProfile p;

  // Layout dimensions straight from the metrics.
  if (layout.tabIndentRatio() > 0.5) {
    p.useTabs = true;
  } else if (layout.indentWidth2 >= layout.indentWidth4 &&
             layout.indentWidth2 >= layout.indentWidth8) {
    p.indentWidth = 2;
  } else if (layout.indentWidth8 > layout.indentWidth4) {
    p.indentWidth = 8;
  } else {
    p.indentWidth = 4;
  }
  p.allmanBraces = layout.allmanBraceRatio() > 0.5;
  p.spaceAroundOps = layout.spacedOpRatio() > 0.5;
  p.spaceAfterComma = layout.spaceAfterCommaRatio() > 0.5;
  p.spaceAfterKeyword = layout.spaceAfterKeywordRatio() > 0.5;

  // IO from the raw text (the parsed ReadStmt/WriteStmt are IO-agnostic).
  std::size_t stdioHits = 0;
  std::size_t iostreamHits = 0;
  for (const std::string_view needle : {"printf", "scanf"}) {
    std::size_t pos = 0;
    while ((pos = source.find(needle, pos)) != std::string::npos) {
      ++stdioHits;
      pos += needle.size();
    }
  }
  for (const std::string_view needle : {"cout", "cin"}) {
    std::size_t pos = 0;
    while ((pos = source.find(needle, pos)) != std::string::npos) {
      ++iostreamHits;
      pos += needle.size();
    }
  }
  p.ioStyle =
      stdioHits > iostreamHits ? ast::IoStyle::Stdio : ast::IoStyle::Iostream;
  p.useEndl = source.find("endl") != std::string::npos;

  // Naming: majority vote over declared names (loop counters excluded).
  std::size_t camel = 0, snake = 0, pascal = 0, abbrev = 0, hungarian = 0;
  std::size_t shortNames = 0, longNames = 0, totalNames = 0;
  for (const std::string& name : ast::declaredNames(unit)) {
    if (name.size() <= 1 || name == "main") continue;
    ++totalNames;
    if (name.size() <= 4) ++shortNames;
    if (name.size() >= 10) ++longNames;
    // Hungarian-lite heuristic: type-letter prefix + PascalCase tail.
    if (name.size() >= 3 &&
        std::string("ndbcsvf").find(name[0]) != std::string::npos &&
        std::isupper(static_cast<unsigned char>(name[1])) != 0) {
      ++hungarian;
      continue;
    }
    switch (classifyName(name)) {
      case NamingConvention::SnakeCase: ++snake; break;
      case NamingConvention::PascalCase: ++pascal; break;
      case NamingConvention::CamelCase: ++camel; break;
      default: ++abbrev; break;
    }
  }
  std::size_t best = camel;
  p.naming = NamingConvention::CamelCase;
  if (snake > best) { best = snake; p.naming = NamingConvention::SnakeCase; }
  if (pascal > best) { best = pascal; p.naming = NamingConvention::PascalCase; }
  if (abbrev > best) { best = abbrev; p.naming = NamingConvention::Abbreviated; }
  if (hungarian > best) { p.naming = NamingConvention::HungarianLite; }
  if (totalNames > 0) {
    if (shortNames * 2 > totalNames) p.verbosity = Verbosity::Short;
    else if (longNames * 3 > totalNames) p.verbosity = Verbosity::Long;
  }

  // Structure.
  std::size_t forLoops = 0, whileLoops = 0, preInc = 0, postInc = 0;
  std::size_t compound = 0, plainAssign = 0, ternaries = 0;
  ast::forEachStmt(unit, [&](const ast::Stmt& stmt) {
    if (stmt.is<ast::ForStmt>()) ++forLoops;
    if (stmt.is<ast::WhileStmt>()) ++whileLoops;
  });
  ast::forEachExpr(unit, [&](const ast::Expr& expr) {
    if (expr.is<ast::Unary>()) {
      const auto op = expr.as<ast::Unary>().op;
      if (op == ast::UnaryOp::PreInc || op == ast::UnaryOp::PreDec) ++preInc;
      if (op == ast::UnaryOp::PostInc || op == ast::UnaryOp::PostDec) ++postInc;
    }
    if (expr.is<ast::Assign>()) {
      if (expr.as<ast::Assign>().op == ast::AssignOp::Assign) ++plainAssign;
      else ++compound;
    }
    if (expr.is<ast::Ternary>()) ++ternaries;
  });
  p.loops = whileLoops > forLoops ? LoopPreference::WhileLoops
                                  : LoopPreference::ForLoops;
  p.increment = preInc > postInc ? ast::IncrementStyle::PreIncrement
                                 : ast::IncrementStyle::PostIncrement;
  p.compoundAssign = compound > 0;
  p.useTernary = ternaries > 0;
  p.extractSolve = unit.functions.size() > 1;

  // Types / headers.
  bool hasLongLong = false;
  ast::forEachStmt(unit, [&](const ast::Stmt& stmt) {
    if (stmt.is<ast::VarDeclStmt>() &&
        stmt.as<ast::VarDeclStmt>().type.base == ast::BaseType::LongLong) {
      hasLongLong = true;
    }
  });
  p.widenToLongLong = hasLongLong;
  p.aliasLongLong = !unit.aliases.empty();
  if (!unit.aliases.empty()) {
    p.llAliasName = unit.aliases[0].name;
    p.aliasWithTypedef = unit.aliases[0].usesTypedef;
  }
  p.usingNamespaceStd = unit.usingNamespaceStd;
  for (const std::string& include : unit.includes) {
    if (include == "bits/stdc++.h") p.useBitsHeader = true;
  }

  // Comments.
  const std::size_t commentCount = layout.lineComments + layout.blockComments;
  const std::size_t stmtCount = ast::countStmts(unit);
  p.commentDensity =
      stmtCount == 0 ? 0.0
                     : static_cast<double>(commentCount) /
                           static_cast<double>(stmtCount);
  if (p.commentDensity > 0.6) p.commentDensity = 0.6;
  p.blockComments = layout.blockComments > layout.lineComments;
  p.fileHeaderComment = !unit.headerComment.empty();

  return p;
}

StyleProfile inferProfileFromSource(const std::string& source) {
  const ast::ParseResult parsed = ast::parse(source);
  const lexer::LayoutMetrics layout = lexer::computeLayoutMetrics(source);
  return inferProfile(parsed.unit, layout, source);
}

StyleProfile mutateProfile(const StyleProfile& profile, util::Rng& rng,
                           double rate) {
  StyleProfile mutated = profile;
  const StyleProfile fresh = sampleProfile(rng);
  auto roll = [&](auto& field, const auto& replacement) {
    if (rng.bernoulli(rate)) field = replacement;
  };
  roll(mutated.naming, fresh.naming);
  roll(mutated.verbosity, fresh.verbosity);
  roll(mutated.indentWidth, fresh.indentWidth);
  roll(mutated.useTabs, fresh.useTabs);
  roll(mutated.allmanBraces, fresh.allmanBraces);
  roll(mutated.spaceAroundOps, fresh.spaceAroundOps);
  roll(mutated.spaceAfterComma, fresh.spaceAfterComma);
  roll(mutated.spaceAfterKeyword, fresh.spaceAfterKeyword);
  roll(mutated.ioStyle, fresh.ioStyle);
  roll(mutated.useEndl, fresh.useEndl);
  roll(mutated.loops, fresh.loops);
  roll(mutated.increment, fresh.increment);
  roll(mutated.extractSolve, fresh.extractSolve);
  roll(mutated.compoundAssign, fresh.compoundAssign);
  roll(mutated.useTernary, fresh.useTernary);
  roll(mutated.widenToLongLong, fresh.widenToLongLong);
  roll(mutated.usingNamespaceStd, fresh.usingNamespaceStd);
  roll(mutated.useBitsHeader, fresh.useBitsHeader);
  roll(mutated.commentDensity, fresh.commentDensity);
  return mutated;
}

}  // namespace sca::style
