#include "style/archetypes.hpp"

#include "util/rng.hpp"

namespace sca::style {

const std::vector<StyleProfile>& archetypePool() {
  static const std::vector<StyleProfile> kPool = [] {
    // A dedicated seed, distinct from every author-population seed.
    util::Rng root(util::hash64("synthetic-llm-archetypes-v1"));
    std::vector<StyleProfile> pool;
    pool.reserve(kArchetypeCount);
    for (std::size_t i = 0; i < kArchetypeCount; ++i) {
      util::Rng rng = root.derive(static_cast<std::uint64_t>(i));
      StyleProfile profile = sampleProfile(rng);
      applyLlmAccent(profile);
      // The model has favorite names: within one style it picks the same
      // word for the same concept every time (numCases is always numCases).
      profile.namingSeed = util::combine64(
          util::hash64("archetype-naming"), static_cast<std::uint64_t>(i));
      pool.push_back(profile);
    }
    // Archetype 0 (the dominant 2017 style) is the "default ChatGPT look":
    // camelCase, 4-space K&R, iostream — as in the paper's examples.
    pool[0].naming = NamingConvention::CamelCase;
    pool[0].verbosity = Verbosity::Medium;
    pool[0].indentWidth = 4;
    pool[0].allmanBraces = false;
    pool[0].ioStyle = ast::IoStyle::Iostream;
    pool[0].extractSolve = false;
    pool[0].useBitsHeader = false;
    pool[0].usingNamespaceStd = true;
    pool[0].commentDensity = 0.15;
    // Archetype 1: the "helper function + printf" look of Figure 4a.
    pool[1].naming = NamingConvention::CamelCase;
    pool[1].extractSolve = true;
    pool[1].ioStyle = ast::IoStyle::Stdio;
    // Archetype 2: snake_case (Figure 5b's final style).
    pool[2].naming = NamingConvention::SnakeCase;
    pool[2].extractSolve = true;
    pool[2].ioStyle = ast::IoStyle::Iostream;
    return pool;
  }();
  return kPool;
}

void applyLlmAccent(StyleProfile& profile) {
  profile.useTabs = false;
  profile.indentWidth = 4;
  profile.spaceAroundOps = true;
  profile.spaceAfterComma = true;
  profile.spaceAfterKeyword = true;
  profile.braceSingleStatements = true;
  if (profile.verbosity == Verbosity::Short) {
    profile.verbosity = Verbosity::Medium;
  }
  if (profile.naming == NamingConvention::Abbreviated) {
    profile.naming = NamingConvention::CamelCase;
  }
  // The most notorious LLM tell: helpful little comments, everywhere.
  if (profile.commentDensity < 0.12) profile.commentDensity = 0.18;
  profile.blockComments = false;
  // ChatGPT writes textbook headers and types (paper Figures 3-5: plain
  // #include lines, no bits/stdc++.h, no typedef shorthands, plain int,
  // "using namespace std;").
  profile.useBitsHeader = false;
  profile.aliasLongLong = false;
  profile.widenToLongLong = false;
  profile.usingNamespaceStd = true;
  profile.fileHeaderComment = false;
}

NearestArchetype nearestArchetype(const StyleProfile& profile) {
  NearestArchetype out;
  const auto& pool = archetypePool();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double d = StyleProfile::distance(profile, pool[i]);
    if (d < out.distance) {
      out.distance = d;
      out.index = i;
    }
  }
  return out;
}

}  // namespace sca::style
