// Term vocabularies fitted on training data.
//
// Lexical unigram features (identifier words) and syntactic bigram
// features (parent>child statement kinds) are open-vocabulary; we fix
// their columns by collecting the top-k terms by document frequency on the
// TRAINING corpus only — test samples never extend the vocabulary (no
// leakage).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sca::features {

class Vocabulary {
 public:
  /// Builds a vocabulary of the `maxTerms` most document-frequent terms.
  /// `documents` holds one term list per training sample. Ties break
  /// alphabetically so fitting is deterministic.
  static Vocabulary fit(const std::vector<std::vector<std::string>>& documents,
                        std::size_t maxTerms);

  /// Rebuilds a vocabulary from an explicit term list (deserialization).
  static Vocabulary fromTerms(std::vector<std::string> terms);

  /// Column index of a term, if in vocabulary.
  [[nodiscard]] std::optional<std::size_t> indexOf(
      std::string_view term) const;

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }
  [[nodiscard]] const std::vector<std::string>& terms() const noexcept {
    return terms_;
  }

  /// Term-frequency vector (L1-normalized) for one document.
  [[nodiscard]] std::vector<double> vectorize(
      const std::vector<std::string>& document) const;

 private:
  /// Heterogeneous hasher so indexOf(string_view) never materializes a
  /// std::string — indexOf is called once per term per sample, which made
  /// the old std::map (ordered, pointer-chasing) a top-five profile entry.
  struct TermHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view term) const noexcept {
      return std::hash<std::string_view>{}(term);
    }
  };

  std::vector<std::string> terms_;
  std::unordered_map<std::string, std::size_t, TermHash, std::equal_to<>>
      index_;
};

}  // namespace sca::features
