#include "features/selection.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace sca::features {
namespace {

double entropyOfCounts(const std::map<int, std::size_t>& counts,
                       std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double labelEntropy(const std::vector<int>& y) {
  std::map<int, std::size_t> counts;
  for (const int label : y) ++counts[label];
  return entropyOfCounts(counts, y.size());
}

void FeatureSelector::fit(const std::vector<std::vector<double>>& x,
                          const std::vector<int>& y, std::size_t k) {
  selected_.clear();
  gains_.clear();
  if (x.empty()) return;
  const std::size_t dims = x[0].size();
  if (k == 0 || k >= dims) return;  // identity

  const double baseEntropy = labelEntropy(y);
  gains_.resize(dims, 0.0);
  for (std::size_t d = 0; d < dims; ++d) {
    double mean = 0.0;
    for (const auto& row : x) mean += row[d];
    mean /= static_cast<double>(x.size());

    std::map<int, std::size_t> below, above;
    std::size_t belowCount = 0, aboveCount = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i][d] <= mean) {
        ++below[y[i]];
        ++belowCount;
      } else {
        ++above[y[i]];
        ++aboveCount;
      }
    }
    const double total = static_cast<double>(x.size());
    const double conditional =
        (static_cast<double>(belowCount) / total) *
            entropyOfCounts(below, belowCount) +
        (static_cast<double>(aboveCount) / total) *
            entropyOfCounts(above, aboveCount);
    gains_[d] = baseEntropy - conditional;
  }

  std::vector<std::size_t> order(dims);
  for (std::size_t d = 0; d < dims; ++d) order[d] = d;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (gains_[a] != gains_[b]) return gains_[a] > gains_[b];
    return a < b;
  });
  order.resize(k);
  selected_ = std::move(order);
}

FeatureSelector FeatureSelector::fromIndices(
    std::vector<std::size_t> indices) {
  FeatureSelector selector;
  selector.selected_ = std::move(indices);
  return selector;
}

std::vector<double> FeatureSelector::apply(
    const std::vector<double>& vec) const {
  if (identity()) return vec;
  std::vector<double> out;
  out.reserve(selected_.size());
  for (const std::size_t idx : selected_) out.push_back(vec[idx]);
  return out;
}

std::vector<std::vector<double>> FeatureSelector::applyAll(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(apply(row));
  return out;
}

}  // namespace sca::features
