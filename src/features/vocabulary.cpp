#include "features/vocabulary.hpp"

#include <algorithm>
#include <unordered_set>

namespace sca::features {

Vocabulary Vocabulary::fit(
    const std::vector<std::vector<std::string>>& documents,
    std::size_t maxTerms) {
  // Hashed counting; the (freq desc, name asc) sort below imposes a total
  // order, so the fitted term list is deterministic regardless of hash
  // iteration order.
  std::unordered_map<std::string, std::size_t> docFreq;
  std::unordered_set<std::string_view> unique;
  for (const auto& document : documents) {
    unique.clear();
    unique.reserve(document.size());
    for (const std::string& term : document) {
      if (unique.insert(term).second) ++docFreq[term];
    }
  }
  std::vector<std::pair<std::string, std::size_t>> ranked(docFreq.begin(),
                                                          docFreq.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > maxTerms) ranked.resize(maxTerms);

  Vocabulary vocab;
  vocab.terms_.reserve(ranked.size());
  vocab.index_.reserve(ranked.size());
  for (const auto& [term, freq] : ranked) {
    vocab.index_[term] = vocab.terms_.size();
    vocab.terms_.push_back(term);
  }
  return vocab;
}

Vocabulary Vocabulary::fromTerms(std::vector<std::string> terms) {
  Vocabulary vocab;
  vocab.terms_ = std::move(terms);
  vocab.index_.reserve(vocab.terms_.size());
  for (std::size_t i = 0; i < vocab.terms_.size(); ++i) {
    vocab.index_[vocab.terms_[i]] = i;
  }
  return vocab;
}

std::optional<std::size_t> Vocabulary::indexOf(std::string_view term) const {
  const auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> Vocabulary::vectorize(
    const std::vector<std::string>& document) const {
  std::vector<double> vec(terms_.size(), 0.0);
  if (document.empty()) return vec;
  for (const std::string& term : document) {
    const auto idx = indexOf(term);
    if (idx.has_value()) vec[*idx] += 1.0;
  }
  const double norm = static_cast<double>(document.size());
  for (double& v : vec) v /= norm;
  return vec;
}

}  // namespace sca::features
