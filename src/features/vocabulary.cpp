#include "features/vocabulary.hpp"

#include <algorithm>
#include <set>

namespace sca::features {

Vocabulary Vocabulary::fit(
    const std::vector<std::vector<std::string>>& documents,
    std::size_t maxTerms) {
  std::map<std::string, std::size_t> docFreq;
  for (const auto& document : documents) {
    const std::set<std::string> unique(document.begin(), document.end());
    for (const std::string& term : unique) ++docFreq[term];
  }
  std::vector<std::pair<std::string, std::size_t>> ranked(docFreq.begin(),
                                                          docFreq.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > maxTerms) ranked.resize(maxTerms);

  Vocabulary vocab;
  vocab.terms_.reserve(ranked.size());
  for (const auto& [term, freq] : ranked) {
    vocab.index_[term] = vocab.terms_.size();
    vocab.terms_.push_back(term);
  }
  return vocab;
}

Vocabulary Vocabulary::fromTerms(std::vector<std::string> terms) {
  Vocabulary vocab;
  vocab.terms_ = std::move(terms);
  for (std::size_t i = 0; i < vocab.terms_.size(); ++i) {
    vocab.index_[vocab.terms_[i]] = i;
  }
  return vocab;
}

std::optional<std::size_t> Vocabulary::indexOf(const std::string& term) const {
  const auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> Vocabulary::vectorize(
    const std::vector<std::string>& document) const {
  std::vector<double> vec(terms_.size(), 0.0);
  if (document.empty()) return vec;
  for (const std::string& term : document) {
    const auto idx = indexOf(term);
    if (idx.has_value()) vec[*idx] += 1.0;
  }
  const double norm = static_cast<double>(document.size());
  for (double& v : vec) v /= norm;
  return vec;
}

}  // namespace sca::features
