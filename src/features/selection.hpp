// Information-gain feature selection (as in Caliskan-Islam et al., who
// prune their ~120k-dimensional feature space with WEKA's InfoGain filter
// before training the random forest).
//
// Each feature is scored by the information gain of a binary split at its
// training mean; the top-k features are kept.
#pragma once

#include <cstddef>
#include <vector>

namespace sca::features {

class FeatureSelector {
 public:
  /// Scores features on (x, y) and keeps the `k` highest-gain columns.
  /// If k >= dimension or k == 0, selection is the identity.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<int>& y, std::size_t k);

  /// Rebuilds a selector from explicit column indices (deserialization);
  /// an empty list is the identity. Gains are not restored.
  static FeatureSelector fromIndices(std::vector<std::size_t> indices);

  /// Projects one vector onto the selected columns.
  [[nodiscard]] std::vector<double> apply(
      const std::vector<double>& vec) const;

  [[nodiscard]] std::vector<std::vector<double>> applyAll(
      const std::vector<std::vector<double>>& x) const;

  /// Selected column indices in descending gain order.
  [[nodiscard]] const std::vector<std::size_t>& selected() const noexcept {
    return selected_;
  }

  /// Gain score of every original column (after fit).
  [[nodiscard]] const std::vector<double>& gains() const noexcept {
    return gains_;
  }

  [[nodiscard]] bool identity() const noexcept { return selected_.empty(); }

 private:
  std::vector<std::size_t> selected_;  // empty => identity
  std::vector<double> gains_;
};

/// Shannon entropy (nats) of an integer label vector.
[[nodiscard]] double labelEntropy(const std::vector<int>& y);

}  // namespace sca::features
