// Stylometric feature extraction (Caliskan-Islam et al., §III-A of the
// paper): lexical + layout + syntactic features over one source file.
//
// Lexical features are computed on the raw token stream (identifier
// unigrams, keyword frequencies, literal usage, naming-convention ratios),
// layout features on the raw text (lexer/layout.hpp), and syntactic
// features on the parsed AST (node-kind frequencies, depth, parent>child
// bigrams, decomposition shape).
//
// The extractor follows the fit/transform protocol: open vocabularies
// (identifier words, statement bigrams) are frozen on the training set.
#pragma once

#include <string>
#include <vector>

#include "features/vocabulary.hpp"

namespace sca::cache {
class DiskCache;
}  // namespace sca::cache

namespace sca::features {

enum class FeatureFamily { Lexical, Layout, Syntactic };

[[nodiscard]] std::string_view familyName(FeatureFamily family) noexcept;

struct ExtractorConfig {
  std::size_t identifierVocabulary = 150;  // token-unigram columns
  std::size_t bigramVocabulary = 100;      // stmt-bigram columns
  // Family switches for the ablation bench.
  bool useLexical = true;
  bool useLayout = true;
  bool useSyntactic = true;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(ExtractorConfig config = {});

  /// Rebuilds a fitted extractor from explicit vocabularies
  /// (deserialization path; the normal path is fit()).
  FeatureExtractor(ExtractorConfig config, Vocabulary identifierVocab,
                   Vocabulary bigramVocab);

  /// Freezes the vocabularies on the training corpus.
  void fit(const std::vector<std::string>& sources);

  /// Extracts the feature vector of one source file. Requires fit().
  [[nodiscard]] std::vector<double> transform(const std::string& source) const;

  /// transform() minus the process-global analysis cache: lex + layout +
  /// parse run fresh and nothing is retained in memory or spilled to disk.
  /// Bit-identical output to transform(). Out-of-core corpus generation
  /// uses this — memoizing 10^5+ distinct sources that are each touched
  /// once would defeat the bounded-RSS contract.
  [[nodiscard]] std::vector<double> transformUncached(
      const std::string& source) const;

  /// transform() over many sources.
  [[nodiscard]] std::vector<std::vector<double>> transformAll(
      const std::vector<std::string>& sources) const;

  [[nodiscard]] std::size_t dimension() const noexcept {
    return names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& featureNames() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<FeatureFamily>& featureFamilies()
      const noexcept {
    return families_;
  }
  [[nodiscard]] const ExtractorConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Vocabulary& identifierVocabulary() const noexcept {
    return identifierVocab_;
  }
  [[nodiscard]] const Vocabulary& bigramVocabulary() const noexcept {
    return bigramVocab_;
  }

 private:
  void buildSchema();

  ExtractorConfig config_;
  Vocabulary identifierVocab_;
  Vocabulary bigramVocab_;
  std::vector<std::string> names_;
  std::vector<FeatureFamily> families_;
  bool fitted_ = false;
};

/// Lowercase word terms of every identifier token in `source`
/// ("numCases" -> num, cases). Exposed for tests and the vocabulary.
[[nodiscard]] std::vector<std::string> identifierTerms(
    const std::string& source);

// ------------------------------------------------------- analysis cache --
// transform()/fit() front their lex+layout+parse work with a process-global
// memoization cache keyed by source content. The cached analysis is
// extractor-independent (vocabularies only affect the projection), so a
// sample re-extracted across CV folds, oracle labeling and re-training pays
// for lexing and parsing exactly once. Reads take a shared lock; the cache
// is safe from parallel extraction tasks, and results are identical with
// the cache cleared, cold or warm.
//
// When a persistent store is attached (by default the SCA_CACHE_DIR process
// cache), every in-memory miss first consults the disk: a restored analysis
// skips lex+layout+parse entirely, and every freshly computed analysis is
// spilled back, so re-extraction cost amortizes across *processes* too.
// Analyses are serialized exactly (doubles as bit patterns), so feature
// vectors are byte-identical with the disk cache off, cold or warm.

struct AnalysisCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
  std::size_t diskRestores = 0;  // misses served by the persistent store
  std::size_t diskSpills = 0;    // analyses written to the persistent store
};

/// Counters since process start (entries = current resident analyses).
[[nodiscard]] AnalysisCacheStats analysisCacheStats();

/// Drops every cached analysis and zeroes the hit/miss/disk counters.
void clearAnalysisCache();

/// Attaches (or, with nullptr, detaches) the persistent spill store. The
/// default is cache::DiskCache::processCache(). Tests use this to point the
/// cache at a scratch store; callers must keep `store` alive.
void setAnalysisDiskCache(cache::DiskCache* store);

}  // namespace sca::features
