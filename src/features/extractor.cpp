#include "features/extractor.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "util/strings.hpp"

namespace sca::features {
namespace {

/// Everything transform() needs, computed once per source.
struct Analyzed {
  std::vector<lexer::Token> tokens;
  lexer::LayoutMetrics layout;
  ast::ParseResult parsed;
};

/// Process-global content-keyed memo of analyses (see extractor.hpp).
/// Bounded: past kMaxEntries the cache is dropped wholesale rather than
/// evicted piecemeal — the working set of one bench run (a few thousand
/// samples) fits comfortably, so overflow only happens across unrelated
/// corpora where stale entries would never hit again anyway.
class AnalysisCache {
 public:
  static constexpr std::size_t kMaxEntries = 32768;

  std::shared_ptr<const Analyzed> get(const std::string& source) {
    analyzeCalls_.add();
    {
      std::shared_lock lock(mutex_);
      const auto it = entries_.find(source);
      if (it != entries_.end()) {
        hits_.add();
        return it->second;
      }
    }
    auto analyzed = std::make_shared<Analyzed>();
    analyzed->tokens = lexer::tokenize(source);
    analyzed->layout = lexer::computeLayoutMetrics(source);
    analyzed->parsed = ast::parse(source);
    std::unique_lock lock(mutex_);
    misses_.add();
    if (entries_.size() >= kMaxEntries) entries_.clear();
    return entries_.try_emplace(source, std::move(analyzed)).first->second;
  }

  AnalysisCacheStats stats() const {
    auto& registry = obs::MetricsRegistry::global();
    std::shared_lock lock(mutex_);
    return {registry.counterValue("features_cache_hits"),
            registry.counterValue("features_cache_misses"), entries_.size()};
  }

  void clear() {
    std::unique_lock lock(mutex_);
    entries_.clear();
    // Re-base rather than zero the shards: resetting must not race with a
    // concurrent get() bumping its own thread's cells.
    auto& registry = obs::MetricsRegistry::global();
    registry.markResetCounter("features_cache_hits");
    registry.markResetCounter("features_cache_misses");
  }

  static AnalysisCache& global() {
    static AnalysisCache instance;
    return instance;
  }

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Analyzed>> entries_;
  // Total analyze() calls are event-deterministic (stable); the hit/miss
  // split is not — two threads can both miss one key before either inserts
  // it — so hits/misses are kRuntime, kept out of the stable section.
  obs::Counter analyzeCalls_ =
      obs::MetricsRegistry::global().counter("features_analyze_calls");
  obs::Counter hits_ = obs::MetricsRegistry::global().counter(
      "features_cache_hits", obs::Stability::kRuntime);
  obs::Counter misses_ = obs::MetricsRegistry::global().counter(
      "features_cache_misses", obs::Stability::kRuntime);
};

std::shared_ptr<const Analyzed> analyze(const std::string& source) {
  return AnalysisCache::global().get(source);
}

double ratio(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// Naming-convention counters over identifier tokens of length >= 2.
struct NamingCounts {
  std::size_t snake = 0, camel = 0, pascal = 0, lower = 0, hungarian = 0;
  std::size_t total = 0;
  double meanLength = 0.0;
  double maxLength = 0.0;
  std::size_t distinct = 0;
};

NamingCounts countNaming(const std::vector<lexer::Token>& tokens) {
  NamingCounts c;
  double lengthSum = 0.0;
  std::vector<std::string> seen;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    const std::string& name = t.text;
    seen.push_back(name);
    lengthSum += static_cast<double>(name.size());
    c.maxLength = std::max(c.maxLength, static_cast<double>(name.size()));
    ++c.total;
    if (name.size() < 2) continue;
    const bool hasUnderscore = name.find('_') != std::string::npos;
    const bool startsUpper =
        std::isupper(static_cast<unsigned char>(name[0])) != 0;
    bool innerUpper = false;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (std::isupper(static_cast<unsigned char>(name[i])) != 0) {
        innerUpper = true;
      }
    }
    if (name.size() >= 3 &&
        std::string("ndbcsvf").find(name[0]) != std::string::npos &&
        std::isupper(static_cast<unsigned char>(name[1])) != 0) {
      ++c.hungarian;
    } else if (hasUnderscore) {
      ++c.snake;
    } else if (startsUpper) {
      ++c.pascal;
    } else if (innerUpper) {
      ++c.camel;
    } else {
      ++c.lower;
    }
  }
  if (c.total > 0) c.meanLength = lengthSum / static_cast<double>(c.total);
  std::sort(seen.begin(), seen.end());
  c.distinct = static_cast<std::size_t>(
      std::unique(seen.begin(), seen.end()) - seen.begin());
  return c;
}

}  // namespace

std::string_view familyName(FeatureFamily family) noexcept {
  switch (family) {
    case FeatureFamily::Lexical: return "lexical";
    case FeatureFamily::Layout: return "layout";
    case FeatureFamily::Syntactic: return "syntactic";
  }
  return "?";
}

namespace {

/// identifierTerms over an existing token stream (skips re-tokenizing).
std::vector<std::string> identifierTermsFromTokens(
    const std::vector<lexer::Token>& tokens) {
  std::vector<std::string> terms;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    for (std::string& word : util::splitIdentifier(t.text)) {
      terms.push_back(std::move(word));
    }
  }
  return terms;
}

}  // namespace

std::vector<std::string> identifierTerms(const std::string& source) {
  return identifierTermsFromTokens(lexer::tokenize(source));
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config) : config_(config) {
  buildSchema();  // fixed columns are valid even before fit()
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config,
                                   Vocabulary identifierVocab,
                                   Vocabulary bigramVocab)
    : config_(config),
      identifierVocab_(std::move(identifierVocab)),
      bigramVocab_(std::move(bigramVocab)) {
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::fit(const std::vector<std::string>& sources) {
  // Per-source docs come straight off the shared analysis cache, in
  // parallel; vocabulary fitting itself stays serial (term counting is
  // order-independent but cheap).
  struct Docs {
    std::vector<std::string> identifiers;
    std::vector<std::string> bigrams;
  };
  std::vector<Docs> docs = runtime::parallelMap<Docs>(
      sources.size(),
      [&](std::size_t i) {
        const std::shared_ptr<const Analyzed> a = analyze(sources[i]);
        return Docs{identifierTermsFromTokens(a->tokens),
                    ast::stmtKindBigrams(a->parsed.unit)};
      },
      runtime::ParallelOptions{.maxWorkers = 0, .grain = 8});

  std::vector<std::vector<std::string>> identifierDocs;
  std::vector<std::vector<std::string>> bigramDocs;
  identifierDocs.reserve(sources.size());
  bigramDocs.reserve(sources.size());
  for (Docs& d : docs) {
    identifierDocs.push_back(std::move(d.identifiers));
    bigramDocs.push_back(std::move(d.bigrams));
  }
  identifierVocab_ =
      Vocabulary::fit(identifierDocs, config_.identifierVocabulary);
  bigramVocab_ = Vocabulary::fit(bigramDocs, config_.bigramVocabulary);
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::buildSchema() {
  names_.clear();
  families_.clear();
  auto add = [&](FeatureFamily family, std::string name) {
    families_.push_back(family);
    names_.push_back(std::move(name));
  };

  if (config_.useLexical) {
    for (const std::string& kw : lexer::cppKeywords()) {
      add(FeatureFamily::Lexical, "kw:" + kw);
    }
    add(FeatureFamily::Lexical, "lex:ident-mean-len");
    add(FeatureFamily::Lexical, "lex:ident-max-len");
    add(FeatureFamily::Lexical, "lex:ident-distinct-ratio");
    add(FeatureFamily::Lexical, "lex:name-snake");
    add(FeatureFamily::Lexical, "lex:name-camel");
    add(FeatureFamily::Lexical, "lex:name-pascal");
    add(FeatureFamily::Lexical, "lex:name-lower");
    add(FeatureFamily::Lexical, "lex:name-hungarian");
    add(FeatureFamily::Lexical, "lex:int-literals");
    add(FeatureFamily::Lexical, "lex:float-literals");
    add(FeatureFamily::Lexical, "lex:string-literals");
    add(FeatureFamily::Lexical, "lex:char-literals");
    add(FeatureFamily::Lexical, "lex:preprocessor-lines");
    for (const std::string& term : identifierVocab_.terms()) {
      add(FeatureFamily::Lexical, "uni:" + term);
    }
  }
  if (config_.useLayout) {
    add(FeatureFamily::Layout, "lay:line-count");
    add(FeatureFamily::Layout, "lay:blank-ratio");
    add(FeatureFamily::Layout, "lay:comment-char-ratio");
    add(FeatureFamily::Layout, "lay:line-comments-per-line");
    add(FeatureFamily::Layout, "lay:block-comments-per-line");
    add(FeatureFamily::Layout, "lay:tab-indent-ratio");
    add(FeatureFamily::Layout, "lay:mean-indent");
    add(FeatureFamily::Layout, "lay:indent2-ratio");
    add(FeatureFamily::Layout, "lay:indent4-ratio");
    add(FeatureFamily::Layout, "lay:indent8-ratio");
    add(FeatureFamily::Layout, "lay:allman-ratio");
    add(FeatureFamily::Layout, "lay:spaced-ops-ratio");
    add(FeatureFamily::Layout, "lay:space-after-comma-ratio");
    add(FeatureFamily::Layout, "lay:space-after-keyword-ratio");
    add(FeatureFamily::Layout, "lay:mean-line-length");
    add(FeatureFamily::Layout, "lay:max-line-length");
  }
  if (config_.useSyntactic) {
    for (const std::string& kind : ast::allStmtKindNames()) {
      add(FeatureFamily::Syntactic, "stmt:" + kind);
    }
    for (const std::string& kind : ast::allExprKindNames()) {
      add(FeatureFamily::Syntactic, "expr:" + kind);
    }
    add(FeatureFamily::Syntactic, "syn:max-depth");
    add(FeatureFamily::Syntactic, "syn:mean-depth");
    add(FeatureFamily::Syntactic, "syn:function-count");
    add(FeatureFamily::Syntactic, "syn:stmts-per-function");
    add(FeatureFamily::Syntactic, "syn:mean-params");
    add(FeatureFamily::Syntactic, "syn:alias-count");
    add(FeatureFamily::Syntactic, "syn:using-namespace-std");
    add(FeatureFamily::Syntactic, "syn:include-count");
    add(FeatureFamily::Syntactic, "syn:bits-header");
    for (const std::string& term : bigramVocab_.terms()) {
      add(FeatureFamily::Syntactic, "bi:" + term);
    }
  }
}

std::vector<double> FeatureExtractor::transform(
    const std::string& source) const {
  const std::shared_ptr<const Analyzed> analyzed = analyze(source);
  const Analyzed& a = *analyzed;
  std::vector<double> vec;
  vec.reserve(dimension());

  // Token tallies shared by the lexical block.
  std::size_t tokenCount = 0;
  std::map<std::string, std::size_t> keywordCounts;
  std::size_t intLits = 0, floatLits = 0, stringLits = 0, charLits = 0;
  std::size_t preprocessor = 0;
  for (const lexer::Token& t : a.tokens) {
    if (t.is(lexer::TokenKind::EndOfFile)) continue;
    ++tokenCount;
    switch (t.kind) {
      case lexer::TokenKind::Keyword: ++keywordCounts[t.text]; break;
      case lexer::TokenKind::IntLiteral: ++intLits; break;
      case lexer::TokenKind::FloatLiteral: ++floatLits; break;
      case lexer::TokenKind::StringLiteral: ++stringLits; break;
      case lexer::TokenKind::CharLiteral: ++charLits; break;
      case lexer::TokenKind::Preprocessor: ++preprocessor; break;
      default: break;
    }
  }

  if (config_.useLexical) {
    for (const std::string& kw : lexer::cppKeywords()) {
      const auto it = keywordCounts.find(kw);
      vec.push_back(ratio(it == keywordCounts.end() ? 0 : it->second,
                          tokenCount));
    }
    const NamingCounts naming = countNaming(a.tokens);
    vec.push_back(naming.meanLength / 16.0);
    vec.push_back(naming.maxLength / 32.0);
    vec.push_back(ratio(naming.distinct, naming.total));
    const std::size_t classified = naming.snake + naming.camel +
                                   naming.pascal + naming.lower +
                                   naming.hungarian;
    vec.push_back(ratio(naming.snake, classified));
    vec.push_back(ratio(naming.camel, classified));
    vec.push_back(ratio(naming.pascal, classified));
    vec.push_back(ratio(naming.lower, classified));
    vec.push_back(ratio(naming.hungarian, classified));
    vec.push_back(ratio(intLits, tokenCount));
    vec.push_back(ratio(floatLits, tokenCount));
    vec.push_back(ratio(stringLits, tokenCount));
    vec.push_back(ratio(charLits, tokenCount));
    vec.push_back(ratio(preprocessor, a.layout.lineCount));
    for (const double v :
         identifierVocab_.vectorize(identifierTermsFromTokens(a.tokens))) {
      vec.push_back(v);
    }
  }

  if (config_.useLayout) {
    const lexer::LayoutMetrics& m = a.layout;
    vec.push_back(std::log1p(static_cast<double>(m.lineCount)) / 6.0);
    vec.push_back(m.blankLineRatio());
    vec.push_back(m.commentCharRatio());
    vec.push_back(ratio(m.lineComments, m.lineCount));
    vec.push_back(ratio(m.blockComments, m.lineCount));
    vec.push_back(m.tabIndentRatio());
    vec.push_back(m.meanIndentWidth / 16.0);
    vec.push_back(ratio(m.indentWidth2, m.indentedLines));
    vec.push_back(ratio(m.indentWidth4, m.indentedLines));
    vec.push_back(ratio(m.indentWidth8, m.indentedLines));
    vec.push_back(m.allmanBraceRatio());
    vec.push_back(m.spacedOpRatio());
    vec.push_back(m.spaceAfterCommaRatio());
    vec.push_back(m.spaceAfterKeywordRatio());
    vec.push_back(m.meanLineLength / 80.0);
    vec.push_back(static_cast<double>(m.maxLineLength) / 200.0);
  }

  if (config_.useSyntactic) {
    const ast::TranslationUnit& unit = a.parsed.unit;
    std::map<std::string, std::size_t> stmtCounts;
    std::size_t stmtTotal = 0;
    ast::forEachStmt(unit, [&](const ast::Stmt& stmt) {
      ++stmtCounts[std::string(ast::stmtKindName(stmt))];
      ++stmtTotal;
    });
    std::map<std::string, std::size_t> exprCounts;
    std::size_t exprTotal = 0;
    ast::forEachExpr(unit, [&](const ast::Expr& expr) {
      ++exprCounts[std::string(ast::exprKindName(expr))];
      ++exprTotal;
    });
    for (const std::string& kind : ast::allStmtKindNames()) {
      const auto it = stmtCounts.find(kind);
      vec.push_back(ratio(it == stmtCounts.end() ? 0 : it->second, stmtTotal));
    }
    for (const std::string& kind : ast::allExprKindNames()) {
      const auto it = exprCounts.find(kind);
      vec.push_back(ratio(it == exprCounts.end() ? 0 : it->second, exprTotal));
    }
    vec.push_back(static_cast<double>(ast::maxStmtDepth(unit)) / 10.0);
    vec.push_back(ast::meanStmtDepth(unit) / 5.0);
    vec.push_back(static_cast<double>(unit.functions.size()) / 5.0);
    double paramSum = 0.0;
    for (const ast::Function& fn : unit.functions) {
      paramSum += static_cast<double>(fn.params.size());
    }
    vec.push_back(unit.functions.empty()
                      ? 0.0
                      : static_cast<double>(stmtTotal) /
                            (30.0 * static_cast<double>(unit.functions.size())));
    vec.push_back(unit.functions.empty()
                      ? 0.0
                      : paramSum / static_cast<double>(unit.functions.size()) /
                            4.0);
    vec.push_back(static_cast<double>(unit.aliases.size()));
    vec.push_back(unit.usingNamespaceStd ? 1.0 : 0.0);
    vec.push_back(static_cast<double>(unit.includes.size()) / 6.0);
    const bool bits = std::find(unit.includes.begin(), unit.includes.end(),
                                "bits/stdc++.h") != unit.includes.end();
    vec.push_back(bits ? 1.0 : 0.0);
    for (const double v :
         bigramVocab_.vectorize(ast::stmtKindBigrams(unit))) {
      vec.push_back(v);
    }
  }

  return vec;
}

std::vector<std::vector<double>> FeatureExtractor::transformAll(
    const std::vector<std::string>& sources) const {
  return runtime::parallelMap<std::vector<double>>(
      sources.size(), [&](std::size_t i) { return transform(sources[i]); },
      runtime::ParallelOptions{.maxWorkers = 0, .grain = 8});
}

AnalysisCacheStats analysisCacheStats() {
  return AnalysisCache::global().stats();
}

void clearAnalysisCache() { AnalysisCache::global().clear(); }

}  // namespace sca::features
