#include "features/extractor.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"
#include "util/strings.hpp"

namespace sca::features {
namespace {

/// Everything transform() needs, computed once per source.
struct Analyzed {
  std::vector<lexer::Token> tokens;
  lexer::LayoutMetrics layout;
  ast::ParseResult parsed;
};

Analyzed analyze(const std::string& source) {
  Analyzed a;
  a.tokens = lexer::tokenize(source);
  a.layout = lexer::computeLayoutMetrics(source);
  a.parsed = ast::parse(source);
  return a;
}

double ratio(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// Naming-convention counters over identifier tokens of length >= 2.
struct NamingCounts {
  std::size_t snake = 0, camel = 0, pascal = 0, lower = 0, hungarian = 0;
  std::size_t total = 0;
  double meanLength = 0.0;
  double maxLength = 0.0;
  std::size_t distinct = 0;
};

NamingCounts countNaming(const std::vector<lexer::Token>& tokens) {
  NamingCounts c;
  double lengthSum = 0.0;
  std::vector<std::string> seen;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    const std::string& name = t.text;
    seen.push_back(name);
    lengthSum += static_cast<double>(name.size());
    c.maxLength = std::max(c.maxLength, static_cast<double>(name.size()));
    ++c.total;
    if (name.size() < 2) continue;
    const bool hasUnderscore = name.find('_') != std::string::npos;
    const bool startsUpper =
        std::isupper(static_cast<unsigned char>(name[0])) != 0;
    bool innerUpper = false;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (std::isupper(static_cast<unsigned char>(name[i])) != 0) {
        innerUpper = true;
      }
    }
    if (name.size() >= 3 &&
        std::string("ndbcsvf").find(name[0]) != std::string::npos &&
        std::isupper(static_cast<unsigned char>(name[1])) != 0) {
      ++c.hungarian;
    } else if (hasUnderscore) {
      ++c.snake;
    } else if (startsUpper) {
      ++c.pascal;
    } else if (innerUpper) {
      ++c.camel;
    } else {
      ++c.lower;
    }
  }
  if (c.total > 0) c.meanLength = lengthSum / static_cast<double>(c.total);
  std::sort(seen.begin(), seen.end());
  c.distinct = static_cast<std::size_t>(
      std::unique(seen.begin(), seen.end()) - seen.begin());
  return c;
}

}  // namespace

std::string_view familyName(FeatureFamily family) noexcept {
  switch (family) {
    case FeatureFamily::Lexical: return "lexical";
    case FeatureFamily::Layout: return "layout";
    case FeatureFamily::Syntactic: return "syntactic";
  }
  return "?";
}

std::vector<std::string> identifierTerms(const std::string& source) {
  std::vector<std::string> terms;
  for (const lexer::Token& t : lexer::tokenize(source)) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    for (std::string& word : util::splitIdentifier(t.text)) {
      terms.push_back(std::move(word));
    }
  }
  return terms;
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config) : config_(config) {
  buildSchema();  // fixed columns are valid even before fit()
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config,
                                   Vocabulary identifierVocab,
                                   Vocabulary bigramVocab)
    : config_(config),
      identifierVocab_(std::move(identifierVocab)),
      bigramVocab_(std::move(bigramVocab)) {
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::fit(const std::vector<std::string>& sources) {
  std::vector<std::vector<std::string>> identifierDocs;
  std::vector<std::vector<std::string>> bigramDocs;
  identifierDocs.reserve(sources.size());
  bigramDocs.reserve(sources.size());
  for (const std::string& source : sources) {
    identifierDocs.push_back(identifierTerms(source));
    const ast::ParseResult parsed = ast::parse(source);
    bigramDocs.push_back(ast::stmtKindBigrams(parsed.unit));
  }
  identifierVocab_ =
      Vocabulary::fit(identifierDocs, config_.identifierVocabulary);
  bigramVocab_ = Vocabulary::fit(bigramDocs, config_.bigramVocabulary);
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::buildSchema() {
  names_.clear();
  families_.clear();
  auto add = [&](FeatureFamily family, std::string name) {
    families_.push_back(family);
    names_.push_back(std::move(name));
  };

  if (config_.useLexical) {
    for (const std::string& kw : lexer::cppKeywords()) {
      add(FeatureFamily::Lexical, "kw:" + kw);
    }
    add(FeatureFamily::Lexical, "lex:ident-mean-len");
    add(FeatureFamily::Lexical, "lex:ident-max-len");
    add(FeatureFamily::Lexical, "lex:ident-distinct-ratio");
    add(FeatureFamily::Lexical, "lex:name-snake");
    add(FeatureFamily::Lexical, "lex:name-camel");
    add(FeatureFamily::Lexical, "lex:name-pascal");
    add(FeatureFamily::Lexical, "lex:name-lower");
    add(FeatureFamily::Lexical, "lex:name-hungarian");
    add(FeatureFamily::Lexical, "lex:int-literals");
    add(FeatureFamily::Lexical, "lex:float-literals");
    add(FeatureFamily::Lexical, "lex:string-literals");
    add(FeatureFamily::Lexical, "lex:char-literals");
    add(FeatureFamily::Lexical, "lex:preprocessor-lines");
    for (const std::string& term : identifierVocab_.terms()) {
      add(FeatureFamily::Lexical, "uni:" + term);
    }
  }
  if (config_.useLayout) {
    add(FeatureFamily::Layout, "lay:line-count");
    add(FeatureFamily::Layout, "lay:blank-ratio");
    add(FeatureFamily::Layout, "lay:comment-char-ratio");
    add(FeatureFamily::Layout, "lay:line-comments-per-line");
    add(FeatureFamily::Layout, "lay:block-comments-per-line");
    add(FeatureFamily::Layout, "lay:tab-indent-ratio");
    add(FeatureFamily::Layout, "lay:mean-indent");
    add(FeatureFamily::Layout, "lay:indent2-ratio");
    add(FeatureFamily::Layout, "lay:indent4-ratio");
    add(FeatureFamily::Layout, "lay:indent8-ratio");
    add(FeatureFamily::Layout, "lay:allman-ratio");
    add(FeatureFamily::Layout, "lay:spaced-ops-ratio");
    add(FeatureFamily::Layout, "lay:space-after-comma-ratio");
    add(FeatureFamily::Layout, "lay:space-after-keyword-ratio");
    add(FeatureFamily::Layout, "lay:mean-line-length");
    add(FeatureFamily::Layout, "lay:max-line-length");
  }
  if (config_.useSyntactic) {
    for (const std::string& kind : ast::allStmtKindNames()) {
      add(FeatureFamily::Syntactic, "stmt:" + kind);
    }
    for (const std::string& kind : ast::allExprKindNames()) {
      add(FeatureFamily::Syntactic, "expr:" + kind);
    }
    add(FeatureFamily::Syntactic, "syn:max-depth");
    add(FeatureFamily::Syntactic, "syn:mean-depth");
    add(FeatureFamily::Syntactic, "syn:function-count");
    add(FeatureFamily::Syntactic, "syn:stmts-per-function");
    add(FeatureFamily::Syntactic, "syn:mean-params");
    add(FeatureFamily::Syntactic, "syn:alias-count");
    add(FeatureFamily::Syntactic, "syn:using-namespace-std");
    add(FeatureFamily::Syntactic, "syn:include-count");
    add(FeatureFamily::Syntactic, "syn:bits-header");
    for (const std::string& term : bigramVocab_.terms()) {
      add(FeatureFamily::Syntactic, "bi:" + term);
    }
  }
}

std::vector<double> FeatureExtractor::transform(
    const std::string& source) const {
  const Analyzed a = analyze(source);
  std::vector<double> vec;
  vec.reserve(dimension());

  // Token tallies shared by the lexical block.
  std::size_t tokenCount = 0;
  std::map<std::string, std::size_t> keywordCounts;
  std::size_t intLits = 0, floatLits = 0, stringLits = 0, charLits = 0;
  std::size_t preprocessor = 0;
  for (const lexer::Token& t : a.tokens) {
    if (t.is(lexer::TokenKind::EndOfFile)) continue;
    ++tokenCount;
    switch (t.kind) {
      case lexer::TokenKind::Keyword: ++keywordCounts[t.text]; break;
      case lexer::TokenKind::IntLiteral: ++intLits; break;
      case lexer::TokenKind::FloatLiteral: ++floatLits; break;
      case lexer::TokenKind::StringLiteral: ++stringLits; break;
      case lexer::TokenKind::CharLiteral: ++charLits; break;
      case lexer::TokenKind::Preprocessor: ++preprocessor; break;
      default: break;
    }
  }

  if (config_.useLexical) {
    for (const std::string& kw : lexer::cppKeywords()) {
      const auto it = keywordCounts.find(kw);
      vec.push_back(ratio(it == keywordCounts.end() ? 0 : it->second,
                          tokenCount));
    }
    const NamingCounts naming = countNaming(a.tokens);
    vec.push_back(naming.meanLength / 16.0);
    vec.push_back(naming.maxLength / 32.0);
    vec.push_back(ratio(naming.distinct, naming.total));
    const std::size_t classified = naming.snake + naming.camel +
                                   naming.pascal + naming.lower +
                                   naming.hungarian;
    vec.push_back(ratio(naming.snake, classified));
    vec.push_back(ratio(naming.camel, classified));
    vec.push_back(ratio(naming.pascal, classified));
    vec.push_back(ratio(naming.lower, classified));
    vec.push_back(ratio(naming.hungarian, classified));
    vec.push_back(ratio(intLits, tokenCount));
    vec.push_back(ratio(floatLits, tokenCount));
    vec.push_back(ratio(stringLits, tokenCount));
    vec.push_back(ratio(charLits, tokenCount));
    vec.push_back(ratio(preprocessor, a.layout.lineCount));
    for (const double v : identifierVocab_.vectorize(identifierTerms(source))) {
      vec.push_back(v);
    }
  }

  if (config_.useLayout) {
    const lexer::LayoutMetrics& m = a.layout;
    vec.push_back(std::log1p(static_cast<double>(m.lineCount)) / 6.0);
    vec.push_back(m.blankLineRatio());
    vec.push_back(m.commentCharRatio());
    vec.push_back(ratio(m.lineComments, m.lineCount));
    vec.push_back(ratio(m.blockComments, m.lineCount));
    vec.push_back(m.tabIndentRatio());
    vec.push_back(m.meanIndentWidth / 16.0);
    vec.push_back(ratio(m.indentWidth2, m.indentedLines));
    vec.push_back(ratio(m.indentWidth4, m.indentedLines));
    vec.push_back(ratio(m.indentWidth8, m.indentedLines));
    vec.push_back(m.allmanBraceRatio());
    vec.push_back(m.spacedOpRatio());
    vec.push_back(m.spaceAfterCommaRatio());
    vec.push_back(m.spaceAfterKeywordRatio());
    vec.push_back(m.meanLineLength / 80.0);
    vec.push_back(static_cast<double>(m.maxLineLength) / 200.0);
  }

  if (config_.useSyntactic) {
    const ast::TranslationUnit& unit = a.parsed.unit;
    std::map<std::string, std::size_t> stmtCounts;
    std::size_t stmtTotal = 0;
    ast::forEachStmt(unit, [&](const ast::Stmt& stmt) {
      ++stmtCounts[std::string(ast::stmtKindName(stmt))];
      ++stmtTotal;
    });
    std::map<std::string, std::size_t> exprCounts;
    std::size_t exprTotal = 0;
    ast::forEachExpr(unit, [&](const ast::Expr& expr) {
      ++exprCounts[std::string(ast::exprKindName(expr))];
      ++exprTotal;
    });
    for (const std::string& kind : ast::allStmtKindNames()) {
      const auto it = stmtCounts.find(kind);
      vec.push_back(ratio(it == stmtCounts.end() ? 0 : it->second, stmtTotal));
    }
    for (const std::string& kind : ast::allExprKindNames()) {
      const auto it = exprCounts.find(kind);
      vec.push_back(ratio(it == exprCounts.end() ? 0 : it->second, exprTotal));
    }
    vec.push_back(static_cast<double>(ast::maxStmtDepth(unit)) / 10.0);
    vec.push_back(ast::meanStmtDepth(unit) / 5.0);
    vec.push_back(static_cast<double>(unit.functions.size()) / 5.0);
    double paramSum = 0.0;
    for (const ast::Function& fn : unit.functions) {
      paramSum += static_cast<double>(fn.params.size());
    }
    vec.push_back(unit.functions.empty()
                      ? 0.0
                      : static_cast<double>(stmtTotal) /
                            (30.0 * static_cast<double>(unit.functions.size())));
    vec.push_back(unit.functions.empty()
                      ? 0.0
                      : paramSum / static_cast<double>(unit.functions.size()) /
                            4.0);
    vec.push_back(static_cast<double>(unit.aliases.size()));
    vec.push_back(unit.usingNamespaceStd ? 1.0 : 0.0);
    vec.push_back(static_cast<double>(unit.includes.size()) / 6.0);
    const bool bits = std::find(unit.includes.begin(), unit.includes.end(),
                                "bits/stdc++.h") != unit.includes.end();
    vec.push_back(bits ? 1.0 : 0.0);
    for (const double v :
         bigramVocab_.vectorize(ast::stmtKindBigrams(unit))) {
      vec.push_back(v);
    }
  }

  return vec;
}

std::vector<std::vector<double>> FeatureExtractor::transformAll(
    const std::vector<std::string>& sources) const {
  std::vector<std::vector<double>> out;
  out.reserve(sources.size());
  for (const std::string& source : sources) out.push_back(transform(source));
  return out;
}

}  // namespace sca::features
