#include "features/extractor.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "ast/parser.hpp"
#include "ast/visit.hpp"
#include "cache/codec.hpp"
#include "cache/store.hpp"
#include "lexer/layout.hpp"
#include "lexer/lexer.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sca::features {
namespace {

/// Everything the syntactic feature block needs, precomputed from the AST.
/// The AST itself does not serialize losslessly, so the analysis cache
/// stores this flat summary instead: kind counts are aligned to the
/// allStmt/ExprKindNames() tables, doubles are carried verbatim.
struct SyntacticSummary {
  std::vector<std::uint64_t> stmtKindCounts;  // aligned to allStmtKindNames()
  std::uint64_t stmtTotal = 0;
  std::vector<std::uint64_t> exprKindCounts;  // aligned to allExprKindNames()
  std::uint64_t exprTotal = 0;
  std::uint64_t maxDepth = 0;
  double meanDepth = 0.0;
  std::uint64_t functionCount = 0;
  double paramSum = 0.0;
  std::uint64_t aliasCount = 0;
  bool usingNamespaceStd = false;
  std::uint64_t includeCount = 0;
  bool bitsHeader = false;
  std::vector<std::string> bigrams;  // ast::stmtKindBigrams(unit)
};

/// Everything transform() needs, computed once per source. The tokens stay
/// inside their TokenStream (views into its buffer), so a cached analysis
/// holds exactly one allocation for all token text.
struct Analyzed {
  lexer::TokenStream tokens;
  lexer::LayoutMetrics layout;
  SyntacticSummary syntax;
};

SyntacticSummary summarize(const ast::TranslationUnit& unit) {
  SyntacticSummary s;
  // One fused traversal for kind counts, depth stats and bigrams (it used
  // to be four std::function-driven walks over the same tree).
  ast::UnitScan scan = ast::scanUnit(unit);
  s.stmtKindCounts = std::move(scan.stmtKindCounts);
  s.stmtTotal = scan.stmtTotal;
  s.exprKindCounts = std::move(scan.exprKindCounts);
  s.exprTotal = scan.exprTotal;
  s.maxDepth = scan.depth.maxDepth;
  s.meanDepth = scan.depth.mean();
  s.functionCount = unit.functions.size();
  for (const ast::Function& fn : unit.functions) {
    s.paramSum += static_cast<double>(fn.params.size());
  }
  s.aliasCount = unit.aliases.size();
  s.usingNamespaceStd = unit.usingNamespaceStd;
  s.includeCount = unit.includes.size();
  s.bitsHeader = std::find(unit.includes.begin(), unit.includes.end(),
                           "bits/stdc++.h") != unit.includes.end();
  s.bigrams = std::move(scan.bigrams);
  return s;
}

// ---------------------------------------------------- analysis (de)serde --
// Exact binary encoding (cache/codec.hpp): integers and IEEE-754 bit
// patterns, so a restored analysis reproduces every feature double bit for
// bit. Token line/column are NOT persisted — the extractor never reads
// them. The leading version byte plus the kind-table length checks below
// make any schema drift a miss, never a misread.

constexpr std::uint8_t kAnalysisVersion = 1;

std::string serializeAnalysis(const Analyzed& a) {
  cache::ByteWriter w;
  w.u8(kAnalysisVersion);

  w.u32(static_cast<std::uint32_t>(a.tokens.size()));
  for (const lexer::Token& t : a.tokens) {
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.str(t.text);  // views serialize as bytes; format unchanged (v1)
  }

  const lexer::LayoutMetrics& m = a.layout;
  w.u64(m.lineCount);
  w.u64(m.blankLines);
  w.u64(m.commentChars);
  w.u64(m.totalChars);
  w.u64(m.lineComments);
  w.u64(m.blockComments);
  w.u64(m.indentedLines);
  w.u64(m.tabIndentedLines);
  w.f64(m.meanIndentWidth);
  w.u64(m.indentWidth2);
  w.u64(m.indentWidth4);
  w.u64(m.indentWidth8);
  w.u64(m.bracesOwnLine);
  w.u64(m.bracesEndOfLine);
  w.u64(m.spacedBinaryOps);
  w.u64(m.tightBinaryOps);
  w.u64(m.spaceAfterComma);
  w.u64(m.noSpaceAfterComma);
  w.u64(m.spaceAfterKeyword);
  w.u64(m.noSpaceAfterKeyword);
  w.f64(m.meanLineLength);
  w.u64(m.maxLineLength);

  const SyntacticSummary& s = a.syntax;
  w.u32(static_cast<std::uint32_t>(s.stmtKindCounts.size()));
  for (const std::uint64_t c : s.stmtKindCounts) w.u64(c);
  w.u64(s.stmtTotal);
  w.u32(static_cast<std::uint32_t>(s.exprKindCounts.size()));
  for (const std::uint64_t c : s.exprKindCounts) w.u64(c);
  w.u64(s.exprTotal);
  w.u64(s.maxDepth);
  w.f64(s.meanDepth);
  w.u64(s.functionCount);
  w.f64(s.paramSum);
  w.u64(s.aliasCount);
  w.boolean(s.usingNamespaceStd);
  w.u64(s.includeCount);
  w.boolean(s.bitsHeader);
  w.u32(static_cast<std::uint32_t>(s.bigrams.size()));
  for (const std::string& b : s.bigrams) w.str(b);

  return w.take();
}

std::shared_ptr<const Analyzed> deserializeAnalysis(std::string_view bytes) {
  cache::ByteReader r(bytes);
  if (r.u8() != kAnalysisVersion) return nullptr;
  auto a = std::make_shared<Analyzed>();

  const std::uint32_t tokenCount = r.u32();
  if (!r.ok()) return nullptr;
  std::vector<std::pair<lexer::TokenKind, std::string>> parts;
  parts.reserve(tokenCount);
  for (std::uint32_t i = 0; i < tokenCount && r.ok(); ++i) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(lexer::TokenKind::EndOfFile)) {
      return nullptr;
    }
    parts.emplace_back(static_cast<lexer::TokenKind>(kind), r.str());
  }
  if (!r.ok()) return nullptr;
  a->tokens = lexer::TokenStream::fromParts(parts);

  lexer::LayoutMetrics& m = a->layout;
  m.lineCount = r.u64();
  m.blankLines = r.u64();
  m.commentChars = r.u64();
  m.totalChars = r.u64();
  m.lineComments = r.u64();
  m.blockComments = r.u64();
  m.indentedLines = r.u64();
  m.tabIndentedLines = r.u64();
  m.meanIndentWidth = r.f64();
  m.indentWidth2 = r.u64();
  m.indentWidth4 = r.u64();
  m.indentWidth8 = r.u64();
  m.bracesOwnLine = r.u64();
  m.bracesEndOfLine = r.u64();
  m.spacedBinaryOps = r.u64();
  m.tightBinaryOps = r.u64();
  m.spaceAfterComma = r.u64();
  m.noSpaceAfterComma = r.u64();
  m.spaceAfterKeyword = r.u64();
  m.noSpaceAfterKeyword = r.u64();
  m.meanLineLength = r.f64();
  m.maxLineLength = r.u64();

  SyntacticSummary& s = a->syntax;
  const std::uint32_t stmtKinds = r.u32();
  if (!r.ok() || stmtKinds != ast::allStmtKindNames().size()) return nullptr;
  s.stmtKindCounts.resize(stmtKinds);
  for (std::uint32_t i = 0; i < stmtKinds; ++i) s.stmtKindCounts[i] = r.u64();
  s.stmtTotal = r.u64();
  const std::uint32_t exprKinds = r.u32();
  if (!r.ok() || exprKinds != ast::allExprKindNames().size()) return nullptr;
  s.exprKindCounts.resize(exprKinds);
  for (std::uint32_t i = 0; i < exprKinds; ++i) s.exprKindCounts[i] = r.u64();
  s.exprTotal = r.u64();
  s.maxDepth = r.u64();
  s.meanDepth = r.f64();
  s.functionCount = r.u64();
  s.paramSum = r.f64();
  s.aliasCount = r.u64();
  s.usingNamespaceStd = r.boolean();
  s.includeCount = r.u64();
  s.bitsHeader = r.boolean();
  const std::uint32_t bigramCount = r.u32();
  if (!r.ok()) return nullptr;
  s.bigrams.reserve(bigramCount);
  for (std::uint32_t i = 0; i < bigramCount && r.ok(); ++i) {
    s.bigrams.push_back(r.str());
  }

  if (!r.ok() || !r.atEnd()) return nullptr;
  return a;
}

cache::CacheKey analysisKey(const std::string& source) {
  // hi = namespace + format half (size folds in as a cheap discriminator),
  // lo = content fingerprint.
  return cache::CacheKey{
      util::combine64(util::hash64("sca-analysis-v1"), source.size()),
      util::hash64(source)};
}

/// Process-global content-keyed memo of analyses (see extractor.hpp).
/// Bounded: past kMaxEntries the cache is dropped wholesale rather than
/// evicted piecemeal — the working set of one bench run (a few thousand
/// samples) fits comfortably, so overflow only happens across unrelated
/// corpora where stale entries would never hit again anyway.
class AnalysisCache {
 public:
  static constexpr std::size_t kMaxEntries = 32768;

  AnalysisCache() : disk_(cache::DiskCache::processCache()) {}

  std::shared_ptr<const Analyzed> get(const std::string& source) {
    analyzeCalls_.add();
    {
      std::shared_lock lock(mutex_);
      const auto it = entries_.find(source);
      if (it != entries_.end()) {
        hits_.add();
        return it->second;
      }
    }

    // In-memory miss: a disk restore replaces lex+layout+parse outright.
    std::shared_ptr<const Analyzed> analyzed;
    cache::DiskCache* disk = disk_.load(std::memory_order_acquire);
    if (disk != nullptr) {
      if (const std::optional<std::string> blob = disk->get(analysisKey(source))) {
        analyzed = deserializeAnalysis(*blob);
        if (analyzed != nullptr) diskRestores_.add();
      }
    }
    if (analyzed == nullptr) {
      auto fresh = std::make_shared<Analyzed>();
      fresh->tokens = lexer::tokenize(source);
      fresh->layout = lexer::computeLayoutMetrics(source);
      // Parse from the stream we already lexed — tokenizing twice per
      // analysis used to be the second-largest cost in this function.
      fresh->syntax = summarize(ast::parse(fresh->tokens).unit);
      if (disk != nullptr) {
        // Best effort: a failed spill only costs the next process a
        // recompute.
        (void)disk->put(analysisKey(source), serializeAnalysis(*fresh));
        diskSpills_.add();
      }
      analyzed = std::move(fresh);
    }

    std::unique_lock lock(mutex_);
    misses_.add();
    if (entries_.size() >= kMaxEntries) entries_.clear();
    return entries_.try_emplace(source, std::move(analyzed)).first->second;
  }

  AnalysisCacheStats stats() const {
    auto& registry = obs::MetricsRegistry::global();
    std::shared_lock lock(mutex_);
    AnalysisCacheStats out;
    out.hits = registry.counterValue("features_cache_hits");
    out.misses = registry.counterValue("features_cache_misses");
    out.entries = entries_.size();
    out.diskRestores = registry.counterValue("features_cache_restores");
    out.diskSpills = registry.counterValue("features_cache_spills");
    return out;
  }

  void clear() {
    std::unique_lock lock(mutex_);
    entries_.clear();
    // Re-base rather than zero the shards: resetting must not race with a
    // concurrent get() bumping its own thread's cells.
    auto& registry = obs::MetricsRegistry::global();
    registry.markResetCounter("features_cache_hits");
    registry.markResetCounter("features_cache_misses");
    registry.markResetCounter("features_cache_restores");
    registry.markResetCounter("features_cache_spills");
  }

  void setDisk(cache::DiskCache* store) {
    disk_.store(store, std::memory_order_release);
  }

  static AnalysisCache& global() {
    static AnalysisCache instance;
    return instance;
  }

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Analyzed>> entries_;
  std::atomic<cache::DiskCache*> disk_{nullptr};
  // Total analyze() calls are event-deterministic (stable); the hit/miss
  // split is not — two threads can both miss one key before either inserts
  // it — and the disk split additionally depends on what previous processes
  // left behind, so all four are kRuntime, kept out of the stable section.
  obs::Counter analyzeCalls_ =
      obs::MetricsRegistry::global().counter("features_analyze_calls");
  obs::Counter hits_ = obs::MetricsRegistry::global().counter(
      "features_cache_hits", obs::Stability::kRuntime);
  obs::Counter misses_ = obs::MetricsRegistry::global().counter(
      "features_cache_misses", obs::Stability::kRuntime);
  obs::Counter diskRestores_ = obs::MetricsRegistry::global().counter(
      "features_cache_restores", obs::Stability::kRuntime);
  obs::Counter diskSpills_ = obs::MetricsRegistry::global().counter(
      "features_cache_spills", obs::Stability::kRuntime);
};

std::shared_ptr<const Analyzed> analyze(const std::string& source) {
  return AnalysisCache::global().get(source);
}

double ratio(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// Naming-convention counters over identifier tokens of length >= 2.
struct NamingCounts {
  std::size_t snake = 0, camel = 0, pascal = 0, lower = 0, hungarian = 0;
  std::size_t total = 0;
  double meanLength = 0.0;
  double maxLength = 0.0;
  std::size_t distinct = 0;
};

// Identifiers are ASCII by construction (the lexer's ident class), so
// plain range checks replace the locale-routed <cctype> calls here.
constexpr bool isAsciiUpper(char c) { return c >= 'A' && c <= 'Z'; }
constexpr bool isAsciiLower(char c) { return c >= 'a' && c <= 'z'; }

NamingCounts countNaming(const lexer::TokenStream& tokens) {
  NamingCounts c;
  double lengthSum = 0.0;
  // Views borrow from `tokens`, which outlives this function — sorting
  // views for the distinct count never copies a name.
  std::vector<std::string_view> seen;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    const std::string_view name = t.text;
    seen.push_back(name);
    lengthSum += static_cast<double>(name.size());
    c.maxLength = std::max(c.maxLength, static_cast<double>(name.size()));
    ++c.total;
    if (name.size() < 2) continue;
    const bool hasUnderscore = name.find('_') != std::string::npos;
    const bool startsUpper = isAsciiUpper(name[0]);
    bool innerUpper = false;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (isAsciiUpper(name[i])) innerUpper = true;
    }
    constexpr std::string_view kHungarianPrefixes = "ndbcsvf";
    if (name.size() >= 3 &&
        kHungarianPrefixes.find(name[0]) != std::string_view::npos &&
        isAsciiUpper(name[1])) {
      ++c.hungarian;
    } else if (hasUnderscore) {
      ++c.snake;
    } else if (startsUpper) {
      ++c.pascal;
    } else if (innerUpper) {
      ++c.camel;
    } else {
      ++c.lower;
    }
  }
  if (c.total > 0) c.meanLength = lengthSum / static_cast<double>(c.total);
  std::sort(seen.begin(), seen.end());
  c.distinct = static_cast<std::size_t>(
      std::unique(seen.begin(), seen.end()) - seen.begin());
  return c;
}

}  // namespace

std::string_view familyName(FeatureFamily family) noexcept {
  switch (family) {
    case FeatureFamily::Lexical: return "lexical";
    case FeatureFamily::Layout: return "layout";
    case FeatureFamily::Syntactic: return "syntactic";
  }
  return "?";
}

namespace {

/// identifierTerms over an existing token stream (skips re-tokenizing).
/// Splits each identifier with util::splitIdentifier's exact boundary rules
/// but appends the lowered words straight into the result, skipping the
/// intermediate per-identifier vector the util function returns.
std::vector<std::string> identifierTermsFromTokens(
    const lexer::TokenStream& tokens) {
  std::vector<std::string> terms;
  std::string word;
  auto flush = [&] {
    if (!word.empty()) {
      terms.push_back(word);
      word.clear();
    }
  };
  bool lastUpper = false;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    const std::string_view name = t.text;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      if (c == '_') {
        flush();
        continue;
      }
      const bool upper = isAsciiUpper(c);
      if (upper && !word.empty()) {
        const bool nextLower = i + 1 < name.size() && isAsciiLower(name[i + 1]);
        if (!lastUpper || nextLower) flush();
      }
      word.push_back(upper ? static_cast<char>(c + 32) : c);
      lastUpper = upper;
    }
    flush();
  }
  return terms;
}

/// Allocation-free equivalent of
/// vocab.vectorize(identifierTermsFromTokens(tokens)): identifier words are
/// split into one reused buffer and looked up as views, never materialized
/// into a per-call std::vector<std::string>. The math matches
/// Vocabulary::vectorize exactly — +1.0 per in-vocabulary term, then an L1
/// normalization by the TOTAL term count (out-of-vocabulary included), with
/// an all-zeros vector for a termless stream.
std::vector<double> vectorizeIdentifierTerms(const Vocabulary& vocab,
                                             const lexer::TokenStream& tokens) {
  std::vector<double> vec(vocab.size(), 0.0);
  std::size_t termCount = 0;
  std::string word;
  auto flush = [&] {
    if (word.empty()) return;
    ++termCount;
    if (const auto idx = vocab.indexOf(word)) vec[*idx] += 1.0;
    word.clear();
  };
  // Word boundaries replicate util::splitIdentifier: '_' separators plus
  // camelCase transitions, where an acronym run only breaks before its
  // trailing lowercase ("HTTPServer" -> "http", "server"). `lastUpper`
  // carries the original case of word.back() since the buffer stores the
  // already-lowered character.
  bool lastUpper = false;
  for (const lexer::Token& t : tokens) {
    if (!t.is(lexer::TokenKind::Identifier)) continue;
    const std::string_view name = t.text;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      if (c == '_') {
        flush();
        continue;
      }
      const bool upper = isAsciiUpper(c);
      if (upper && !word.empty()) {
        const bool nextLower = i + 1 < name.size() && isAsciiLower(name[i + 1]);
        if (!lastUpper || nextLower) flush();
      }
      word.push_back(upper ? static_cast<char>(c + 32) : c);
      lastUpper = upper;
    }
    flush();
  }
  if (termCount > 0) {
    const double norm = static_cast<double>(termCount);
    for (double& v : vec) v /= norm;
  }
  return vec;
}

}  // namespace

std::vector<std::string> identifierTerms(const std::string& source) {
  const lexer::TokenStream stream = lexer::tokenize(source);
  return identifierTermsFromTokens(stream);
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config) : config_(config) {
  buildSchema();  // fixed columns are valid even before fit()
}

FeatureExtractor::FeatureExtractor(ExtractorConfig config,
                                   Vocabulary identifierVocab,
                                   Vocabulary bigramVocab)
    : config_(config),
      identifierVocab_(std::move(identifierVocab)),
      bigramVocab_(std::move(bigramVocab)) {
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::fit(const std::vector<std::string>& sources) {
  // The batch lex->parse->summarize work is the pipeline's "analysis"
  // phase (one scope per batch call, on the calling thread, so the
  // CI slowdown-injection hook fires O(1) times per run).
  runtime::PhaseTimer timer("analysis");
  // Per-source docs come straight off the shared analysis cache, in
  // parallel; vocabulary fitting itself stays serial (term counting is
  // order-independent but cheap).
  struct Docs {
    std::vector<std::string> identifiers;
    std::vector<std::string> bigrams;
  };
  std::vector<Docs> docs = runtime::parallelMap<Docs>(
      sources.size(),
      [&](std::size_t i) {
        const std::shared_ptr<const Analyzed> a = analyze(sources[i]);
        return Docs{identifierTermsFromTokens(a->tokens),
                    a->syntax.bigrams};
      },
      runtime::ParallelOptions{.maxWorkers = 0, .grain = 8});

  std::vector<std::vector<std::string>> identifierDocs;
  std::vector<std::vector<std::string>> bigramDocs;
  identifierDocs.reserve(sources.size());
  bigramDocs.reserve(sources.size());
  for (Docs& d : docs) {
    identifierDocs.push_back(std::move(d.identifiers));
    bigramDocs.push_back(std::move(d.bigrams));
  }
  identifierVocab_ =
      Vocabulary::fit(identifierDocs, config_.identifierVocabulary);
  bigramVocab_ = Vocabulary::fit(bigramDocs, config_.bigramVocabulary);
  buildSchema();
  fitted_ = true;
}

void FeatureExtractor::buildSchema() {
  names_.clear();
  families_.clear();
  auto add = [&](FeatureFamily family, std::string name) {
    families_.push_back(family);
    names_.push_back(std::move(name));
  };

  if (config_.useLexical) {
    for (const std::string& kw : lexer::cppKeywords()) {
      add(FeatureFamily::Lexical, "kw:" + kw);
    }
    add(FeatureFamily::Lexical, "lex:ident-mean-len");
    add(FeatureFamily::Lexical, "lex:ident-max-len");
    add(FeatureFamily::Lexical, "lex:ident-distinct-ratio");
    add(FeatureFamily::Lexical, "lex:name-snake");
    add(FeatureFamily::Lexical, "lex:name-camel");
    add(FeatureFamily::Lexical, "lex:name-pascal");
    add(FeatureFamily::Lexical, "lex:name-lower");
    add(FeatureFamily::Lexical, "lex:name-hungarian");
    add(FeatureFamily::Lexical, "lex:int-literals");
    add(FeatureFamily::Lexical, "lex:float-literals");
    add(FeatureFamily::Lexical, "lex:string-literals");
    add(FeatureFamily::Lexical, "lex:char-literals");
    add(FeatureFamily::Lexical, "lex:preprocessor-lines");
    for (const std::string& term : identifierVocab_.terms()) {
      add(FeatureFamily::Lexical, "uni:" + term);
    }
  }
  if (config_.useLayout) {
    add(FeatureFamily::Layout, "lay:line-count");
    add(FeatureFamily::Layout, "lay:blank-ratio");
    add(FeatureFamily::Layout, "lay:comment-char-ratio");
    add(FeatureFamily::Layout, "lay:line-comments-per-line");
    add(FeatureFamily::Layout, "lay:block-comments-per-line");
    add(FeatureFamily::Layout, "lay:tab-indent-ratio");
    add(FeatureFamily::Layout, "lay:mean-indent");
    add(FeatureFamily::Layout, "lay:indent2-ratio");
    add(FeatureFamily::Layout, "lay:indent4-ratio");
    add(FeatureFamily::Layout, "lay:indent8-ratio");
    add(FeatureFamily::Layout, "lay:allman-ratio");
    add(FeatureFamily::Layout, "lay:spaced-ops-ratio");
    add(FeatureFamily::Layout, "lay:space-after-comma-ratio");
    add(FeatureFamily::Layout, "lay:space-after-keyword-ratio");
    add(FeatureFamily::Layout, "lay:mean-line-length");
    add(FeatureFamily::Layout, "lay:max-line-length");
  }
  if (config_.useSyntactic) {
    for (const std::string& kind : ast::allStmtKindNames()) {
      add(FeatureFamily::Syntactic, "stmt:" + kind);
    }
    for (const std::string& kind : ast::allExprKindNames()) {
      add(FeatureFamily::Syntactic, "expr:" + kind);
    }
    add(FeatureFamily::Syntactic, "syn:max-depth");
    add(FeatureFamily::Syntactic, "syn:mean-depth");
    add(FeatureFamily::Syntactic, "syn:function-count");
    add(FeatureFamily::Syntactic, "syn:stmts-per-function");
    add(FeatureFamily::Syntactic, "syn:mean-params");
    add(FeatureFamily::Syntactic, "syn:alias-count");
    add(FeatureFamily::Syntactic, "syn:using-namespace-std");
    add(FeatureFamily::Syntactic, "syn:include-count");
    add(FeatureFamily::Syntactic, "syn:bits-header");
    for (const std::string& term : bigramVocab_.terms()) {
      add(FeatureFamily::Syntactic, "bi:" + term);
    }
  }
}

namespace {

/// The projection step shared by transform() and transformUncached():
/// analysis -> feature vector, using only the extractor's public schema
/// accessors. Where the analysis came from (cache, disk, fresh) cannot
/// change a single bit of the output.
std::vector<double> projectAnalyzed(const FeatureExtractor& ex,
                                    const Analyzed& a) {
  const ExtractorConfig& config = ex.config();
  std::vector<double> vec;
  vec.reserve(ex.dimension());

  // Token tallies shared by the lexical block. Keyword columns tally into
  // a fixed array indexed by cppKeywordIndex (same order as cppKeywords(),
  // so the emitted columns are unchanged) — no string-keyed map on the
  // per-sample path.
  std::size_t tokenCount = 0;
  std::vector<std::size_t> keywordCounts(lexer::cppKeywordCount(), 0);
  std::size_t intLits = 0, floatLits = 0, stringLits = 0, charLits = 0;
  std::size_t preprocessor = 0;
  for (const lexer::Token& t : a.tokens) {
    if (t.is(lexer::TokenKind::EndOfFile)) continue;
    ++tokenCount;
    switch (t.kind) {
      case lexer::TokenKind::Keyword: {
        // Guard: a cache-restored stream could in principle mark a
        // non-keyword text as Keyword; out-of-table just doesn't count.
        const std::size_t i = lexer::cppKeywordIndex(t.text);
        if (i < keywordCounts.size()) ++keywordCounts[i];
        break;
      }
      case lexer::TokenKind::IntLiteral: ++intLits; break;
      case lexer::TokenKind::FloatLiteral: ++floatLits; break;
      case lexer::TokenKind::StringLiteral: ++stringLits; break;
      case lexer::TokenKind::CharLiteral: ++charLits; break;
      case lexer::TokenKind::Preprocessor: ++preprocessor; break;
      default: break;
    }
  }

  if (config.useLexical) {
    for (const std::size_t count : keywordCounts) {
      vec.push_back(ratio(count, tokenCount));
    }
    const NamingCounts naming = countNaming(a.tokens);
    vec.push_back(naming.meanLength / 16.0);
    vec.push_back(naming.maxLength / 32.0);
    vec.push_back(ratio(naming.distinct, naming.total));
    const std::size_t classified = naming.snake + naming.camel +
                                   naming.pascal + naming.lower +
                                   naming.hungarian;
    vec.push_back(ratio(naming.snake, classified));
    vec.push_back(ratio(naming.camel, classified));
    vec.push_back(ratio(naming.pascal, classified));
    vec.push_back(ratio(naming.lower, classified));
    vec.push_back(ratio(naming.hungarian, classified));
    vec.push_back(ratio(intLits, tokenCount));
    vec.push_back(ratio(floatLits, tokenCount));
    vec.push_back(ratio(stringLits, tokenCount));
    vec.push_back(ratio(charLits, tokenCount));
    vec.push_back(ratio(preprocessor, a.layout.lineCount));
    for (const double v :
         vectorizeIdentifierTerms(ex.identifierVocabulary(), a.tokens)) {
      vec.push_back(v);
    }
  }

  if (config.useLayout) {
    const lexer::LayoutMetrics& m = a.layout;
    vec.push_back(std::log1p(static_cast<double>(m.lineCount)) / 6.0);
    vec.push_back(m.blankLineRatio());
    vec.push_back(m.commentCharRatio());
    vec.push_back(ratio(m.lineComments, m.lineCount));
    vec.push_back(ratio(m.blockComments, m.lineCount));
    vec.push_back(m.tabIndentRatio());
    vec.push_back(m.meanIndentWidth / 16.0);
    vec.push_back(ratio(m.indentWidth2, m.indentedLines));
    vec.push_back(ratio(m.indentWidth4, m.indentedLines));
    vec.push_back(ratio(m.indentWidth8, m.indentedLines));
    vec.push_back(m.allmanBraceRatio());
    vec.push_back(m.spacedOpRatio());
    vec.push_back(m.spaceAfterCommaRatio());
    vec.push_back(m.spaceAfterKeywordRatio());
    vec.push_back(m.meanLineLength / 80.0);
    vec.push_back(static_cast<double>(m.maxLineLength) / 200.0);
  }

  if (config.useSyntactic) {
    const SyntacticSummary& s = a.syntax;
    for (const std::uint64_t count : s.stmtKindCounts) {
      vec.push_back(ratio(count, s.stmtTotal));
    }
    for (const std::uint64_t count : s.exprKindCounts) {
      vec.push_back(ratio(count, s.exprTotal));
    }
    vec.push_back(static_cast<double>(s.maxDepth) / 10.0);
    vec.push_back(s.meanDepth / 5.0);
    vec.push_back(static_cast<double>(s.functionCount) / 5.0);
    vec.push_back(s.functionCount == 0
                      ? 0.0
                      : static_cast<double>(s.stmtTotal) /
                            (30.0 * static_cast<double>(s.functionCount)));
    vec.push_back(s.functionCount == 0
                      ? 0.0
                      : s.paramSum / static_cast<double>(s.functionCount) /
                            4.0);
    vec.push_back(static_cast<double>(s.aliasCount));
    vec.push_back(s.usingNamespaceStd ? 1.0 : 0.0);
    vec.push_back(static_cast<double>(s.includeCount) / 6.0);
    vec.push_back(s.bitsHeader ? 1.0 : 0.0);
    for (const double v : ex.bigramVocabulary().vectorize(s.bigrams)) {
      vec.push_back(v);
    }
  }

  return vec;
}

}  // namespace

std::vector<double> FeatureExtractor::transform(
    const std::string& source) const {
  return projectAnalyzed(*this, *analyze(source));
}

std::vector<double> FeatureExtractor::transformUncached(
    const std::string& source) const {
  // How many samples run uncached depends on resume history (a resumed
  // corpus build re-renders only missing shards), so the counter is
  // runtime-class — it must not perturb stable digests across resumes.
  static obs::Counter uncached = obs::MetricsRegistry::global().counter(
      "features_uncached_transforms", obs::Stability::kRuntime);
  uncached.add();
  Analyzed a;
  a.tokens = lexer::tokenize(source);
  a.layout = lexer::computeLayoutMetrics(source);
  a.syntax = summarize(ast::parse(a.tokens).unit);
  return projectAnalyzed(*this, a);
}

std::vector<std::vector<double>> FeatureExtractor::transformAll(
    const std::vector<std::string>& sources) const {
  runtime::PhaseTimer timer("analysis");
  return runtime::parallelMap<std::vector<double>>(
      sources.size(), [&](std::size_t i) { return transform(sources[i]); },
      runtime::ParallelOptions{.maxWorkers = 0, .grain = 8});
}

AnalysisCacheStats analysisCacheStats() {
  return AnalysisCache::global().stats();
}

void clearAnalysisCache() { AnalysisCache::global().clear(); }

void setAnalysisDiskCache(cache::DiskCache* store) {
  AnalysisCache::global().setDisk(store);
}

}  // namespace sca::features
