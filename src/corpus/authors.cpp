#include "corpus/authors.hpp"

#include "style/archetypes.hpp"
#include "util/rng.hpp"

namespace sca::corpus {

std::vector<Author> makeAuthorPopulation(int year, std::size_t count) {
  util::Rng root(util::combine64(util::hash64("gcj-author-population"),
                                 static_cast<std::uint64_t>(year)));
  std::vector<Author> authors;
  authors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng authorRng = root.derive(static_cast<std::uint64_t>(i));
    Author author;
    author.id = static_cast<int>(i);
    author.name = "A" + std::to_string(i);
    author.profile = style::sampleProfile(authorRng);
    // Persistent vocabulary habits (see StyleProfile::namingSeed).
    author.profile.namingSeed = util::combine64(
        util::hash64("author-naming"),
        util::combine64(static_cast<std::uint64_t>(year), i));
    authors.push_back(std::move(author));
  }

  // Style twins: an LLM trained on human corpora emits styles its training
  // authors actually write, so a realistically large population contains
  // authors whose style coincides with each archetype. One twin per ~17
  // authors (a 204-author year gets all 12). Twin positions are scattered
  // deterministically and differ by year.
  const std::size_t twinCount =
      std::min(style::kArchetypeCount, count / 17);
  util::Rng placement = root.derive("twin-placement");
  std::vector<std::size_t> positions =
      placement.sampleIndices(count, twinCount);
  for (std::size_t k = 0; k < twinCount; ++k) {
    style::StyleProfile twin = style::archetypePool()[k];
    // Humanize: a real author shares the archetype's signature dimensions
    // (naming, IO, structure) but is not machine-perfect about layout.
    // Flipping two layout habits keeps the twin by far the nearest author
    // to its archetype (the oracle's label anchor) while keeping the
    // "LLM accent" region free of human training samples (what the binary
    // classifier of Table X keys on).
    util::Rng quirkRng = placement.derive(static_cast<std::uint64_t>(k));
    switch (quirkRng.uniformInt(0, 2)) {
      case 0: twin.indentWidth = 2; break;
      case 1: twin.useTabs = true; break;
      default: twin.indentWidth = 8; break;
    }
    if (quirkRng.bernoulli(0.5)) {
      twin.spaceAfterKeyword = !twin.spaceAfterKeyword;
    } else {
      twin.spaceAfterComma = !twin.spaceAfterComma;
    }
    // A twin is still a human: persistent vocabulary habits.
    twin.namingSeed = util::combine64(
        util::hash64("twin-naming"),
        util::combine64(static_cast<std::uint64_t>(year), k));
    authors[positions[k]].profile = twin;
  }
  return authors;
}

}  // namespace sca::corpus
