// Author population: 204 synthetic GCJ participants per simulated year,
// each with a persistent StyleProfile (Table I's corpus).
#pragma once

#include <string>
#include <vector>

#include "style/profile.hpp"

namespace sca::corpus {

struct Author {
  int id = 0;            // 0-based within the year
  std::string name;      // "A0".."A203", matching the paper's label style
  style::StyleProfile profile;
};

/// Builds the deterministic author population of a year. Two calls with the
/// same (year, count) return identical populations; different years differ.
[[nodiscard]] std::vector<Author> makeAuthorPopulation(int year,
                                                       std::size_t count);

}  // namespace sca::corpus
