#include "corpus/dataset.hpp"

#include <atomic>
#include <filesystem>
#include <span>

#include "features/extractor.hpp"
#include "ml/matrix.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "style/apply.hpp"
#include "style/infer.hpp"
#include "util/rng.hpp"

namespace sca::corpus {

/// Real authors are not machines: individual solutions deviate from the
/// author's habitual style on the odd dimension (an unusual one-liner, a
/// skipped comment, a different loop form). This per-sample wobble is what
/// keeps the simulated attribution task at the paper's difficulty level
/// (fold accuracies in the 80-95% band rather than near-perfect).
constexpr double kStyleWobble = 0.025;

std::string renderSolution(const Author& author, const Challenge& challenge,
                           int year, int challengeIndex) {
  // Per-sample stream: naming synonym draws and comment placement vary a
  // little across an author's challenges (as they do for real authors),
  // while profile-level dimensions stay fixed up to the wobble.
  util::Rng rng(util::combine64(
      util::hash64("gcj-sample"),
      util::combine64(static_cast<std::uint64_t>(year),
                      util::combine64(static_cast<std::uint64_t>(author.id),
                                      static_cast<std::uint64_t>(challengeIndex)))));
  util::Rng wobbleRng = rng.derive("wobble");
  const style::StyleProfile sampleProfile =
      style::mutateProfile(author.profile, wobbleRng, kStyleWobble);
  return style::applyStyle(challenge.ir, sampleProfile, rng);
}

YearDataset buildYearDataset(int year, std::size_t authorCount) {
  YearDataset ds;
  ds.year = year;
  ds.authors = makeAuthorPopulation(year, authorCount);
  ds.challenges = challengesForYear(year);
  ds.samples.reserve(ds.authors.size() * ds.challenges.size());
  for (const Author& author : ds.authors) {
    for (std::size_t c = 0; c < ds.challenges.size(); ++c) {
      CodeSample sample;
      sample.source = renderSolution(author, *ds.challenges[c], year,
                                     static_cast<int>(c));
      sample.authorId = author.id;
      sample.challengeIndex = static_cast<int>(c);
      sample.origin = "human";
      ds.samples.push_back(std::move(sample));
    }
  }
  return ds;
}

// ----------------------------------------------------- out-of-core scale --

namespace {

namespace fs = std::filesystem;

/// Everything the final bytes depend on, folded into one pin. The shard
/// layout is deliberately NOT part of it: the same (extractor, year,
/// authors) must produce the same final file no matter how generation was
/// sharded or resumed.
std::uint64_t extractorSchemaHash(const features::FeatureExtractor& ex) {
  std::uint64_t h = util::hash64("sca-extractor-schema-v1");
  h = util::combine64(h, ex.dimension());
  // Feature names embed the frozen vocabularies ("uni:" / "bi:" columns),
  // so hashing the schema covers them too.
  for (const std::string& name : ex.featureNames()) {
    h = util::combine64(h, util::hash64(name));
  }
  return h;
}

std::string segmentPath(const std::string& outDir, int year,
                        std::size_t beginAuthor, std::size_t endAuthor) {
  return outDir + "/seg_y" + std::to_string(year) + "_a" +
         std::to_string(beginAuthor) + "_" + std::to_string(endAuthor) +
         ".mtx";
}

std::string finalMatrixPath(const std::string& outDir, int year,
                            std::size_t authorCount) {
  return outDir + "/year_" + std::to_string(year) + "_authors_" +
         std::to_string(authorCount) + ".mtx";
}

}  // namespace

std::uint64_t yearMatrixMetaHash(const features::FeatureExtractor& extractor,
                                 int year, std::size_t authorCount) {
  return util::combine64(
      util::hash64("sca-corpus-matrix-v1"),
      util::combine64(static_cast<std::uint64_t>(year),
                      util::combine64(authorCount,
                                      extractorSchemaHash(extractor))));
}

util::Result<ScaleBuildResult> buildYearMatrix(
    const features::FeatureExtractor& extractor, const ScaleConfig& config) {
  if (config.outDir.empty()) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "buildYearMatrix: outDir required");
  }
  if (config.authorCount == 0 || config.shardSize == 0) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "buildYearMatrix: authorCount/shardSize must be > 0");
  }
  const std::vector<const Challenge*> challenges =
      challengesForYear(config.year);
  const std::size_t perAuthor = challenges.size();
  const std::size_t rows = config.authorCount * perAuthor;
  const std::size_t cols = extractor.dimension();
  const std::uint64_t finalMeta =
      yearMatrixMetaHash(extractor, config.year, config.authorCount);
  const std::string finalPath =
      finalMatrixPath(config.outDir, config.year, config.authorCount);

  std::error_code ec;
  fs::create_directories(config.outDir, ec);

  ScaleBuildResult result;
  result.matrixPath = finalPath;
  result.rows = rows;
  result.cols = cols;
  result.metaHash = finalMeta;
  result.shardCount =
      (config.authorCount + config.shardSize - 1) / config.shardSize;

  const auto removeSegments = [&] {
    std::error_code removeEc;
    for (std::size_t shard = 0; shard < result.shardCount; ++shard) {
      const std::size_t beginAuthor = shard * config.shardSize;
      const std::size_t endAuthor =
          std::min(config.authorCount, beginAuthor + config.shardSize);
      fs::remove(
          segmentPath(config.outDir, config.year, beginAuthor, endAuthor),
          removeEc);
    }
  };

  // A finished final file short-circuits everything (including segment
  // cleanup a previous crash may have skipped).
  if (auto done = ml::MatrixFile::open(finalPath, finalMeta);
      done.ok() && done.value().rows() == rows) {
    result.reusedFinal = true;
    removeSegments();
    return result;
  }

  // How much work this run does depends on what a previous (possibly
  // crashed) run left behind — runtime-class by definition.
  static obs::Counter shardsBuilt = obs::MetricsRegistry::global().counter(
      "corpus_shards_built", obs::Stability::kRuntime);
  static obs::Counter shardsResumed = obs::MetricsRegistry::global().counter(
      "corpus_shards_resumed", obs::Stability::kRuntime);

  const std::vector<Author> authors =
      makeAuthorPopulation(config.year, config.authorCount);

  // Phase 1: render + extract, one segment per author-range shard, in
  // parallel. Segment bytes depend only on the shard's author range, so a
  // reusable segment from a crashed run is byte-equal to a rebuilt one.
  std::atomic<std::size_t> fresh{0};
  std::atomic<std::size_t> resumed{0};
  std::atomic<bool> crashed{false};
  std::vector<util::Status> shardStatus(result.shardCount);
  runtime::parallelFor(0, result.shardCount, [&](std::size_t shard) {
    const std::size_t beginAuthor = shard * config.shardSize;
    const std::size_t endAuthor =
        std::min(config.authorCount, beginAuthor + config.shardSize);
    const std::string segPath =
        segmentPath(config.outDir, config.year, beginAuthor, endAuthor);
    const std::uint64_t segMeta =
        util::combine64(finalMeta, util::combine64(beginAuthor, endAuthor));
    const std::size_t segRows = (endAuthor - beginAuthor) * perAuthor;
    if (auto existing = ml::MatrixFile::open(segPath, segMeta);
        existing.ok() && existing.value().rows() == segRows) {
      resumed.fetch_add(1, std::memory_order_relaxed);
      shardsResumed.add();
      return;
    }
    if (crashed.load(std::memory_order_relaxed)) return;

    ml::MatrixWriter writer(cols, segMeta);
    for (std::size_t a = beginAuthor; a < endAuthor; ++a) {
      for (std::size_t c = 0; c < perAuthor; ++c) {
        const std::string source =
            renderSolution(authors[a], *challenges[c], config.year,
                           static_cast<int>(c));
        // Cache-bypassing extraction: each of the 10^5+ sources is seen
        // exactly once; memoizing them would hoard the matrix in RAM.
        writer.appendRow(extractor.transformUncached(source),
                         authors[a].id, static_cast<int>(c));
      }
    }
    shardStatus[shard] = writer.finish(segPath);
    if (!shardStatus[shard].isOk()) return;
    shardsBuilt.add();
    const std::size_t built = fresh.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config.crashAfterShards > 0 && built >= config.crashAfterShards) {
      crashed.store(true, std::memory_order_relaxed);
    }
  });
  result.freshShards = fresh.load();
  result.resumedShards = resumed.load();
  for (const util::Status& s : shardStatus) {
    if (!s.isOk()) return s;
  }
  if (crashed.load()) {
    return util::Status(util::StatusCode::kInternal,
                        "buildYearMatrix: injected crash after " +
                            std::to_string(result.freshShards) + " shards");
  }

  // Phase 2: deterministic merge — segments streamed in author order into
  // the final file, bounded by one row block regardless of matrix size.
  ml::MatrixStreamWriter merged(finalPath, rows, cols, finalMeta);
  for (std::size_t shard = 0; shard < result.shardCount; ++shard) {
    const std::size_t beginAuthor = shard * config.shardSize;
    const std::size_t endAuthor =
        std::min(config.authorCount, beginAuthor + config.shardSize);
    const std::uint64_t segMeta =
        util::combine64(finalMeta, util::combine64(beginAuthor, endAuthor));
    auto seg = ml::MatrixFile::open(
        segmentPath(config.outDir, config.year, beginAuthor, endAuthor),
        segMeta);
    if (!seg.ok()) return seg.status();
    const ml::MatrixFile& file = seg.value();
    if (file.rows() != (endAuthor - beginAuthor) * perAuthor ||
        file.cols() != cols) {
      return util::Status(util::StatusCode::kDataLoss,
                          "buildYearMatrix: segment shape mismatch: " +
                              file.path());
    }
    constexpr std::size_t kMergeBlockRows = 1024;
    std::vector<std::int32_t> labels;
    std::vector<std::int32_t> groups;
    for (std::size_t begin = 0; begin < file.rows();
         begin += kMergeBlockRows) {
      const std::size_t end =
          std::min(file.rows(), begin + kMergeBlockRows);
      labels.clear();
      groups.clear();
      for (std::size_t i = begin; i < end; ++i) {
        labels.push_back(file.label(i));
        groups.push_back(file.group(i));
      }
      // Rows are contiguous row-major in the mapping, so one span covers
      // the whole block.
      const std::span<const double> block(file.row(begin).data(),
                                          (end - begin) * cols);
      if (auto s = merged.appendRows(block, labels, groups); !s.isOk()) {
        return s;
      }
    }
    file.dropResidency();
  }
  if (auto s = merged.finish(); !s.isOk()) return s;

  // Segments are now redundant; a crash between finish() and here only
  // leaves garbage the next run's short-circuit path cleans up.
  removeSegments();
  return result;
}

}  // namespace sca::corpus
