#include "corpus/dataset.hpp"

#include "style/apply.hpp"
#include "style/infer.hpp"
#include "util/rng.hpp"

namespace sca::corpus {

/// Real authors are not machines: individual solutions deviate from the
/// author's habitual style on the odd dimension (an unusual one-liner, a
/// skipped comment, a different loop form). This per-sample wobble is what
/// keeps the simulated attribution task at the paper's difficulty level
/// (fold accuracies in the 80-95% band rather than near-perfect).
constexpr double kStyleWobble = 0.025;

std::string renderSolution(const Author& author, const Challenge& challenge,
                           int year, int challengeIndex) {
  // Per-sample stream: naming synonym draws and comment placement vary a
  // little across an author's challenges (as they do for real authors),
  // while profile-level dimensions stay fixed up to the wobble.
  util::Rng rng(util::combine64(
      util::hash64("gcj-sample"),
      util::combine64(static_cast<std::uint64_t>(year),
                      util::combine64(static_cast<std::uint64_t>(author.id),
                                      static_cast<std::uint64_t>(challengeIndex)))));
  util::Rng wobbleRng = rng.derive("wobble");
  const style::StyleProfile sampleProfile =
      style::mutateProfile(author.profile, wobbleRng, kStyleWobble);
  return style::applyStyle(challenge.ir, sampleProfile, rng);
}

YearDataset buildYearDataset(int year, std::size_t authorCount) {
  YearDataset ds;
  ds.year = year;
  ds.authors = makeAuthorPopulation(year, authorCount);
  ds.challenges = challengesForYear(year);
  ds.samples.reserve(ds.authors.size() * ds.challenges.size());
  for (const Author& author : ds.authors) {
    for (std::size_t c = 0; c < ds.challenges.size(); ++c) {
      CodeSample sample;
      sample.source = renderSolution(author, *ds.challenges[c], year,
                                     static_cast<int>(c));
      sample.authorId = author.id;
      sample.challengeIndex = static_cast<int>(c);
      sample.origin = "human";
      ds.samples.push_back(std::move(sample));
    }
  }
  return ds;
}

}  // namespace sca::corpus
