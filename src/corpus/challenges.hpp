// Challenge catalogue: the stand-in for Google Code Jam 2017-2019.
//
// Each challenge is a small algorithmic problem with a canonical solution
// expressed as an AST "IR" in neutral snake_case style. Authors (and the
// synthetic LLM) never emit this IR directly — it is always materialized
// through a StyleProfile, which is what creates the per-author stylistic
// variation the paper's attribution models consume.
//
// The catalogue holds 12 problems; each simulated GCJ year draws 8 of them
// (offset by year), mirroring Table I's "8 challenges per year".
#pragma once

#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace sca::corpus {

struct Challenge {
  std::string id;         // short slug, e.g. "race"
  std::string title;      // human-readable name
  std::string statement;  // one-paragraph problem statement
  ast::TranslationUnit ir;
};

/// The full 12-problem catalogue (built once, deep-copied on access).
[[nodiscard]] const std::vector<Challenge>& catalogue();

/// The 8 challenges of a simulated year (2017, 2018 or 2019); stable.
[[nodiscard]] std::vector<const Challenge*> challengesForYear(int year);

/// Looks a challenge up by slug; throws std::out_of_range if absent.
[[nodiscard]] const Challenge& challengeById(const std::string& id);

/// The canonical solution of the paper's Figure 3 (the horse-race problem),
/// rendered in the figure's original style. Used by the figure benches.
[[nodiscard]] const Challenge& figure3Challenge();

}  // namespace sca::corpus
