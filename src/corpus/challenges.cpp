#include "corpus/challenges.hpp"

#include <stdexcept>
#include <utility>

#include "ast/render.hpp"

namespace sca::corpus {
namespace {

using namespace sca::ast;  // NOLINT: factory-heavy builder file

const TypeRef kInt{BaseType::Int, false};
const TypeRef kLL{BaseType::LongLong, false};
const TypeRef kDouble{BaseType::Double, false};
const TypeRef kBool{BaseType::Bool, false};
const TypeRef kChar{BaseType::Char, false};
const TypeRef kString{BaseType::String, false};
const TypeRef kVecInt{BaseType::Int, true};
const TypeRef kVecLL{BaseType::LongLong, true};

// Build arena for the unit currently under construction. The node
// factories are Arena members now; these same-named file-local wrappers
// keep the challenge definitions below reading exactly as before. Each
// make*() finishes with unitWithMain(), which adopts the accumulated pool
// into the new unit and leaves a fresh arena for the next builder. Only
// builtCatalogue()'s once-run initializer calls the builders, so a single
// file-scope arena is safe.
Arena gArena;
Arena& A() { return gArena; }

ExprId v(std::string name) { return A().ident(std::move(name)); }
ExprId num(long long x) { return A().intLit(x); }
ExprId ident(std::string name) { return A().ident(std::move(name)); }
ExprId intLit(long long x) { return A().intLit(x); }
ExprId floatLit(double value, std::string spelling = "") {
  return A().floatLit(value, std::move(spelling));
}
ExprId stringLit(std::string value) { return A().stringLit(std::move(value)); }
ExprId charLit(char value) { return A().charLit(value); }
ExprId boolLit(bool value) { return A().boolLit(value); }
ExprId unary(UnaryOp op, ExprId operand) { return A().unary(op, operand); }
ExprId binary(BinaryOp op, ExprId lhs, ExprId rhs) {
  return A().binary(op, lhs, rhs);
}
ExprId assign(AssignOp op, ExprId target, ExprId value) {
  return A().assign(op, target, value);
}
ExprId call(std::string callee, std::vector<ExprId> args = {}) {
  return A().call(std::move(callee), std::move(args));
}
ExprId index(ExprId base, ExprId idx) { return A().index(base, idx); }
ExprId ternary(ExprId cond, ExprId thenExpr, ExprId elseExpr) {
  return A().ternary(cond, thenExpr, elseExpr);
}
ExprId cast(TypeRef type, ExprId operand) { return A().cast(type, operand); }
StmtId makeStmt(BlockStmt blockStmt) { return A().makeStmt(std::move(blockStmt)); }
StmtId varDecl(TypeRef type, std::vector<Declarator> decls) {
  return A().varDecl(type, std::move(decls));
}
StmtId varDecl1(TypeRef type, std::string name, ExprId init = {}) {
  return A().varDecl1(type, std::move(name), init);
}
StmtId exprStmt(ExprId expr) { return A().exprStmt(expr); }
StmtId ifStmt(ExprId cond, StmtId thenBranch, StmtId elseBranch = {}) {
  return A().ifStmt(cond, thenBranch, elseBranch);
}
StmtId forStmt(StmtId init, ExprId cond, ExprId step, StmtId body) {
  return A().forStmt(init, cond, step, body);
}
StmtId whileStmt(ExprId cond, StmtId body) { return A().whileStmt(cond, body); }
StmtId returnStmt(ExprId value = {}) { return A().returnStmt(value); }
StmtId readStmt(std::vector<ReadTarget> targets) {
  return A().readStmt(std::move(targets));
}
StmtId writeStmt(std::vector<WriteItem> items) {
  return A().writeStmt(std::move(items));
}
StmtId breakStmt() { return A().breakStmt(); }
StmtId continueStmt() { return A().continueStmt(); }
ReadTarget readTarget(std::string name, TypeRef type) {
  return A().readTarget(std::move(name), type);
}
WriteItem writeExpr(ExprId expr, TypeRef type, int precision = -1) {
  return A().writeExpr(expr, type, precision);
}

template <typename... S>
BlockStmt block(S&&... stmts) {
  BlockStmt b;
  (b.stmts.push_back(std::forward<S>(stmts)), ...);
  return b;
}

/// for (int var = from; var < to; var++) { body }
StmtId forCount(const std::string& var, ExprId to, BlockStmt body) {
  return forStmt(varDecl1(kInt, var, num(0)),
                 binary(BinaryOp::Lt, v(var), to),
                 unary(UnaryOp::PostInc, v(var)), makeStmt(std::move(body)));
}

/// for (int var = 1; var <= to; var++) { body }
StmtId forUpTo(const std::string& var, ExprId to, BlockStmt body) {
  return forStmt(varDecl1(kInt, var, num(1)),
                 binary(BinaryOp::Le, v(var), to),
                 unary(UnaryOp::PostInc, v(var)), makeStmt(std::move(body)));
}

StmtId readVars(std::vector<std::pair<std::string, TypeRef>> targets) {
  std::vector<ReadTarget> out;
  out.reserve(targets.size());
  for (auto& [name, type] : targets) out.push_back(readTarget(name, type));
  return readStmt(std::move(out));
}

/// cout << "Case #" << case_num << ": " << <result> << "\n";
StmtId writeCase(WriteItem result) {
  std::vector<WriteItem> items;
  items.push_back(writeText("Case #"));
  items.push_back(writeExpr(v("case_num"), kInt));
  items.push_back(writeText(": "));
  items.push_back(std::move(result));
  return writeStmt(std::move(items));
}

StmtId writeCaseText(std::string text) {
  std::vector<WriteItem> items;
  items.push_back(writeText("Case #"));
  items.push_back(writeExpr(v("case_num"), kInt));
  items.push_back(writeText(": " + text));
  return writeStmt(std::move(items));
}

TranslationUnit unitWithMain(BlockStmt mainBody) {
  TranslationUnit tu;
  tu.arena = std::exchange(gArena, Arena{});  // adopt the built nodes
  tu.usingNamespaceStd = true;
  Function mainFn;
  mainFn.returnType = kInt;
  mainFn.name = "main";
  mainFn.body = std::move(mainBody);
  tu.functions.push_back(std::move(mainFn));
  normalizeIncludes(tu, IoStyle::Iostream);
  return tu;
}

/// Standard shell: read the case count, loop, run the per-case body.
TranslationUnit caseLoopUnit(BlockStmt caseBody) {
  return unitWithMain(block(
      varDecl1(kInt, "num_cases"), readVars({{"num_cases", kInt}}),
      forUpTo("case_num", v("num_cases"), std::move(caseBody)),
      returnStmt(num(0))));
}

// ------------------------------------------------------------- problems --

/// Figure 3's problem: horses on a track; the last one to arrive bounds the
/// speed of a trailing rider.
Challenge makeRace() {
  BlockStmt inner = block(
      varDecl1(kInt, "pos"), varDecl1(kInt, "speed"),
      readVars({{"pos", kInt}, {"speed", kInt}}),
      varDecl1(kInt, "remaining",
               binary(BinaryOp::Sub, v("track_dist"), v("pos"))),
      varDecl1(kDouble, "arrive_time",
               binary(BinaryOp::Div, cast(kDouble, v("remaining")),
                      cast(kDouble, v("speed")))),
      exprStmt(assign(AssignOp::Assign, v("max_time"),
                      call("max", [] {
                        std::vector<ExprId> args;
                        args.push_back(v("max_time"));
                        args.push_back(v("arrive_time"));
                        return args;
                      }()))));
  BlockStmt body = block(
      varDecl1(kInt, "track_dist"), varDecl1(kInt, "num_horse"),
      readVars({{"track_dist", kInt}, {"num_horse", kInt}}),
      varDecl1(kDouble, "max_time", floatLit(0.0, "0")),
      forCount("j", v("num_horse"), std::move(inner)),
      varDecl1(kDouble, "result",
               binary(BinaryOp::Div, cast(kDouble, v("track_dist")),
                      v("max_time"))),
      writeCase(writeExpr(v("result"), kDouble, 6)));
  Challenge ch;
  ch.id = "race";
  ch.title = "Steed Speed";
  ch.statement =
      "A track of length D has N horses, each at position Ki with maximum "
      "speed Si. A new rider starts at 0 and may never overtake; print the "
      "maximum constant speed that never catches the slowest arrival.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Count maximal runs of '-' pancakes that must be flipped.
Challenge makePancakes() {
  BlockStmt flipRun = block(exprStmt(
      assign(AssignOp::AddAssign, v("flips"), num(1))));
  BlockStmt scan = block(ifStmt(
      binary(BinaryOp::LogicalAnd,
             binary(BinaryOp::Eq, index(v("cakes"), v("j")), charLit('-')),
             binary(BinaryOp::LogicalOr, binary(BinaryOp::Eq, v("j"), num(0)),
                    binary(BinaryOp::Ne,
                           index(v("cakes"),
                                 binary(BinaryOp::Sub, v("j"), num(1))),
                           charLit('-')))),
      makeStmt(std::move(flipRun))));
  BlockStmt body = block(
      varDecl1(kString, "cakes"), readVars({{"cakes", kString}}),
      varDecl1(kInt, "flips", num(0)),
      forCount("j", call("cakes.size"), std::move(scan)),
      writeCase(writeExpr(v("flips"), kInt)));
  Challenge ch;
  ch.id = "pancakes";
  ch.title = "Pancake Flipper";
  ch.statement =
      "A row of pancakes is a string of '+' (happy side up) and '-' "
      "(blank side up). One move flips a maximal run of '-'. Print the "
      "minimum number of moves until every pancake shows '+'.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Counting Sheep (GCJ 2017 qual): multiples of N until all digits seen.
Challenge makeSheep() {
  BlockStmt digitLoop = block(
      exprStmt(assign(AssignOp::Assign,
                      index(v("seen"),
                            binary(BinaryOp::Mod, v("value"), num(10))),
                      num(1))),
      exprStmt(assign(AssignOp::DivAssign, v("value"), num(10))));
  BlockStmt countLoop = block(ifStmt(
      binary(BinaryOp::Eq, index(v("seen"), v("d")), num(1)),
      makeStmt(block(
          exprStmt(assign(AssignOp::AddAssign, v("distinct"), num(1)))))));
  BlockStmt stepBody = block(
      exprStmt(assign(AssignOp::AddAssign, v("current"), v("start"))),
      varDecl1(kLL, "value", v("current")),
      whileStmt(binary(BinaryOp::Gt, v("value"), num(0)),
                makeStmt(std::move(digitLoop))),
      varDecl1(kInt, "distinct", num(0)),
      forCount("d", num(10), std::move(countLoop)),
      ifStmt(binary(BinaryOp::Eq, v("distinct"), num(10)),
             makeStmt(block(
                 writeCase(writeExpr(v("current"), kLL)),
                 breakStmt()))));
  std::vector<Declarator> seenDecl;
  seenDecl.push_back(Declarator{"seen", {}, num(10)});
  BlockStmt body = block(
      varDecl1(kLL, "start"), readVars({{"start", kLL}}),
      ifStmt(binary(BinaryOp::Eq, v("start"), num(0)),
             makeStmt(block(writeCaseText("INSOMNIA"), continueStmt()))),
      varDecl(kInt, std::move(seenDecl)),
      forCount("d", num(10),
               block(exprStmt(
                   assign(AssignOp::Assign, index(v("seen"), v("d")),
                          num(0))))),
      varDecl1(kLL, "current", num(0)),
      whileStmt(boolLit(true), makeStmt(std::move(stepBody))));
  Challenge ch;
  ch.id = "sheep";
  ch.title = "Counting Sheep";
  ch.statement =
      "Bleatrix counts N, 2N, 3N, ... and falls asleep once she has seen "
      "every digit 0-9. Print the last number she names, or INSOMNIA when "
      "N = 0.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Tidy Numbers (GCJ 2017 qual): last number <= N with non-decreasing digits.
Challenge makeTidy() {
  BlockStmt extract = block(
      exprStmt(call("digits.push_back",
                    [] {
                      std::vector<ExprId> args;
                      args.push_back(cast(
                          kInt, binary(BinaryOp::Mod, v("value"), num(10))));
                      return args;
                    }())),
      exprStmt(assign(AssignOp::DivAssign, v("value"), num(10))));
  BlockStmt fixup = block(ifStmt(
      binary(BinaryOp::Gt,
             index(v("digits"), binary(BinaryOp::Sub, v("j"), num(1))),
             index(v("digits"), v("j"))),
      makeStmt(block(
          exprStmt(assign(
              AssignOp::SubAssign,
              index(v("digits"), binary(BinaryOp::Sub, v("j"), num(1))),
              num(1))),
          forCount("p", call("digits.size"),
                   block(ifStmt(binary(BinaryOp::Ge, v("p"), v("j")),
                                makeStmt(block(exprStmt(assign(
                                    AssignOp::Assign,
                                    index(v("digits"), v("p")),
                                    num(9))))))))))));
  BlockStmt rebuild = block(exprStmt(assign(
      AssignOp::Assign, v("tidy"),
      binary(BinaryOp::Add, binary(BinaryOp::Mul, v("tidy"), num(10)),
             index(v("digits"), v("j"))))));
  BlockStmt body = block(
      varDecl1(kLL, "target"), readVars({{"target", kLL}}),
      varDecl1(kVecInt, "digits"), varDecl1(kLL, "value", v("target")),
      whileStmt(binary(BinaryOp::Gt, v("value"), num(0)),
                makeStmt(std::move(extract))),
      exprStmt(call("reverse",
                    [] {
                      std::vector<ExprId> args;
                      args.push_back(call("digits.begin"));
                      args.push_back(call("digits.end"));
                      return args;
                    }())),
      forUpTo("j", binary(BinaryOp::Sub, call("digits.size"), num(1)),
              std::move(fixup)),
      varDecl1(kLL, "tidy", num(0)),
      forCount("j", call("digits.size"), std::move(rebuild)),
      writeCase(writeExpr(v("tidy"), kLL)));
  Challenge ch;
  ch.id = "tidy";
  ch.title = "Tidy Numbers";
  ch.statement =
      "A number is tidy when its digits are non-decreasing. Given N, print "
      "the largest tidy number not exceeding N.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// The Last Word (GCJ 2016-style): build lexicographically largest word by
/// prepending or appending each letter.
Challenge makeLastWord() {
  BlockStmt choose = block(ifStmt(
      binary(BinaryOp::Ge, index(v("word"), v("j")),
             index(v("built"), num(0))),
      makeStmt(block(exprStmt(assign(
          AssignOp::Assign, v("built"),
          binary(BinaryOp::Add, index(v("word"), v("j")), v("built")))))),
      makeStmt(block(exprStmt(assign(
          AssignOp::Assign, v("built"),
          binary(BinaryOp::Add, v("built"), index(v("word"), v("j")))))))));
  BlockStmt body = block(
      varDecl1(kString, "word"), readVars({{"word", kString}}),
      varDecl1(kString, "built", stringLit("")),
      exprStmt(assign(AssignOp::AddAssign, v("built"),
                      index(v("word"), num(0)))),
      forStmt(varDecl1(kInt, "j", num(1)),
              binary(BinaryOp::Lt, v("j"), call("word.size")),
              unary(UnaryOp::PostInc, v("j")), makeStmt(std::move(choose))),
      writeCase(writeExpr(v("built"), kString)));
  Challenge ch;
  ch.id = "lastword";
  ch.title = "The Last Word";
  ch.statement =
      "Given a word, process its letters left to right, each time placing "
      "the letter at the front or the back of the word built so far; print "
      "the lexicographically largest result.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Greedy shopping: buy cheapest items first within a budget.
Challenge makeBudget() {
  BlockStmt readItem = block(
      varDecl1(kInt, "price"), readVars({{"price", kInt}}),
      exprStmt(call("prices.push_back", [] {
        std::vector<ExprId> args;
        args.push_back(v("price"));
        return args;
      }())));
  BlockStmt buy = block(ifStmt(
      binary(BinaryOp::Le, index(v("prices"), v("j")), v("budget")),
      makeStmt(block(
          exprStmt(assign(AssignOp::SubAssign, v("budget"),
                          index(v("prices"), v("j")))),
          exprStmt(assign(AssignOp::AddAssign, v("bought"), num(1))))),
      makeStmt(block(breakStmt()))));
  BlockStmt body = block(
      varDecl1(kInt, "num_items"), varDecl1(kInt, "budget"),
      readVars({{"num_items", kInt}, {"budget", kInt}}),
      varDecl1(kVecInt, "prices"),
      forCount("j", v("num_items"), std::move(readItem)),
      exprStmt(call("sort",
                    [] {
                      std::vector<ExprId> args;
                      args.push_back(call("prices.begin"));
                      args.push_back(call("prices.end"));
                      return args;
                    }())),
      varDecl1(kInt, "bought", num(0)),
      forCount("j", v("num_items"), std::move(buy)),
      writeCase(writeExpr(v("bought"), kInt)));
  Challenge ch;
  ch.id = "budget";
  ch.title = "Bargain Hunt";
  ch.statement =
      "With B units of money and N item prices, buy items greedily from "
      "cheapest to priciest; print how many items you can afford.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Majority vote simulation.
Challenge makeVotes() {
  BlockStmt tally = block(
      varDecl1(kChar, "ballot"), readVars({{"ballot", kChar}}),
      ifStmt(binary(BinaryOp::Eq, v("ballot"), charLit('A')),
             makeStmt(block(exprStmt(
                 assign(AssignOp::AddAssign, v("votes_a"), num(1))))),
             makeStmt(block(exprStmt(
                 assign(AssignOp::AddAssign, v("votes_b"), num(1)))))));
  BlockStmt body = block(
      varDecl1(kInt, "num_votes"), readVars({{"num_votes", kInt}}),
      varDecl1(kInt, "votes_a", num(0)), varDecl1(kInt, "votes_b", num(0)),
      forCount("j", v("num_votes"), std::move(tally)),
      ifStmt(binary(BinaryOp::Gt, v("votes_a"), v("votes_b")),
             makeStmt(block(writeCaseText("A"))),
             ifStmt(binary(BinaryOp::Gt, v("votes_b"), v("votes_a")),
                    makeStmt(block(writeCaseText("B"))),
                    makeStmt(block(writeCaseText("TIE"))))));
  Challenge ch;
  ch.id = "votes";
  ch.title = "Ballot Box";
  ch.statement =
      "N ballots each name candidate A or B. Print the winner, or TIE when "
      "the counts are equal.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Minimum digit sum: smallest k such that digit_sum(k) >= target.
Challenge makeDigitSum() {
  BlockStmt inner = block(
      exprStmt(assign(AssignOp::AddAssign, v("digit_total"),
                      binary(BinaryOp::Mod, v("rest"), num(10)))),
      exprStmt(assign(AssignOp::DivAssign, v("rest"), num(10))));
  BlockStmt probe = block(
      varDecl1(kInt, "digit_total", num(0)),
      varDecl1(kInt, "rest", v("k")),
      whileStmt(binary(BinaryOp::Gt, v("rest"), num(0)),
                makeStmt(std::move(inner))),
      ifStmt(binary(BinaryOp::Ge, v("digit_total"), v("target")),
             makeStmt(block(breakStmt()))),
      exprStmt(unary(UnaryOp::PostInc, v("k"))));
  BlockStmt body = block(
      varDecl1(kInt, "target"), readVars({{"target", kInt}}),
      varDecl1(kInt, "k", num(1)),
      whileStmt(boolLit(true), makeStmt(std::move(probe))),
      writeCase(writeExpr(v("k"), kInt)));
  Challenge ch;
  ch.id = "digitsum";
  ch.title = "Digit Debt";
  ch.statement =
      "Find the smallest positive integer whose digit sum is at least S and "
      "print it.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Average pace: total distance over total time across N legs.
Challenge makePace() {
  BlockStmt leg = block(
      varDecl1(kInt, "leg_dist"), varDecl1(kDouble, "leg_speed"),
      readVars({{"leg_dist", kInt}, {"leg_speed", kDouble}}),
      exprStmt(assign(AssignOp::AddAssign, v("total_dist"), v("leg_dist"))),
      exprStmt(assign(AssignOp::AddAssign, v("total_time"),
                      binary(BinaryOp::Div, cast(kDouble, v("leg_dist")),
                             v("leg_speed")))));
  BlockStmt body = block(
      varDecl1(kInt, "num_legs"), readVars({{"num_legs", kInt}}),
      varDecl1(kInt, "total_dist", num(0)),
      varDecl1(kDouble, "total_time", floatLit(0.0, "0.0")),
      forCount("j", v("num_legs"), std::move(leg)),
      varDecl1(kDouble, "avg_speed",
               binary(BinaryOp::Div, cast(kDouble, v("total_dist")),
                      v("total_time"))),
      writeCase(writeExpr(v("avg_speed"), kDouble, 6)));
  Challenge ch;
  ch.id = "pace";
  ch.title = "Trail Pace";
  ch.statement =
      "A trail has N legs, each with a distance and a speed. Print the "
      "average speed over the whole trail (total distance / total time).";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Min path sum over a grid using a rolling 1-D dp vector.
Challenge makeGrid() {
  BlockStmt readRow = block(
      varDecl1(kInt, "cell"), readVars({{"cell", kInt}}),
      ifStmt(
          binary(BinaryOp::Eq, v("r"), num(0)),
          makeStmt(block(ifStmt(
              binary(BinaryOp::Eq, v("c"), num(0)),
              makeStmt(block(exprStmt(
                  assign(AssignOp::Assign, index(v("dp"), v("c")),
                         v("cell"))))),
              makeStmt(block(exprStmt(assign(
                  AssignOp::Assign, index(v("dp"), v("c")),
                  binary(BinaryOp::Add,
                         index(v("dp"),
                               binary(BinaryOp::Sub, v("c"), num(1))),
                         v("cell"))))))))),
          makeStmt(block(ifStmt(
              binary(BinaryOp::Eq, v("c"), num(0)),
              makeStmt(block(exprStmt(assign(
                  AssignOp::Assign, index(v("dp"), v("c")),
                  binary(BinaryOp::Add, index(v("dp"), v("c")),
                         v("cell")))))),
              makeStmt(block(exprStmt(assign(
                  AssignOp::Assign, index(v("dp"), v("c")),
                  binary(BinaryOp::Add,
                         call("min",
                              [] {
                                std::vector<ExprId> args;
                                args.push_back(ident("dp_left"));
                                args.push_back(ident("dp_up"));
                                return args;
                              }()),
                         v("cell")))))))))));
  // dp_left / dp_up temporaries keep the min() call simple.
  BlockStmt colLoop = block(
      varDecl1(kInt, "dp_left",
               ternary(binary(BinaryOp::Gt, v("c"), num(0)),
                       index(v("dp"), binary(BinaryOp::Sub, v("c"), num(1))),
                       num(1000000000))),
      varDecl1(kInt, "dp_up", index(v("dp"), v("c"))),
      std::move(readRow.stmts[0]), std::move(readRow.stmts[1]),
      std::move(readRow.stmts[2]));
  BlockStmt rowLoop = block(forCount("c", v("size"), std::move(colLoop)));
  std::vector<Declarator> dpDecl;
  dpDecl.push_back(Declarator{"dp", v("size"), {}});
  BlockStmt body = block(
      varDecl1(kInt, "size"), readVars({{"size", kInt}}),
      varDecl(kVecInt, std::move(dpDecl)),
      forCount("r", v("size"), std::move(rowLoop)),
      writeCase(writeExpr(
          index(v("dp"), binary(BinaryOp::Sub, v("size"), num(1))), kInt)));
  Challenge ch;
  ch.id = "grid";
  ch.title = "Valley Crossing";
  ch.statement =
      "An N x N grid of costs must be crossed from the top-left to the "
      "bottom-right moving only right or down; print the minimum total "
      "cost.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Parity split: count even and odd values, print the difference.
Challenge makeParity() {
  BlockStmt tally = block(
      varDecl1(kInt, "value"), readVars({{"value", kInt}}),
      ifStmt(binary(BinaryOp::Eq,
                    binary(BinaryOp::Mod, v("value"), num(2)), num(0)),
             makeStmt(block(exprStmt(
                 assign(AssignOp::AddAssign, v("evens"), num(1))))),
             makeStmt(block(exprStmt(
                 assign(AssignOp::AddAssign, v("odds"), num(1)))))));
  BlockStmt body = block(
      varDecl1(kInt, "num_values"), readVars({{"num_values", kInt}}),
      varDecl1(kInt, "evens", num(0)), varDecl1(kInt, "odds", num(0)),
      forCount("j", v("num_values"), std::move(tally)),
      varDecl1(kInt, "gap",
               call("abs",
                    [] {
                      std::vector<ExprId> args;
                      args.push_back(
                          binary(BinaryOp::Sub, ident("evens"), ident("odds")));
                      return args;
                    }())),
      writeCase(writeExpr(v("gap"), kInt)));
  Challenge ch;
  ch.id = "parity";
  ch.title = "Even Ground";
  ch.statement =
      "Given N integers, print the absolute difference between how many "
      "are even and how many are odd.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Staircase stepping: greedy largest-step count (sqrt-style loop).
Challenge makeSteps() {
  BlockStmt climb = block(
      ifStmt(binary(BinaryOp::Gt, v("step"), v("left")),
             makeStmt(block(breakStmt()))),
      exprStmt(assign(AssignOp::SubAssign, v("left"), v("step"))),
      exprStmt(unary(UnaryOp::PostInc, v("step"))),
      exprStmt(unary(UnaryOp::PostInc, v("taken"))));
  BlockStmt body = block(
      varDecl1(kLL, "height"), readVars({{"height", kLL}}),
      varDecl1(kLL, "left", v("height")),
      varDecl1(kLL, "step", num(1)), varDecl1(kInt, "taken", num(0)),
      whileStmt(binary(BinaryOp::Gt, v("left"), num(0)),
                makeStmt(std::move(climb))),
      writeCase(writeExpr(v("taken"), kInt)));
  Challenge ch;
  ch.id = "steps";
  ch.title = "Giant Stairs";
  ch.statement =
      "Starting with step size 1 and increasing by 1 each move, climb a "
      "staircase of height H; print how many full steps fit.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Euclid's gcd of two numbers.
Challenge makeGcd() {
  BlockStmt euclid = block(
      varDecl1(kLL, "rest", binary(BinaryOp::Mod, v("first"), v("second"))),
      exprStmt(assign(AssignOp::Assign, v("first"), v("second"))),
      exprStmt(assign(AssignOp::Assign, v("second"), v("rest"))));
  BlockStmt body = block(
      varDecl1(kLL, "first"), varDecl1(kLL, "second"),
      readVars({{"first", kLL}, {"second", kLL}}),
      whileStmt(binary(BinaryOp::Gt, v("second"), num(0)),
                makeStmt(std::move(euclid))),
      writeCase(writeExpr(v("first"), kLL)));
  Challenge ch;
  ch.id = "gcd";
  ch.title = "Fence Posts";
  ch.statement =
      "Two fences of lengths A and B must be cut into equal pieces of the "
      "largest possible integer length; print that length (the greatest "
      "common divisor).";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Kadane's maximum-subarray sum.
Challenge makeKadane() {
  BlockStmt scan = block(
      varDecl1(kInt, "value"), readVars({{"value", kInt}}),
      exprStmt(assign(AssignOp::Assign, v("running"),
                      call("max",
                           [] {
                             std::vector<ExprId> args;
                             args.push_back(ident("value"));
                             args.push_back(binary(BinaryOp::Add,
                                                   ident("running"),
                                                   ident("value")));
                             return args;
                           }()))),
      exprStmt(assign(AssignOp::Assign, v("best"),
                      call("max", [] {
                        std::vector<ExprId> args;
                        args.push_back(ident("best"));
                        args.push_back(ident("running"));
                        return args;
                      }()))));
  BlockStmt body = block(
      varDecl1(kInt, "num_values"), readVars({{"num_values", kInt}}),
      varDecl1(kInt, "running", num(-1000000000)),
      varDecl1(kInt, "best", num(-1000000000)),
      forCount("j", v("num_values"), std::move(scan)),
      writeCase(writeExpr(v("best"), kInt)));
  Challenge ch;
  ch.id = "kadane";
  ch.title = "Best Streak";
  ch.statement =
      "Given N daily profits (possibly negative), print the maximum total "
      "profit of any contiguous run of days.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Count palindromic strings among N words.
Challenge makePalindrome() {
  BlockStmt compare = block(ifStmt(
      binary(BinaryOp::Ne, index(v("word"), v("p")),
             index(v("word"),
                   binary(BinaryOp::Sub,
                          binary(BinaryOp::Sub, call("word.size"), num(1)),
                          v("p")))),
      makeStmt(block(
          exprStmt(assign(AssignOp::Assign, v("is_pal"), boolLit(false))),
          breakStmt()))));
  BlockStmt perWord = block(
      varDecl1(kString, "word"), readVars({{"word", kString}}),
      varDecl1(kBool, "is_pal", boolLit(true)),
      forStmt(varDecl1(kInt, "p", num(0)),
              binary(BinaryOp::Lt,
                     binary(BinaryOp::Mul, v("p"), num(2)),
                     cast(kInt, call("word.size"))),
              unary(UnaryOp::PostInc, v("p")), makeStmt(std::move(compare))),
      ifStmt(v("is_pal"),
             makeStmt(block(exprStmt(
                 assign(AssignOp::AddAssign, v("pal_count"), num(1)))))));
  BlockStmt body = block(
      varDecl1(kInt, "num_words"), readVars({{"num_words", kInt}}),
      varDecl1(kInt, "pal_count", num(0)),
      forCount("j", v("num_words"), std::move(perWord)),
      writeCase(writeExpr(v("pal_count"), kInt)));
  Challenge ch;
  ch.id = "palindrome";
  ch.title = "Mirror Words";
  ch.statement =
      "Given N words, print how many of them read the same forwards and "
      "backwards.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Binary search on the answer: largest k with k*(k+1)/2 <= N.
Challenge makeBinSearch() {
  BlockStmt step = block(
      // Ceil-division mid: lower-bound loops with "lo = mid" need
      // (lo + hi + 1) / 2 to terminate.
      varDecl1(kLL, "mid",
               binary(BinaryOp::Div,
                      binary(BinaryOp::Add,
                             binary(BinaryOp::Add, v("lo"), v("hi")),
                             num(1)),
                      num(2))),
      varDecl1(kLL, "used",
               binary(BinaryOp::Div,
                      binary(BinaryOp::Mul, v("mid"),
                             binary(BinaryOp::Add, v("mid"), num(1))),
                      num(2))),
      ifStmt(binary(BinaryOp::Le, v("used"), v("coins")),
             makeStmt(block(
                 exprStmt(assign(AssignOp::Assign, v("lo"), v("mid"))))),
             makeStmt(block(exprStmt(assign(
                 AssignOp::Assign, v("hi"),
                 binary(BinaryOp::Sub, v("mid"), num(1))))))));
  BlockStmt body = block(
      varDecl1(kLL, "coins"), readVars({{"coins", kLL}}),
      varDecl1(kLL, "lo", num(0)), varDecl1(kLL, "hi", num(2000000000)),
      whileStmt(binary(BinaryOp::Lt, v("lo"), v("hi")),
                makeStmt(std::move(step))),
      writeCase(writeExpr(v("lo"), kLL)));
  Challenge ch;
  ch.id = "binsearch";
  ch.title = "Coin Pyramid";
  ch.statement =
      "A pyramid with k rows needs 1+2+...+k coins. Given N coins, print "
      "the tallest pyramid you can build.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Count overlapping interval merges (sort by start, sweep).
Challenge makeIntervals() {
  BlockStmt readPair = block(
      varDecl1(kInt, "start"), varDecl1(kInt, "finish"),
      readVars({{"start", kInt}, {"finish", kInt}}),
      exprStmt(call("starts.push_back",
                    [] {
                      std::vector<ExprId> args;
                      args.push_back(ident("start"));
                      return args;
                    }())),
      exprStmt(call("ends.push_back", [] {
        std::vector<ExprId> args;
        args.push_back(ident("finish"));
        return args;
      }())));
  BlockStmt sweep = block(ifStmt(
      binary(BinaryOp::Gt, index(v("starts"), v("j")), v("covered")),
      makeStmt(block(
          exprStmt(assign(AssignOp::AddAssign, v("blocks"), num(1))),
          exprStmt(assign(AssignOp::Assign, v("covered"),
                          index(v("ends"), v("j")))))),
      makeStmt(block(exprStmt(assign(
          AssignOp::Assign, v("covered"),
          call("max", [] {
            std::vector<ExprId> args;
            args.push_back(ident("covered"));
            args.push_back(index(ident("ends"), ident("j")));
            return args;
          }())))))));
  BlockStmt body = block(
      varDecl1(kInt, "num_intervals"), readVars({{"num_intervals", kInt}}),
      varDecl1(kVecInt, "starts"), varDecl1(kVecInt, "ends"),
      forCount("j", v("num_intervals"), std::move(readPair)),
      varDecl1(kInt, "blocks", num(0)),
      varDecl1(kInt, "covered", num(-1000000000)),
      forCount("j", v("num_intervals"), std::move(sweep)),
      writeCase(writeExpr(v("blocks"), kInt)));
  Challenge ch;
  ch.id = "intervals";
  ch.title = "Painted Fence";
  ch.statement =
      "N painters each covered one interval of a fence, given in "
      "left-to-right order of their starting points. Print how many "
      "disjoint painted blocks the fence has.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Count pairs summing to a target (two nested loops).
Challenge makeTwoSum() {
  BlockStmt inner = block(ifStmt(
      binary(BinaryOp::Eq,
             binary(BinaryOp::Add, index(v("values"), v("j")),
                    index(v("values"), v("k"))),
             v("target")),
      makeStmt(block(exprStmt(
          assign(AssignOp::AddAssign, v("pairs"), num(1)))))));
  BlockStmt outer = block(forStmt(
      varDecl1(kInt, "k", binary(BinaryOp::Add, v("j"), num(1))),
      binary(BinaryOp::Lt, v("k"), v("num_values")),
      unary(UnaryOp::PostInc, v("k")), makeStmt(std::move(inner))));
  BlockStmt readOne = block(
      varDecl1(kInt, "value"), readVars({{"value", kInt}}),
      exprStmt(call("values.push_back", [] {
        std::vector<ExprId> args;
        args.push_back(ident("value"));
        return args;
      }())));
  BlockStmt body = block(
      varDecl1(kInt, "num_values"), varDecl1(kInt, "target"),
      readVars({{"num_values", kInt}, {"target", kInt}}),
      varDecl1(kVecInt, "values"),
      forCount("j", v("num_values"), std::move(readOne)),
      varDecl1(kInt, "pairs", num(0)),
      forCount("j", v("num_values"), std::move(outer)),
      writeCase(writeExpr(v("pairs"), kInt)));
  Challenge ch;
  ch.id = "twosum";
  ch.title = "Gift Pairs";
  ch.statement =
      "Given N gift prices and a budget B, print the number of unordered "
      "pairs of gifts whose prices sum to exactly B.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Caesar cipher shift of a word.
Challenge makeCaesar() {
  BlockStmt shiftOne = block(
      varDecl1(kInt, "code",
               binary(BinaryOp::Sub, cast(kInt, index(v("word"), v("p"))),
                      cast(kInt, charLit('a')))),
      exprStmt(assign(AssignOp::Assign, v("code"),
                      binary(BinaryOp::Mod,
                             binary(BinaryOp::Add, v("code"), v("shift")),
                             num(26)))),
      exprStmt(assign(
          AssignOp::Assign, index(v("word"), v("p")),
          cast(kChar, binary(BinaryOp::Add, v("code"),
                             cast(kInt, charLit('a')))))));
  BlockStmt body = block(
      varDecl1(kString, "word"), varDecl1(kInt, "shift"),
      readVars({{"word", kString}, {"shift", kInt}}),
      forCount("p", cast(kInt, call("word.size")), std::move(shiftOne)),
      writeCase(writeExpr(v("word"), kString)));
  Challenge ch;
  ch.id = "caesar";
  ch.title = "Rotated Scrolls";
  ch.statement =
      "Encrypt a lowercase word with a Caesar shift of K positions and "
      "print the result.";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

/// Modular exponentiation by squaring.
Challenge makePowMod() {
  BlockStmt square = block(
      ifStmt(binary(BinaryOp::Eq,
                    binary(BinaryOp::Mod, v("exponent"), num(2)), num(1)),
             makeStmt(block(exprStmt(assign(
                 AssignOp::Assign, v("result"),
                 binary(BinaryOp::Mod,
                        binary(BinaryOp::Mul, v("result"), v("base")),
                        v("modulus"))))))),
      exprStmt(assign(AssignOp::Assign, v("base"),
                      binary(BinaryOp::Mod,
                             binary(BinaryOp::Mul, v("base"), v("base")),
                             v("modulus")))),
      exprStmt(assign(AssignOp::DivAssign, v("exponent"), num(2))));
  BlockStmt body = block(
      varDecl1(kLL, "base"), varDecl1(kLL, "exponent"),
      varDecl1(kLL, "modulus"),
      readVars({{"base", kLL}, {"exponent", kLL}, {"modulus", kLL}}),
      varDecl1(kLL, "result", num(1)),
      exprStmt(assign(AssignOp::ModAssign, v("base"), v("modulus"))),
      whileStmt(binary(BinaryOp::Gt, v("exponent"), num(0)),
                makeStmt(std::move(square))),
      writeCase(writeExpr(v("result"), kLL)));
  Challenge ch;
  ch.id = "powmod";
  ch.title = "Tower Clock";
  ch.statement =
      "Print B raised to the power E, modulo M (fast exponentiation by "
      "squaring).";
  ch.ir = caseLoopUnit(std::move(body));
  return ch;
}

const std::vector<Challenge>& builtCatalogue() {
  static const std::vector<Challenge> kCatalogue = [] {
    std::vector<Challenge> all;
    // The "classic twelve" — the pool the simulated GCJ years draw from.
    // Their order is load-bearing: every calibrated table regenerates from
    // these; new problems must be appended AFTER them.
    all.push_back(makeRace());
    all.push_back(makePancakes());
    all.push_back(makeSheep());
    all.push_back(makeTidy());
    all.push_back(makeLastWord());
    all.push_back(makeBudget());
    all.push_back(makeVotes());
    all.push_back(makeDigitSum());
    all.push_back(makePace());
    all.push_back(makeGrid());
    all.push_back(makeParity());
    all.push_back(makeSteps());
    // Extension problems (examples, tests, extra workloads).
    all.push_back(makeGcd());
    all.push_back(makeKadane());
    all.push_back(makePalindrome());
    all.push_back(makeBinSearch());
    all.push_back(makeIntervals());
    all.push_back(makeTwoSum());
    all.push_back(makeCaesar());
    all.push_back(makePowMod());
    return all;
  }();
  return kCatalogue;
}

}  // namespace

const std::vector<Challenge>& catalogue() { return builtCatalogue(); }

std::vector<const Challenge*> challengesForYear(int year) {
  const auto& all = builtCatalogue();
  // 8 of the classic twelve, rotated by year so that years overlap but are
  // not identical (as with real GCJ rounds, some problem archetypes
  // recur). Pinned to the first 12 catalogue entries so that extending the
  // catalogue never shifts the calibrated experiments.
  constexpr std::size_t kYearPool = 12;
  const std::size_t offset =
      static_cast<std::size_t>((year - 2017 + 120) % static_cast<int>(kYearPool));
  std::vector<const Challenge*> out;
  out.reserve(8);
  for (std::size_t i = 0; i < 8; ++i) {
    out.push_back(&all[(offset * 2 + i) % kYearPool]);
  }
  return out;
}

const Challenge& challengeById(const std::string& id) {
  for (const Challenge& ch : builtCatalogue()) {
    if (ch.id == id) return ch;
  }
  throw std::out_of_range("unknown challenge id: " + id);
}

const Challenge& figure3Challenge() { return challengeById("race"); }

}  // namespace sca::corpus
