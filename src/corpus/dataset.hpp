// Dataset builder: renders the (author x challenge) sample grid of one
// simulated GCJ year (Table I: 204 authors x 8 challenges = 1,632 samples).
#pragma once

#include <string>
#include <vector>

#include "corpus/authors.hpp"
#include "corpus/challenges.hpp"

namespace sca::corpus {

/// One source-code sample with its provenance.
struct CodeSample {
  std::string source;
  int authorId = -1;       // 0..N-1 for humans, -1 for LLM-origin samples
  int challengeIndex = 0;  // 0..7 within the year
  std::string origin;      // "human", "chatgpt", "chatgpt+nct", ...
};

struct YearDataset {
  int year = 0;
  std::vector<Author> authors;
  std::vector<const Challenge*> challenges;
  std::vector<CodeSample> samples;  // one per (author, challenge)
};

/// Builds the full human corpus of a year deterministically.
[[nodiscard]] YearDataset buildYearDataset(int year,
                                           std::size_t authorCount = 204);

/// Renders one author's solution to one challenge (the primitive the
/// dataset builder and the transformation experiments share).
[[nodiscard]] std::string renderSolution(const Author& author,
                                         const Challenge& challenge, int year,
                                         int challengeIndex);

}  // namespace sca::corpus
