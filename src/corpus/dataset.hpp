// Dataset builder: renders the (author x challenge) sample grid of one
// simulated GCJ year (Table I: 204 authors x 8 challenges = 1,632 samples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/authors.hpp"
#include "corpus/challenges.hpp"
#include "util/status.hpp"

namespace sca::features {
class FeatureExtractor;
}  // namespace sca::features

namespace sca::corpus {

/// One source-code sample with its provenance.
struct CodeSample {
  std::string source;
  int authorId = -1;       // 0..N-1 for humans, -1 for LLM-origin samples
  int challengeIndex = 0;  // 0..7 within the year
  std::string origin;      // "human", "chatgpt", "chatgpt+nct", ...
};

struct YearDataset {
  int year = 0;
  std::vector<Author> authors;
  std::vector<const Challenge*> challenges;
  std::vector<CodeSample> samples;  // one per (author, challenge)
};

/// Builds the full human corpus of a year deterministically.
[[nodiscard]] YearDataset buildYearDataset(int year,
                                           std::size_t authorCount = 204);

/// Renders one author's solution to one challenge (the primitive the
/// dataset builder and the transformation experiments share).
[[nodiscard]] std::string renderSolution(const Author& author,
                                         const Challenge& challenge, int year,
                                         int challengeIndex);

// ----------------------------------------------------- out-of-core scale --
// buildYearMatrix() is buildYearDataset() for corpora that do not fit in
// memory: it renders the (author x challenge) grid in author-range shards
// on the runtime pool, extracts features sample by sample through the
// cache-bypassing extractor path, spills each shard as an atomically
// landed sca-matrix-v1 segment (the segment IS the shard's crash
// checkpoint, pinned by metaHash exactly like the llm chain checkpoints),
// and streams the segments into one final matrix in author order.
//
// Determinism contract: the final file's bytes depend only on (year,
// authorCount, extractor schema) — never on shard size, thread count, or
// how many crash/resume cycles the build went through. A resumed build
// reuses every segment whose metaHash and shape check out and re-renders
// only the rest; a finished final file short-circuits the whole build.

struct ScaleConfig {
  int year = 2017;
  std::size_t authorCount = 204;
  /// Directory for segments and the final matrix (created if missing).
  std::string outDir;
  /// Authors per generation shard (bounds one task's working set).
  std::size_t shardSize = 256;
  /// Test hook: abort the build (kInternal) after this many freshly built
  /// shards, leaving their segments behind for a resume. 0 = off.
  std::size_t crashAfterShards = 0;
};

struct ScaleBuildResult {
  std::string matrixPath;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t shardCount = 0;
  std::size_t freshShards = 0;    // rendered by this run
  std::size_t resumedShards = 0;  // segments reused from a previous run
  bool reusedFinal = false;       // final matrix already existed
  std::uint64_t metaHash = 0;
};

/// The metaHash the final matrix of (extractor, year, authorCount) is
/// pinned with — callers pass it to ml::MatrixFile::open so a stale file
/// is rejected rather than silently trained on.
[[nodiscard]] std::uint64_t yearMatrixMetaHash(
    const features::FeatureExtractor& extractor, int year,
    std::size_t authorCount);

/// Builds (or resumes building) the year's feature matrix out-of-core.
/// `extractor` must already be fitted; row i*challenges+c holds author i's
/// features for challenge c, label = author id, group = challenge index.
[[nodiscard]] util::Result<ScaleBuildResult> buildYearMatrix(
    const features::FeatureExtractor& extractor, const ScaleConfig& config);

}  // namespace sca::corpus
