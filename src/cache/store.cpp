#include "cache/store.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "obs/log.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace sca::cache {
namespace {

namespace fs = std::filesystem;

// Global effectiveness counters, runtime-tagged: what a run finds on disk
// depends on previous processes, so none of these may enter the stable
// (byte-compared) metrics section. Handles are created once and shared by
// every store instance.
obs::Counter cacheCounter(const char* name) {
  return obs::MetricsRegistry::global().counter(name,
                                                obs::Stability::kRuntime);
}

struct GlobalCounters {
  obs::Counter hits = cacheCounter("cache_hits");
  obs::Counter misses = cacheCounter("cache_misses");
  obs::Counter puts = cacheCounter("cache_puts");
  obs::Counter evictions = cacheCounter("cache_evictions");
  obs::Counter loadedEntries = cacheCounter("cache_load_entries");
  obs::Counter skippedIndexLines = cacheCounter("cache_index_skipped");
  obs::Counter corruptValues = cacheCounter("cache_value_corrupt");
  obs::Gauge bytesHighWater = obs::MetricsRegistry::global().gauge(
      "cache_bytes_high_water", obs::GaugeKind::kMax);

  static GlobalCounters& get() {
    static GlobalCounters instance;
    return instance;
  }
};

void removeFileQuiet(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // best effort; a leftover file is only an orphan
}

}  // namespace

DiskCache::DiskCache(StoreOptions options) : options_(std::move(options)) {
  load();
}

DiskCache::~DiskCache() {
  std::lock_guard lock(mutex_);
  if (dirty_) {
    const util::Status status = flushLocked();
    if (!status.isOk()) {
      util::logWarn() << "cache index flush failed: " << status.toString();
    }
  }
}

std::string DiskCache::indexPath() const { return options_.dir + "/index.json"; }

std::string DiskCache::valuePath(const CacheKey& key) const {
  const std::string hex = formatKey(key);
  return options_.dir + "/values/" + hex.substr(0, 2) + "/" + hex + ".val";
}

void DiskCache::load() {
  GlobalCounters& global = GlobalCounters::get();
  const util::Result<std::string> file = util::readFile(indexPath());
  if (!file.ok()) return;  // no index yet: empty cache

  const std::vector<std::string> lines = util::split(file.value(), '\n');
  if (lines.empty()) return;

  // A wrong or missing magic means a different format version: start
  // empty. The stale value files become orphans and are rewritten or
  // cleaned by the next purge — never trusted.
  std::string magic;
  if (!util::jsonStringField(lines[0], "magic", &magic) ||
      magic != kIndexMagic) {
    return;
  }
  long long headerGen = 0;
  if (util::jsonIntField(lines[0], "next_gen", &headerGen) && headerGen > 0) {
    nextGen_ = static_cast<std::uint64_t>(headerGen);
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    std::string keyHex;
    std::string checkHex;
    long long bytes = 0;
    long long gen = 0;
    CacheKey key;
    Entry entry;
    const bool parsed = util::jsonStringField(lines[i], "key", &keyHex) &&
                        parseKey(keyHex, &key) &&
                        util::jsonIntField(lines[i], "bytes", &bytes) &&
                        bytes >= 0 &&
                        util::jsonIntField(lines[i], "gen", &gen) &&
                        gen >= 0 &&
                        util::jsonStringField(lines[i], "check", &checkHex) &&
                        util::parseHex64(checkHex, &entry.check);
    if (!parsed) {
      // Torn or malformed line (typically the tail of a truncated index):
      // skip it — the entry is a miss, everything before it still serves.
      ++stats_.skippedIndexLines;
      global.skippedIndexLines.add();
      continue;
    }
    entry.bytes = static_cast<std::uint64_t>(bytes);
    entry.gen = static_cast<std::uint64_t>(gen);
    const auto [it, inserted] = entries_.insert_or_assign(key, entry);
    (void)it;
    if (!inserted) {
      // Duplicate key (last writer wins): rebuild the aggregates below.
    }
  }

  // Rebuild the derived state from the surviving entries.
  totalBytes_ = 0;
  byGeneration_.clear();
  for (auto& [key, entry] : entries_) {
    // Two entries can carry one generation only via index corruption;
    // disambiguate deterministically rather than dropping either.
    while (byGeneration_.count(entry.gen) != 0) ++entry.gen;
    byGeneration_.emplace(entry.gen, key);
    totalBytes_ += entry.bytes;
    if (entry.gen >= nextGen_) nextGen_ = entry.gen + 1;
  }
  stats_.loadedEntries = entries_.size();
  global.loadedEntries.add(entries_.size());
  global.bytesHighWater.recordMax(static_cast<double>(totalBytes_));
  if (stats_.skippedIndexLines > 0) {
    obs::logEvent(obs::LogLevel::kWarn, "cache", "index_lines_skipped",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("dir", options_.dir);
                    fields.addUint("skipped", stats_.skippedIndexLines);
                  });
  }

  // The capacity may have shrunk since the index was written.
  evictLocked();
}

void DiskCache::touchLocked(const CacheKey& key, Entry& entry) {
  byGeneration_.erase(entry.gen);
  entry.gen = nextGen_++;
  byGeneration_.emplace(entry.gen, key);
  dirty_ = true;
}

void DiskCache::dropLocked(const CacheKey& key, bool deleteFile) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  totalBytes_ -= it->second.bytes;
  byGeneration_.erase(it->second.gen);
  if (deleteFile) removeFileQuiet(valuePath(key));
  entries_.erase(it);
  dirty_ = true;
}

void DiskCache::evictLocked() {
  GlobalCounters& global = GlobalCounters::get();
  while (totalBytes_ > options_.maxBytes && !byGeneration_.empty()) {
    const CacheKey victim = byGeneration_.begin()->second;
    dropLocked(victim, /*deleteFile=*/true);
    ++stats_.evictions;
    global.evictions.add();
    obs::logEvent(obs::LogLevel::kDebug, "cache", "eviction",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("key", formatKey(victim));
                    fields.addUint("bytes_after", totalBytes_);
                  });
  }
}

std::optional<std::string> DiskCache::get(const CacheKey& key) {
  GlobalCounters& global = GlobalCounters::get();
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    global.misses.add();
    return std::nullopt;
  }

  util::Result<std::string> value = util::readFile(valuePath(key));
  const bool intact = value.ok() &&
                      value.value().size() == it->second.bytes &&
                      util::hash64(value.value()) == it->second.check;
  if (!intact) {
    // The index promised bytes the filesystem no longer has (crash orphan
    // cleanup, manual tampering, bit rot): drop the entry so the caller
    // recomputes and put() repairs the cache.
    dropLocked(key, /*deleteFile=*/true);
    ++stats_.corruptValues;
    ++stats_.misses;
    global.corruptValues.add();
    global.misses.add();
    obs::logEvent(obs::LogLevel::kWarn, "cache", "value_corrupt",
                  [&](util::JsonObjectBuilder& fields) {
                    fields.add("key", formatKey(key));
                  });
    return std::nullopt;
  }

  touchLocked(key, it->second);
  ++stats_.hits;
  global.hits.add();
  return std::move(value.value());
}

util::Status DiskCache::put(const CacheKey& key, std::string_view value) {
  GlobalCounters& global = GlobalCounters::get();
  std::lock_guard lock(mutex_);

  // Value first, index second: until the index records the entry the new
  // file is at worst an orphan, never a torn read.
  const util::Status written = util::atomicWriteFile(valuePath(key), value);
  if (!written.isOk()) return written;

  dropLocked(key, /*deleteFile=*/false);  // overwrite: retire the old entry
  Entry entry;
  entry.bytes = value.size();
  entry.check = util::hash64(value);
  entry.gen = nextGen_++;
  byGeneration_.emplace(entry.gen, key);
  entries_.emplace(key, entry);
  totalBytes_ += entry.bytes;
  dirty_ = true;
  ++stats_.puts;
  ++unflushedPuts_;
  global.puts.add();
  global.bytesHighWater.recordMax(static_cast<double>(totalBytes_));

  evictLocked();
  if (options_.flushInterval > 0 && unflushedPuts_ >= options_.flushInterval) {
    return flushLocked();
  }
  return util::Status::ok();
}

std::string DiskCache::indexContentLocked() const {
  std::string content;
  content.reserve(64 + entries_.size() * 96);
  content += util::JsonObjectBuilder()
                 .add("magic", kIndexMagic)
                 .addUint("next_gen", nextGen_)
                 .str();
  content += '\n';
  // Generation order keeps the file deterministic for a given access
  // history and lets a truncated tail cost only the *newest* entries.
  for (const auto& [gen, key] : byGeneration_) {
    const Entry& entry = entries_.at(key);
    content += util::JsonObjectBuilder()
                   .add("key", formatKey(key))
                   .addUint("bytes", entry.bytes)
                   .addUint("gen", gen)
                   .add("check", util::toHex64(entry.check))
                   .str();
    content += '\n';
  }
  return content;
}

util::Status DiskCache::flushLocked() {
  const util::Status status =
      util::atomicWriteFile(indexPath(), indexContentLocked());
  if (status.isOk()) {
    dirty_ = false;
    unflushedPuts_ = 0;
  }
  return status;
}

util::Status DiskCache::flush() {
  std::lock_guard lock(mutex_);
  return flushLocked();
}

util::Status DiskCache::purge() {
  std::lock_guard lock(mutex_);
  obs::logEvent(obs::LogLevel::kInfo, "cache", "purge",
                [&](util::JsonObjectBuilder& fields) {
                  fields.add("dir", options_.dir);
                  fields.addUint("entries", entries_.size());
                });
  entries_.clear();
  byGeneration_.clear();
  totalBytes_ = 0;
  unflushedPuts_ = 0;
  dirty_ = false;
  std::error_code ec;
  fs::remove_all(options_.dir + "/values", ec);
  if (ec) {
    return util::Status(util::StatusCode::kInternal,
                        "purge " + options_.dir + ": " + ec.message());
  }
  removeFileQuiet(indexPath());
  return util::Status::ok();
}

std::size_t DiskCache::entryCount() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::uint64_t DiskCache::totalBytes() const {
  std::lock_guard lock(mutex_);
  return totalBytes_;
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

DiskCache::VerifyReport DiskCache::verify() const {
  VerifyReport report;
  std::lock_guard lock(mutex_);
  report.entries = entries_.size();
  report.bytes = totalBytes_;
  report.skippedIndexLines = stats_.skippedIndexLines;
  if (stats_.skippedIndexLines > 0) {
    report.problems.push_back(
        "index: " + std::to_string(stats_.skippedIndexLines) +
        " torn line(s) skipped at load");
  }

  for (const auto& [key, entry] : entries_) {
    const std::string path = valuePath(key);
    const util::Result<std::string> value = util::readFile(path);
    if (!value.ok()) {
      report.problems.push_back("missing value file " + path);
      continue;
    }
    if (value.value().size() != entry.bytes) {
      report.problems.push_back(
          "size mismatch " + path + ": index " + std::to_string(entry.bytes) +
          " vs file " + std::to_string(value.value().size()));
      continue;
    }
    if (util::hash64(value.value()) != entry.check) {
      report.problems.push_back("checksum mismatch " + path);
    }
  }

  std::error_code ec;
  const fs::path valuesDir = fs::path(options_.dir) / "values";
  if (fs::is_directory(valuesDir, ec)) {
    for (const auto& shard : fs::directory_iterator(valuesDir, ec)) {
      if (!shard.is_directory()) continue;
      for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
        CacheKey key;
        const std::string stem = file.path().stem().string();
        if (file.path().extension() != ".val" || !parseKey(stem, &key) ||
            entries_.find(key) == entries_.end()) {
          ++report.orphanValues;
        }
      }
    }
  }
  return report;
}

DiskCache* DiskCache::processCache() {
  static const std::unique_ptr<DiskCache> instance =
      []() -> std::unique_ptr<DiskCache> {
    const char* dir = std::getenv("SCA_CACHE_DIR");
    if (dir == nullptr || *dir == '\0') return nullptr;
    StoreOptions options;
    options.dir = dir;
    // The shared store absorbs bursts of analysis spills; flushing every
    // 32nd put keeps the index rewrite amortized while a crash costs at
    // most 31 warm entries (values stay intact as orphans).
    options.flushInterval = 32;
    if (const char* raw = std::getenv("SCA_CACHE_MAX_BYTES");
        raw != nullptr && *raw != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(raw, &end, 10);
      if (end != raw && parsed > 0) options.maxBytes = parsed;
    }
    return std::make_unique<DiskCache>(std::move(options));
  }();
  return instance.get();
}

}  // namespace sca::cache
