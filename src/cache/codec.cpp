#include "cache/codec.hpp"

#include <cstring>

namespace sca::cache {

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t length = u32();
  if (!take(length)) return std::string();
  std::string out(data_.substr(pos_, length));
  pos_ += length;
  return out;
}

}  // namespace sca::cache
