// Exact binary encoding for cache value payloads.
//
// Cached values must round-trip *bit for bit* — the repo's standing
// invariant is that results are byte-identical with the cache off, cold or
// warm, and a double squeezed through decimal formatting would break that.
// So payloads are little-endian fixed-width fields: integers verbatim,
// doubles as their IEEE-754 bit pattern, strings length-prefixed.
//
// The reader is the deserializer's safety net: every read is bounds
// checked, and the first overrun latches ok() to false while subsequent
// reads return zeros/empties. Callers check ok() && atEnd() once at the
// end and treat failure as a cache miss — a truncated or corrupt value
// file can cost a recompute, never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sca::cache {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// Exact IEEE-754 bit pattern; round-trips every value including -0.0,
  /// infinities and NaN payloads.
  void f64(double v);

  /// u32 byte length + raw bytes.
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  bool boolean() { return u8() != 0; }

  /// True while no read has run past the end of the buffer.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when the whole buffer has been consumed (trailing garbage in a
  /// value file is as suspect as truncation).
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == data_.size(); }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sca::cache
