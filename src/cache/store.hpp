// DiskCache: a crash-safe, content-addressed, on-disk LRU cache.
//
// This is what lets repeated bench runs, CV folds and repeated-transform
// sweeps amortize LLM and stylometry cost across *processes* — the shape
// of workload the attribution literature runs constantly (50-step NCT/CT
// schedules per setting, re-extracted per fold). The in-memory caches of
// PR 1 die with the process; this store does not.
//
// On-disk layout under `dir`:
//
//   index.json                   versioned single-file JSONL index
//     {"magic":"sca-cache-v1","next_gen":123}
//     {"key":"<32 hex>","bytes":512,"gen":7,"check":"<16 hex>"}
//     ...
//   values/<kk>/<32 hex>.val     one file per entry, sharded by the key's
//                                first two hex chars; contents are the
//                                value bytes verbatim
//
// Durability and corruption tolerance:
//
//   * Both the index and every value file are written via
//     util::atomicWriteFile (temp + rename), so a kill at any instant
//     leaves either the previous file or a stray temp — never a torn one.
//   * The index is the source of truth. A crash between a value write and
//     the next index flush orphans the value file; orphans are invisible
//     to get() and reported (not failed) by verify().
//   * Loading is corruption-*tolerant*: a bad magic or unreadable index
//     starts the cache empty; a torn index line is skipped; a get() whose
//     value file is missing, short, or fails its checksum drops the entry
//     and reports a miss. A bad entry is a miss, never an abort.
//
// Eviction: entries carry a generation stamp (monotone counter, persisted)
// bumped on every hit and put; when total value bytes exceed maxBytes the
// lowest-generation entries are evicted — LRU in arrival-or-access order,
// deterministic because generations are assigned under the store lock.
//
// Telemetry: hit/miss/put/evict/load counters and a byte high-water gauge
// land in the obs registry as *runtime* instruments (prefix "cache_") —
// cache effectiveness depends on what a previous process left on disk, so
// these can never be part of the byte-compared stable section. Per-instance
// counts are also kept in Stats for tests that need isolation from the
// global registry.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/key.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace sca::cache {

struct StoreOptions {
  std::string dir;
  /// Eviction threshold over the sum of value bytes (index excluded).
  std::uint64_t maxBytes = 256ull << 20;
  /// Persist the index after every Nth put. 1 = every put (a crash loses at
  /// most the in-flight entry); larger amortizes the index rewrite over
  /// bursts of puts (a crash orphans at most N-1 values — still safe, just
  /// cold); 0 = only on flush()/destruction.
  std::size_t flushInterval = 1;
};

class DiskCache {
 public:
  static constexpr std::string_view kIndexMagic = "sca-cache-v1";

  /// Opens (and loads) the cache at options.dir; a missing or invalid
  /// index starts empty. The directory is created lazily on first write.
  explicit DiskCache(StoreOptions options);

  /// Best-effort final flush.
  ~DiskCache();

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// The value bytes, or nullopt on miss (unknown key, missing value file,
  /// checksum mismatch — the latter two also drop the entry). A hit
  /// refreshes the entry's LRU generation.
  [[nodiscard]] std::optional<std::string> get(const CacheKey& key);

  /// Inserts or overwrites. Evicts lowest-generation entries once total
  /// bytes exceed maxBytes (a value larger than maxBytes is evicted
  /// immediately — put() never fails the caller for capacity reasons).
  /// Returns non-OK only when the value file cannot be written.
  util::Status put(const CacheKey& key, std::string_view value);

  /// Persists the index now (atomic replace).
  util::Status flush();

  /// Drops every entry, deletes the value tree and the index file.
  util::Status purge();

  [[nodiscard]] std::size_t entryCount() const;
  [[nodiscard]] std::uint64_t totalBytes() const;
  [[nodiscard]] const std::string& dir() const noexcept {
    return options_.dir;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t loadedEntries = 0;      // read from the index at open
    std::uint64_t skippedIndexLines = 0;  // torn/malformed lines at open
    std::uint64_t corruptValues = 0;      // checksum/read failures in get()
  };
  [[nodiscard]] Stats stats() const;

  /// Index/value consistency check of the *current* state: every entry's
  /// value file must exist with the recorded size and checksum. problems
  /// is empty when consistent; orphanValues counts value files the index
  /// does not know (informational — the expected residue of a crash
  /// between value write and index flush).
  struct VerifyReport {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    std::size_t orphanValues = 0;
    std::uint64_t skippedIndexLines = 0;
    std::vector<std::string> problems;
    [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
  };
  [[nodiscard]] VerifyReport verify() const;

  /// The process-wide store configured from the environment — SCA_CACHE_DIR
  /// (unset/empty disables caching; nullptr is returned) and
  /// SCA_CACHE_MAX_BYTES (bytes; default 256 MiB). Created on first use,
  /// flushed at exit.
  [[nodiscard]] static DiskCache* processCache();

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t gen = 0;
    std::uint64_t check = 0;  // util::hash64 of the value bytes
  };

  void load();
  [[nodiscard]] std::string indexPath() const;
  [[nodiscard]] std::string valuePath(const CacheKey& key) const;
  void touchLocked(const CacheKey& key, Entry& entry);
  void dropLocked(const CacheKey& key, bool deleteFile);
  void evictLocked();
  util::Status flushLocked();
  [[nodiscard]] std::string indexContentLocked() const;

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
  std::map<std::uint64_t, CacheKey> byGeneration_;  // LRU order, oldest first
  std::uint64_t nextGen_ = 1;
  std::uint64_t totalBytes_ = 0;
  std::size_t unflushedPuts_ = 0;
  bool dirty_ = false;
  Stats stats_;
};

}  // namespace sca::cache
