// Content-addressed cache keys.
//
// A key is 128 bits split across two 64-bit words with distinct roles:
//
//   hi — the *configuration* half: a namespace tag (which subsystem owns
//        the entry, and its serialization format version) folded with a
//        hash of every knob the value depends on. Bumping a format
//        version or changing a model option changes hi, so stale entries
//        are simply never addressed again — they age out through LRU
//        instead of being migrated or poisoning reads.
//   lo — the *content* half: the request/content fingerprint (for LLM
//        entries, the conversation-folded request hash; for analyses,
//        the source hash).
//
// Collisions require both halves to collide, and the halves are derived
// from independent inputs, so a 64-bit content hash is comfortably safe
// for the corpus sizes this pipeline sees.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sca::cache {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) noexcept {
    return !(a == b);
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    return static_cast<std::size_t>(util::combine64(key.hi, key.lo));
  }
};

/// 32 lowercase hex chars (hi then lo) — the on-disk spelling used by the
/// index and the sharded value-file names.
[[nodiscard]] inline std::string formatKey(const CacheKey& key) {
  return util::toHex64(key.hi) + util::toHex64(key.lo);
}

/// Parses exactly formatKey's output. False (out untouched) otherwise.
[[nodiscard]] inline bool parseKey(std::string_view text, CacheKey* out) {
  if (text.size() != 32) return false;
  CacheKey key;
  if (!util::parseHex64(text.substr(0, 16), &key.hi)) return false;
  if (!util::parseHex64(text.substr(16, 16), &key.lo)) return false;
  *out = key;
  return true;
}

}  // namespace sca::cache
