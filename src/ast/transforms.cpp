#include "ast/transforms.hpp"

#include <algorithm>
#include <set>

#include "ast/visit.hpp"
#include "util/strings.hpp"

namespace sca::ast {
namespace {

/// Applies a rename map to one (possibly dotted) name.
std::string renameName(const std::string& name,
                       const std::map<std::string, std::string>& renames) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) {
    const auto it = renames.find(name);
    return it == renames.end() ? name : it->second;
  }
  // Dotted member name: rename the base (which may itself be "arr[i]").
  std::string base = name.substr(0, dot);
  const std::string rest = name.substr(dot);
  const std::size_t bracket = base.find('[');
  if (bracket == std::string::npos) {
    const auto it = renames.find(base);
    if (it != renames.end()) base = it->second;
  } else {
    std::string root = base.substr(0, bracket);
    const auto it = renames.find(root);
    if (it != renames.end()) {
      base = it->second + base.substr(bracket);
    }
  }
  return base + rest;
}

}  // namespace

void renameIdentifiers(TranslationUnit& unit,
                       const std::map<std::string, std::string>& renames) {
  auto renamed = [&](const std::string& name) {
    if (name == "main") return name;
    return renameName(name, renames);
  };
  for (Function& fn : unit.functions) {
    fn.name = renamed(fn.name);
    for (Param& p : fn.params) p.name = renamed(p.name);
  }
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      for (Declarator& d : stmt.as<VarDeclStmt>().decls) {
        d.name = renamed(d.name);
      }
    }
  });
  for (StmtPtr& g : unit.globals) {
    if (g && g->is<VarDeclStmt>()) {
      for (Declarator& d : g->as<VarDeclStmt>().decls) d.name = renamed(d.name);
    }
  }
  forEachExpr(unit, [&](Expr& expr) {
    if (expr.is<Ident>()) {
      Ident& id = expr.as<Ident>();
      id.name = renamed(id.name);
    } else if (expr.is<Call>()) {
      Call& c = expr.as<Call>();
      c.callee = renamed(c.callee);
    }
  });
}

namespace {

/// Rewrites "for (init; cond; step) {body}" children of one statement list
/// into "init; while (cond) {body; step;}". A loop whose init declares a
/// name that is already visible at this block level (a sibling declaration
/// or a previously hoisted loop variable) is left as-is — hoisting it would
/// create a duplicate declaration.
void rewriteForListToWhile(std::vector<StmtPtr>& stmts) {
  std::set<std::string> blockNames;
  for (const StmtPtr& child : stmts) {
    if (child && child->is<VarDeclStmt>()) {
      for (const Declarator& d : child->as<VarDeclStmt>().decls) {
        blockNames.insert(d.name);
      }
    }
  }
  std::vector<StmtPtr> rewritten;
  rewritten.reserve(stmts.size());
  for (StmtPtr& child : stmts) {
    if (child && child->is<ForStmt>()) {
      ForStmt& loop = child->as<ForStmt>();
      bool hoistable = loop.init && loop.cond && loop.step && loop.body &&
                       loop.body->is<BlockStmt>();
      if (hoistable) {
        // "continue" inside the body would skip the appended step and turn
        // a counting loop into an infinite one; leave such loops alone.
        forEachStmt(*loop.body, [&](Stmt& inner) {
          if (inner.is<ContinueStmt>()) hoistable = false;
        });
      }
      if (hoistable && loop.init->is<VarDeclStmt>()) {
        for (const Declarator& d : loop.init->as<VarDeclStmt>().decls) {
          if (!blockNames.insert(d.name).second) hoistable = false;
        }
      }
      if (hoistable) {
        BlockStmt& body = loop.body->as<BlockStmt>();
        body.stmts.push_back(exprStmt(deepCopy(*loop.step)));
        StmtPtr whileLoop =
            whileStmt(std::move(loop.cond), std::move(loop.body));
        rewritten.push_back(std::move(loop.init));
        rewritten.push_back(std::move(whileLoop));
        continue;
      }
    }
    rewritten.push_back(std::move(child));
  }
  stmts = std::move(rewritten);
}

}  // namespace

void convertForToWhile(TranslationUnit& unit) {
  forEachStmt(unit, [](Stmt& stmt) {
    if (stmt.is<BlockStmt>()) rewriteForListToWhile(stmt.as<BlockStmt>().stmts);
  });
  // Function bodies are BlockStmt values, not visited as Stmt nodes.
  for (Function& fn : unit.functions) rewriteForListToWhile(fn.body.stmts);
}

void convertWhileToFor(TranslationUnit& unit) {
  auto rewrite = [](StmtPtr& child) {
    if (child && child->is<WhileStmt>()) {
      WhileStmt& loop = child->as<WhileStmt>();
      child = forStmt(nullptr, std::move(loop.cond), nullptr,
                      std::move(loop.body));
    }
  };
  forEachStmt(unit, [&](Stmt& stmt) {
    if (!stmt.is<BlockStmt>()) return;
    for (StmtPtr& child : stmt.as<BlockStmt>().stmts) rewrite(child);
  });
  for (Function& fn : unit.functions) {
    for (StmtPtr& child : fn.body.stmts) rewrite(child);
  }
}

namespace {

/// True when `name` is referenced anywhere inside the statement.
bool referencesName(Stmt& stmt, const std::string& name) {
  bool found = false;
  forEachStmt(stmt, [&](Stmt& inner) {
    auto check = [&](Expr& e) {
      forEachExpr(e, [&](Expr& sub) {
        if (sub.is<Ident>() && sub.as<Ident>().name == name) found = true;
        if (sub.is<Call>()) {
          const std::string& callee = sub.as<Call>().callee;
          if (callee == name ||
              callee.rfind(name + ".", 0) == 0 ||
              callee.rfind(name + "[", 0) == 0) {
            found = true;
          }
        }
      });
    };
    std::visit(
        [&](auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarDeclStmt>) {
            for (auto& d : node.decls) {
              if (d.init) check(*d.init);
              if (d.arraySize) check(*d.arraySize);
            }
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            if (node.expr) check(*node.expr);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            if (node.cond) check(*node.cond);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            if (node.cond) check(*node.cond);
            if (node.step) check(*node.step);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            if (node.cond) check(*node.cond);
          } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
            if (node.cond) check(*node.cond);
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            if (node.value) check(*node.value);
          } else if constexpr (std::is_same_v<T, ReadStmt>) {
            for (auto& t : node.targets) {
              if (t.lvalue) check(*t.lvalue);
            }
          } else if constexpr (std::is_same_v<T, WriteStmt>) {
            for (auto& item : node.items) {
              if (item.expr) check(*item.expr);
            }
          }
        },
        inner.node);
  });
  return found;
}

/// True when `expr` is "name++", "++name", "name += k" or similar step.
bool isStepOf(const Expr& expr, const std::string& name) {
  if (expr.is<Unary>()) {
    const Unary& u = expr.as<Unary>();
    return (u.op == UnaryOp::PostInc || u.op == UnaryOp::PreInc ||
            u.op == UnaryOp::PostDec || u.op == UnaryOp::PreDec) &&
           u.operand->is<Ident>() && u.operand->as<Ident>().name == name;
  }
  if (expr.is<Assign>()) {
    const Assign& a = expr.as<Assign>();
    return a.op != AssignOp::Assign && a.target->is<Ident>() &&
           a.target->as<Ident>().name == name;
  }
  return false;
}

std::size_t rebuildCountingFors(std::vector<StmtPtr>& stmts) {
  std::size_t rebuilt = 0;
  for (std::size_t i = 0; i + 1 < stmts.size(); ++i) {
    StmtPtr& declStmt = stmts[i];
    StmtPtr& loopStmt = stmts[i + 1];
    if (!declStmt || !loopStmt || !declStmt->is<VarDeclStmt>() ||
        !loopStmt->is<WhileStmt>()) {
      continue;
    }
    VarDeclStmt& decl = declStmt->as<VarDeclStmt>();
    if (decl.decls.size() != 1 || decl.decls[0].init == nullptr ||
        decl.decls[0].arraySize != nullptr || decl.type.isVector) {
      continue;
    }
    const std::string& var = decl.decls[0].name;
    WhileStmt& loop = loopStmt->as<WhileStmt>();
    if (!loop.body || !loop.body->is<BlockStmt>()) continue;
    BlockStmt& body = loop.body->as<BlockStmt>();
    // Condition must mention the variable.
    bool inCond = false;
    forEachExpr(*loop.cond, [&](Expr& e) {
      if (e.is<Ident>() && e.as<Ident>().name == var) inCond = true;
    });
    if (!inCond) continue;
    // Last (non-comment) body statement must be the step.
    std::size_t lastIdx = body.stmts.size();
    while (lastIdx > 0) {
      --lastIdx;
      if (body.stmts[lastIdx] && !body.stmts[lastIdx]->is<CommentStmt>()) {
        break;
      }
    }
    if (lastIdx >= body.stmts.size() || !body.stmts[lastIdx] ||
        !body.stmts[lastIdx]->is<ExprStmt>()) {
      continue;
    }
    const ExprPtr& stepExpr = body.stmts[lastIdx]->as<ExprStmt>().expr;
    if (!stepExpr || !isStepOf(*stepExpr, var)) continue;
    // The variable must be dead after the loop (it moves into for-scope).
    bool usedAfter = false;
    for (std::size_t j = i + 2; j < stmts.size(); ++j) {
      if (stmts[j] && referencesName(*stmts[j], var)) usedAfter = true;
    }
    if (usedAfter) continue;
    // The body must not `continue` (it would re-route around the step once
    // the step moves into the for-header — semantics would change the
    // other way here: for re-runs the step, the original while did not).
    bool hasContinue = false;
    forEachStmt(*loop.body, [&](Stmt& inner) {
      if (inner.is<ContinueStmt>()) hasContinue = true;
    });
    if (hasContinue) continue;

    ExprPtr step = deepCopy(*stepExpr);
    body.stmts.erase(body.stmts.begin() + static_cast<std::ptrdiff_t>(lastIdx));
    StmtPtr init = std::move(declStmt);
    StmtPtr rebuiltLoop = forStmt(std::move(init), std::move(loop.cond),
                                  std::move(step), std::move(loop.body));
    stmts[i] = std::move(rebuiltLoop);
    stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    ++rebuilt;
  }
  return rebuilt;
}

}  // namespace

std::size_t convertWhileToCountingFor(TranslationUnit& unit) {
  std::size_t rebuilt = 0;
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<BlockStmt>()) {
      rebuilt += rebuildCountingFors(stmt.as<BlockStmt>().stmts);
    }
  });
  for (Function& fn : unit.functions) {
    rebuilt += rebuildCountingFors(fn.body.stmts);
  }
  return rebuilt;
}

void setIncrementStyle(TranslationUnit& unit, IncrementStyle style) {
  auto flip = [&](Expr& expr) {
    if (!expr.is<Unary>()) return;
    Unary& u = expr.as<Unary>();
    if (style == IncrementStyle::PreIncrement) {
      if (u.op == UnaryOp::PostInc) u.op = UnaryOp::PreInc;
      if (u.op == UnaryOp::PostDec) u.op = UnaryOp::PreDec;
    } else {
      if (u.op == UnaryOp::PreInc) u.op = UnaryOp::PostInc;
      if (u.op == UnaryOp::PreDec) u.op = UnaryOp::PostDec;
    }
  };
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<ExprStmt>() && stmt.as<ExprStmt>().expr) {
      flip(*stmt.as<ExprStmt>().expr);
    }
    if (stmt.is<ForStmt>() && stmt.as<ForStmt>().step) {
      flip(*stmt.as<ForStmt>().step);
    }
  });
}

void preferCompoundAssign(TranslationUnit& unit, bool useCompound) {
  auto rewrite = [&](ExprPtr& expr) {
    if (!expr || !expr->is<Assign>()) return;
    Assign& a = expr->as<Assign>();
    if (useCompound) {
      // x = x + k  ->  x += k (target must be a plain identifier).
      if (a.op != AssignOp::Assign || !a.target->is<Ident>() ||
          !a.value->is<Binary>()) {
        return;
      }
      Binary& b = a.value->as<Binary>();
      AssignOp compound;
      switch (b.op) {
        case BinaryOp::Add: compound = AssignOp::AddAssign; break;
        case BinaryOp::Sub: compound = AssignOp::SubAssign; break;
        case BinaryOp::Mul: compound = AssignOp::MulAssign; break;
        case BinaryOp::Div: compound = AssignOp::DivAssign; break;
        case BinaryOp::Mod: compound = AssignOp::ModAssign; break;
        default: return;
      }
      if (!b.lhs->is<Ident>() ||
          b.lhs->as<Ident>().name != a.target->as<Ident>().name) {
        return;
      }
      a.op = compound;
      ExprPtr rhs = std::move(b.rhs);
      a.value = std::move(rhs);
    } else {
      // x += k  ->  x = x + k.
      BinaryOp op;
      switch (a.op) {
        case AssignOp::AddAssign: op = BinaryOp::Add; break;
        case AssignOp::SubAssign: op = BinaryOp::Sub; break;
        case AssignOp::MulAssign: op = BinaryOp::Mul; break;
        case AssignOp::DivAssign: op = BinaryOp::Div; break;
        case AssignOp::ModAssign: op = BinaryOp::Mod; break;
        default: return;
      }
      if (!a.target->is<Ident>()) return;
      a.op = AssignOp::Assign;
      a.value = binary(op, deepCopy(*a.target), std::move(a.value));
    }
  };
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<ExprStmt>()) rewrite(stmt.as<ExprStmt>().expr);
    if (stmt.is<ForStmt>()) rewrite(stmt.as<ForStmt>().step);
  });
}

void stripComments(TranslationUnit& unit) {
  unit.headerComment.clear();
  for (Function& fn : unit.functions) fn.leadingComment.clear();
  auto strip = [](std::vector<StmtPtr>& stmts) {
    std::erase_if(stmts, [](const StmtPtr& s) {
      return s != nullptr && s->is<CommentStmt>();
    });
  };
  for (Function& fn : unit.functions) strip(fn.body.stmts);
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<BlockStmt>()) strip(stmt.as<BlockStmt>().stmts);
  });
}

void widenIntToLongLong(TranslationUnit& unit) {
  auto widen = [](TypeRef& type) {
    if (type.base == BaseType::Int) type.base = BaseType::LongLong;
  };
  for (Function& fn : unit.functions) {
    if (fn.name != "main") widen(fn.returnType);
    for (Param& p : fn.params) widen(p.type);
  }
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) widen(stmt.as<VarDeclStmt>().type);
    if (stmt.is<ReadStmt>()) {
      for (ReadTarget& t : stmt.as<ReadStmt>().targets) widen(t.type);
    }
    if (stmt.is<WriteStmt>()) {
      for (WriteItem& item : stmt.as<WriteStmt>().items) {
        if (!item.isLiteral) widen(item.type);
      }
    }
  });
  forEachExpr(unit, [&](Expr& expr) {
    if (expr.is<Cast>()) widen(expr.as<Cast>().type);
  });
}

void aliasLongLong(TranslationUnit& unit, const std::string& aliasName,
                   bool usesTypedef) {
  for (const TypeAlias& alias : unit.aliases) {
    if (alias.aliased.base == BaseType::LongLong) return;  // already aliased
  }
  unit.aliases.push_back(
      TypeAlias{aliasName, TypeRef{BaseType::LongLong, false}, usesTypedef});
}

std::map<std::string, TypeRef> declaredTypes(const TranslationUnit& unit) {
  std::map<std::string, TypeRef> types;
  for (const Function& fn : unit.functions) {
    for (const Param& p : fn.params) types[p.name] = p.type;
  }
  forEachStmt(unit, [&](const Stmt& stmt) {
    if (stmt.is<VarDeclStmt>()) {
      const VarDeclStmt& d = stmt.as<VarDeclStmt>();
      for (const Declarator& decl : d.decls) {
        TypeRef t = d.type;
        if (decl.arraySize) t.isVector = true;
        types[decl.name] = t;
      }
    }
  });
  for (const StmtPtr& g : unit.globals) {
    if (g && g->is<VarDeclStmt>()) {
      const VarDeclStmt& d = g->as<VarDeclStmt>();
      for (const Declarator& decl : d.decls) {
        TypeRef t = d.type;
        if (decl.arraySize) t.isVector = true;
        types[decl.name] = t;
      }
    }
  }
  return types;
}

namespace {

/// Names declared inside a statement subtree (variables only).
std::set<std::string> namesDeclaredIn(const std::vector<StmtPtr>& stmts) {
  std::set<std::string> names;
  for (const StmtPtr& stmt : stmts) {
    if (!stmt) continue;
    forEachStmt(*stmt, [&](Stmt& s) {
      if (s.is<VarDeclStmt>()) {
        for (const Declarator& d : s.as<VarDeclStmt>().decls) {
          names.insert(d.name);
        }
      }
    });
  }
  return names;
}

/// Identifiers used inside a statement subtree, in first-use order.
std::vector<std::string> namesUsedIn(const std::vector<StmtPtr>& stmts) {
  std::vector<std::string> used;
  std::set<std::string> seen;
  auto add = [&](const std::string& raw) {
    // Only the root of a dotted / indexed name counts as a use.
    std::string name = raw;
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos) name = name.substr(0, dot);
    const std::size_t bracket = name.find('[');
    if (bracket != std::string::npos) name = name.substr(0, bracket);
    if (name.empty()) return;
    if (seen.insert(name).second) used.push_back(name);
  };
  // Walk statements manually to reach expressions in declaration inits too.
  for (const StmtPtr& stmt : stmts) {
    if (!stmt) continue;
    forEachStmt(*stmt, [&](Stmt& s) {
      auto visitExpr = [&](Expr& e) {
        forEachExpr(e, [&](Expr& inner) {
          if (inner.is<Ident>()) add(inner.as<Ident>().name);
          if (inner.is<Call>()) add(inner.as<Call>().callee);
        });
      };
      std::visit(
          [&](auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, VarDeclStmt>) {
              for (auto& d : node.decls) {
                if (d.init) visitExpr(*d.init);
                if (d.arraySize) visitExpr(*d.arraySize);
              }
            } else if constexpr (std::is_same_v<T, ExprStmt>) {
              if (node.expr) visitExpr(*node.expr);
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              if (node.cond) visitExpr(*node.cond);
            } else if constexpr (std::is_same_v<T, ForStmt>) {
              if (node.cond) visitExpr(*node.cond);
              if (node.step) visitExpr(*node.step);
            } else if constexpr (std::is_same_v<T, WhileStmt>) {
              if (node.cond) visitExpr(*node.cond);
            } else if constexpr (std::is_same_v<T, DoWhileStmt>) {
              if (node.cond) visitExpr(*node.cond);
            } else if constexpr (std::is_same_v<T, ReturnStmt>) {
              if (node.value) visitExpr(*node.value);
            } else if constexpr (std::is_same_v<T, ReadStmt>) {
              for (auto& t : node.targets) {
                if (t.lvalue) visitExpr(*t.lvalue);
              }
            } else if constexpr (std::is_same_v<T, WriteStmt>) {
              for (auto& item : node.items) {
                if (item.expr) visitExpr(*item.expr);
              }
            }
          },
          s.node);
    });
  }
  return used;
}

const std::set<std::string>& builtinNames() {
  static const std::set<std::string> kNames = {
      "cin",  "cout", "cerr", "endl",  "max",  "min",   "swap",  "abs",
      "sort", "sqrt", "pow",  "fabs",  "ceil", "floor", "round", "fixed",
      "setprecision", "to_string", "printf", "scanf", "getline", "reverse",
      "sizeof", "log", "log2", "exp", "main",
  };
  return kNames;
}

}  // namespace

bool extractSolveFunction(TranslationUnit& unit,
                          const std::string& functionName) {
  // Refuse if a function of that name exists or there is already a helper.
  for (const Function& fn : unit.functions) {
    if (fn.name == functionName) return false;
  }
  Function* mainFn = nullptr;
  for (Function& fn : unit.functions) {
    if (fn.name == "main") mainFn = &fn;
  }
  if (mainFn == nullptr) return false;

  // Find main's outermost for/while loop with a block body of >= 2 stmts.
  for (StmtPtr& stmt : mainFn->body.stmts) {
    if (!stmt) continue;
    StmtPtr* bodySlot = nullptr;
    std::string loopVar;
    if (stmt->is<ForStmt>()) {
      ForStmt& loop = stmt->as<ForStmt>();
      bodySlot = &loop.body;
      if (loop.init && loop.init->is<VarDeclStmt>() &&
          !loop.init->as<VarDeclStmt>().decls.empty()) {
        loopVar = loop.init->as<VarDeclStmt>().decls[0].name;
      }
    } else if (stmt->is<WhileStmt>()) {
      bodySlot = &stmt->as<WhileStmt>().body;
    } else {
      continue;
    }
    if (bodySlot == nullptr || !*bodySlot || !(*bodySlot)->is<BlockStmt>()) {
      continue;
    }
    BlockStmt& body = (*bodySlot)->as<BlockStmt>();
    std::size_t realStmts = 0;
    for (const StmtPtr& s : body.stmts) {
      if (s && !s->is<CommentStmt>()) ++realStmts;
    }
    if (realStmts < 2) continue;
    // Body must not contain break/continue/return (they would change
    // meaning when moved into a function).
    bool movable = true;
    for (const StmtPtr& s : body.stmts) {
      if (!s) continue;
      forEachStmt(*s, [&](Stmt& inner) {
        if (inner.is<BreakStmt>() || inner.is<ContinueStmt>() ||
            inner.is<ReturnStmt>()) {
          movable = false;
        }
      });
    }
    if (!movable) continue;

    // Free variables of the loop body -> parameters.
    const std::set<std::string> declared = namesDeclaredIn(body.stmts);
    const std::vector<std::string> used = namesUsedIn(body.stmts);
    const std::map<std::string, TypeRef> types = declaredTypes(unit);
    std::set<std::string> functionNames;
    for (const Function& fn : unit.functions) functionNames.insert(fn.name);

    Function solver;
    solver.returnType = TypeRef{BaseType::Void, false};
    solver.name = functionName;
    std::vector<ExprPtr> callArgs;
    for (const std::string& name : used) {
      if (declared.count(name) > 0 || functionNames.count(name) > 0 ||
          builtinNames().count(name) > 0) {
        continue;
      }
      TypeRef type{BaseType::Int, false};
      const auto it = types.find(name);
      if (it != types.end()) type = it->second;
      if (name == loopVar) type.isVector = false;
      Param param;
      param.type = type;
      param.name = name;
      param.byReference = type.isVector || type.base == BaseType::String;
      solver.params.push_back(param);
      callArgs.push_back(ident(name));
    }
    solver.body.stmts = std::move(body.stmts);
    body.stmts.clear();
    body.stmts.push_back(
        exprStmt(call(functionName, std::move(callArgs))));
    // Insert the helper before main.
    std::vector<Function> functions;
    functions.reserve(unit.functions.size() + 1);
    for (Function& fn : unit.functions) {
      if (fn.name == "main") functions.push_back(std::move(solver));
      functions.push_back(std::move(fn));
    }
    unit.functions = std::move(functions);
    return true;
  }
  return false;
}

std::size_t inlineHelperFunctions(TranslationUnit& unit) {
  std::size_t inlined = 0;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t fi = 0; fi < unit.functions.size(); ++fi) {
      Function& candidate = unit.functions[fi];
      if (candidate.name == "main" ||
          candidate.returnType.base != BaseType::Void) {
        continue;
      }
      // Count statement-position calls across all functions.
      std::size_t callCount = 0;
      Stmt* callSite = nullptr;
      forEachStmt(unit, [&](Stmt& stmt) {
        if (stmt.is<ExprStmt>() && stmt.as<ExprStmt>().expr &&
            stmt.as<ExprStmt>().expr->is<Call>() &&
            stmt.as<ExprStmt>().expr->as<Call>().callee == candidate.name) {
          ++callCount;
          callSite = &stmt;
        }
      });
      // Any value-position use disqualifies.
      std::size_t totalUses = 0;
      forEachExpr(unit, [&](Expr& expr) {
        if (expr.is<Call>() && expr.as<Call>().callee == candidate.name) {
          ++totalUses;
        }
        if (expr.is<Ident>() && expr.as<Ident>().name == candidate.name) {
          ++totalUses;
        }
      });
      if (callCount != 1 || totalUses != 1 || callSite == nullptr) continue;
      const Call& callExpr = callSite->as<ExprStmt>().expr->as<Call>();
      if (callExpr.args.size() != candidate.params.size()) continue;
      bool allIdents = std::all_of(
          callExpr.args.begin(), callExpr.args.end(),
          [](const ExprPtr& a) { return a && a->is<Ident>(); });
      if (!allIdents) continue;

      // Substitution map param -> argument name.
      std::map<std::string, std::string> renames;
      bool collision = false;
      for (std::size_t i = 0; i < candidate.params.size(); ++i) {
        const std::string& arg = callExpr.args[i]->as<Ident>().name;
        renames[candidate.params[i].name] = arg;
      }
      // Locals declared in the helper must not collide with names visible
      // outside it (globals or other functions' declarations).
      TranslationUnit helperView;
      helperView.functions.push_back(deepCopy(candidate));
      renameIdentifiers(helperView, renames);
      const std::set<std::string> helperLocals =
          namesDeclaredIn(helperView.functions[0].body.stmts);
      std::set<std::string> outsideNames;
      for (const Function& fn : unit.functions) {
        if (&fn == &candidate) continue;
        for (const Param& p : fn.params) outsideNames.insert(p.name);
        const std::set<std::string> declared = namesDeclaredIn(fn.body.stmts);
        outsideNames.insert(declared.begin(), declared.end());
      }
      for (const StmtPtr& g : unit.globals) {
        if (g && g->is<VarDeclStmt>()) {
          for (const Declarator& d : g->as<VarDeclStmt>().decls) {
            outsideNames.insert(d.name);
          }
        }
      }
      for (const std::string& local : helperLocals) {
        if (outsideNames.count(local) > 0 && renames.count(local) == 0) {
          collision = true;
        }
      }
      if (collision) continue;

      // Splice the (renamed) helper body over the call statement.
      BlockStmt spliced;
      spliced.stmts = std::move(helperView.functions[0].body.stmts);
      callSite->node = std::move(spliced);
      unit.functions.erase(unit.functions.begin() +
                           static_cast<std::ptrdiff_t>(fi));
      ++inlined;
      changed = true;
      break;
    }
  }
  return inlined;
}

void preferTernary(TranslationUnit& unit, bool useTernary) {
  auto rewriteList = [&](std::vector<StmtPtr>& stmts) {
    for (StmtPtr& stmt : stmts) {
      if (!stmt) continue;
      if (useTernary && stmt->is<IfStmt>()) {
        IfStmt& node = stmt->as<IfStmt>();
        // Pattern: if (c) x = a; else x = b;  (single statements each)
        auto singleAssign = [](const StmtPtr& branch) -> const Assign* {
          if (!branch || !branch->is<BlockStmt>()) return nullptr;
          const BlockStmt& block = branch->as<BlockStmt>();
          if (block.stmts.size() != 1 || !block.stmts[0]) return nullptr;
          if (!block.stmts[0]->is<ExprStmt>()) return nullptr;
          const ExprPtr& e = block.stmts[0]->as<ExprStmt>().expr;
          if (!e || !e->is<Assign>()) return nullptr;
          const Assign& a = e->as<Assign>();
          if (a.op != AssignOp::Assign || !a.target->is<Ident>()) return nullptr;
          return &a;
        };
        const Assign* thenA = singleAssign(node.thenBranch);
        const Assign* elseA = singleAssign(node.elseBranch);
        if (thenA != nullptr && elseA != nullptr &&
            thenA->target->as<Ident>().name ==
                elseA->target->as<Ident>().name) {
          ExprPtr replacement = assign(
              AssignOp::Assign, deepCopy(*thenA->target),
              ternary(deepCopy(*node.cond), deepCopy(*thenA->value),
                      deepCopy(*elseA->value)));
          stmt = exprStmt(std::move(replacement));
        }
      } else if (!useTernary && stmt->is<ExprStmt>()) {
        const ExprPtr& e = stmt->as<ExprStmt>().expr;
        if (e && e->is<Assign>()) {
          const Assign& a = e->as<Assign>();
          if (a.op == AssignOp::Assign && a.value->is<Ternary>() &&
              a.target->is<Ident>()) {
            const Ternary& t = a.value->as<Ternary>();
            BlockStmt thenBlock;
            thenBlock.stmts.push_back(exprStmt(assign(
                AssignOp::Assign, deepCopy(*a.target), deepCopy(*t.thenExpr))));
            BlockStmt elseBlock;
            elseBlock.stmts.push_back(exprStmt(assign(
                AssignOp::Assign, deepCopy(*a.target), deepCopy(*t.elseExpr))));
            stmt = ifStmt(deepCopy(*t.cond), makeStmt(std::move(thenBlock)),
                          makeStmt(std::move(elseBlock)));
          }
        }
      }
    }
  };
  for (Function& fn : unit.functions) rewriteList(fn.body.stmts);
  forEachStmt(unit, [&](Stmt& stmt) {
    if (stmt.is<BlockStmt>()) rewriteList(stmt.as<BlockStmt>().stmts);
  });
}

}  // namespace sca::ast
